// Command report works with the run manifests the other commands write into
// results/ (see internal/manifest).
//
// Diff mode compares two manifests and flags metric drift:
//
//	report [-tol 2] [-strict] old.json new.json
//
// Each metric beyond the tolerance is classified improved or regressed by
// the metric's good direction (latencies down, savings up). Exit status: 0
// on ok/improved/drift (warn-only by default), 1 with -strict when anything
// regressed, 2 when either manifest is malformed.
//
// Check mode validates observability artifacts structurally:
//
//	report -check file...
//
// Files are sniffed by content: a JSON array is validated as a Chrome
// trace, a .jsonl file as span JSONL, anything else as a manifest. Exit
// status 1 if any file is malformed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"costcache/internal/manifest"
	"costcache/internal/tabulate"
)

func main() {
	tol := flag.Float64("tol", 2, "relative drift tolerance in percent")
	strict := flag.Bool("strict", false, "exit 1 when any metric regressed")
	check := flag.Bool("check", false, "validate files instead of diffing manifests")
	flag.Parse()

	if *check {
		os.Exit(runCheck(flag.Args()))
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: report [-tol pct] [-strict] old.json new.json\n       report -check file...")
		os.Exit(2)
	}
	os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *tol, *strict))
}

func runDiff(oldPath, newPath string, tol float64, strict bool) int {
	oldM, err := manifest.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	newM, err := manifest.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		return 2
	}
	fmt.Printf("old: %s (%s, rev %s)\n", oldPath, oldM.CreatedUTC, orDash(oldM.GitRev))
	fmt.Printf("new: %s (%s, rev %s)\n", newPath, newM.CreatedUTC, orDash(newM.GitRev))

	entries := manifest.Diff(oldM, newM, tol)
	var regressed, improved, churn int
	t := tabulate.New(fmt.Sprintf("metric drift (tolerance %.3g%%)", tol),
		"metric", "old", "new", "delta %", "verdict")
	for _, e := range entries {
		switch e.Verdict {
		case manifest.VerdictRegressed:
			regressed++
		case manifest.VerdictImproved:
			improved++
		case manifest.VerdictAdded, manifest.VerdictRemoved:
			churn++
		default:
			continue // keep the table to actionable rows
		}
		t.Add(e.Name, num(e.Old), num(e.New), fmt.Sprintf("%+.2f", e.DeltaPct), string(e.Verdict))
	}
	if regressed+improved+churn == 0 {
		fmt.Printf("all %d metrics within tolerance\n", len(entries))
		return 0
	}
	t.Fprint(os.Stdout)
	fmt.Printf("%d regressed, %d improved, %d added/removed, %d ok\n",
		regressed, improved, churn, len(entries)-regressed-improved-churn)
	if regressed > 0 {
		if strict {
			return 1
		}
		fmt.Println("warning: regressions above; rerun with -strict to fail on them")
	}
	return 0
}

func runCheck(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "report: -check needs at least one file")
		return 1
	}
	bad := 0
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			bad++
			continue
		}
		switch kindOf(p, data) {
		case "chrome":
			events, spans, err := manifest.ValidateChromeTrace(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", p, err)
				bad++
				continue
			}
			fmt.Printf("%s: valid chrome trace, %d events, %d spans\n", p, events, spans)
		case "jsonl":
			spans, err := manifest.ValidateSpanJSONL(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", p, err)
				bad++
				continue
			}
			fmt.Printf("%s: valid span jsonl, %d spans\n", p, spans)
		default:
			m, err := manifest.ReadFile(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "report:", err)
				bad++
				continue
			}
			fmt.Printf("%s: valid manifest, %s, %d metrics, %d breakdown rows\n",
				p, m.Command, len(m.Metrics), len(m.LatencyBreakdown))
		}
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// kindOf sniffs the artifact kind: a leading '[' is a Chrome trace array, a
// .jsonl extension the span stream, anything else a manifest.
func kindOf(path string, data []byte) string {
	if strings.HasSuffix(path, ".jsonl") {
		return "jsonl"
	}
	if d := bytes.TrimLeft(data, " \t\r\n"); len(d) > 0 && d[0] == '[' {
		return "chrome"
	}
	return "manifest"
}

func num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
