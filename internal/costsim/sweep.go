package costsim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"costcache/internal/cost"
	"costcache/internal/replacement"
	"costcache/internal/trace"
)

// Ratio is a two-static-cost assignment. The paper's cost ratio r is
// High/Low; the infinite ratio is modelled as Low = 0, High = 1 (its
// practical example: bandwidth consumption).
type Ratio struct {
	// Low and High are the two miss costs.
	Low, High replacement.Cost
	// Label names the ratio in tables ("r=8", "r=inf").
	Label string
}

// PaperRatios returns the cost ratios of Figure 3: 2, 4, 8, 16, 32 and
// infinity.
func PaperRatios() []Ratio {
	return []Ratio{
		{1, 2, "r=2"}, {1, 4, "r=4"}, {1, 8, "r=8"},
		{1, 16, "r=16"}, {1, 32, "r=32"}, {0, 1, "r=inf"},
	}
}

// Table2Ratios returns the finite ratios of Table 2: 2 through 32.
func Table2Ratios() []Ratio { return PaperRatios()[:5] }

// PaperHAFs returns the high-cost access fractions swept in Figure 3:
// 0, 0.01, 0.05, then 0.1 through 1.0 in steps of 0.1.
func PaperHAFs() []float64 {
	h := []float64{0, 0.01, 0.05}
	for f := 0.1; f < 1.05; f += 0.1 {
		h = append(h, f)
	}
	return h
}

// PaperPolicies returns factories for the four cost-sensitive algorithms in
// the order the paper plots them: GD, BCL, DCL, ACL.
func PaperPolicies() []replacement.Factory {
	return []replacement.Factory{
		func() replacement.Policy { return replacement.NewGD() },
		func() replacement.Policy { return replacement.NewBCL() },
		func() replacement.Policy { return replacement.NewDCL() },
		func() replacement.Policy { return replacement.NewACL() },
	}
}

// SweepPoint is one cell of a cost sweep: one cost mapping evaluated under
// every policy.
type SweepPoint struct {
	// Ratio is the cost assignment of this cell.
	Ratio Ratio
	// TargetHAF is the requested high-cost fraction (random mapping only);
	// MeasuredHAF is the realized high-cost access fraction of the trace.
	TargetHAF, MeasuredHAF float64
	// LRUCost is the aggregate cost of the LRU baseline.
	LRUCost int64
	// Costs and Savings record, per policy name, the aggregate cost and the
	// relative savings fraction over LRU.
	Costs   map[string]int64
	Savings map[string]float64
	// Order lists policy names in evaluation order, for stable printing.
	Order []string
	// Err is non-empty when evaluating this cell panicked: the cell is
	// reported as a per-row error (with the panic's Stack) instead of
	// aborting the whole sweep. Costs/Savings are empty for error cells.
	Err   string
	Stack string
}

// recoverCell converts a panic inside one sweep cell into a per-cell error
// entry, so one bad configuration cannot kill a long sweep. Use as
// `defer recoverCell(&out[i])`.
func recoverCell(pt *SweepPoint) {
	if r := recover(); r != nil {
		pt.Costs, pt.Savings, pt.Order = nil, nil, nil
		pt.Err = fmt.Sprintf("panic: %v", r)
		pt.Stack = string(debug.Stack())
	}
}

// RandomSweep runs the Figure 3 experiment on one benchmark view: for every
// (ratio, HAF) cell of the random cost mapping, evaluate LRU analytically
// from a single miss-count profile and simulate every policy. Cells are
// independent, so they run on all CPUs; the returned order is
// deterministic regardless.
func RandomSweep(view []trace.SampleRef, cfg Config, ratios []Ratio, hafs []float64,
	policies []replacement.Factory, seed uint64) []SweepPoint {
	cfg = cfg.orDefault()
	counts, _ := MissCounts(view, cfg)

	type cell struct {
		r   Ratio
		haf float64
	}
	var cells []cell
	for _, r := range ratios {
		for _, haf := range hafs {
			cells = append(cells, cell{r, haf})
		}
	}
	out := make([]SweepPoint, len(cells))

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, c := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, c cell) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = SweepPoint{Ratio: c.r, TargetHAF: c.haf}
			defer recoverCell(&out[i])
			src := CalibratedRandom(view, cfg.BlockBytes, c.haf, c.r, seed)
			pt := &out[i]
			pt.MeasuredHAF = MeasuredHAF(view, cfg.BlockBytes, IsHighFunc(src, c.r))
			pt.LRUCost = CostOf(counts, src)
			pt.Costs = map[string]int64{}
			pt.Savings = map[string]float64{}
			for _, f := range policies {
				p := f()
				res := Run(view, cfg, p, src)
				pt.Costs[res.Policy] = res.L2.AggCost
				pt.Savings[res.Policy] = RelativeSavings(pt.LRUCost, res.L2.AggCost)
				pt.Order = append(pt.Order, res.Policy)
			}
		}(i, c)
	}
	wg.Wait()
	return out
}

// FirstTouchSweep runs the Table 2 experiment: costs assigned by first-touch
// placement (local = Low, remote = High) for each ratio.
func FirstTouchSweep(view []trace.SampleRef, cfg Config, home func(block uint64) int16,
	proc int16, ratios []Ratio, policies []replacement.Factory) []SweepPoint {
	cfg = cfg.orDefault()
	counts, _ := MissCounts(view, cfg)
	out := make([]SweepPoint, len(ratios))
	for i, r := range ratios {
		func() {
			out[i] = SweepPoint{Ratio: r, TargetHAF: -1}
			defer recoverCell(&out[i])
			src := cost.FirstTouch{Home: home, Proc: proc, Low: r.Low, High: r.High}
			isHigh := func(block uint64) bool { return home(block) != proc }
			pt := &out[i]
			pt.MeasuredHAF = MeasuredHAF(view, cfg.BlockBytes, isHigh)
			pt.LRUCost = CostOf(counts, src)
			pt.Costs = map[string]int64{}
			pt.Savings = map[string]float64{}
			for _, f := range policies {
				p := f()
				res := Run(view, cfg, p, src)
				pt.Costs[res.Policy] = res.L2.AggCost
				pt.Savings[res.Policy] = RelativeSavings(pt.LRUCost, res.L2.AggCost)
				pt.Order = append(pt.Order, res.Policy)
			}
		}()
	}
	return out
}
