// Package client is the connection-pooled client side of the cache tier
// protocol (internal/wire): pipelined connections, a bounded health-checked
// pool per node, per-request deadlines, and a consistent-hash ring
// (client.Ring) routing keys across N nodes with a per-node circuit breaker
// from internal/resilience.
package client

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costcache/internal/wire"
)

// Config describes a client for one node.
type Config struct {
	// Addr is the node's TCP address.
	Addr string
	// Conns is the pool size (0 = 1). Requests round-robin across the pool;
	// each connection pipelines, so one connection already supports many
	// concurrent requests — more connections spread the per-conn write lock.
	Conns int
	// Timeout bounds each request round trip (0 = wait forever). A timed-out
	// request abandons its slot; the response, if it ever arrives, is
	// discarded by ID.
	Timeout time.Duration
	// MaxFrame caps accepted response frames (0 = wire.MaxFrame).
	MaxFrame int
	// Clock, when non-nil, is the client-side clock (ns) sampled around the
	// dial-time negotiation ping to estimate each connection's client→server
	// clock offset. Pass the request tracer's Now so offsets are on the same
	// timebase as emitted span timestamps; nil falls back to wall time.
	Clock func() int64
}

// Error is a server-reported protocol error (a FlagError response).
type Error struct {
	Code uint8
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("server: %s: %s", wire.ErrCodeName(e.Code), e.Msg)
}

// ErrTimeout is returned when Config.Timeout expires before the response.
var ErrTimeout = &Error{Code: wire.ErrCodeTimeout, Msg: "client deadline exceeded"}

// Result is one GetOrLoad outcome relayed from the server.
type Result struct {
	// Value is the response value (an owned copy).
	Value []byte
	// Charged is the miss cost this request charged at install on the
	// server (0 for hits, coalesced waits, stale serves).
	Charged int64
	// Hit / Coalesced / Stale mirror engine.LoadInfo over the wire.
	Hit       bool
	Coalesced bool
	Stale     bool
}

// Client talks to one node through a bounded pool of pipelined connections.
type Client struct {
	cfg   Config
	rr    atomic.Uint64
	mu    sync.Mutex // guards slot (re)dialing
	slots []*conn
}

// Dial builds a client and eagerly connects every pool slot, so a dead node
// fails fast at startup rather than on the first request.
func Dial(cfg Config) (*Client, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.MaxFrame
	}
	c := &Client{cfg: cfg, slots: make([]*conn, cfg.Conns)}
	for i := range c.slots {
		cc, err := dialConn(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.slots[i] = cc
	}
	return c, nil
}

// Addr returns the node address this client dials.
func (c *Client) Addr() string { return c.cfg.Addr }

// TraceSupported reports whether the node advertised FeatTrace at dial —
// the gate for sending FlagTraced request frames.
func (c *Client) TraceSupported() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.slots[0]
	return cc != nil && cc.feats&wire.FeatTrace != 0
}

// Offset returns the estimated server-minus-client clock offset in ns from
// the first pool slot's negotiation ping — the per-node hint report -stitch
// starts from before refining the offset from the spans themselves.
func (c *Client) Offset() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc := c.slots[0]; cc != nil {
		return cc.offset
	}
	return 0
}

// pick returns a live connection, redialing its slot if the previous one
// broke — the pool's health check is the connection itself.
func (c *Client) pick() (*conn, error) {
	i := int(c.rr.Add(1)) % len(c.slots)
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.slots[i]
	if cc == nil || cc.broken() {
		if cc != nil {
			cc.close()
		}
		fresh, err := dialConn(c.cfg)
		if err != nil {
			return nil, err
		}
		c.slots[i] = fresh
		cc = fresh
	}
	return cc, nil
}

// Ping round-trips an OpPing frame (the health probe).
func (c *Client) Ping() error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	_, _, err = cc.roundTrip(wire.OpPing, 0, "", nil, c.cfg.Timeout)
	return err
}

// Manifest fetches the node's manifest: its identity plus every hosted
// namespace's engine counters and the serving-tier totals, the per-node
// input to cluster-manifest reconciliation.
func (c *Client) Manifest() (wire.NodeManifest, error) {
	cc, err := c.pick()
	if err != nil {
		return wire.NodeManifest{}, err
	}
	_, payload, err := cc.roundTrip(wire.OpManifest, 0, "", nil, c.cfg.Timeout)
	if err != nil {
		return wire.NodeManifest{}, err
	}
	var m wire.NodeManifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return wire.NodeManifest{}, err
	}
	return m, nil
}

// Get looks key up in ns without loading.
func (c *Client) Get(ns string, key uint64) (value []byte, ok bool, err error) {
	cc, err := c.pick()
	if err != nil {
		return nil, false, err
	}
	flags, payload, err := cc.roundTrip(wire.OpGet, 0, ns, wire.AppendGetReq(nil, key), c.cfg.Timeout)
	if err != nil {
		return nil, false, err
	}
	if flags&wire.FlagHit == 0 {
		return nil, false, nil
	}
	return payload, true, nil
}

// Set installs key in ns with a value and predicted next-miss cost.
func (c *Client) Set(ns string, key uint64, cost int64, value []byte) error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	_, _, err = cc.roundTrip(wire.OpSet, 0, ns, wire.AppendSetReq(nil, key, cost, value), c.cfg.Timeout)
	return err
}

// GetOrLoad returns ns's cached value for key or has the server load it,
// declaring cost as the miss cost the server charges on a fill.
func (c *Client) GetOrLoad(ns string, key uint64, cost int64) (Result, error) {
	p, err := c.StartGetOrLoad(ns, key, cost)
	if err != nil {
		return Result{}, err
	}
	return p.Wait()
}

// Pending is one sent GetOrLoad awaiting its response. The two-phase
// Start/Wait API exists so a load harness can attribute the request-write
// and response-wait portions of the round trip to separate span stages
// (net_write / net_read); plain callers use GetOrLoad.
type Pending struct {
	p       *pendingReq
	timeout time.Duration
}

// StartGetOrLoad encodes and writes the request, returning a handle whose
// Wait collects the response.
func (c *Client) StartGetOrLoad(ns string, key uint64, cost int64) (*Pending, error) {
	return c.StartGetOrLoadTraced(ns, key, cost, wire.TraceCtx{})
}

// StartGetOrLoadTraced is StartGetOrLoad with a propagated trace context:
// when tc carries a span id and the connection negotiated FeatTrace, the
// request frame is sent FlagTraced with the context prefixed to the op body,
// so the server's engine span carries the client's span id. A zero tc — or a
// pre-extension server — degrades to a plain request.
func (c *Client) StartGetOrLoadTraced(ns string, key uint64, cost int64, tc wire.TraceCtx) (*Pending, error) {
	cc, err := c.pick()
	if err != nil {
		return nil, err
	}
	var flags uint8
	var payload []byte
	if tc.SpanID != 0 && cc.feats&wire.FeatTrace != 0 {
		flags = wire.FlagTraced
		payload = wire.AppendTraceCtx(payload, tc)
	}
	payload = wire.AppendGetOrLoadReq(payload, key, cost)
	p, err := cc.send(wire.OpGetOrLoad, flags, ns, payload)
	if err != nil {
		return nil, err
	}
	return &Pending{p: p, timeout: c.cfg.Timeout}, nil
}

// Wait blocks for the response, bounded by the client's Timeout.
func (p *Pending) Wait() (Result, error) {
	flags, payload, err := p.p.wait(p.timeout)
	if err != nil {
		return Result{}, err
	}
	charged, value, err := wire.ParseGetOrLoadResp(payload)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Value:     value,
		Charged:   charged,
		Hit:       flags&wire.FlagHit != 0,
		Coalesced: flags&wire.FlagCoalesced != 0,
		Stale:     flags&wire.FlagStale != 0,
	}, nil
}

// Stats fetches ns's engine and serving-tier counters.
func (c *Client) Stats(ns string) (wire.Stats, error) {
	cc, err := c.pick()
	if err != nil {
		return wire.Stats{}, err
	}
	return cc.stats(ns, c.cfg.Timeout)
}

// Close tears the pool down; in-flight requests fail.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cc := range c.slots {
		if cc != nil {
			cc.close()
			c.slots[i] = nil
		}
	}
}
