package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mkTrace(n, procs int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{NumProcs: procs, Name: "synthetic"}
	for i := 0; i < n; i++ {
		t.Append(Ref{
			Addr: uint64(rng.Intn(1 << 20)),
			Proc: int16(rng.Intn(procs)),
			Op:   Op(rng.Intn(2)),
		})
	}
	return t
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatalf("Op strings: %v %v", Read, Write)
	}
	if got := Op(9).String(); got != "Op(9)" {
		t.Fatalf("bad op string %q", got)
	}
}

func TestSampleView(t *testing.T) {
	tr := &Trace{NumProcs: 3}
	tr.Append(Ref{Addr: 0x100, Proc: 0, Op: Read})
	tr.Append(Ref{Addr: 0x200, Proc: 1, Op: Write}) // remote write: kept
	tr.Append(Ref{Addr: 0x300, Proc: 1, Op: Read})  // remote read: dropped
	tr.Append(Ref{Addr: 0x400, Proc: 0, Op: Write})
	tr.Append(Ref{Addr: 0x500, Proc: 2, Op: Write}) // remote write: kept

	view := tr.SampleView(0)
	want := []SampleRef{
		{Addr: 0x100, Op: Read},
		{Addr: 0x200, Op: Write, Remote: true},
		{Addr: 0x400, Op: Write},
		{Addr: 0x500, Op: Write, Remote: true},
	}
	if !reflect.DeepEqual(view, want) {
		t.Fatalf("SampleView(0) = %+v, want %+v", view, want)
	}
}

func TestSampleViewPreservesOrder(t *testing.T) {
	tr := mkTrace(5000, 4, 7)
	view := tr.SampleView(2)
	// Every local ref and every remote write must appear, in order.
	j := 0
	for _, r := range tr.Refs {
		if r.Proc == 2 || r.Op == Write {
			if j >= len(view) {
				t.Fatal("view too short")
			}
			v := view[j]
			if v.Addr != r.Addr || v.Op != r.Op || v.Remote != (r.Proc != 2) {
				t.Fatalf("view[%d] = %+v, src = %+v", j, v, r)
			}
			j++
		}
	}
	if j != len(view) {
		t.Fatalf("view has %d extra entries", len(view)-j)
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{NumProcs: 2}
	tr.Append(Ref{Addr: 0, Proc: 0, Op: Read})
	tr.Append(Ref{Addr: 63, Proc: 0, Op: Write})  // same 64B block as 0
	tr.Append(Ref{Addr: 64, Proc: 1, Op: Read})   // next block
	tr.Append(Ref{Addr: 1024, Proc: 1, Op: Read}) // third block
	s := tr.Summarize(64)
	if s.Refs != 4 || s.Reads != 3 || s.Writes != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.UniqueBlocks != 3 || s.FootprintBytes != 192 {
		t.Fatalf("blocks: %+v", s)
	}
	if s.PerProc[0] != 2 || s.PerProc[1] != 2 {
		t.Fatalf("per-proc: %+v", s.PerProc)
	}
}

func TestSummarizePanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Trace{}).Summarize(0)
}

func TestRemoteFraction(t *testing.T) {
	tr := &Trace{NumProcs: 2}
	// proc 0 touches blocks 0,1,2,3; homes: even blocks -> proc 0.
	for b := uint64(0); b < 4; b++ {
		tr.Append(Ref{Addr: b * 64, Proc: 0, Op: Read})
	}
	home := func(block uint64) int16 { return int16(block % 2) }
	got := tr.RemoteFraction(0, 64, home)
	if got != 0.5 {
		t.Fatalf("RemoteFraction = %v, want 0.5", got)
	}
	if f := tr.RemoteFraction(1, 64, home); f != 0 {
		t.Fatalf("proc with no refs should be 0, got %v", f)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := mkTrace(10000, 8, 42)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcs != tr.NumProcs || got.Name != tr.Name {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Refs, tr.Refs) {
		t.Fatal("refs mismatch after binary round trip")
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(addrs []uint64, procsRaw uint8, seed int64) bool {
		procs := int(procsRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{NumProcs: procs, Name: "q"}
		for _, a := range addrs {
			tr.Append(Ref{Addr: a, Proc: int16(rng.Intn(procs)), Op: Op(rng.Intn(2))})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Refs) == 0 && len(tr.Refs) == 0 {
			return true // nil vs empty slice are equivalent traces
		}
		return reflect.DeepEqual(got.Refs, tr.Refs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a trace at all")); err == nil {
		t.Fatal("expected error on garbage input")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("expected error on empty input")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := mkTrace(2000, 4, 3)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumProcs != tr.NumProcs || got.Name != tr.Name {
		t.Fatalf("header mismatch: procs=%d name=%q", got.NumProcs, got.Name)
	}
	if !reflect.DeepEqual(got.Refs, tr.Refs) {
		t.Fatal("refs mismatch after text round trip")
	}
}

func TestTextComments(t *testing.T) {
	in := "# hand annotation\n0 R 0x40\n\n# another\n1 W 0x80\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Refs) != 2 || got.NumProcs != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"0 R\n",        // missing addr
		"x R 0x40\n",   // bad proc
		"0 Q 0x40\n",   // bad op
		"0 R zzz\n",    // bad addr
		"0 R 0x40 5\n", // too many fields
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func BenchmarkBinaryEncode(b *testing.B) {
	tr := mkTrace(100000, 8, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBinaryTruncatedStream(t *testing.T) {
	tr := mkTrace(100, 4, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, cut := range []int{1, 3, 4, 5, 7, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d: expected error", cut)
		}
	}
}

func TestBinaryWrongVersion(t *testing.T) {
	tr := mkTrace(10, 2, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt the version byte
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("expected version error")
	}
}
