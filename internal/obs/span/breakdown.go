package span

import "costcache/internal/tabulate"

// Class buckets spans by the paper's latency classes: whether the home was
// the requesting node and whether a dirty owner copy was involved.
type Class uint8

// Latency classes.
const (
	LocalClean Class = iota
	LocalDirty
	RemoteClean
	RemoteDirty
	// NumClasses is the number of latency classes.
	NumClasses = int(RemoteDirty) + 1
)

var classNames = [NumClasses]string{"local-clean", "local-dirty", "remote-clean", "remote-dirty"}

// String returns the class's schema name ("local-clean", ...).
func (c Class) String() string { return classNames[c] }

// ClassOf maps the span attributes to a class.
func ClassOf(local, dirty bool) Class {
	switch {
	case local && !dirty:
		return LocalClean
	case local:
		return LocalDirty
	case !dirty:
		return RemoteClean
	default:
		return RemoteDirty
	}
}

// StageAgg accumulates one stage within one class.
type StageAgg struct {
	// Count is the number of segments, Ns their total duration, QueueNs the
	// queueing share of that total.
	Count, Ns, QueueNs int64
}

// ClassAgg accumulates one latency class.
type ClassAgg struct {
	// Spans is the number of misses in the class, TotalNs their summed
	// end-to-end latency, HopQueueNs the summed link-queueing delay.
	Spans, TotalNs, HopQueueNs int64
	// Stages are the per-stage accumulators.
	Stages [NumStages]StageAgg
}

// MeanNs returns the class's mean end-to-end miss latency.
func (c ClassAgg) MeanNs() float64 {
	if c.Spans == 0 {
		return 0
	}
	return float64(c.TotalNs) / float64(c.Spans)
}

// MeanTransactionNs returns the mean transaction latency: end-to-end minus
// the pre-issue MSHR wait. This is the memory system's latency — the measure
// on which a remote miss is structurally at least as expensive as a local
// one — while MeanNs also reflects processor-side MSHR backpressure.
func (c ClassAgg) MeanTransactionNs() float64 {
	if c.Spans == 0 {
		return 0
	}
	return float64(c.TotalNs-c.Stages[StageIssue].Ns) / float64(c.Spans)
}

// Breakdown is the per-class, per-stage latency aggregation of a run — the
// table that exhibits the miss-cost variability the paper exploits.
type Breakdown struct {
	Classes [NumClasses]ClassAgg
}

func (b *Breakdown) record(s *Span) {
	c := &b.Classes[ClassOf(s.Local, s.Dirty)]
	c.Spans++
	c.TotalNs += s.End - s.Start
	c.HopQueueNs += s.hopQueue
	for _, seg := range s.Segs {
		st := &c.Stages[seg.Stage]
		st.Count++
		st.Ns += seg.End - seg.Start
		st.QueueNs += seg.Queue
	}
}

// BreakdownRow is one (class, stage) cell in flattened, manifest-friendly
// form; the pseudo-stage "total" carries the class's end-to-end numbers.
type BreakdownRow struct {
	Class   string  `json:"class"`
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalNs int64   `json:"total_ns"`
	QueueNs int64   `json:"queue_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// Rows flattens the breakdown into rows, omitting empty cells. MeanNs of a
// stage row is per miss of the class (not per occurrence), so the stage rows
// of a class sum to its "total" row up to stage overlap.
func (b *Breakdown) Rows() []BreakdownRow {
	var rows []BreakdownRow
	for ci := range b.Classes {
		c := &b.Classes[ci]
		if c.Spans == 0 {
			continue
		}
		rows = append(rows, BreakdownRow{
			Class: Class(ci).String(), Stage: "total",
			Count: c.Spans, TotalNs: c.TotalNs, QueueNs: c.HopQueueNs,
			MeanNs: c.MeanNs(),
		})
		for si := range c.Stages {
			st := c.Stages[si]
			if st.Count == 0 {
				continue
			}
			rows = append(rows, BreakdownRow{
				Class: Class(ci).String(), Stage: Stage(si).String(),
				Count: st.Count, TotalNs: st.Ns, QueueNs: st.QueueNs,
				MeanNs: float64(st.Ns) / float64(c.Spans),
			})
		}
	}
	return rows
}

// Table renders the breakdown: one row per stage (mean ns per miss of the
// class, so a column sums to roughly its total row; overlapped stages — a
// write miss's parallel memory access and invalidation fan-out — can exceed
// it), plus the span counts, the mean end-to-end latency and the mean link
// queueing per class.
func (b *Breakdown) Table(title string) *tabulate.Table {
	t := tabulate.New(title, "stage", classNames[0], classNames[1], classNames[2], classNames[3])
	for si := 0; si < NumStages; si++ {
		row := []any{Stage(si).String()}
		seen := false
		for ci := range b.Classes {
			c := &b.Classes[ci]
			v := 0.0
			if c.Spans > 0 {
				v = float64(c.Stages[si].Ns) / float64(c.Spans)
			}
			seen = seen || c.Stages[si].Count > 0
			row = append(row, v)
		}
		if seen {
			t.AddF(row...)
		}
	}
	misses := []any{"misses"}
	mean := []any{"mean latency (ns)"}
	txn := []any{"mean transaction latency (ns)"}
	queue := []any{"mean link queueing (ns)"}
	for ci := range b.Classes {
		c := &b.Classes[ci]
		misses = append(misses, c.Spans)
		mean = append(mean, c.MeanNs())
		txn = append(txn, c.MeanTransactionNs())
		q := 0.0
		if c.Spans > 0 {
			q = float64(c.HopQueueNs) / float64(c.Spans)
		}
		queue = append(queue, q)
	}
	t.AddF(misses...)
	t.AddF(mean...)
	t.AddF(txn...)
	t.AddF(queue...)
	return t
}
