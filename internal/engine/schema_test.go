package engine

import (
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"
)

// keysOf returns the sorted key set of a decoded JSON object.
func keysOf(t *testing.T, m map[string]json.RawMessage) []string {
	t.Helper()
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func wantKeys(t *testing.T, what string, m map[string]json.RawMessage, want []string) {
	t.Helper()
	got := keysOf(t, m)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s keys = %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s keys = %v, want %v", what, got, want)
		}
	}
}

// TestDebugEngineSchema locks the /debug/engine JSON shape: the exact key
// sets of the payload, the stats block, the window analytics and the
// per-shard rows. Tools parse this document (cachetop, operators' jq one-
// liners) — renaming or dropping a field is a breaking change that must
// show up as a test diff, not a silent drift.
func TestDebugEngineSchema(t *testing.T) {
	e := New(Config{Shards: 2, Sets: 8, Ways: 2, Policy: lruFactory})
	for k := uint64(0); k < 32; k++ {
		if _, err := e.GetOrLoad(k, constLoader("v", 2)); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	DebugHandler(e, nil, 0).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/engine", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	// Without a tracer, attribution and keyspace are omitted entirely.
	wantKeys(t, "payload", doc, []string{"stats", "window", "cumulative"})

	var stats map[string]json.RawMessage
	if err := json.Unmarshal(doc["stats"], &stats); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, "stats", stats, []string{
		"hits", "misses", "coalesced", "evictions", "cost_paid", "lock_wait_ns", "shadow_cost",
		"load_timeouts", "load_retries", "shed", "stale_served"})

	var window map[string]json.RawMessage
	if err := json.Unmarshal(doc["window"], &window); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, "window", window, []string{
		"window_ns", "ops", "uniform_share", "hot_share_factor", "shards", "hot"})

	var shards []map[string]json.RawMessage
	if err := json.Unmarshal(window["shards"], &shards); err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("window shards = %d, want 2", len(shards))
	}
	wantKeys(t, "window shard", shards[0], []string{
		"shard", "ops", "share", "lock_wait_ns", "coalesced", "in_flight", "max_in_flight", "hot"})

	var cum []map[string]json.RawMessage
	if err := json.Unmarshal(doc["cumulative"], &cum); err != nil {
		t.Fatal(err)
	}
	wantKeys(t, "cumulative shard", cum[0], []string{
		"shard", "hits", "misses", "coalesced", "evictions", "cost_paid", "lock_wait_ns",
		"in_flight", "max_in_flight"})

	// Sanity beyond shape: the stats block carries the run's numbers.
	var st Stats
	if err := json.Unmarshal(doc["stats"], &st); err != nil {
		t.Fatal(err)
	}
	if st.Misses != 32 || st.CostPaid != 64 {
		t.Fatalf("stats = %+v, want 32 misses costing 64", st)
	}
}
