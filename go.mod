module costcache

go 1.22
