package hwcost

import (
	"math"
	"testing"
)

func pct(t *testing.T, alg string, c Config) float64 {
	t.Helper()
	p, err := OverheadPercent(alg, c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Section 5, first design point: "the added hardware costs over LRU are
// around 1.9%, 2.7%, 6.6% and 6.7% for BCL, GD, DCL and ACL". Our formula
// reproduces BCL, DCL and ACL exactly; for GD it gives 2.98% (2s 8-bit
// fields over a 4x(512+25)-bit baseline), a known inconsistency in the
// paper's own arithmetic that EXPERIMENTS.md documents.
func TestPaper8BitPercentages(t *testing.T) {
	c := Paper8Bit()
	if got := c.BaselineBitsPerSet(); got != 2148 {
		t.Fatalf("baseline = %d bits, want 2148", got)
	}
	cases := map[string]float64{"BCL": 1.9, "DCL": 6.6, "ACL": 6.8}
	for alg, want := range cases {
		if got := pct(t, alg, c); math.Abs(got-want) > 0.1 {
			t.Errorf("%s = %.2f%%, want ~%.1f%%", alg, got, want)
		}
	}
	if got := pct(t, "GD", c); math.Abs(got-2.98) > 0.05 {
		t.Errorf("GD = %.2f%%, want 2.98%% (paper prints 2.7)", got)
	}
}

// Section 5: with a static cost table, "the added costs are 0.4%, 1.5%,
// 4.0% and 4.1%".
func TestPaperTableLookupPercentages(t *testing.T) {
	c := PaperTableLookup()
	cases := map[string]float64{"BCL": 0.4, "GD": 1.5, "DCL": 4.0, "ACL": 4.1}
	for alg, want := range cases {
		if got := pct(t, alg, c); math.Abs(got-want) > 0.1 {
			t.Errorf("%s = %.2f%%, want ~%.1f%%", alg, got, want)
		}
	}
}

// Section 5: with G=60ns, K=8 quantization and 4-bit ETD tags, "the hardware
// overhead per set over LRU is 11 bits in BCL, 20 bits in GD, 32 bits in DCL
// and 35 bits in ACL".
func TestPaperQuantizedBits(t *testing.T) {
	c := PaperQuantized()
	cases := map[string]int{"BCL": 11, "GD": 20, "DCL": 32, "ACL": 35}
	for alg, want := range cases {
		got, err := OverheadBitsPerSet(alg, c)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s = %d bits, want %d", alg, got, want)
		}
	}
}

func TestLRUHasZeroOverhead(t *testing.T) {
	if got, _ := OverheadBitsPerSet("LRU", Paper8Bit()); got != 0 {
		t.Fatalf("LRU overhead = %d", got)
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := OverheadBitsPerSet("PLRU", Paper8Bit()); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	if _, err := OverheadPercent("PLRU", Paper8Bit()); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestETDTagAliasingReducesDCL(t *testing.T) {
	full := Paper8Bit()
	aliased := full
	aliased.ETDTagBits = 4
	f, _ := OverheadBitsPerSet("DCL", full)
	a, _ := OverheadBitsPerSet("DCL", aliased)
	if a >= f {
		t.Fatalf("aliased %d bits >= full %d bits", a, f)
	}
	// Section 4.3: 4-bit tags save 40-60% of the ETD tag storage. Here tags
	// shrink from 25 to 4 bits: (25-4)*3 = 63 bits saved.
	if f-a != 63 {
		t.Fatalf("saved %d bits, want 63", f-a)
	}
}

func TestAlgorithmsOrder(t *testing.T) {
	want := []string{"BCL", "GD", "DCL", "ACL"}
	got := Algorithms()
	if len(got) != len(want) {
		t.Fatalf("Algorithms() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Algorithms() = %v, want %v", got, want)
		}
	}
}
