// Package proc models the paper's ILP processor (Table 4) at the level the
// replacement study needs: a 64-entry active list that bounds how far
// execution runs ahead, an issue rate, a limited number of MSHRs bounding
// outstanding misses, in-order retirement, and buffered stores. The model is
// analytic rather than cycle-accurate: each memory reference gets an issue
// time constrained by the window, the issue rate and MSHR availability, and
// a completion time from the memory system; overlapping misses therefore
// hide latency exactly up to the window/MSHR limits, which is what makes
// miss *cost* differ from miss *count* in ILP processors.
package proc

import "costcache/internal/obs/span"

// Params describe the processor core.
type Params struct {
	// ActiveList is the reorder window size in instructions (64).
	ActiveList int
	// MSHRs bounds outstanding misses (8 per cache in Table 4).
	MSHRs int
	// ComputePerRef is how many cycles of non-shared work the core retires
	// per traced shared-memory reference (private data and ALU work are not
	// in the traces).
	ComputePerRef int
	// RefsPerWindowSlot is how many active-list entries one traced
	// reference plus its surrounding work occupies.
	RefsPerWindowSlot int
}

// DefaultParams returns the Table 4 core.
func DefaultParams() Params {
	return Params{ActiveList: 64, MSHRs: 8, ComputePerRef: 3, RefsPerWindowSlot: 4}
}

// Window is one processor's timing state. All times are nanoseconds.
type Window struct {
	p       Params
	cycleNs int64

	ring []int64 // retirement times of the last window's worth of slots
	head int

	lastRetire  int64
	issueFree   int64
	outstanding []int64 // completion times of in-flight misses
}

// New builds a processor window with the given core parameters and clock
// period in nanoseconds.
func New(p Params, cycleNs int64) *Window {
	if p.ActiveList <= 0 || p.MSHRs <= 0 || cycleNs <= 0 {
		panic("proc: invalid parameters")
	}
	slots := p.ActiveList / max(1, p.RefsPerWindowSlot)
	if slots < 1 {
		slots = 1
	}
	return &Window{p: p, cycleNs: cycleNs, ring: make([]int64, slots)}
}

// IssueReady returns the earliest time the next reference can issue: after
// the issue pipeline's compute work and once an active-list slot is free.
func (w *Window) IssueReady() int64 {
	t := w.issueFree
	if oldest := w.ring[w.head]; oldest > t {
		t = oldest
	}
	return t
}

// WaitMSHR delays t until an MSHR is free and reserves one completing at
// the time later supplied to Record. Completed misses are retired from the
// MSHR file as a side effect.
func (w *Window) WaitMSHR(t int64) int64 {
	for {
		live := w.outstanding[:0]
		for _, c := range w.outstanding {
			if c > t {
				live = append(live, c)
			}
		}
		w.outstanding = live
		if len(w.outstanding) < w.p.MSHRs {
			return t
		}
		// All MSHRs busy: wait for the earliest completion.
		earliest := w.outstanding[0]
		for _, c := range w.outstanding[1:] {
			if c < earliest {
				earliest = c
			}
		}
		if earliest > t {
			t = earliest
		}
	}
}

// WaitMSHRSpan is WaitMSHR with miss-lifecycle tracing: any time spent
// waiting for a free MSHR is recorded on sp as the issue stage (entirely
// queueing). A nil sp reduces to WaitMSHR.
func (w *Window) WaitMSHRSpan(t int64, sp *span.Span) int64 {
	ready := w.WaitMSHR(t)
	if sp != nil && ready > t {
		sp.SegQ(span.StageIssue, t, ready-t, ready)
	}
	return ready
}

// AddMiss reserves an MSHR until complete.
func (w *Window) AddMiss(complete int64) {
	w.outstanding = append(w.outstanding, complete)
}

// Record retires a reference issued at issue whose data is complete at
// complete (for stores, completion is the store-buffer write, one cycle).
// Retirement is in order; the active-list slot frees at retirement.
func (w *Window) Record(issue, complete int64) {
	if complete < w.lastRetire {
		complete = w.lastRetire
	}
	w.lastRetire = complete
	w.ring[w.head] = complete
	w.head = (w.head + 1) % len(w.ring)
	w.issueFree = issue + int64(w.p.ComputePerRef)*w.cycleNs
}

// LastRetire returns the retirement time of the most recently retired
// reference; a newly completed miss stalls the processor only beyond this
// point, which is how the penalty cost metric is measured.
func (w *Window) LastRetire() int64 { return w.lastRetire }

// DrainTime returns when every issued reference has retired and every
// outstanding miss completed — the time the processor reaches a barrier.
func (w *Window) DrainTime() int64 {
	t := w.lastRetire
	if w.issueFree > t {
		t = w.issueFree
	}
	for _, c := range w.outstanding {
		if c > t {
			t = c
		}
	}
	return t
}

// SyncTo restarts execution at a barrier release time.
func (w *Window) SyncTo(t int64) {
	w.issueFree = t
	w.lastRetire = t
	for i := range w.ring {
		w.ring[i] = t
	}
	w.outstanding = w.outstanding[:0]
}

// CycleNs returns the clock period.
func (w *Window) CycleNs() int64 { return w.cycleNs }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
