package client

import (
	"encoding/json"
	"net"
	"sync"
	"time"

	"costcache/internal/wire"
)

// conn is one pipelined connection: writes are serialized by wmu (each
// request is encoded into a reused buffer and flushed), responses are read
// by a single background goroutine and matched to waiters by request ID, so
// many goroutines can have requests in flight on one socket and the server
// may answer them out of order.
type conn struct {
	nc net.Conn

	wmu    sync.Mutex // serializes encode+write
	wbuf   []byte
	nextID uint64

	mu      sync.Mutex // guards pending and err
	pending map[uint64]chan response
	err     error

	maxFrame int

	// Dial-time negotiation results (immutable after dialConn returns):
	// the server's feature bits and the estimated server-minus-client clock
	// offset in ns, from the handshake ping's round-trip midpoint.
	feats  uint8
	offset int64
}

// response is one matched reply. payload is an owned copy: the read loop's
// frame buffer is reused, so it must not escape.
type response struct {
	flags   uint8
	payload []byte
	err     error
}

// netDial connects to addr, bounding the handshake by the request timeout.
func netDial(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout > 0 {
		return net.DialTimeout("tcp", addr, timeout)
	}
	return net.Dial("tcp", addr)
}

func dialConn(cfg Config) (*conn, error) {
	nc, err := netDial(cfg.Addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	c := &conn{
		nc:       nc,
		pending:  make(map[uint64]chan response),
		maxFrame: cfg.MaxFrame,
	}
	go c.readLoop()
	// Feature negotiation: one PING round trip per connection. A
	// pre-extension server answers with an empty payload (no features); a
	// current one advertises FeatTrace and its tracer clock, from which the
	// client estimates this connection's clock offset as the server clock
	// minus the ping round trip's midpoint on the client clock.
	clock := cfg.Clock
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	t0 := clock()
	_, payload, err := c.roundTrip(wire.OpPing, 0, "", nil, cfg.Timeout)
	t1 := clock()
	if err != nil {
		c.close()
		return nil, err
	}
	feats, serverNow, ok, err := wire.ParsePingResp(payload)
	if err != nil {
		c.close()
		return nil, err
	}
	if ok {
		c.feats = feats
		c.offset = serverNow - (t0+t1)/2
	}
	return c, nil
}

func (c *conn) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

func (c *conn) close() { c.nc.Close() }

// fail marks the connection dead and wakes every waiter with err.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- response{err: c.err}
	}
	c.mu.Unlock()
}

func (c *conn) readLoop() {
	var f wire.Frame
	for {
		if err := wire.ReadFrame(c.nc, c.maxFrame, &f); err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if !ok {
			continue // a request that timed out and abandoned its slot
		}
		r := response{flags: f.Flags}
		if f.Flags&wire.FlagError != 0 {
			code, msg, perr := wire.ParseError(f.Payload)
			if perr != nil {
				r.err = perr
			} else {
				r.err = &Error{Code: code, Msg: msg}
			}
		} else {
			r.payload = append([]byte(nil), f.Payload...)
		}
		ch <- r
	}
}

// pendingReq is one sent-but-unanswered request: the handle Pending wraps.
type pendingReq struct {
	c  *conn
	id uint64
	ch chan response
}

// send encodes and writes one request frame, registering a response slot.
// The caller collects the response with pendingReq.wait.
func (c *conn) send(op, flags uint8, ns string, payload []byte) (*pendingReq, error) {
	ch := make(chan response, 1)

	c.wmu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		c.wmu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.mu.Unlock()
	f := wire.Frame{Version: wire.Version, Op: op, Flags: flags, ID: id, NS: ns, Payload: payload}
	c.wbuf = wire.AppendFrame(c.wbuf[:0], &f)
	_, werr := c.nc.Write(c.wbuf)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(werr)
		return nil, werr
	}
	return &pendingReq{c: c, id: id, ch: ch}, nil
}

// wait blocks for the response (bounded by timeout when positive). The
// returned payload is an owned copy.
func (p *pendingReq) wait(timeout time.Duration) (uint8, []byte, error) {
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case r := <-p.ch:
			return r.flags, r.payload, r.err
		case <-t.C:
			p.c.mu.Lock()
			delete(p.c.pending, p.id) // abandon: a late response is discarded
			p.c.mu.Unlock()
			return 0, nil, ErrTimeout
		}
	}
	r := <-p.ch
	return r.flags, r.payload, r.err
}

// roundTrip sends one request and blocks for its response.
func (c *conn) roundTrip(op, flags uint8, ns string, payload []byte, timeout time.Duration) (uint8, []byte, error) {
	p, err := c.send(op, flags, ns, payload)
	if err != nil {
		return 0, nil, err
	}
	return p.wait(timeout)
}

func (c *conn) stats(ns string, timeout time.Duration) (wire.Stats, error) {
	_, payload, err := c.roundTrip(wire.OpStats, 0, ns, nil, timeout)
	if err != nil {
		return wire.Stats{}, err
	}
	var st wire.Stats
	if err := json.Unmarshal(payload, &st); err != nil {
		return wire.Stats{}, err
	}
	return st, nil
}
