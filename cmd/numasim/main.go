// Command numasim runs the execution-driven CC-NUMA simulation of Section 4
// on one benchmark and prints execution time and memory behaviour under a
// chosen L2 replacement policy, with the LRU baseline for comparison.
//
// Usage:
//
//	numasim -bench Barnes -policy DCL [-mhz 500|1000] [-nohints] [-table3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/numasim"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("numasim: ")
	bench := flag.String("bench", "Barnes", "benchmark name")
	policy := flag.String("policy", "DCL", "L2 policy: any registry name (LRU, GD, BCL, DCL, ACL, DCL-a4, ACL-a4, ...)")
	mhz := flag.Int("mhz", 500, "processor clock in MHz (500 or 1000)")
	nohints := flag.Bool("nohints", false, "disable replacement hints")
	table3 := flag.Bool("table3", false, "print the consecutive-miss latency matrix")
	penalty := flag.Bool("penalty", false, "predict miss PENALTY instead of latency as the cost")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address")
	obsDump := flag.Bool("obs.dump", false, "dump the metrics registry as text after the run")
	flag.Parse()

	if *obsListen != "" {
		ln, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("observability: http://%s\n", ln.Addr())
	}

	g, ok := workload.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	prog, _ := workload.ProgramOf(g)
	f, ok := replacement.ByName(*policy)
	if !ok {
		log.Fatalf("unknown policy %q", *policy)
	}

	mk := func(fac replacement.Factory) numasim.Config {
		cfg := numasim.DefaultConfig(fac)
		cfg.ClockMHz = *mhz
		cfg.Protocol.Hints = !*nohints
		cfg.CollectTable3 = *table3
		cfg.UsePenalty = *penalty
		return cfg
	}

	cfg := mk(f)
	cfg.Metrics = obs.Default // instrument the policy run, not the LRU baseline
	res := numasim.Run(prog, cfg)
	base := res
	if *policy != "LRU" {
		base = numasim.Run(prog, mk(func() replacement.Policy { return replacement.NewLRU() }))
	}

	t := tabulate.New(fmt.Sprintf("%s on %d MHz, policy %s (hints=%v)", *bench, *mhz, *policy, !*nohints),
		"Metric", "LRU", *policy)
	t.AddF("execution time (us)", float64(base.ExecNs)/1000, float64(res.ExecNs)/1000)
	t.AddF("L2 misses", base.L2Misses, res.L2Misses)
	t.AddF("aggregate miss latency (us)", float64(base.AggMissNs)/1000, float64(res.AggMissNs)/1000)
	t.AddF("avg miss latency (ns)", base.AvgMissNs, res.AvgMissNs)
	t.AddF("invalidation msgs", base.Protocol.Invalidations, res.Protocol.Invalidations)
	t.AddF("forward nacks", base.Protocol.ForwardNacks, res.Protocol.ForwardNacks)
	t.Fprint(os.Stdout)
	fmt.Printf("execution time reduction over LRU: %.2f%%\n",
		100*float64(base.ExecNs-res.ExecNs)/float64(base.ExecNs))

	if *table3 && res.Table3 != nil {
		fmt.Println()
		res.Table3.Table().Fprint(os.Stdout)
		fmt.Printf("same-latency fraction: %.1f%%\n", res.Table3.SameLatencyFraction()*100)
	}

	if *obsDump {
		fmt.Println()
		obs.Default.Snapshot().WriteText(os.Stdout)
	}
}
