package costsim

import (
	"fmt"
	"runtime/debug"

	"costcache/internal/cost"
	"costcache/internal/replacement"
	"costcache/internal/trace"
)

// GeomPoint is one cell of a cache-geometry sweep: a fixed cost mapping
// evaluated at one cache configuration.
type GeomPoint struct {
	// Label names the configuration ("2-way", "64KB").
	Label string
	// LRUCost is the aggregate cost of the LRU baseline at this geometry.
	LRUCost int64
	// MissRate is LRU's L2 miss rate at this geometry.
	MissRate float64
	// Savings maps policy name to relative savings over LRU.
	Savings map[string]float64
	// Err is non-empty when this configuration panicked; the sweep carries
	// on with the remaining geometries (Savings is empty for error points).
	Err   string
	Stack string
}

// safeGeomPoint evaluates one geometry, converting a panic into an error
// point instead of aborting the sweep.
func safeGeomPoint(view []trace.SampleRef, cfg Config, label string, src cost.Source,
	policies []replacement.Factory) (pt GeomPoint) {
	defer func() {
		if r := recover(); r != nil {
			pt = GeomPoint{Label: label, Err: fmt.Sprintf("panic: %v", r), Stack: string(debug.Stack())}
		}
	}()
	return geomPoint(view, cfg, label, src, policies)
}

// AssocSweep evaluates the policies across associativities (the paper
// varies s from 2 to 8, Section 3.1) at a fixed cache size and random cost
// mapping.
func AssocSweep(view []trace.SampleRef, cfg Config, waysList []int, r Ratio, haf float64,
	policies []replacement.Factory, seed uint64) []GeomPoint {
	cfg = cfg.orDefault()
	src := CalibratedRandom(view, cfg.BlockBytes, haf, r, seed)
	var out []GeomPoint
	for _, ways := range waysList {
		c := cfg
		c.L2Ways = ways
		out = append(out, safeGeomPoint(view, c, fmt.Sprintf("%d-way", ways), src, policies))
	}
	return out
}

// SizeSweep evaluates the policies across L2 capacities (the paper examines
// 2KB to 512KB before settling on 16KB) at fixed associativity.
func SizeSweep(view []trace.SampleRef, cfg Config, sizes []int, r Ratio, haf float64,
	policies []replacement.Factory, seed uint64) []GeomPoint {
	cfg = cfg.orDefault()
	src := CalibratedRandom(view, cfg.BlockBytes, haf, r, seed)
	var out []GeomPoint
	for _, size := range sizes {
		c := cfg
		c.L2Size = size
		out = append(out, safeGeomPoint(view, c, fmt.Sprintf("%dKB", size>>10), src, policies))
	}
	return out
}

func geomPoint(view []trace.SampleRef, cfg Config, label string, src cost.Source,
	policies []replacement.Factory) GeomPoint {
	counts, stats := MissCounts(view, cfg)
	pt := GeomPoint{
		Label:    label,
		LRUCost:  CostOf(counts, src),
		MissRate: stats.MissRate(),
		Savings:  map[string]float64{},
	}
	for _, f := range policies {
		p := f()
		res := Run(view, cfg, p, src)
		pt.Savings[res.Policy] = RelativeSavings(pt.LRUCost, res.L2.AggCost)
	}
	return pt
}
