package replacement

import (
	"reflect"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newTestCache(t, 1, 4, NewLRU(), unitCost)
	for b := uint64(0); b < 4; b++ {
		if c.access(b) {
			t.Fatalf("cold access %d hit", b)
		}
	}
	// Touch 0 so 1 becomes LRU.
	if !c.access(0) {
		t.Fatal("expected hit on 0")
	}
	c.access(4) // evicts 1
	c.access(5) // evicts 2
	want := []uint64{1, 2}
	if !reflect.DeepEqual(c.evictions, want) {
		t.Fatalf("evictions = %v, want %v", c.evictions, want)
	}
}

func TestLRUHitMissAccounting(t *testing.T) {
	c := newTestCache(t, 2, 2, NewLRU(), unitCost)
	// All even blocks map to set 0 of the 2-set cache: {0,2} fill it, the
	// two re-touches hit, then 4 evicts LRU 0 and the final 0 evicts 2.
	seq := []uint64{0, 2, 0, 2, 4, 0}
	for _, b := range seq {
		c.access(b)
	}
	if c.hits != 2 || c.misses != 4 {
		t.Fatalf("hits=%d misses=%d, want 2/4", c.hits, c.misses)
	}
	if !reflect.DeepEqual(c.evictions, []uint64{0, 2}) {
		t.Fatalf("evictions = %v", c.evictions)
	}
}

func TestLRUInvalidatedWayReusedFirst(t *testing.T) {
	c := newTestCache(t, 1, 4, NewLRU(), unitCost)
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	c.invalidate(2)
	c.access(9) // must use the freed way: no eviction
	if len(c.evictions) != 0 {
		t.Fatalf("unexpected evictions %v", c.evictions)
	}
	c.access(10) // now a real eviction of LRU = 0
	if !reflect.DeepEqual(c.evictions, []uint64{0}) {
		t.Fatalf("evictions = %v, want [0]", c.evictions)
	}
}

func TestLRUInvalidateUncachedIsNoop(t *testing.T) {
	c := newTestCache(t, 1, 2, NewLRU(), unitCost)
	c.access(1)
	c.invalidate(99) // not cached
	if !c.access(1) {
		t.Fatal("block 1 should still hit")
	}
}

func TestRandomVictimAlwaysValid(t *testing.T) {
	c := newTestCache(t, 4, 4, NewRandom(12345), unitCost)
	for i := 0; i < 10000; i++ {
		c.access(uint64(i*7919) % 512)
	}
	// The harness fails the test if Victim ever returns an invalid way.
	if c.misses == 0 {
		t.Fatal("expected misses")
	}
}

func TestRandomDeterministic(t *testing.T) {
	run := func() []uint64 {
		c := newTestCache(t, 2, 2, NewRandom(7), unitCost)
		for i := 0; i < 1000; i++ {
			c.access(uint64(i*31) % 64)
		}
		return c.evictions
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("Random policy with the same seed must be deterministic")
	}
}

func TestStackInvariants(t *testing.T) {
	m := newSetMeta(4)
	m.fill(0, 10, 1)
	m.fill(1, 11, 1)
	m.fill(2, 12, 1)
	m.touch(0)
	// stack: 0,2,1 then invalid way 3 at the back
	if got := m.lruWay(); got != 1 {
		t.Fatalf("lruWay = %d, want 1", got)
	}
	m.invalidate(2)
	if m.live != 2 {
		t.Fatalf("live = %d, want 2", m.live)
	}
	// invalid ways must form a suffix
	seenInvalid := false
	for _, w := range m.stack {
		if !m.valid[w] {
			seenInvalid = true
		} else if seenInvalid {
			t.Fatalf("valid way after invalid in stack %v", m.stack)
		}
	}
	// stack must stay a permutation
	seen := map[int]bool{}
	for _, w := range m.stack {
		if seen[w] {
			t.Fatalf("duplicate way %d in stack %v", w, m.stack)
		}
		seen[w] = true
	}
	if _, _, ok := m.lruIdent(); !ok {
		t.Fatal("lruIdent should be ok with live blocks")
	}
	m.invalidate(0)
	m.invalidate(1)
	if w := m.lruWay(); w != -1 {
		t.Fatalf("empty set lruWay = %d, want -1", w)
	}
}

func TestResetPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLRU().Reset(0, 4)
}
