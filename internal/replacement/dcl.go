package replacement

import "fmt"

// DCL is the Dynamic Cost-sensitive LRU algorithm (Section 2.4), and — with
// the adaptive flag — the Adaptive Cost-sensitive LRU algorithm ACL
// (Section 2.5), which the paper derives from DCL.
//
// DCL improves on BCL by depreciating the reserved LRU block's cost only when
// a block victimized in its place is actually re-referenced before the
// reserved block: replaced non-LRU blocks are recorded in a per-set Extended
// Tag Directory (ETD) of s-1 entries; an access that misses in the cache but
// hits in the ETD depreciates Acost (by twice the recorded cost, as in BCL)
// and consumes the entry. A hit on the cache's LRU block invalidates all ETD
// entries, and so does an external invalidation of a recorded block.
//
// ACL adds a per-set two-bit saturating counter that enables reservations
// only while it is positive. The counter increments when a reservation
// succeeds (the reserved block is re-referenced) and decrements when one
// fails (the reserved block is finally evicted). While reservations are
// disabled the ETD is used as a probe: an evicted LRU block enters the ETD
// whenever some other cached block has a lower cost, and a subsequent ETD hit
// — evidence that a reservation would have paid off — re-enables reservations
// by setting the counter to two and clearing the ETD.
type DCL struct {
	stackBase
	acost    []Cost
	lruW     []int
	lruT     []uint64
	reserved []bool
	etds     []etd

	adaptive bool
	counter  []uint8 // ACL: saturating counter per set

	opt        Options
	factor     Cost  // depreciation multiplier
	counterMax uint8 // saturation value of the ACL counter
	tagBits    int   // 0 = full tags; otherwise ETD stores tagBits low bits

	invoked, succeeded, failed int64
	etdProbes, etdHits         int64
	falseMatches               int64
	enables                    int64 // ACL: disabled->enabled transitions

	obs Observer
}

// SetObserver implements Observable.
func (p *DCL) SetObserver(o Observer) { p.obs = o }

// Options configures DCL/ACL variants. The zero value is the paper's
// configuration.
type Options struct {
	// TagBits, when positive, enables ETD tag aliasing: only the low TagBits
	// bits of each tag are stored and compared (Section 4.3 uses 4).
	TagBits int
	// Factor is the cost depreciation multiplier applied on ETD hits; 0
	// means the paper's 2.
	Factor int
	// ETDEntries overrides the ETD size; 0 means the paper's s-1 (larger
	// values are provably useless under pure LRU, Section 2.4 — the knob
	// exists for the ablation that demonstrates it).
	ETDEntries int
	// CounterBits is the width of ACL's per-set enable counter; 0 means the
	// paper's 2 bits (saturating at 3, re-enabled at 2).
	CounterBits int
}

// NewDCL returns the dynamic cost-sensitive LRU policy with full ETD tags.
func NewDCL() *DCL { return NewDCLWith(Options{}) }

// NewDCLWith returns DCL with the given options.
func NewDCLWith(o Options) *DCL { return newDCL(o, false) }

// NewACL returns the adaptive cost-sensitive LRU policy with full ETD tags.
func NewACL() *DCL { return NewACLWith(Options{}) }

// NewACLWith returns ACL with the given options.
func NewACLWith(o Options) *DCL { return newDCL(o, true) }

func newDCL(o Options, adaptive bool) *DCL {
	p := &DCL{adaptive: adaptive, opt: o, tagBits: o.TagBits, factor: 2, counterMax: 3}
	if o.Factor > 0 {
		p.factor = Cost(o.Factor)
	}
	if o.CounterBits > 0 {
		p.counterMax = uint8(1<<o.CounterBits - 1)
	}
	return p
}

// Name implements Policy.
func (p *DCL) Name() string {
	base := "DCL"
	if p.adaptive {
		base = "ACL"
	}
	if p.tagBits > 0 {
		return fmt.Sprintf("%s-a%d", base, p.tagBits)
	}
	return base
}

// Reset implements Policy.
func (p *DCL) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.acost = make([]Cost, sets)
	p.lruW = make([]int, sets)
	p.lruT = make([]uint64, sets)
	p.reserved = make([]bool, sets)
	p.counter = make([]uint8, sets)
	p.etds = make([]etd, sets)
	mask := ^uint64(0)
	if p.tagBits > 0 && p.tagBits < 64 {
		mask = (uint64(1) << p.tagBits) - 1
	}
	entries := ways - 1
	if p.opt.ETDEntries > 0 {
		entries = p.opt.ETDEntries
	}
	if entries < 1 {
		entries = 1
	}
	for i := range p.etds {
		p.etds[i] = newETD(entries, mask)
		p.lruW[i] = -1
	}
	p.invoked, p.succeeded, p.failed = 0, 0, 0
	p.etdProbes, p.etdHits, p.falseMatches, p.enables = 0, 0, 0, 0
}

func (p *DCL) enabled(set int) bool { return !p.adaptive || p.counter[set] > 0 }

func (p *DCL) refreshLRU(set int) {
	m := p.set(set)
	w, tag, ok := m.lruIdent()
	if !ok {
		p.lruW[set] = -1
		p.reserved[set] = false
		return
	}
	if w != p.lruW[set] || tag != p.lruT[set] {
		p.lruW[set], p.lruT[set] = w, tag
		p.acost[set] = m.cost[w]
		p.reserved[set] = false
	}
}

// Access implements Policy: on a cache miss, probe the ETD. An ETD hit either
// depreciates the reserved block's cost (reservations enabled) or re-enables
// reservations (ACL disabled mode).
func (p *DCL) Access(set int, tag uint64, hit bool) {
	if hit {
		return
	}
	p.etdProbes++
	idx, cost, falseMatch, ok := p.etds[set].probe(tag)
	if !ok {
		return
	}
	p.etdHits++
	if falseMatch {
		p.falseMatches++
	}
	if p.adaptive && p.counter[set] == 0 {
		// Probe hit while disabled: a reservation would have saved cost.
		p.counter[set] = min8(2, p.counterMax)
		p.enables++
		p.etds[set].clear()
		if p.obs != nil {
			p.obs.Observe(Event{Kind: EvACLEnable, Set: set, Way: -1, StackPos: -1,
				Tag: tag, Cost: cost, Counter: p.counter[set], FalseMatch: falseMatch})
		}
		return
	}
	p.acost[set] -= p.factor * cost
	p.etds[set].consume(idx)
	if p.obs != nil {
		p.obs.Observe(Event{Kind: EvETDHit, Set: set, Way: -1, StackPos: -1,
			Tag: tag, Cost: cost, Counter: p.counter[set], FalseMatch: falseMatch})
	}
}

// Touch implements Policy. A hit on the block in the LRU position terminates
// the bookkeeping for the current reservation round: it is a reservation
// success and all ETD entries are invalidated.
func (p *DCL) Touch(set, way int) {
	m := p.set(set)
	if way == p.lruW[set] && m.valid[way] {
		if p.reserved[set] {
			p.succeeded++
			if p.adaptive {
				p.bumpCounter(set, +1)
			}
			if p.obs != nil {
				p.obs.Observe(Event{Kind: EvReserveSuccess, Set: set, Way: way,
					StackPos: -1, Tag: p.lruT[set], Cost: m.cost[way], Counter: p.counter[set]})
			}
		}
		p.etds[set].clear()
	}
	m.touch(way)
	p.refreshLRU(set)
}

// Victim implements Policy.
func (p *DCL) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	lru := m.lruWay()
	if p.enabled(set) {
		for pos := m.live - 2; pos >= 0; pos-- {
			w := m.stack[pos]
			if m.cost[w] < p.acost[set] {
				// Reserve the LRU blockframe; remember the sacrificed block
				// so its re-reference can be detected.
				p.etds[set].insert(m.tag[w], m.cost[w])
				if !p.reserved[set] {
					p.reserved[set] = true
					p.invoked++
					if p.obs != nil {
						p.obs.Observe(Event{Kind: EvReserveOpen, Set: set, Way: lru,
							StackPos: m.live - 1, Tag: p.lruT[set], Cost: m.cost[lru],
							Counter: p.counter[set]})
					}
				}
				if p.obs != nil {
					p.obs.Observe(Event{Kind: EvEvict, Set: set, Way: w, StackPos: pos,
						Tag: m.tag[w], Cost: m.cost[w], LRUCost: m.cost[lru],
						Counter: p.counter[set]})
				}
				return w
			}
		}
		if p.reserved[set] {
			// The reserved block is evicted without having been referenced.
			p.failed++
			if p.adaptive {
				p.bumpCounter(set, -1)
			}
			p.reserved[set] = false
			if p.obs != nil {
				p.obs.Observe(Event{Kind: EvReserveAbandon, Set: set, Way: lru,
					StackPos: m.live - 1, Tag: p.lruT[set], Cost: m.cost[lru],
					Counter: p.counter[set]})
				if p.adaptive && p.counter[set] == 0 {
					p.obs.Observe(Event{Kind: EvACLDisable, Set: set, Way: -1,
						StackPos: -1, Tag: p.lruT[set], Cost: m.cost[lru]})
				}
			}
		}
		if p.obs != nil {
			p.obs.Observe(Event{Kind: EvEvict, Set: set, Way: lru, StackPos: m.live - 1,
				Tag: m.tag[lru], Cost: m.cost[lru], LRUCost: m.cost[lru],
				Counter: p.counter[set]})
		}
		return lru
	}
	// ACL, reservations disabled: evict LRU, but record it in the ETD when
	// some other cached block has a lower cost — had reservations been on,
	// this replacement would have invoked one.
	lruCost := m.cost[lru]
	for pos := 0; pos < m.live-1; pos++ {
		if m.cost[m.stack[pos]] < lruCost {
			p.etds[set].insert(m.tag[lru], lruCost)
			break
		}
	}
	if p.obs != nil {
		p.obs.Observe(Event{Kind: EvEvict, Set: set, Way: lru, StackPos: m.live - 1,
			Tag: m.tag[lru], Cost: lruCost, LRUCost: lruCost})
	}
	return lru
}

func (p *DCL) bumpCounter(set, delta int) {
	c := int(p.counter[set]) + delta
	if c < 0 {
		c = 0
	}
	if c > int(p.counterMax) {
		c = int(p.counterMax)
	}
	p.counter[set] = uint8(c)
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// Fill implements Policy.
func (p *DCL) Fill(set, way int, tag uint64, cost Cost) {
	p.set(set).fill(way, tag, cost)
	p.refreshLRU(set)
}

// Invalidate implements Policy. The ETD is purged of the tag even when the
// block is not cached.
func (p *DCL) Invalidate(set, way int, tag uint64) {
	p.etds[set].invalidateTag(tag)
	if way < 0 {
		return
	}
	m := p.set(set)
	if way == p.lruW[set] && p.reserved[set] {
		// The reserved block disappeared through no fault of the policy's:
		// clear the reservation without counting success or failure.
		p.reserved[set] = false
		if p.obs != nil {
			p.obs.Observe(Event{Kind: EvReserveCancel, Set: set, Way: way,
				StackPos: -1, Tag: tag, Cost: m.cost[way], Counter: p.counter[set]})
		}
	}
	m.invalidate(way)
	p.refreshLRU(set)
}

// Reservations implements ReservationStats.
func (p *DCL) Reservations() (invoked, succeeded int64) { return p.invoked, p.succeeded }

// ETDStats reports ETD probe traffic: total probes on cache misses, hits,
// and how many hits were false matches caused by tag aliasing.
func (p *DCL) ETDStats() (probes, hits, falseMatches int64) {
	return p.etdProbes, p.etdHits, p.falseMatches
}

// Enables reports how many times ACL re-enabled reservations from the
// disabled state (always 0 for plain DCL).
func (p *DCL) Enables() int64 { return p.enables }

// Acost exposes a set's depreciated reserved-block cost for tests.
func (p *DCL) Acost(set int) Cost { return p.acost[set] }

// Counter exposes a set's ACL enable counter for tests.
func (p *DCL) Counter(set int) uint8 { return p.counter[set] }
