#!/bin/sh
# CI gate: formatting, vet, build, tests, and the full suite under the race
# detector. Run from the repository root.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
