package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestInterruptedRoundTrip(t *testing.T) {
	m := New("test")
	m.SetConfig("bench", "Barnes")
	m.SetMetric("refs", 123)
	m.MarkInterrupted()

	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"interrupted": true`) {
		t.Fatal("interrupted flag missing from the JSON document")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Interrupted {
		t.Fatal("interrupted flag lost in the round trip")
	}
}

func TestUninterruptedOmitsFlag(t *testing.T) {
	m := New("test")
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "interrupted") {
		t.Fatal("complete run's manifest mentions interruption")
	}
}
