package stitch

import (
	"strings"
	"testing"

	"costcache/internal/manifest"
)

// mkClient builds a client span whose net round trip brackets
// [wStart, rEnd], with a short decision stage before the write.
func mkClient(id uint64, node int, outcome string, start, wStart, wEnd, rStart, rEnd, end int64) Span {
	return Span{
		ID: id, Shard: node, Key: id * 10, Op: "getorload", Outcome: outcome,
		Start: start, End: end,
		Stages: []Seg{
			{Stage: "decision", Start: start, End: wStart},
			{Stage: "net_write", Start: wStart, End: wEnd},
			{Stage: "net_read", Start: rStart, End: rEnd},
		},
	}
}

// mkServer builds the server half of client span cid on node, on a clock
// shifted by skew: the span covers [start+skew, end+skew] in server time.
func mkServer(id, cid uint64, node string, skew, start, end int64) Span {
	return Span{
		ID: id, Node: node, ClientID: cid, Shard: 2, Key: cid * 10,
		Op: "getorload", Outcome: "miss",
		Start: start + skew, End: end + skew,
		Stages: []Seg{
			{Stage: "lock_wait", Start: start + skew, End: start + skew + 50},
			{Stage: "load", Start: start + skew + 50, End: end + skew},
		},
	}
}

// TestSkewedClocksStitch is the headline property: server tracers running on
// wildly skewed clocks must still stitch into a timeline with zero
// negative-duration spans and every server span strictly inside its client's
// net round trip, with the recovered offset close to the injected skew.
func TestSkewedClocksStitch(t *testing.T) {
	skews := map[string]int64{"n0": 12_345_678_901, "n1": -987_654_321}
	var spans []Span
	var id uint64
	for ni, node := range []string{"n0", "n1"} {
		for i := 0; i < 4; i++ {
			id++
			base := int64(ni*100_000 + i*10_000)
			// client: write 100ns, server turnaround inside, read at the end
			cl := mkClient(id, ni, "miss", base, base+20, base+120, base+800, base+900, base+910)
			// server span sits inside (base+150, base+750) in true client time
			sv := mkServer(1000+id, id, node, skews[node], base+150, base+750)
			spans = append(spans, cl, sv)
		}
	}

	r, err := Stitch(spans)
	if err != nil {
		t.Fatalf("Stitch: %v", err)
	}
	if r.Clients != 8 || r.Servers != 8 || r.Pairs != 8 || r.Local != 0 {
		t.Fatalf("counts = %d/%d/%d/%d, want 8/8/8/0", r.Clients, r.Servers, r.Pairs, r.Local)
	}
	if len(r.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(r.Nodes))
	}
	for _, fit := range r.Nodes {
		want := -skews[fit.Node] // shifting server time back onto client time
		// The offset can only be known to within the slack of the tightest
		// round trip; here every pair leaves the same feasible window.
		if diff := fit.OffsetNs - want; diff < -500 || diff > 500 {
			t.Errorf("node %s offset %d, want %d±500 (slack %d)", fit.Node, fit.OffsetNs, want, fit.SlackNs)
		}
		if fit.SlackNs < 0 {
			t.Errorf("node %s negative slack %d", fit.Node, fit.SlackNs)
		}
	}
	// Strict containment after the shift, checked pair by pair.
	for node, ps := range r.byNode {
		off := r.offsets[node]
		for _, p := range ps {
			s, e := p.server.Start+off, p.server.End+off
			if e < s {
				t.Fatalf("node %s: shifted server span %d has negative duration", node, p.server.ID)
			}
			if s < p.wStart || e > p.rEnd {
				t.Fatalf("node %s: shifted server span %d [%d,%d] outside client bracket [%d,%d]",
					node, p.server.ID, s, e, p.wStart, p.rEnd)
			}
		}
	}

	trace := r.ChromeTrace()
	events, spanCount, err := manifest.ValidateChromeTrace(trace)
	if err != nil {
		t.Fatalf("ValidateChromeTrace: %v", err)
	}
	if spanCount != 16 { // 8 client + 8 server outcome slices
		t.Fatalf("chrome spans = %d, want 16 (events %d)", spanCount, events)
	}
}

func TestOrphanServerSpan(t *testing.T) {
	spans := []Span{
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
		mkServer(100, 1, "n0", 0, 100, 300),
		mkServer(101, 7, "n0", 0, 100, 300), // no client span 7
	}
	if _, err := Stitch(spans); err == nil || !strings.Contains(err.Error(), "orphan server span") {
		t.Fatalf("err = %v, want orphan server span", err)
	}
}

func TestOrphanClientSpan(t *testing.T) {
	spans := []Span{
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
		mkClient(2, 0, "hit", 1000, 1010, 1050, 1400, 1500, 1510), // no server half
		mkServer(100, 1, "n0", 0, 100, 300),
	}
	if _, err := Stitch(spans); err == nil || !strings.Contains(err.Error(), "orphan client span") {
		t.Fatalf("err = %v, want orphan client span", err)
	}
	// An errored round trip is exempt: the request may never have reached
	// a server.
	spans[1].Outcome = "error"
	if _, err := Stitch(spans); err != nil {
		t.Fatalf("Stitch with errored orphan: %v", err)
	}
}

func TestInfeasibleOffsets(t *testing.T) {
	// Two pairs whose brackets demand contradictory offsets for one node:
	// pair 1 wants off >= 1_000_000, pair 2 wants off <= -1_000_000.
	spans := []Span{
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
		mkServer(100, 1, "n0", -1_000_000, 100, 300),
		mkClient(2, 0, "miss", 1000, 1010, 1050, 1400, 1500, 1510),
		mkServer(101, 2, "n0", 1_000_000, 1100, 1300),
	}
	if _, err := Stitch(spans); err == nil || !strings.Contains(err.Error(), "feasible interval") {
		t.Fatalf("err = %v, want infeasible interval", err)
	}
}

func TestNegativeDurationRejected(t *testing.T) {
	sp := mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510)
	sp.End = -5
	sp.Stages = nil
	if _, err := Stitch([]Span{sp}); err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Fatalf("err = %v, want negative duration", err)
	}
}

func TestLocalSpansPassThrough(t *testing.T) {
	// A client span with no net bracket (in-process request) rides along
	// unmatched even when server spans exist.
	local := Span{ID: 5, Shard: 1, Key: 50, Op: "get", Outcome: "hit", Start: 0, End: 100,
		Stages: []Seg{{Stage: "lock_wait", Start: 0, End: 20}}}
	spans := []Span{
		local,
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
		mkServer(100, 1, "n0", 0, 100, 300),
	}
	r, err := Stitch(spans)
	if err != nil {
		t.Fatalf("Stitch: %v", err)
	}
	if r.Local != 1 || r.Pairs != 1 {
		t.Fatalf("local=%d pairs=%d, want 1/1", r.Local, r.Pairs)
	}
	if _, _, err := manifest.ValidateChromeTrace(r.ChromeTrace()); err != nil {
		t.Fatalf("ValidateChromeTrace: %v", err)
	}
}

func TestParseJSONL(t *testing.T) {
	data := strings.Join([]string{
		`{"id":7,"kind":"req","shard":3,"key":9041144,"op":"getorload","outcome":"miss","cost":8,"start":10250,"end":91375,"stages":[{"stage":"lock_wait","start":10250,"end":10400}]}`,
		`{"id":9,"kind":"req","node":"n0","client_id":7,"shard":1,"key":9041144,"op":"getorload","outcome":"miss","cost":8,"start":20,"end":80,"stages":[]}`,
		`{"id":3,"node":2,"class":"remote-dirty","start":0,"end":100}`, // simulator line: skipped
		``,
	}, "\n")
	spans, err := ParseJSONL([]byte(data))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].ID != 7 || spans[0].ClientID != 0 || spans[0].Key != 9041144 {
		t.Fatalf("client span = %+v", spans[0])
	}
	if spans[1].Node != "n0" || spans[1].ClientID != 7 {
		t.Fatalf("server span = %+v", spans[1])
	}
	if _, err := ParseJSONL([]byte(`{"id":`)); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestDuplicateAndDoubleMatch(t *testing.T) {
	dup := []Span{
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
	}
	if _, err := Stitch(dup); err == nil || !strings.Contains(err.Error(), "duplicate client span id") {
		t.Fatalf("err = %v, want duplicate client span id", err)
	}
	double := []Span{
		mkClient(1, 0, "miss", 0, 10, 50, 400, 500, 510),
		mkServer(100, 1, "n0", 0, 100, 300),
		mkServer(101, 1, "n1", 0, 120, 320),
	}
	if _, err := Stitch(double); err == nil || !strings.Contains(err.Error(), "multiple server spans") {
		t.Fatalf("err = %v, want multiple server spans", err)
	}
}

// TestManyPairsTightenOffset checks that more pairs narrow the feasible
// interval: the tightest round trip dominates the slack.
func TestManyPairsTightenOffset(t *testing.T) {
	var spans []Span
	var id uint64
	slack := []int64{400, 200, 40} // bracket slack around each server span
	for _, s := range slack {
		id++
		base := int64(id) * 10_000
		// bracket [base+20, base+900]; the server span fills all but s of it
		cl := mkClient(id, 0, "miss", base, base+20, base+100, base+800, base+900, base+910)
		sv := mkServer(1000+id, id, "n0", 777, base+20+s/2, base+900-s/2)
		spans = append(spans, cl, sv)
	}
	r, err := Stitch(spans)
	if err != nil {
		t.Fatalf("Stitch: %v", err)
	}
	if len(r.Nodes) != 1 {
		t.Fatalf("nodes = %d", len(r.Nodes))
	}
	fit := r.Nodes[0]
	if fit.SlackNs > 40 {
		t.Fatalf("slack = %d, want <= 40 (tightest pair)", fit.SlackNs)
	}
	if want := int64(-777); fit.OffsetNs < want-20 || fit.OffsetNs > want+20 {
		t.Fatalf("offset = %d, want %d±20", fit.OffsetNs, want)
	}
}
