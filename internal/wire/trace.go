package wire

import (
	"encoding/binary"
	"fmt"
)

// TraceCtxLen is the fixed size of the trace-context prefix a FlagTraced
// request payload starts with: span id (8) + op index (8) + trace flags (1).
const TraceCtxLen = 17

// traceFlagEmit marks the client's sampling decision: the span will be
// emitted to the client's JSONL/Chrome sinks, so the server should emit its
// half too.
const traceFlagEmit uint8 = 1

// TraceCtx is the trace context a client propagates on a sampled request:
// the client-side span id the server's span must carry (the join key for
// report -stitch), the client's per-target op index (debugging aid: which
// request of the run this was), and the sampling decision — whether the
// client will emit the span in full, so both sides emit exactly the same
// span set.
type TraceCtx struct {
	// SpanID is the client tracer's span id for this request.
	SpanID uint64
	// Op is the client's op index for this request (1-based).
	Op uint64
	// Emit is the client's emit-sampling decision for this span.
	Emit bool
}

// AppendTraceCtx encodes tc onto b. The caller must also set FlagTraced on
// the frame and append the op body after the context.
func AppendTraceCtx(b []byte, tc TraceCtx) []byte {
	b = binary.BigEndian.AppendUint64(b, tc.SpanID)
	b = binary.BigEndian.AppendUint64(b, tc.Op)
	var fl uint8
	if tc.Emit {
		fl |= traceFlagEmit
	}
	return append(b, fl)
}

// ParseTraceCtx decodes the trace-context prefix of a FlagTraced request
// payload and returns the op body that follows it. rest aliases p.
func ParseTraceCtx(p []byte) (tc TraceCtx, rest []byte, err error) {
	if len(p) < TraceCtxLen {
		return TraceCtx{}, nil, fmt.Errorf("wire: traced payload %d bytes, want >= %d", len(p), TraceCtxLen)
	}
	tc.SpanID = binary.BigEndian.Uint64(p)
	tc.Op = binary.BigEndian.Uint64(p[8:])
	tc.Emit = p[16]&traceFlagEmit != 0
	return tc, p[TraceCtxLen:], nil
}

// Feature bits carried in the first byte of a PING response payload.
const (
	// FeatTrace: the server understands FlagTraced request payloads and
	// binds the propagated context to its engine spans.
	FeatTrace uint8 = 1 << iota
)

// pingRespLen is the size of a feature-negotiating PING response payload:
// feature byte (1) + server tracer clock in ns (8).
const pingRespLen = 9

// AppendPingResp encodes a feature-negotiating PING response payload:
// the server's feature bits plus its tracer clock (ns since the server
// tracer's epoch) read as close to the reply as possible. Clients estimate
// the client→server clock offset per connection as serverNow minus the
// ping round trip's midpoint; report -stitch refines it from the spans
// themselves. A pre-extension server answers PING with an empty payload,
// which clients read as "no features".
func AppendPingResp(b []byte, features uint8, serverNow int64) []byte {
	b = append(b, features)
	return binary.BigEndian.AppendUint64(b, uint64(serverNow))
}

// ParsePingResp decodes a PING response payload. ok is false for an empty
// (pre-extension) payload; any other malformed length is an error.
func ParsePingResp(p []byte) (features uint8, serverNow int64, ok bool, err error) {
	if len(p) == 0 {
		return 0, 0, false, nil
	}
	if len(p) != pingRespLen {
		return 0, 0, false, fmt.Errorf("wire: ping response payload %d bytes, want 0 or %d", len(p), pingRespLen)
	}
	return p[0], int64(binary.BigEndian.Uint64(p[1:])), true, nil
}

// ManifestNS is one namespace's engine counters inside a NodeManifest —
// exactly the counters the cluster-manifest reconciliation sums across
// nodes and compares bit-for-bit against client-observed totals.
type ManifestNS struct {
	Namespace string `json:"namespace"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Coalesced int64  `json:"coalesced"`
	Evictions int64  `json:"evictions"`
	CostPaid  int64  `json:"cost_paid"`
	Expired   int64  `json:"expired"`
}

// NodeManifest is the OpManifest response body (JSON-encoded, like OpStats):
// the node's identity plus every namespace's engine counters and the
// server-wide serving-tier totals, snapshotted in one place so a client can
// assemble a cluster manifest without scraping HTTP endpoints.
type NodeManifest struct {
	// Node is the server's -node name (its listen address when unset).
	Node string `json:"node"`
	// Namespaces carries one entry per hosted namespace, name-sorted.
	Namespaces []ManifestNS `json:"namespaces"`
	// Serving-tier totals, server-wide.
	ConnsAccepted int64 `json:"conns_accepted"`
	FramesIn      int64 `json:"frames_in"`
	FramesOut     int64 `json:"frames_out"`
	ServerShed    int64 `json:"server_shed"`
}
