package loadgen_test

import (
	"testing"
	"time"

	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/loadgen"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
	"costcache/internal/server"
)

func startNode(t *testing.T, backend server.Backend) (*server.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 4, Sets: 1024, Ways: 4})
	s, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		Namespaces: []*server.Namespace{{Name: "bench", Engine: eng, Backend: backend}},
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	t.Cleanup(s.Close)
	return s, eng
}

func dialRing(t *testing.T, addrs []string) *client.Ring {
	t.Helper()
	r, err := client.NewRing(client.RingConfig{
		Addrs:  addrs,
		Client: client.Config{Conns: 2, Timeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestRemoteMatchesInProcess is the acceptance-criteria check in miniature:
// the same single-worker closed-loop config run in-process and over the
// wire against a 1-node server produces bit-identical
// hits/misses/coalesced/cost_paid counters.
func TestRemoteMatchesInProcess(t *testing.T) {
	cfg := loadgen.Config{
		Mode: loadgen.Closed, Workers: 1, Ops: 4000,
		Keys: 512, ZipfS: 1.2, Seed: 7,
	}

	local := engine.New(engine.Config{Shards: 4, Sets: 1024, Ways: 4})
	localRes, err := loadgen.Run(local, cfg, nil)
	if err != nil {
		t.Fatalf("in-process run: %v", err)
	}

	s, _ := startNode(t, nil) // default echo backend, zero delay
	ring := dialRing(t, []string{s.Addr().String()})
	rcfg := cfg
	rcfg.Target = loadgen.NewRemoteTarget(ring, "bench", nil)
	remoteRes, err := loadgen.Run(nil, rcfg, nil)
	if err != nil {
		t.Fatalf("remote run: %v", err)
	}

	l, r := localRes.Stats, remoteRes.Stats
	if l.Hits != r.Hits || l.Misses != r.Misses || l.Coalesced != r.Coalesced || l.CostPaid != r.CostPaid {
		t.Fatalf("remote diverges from in-process:\n  local  hits=%d misses=%d coalesced=%d cost=%d\n  remote hits=%d misses=%d coalesced=%d cost=%d",
			l.Hits, l.Misses, l.Coalesced, l.CostPaid,
			r.Hits, r.Misses, r.Coalesced, r.CostPaid)
	}
	if l.Hits+l.Misses+l.Coalesced != int64(cfg.Ops) {
		t.Fatalf("ops don't reconcile: %d+%d+%d != %d", l.Hits, l.Misses, l.Coalesced, cfg.Ops)
	}
}

// TestRemoteSpansTileLatency runs a fully-sampled remote load and asserts
// every request produced a span whose outcome counts match the server's
// counters and whose net stages carry the latency.
func TestRemoteSpansTileLatency(t *testing.T) {
	s, eng := startNode(t, nil)
	ring := dialRing(t, []string{s.Addr().String()})
	tr := reqspan.New(reqspan.Config{AttrRate: 1}, nil, nil)

	cfg := loadgen.Config{
		Mode: loadgen.Closed, Workers: 1, Ops: 1000,
		Keys: 128, ZipfS: 1.1, Seed: 3,
		Target: loadgen.NewRemoteTarget(ring, "bench", tr),
		Tracer: tr,
	}
	res, err := loadgen.Run(nil, cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if tr.Requests() != uint64(cfg.Ops) {
		t.Fatalf("tracer saw %d requests, want %d", tr.Requests(), cfg.Ops)
	}
	attr := tr.Attribution()
	st := eng.Stats()
	if attr.Outcomes[reqspan.OutcomeHit] != st.Hits ||
		attr.Outcomes[reqspan.OutcomeMiss] != st.Misses ||
		attr.Outcomes[reqspan.OutcomeCoalesced] != st.Coalesced {
		t.Fatalf("span outcomes (hit=%d miss=%d coal=%d) != server counters (hit=%d miss=%d coal=%d)",
			attr.Outcomes[reqspan.OutcomeHit], attr.Outcomes[reqspan.OutcomeMiss],
			attr.Outcomes[reqspan.OutcomeCoalesced], st.Hits, st.Misses, st.Coalesced)
	}
	if attr.CostPaid != st.CostPaid {
		t.Fatalf("span cost sum %d != server cost_paid %d", attr.CostPaid, st.CostPaid)
	}
	nw := attr.Stages[reqspan.StageNetWrite]
	nr := attr.Stages[reqspan.StageNetRead]
	if nw.Count != int64(cfg.Ops) || nr.Count != int64(cfg.Ops) {
		t.Fatalf("net stage counts write=%d read=%d, want %d each", nw.Count, nr.Count, cfg.Ops)
	}
	if nw.Ns <= 0 || nr.Ns <= 0 {
		t.Fatal("net stages carry no time")
	}
	if res.Stats.Hits != st.Hits {
		t.Fatalf("result stats hits %d != engine %d", res.Stats.Hits, st.Hits)
	}
}

// TestOpenLoopCoordinatedOmission pins the open-loop scheduler's
// coordinated-omission-free contract over the remote transport: at an
// offered rate far above the tier's capacity, measured latency must include
// the queueing delay behind the scheduled arrivals — growing far past the
// backend service time — while a comfortably under-capacity run stays near
// it. A scheduler that (incorrectly) re-anchored each arrival at "now"
// would report near-service-time latency in both runs.
func TestOpenLoopCoordinatedOmission(t *testing.T) {
	const service = 20 * time.Millisecond
	backend := func(key uint64, cost replacement.Cost) ([]byte, error) {
		time.Sleep(service)
		return []byte("v"), nil
	}
	s, _ := startNode(t, backend)
	ring := dialRing(t, []string{s.Addr().String()})

	run := func(rate float64, ops int) loadgen.Result {
		t.Helper()
		res, err := loadgen.Run(nil, loadgen.Config{
			Mode: loadgen.Open, Workers: 4, Ops: ops, Rate: rate,
			Keys: 1 << 30, // effectively all misses: every op pays the backend
			Seed: 11,
			// Each worker sustains 1/service ≈ 50 req/s, so capacity ≈ 200/s.
			Target: loadgen.NewRemoteTarget(ring, "bench", nil),
		}, nil)
		if err != nil {
			t.Fatalf("run(rate=%v): %v", rate, err)
		}
		return res
	}

	under := run(50, 40)   // 25% of capacity: latency ≈ service time
	over := run(2000, 120) // 10× capacity: backlog grows the whole run

	if under.P99Ns > (8 * service).Nanoseconds() {
		t.Fatalf("under-capacity p99 %v suspiciously high", time.Duration(under.P99Ns))
	}
	// 120 ops offered in 60ms but served at ~200/s take ~600ms: the tail
	// arrivals wait hundreds of ms past their scheduled slots. Even with
	// generous margins this is far above anything a coordinated-omission
	// scheduler would report.
	if over.P99Ns < (5 * service).Nanoseconds() {
		t.Fatalf("over-capacity p99 %v barely above service time %v: queueing delay is not being measured (coordinated omission)",
			time.Duration(over.P99Ns), service)
	}
	if over.P99Ns < 3*under.P99Ns {
		t.Fatalf("over-capacity p99 %v not ≫ under-capacity p99 %v",
			time.Duration(over.P99Ns), time.Duration(under.P99Ns))
	}
}
