package replacement

import "strconv"

// EventKind classifies a replacement decision event.
type EventKind uint8

// Decision event kinds emitted by the observable policies (LRU, BCL,
// DCL/ACL). Every eviction from a full set emits exactly one EvEvict, so a
// trace's eviction count reconciles with cache.Stats.Evictions.
const (
	// EvEvict: a victim was chosen from a full set. Way/StackPos/Tag/Cost
	// describe the victim; LRUCost is the cost of the block plain LRU would
	// have evicted (the current LRU occupant).
	EvEvict EventKind = iota
	// EvReserveOpen: the LRU blockframe was newly reserved (a cheaper block
	// is victimized in its place). Way/Tag/Cost describe the reserved block.
	EvReserveOpen
	// EvReserveSuccess: the reserved block was re-referenced — the bet paid.
	EvReserveSuccess
	// EvReserveAbandon: the reserved block was finally evicted without a
	// re-reference — the bet failed.
	EvReserveAbandon
	// EvReserveCancel: the reserved block was removed by an external
	// invalidation; the reservation ends with no verdict.
	EvReserveCancel
	// EvETDHit: a cache miss hit the Extended Tag Directory; Cost is the
	// recorded cost whose depreciation the hit triggers, FalseMatch marks
	// aliased matches under narrow ETD tags.
	EvETDHit
	// EvACLEnable: ACL's per-set automaton re-enabled reservations (an ETD
	// probe hit while disabled). Counter is the value after the transition.
	EvACLEnable
	// EvACLDisable: the automaton counter reached zero and reservations are
	// now disabled for the set.
	EvACLDisable

	numEventKinds = iota
)

var eventKindNames = [...]string{
	EvEvict:          "evict",
	EvReserveOpen:    "reserve_open",
	EvReserveSuccess: "reserve_success",
	EvReserveAbandon: "reserve_abandon",
	EvReserveCancel:  "reserve_cancel",
	EvETDHit:         "etd_hit",
	EvACLEnable:      "acl_enable",
	EvACLDisable:     "acl_disable",
}

// String returns the snake_case name used in the JSONL trace schema.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// NumEventKinds is the number of defined event kinds, for dense per-kind
// counter arrays.
const NumEventKinds = int(numEventKinds)

// Event is one replacement decision, passed to the Observer by value so the
// un-observed path costs a nil check and the observed path allocates
// nothing.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Set is the cache set the event happened in.
	Set int
	// Way is the affected way: the victim for EvEvict, the reserved LRU way
	// for reservation events, -1 when not applicable.
	Way int
	// StackPos is the victim's LRU stack position for EvEvict (0 = MRU,
	// ways-1 = LRU); -1 when not applicable.
	StackPos int
	// Tag is the affected block's tag (victim, reserved block, or ETD
	// entry).
	Tag uint64
	// Cost is the event's cost operand: the victim's cost (EvEvict), the
	// reserved block's cost (reservation events), or the recorded cost an
	// ETD hit depreciates by.
	Cost Cost
	// LRUCost is, for EvEvict, the cost of the block plain LRU would have
	// chosen — the current LRU occupant. Comparing it against Cost
	// attributes the cost the decision kept resident.
	LRUCost Cost
	// Counter is the ACL automaton counter after EvACLEnable/EvACLDisable
	// and after the bump on EvReserveSuccess/EvReserveAbandon (0 for
	// non-adaptive policies).
	Counter uint8
	// FalseMatch marks EvETDHit events caused by tag aliasing.
	FalseMatch bool
}

// CostClass returns the event's stable key-class tag: blocks are classed by
// their miss cost (the paper's low/high cost classes), so "cost=8" names the
// same class in any two runs that share a cost mapping. Cross-run diff
// tooling (internal/obs/explain) groups decisions by this label; AppendClass
// is the alloc-free variant the JSONL tracer uses.
func (e Event) CostClass() string { return string(AppendClass(nil, e.Cost)) }

// AppendClass appends the CostClass label for cost c to b without
// allocating (beyond b's growth).
func AppendClass(b []byte, c Cost) []byte {
	b = append(b, "cost="...)
	return strconv.AppendInt(b, int64(c), 10)
}

// Observer receives decision events from a policy. Implementations must not
// call back into the policy. Observe is invoked synchronously on the
// simulation path, so it should be cheap; the obs package's Tracer records
// into a preallocated ring buffer.
type Observer interface {
	Observe(Event)
}

// Observable is implemented by policies that can emit decision events.
// SetObserver(nil) detaches, restoring the zero-overhead path.
type Observable interface {
	SetObserver(Observer)
}
