GO ?= go

.PHONY: all build test race vet fmt bench benchall loadtest serve loadtest-remote ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate: vet + build + full test suite under the race
# detector (the obs instruments are the main concurrent surface).
race:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# bench regenerates the baseline manifests that ci.sh diffs fresh runs
# against (generous tolerance; see results/README.md): the engine hot path,
# the instrumentation-overhead figures (simulator observation cost plus the
# telemetry store's sampling hot path) and the serving tier's localhost
# round-trip/pipelined throughput. For the full raw benchmark suite use
# `make benchall`.
bench:
	BENCH_MANIFEST=results/BENCH_engine.json \
	    $(GO) test -run TestWriteBenchManifest -count=1 .
	$(GO) run ./cmd/paper -quick -bench-json results/BENCH_obs.json
	BENCH_MANIFEST=$(CURDIR)/results/BENCH_server.json \
	    $(GO) test -run TestWriteServerBenchManifest -count=1 ./internal/server

benchall:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# loadtest drives the concurrent sharded engine with the open-loop zipfian
# harness (see docs/ENGINE.md) and archives the run manifest for diffing.
loadtest:
	$(GO) run ./cmd/cachebench -policy DCL -shards 16 \
	    -manifest results/MANIFEST_cachebench.json

# serve runs the networked cache tier on its default port with live
# telemetry (docs/SERVING_TIER.md); SIGINT drains gracefully.
serve:
	$(GO) run ./cmd/cacheserved -obs.listen localhost:8070

# loadtest-remote drives a cacheserved node at $(REMOTE) (default the serve
# target's address) over real sockets and archives the manifest.
REMOTE ?= 127.0.0.1:7070
loadtest-remote:
	$(GO) run ./cmd/cachebench -remote $(REMOTE) \
	    -manifest results/MANIFEST_cachebench_remote.json

ci:
	./scripts/ci.sh

clean:
	$(GO) clean ./...
