// Package mesh models the paper's interconnection network (Table 4): a 4x4
// wormhole-routed mesh with 64-bit links and 6 ns flit delay. Messages are
// routed dimension-order (X then Y); each directional link is reserved for
// the message's flit train, so concurrent traffic contends and the observed
// latency rises above the unloaded minimum.
//
// Latency model per message:
//
//	local (src == dst):  NIBase
//	remote:              NIRemote + hops*(HopDelay + Flits*FlitDelay)
//
// plus queueing wherever a link is still busy. NIRemote bundles network
// interface and protocol-engine processing at both ends; it is calibrated so
// the unloaded transaction latencies match Table 4 (local clean 120 ns,
// remote clean 380 ns, remote dirty 480 ns).
package mesh

import (
	"fmt"

	"costcache/internal/fault"
	"costcache/internal/obs"
	"costcache/internal/obs/span"
)

// Params are the network timing constants, in nanoseconds.
type Params struct {
	// Dim is the mesh dimension (Dim x Dim nodes).
	Dim int
	// FlitDelay is the per-flit per-link serialization delay.
	FlitDelay int64
	// HopDelay is the per-hop routing/switching delay.
	HopDelay int64
	// NIBase is the network-interface cost of a node-local message.
	NIBase int64
	// NIRemote is the combined interface and protocol-engine cost of a
	// remote message (both ends).
	NIRemote int64
}

// Default returns the calibrated 4x4 configuration.
func Default() Params {
	return Params{Dim: 4, FlitDelay: 6, HopDelay: 8, NIBase: 13, NIRemote: 102}
}

// Message sizes in flits on the 64-bit links: a control message is a couple
// of flits; a data message carries a 64-byte block (8 flits) plus header.
const (
	// CtrlFlits is the size of a request/ack message.
	CtrlFlits = 2
	// DataFlits is the size of a block-carrying message.
	DataFlits = 9
)

// Mesh tracks per-link occupancy for contention modeling.
type Mesh struct {
	p Params
	// linkFree[l] is the time the directional link l is free. Links are
	// indexed by (node, direction): 4 directions per node.
	linkFree []int64
	// routeBuf is the reused scratch for route(), so Send never allocates.
	routeBuf []int
	// stats
	messages, flits int64
	queuedNs        int64

	met *Metrics
	sp  *span.Span
	flt *fault.Injector
}

// SetSpan directs per-hop recording of subsequent Sends into sp: every link
// traversal is appended with its queueing delay, the attribution the
// miss-lifecycle tracer surfaces. Pass nil to stop recording. The un-traced
// send path pays one nil check per link.
func (m *Mesh) SetSpan(sp *span.Span) { m.sp = sp }

// SetFaults attaches a fault injector: outage links NACK messages into the
// injector's retry-with-backoff loop and slowdown windows inflate link
// occupancy. Pass nil to detach; the un-faulted path pays one nil check per
// link, and an injector compiled from an empty plan leaves every latency
// bit-identical.
func (m *Mesh) SetFaults(in *fault.Injector) { m.flt = in }

// Metrics are the mesh's observability instruments (nil when detached; the
// send path pays one nil check).
type Metrics struct {
	// Messages and Flits count injected traffic; QueuedNs accumulates total
	// time messages spent waiting for busy links.
	Messages, Flits, QueuedNs *obs.Counter
	// QueueDelay is the distribution of per-message queueing delay (ns).
	QueueDelay *obs.Histogram
	// MaxBacklog is the deepest link backlog (ns past the message's arrival)
	// seen at any send — a queue-depth high-water mark.
	MaxBacklog *obs.Gauge
}

// AttachMetrics registers the mesh's instruments in reg under
// mesh_messages, mesh_flits, mesh_queued_ns, mesh_queue_delay_ns and
// mesh_max_backlog_ns, and starts publishing. Pass nil to detach.
func (m *Mesh) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		m.met = nil
		return
	}
	m.met = &Metrics{
		Messages:   reg.Counter("mesh_messages"),
		Flits:      reg.Counter("mesh_flits"),
		QueuedNs:   reg.Counter("mesh_queued_ns"),
		QueueDelay: reg.Histogram("mesh_queue_delay_ns", obs.ExpBuckets(4, 2, 10)),
		MaxBacklog: reg.Gauge("mesh_max_backlog_ns"),
	}
}

// Directions alias the fault package's link encoding so injector plans and
// the mesh agree on which physical link a (node, dir) pair names.
const (
	dirEast  = fault.DirEast
	dirWest  = fault.DirWest
	dirNorth = fault.DirNorth
	dirSouth = fault.DirSouth
	numDirs  = fault.LinksPerNode
)

// New builds a mesh with the given parameters.
func New(p Params) *Mesh {
	if p.Dim <= 0 {
		panic("mesh: Dim must be positive")
	}
	return &Mesh{p: p, linkFree: make([]int64, p.Dim*p.Dim*numDirs)}
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.p.Dim * m.p.Dim }

// Hops returns the dimension-order hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := src%m.p.Dim, src/m.p.Dim
	dx, dy := dst%m.p.Dim, dst/m.p.Dim
	return abs(sx-dx) + abs(sy-dy)
}

// route returns the directional links of the X-then-Y path. The returned
// slice is a reused scratch buffer, valid until the next route call.
func (m *Mesh) route(src, dst int) []int {
	links := m.routeBuf[:0]
	x, y := src%m.p.Dim, src/m.p.Dim
	dx, dy := dst%m.p.Dim, dst/m.p.Dim
	for x != dx {
		d := dirEast
		nx := x + 1
		if dx < x {
			d = dirWest
			nx = x - 1
		}
		links = append(links, (y*m.p.Dim+x)*numDirs+d)
		x = nx
	}
	for y != dy {
		d := dirSouth
		ny := y + 1
		if dy < y {
			d = dirNorth
			ny = y - 1
		}
		links = append(links, (y*m.p.Dim+x)*numDirs+d)
		y = ny
	}
	m.routeBuf = links
	return links
}

// Send delivers a message of the given flit count from src to dst, departing
// no earlier than now, and returns the arrival time. Links along the route
// are reserved, so concurrent messages queue behind each other.
func (m *Mesh) Send(src, dst, flits int, now int64) int64 {
	m.messages++
	m.flits += int64(flits)
	if m.met != nil {
		m.met.Messages.Inc()
		m.met.Flits.Add(int64(flits))
	}
	if src == dst {
		return now + m.p.NIBase
	}
	t := now + m.p.NIRemote
	var queued int64
	for _, l := range m.route(src, dst) {
		arrive := t
		if m.flt != nil {
			// An outage NACKs the message; the injector's retry loop walks t
			// forward with capped exponential backoff until the link is up.
			t = m.flt.LinkReady(l, t)
		}
		var backlog int64
		if backlog = m.linkFree[l] - t; backlog > 0 {
			m.queuedNs += backlog
			queued += backlog
			if m.met != nil {
				m.met.MaxBacklog.SetMax(backlog)
			}
			t = m.linkFree[l]
		} else {
			backlog = 0
		}
		occupy := m.p.HopDelay + int64(flits)*m.p.FlitDelay
		if m.flt != nil {
			occupy = m.flt.LinkOccupy(l, t, occupy)
		}
		m.linkFree[l] = t + occupy
		t += occupy
		if m.sp != nil {
			m.sp.Hop(int32(l), arrive, backlog, t)
		}
	}
	if m.met != nil {
		m.met.QueuedNs.Add(queued)
		m.met.QueueDelay.Observe(queued)
	}
	return t
}

// Unloaded returns the contention-free latency of a message, used for the
// paper's unloaded-latency analyses (Table 3).
func (m *Mesh) Unloaded(src, dst, flits int) int64 {
	if src == dst {
		return m.p.NIBase
	}
	h := int64(m.Hops(src, dst))
	return m.p.NIRemote + h*(m.p.HopDelay+int64(flits)*m.p.FlitDelay)
}

// Stats returns message and flit counts plus total queueing delay.
func (m *Mesh) Stats() (messages, flits, queuedNs int64) {
	return m.messages, m.flits, m.queuedNs
}

// Reset clears occupancy and statistics.
func (m *Mesh) Reset() {
	for i := range m.linkFree {
		m.linkFree[i] = 0
	}
	m.messages, m.flits, m.queuedNs = 0, 0, 0
}

// String describes the configuration.
func (m *Mesh) String() string {
	return fmt.Sprintf("%dx%d mesh, %dns flit, %dns hop", m.p.Dim, m.p.Dim, m.p.FlitDelay, m.p.HopDelay)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
