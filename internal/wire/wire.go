// Package wire is the binary protocol of the networked cache tier: a
// compact length-prefixed frame shared by internal/server and
// internal/client. It is deliberately tiny — six opcodes, a one-byte
// version, a namespace string and an opaque payload — so a frame can be
// encoded into a reused buffer with zero per-request allocations and decoded
// with one buffered read.
//
// Frame layout (big-endian):
//
//	uint32  length   bytes after this field (12 + len(ns) + len(payload))
//	uint8   version  protocol version (Version)
//	uint8   op       opcode (OpPing .. OpStats)
//	uint8   flags    response outcome / error bits (0 on requests)
//	uint8   nslen    namespace length in bytes
//	uint64  id       request id, echoed verbatim in the response
//	[nslen] ns       namespace (multi-tenant engine selector)
//	[...]   payload  op-specific body (see the Append*/Parse* helpers)
//
// Responses reuse the request's op and id; pipelined requests may be
// answered out of order, so clients match on id, never on arrival order.
// The flags byte carries the serving outcome (hit / stale / coalesced) or,
// with FlagError set, marks the payload as an error code plus message —
// which is how the server relays engine.ErrShed and admission-control sheds
// (ErrCodeShed), load deadlines (ErrCodeTimeout) and drain refusals
// (ErrCodeDraining) without a second channel.
//
// # Trace-context extension
//
// A GET/SET/GETORLOAD request may carry FlagTraced in its flags byte, in
// which case the payload begins with a fixed TraceCtxLen-byte trace context
// (client span id, op index, trace flags — see TraceCtx) and the op body
// follows it. The extension lives entirely inside the payload: the frame
// header is unchanged, Version stays 1, and an untraced frame is
// byte-identical to one emitted before the extension existed. The feature is
// negotiated over PING — a trace-capable server answers with a payload
// (feature byte + its tracer clock, see AppendPingResp) where older servers
// answer empty — so a client never sends FlagTraced to a server that would
// not understand it. A pre-extension server that somehow receives a traced
// frame fails the op's strict payload-length parse and answers
// ErrCodeBadRequest rather than mis-reading the key.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Version is the current protocol version. A server refuses frames carrying
// any other value with ErrCodeBadRequest, so mixed-version tiers fail fast
// instead of mis-parsing.
const Version = 1

// MaxFrame is the default bound on a frame's length field — a guard against
// a corrupt or hostile peer declaring a multi-gigabyte frame.
const MaxFrame = 1 << 20

// headerLen is the fixed byte count after the length field.
const headerLen = 12

// Opcodes.
const (
	// OpPing is a health probe: empty request, empty OK response.
	OpPing uint8 = 1 + iota
	// OpGet looks a key up without loading: request key; response value
	// with FlagHit, or empty without it.
	OpGet
	// OpSet installs key with a value and predicted next-miss cost.
	OpSet
	// OpGetOrLoad returns the cached value or runs the namespace's backend
	// loader: request key + predicted cost; response charged cost + value,
	// flags carrying the serving outcome.
	OpGetOrLoad
	// OpStats returns the namespace's engine counters plus the server's
	// serving-tier counters as JSON (not a hot path).
	OpStats
	// OpManifest returns the node's manifest fragment as JSON (NodeManifest):
	// the node name plus per-namespace engine counters and the serving-tier
	// totals — what cachebench -remote merges into a cluster manifest and
	// reconciles bit-for-bit against client-observed outcomes.
	OpManifest
)

// opNames maps opcodes to schema names, for errors and debug output.
var opNames = map[uint8]string{
	OpPing: "ping", OpGet: "get", OpSet: "set",
	OpGetOrLoad: "getorload", OpStats: "stats", OpManifest: "manifest",
}

// OpName returns the opcode's schema name ("op(7)" for unknown codes).
func OpName(op uint8) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", op)
}

// Response flag bits.
const (
	// FlagError marks the payload as uint8 error code + message.
	FlagError uint8 = 1 << iota
	// FlagHit: the request was answered from cache.
	FlagHit
	// FlagStale: the value came from an evicted-but-retained ghost.
	FlagStale
	// FlagCoalesced: the request waited on another request's in-flight load.
	FlagCoalesced
	// FlagTraced marks a request payload as starting with a TraceCtxLen-byte
	// trace context (see TraceCtx). Only valid on GET/SET/GETORLOAD requests,
	// and only after the client has negotiated FeatTrace over PING.
	FlagTraced
)

// Error codes carried in the first payload byte of a FlagError response.
const (
	// ErrCodeBadRequest: malformed frame, unknown op or version mismatch.
	ErrCodeBadRequest uint8 = 1 + iota
	// ErrCodeNamespace: the frame names a namespace the server does not host.
	ErrCodeNamespace
	// ErrCodeShed: the load was refused — an open circuit breaker
	// (engine.ErrShed) or the server's admission control (queue deadline
	// exceeded, inflight limit) shed it so the tier can recover.
	ErrCodeShed
	// ErrCodeTimeout: the per-request load deadline expired while the load
	// was still in flight (engine.ErrLoadTimeout).
	ErrCodeTimeout
	// ErrCodeBackend: the namespace's backend loader returned an error.
	ErrCodeBackend
	// ErrCodeDraining: the server is draining and no longer accepts work.
	ErrCodeDraining
)

// errCodeNames maps error codes to schema names.
var errCodeNames = map[uint8]string{
	ErrCodeBadRequest: "bad-request", ErrCodeNamespace: "unknown-namespace",
	ErrCodeShed: "shed", ErrCodeTimeout: "timeout",
	ErrCodeBackend: "backend", ErrCodeDraining: "draining",
}

// ErrCodeName returns the error code's schema name.
func ErrCodeName(code uint8) string {
	if n, ok := errCodeNames[code]; ok {
		return n
	}
	return fmt.Sprintf("err(%d)", code)
}

// Frame is one decoded protocol frame. Payload aliases the read buffer and
// is only valid until the next ReadFrame on the same reader.
type Frame struct {
	Version uint8
	Op      uint8
	Flags   uint8
	ID      uint64
	NS      string
	Payload []byte
}

// AppendFrame encodes f onto b and returns the extended slice — the
// allocation-free encoding path both peers use with a reused buffer.
func AppendFrame(b []byte, f *Frame) []byte {
	if len(f.NS) > 255 {
		panic(fmt.Sprintf("wire: namespace %q longer than 255 bytes", f.NS))
	}
	length := uint32(headerLen + len(f.NS) + len(f.Payload))
	b = binary.BigEndian.AppendUint32(b, length)
	b = append(b, f.Version, f.Op, f.Flags, uint8(len(f.NS)))
	b = binary.BigEndian.AppendUint64(b, f.ID)
	b = append(b, f.NS...)
	b = append(b, f.Payload...)
	return b
}

// ReadFrame decodes the next frame from r into f, growing and reusing
// f.Payload's backing array across calls. max bounds the declared frame
// length (0 means MaxFrame). io.EOF is returned verbatim on a clean
// end-of-stream boundary so callers can tell shutdown from corruption.
func ReadFrame(r io.Reader, max int, f *Frame) error {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [4 + headerLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return err // io.EOF here is a clean boundary
	}
	length := int(binary.BigEndian.Uint32(hdr[:4]))
	if length < headerLen {
		return fmt.Errorf("wire: frame length %d below header size", length)
	}
	if length > max {
		return fmt.Errorf("wire: frame length %d exceeds limit %d", length, max)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return failEOF(err)
	}
	f.Version = hdr[4]
	f.Op = hdr[5]
	f.Flags = hdr[6]
	nslen := int(hdr[7])
	f.ID = binary.BigEndian.Uint64(hdr[8:])
	rest := length - headerLen
	if nslen > rest {
		return fmt.Errorf("wire: namespace length %d exceeds frame body %d", nslen, rest)
	}
	if cap(f.Payload) < rest {
		f.Payload = make([]byte, rest)
	}
	f.Payload = f.Payload[:rest]
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return failEOF(err)
	}
	f.NS = string(f.Payload[:nslen])
	f.Payload = f.Payload[nslen:]
	return nil
}

// failEOF converts a mid-frame EOF into ErrUnexpectedEOF: the stream died
// inside a frame, which is corruption, not a clean shutdown.
func failEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// AppendGetReq encodes an OpGet request payload (key).
func AppendGetReq(b []byte, key uint64) []byte {
	return binary.BigEndian.AppendUint64(b, key)
}

// ParseGetReq decodes an OpGet request payload.
func ParseGetReq(p []byte) (key uint64, err error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("wire: get request payload %d bytes, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// AppendSetReq encodes an OpSet request payload (key, cost, value).
func AppendSetReq(b []byte, key uint64, cost int64, value []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, key)
	b = binary.BigEndian.AppendUint64(b, uint64(cost))
	return append(b, value...)
}

// ParseSetReq decodes an OpSet request payload. value aliases p.
func ParseSetReq(p []byte) (key uint64, cost int64, value []byte, err error) {
	if len(p) < 16 {
		return 0, 0, nil, fmt.Errorf("wire: set request payload %d bytes, want >= 16", len(p))
	}
	key = binary.BigEndian.Uint64(p)
	cost = int64(binary.BigEndian.Uint64(p[8:]))
	return key, cost, p[16:], nil
}

// AppendGetOrLoadReq encodes an OpGetOrLoad request payload (key, predicted
// miss cost — the class the server's breakers, retry budgets and fill charge
// see, priced by the client exactly as its backend would charge it).
func AppendGetOrLoadReq(b []byte, key uint64, cost int64) []byte {
	b = binary.BigEndian.AppendUint64(b, key)
	return binary.BigEndian.AppendUint64(b, uint64(cost))
}

// ParseGetOrLoadReq decodes an OpGetOrLoad request payload.
func ParseGetOrLoadReq(p []byte) (key uint64, cost int64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("wire: getorload request payload %d bytes, want 16", len(p))
	}
	return binary.BigEndian.Uint64(p), int64(binary.BigEndian.Uint64(p[8:])), nil
}

// AppendGetOrLoadResp encodes an OpGetOrLoad success payload: the cost this
// request actually charged (0 for hits, coalesced waiters and races lost to
// a concurrent Set — at full sampling the charges sum exactly to the
// server engine's cost_paid counter) followed by the value bytes.
func AppendGetOrLoadResp(b []byte, charged int64, value []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(charged))
	return append(b, value...)
}

// ParseGetOrLoadResp decodes an OpGetOrLoad success payload. value aliases p.
func ParseGetOrLoadResp(p []byte) (charged int64, value []byte, err error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("wire: getorload response payload %d bytes, want >= 8", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), p[8:], nil
}

// AppendError encodes a FlagError payload (code + message).
func AppendError(b []byte, code uint8, msg string) []byte {
	b = append(b, code)
	return append(b, msg...)
}

// ParseError decodes a FlagError payload.
func ParseError(p []byte) (code uint8, msg string, err error) {
	if len(p) < 1 {
		return 0, "", fmt.Errorf("wire: empty error payload")
	}
	return p[0], string(p[1:]), nil
}

// Stats is the OpStats response body (JSON-encoded: stats are not a hot
// path, and JSON keeps the payload self-describing for debugging with nc).
// The engine counter names and semantics mirror engine.Stats exactly — the
// remote load harness folds these into the same manifest schema in-process
// runs use, which is what makes a socket run diffable against an in-process
// run counter-for-counter.
type Stats struct {
	Namespace string `json:"namespace"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Coalesced int64  `json:"coalesced"`
	Evictions int64  `json:"evictions"`
	CostPaid  int64  `json:"cost_paid"`
	// LockWaitNs and ShadowCost mirror the engine's serving-side counters.
	LockWaitNs int64 `json:"lock_wait_ns"`
	ShadowCost int64 `json:"shadow_cost"`
	// Degraded-mode counters (zero without a resilience config).
	LoadTimeouts int64 `json:"load_timeouts"`
	LoadRetries  int64 `json:"load_retries"`
	Shed         int64 `json:"shed"`
	StaleServed  int64 `json:"stale_served"`
	// Expired counts lookups refused because the namespace TTL had lapsed
	// (each one then reloads through the engine as an ordinary miss).
	Expired int64 `json:"expired"`
	// Serving-tier counters (server-wide, identical in every namespace's
	// stats response).
	ConnsAccepted int64 `json:"conns_accepted"`
	ConnsActive   int64 `json:"conns_active"`
	FramesIn      int64 `json:"frames_in"`
	FramesOut     int64 `json:"frames_out"`
	ServerShed    int64 `json:"server_shed"`
}
