package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Mux is the observability HTTP mux: an http.ServeMux that remembers every
// mounted endpoint and serves a plain-text index of them at "/", so
// operators pointed at the port discover what is mounted instead of 404-ing.
// NewMux pre-mounts the registry exposition and pprof; commands add their
// own endpoints (/debug/engine, /debug/timeseries, /debug/alerts) with
// Handle before serving it via ServeHandler.
type Mux struct {
	mux *http.ServeMux

	mu        sync.Mutex
	endpoints []endpoint
}

type endpoint struct{ path, desc string }

// NewMux returns a mux serving the standard observability surface for r:
//
//	/               index of every mounted endpoint
//	/metrics        plain-text exposition of every instrument
//	/debug/pprof/*  the standard Go profiling endpoints
//
// A dedicated mux is used so commands never expose pprof by accident through
// http.DefaultServeMux.
func NewMux(r *Registry) *Mux {
	m := &Mux{mux: http.NewServeMux()}
	m.Handle("/metrics", "plain-text metric exposition", http.HandlerFunc(
		func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			r.WriteText(w)
		}))
	m.Handle("/debug/pprof/", "Go profiling endpoints (profile, heap, mutex, block, trace)",
		http.HandlerFunc(pprof.Index))
	m.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.mux.HandleFunc("/", m.index)
	return m
}

// Handle mounts h at path and records it (with a one-line description) in
// the root index. Mounting the same path twice is a no-op keeping the first
// handler and description — the index lists every path exactly once, in one
// canonical (sorted) order, so pollers and CI greps over the index are
// deterministic regardless of mount order or repetition.
func (m *Mux) Handle(path, desc string, h http.Handler) {
	m.mu.Lock()
	for _, e := range m.endpoints {
		if e.path == path {
			m.mu.Unlock()
			return
		}
	}
	m.endpoints = append(m.endpoints, endpoint{path, desc})
	m.mu.Unlock()
	m.mux.Handle(path, h)
}

// ServeHTTP implements http.Handler.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) { m.mux.ServeHTTP(w, r) }

// index lists the mounted endpoints at exactly "/"; anything else that fell
// through the mux is a genuine 404.
func (m *Mux) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	m.mu.Lock()
	eps := make([]endpoint, len(m.endpoints))
	copy(eps, m.endpoints)
	m.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].path < eps[j].path })
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "costcache observability endpoints:")
	for _, e := range eps {
		fmt.Fprintf(w, "  %-20s %s\n", e.path, e.desc)
	}
}

// Handler returns the standard observability handler for a registry — a
// NewMux with no extra endpoints.
func Handler(r *Registry) http.Handler { return NewMux(r) }

// Server is a running observability endpoint. Close it when the command is
// done so in-flight scrapes finish and the port frees deterministically.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Addr returns the bound address (useful when addr used port 0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down gracefully, letting in-flight requests (bounded
// by a short timeout, pprof profiles excepted) complete before forcing the
// remaining connections closed. It is safe to call more than once.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Timed out draining (a long pprof profile, say): hard-close.
		s.srv.Close()
	}
	<-s.done
	if err == http.ErrServerClosed || err == context.DeadlineExceeded {
		return nil
	}
	return err
}

// Serve starts the observability server on addr (e.g. "localhost:6060") in a
// background goroutine and returns a handle exposing the bound address (addr
// may use port 0) and a graceful Close for the commands' defer paths.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler is Serve for an arbitrary handler — commands that add
// endpoints beyond the registry exposition (cachebench mounts the engine's
// /debug/engine analytics next to /metrics) compose their mux and serve it
// with the same lifecycle.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}
