// Command cachetop is a live terminal dashboard for a running cachebench
// (or any process serving the costcache observability endpoints). It polls
// /debug/timeseries, /debug/engine and /debug/alerts and renders sparkline
// panels for the core serving signals — hit rate, throughput, cost per
// access, lock-wait share, latency p99 — plus per-shard heat rows and the
// active alert list, redrawing in place once per -interval.
//
//	cachebench -obs.listen localhost:6060 -alerts &
//	cachetop -addr localhost:6060
//
// -cluster switches to the fleet dashboard: -addr then names a cachefed
// server, and the frame renders /debug/federate — one column row per node
// (up/down, ops, hit rate, cluster share with a skew bar) under the derived
// cluster signals, plus the federated sparklines and fleet alert standings.
//
//	cachefed -nodes localhost:6061,localhost:6062 -listen localhost:7000 &
//	cachetop -cluster -addr localhost:7000
//
// -frames N stops after N redraws (0 = run until interrupted); -frames 1
// prints a single dashboard without ANSI cursor control, which is what the
// CI smoke and scripted captures use. cachetop is stdlib-only: it talks
// plain HTTP+JSON to the endpoints documented in docs/OBSERVABILITY.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"costcache/internal/cli"
)

func main() {
	addr := flag.String("addr", "", "address of the observability server (host:port, required)")
	interval := flag.Duration("interval", time.Second, "poll and redraw period")
	frames := flag.Int("frames", 0, "stop after this many redraws (0 = run until interrupted)")
	cluster := flag.Bool("cluster", false, "render the fleet dashboard from a cachefed server instead of a single node")
	flag.Parse()

	if *addr == "" {
		cli.BadFlag("cachetop", "-addr", "", []string{"the host:port of a cachebench -obs.listen server"})
	}
	if *interval <= 0 {
		cli.BadFlag("cachetop", "-interval", fmt.Sprint(*interval), []string{"a poll period > 0"})
	}
	if *frames < 0 {
		cli.BadFlag("cachetop", "-frames", fmt.Sprint(*frames), []string{"a frame count >= 0 (0 = forever)"})
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	stopped := cli.Interrupt()
	client := &http.Client{Timeout: 5 * time.Second}
	live := *frames != 1 // a single frame renders plain, without cursor control
	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		if stopped() {
			break
		}
		var frame string
		var err error
		if *cluster {
			frame, err = renderCluster(client, base)
		} else {
			frame, err = render(client, base)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachetop:", err)
			os.Exit(1)
		}
		if live {
			// Home the cursor and clear to end of screen: redraw in place
			// without the flicker of a full clear.
			fmt.Print("\x1b[H\x1b[J")
		}
		fmt.Print(frame)
	}
}

// Payload mirrors of the endpoint documents (fields cachetop renders; the
// schemas are locked by the servers' tests).
type timeseries struct {
	Samples     int64 `json:"samples"`
	LastUnixMS  int64 `json:"last_unix_ms"`
	Resolutions []struct {
		StepMS   int64                `json:"step_ms"`
		Signals  map[string][]float64 `json:"signals"`
		Windowed map[string]float64   `json:"windowed"`
	} `json:"resolutions"`
}

type engineDebug struct {
	Stats struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Coalesced int64 `json:"coalesced"`
		CostPaid  int64 `json:"cost_paid"`
	} `json:"stats"`
	Window struct {
		UniformShare float64 `json:"uniform_share"`
		Shards       []struct {
			Shard       int     `json:"shard"`
			Ops         int64   `json:"ops"`
			Share       float64 `json:"share"`
			LockWaitNs  int64   `json:"lock_wait_ns"`
			MaxInFlight int     `json:"max_in_flight"`
			Hot         bool    `json:"hot"`
		} `json:"shards"`
	} `json:"window"`
	// Resilience is present only when the server's engine runs with
	// degraded-mode serving; its absence hides the resilience panels.
	Resilience *struct {
		ServeStale   bool  `json:"serve_stale"`
		LoadTimeouts int64 `json:"load_timeouts"`
		LoadRetries  int64 `json:"load_retries"`
		Shed         int64 `json:"shed"`
		StaleServed  int64 `json:"stale_served"`
		Breakers     []struct {
			Class       string  `json:"class"`
			State       string  `json:"state"`
			Samples     int     `json:"samples"`
			FailureRate float64 `json:"failure_rate"`
			Opened      int64   `json:"opened"`
		} `json:"breakers"`
	} `json:"resilience"`
}

type alerts struct {
	Rules []struct {
		Rule      string  `json:"rule"`
		State     string  `json:"state"`
		Value     float64 `json:"value"`
		HasValue  bool    `json:"has_value"`
		Threshold float64 `json:"threshold"`
		Fired     int64   `json:"fired"`
		FiringNS  int64   `json:"firing_ns"`
	} `json:"rules"`
}

// get fetches path into out; a nil error with ok=false means the endpoint
// is not mounted (alerts are optional on the server side).
func get(client *http.Client, base, path string, out any) (bool, error) {
	resp, err := client.Get(base + path)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return true, json.NewDecoder(resp.Body).Decode(out)
}

// panel describes one sparkline row: the signal name in the timeseries
// payload and how to render its current value.
type panel struct {
	signal, label string
	format        func(float64) string
}

func panels() []panel {
	pct := func(v float64) string { return fmt.Sprintf("%6.2f%%", 100*v) }
	count := func(v float64) string { return fmt.Sprintf("%7.0f", v) }
	return []panel{
		{"hit_rate", "hit rate", pct},
		{"ops_per_s", "ops/s", count},
		{"cost_per_access", "cost/access", func(v float64) string { return fmt.Sprintf("%7.3f", v) }},
		{"lock_wait_share", "lock wait", pct},
		{"latency_p99_ns", "p99 latency", func(v float64) string { return fmt.Sprintf("%6.1fµs", v/1e3) }},
	}
}

// resiliencePanels are the degraded-mode sparklines, shown only when the
// server's engine reports a resilience block.
func resiliencePanels() []panel {
	pct := func(v float64) string { return fmt.Sprintf("%6.2f%%", 100*v) }
	count := func(v float64) string { return fmt.Sprintf("%7.0f", v) }
	return []panel{
		{"shed_share", "shed", pct},
		{"stale_per_s", "stale/s", count},
		{"breaker_opens_per_s", "breaker trips", count},
	}
}

// servingPanels are the cacheserved serving-tier sparklines, shown only when
// the process is actually serving sockets — detected by server_shed_share
// having data, which requires a nonzero server_frames_in series in the
// window. In-process engines never produce it, so embedded dashboards keep
// their shorter layout.
func servingPanels() []panel {
	pct := func(v float64) string { return fmt.Sprintf("%6.2f%%", 100*v) }
	count := func(v float64) string { return fmt.Sprintf("%7.0f", v) }
	return []panel{
		{"conns_per_s", "conns/s", count},
		{"server_shed_share", "srv shed", pct},
	}
}

// render polls the three endpoints and builds one dashboard frame.
func render(client *http.Client, base string) (string, error) {
	var ts timeseries
	if ok, err := get(client, base, "/debug/timeseries", &ts); err != nil {
		return "", err
	} else if !ok {
		return "", fmt.Errorf("/debug/timeseries not mounted at %s (is this a cachebench -obs.listen server?)", base)
	}
	var eng engineDebug
	engOK, err := get(client, base, "/debug/engine", &eng)
	if err != nil {
		return "", err
	}
	var al alerts
	alOK, err := get(client, base, "/debug/alerts", &al)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	when := "no samples yet"
	if ts.LastUnixMS != 0 {
		when = time.UnixMilli(ts.LastUnixMS).Format("15:04:05")
	}
	fmt.Fprintf(&b, "cachetop · %s · %d samples · last %s\n\n", base, ts.Samples, when)

	if len(ts.Resolutions) > 0 {
		res := ts.Resolutions[0]
		rows := panels()
		if engOK && eng.Resilience != nil {
			rows = append(rows, resiliencePanels()...)
		}
		if _, serving := res.Windowed["server_shed_share"]; serving {
			rows = append(rows, servingPanels()...)
		}
		fmt.Fprintf(&b, "signals (last %d × %dms buckets)\n", len(res.Signals["hit_rate"]), res.StepMS)
		for _, p := range rows {
			points := res.Signals[p.signal]
			cur, has := res.Windowed[p.signal]
			val := "      —"
			if has {
				val = p.format(cur)
			}
			fmt.Fprintf(&b, "  %-13s %s %s\n", p.label, val, sparkline(points, 48))
		}
		b.WriteString("\n")
	}

	if engOK {
		st := eng.Stats
		total := st.Hits + st.Misses + st.Coalesced
		fmt.Fprintf(&b, "engine · %d ops · %d hits · %d misses · cost %d\n",
			total, st.Hits, st.Misses, st.CostPaid)
		fmt.Fprintf(&b, "shards (window share vs uniform %.3f)\n", eng.Window.UniformShare)
		for _, sh := range eng.Window.Shards {
			marker := " "
			if sh.Hot {
				marker = "*"
			}
			fmt.Fprintf(&b, "  shard %2d %s %-24s %5.1f%%  ops=%-8d lock=%6.2fms  depth=%d\n",
				sh.Shard, marker, bar(sh.Share, eng.Window.UniformShare, 24),
				100*sh.Share, sh.Ops, float64(sh.LockWaitNs)/1e6, sh.MaxInFlight)
		}
		if r := eng.Resilience; r != nil {
			fmt.Fprintf(&b, "resilience · shed %d · stale %d · timeouts %d · retries %d · serve-stale %v\n",
				r.Shed, r.StaleServed, r.LoadTimeouts, r.LoadRetries, r.ServeStale)
			for _, br := range r.Breakers {
				fmt.Fprintf(&b, "  breaker %-10s %-9s fail=%5.1f%% samples=%-4d opened=%d\n",
					br.Class, strings.ToUpper(br.State), 100*br.FailureRate, br.Samples, br.Opened)
			}
		}
		b.WriteString("\n")
	}

	writeAlerts(&b, alOK, al, "alerts", "run cachebench with -alerts")
	return b.String(), nil
}

// writeAlerts renders the alert standings block shared by the single-node and
// cluster frames.
func writeAlerts(b *strings.Builder, alOK bool, al alerts, title, hint string) {
	switch {
	case !alOK:
		fmt.Fprintf(b, "%s: endpoint not enabled (%s)\n", title, hint)
	case len(al.Rules) == 0:
		fmt.Fprintf(b, "%s: no rules\n", title)
	default:
		fmt.Fprintf(b, "%s\n", title)
		rules := al.Rules
		sort.SliceStable(rules, func(i, j int) bool { return rules[i].Rule < rules[j].Rule })
		for _, r := range rules {
			val := "—"
			if r.HasValue {
				val = fmt.Sprintf("%.4g", r.Value)
			}
			fmt.Fprintf(b, "  %-22s %-8s value=%-10s threshold=%-10.4g fired=%d firing_ms=%d\n",
				r.Rule, strings.ToUpper(r.State), val, r.Threshold, r.Fired, r.FiringNS/1e6)
		}
	}
}

// federateDoc mirrors the /debug/federate document (the fields the cluster
// frame renders; the schema is internal/obs/federate.ClusterStatus).
type federateDoc struct {
	Scrapes    int64 `json:"scrapes"`
	LastUnixMS int64 `json:"last_unix_ms"`
	Cluster    struct {
		HitRate       float64 `json:"hit_rate"`
		CostPerAccess float64 `json:"cost_per_access"`
		NodeSkew      float64 `json:"node_skew"`
		MissSpread    float64 `json:"miss_spread"`
	} `json:"cluster"`
	Nodes []struct {
		Node   string `json:"node"`
		Addr   string `json:"addr"`
		Up     bool   `json:"up"`
		Err    string `json:"err"`
		Totals struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Coalesced int64 `json:"coalesced"`
			CostPaid  int64 `json:"cost_paid"`
			Shed      int64 `json:"shed"`
		} `json:"totals"`
		Share   float64 `json:"share"`
		HitRate float64 `json:"hit_rate"`
	} `json:"nodes"`
}

// renderCluster polls a cachefed server and builds one fleet dashboard
// frame: cluster rollups, one row per node with a share bar against the
// uniform share, the federated sparklines and the fleet alert standings.
func renderCluster(client *http.Client, base string) (string, error) {
	var fd federateDoc
	if ok, err := get(client, base, "/debug/federate", &fd); err != nil {
		return "", err
	} else if !ok {
		return "", fmt.Errorf("/debug/federate not mounted at %s (is this a cachefed server?)", base)
	}
	var ts timeseries
	tsOK, err := get(client, base, "/debug/timeseries", &ts)
	if err != nil {
		return "", err
	}
	var al alerts
	alOK, err := get(client, base, "/debug/alerts", &al)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	when := "no scrapes yet"
	if fd.LastUnixMS != 0 {
		when = time.UnixMilli(fd.LastUnixMS).Format("15:04:05")
	}
	fmt.Fprintf(&b, "cachetop · cluster · %s · %d nodes · %d scrapes · last %s\n\n",
		base, len(fd.Nodes), fd.Scrapes, when)
	fmt.Fprintf(&b, "cluster · hit rate %.2f%% · cost/access %.3f · node skew %.2f · miss spread %.2f\n",
		100*fd.Cluster.HitRate, fd.Cluster.CostPerAccess, fd.Cluster.NodeSkew, fd.Cluster.MissSpread)

	uniform := 0.0
	if len(fd.Nodes) > 0 {
		uniform = 1 / float64(len(fd.Nodes))
	}
	fmt.Fprintf(&b, "nodes (cluster share vs uniform %.3f)\n", uniform)
	for _, n := range fd.Nodes {
		status := "up  "
		if !n.Up {
			status = "DOWN"
		}
		ops := n.Totals.Hits + n.Totals.Misses + n.Totals.Coalesced
		fmt.Fprintf(&b, "  %-8s %-21s %s %-24s %5.1f%%  ops=%-9d hit=%5.1f%%  cost=%-8d shed=%d\n",
			n.Node, n.Addr, status, bar(n.Share, uniform, 24),
			100*n.Share, ops, 100*n.HitRate, n.Totals.CostPaid, n.Totals.Shed)
		if n.Err != "" {
			fmt.Fprintf(&b, "           %s\n", n.Err)
		}
	}
	b.WriteString("\n")

	if tsOK && len(ts.Resolutions) > 0 {
		res := ts.Resolutions[0]
		fmt.Fprintf(&b, "federated signals (last %d × %dms buckets)\n", len(res.Signals["hit_rate"]), res.StepMS)
		for _, p := range panels() {
			points := res.Signals[p.signal]
			cur, has := res.Windowed[p.signal]
			val := "      —"
			if has {
				val = p.format(cur)
			}
			fmt.Fprintf(&b, "  %-13s %s %s\n", p.label, val, sparkline(points, 48))
		}
		b.WriteString("\n")
	}

	writeAlerts(&b, alOK, al, "fleet alerts", "cachefed evaluates fleet rules by default")
	return b.String(), nil
}

// sparkline renders the last w points as eight-level block characters,
// scaled to the series maximum (an all-zero series renders flat).
func sparkline(points []float64, w int) string {
	if len(points) > w {
		points = points[len(points)-w:]
	}
	if len(points) == 0 {
		return ""
	}
	var max float64
	for _, v := range points {
		if v > max {
			max = v
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range points {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(levels)-1))
			if i >= len(levels) {
				i = len(levels) - 1
			}
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}

// bar renders share as a fixed-width bar with a tick at the uniform share,
// the at-a-glance skew view: a bar past the tick is running hot.
func bar(share, uniform float64, w int) string {
	// Scale so the uniform share sits at 1/3 of the width: small per-shard
	// shares still render visibly at high shard counts.
	scale := float64(w)
	if uniform > 0 {
		scale = float64(w) / (3 * uniform)
	}
	n := int(share * scale)
	if n > w {
		n = w
	}
	tick := w / 3
	out := make([]rune, w)
	for i := range out {
		switch {
		case i < n:
			out[i] = '█'
		case i == tick:
			out[i] = '|'
		default:
			out[i] = '·'
		}
	}
	return string(out)
}
