// Command cachebench load-tests the concurrent sharded engine: it replays a
// zipfian key stream or a synthetic SPLASH-2-like workload against
// internal/engine with G goroutines, closed- or open-loop, and reports
// throughput, latency percentiles and the live cost savings of the chosen
// policy over the per-shard LRU shadow.
//
//	cachebench -policy DCL -shards 16                      # open-loop zipfian
//	cachebench -mode closed -workers 1 -seed 7             # deterministic run
//	cachebench -workload Barnes -mode closed -workers 8    # trace replay
//	cachebench -attr -attr.sample 1                        # stage attribution
//	cachebench -span.trace trace.json -obs.sample 0.05     # request spans
//	cachebench -obs.listen localhost:0 -profile.dir prof/  # live + profiling
//
// -attr samples requests into stage-attributed spans (lock wait, decision,
// coalesce wait, load, fill, shadow) and prints the decomposition of the
// latency percentiles on stderr; -attr.sample sets the measured fraction.
// -span.jsonl / -span.trace additionally emit an -obs.sample fraction of
// full spans as JSONL / Chrome trace-event JSON (same formats as numasim's
// miss spans — a merged file renders both in one Perfetto timeline; see
// report -merge). Span counts are reconciled against the engine counters
// after the run; a mismatch is fatal. -obs.listen serves /metrics, pprof
// and the /debug/engine analytics JSON (hot shards, lock-wait and
// coalesce-depth heatmaps, keyspace skew). -hot.factor tunes the hot-shard
// detector threshold and -keys.sketch the keyspace-skew sketch capacity.
// -profile.dir captures periodic CPU/heap/mutex/block pprof snapshots keyed
// to the run manifest.
//
// A live time-series store (internal/obs/tsdb) attaches whenever -obs.listen,
// -alerts or -ts.everyops is set: it samples every registry instrument into
// multi-resolution ring buffers (bucket width -ts.step) and serves windowed
// rates, ratios and latency quantiles at /debug/timeseries — the feed for
// cmd/cachetop. -alerts evaluates SLO rules over those windows (hit-rate
// burn rate with -slo.hitrate/-alert.burn/-alert.fast/-alert.slow, latency
// p99 vs -slo.p99, lock-wait share, shard skew), streams state transitions
// to -alerts.jsonl, serves /debug/alerts and folds firing counts into the
// manifest. -ts.everyops N swaps the wall clock for an op-indexed simulated
// clock (one step per N completed ops) so single-worker closed-loop runs
// produce byte-identical alert streams — CI pins exact firing counts on a
// same-seed healthy/degraded pair.
//
// Degraded-mode serving (internal/resilience, docs/ENGINE.md): -load.deadline
// bounds each request's wait without killing the in-flight load,
// -load.retries grants a cost-scaled retry budget with -load.backoff
// exponential backoff and deterministic jitter, -breaker.rate/-breaker.window/
// -breaker.min/-breaker.cooldown run a circuit breaker per cost class, and
// -stale.serve answers from evicted-but-retained values (flagged stale,
// charged nothing) when the breaker is open or the deadline expires.
// -fault.plan / -fault.scenario inject deterministic backend chaos (error
// bursts, latency spikes, per-class brownouts — pure functions of the load
// attempt index; see docs/FAULTS.md), so a same-seed chaos run reproduces its
// retry, shed and stale counters byte-for-byte — CI drives a healthy/brownout
// twin pair on exactly that property.
//
// -decisions streams every replacement decision (reservations, ETD
// detections, victim choices) as JSONL tagged with shard and cost class —
// the per-run input to report -explain, which joins two runs' decision
// streams and attributes a metric delta to decision-level causes (see
// docs/OBSERVABILITY.md).
//
// -remote addr[,addr...] drives cacheserved nodes over real sockets instead
// of an in-process engine (docs/SERVING_TIER.md): keys route across the
// addresses by consistent hashing, every GETORLOAD declares the key's
// deterministic miss cost so the server charges the identical cost stream,
// and -attr gains net_write/net_read stages tiling the round trip. Engine
// flags (-policy, -shards, resilience, faults, ...) are rejected with
// -remote — configure them on cacheserved's -ns spec. -remote.ns names the
// namespace; -remote.conns and -remote.timeout shape the client pool.
// Client-side observability stays on: -obs.listen serves this process's
// /metrics (including client_failover/client_shed per node) and a
// /debug/engine document carrying the ring rows (per-node routing counters,
// negotiated trace support, clock offsets). Sampled spans propagate their
// identity on the wire, so trace-negotiated servers emit matching server
// spans (report -merge stitches the two sets). After the run, every node's
// manifest is collected over the wire and the summed per-node engine
// counters must reconcile bit for bit with the client-observed totals —
// a mismatch exits nonzero.
//
// -manifest writes a self-describing run manifest (engine counters, latency
// percentiles, per-shard series, stage attribution) that cmd/report can
// validate with -check and diff against other runs (-attr diffs the stage
// tables). SIGINT/SIGTERM stop the run at the next request boundary, flush
// a partial manifest marked "interrupted": true and exit 130.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"costcache/internal/cli"
	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/fault"
	"costcache/internal/loadgen"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/obs/alert"
	"costcache/internal/obs/reqspan"
	"costcache/internal/obs/span"
	"costcache/internal/obs/tsdb"
	"costcache/internal/replacement"
	"costcache/internal/resilience"
	"costcache/internal/tabulate"
	"costcache/internal/wire"
	"costcache/internal/workload"
)

func main() {
	policy := flag.String("policy", "DCL", "replacement policy (see -help of cmd/cachesim)")
	shards := flag.Int("shards", 8, "power-of-two shard count")
	sets := flag.Int("sets", 4096, "total sets across all shards (power of two)")
	ways := flag.Int("ways", 4, "set associativity")
	workers := flag.Int("workers", 8, "request goroutines")
	mode := flag.String("mode", "open", "load discipline: open (fixed arrival rate) or closed")
	rate := flag.Float64("rate", 20000, "open-loop arrival rate, requests/second")
	ops := flag.Int("ops", 100000, "total requests")
	keys := flag.Int("keys", 32768, "zipfian key-space size")
	zipf := flag.Float64("zipf", 1.1, "zipf skew (<=1 means uniform)")
	bench := flag.String("workload", "", "replay this synthetic benchmark instead of the zipfian stream")
	seed := flag.Int64("seed", 42, "seed for key streams and the cost mapping")
	costLow := flag.Int64("costlow", 1, "low miss cost")
	costHigh := flag.Int64("costhigh", 8, "high miss cost")
	haf := flag.Float64("haf", 0.2, "high-cost key fraction")
	loadDelay := flag.Duration("loaddelay", 200*time.Microsecond, "simulated backend latency per unit of miss cost")
	noShadow := flag.Bool("noshadow", false, "disable the per-shard LRU shadow (and the savings report)")
	quiet := flag.Bool("quiet", false, "suppress the per-second progress line on stderr")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file")
	attr := flag.Bool("attr", false, "print the serving-path stage-attribution table on stderr")
	attrSample := flag.Float64("attr.sample", 1.0, "fraction of requests measured into stage attribution, in (0,1]")
	obsSample := flag.Float64("obs.sample", 0.01, "fraction of requests emitted as full spans, in (0,1]")
	spanJSONL := flag.String("span.jsonl", "", "write emitted request spans as JSONL to this file")
	spanTrace := flag.String("span.trace", "", "write emitted request spans as Chrome trace-event JSON to this file")
	obsListen := flag.String("obs.listen", "", "serve /metrics, /debug/engine and pprof on this address")
	profileDir := flag.String("profile.dir", "", "capture periodic CPU/heap/mutex/block pprof snapshots into this directory")
	profileInterval := flag.Duration("profile.interval", 30*time.Second, "continuous-profiling snapshot period")
	decisions := flag.String("decisions", "", "write per-shard replacement decision events as JSONL to this file (input to report -explain)")
	hotFactor := flag.Float64("hot.factor", engine.DefaultHotShareFactor, "hot-shard threshold: flag a shard whose window traffic share exceeds this multiple of the uniform share")
	keysSketch := flag.Int("keys.sketch", 0, "keyspace-skew sketch capacity (distinct sampled keys tracked; 0 = default)")
	tsStep := flag.Duration("ts.step", time.Second, "live time-series bucket width (finest ring)")
	tsEvery := flag.Int("ts.everyops", 0, "advance the telemetry clock one step every N completed ops instead of wall time (deterministic; 0 = wall clock)")
	alerts := flag.Bool("alerts", false, "evaluate SLO alert rules against the live time-series and print a post-run summary")
	alertsJSONL := flag.String("alerts.jsonl", "", "write alert state transitions as JSONL to this file (implies -alerts)")
	sloHitrate := flag.Float64("slo.hitrate", 0.9, "hit-rate SLO objective in (0,1) for the hit-rate-burn rule")
	sloP99 := flag.Duration("slo.p99", 250*time.Millisecond, "request-latency p99 threshold for the latency-p99 rule")
	alertBurn := flag.Float64("alert.burn", 2, "burn-rate factor: fire when the error budget burns at this multiple of the sustainable rate")
	alertFast := flag.Duration("alert.fast", 5*time.Second, "burn-rate short window (also the static rules' window)")
	alertSlow := flag.Duration("alert.slow", 30*time.Second, "burn-rate long window")
	faultPlan := flag.String("fault.plan", "", "inject backend faults from this loader fault plan (JSON file)")
	faultScenario := flag.String("fault.scenario", "", "inject backend faults from this built-in scenario (see internal/fault)")
	faultSeed := flag.Uint64("fault.seed", 7, "seed perturbing -fault.scenario span placement and brownout coin flips")
	loadDeadline := flag.Duration("load.deadline", 0, "per-request deadline on GetOrLoad; expired waiters detach while the load continues (0 = none)")
	loadRetries := flag.Int("load.retries", 0, "max load retries for a key at the reference cost class; cheaper classes earn a proportional budget")
	loadBackoff := flag.Duration("load.backoff", 2*time.Millisecond, "base retry backoff, doubled per attempt with deterministic jitter (0 = immediate retries)")
	breakerRate := flag.Float64("breaker.rate", 0, "per-cost-class circuit breaker failure-rate threshold in (0,1]; 0 disables breakers")
	breakerWindow := flag.Int("breaker.window", 64, "breaker failure-rate window (load outcomes per class)")
	breakerMin := flag.Int("breaker.min", 16, "minimum outcomes in the window before a breaker may trip")
	breakerCooldown := flag.Int("breaker.cooldown", 256, "shed this many loads after a trip before admitting a half-open probe")
	staleServe := flag.Bool("stale.serve", false, "serve evicted-but-retained (stale) values when the breaker is open or the deadline expires")
	remote := flag.String("remote", "", "drive cacheserved nodes at these comma-separated addresses instead of an in-process engine")
	remoteNS := flag.String("remote.ns", "bench", "cacheserved namespace for -remote runs")
	remoteConns := flag.Int("remote.conns", 2, "pooled connections per cacheserved node")
	remoteTimeout := flag.Duration("remote.timeout", 10*time.Second, "per-request deadline against cacheserved")
	flag.Parse()

	factory, ok := replacement.ByName(*policy)
	if !ok {
		cli.BadFlag("cachebench", "-policy", *policy, replacement.Names())
	}
	if *mode != string(loadgen.Open) && *mode != string(loadgen.Closed) {
		cli.BadFlag("cachebench", "-mode", *mode, loadgen.Modes())
	}
	if *bench != "" {
		if _, ok := workload.ByName(*bench); !ok {
			cli.BadFlag("cachebench", "-workload", *bench, workload.Names())
		}
	}
	rateValid := []string{"a sampling fraction in (0, 1]"}
	if *attrSample <= 0 || *attrSample > 1 {
		cli.BadFlag("cachebench", "-attr.sample", fmt.Sprint(*attrSample), rateValid)
	}
	if *obsSample <= 0 || *obsSample > 1 {
		cli.BadFlag("cachebench", "-obs.sample", fmt.Sprint(*obsSample), rateValid)
	}
	if *hotFactor <= 0 {
		cli.BadFlag("cachebench", "-hot.factor", fmt.Sprint(*hotFactor), []string{"a share multiple > 0"})
	}
	if *keysSketch < 0 {
		cli.BadFlag("cachebench", "-keys.sketch", fmt.Sprint(*keysSketch), []string{"a sketch capacity >= 0 (0 = default)"})
	}
	if *tsStep <= 0 {
		cli.BadFlag("cachebench", "-ts.step", fmt.Sprint(*tsStep), []string{"a bucket width > 0"})
	}
	if *tsEvery < 0 {
		cli.BadFlag("cachebench", "-ts.everyops", fmt.Sprint(*tsEvery), []string{"an op count >= 0 (0 = wall clock)"})
	}
	if *sloHitrate <= 0 || *sloHitrate >= 1 {
		cli.BadFlag("cachebench", "-slo.hitrate", fmt.Sprint(*sloHitrate), []string{"an objective in (0, 1)"})
	}
	if *sloP99 <= 0 {
		cli.BadFlag("cachebench", "-slo.p99", fmt.Sprint(*sloP99), []string{"a latency threshold > 0"})
	}
	if *alertBurn <= 0 {
		cli.BadFlag("cachebench", "-alert.burn", fmt.Sprint(*alertBurn), []string{"a burn factor > 0"})
	}
	if *alertFast <= 0 || *alertSlow < *alertFast {
		cli.BadFlag("cachebench", "-alert.fast/-alert.slow", fmt.Sprintf("%v/%v", *alertFast, *alertSlow),
			[]string{"windows with 0 < fast <= slow"})
	}
	if *alertsJSONL != "" {
		*alerts = true
	}
	if *loadDeadline < 0 {
		cli.BadFlag("cachebench", "-load.deadline", fmt.Sprint(*loadDeadline), []string{"a deadline >= 0 (0 = none)"})
	}
	if *loadRetries < 0 {
		cli.BadFlag("cachebench", "-load.retries", fmt.Sprint(*loadRetries), []string{"a retry count >= 0"})
	}
	if *loadBackoff < 0 {
		cli.BadFlag("cachebench", "-load.backoff", fmt.Sprint(*loadBackoff), []string{"a backoff >= 0 (0 = immediate)"})
	}
	if *breakerRate < 0 || *breakerRate > 1 {
		cli.BadFlag("cachebench", "-breaker.rate", fmt.Sprint(*breakerRate), []string{"a failure rate in [0, 1] (0 = disabled)"})
	}
	if *breakerWindow <= 0 || *breakerMin <= 0 || *breakerMin > *breakerWindow {
		cli.BadFlag("cachebench", "-breaker.window/-breaker.min", fmt.Sprintf("%d/%d", *breakerWindow, *breakerMin),
			[]string{"window and min with 0 < min <= window"})
	}
	if *breakerCooldown <= 0 {
		cli.BadFlag("cachebench", "-breaker.cooldown", fmt.Sprint(*breakerCooldown), []string{"a shed count > 0"})
	}
	if *faultPlan != "" && *faultScenario != "" {
		cli.BadFlag("cachebench", "-fault.plan/-fault.scenario", "both set",
			[]string{"at most one fault source (a plan file or a scenario name)"})
	}
	if *remote != "" {
		// The engine lives server-side on a remote run: flags that configure
		// the in-process engine, its backend or its local traces would be
		// silently ignored, so they are rejected up front. Set them on
		// cacheserved's namespace spec instead. Client-side observability
		// (-obs.listen, -keys.sketch, spans, alerts) stays available: the
		// tracer, registry and time-series store all run in this process.
		engineOnly := map[string]bool{
			"policy": true, "shards": true, "sets": true, "ways": true,
			"noshadow": true, "loaddelay": true, "decisions": true,
			"hot.factor":    true,
			"load.deadline": true, "load.retries": true, "load.backoff": true,
			"breaker.rate": true, "breaker.window": true, "breaker.min": true,
			"breaker.cooldown": true, "stale.serve": true,
			"fault.plan": true, "fault.scenario": true, "fault.seed": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if engineOnly[f.Name] {
				cli.BadFlag("cachebench", "-"+f.Name, f.Value.String(),
					[]string{"unset with -remote (the engine runs inside cacheserved; configure it there)"})
			}
		})
		if *remoteNS == "" {
			cli.BadFlag("cachebench", "-remote.ns", "", []string{"a cacheserved namespace name"})
		}
		if *remoteConns <= 0 {
			cli.BadFlag("cachebench", "-remote.conns", fmt.Sprint(*remoteConns), []string{"a pool size > 0"})
		}
		if *remoteTimeout <= 0 {
			cli.BadFlag("cachebench", "-remote.timeout", fmt.Sprint(*remoteTimeout), []string{"a deadline > 0"})
		}
	}

	// The deterministic backend fault injector: nil means a healthy backend.
	var injector *fault.LoaderInjector
	switch {
	case *faultScenario != "":
		plan, err := fault.LoaderScenario(*faultScenario, *faultSeed)
		if err != nil {
			cli.BadFlag("cachebench", "-fault.scenario", *faultScenario, fault.LoaderScenarioNames())
		}
		injector = fault.NewLoaderInjector(plan)
	case *faultPlan != "":
		plan, err := fault.ReadLoaderFile(*faultPlan)
		if err != nil {
			cli.BadFlag("cachebench", "-fault.plan", err.Error(), []string{"a readable, valid loader fault plan (JSON)"})
		}
		injector = fault.NewLoaderInjector(plan)
	}

	// The request tracer attaches when any consumer of its data is on:
	// the attribution table, span emission, or the live debug endpoint.
	var tracer *reqspan.Tracer
	var sinks []*spanSink
	var chromeSink *span.ChromeSink
	if *attr || *spanJSONL != "" || *spanTrace != "" || *obsListen != "" {
		tcfg := reqspan.Config{AttrRate: *attrSample, KeyCap: *keysSketch}
		var jsonlSink *span.LineSink
		if *spanJSONL != "" {
			jsonlSink = span.NewLineSink(openSink(&sinks, *spanJSONL))
		}
		if *spanTrace != "" {
			chromeSink = span.NewChromeSink(openSink(&sinks, *spanTrace))
		}
		if jsonlSink != nil || chromeSink != nil {
			tcfg.EmitRate = *obsSample
		}
		tracer = reqspan.New(tcfg, jsonlSink, chromeSink)
	}

	// The decision tracer streams every replacement decision (reservations,
	// ETD detections, victim choices) as JSONL — the per-run half of the
	// report -explain join.
	var decTracer *obs.Tracer
	if *decisions != "" {
		decTracer = obs.NewTracer(1024)
		decTracer.SetSink(openSink(&sinks, *decisions))
	}

	reg := obs.NewRegistry()
	cfg := loadgen.Config{
		Mode:      loadgen.Mode(*mode),
		Workers:   *workers,
		Ops:       *ops,
		Rate:      *rate,
		Keys:      *keys,
		ZipfS:     *zipf,
		Workload:  *bench,
		Seed:      *seed,
		CostLow:   replacement.Cost(*costLow),
		CostHigh:  replacement.Cost(*costHigh),
		HighFrac:  *haf,
		LoadDelay: *loadDelay,
		Registry:  reg, // request_latency_ns feeds the live quantile signals
		Tracer:    tracer,
		Faults:    injector,
	}

	// Degraded-mode serving attaches only when a resilience flag asks for
	// it; an unconfigured run keeps the legacy load path (and its exact
	// metric catalog) bit-for-bit. The classifier prices a key's breaker and
	// retry class exactly the way the simulated backend will charge it.
	var resil *resilience.Resilience
	rcfg := resilience.Config{
		Deadline:        *loadDeadline,
		MaxRetries:      *loadRetries,
		RefCost:         replacement.Cost(*costHigh),
		BackoffBase:     *loadBackoff,
		Seed:            uint64(*seed),
		BreakerRate:     *breakerRate,
		BreakerWindow:   *breakerWindow,
		BreakerMin:      *breakerMin,
		BreakerCooldown: *breakerCooldown,
		ServeStale:      *staleServe,
	}
	if rcfg.Enabled() {
		rcfg.Classify = cfg.CostSource().MissCost
		resil = resilience.New(rcfg, reg)
	}

	// Remote runs swap the in-process engine for a consistent-hash ring of
	// cacheserved nodes; the loadgen config is otherwise identical, which is
	// what makes a same-seed remote run counter-for-counter comparable.
	var eng *engine.Engine
	var ring *client.Ring
	var remoteTarget *loadgen.RemoteTarget
	if *remote != "" {
		var err error
		ring, err = client.NewRing(client.RingConfig{
			Addrs: strings.Split(*remote, ","),
			// The connection pools estimate each node's clock offset against
			// the tracer's span clock during PING trace negotiation, so the
			// ring's offset hints are in the same unit stitched spans use.
			Client:   client.Config{Conns: *remoteConns, Timeout: *remoteTimeout, Clock: tracer.Now},
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachebench:", err)
			os.Exit(1)
		}
		defer ring.Close()
		remoteTarget = loadgen.NewRemoteTarget(ring, *remoteNS, tracer)
		cfg.Target = remoteTarget
	} else {
		eng = engine.New(engine.Config{
			Shards:     *shards,
			Sets:       *sets,
			Ways:       *ways,
			Policy:     factory,
			Registry:   reg,
			Shadow:     !*noShadow,
			Tracer:     tracer,
			Decisions:  decTracer,
			Resilience: resil,
		})
	}
	stopped := cli.Interrupt()

	// The live time-series store attaches when anything consumes it: the
	// debug endpoints, the alert engine, or a deterministic telemetry clock.
	var store *tsdb.Store
	var alertEng *alert.Engine
	if *obsListen != "" || *alerts || *tsEvery > 0 {
		store = tsdb.New(tsdb.Config{Registry: reg, Resolutions: tsdb.Resolutions(*tsStep)})
	}
	if *alerts {
		alertEng = alert.New(store, alert.DefaultRules(alert.Defaults{
			HitRateObjective: *sloHitrate,
			BurnFactor:       *alertBurn,
			Short:            *alertFast,
			Long:             *alertSlow,
			P99:              *sloP99,
		}))
		if *alertsJSONL != "" {
			alertEng.SetSink(openSink(&sinks, *alertsJSONL))
		}
	}
	if store != nil {
		if *tsEvery > 0 {
			// Deterministic mode: the telemetry clock starts at the Unix
			// epoch and advances one step every N completed ops, so a
			// same-seed single-worker run samples and evaluates alerts at
			// identical simulated times — CI pins exact firing counts on
			// this.
			base := time.Unix(0, 0)
			every := int64(*tsEvery)
			step := *tsStep
			cfg.OnDone = func(n int64) {
				if n%every != 0 {
					return
				}
				now := base.Add(time.Duration(n/every) * step)
				store.Sample(now)
				if alertEng != nil {
					alertEng.Eval(now)
				}
			}
		} else {
			stopSampler := store.Start()
			defer stopSampler()
			if alertEng != nil {
				done := make(chan struct{})
				defer close(done)
				go func() {
					t := time.NewTicker(*tsStep)
					defer t.Stop()
					for {
						select {
						case <-done:
							return
						case now := <-t.C:
							alertEng.Eval(now)
						}
					}
				}()
			}
		}
	}

	if *obsListen != "" {
		var ringDebug func() any
		if ring != nil {
			ringDebug = func() any { return ring.Debug() }
		}
		mux := obs.NewMux(reg)
		mux.Handle("/debug/engine", "live shard analytics (hot shards, lock wait, coalesce depth; ring rows on -remote)",
			engine.DebugHandlerRing(eng, tracer, *hotFactor, ringDebug))
		mux.Handle("/debug/timeseries", "windowed rates, ratios and latency quantiles from the live time-series store",
			tsdb.Handler(store))
		if alertEng != nil {
			mux.Handle("/debug/alerts", "alert rule states and recent transitions",
				alert.Handler(alertEng, store.LastTime))
		}
		srv, err := obs.ServeHandler(*obsListen, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachebench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s (metrics, pprof, debug/engine, debug/timeseries)\n", srv.Addr())
	}

	var prof *obs.Profiler
	if *profileDir != "" {
		var err error
		prof, err = obs.StartProfiler(obs.ProfilerConfig{Dir: *profileDir, Interval: *profileInterval})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachebench:", err)
			os.Exit(1)
		}
	}

	stopProgress := make(chan struct{})
	if !*quiet && eng != nil {
		go progress(eng, stopProgress)
	}
	res, err := loadgen.Run(eng, cfg, stopped)
	close(stopProgress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachebench:", err)
		os.Exit(2)
	}

	if prof != nil {
		if err := prof.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "cachebench: profiler:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d profile snapshots to %s\n", len(prof.Snapshots()), *profileDir)
	}

	title := fmt.Sprintf("cachebench · %s · %d shards · %d workers · %s-loop",
		*policy, *shards, *workers, *mode)
	if *remote != "" {
		title = fmt.Sprintf("cachebench · remote %s · ns %s · %d workers · %s-loop",
			*remote, *remoteNS, *workers, *mode)
	}
	printSummary(title, res, resil, injector)
	if alertEng != nil {
		printAlerts(alertEng, store)
	}

	if chromeSink != nil {
		chromeSink.Close()
	}
	for _, s := range sinks {
		s.close()
	}
	if alertEng != nil {
		if err := alertEng.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "cachebench: alert sink:", err)
			os.Exit(1)
		}
	}
	if decTracer != nil {
		if err := decTracer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "cachebench: decision sink:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d decision events to %s\n", decTracer.Total(), *decisions)
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "cachebench: span sink:", err)
			os.Exit(1)
		}
		reconcileSpans(tracer, res.Stats, resil != nil)
		if *attr {
			fmt.Fprintln(os.Stderr)
			tracer.Attribution().WriteTable(os.Stderr,
				fmt.Sprintf("serving-path attribution · %s · %d shards", *policy, *shards))
		}
		if *spanJSONL != "" || *spanTrace != "" {
			fmt.Printf("wrote request spans (1 in %d sampled; jsonl=%q chrome=%q; load chrome traces at ui.perfetto.dev)\n",
				tracer.AttrEvery(), *spanJSONL, *spanTrace)
		}
	}

	// A remote run closes with the cluster manifest reconciliation: every
	// node's manifest is collected over the wire (MANIFEST op) and the summed
	// per-node engine counters must equal the client-observed totals bit for
	// bit. A mismatch means the tier lost or double-counted requests, so it
	// is fatal. With unaccounted client requests (transport errors, sheds)
	// the identity cannot hold, and the check downgrades to advisory.
	var nodeMs []wire.NodeManifest
	if remoteTarget != nil {
		var err error
		nodeMs, err = ring.Manifests()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachebench:", err)
			os.Exit(1)
		}
		reconcileCluster(nodeMs, *remoteNS, remoteTarget.Observed())
	}

	if *manifestPath != "" {
		art := artifacts{decisions: *decisions, spanJSONL: *spanJSONL,
			spanTrace: *spanTrace, alertEvents: *alertsJSONL,
			remote: *remote, remoteNS: *remoteNS}
		if err := writeManifest(*manifestPath, *policy, *mode, *bench, cfg, eng, reg, res, tracer, decTracer, store, alertEng, art, prof, *profileDir, resil, injector, ring, nodeMs, remoteTarget); err != nil {
			fmt.Fprintln(os.Stderr, "cachebench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote manifest to %s\n", *manifestPath)
	}
	if res.Interrupted {
		os.Exit(cli.ExitInterrupted)
	}
}

// spanSink is one buffered span output file.
type spanSink struct {
	f  *os.File
	bw *bufio.Writer
}

func (s *spanSink) close() {
	if err := s.bw.Flush(); err == nil {
		err = s.f.Close()
	} else {
		s.f.Close()
		fmt.Fprintln(os.Stderr, "cachebench:", err)
		os.Exit(1)
	}
}

// openSink creates path and tracks the file for the post-run flush.
func openSink(sinks *[]*spanSink, path string) *bufio.Writer {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachebench:", err)
		os.Exit(1)
	}
	s := &spanSink{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
	*sinks = append(*sinks, s)
	return s.bw
}

// reconcileSpans cross-checks the tracer against the engine counters. The
// deterministic sampling stride makes the total exact at any rate — spans
// == floor(requests/stride) — and the per-outcome counts exact at stride 1
// (hits ↔ hit spans, misses ↔ miss+error spans, coalesced ↔ coalesced
// spans). It also checks the accounting identity that stage sums plus the
// unattributed remainder tile the sampled latency histogram's total within
// 1% (exact on a quiesced run; the slack covers future concurrent readers).
// Any mismatch means the instrumentation drifted off the request path, so
// it is fatal.
//
// resilient relaxes exactly one identity: when the run used degraded-mode
// serving and at least one deadline expired, a departed leader's load still
// installs (and charges) in the background after its span closed, so the
// span cost sum legitimately undershoots engine cost_paid. Every count
// identity still holds.
func reconcileSpans(tr *reqspan.Tracer, st engine.Stats, resilient bool) {
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cachebench: span reconciliation: "+format+"\n", args...)
		os.Exit(1)
	}
	a := tr.Attribution()
	total := st.Hits + st.Misses + st.Coalesced
	every := int64(tr.AttrEvery())
	if int64(tr.Requests()) != total {
		fatal("tracer saw %d requests, engine counted %d", tr.Requests(), total)
	}
	if want := total / every; a.Spans != want {
		fatal("%d spans, want %d (%d requests / %d stride)", a.Spans, want, total, every)
	}
	if every == 1 {
		if a.Outcomes[reqspan.OutcomeHit] != st.Hits {
			fatal("%d hit spans vs %d engine hits", a.Outcomes[reqspan.OutcomeHit], st.Hits)
		}
		if got := a.Outcomes[reqspan.OutcomeMiss] + a.Outcomes[reqspan.OutcomeError]; got != st.Misses {
			fatal("%d miss+error spans vs %d engine misses", got, st.Misses)
		}
		if a.Outcomes[reqspan.OutcomeCoalesced] != st.Coalesced {
			fatal("%d coalesced spans vs %d engine coalesced", a.Outcomes[reqspan.OutcomeCoalesced], st.Coalesced)
		}
		if a.CostPaid != st.CostPaid && !(resilient && st.LoadTimeouts > 0) {
			fatal("span cost sum %d vs engine cost_paid %d", a.CostPaid, st.CostPaid)
		}
	}
	if a.Latency.Sum != a.TotalNs {
		fatal("latency histogram sum %d != span total %d", a.Latency.Sum, a.TotalNs)
	}
	if a.TotalNs > 0 {
		cover := float64(a.StageSumNs()+a.OtherNs) / float64(a.TotalNs)
		if cover < 0.99 || cover > 1.01 {
			fatal("stage sums cover %.4f of span time, want 1±0.01", cover)
		}
		fmt.Printf("span reconciliation: %d spans == %d requests / %d; stage sums cover %.2f%% of sampled latency\n",
			a.Spans, total, every, 100*cover)
	} else {
		fmt.Printf("span reconciliation: %d spans == %d requests / %d\n", a.Spans, total, every)
	}
}

// reconcileCluster checks the cluster accounting identity of a remote run:
// the summed per-node engine counters for the driven namespace must equal
// what this client observed come back over the wire, bit for bit. Exact only
// when the servers were started fresh for this run (their counters are
// cumulative) and every client request completed; unaccounted requests
// (transport errors, timeouts, ring sheds) make the identity unknowable from
// this side, so the check prints an advisory instead of failing.
func reconcileCluster(nodeMs []wire.NodeManifest, ns string, obsd loadgen.Observed) {
	var hits, misses, coalesced, cost int64
	for _, nm := range nodeMs {
		for _, n := range nm.Namespaces {
			if n.Namespace != ns {
				continue
			}
			hits += n.Hits
			misses += n.Misses
			coalesced += n.Coalesced
			cost += n.CostPaid
		}
	}
	if obsd.Unaccounted != 0 {
		fmt.Printf("cluster reconciliation: advisory (%d unaccounted client requests): servers hits=%d misses=%d coalesced=%d cost_paid=%d; client hits=%d misses=%d coalesced=%d cost_paid=%d\n",
			obsd.Unaccounted, hits, misses, coalesced, cost,
			obsd.Hits, obsd.Misses, obsd.Coalesced, obsd.CostPaid)
		return
	}
	if hits != obsd.Hits || misses != obsd.Misses || coalesced != obsd.Coalesced || cost != obsd.CostPaid {
		fmt.Fprintf(os.Stderr, "cachebench: cluster reconciliation failed: summed node manifests hits=%d misses=%d coalesced=%d cost_paid=%d, client observed hits=%d misses=%d coalesced=%d cost_paid=%d\n",
			hits, misses, coalesced, cost,
			obsd.Hits, obsd.Misses, obsd.Coalesced, obsd.CostPaid)
		os.Exit(1)
	}
	fmt.Printf("cluster reconciliation: %d nodes; hits=%d misses=%d coalesced=%d cost_paid=%d == client-observed, bit for bit\n",
		len(nodeMs), hits, misses, coalesced, cost)
}

// progress prints a once-a-second live line to stderr: total operations,
// hit rate and shadow savings so far.
func progress(eng *engine.Engine, stop <-chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "cachebench: t=%3.0fs ops=%d hit=%.1f%% coalesced=%d savings=%.1f%%\n",
				time.Since(start).Seconds(), st.Hits+st.Misses+st.Coalesced,
				100*st.HitRate(), st.Coalesced, 100*st.Savings())
		}
	}
}

func printSummary(title string, res loadgen.Result,
	resil *resilience.Resilience, injector *fault.LoaderInjector) {
	st := res.Stats
	t := tabulate.New(title, "metric", "value")
	t.AddF("ops", res.Ops)
	t.AddF("wall_s", float64(res.WallNs)/1e9)
	t.AddF("throughput_ops_s", res.Throughput)
	t.AddF("hits", st.Hits)
	t.AddF("misses", st.Misses)
	t.AddF("hit_rate_pct", 100*st.HitRate())
	t.AddF("coalesced", st.Coalesced)
	t.AddF("evictions", st.Evictions)
	t.AddF("cost_paid", st.CostPaid)
	t.AddF("lock_wait_ms", float64(st.LockWaitNs)/1e6)
	t.AddF("p50_us", float64(res.P50Ns)/1e3)
	t.AddF("p95_us", float64(res.P95Ns)/1e3)
	t.AddF("p99_us", float64(res.P99Ns)/1e3)
	if st.ShadowCost > 0 {
		t.AddF("shadow_cost_lru", st.ShadowCost)
		t.AddF("savings_vs_lru_pct", 100*st.Savings())
	}
	if resil != nil {
		t.AddF("errors", res.Errors)
		t.AddF("load_timeouts", st.LoadTimeouts)
		t.AddF("load_retries", st.LoadRetries)
		t.AddF("shed", st.Shed)
		t.AddF("stale_served", st.StaleServed)
		t.AddF("breaker_opened", resil.Opened())
	}
	if injector != nil {
		t.AddF("fault_load_errors", injector.Errors())
		t.AddF("fault_slow_units", injector.SlowUnits())
	}
	t.Fprint(os.Stdout)
	if res.Interrupted {
		fmt.Println("run interrupted; figures cover the completed portion only")
	}
}

// printAlerts reports each rule's post-run standing on stdout, evaluated at
// the telemetry clock's last sample time (deterministic under -ts.everyops).
func printAlerts(alertEng *alert.Engine, store *tsdb.Store) {
	now := store.LastTime()
	if now.IsZero() {
		now = time.Now()
	}
	for _, s := range alertEng.Summaries(now) {
		fmt.Printf("alert %-16s state=%-8s fired=%d firing_ms=%d\n",
			s.Rule, s.State, s.Fired, s.FiringNS/int64(time.Millisecond))
	}
}

// artifacts collects the companion trace file paths the run was asked to
// write, for recording in the manifest's artifact map.
type artifacts struct {
	decisions, spanJSONL, spanTrace, alertEvents string
	remote, remoteNS                             string
}

func writeManifest(path, policy, mode, bench string, cfg loadgen.Config,
	eng *engine.Engine, reg *obs.Registry, res loadgen.Result,
	tracer *reqspan.Tracer, decTracer *obs.Tracer,
	store *tsdb.Store, alertEng *alert.Engine, art artifacts,
	prof *obs.Profiler, profileDir string,
	resil *resilience.Resilience, injector *fault.LoaderInjector,
	ring *client.Ring, nodeMs []wire.NodeManifest, remoteTarget *loadgen.RemoteTarget) error {
	m := manifest.New("cachebench")
	m.SetConfig("mode", mode)
	if eng != nil {
		m.SetConfig("policy", policy)
		m.SetConfig("shards", eng.Shards())
		m.SetConfig("capacity", eng.Capacity())
	} else {
		// Remote run: the engine (and its policy) lives inside cacheserved.
		m.SetConfig("remote", art.remote)
		m.SetConfig("remote_ns", art.remoteNS)
	}
	if remoteTarget != nil {
		// The merged cluster manifest: per-node engine counters collected
		// over the wire, their cluster sums, and the client-observed totals
		// they reconciled against (reconcileCluster ran before this).
		obsd := remoteTarget.Observed()
		m.SetConfig("nodes", len(nodeMs))
		m.SetConfig("trace_negotiated", ring.TraceSupported())
		m.SetMetric("client_hits", float64(obsd.Hits))
		m.SetMetric("client_misses", float64(obsd.Misses))
		m.SetMetric("client_coalesced", float64(obsd.Coalesced))
		m.SetMetric("client_cost_paid", float64(obsd.CostPaid))
		m.SetMetric("client_unaccounted", float64(obsd.Unaccounted))
		offsets := ring.Offsets()
		var hits, misses, coalesced, evictions, cost int64
		for i, nm := range nodeMs {
			m.SetConfig(fmt.Sprintf("node_name{node=\"%d\"}", i), nm.Node)
			m.SetMetric(fmt.Sprintf("node_offset_ns{node=\"%d\"}", i), float64(offsets[i]))
			m.SetMetric(fmt.Sprintf("node_frames_in{node=\"%d\"}", i), float64(nm.FramesIn))
			m.SetMetric(fmt.Sprintf("node_frames_out{node=\"%d\"}", i), float64(nm.FramesOut))
			m.SetMetric(fmt.Sprintf("node_server_shed{node=\"%d\"}", i), float64(nm.ServerShed))
			for _, n := range nm.Namespaces {
				if n.Namespace != art.remoteNS {
					continue
				}
				m.SetMetric(fmt.Sprintf("node_hits{node=\"%d\"}", i), float64(n.Hits))
				m.SetMetric(fmt.Sprintf("node_misses{node=\"%d\"}", i), float64(n.Misses))
				m.SetMetric(fmt.Sprintf("node_coalesced{node=\"%d\"}", i), float64(n.Coalesced))
				m.SetMetric(fmt.Sprintf("node_evictions{node=\"%d\"}", i), float64(n.Evictions))
				m.SetMetric(fmt.Sprintf("node_cost_paid{node=\"%d\"}", i), float64(n.CostPaid))
				hits += n.Hits
				misses += n.Misses
				coalesced += n.Coalesced
				evictions += n.Evictions
				cost += n.CostPaid
			}
		}
		m.SetMetric("cluster_hits", float64(hits))
		m.SetMetric("cluster_misses", float64(misses))
		m.SetMetric("cluster_coalesced", float64(coalesced))
		m.SetMetric("cluster_evictions", float64(evictions))
		m.SetMetric("cluster_cost_paid", float64(cost))
	}
	m.SetConfig("workers", cfg.Workers)
	m.SetConfig("rate", cfg.Rate)
	m.SetConfig("keys", cfg.Keys)
	m.SetConfig("zipf", cfg.ZipfS)
	m.SetConfig("seed", cfg.Seed)
	m.SetConfig("costlow", cfg.CostLow)
	m.SetConfig("costhigh", cfg.CostHigh)
	m.SetConfig("haf", cfg.HighFrac)
	m.SetConfig("loaddelay", cfg.LoadDelay)
	if bench != "" {
		m.SetConfig("workload", bench)
	}
	if res.Interrupted {
		m.MarkInterrupted()
	}
	st := res.Stats
	m.SetMetric("ops", float64(res.Ops))
	m.SetMetric("wall_ns", float64(res.WallNs))
	m.SetMetric("throughput_ops_s", res.Throughput)
	m.SetMetric("engine_hits", float64(st.Hits))
	m.SetMetric("engine_misses", float64(st.Misses))
	m.SetMetric("engine_coalesced", float64(st.Coalesced))
	m.SetMetric("engine_evictions", float64(st.Evictions))
	m.SetMetric("engine_cost_paid", float64(st.CostPaid))
	m.SetMetric("engine_lock_wait_ns", float64(st.LockWaitNs))
	m.SetMetric("hit_rate_pct", 100*st.HitRate())
	m.SetMetric("latency_p50_ns", float64(res.P50Ns))
	m.SetMetric("latency_p95_ns", float64(res.P95Ns))
	m.SetMetric("latency_p99_ns", float64(res.P99Ns))
	if st.ShadowCost > 0 {
		m.SetMetric("engine_shadow_cost", float64(st.ShadowCost))
		m.SetMetric("savings_vs_lru_pct", 100*st.Savings())
	}
	if resil != nil {
		m.SetMetric("request_errors", float64(res.Errors))
		m.SetMetric("stale_serves", float64(res.StaleServes))
		m.SetMetric("engine_load_timeouts", float64(st.LoadTimeouts))
		m.SetMetric("engine_load_retries", float64(st.LoadRetries))
		m.SetMetric("engine_shed", float64(st.Shed))
		m.SetMetric("engine_stale_served", float64(st.StaleServed))
		m.SetMetric("engine_breaker_opened", float64(resil.Opened()))
	}
	if injector != nil {
		m.SetConfig("fault_plan", injector.Plan().Name)
		m.SetConfig("fault_plan_hash", injector.Plan().Hash())
		m.SetMetric("fault_load_errors", float64(injector.Errors()))
		m.SetMetric("fault_slow_units", float64(injector.SlowUnits()))
	}
	if tracer != nil {
		m.SetAttribution(tracer.Attribution())
		if art.spanJSONL != "" {
			m.SetArtifact("request_spans", art.spanJSONL)
		}
		if art.spanTrace != "" {
			m.SetArtifact("span_trace", art.spanTrace)
		}
	}
	if decTracer != nil {
		decTracer.PublishCounts(reg) // trace_events{policy,kind} land in the snapshot
		m.SetArtifact("decision_trace", art.decisions)
	}
	if store != nil {
		m.SetMetric("ts_samples", float64(store.Samples()))
	}
	if alertEng != nil {
		now := store.LastTime()
		for _, s := range alertEng.Summaries(now) {
			m.SetMetric(fmt.Sprintf("alert_fired{rule=%q}", s.Rule), float64(s.Fired))
			m.SetMetric(fmt.Sprintf("alert_firing_ns{rule=%q}", s.Rule), float64(s.FiringNS))
		}
		if art.alertEvents != "" {
			m.SetArtifact("alert_events", art.alertEvents)
		}
	}
	if prof != nil {
		m.SetConfig("profile_dir", profileDir)
		m.SetMetric("profile_snapshots", float64(len(prof.Snapshots())))
	}
	m.AddSnapshot(reg.Snapshot()) // per-shard engine_* and trace_events series
	return m.WriteFile(path)
}
