// Package span is the miss-lifecycle tracer of the execution-driven
// simulator: every L2 miss becomes one Span that records, in simulated
// nanoseconds, each stage the transaction traverses — MSHR wait at issue,
// cache lookup, the request's network traversal, directory occupancy, memory
// access, owner forwards, invalidation fan-out and the data reply — plus
// every individual mesh-link hop with its queueing delay. Spans are the
// trace-grounded evidence for the paper's premise that miss costs are
// non-uniform: the aggregated Breakdown shows exactly where a local miss's
// 120 ns and a remote dirty miss's ~500 ns go.
//
// The tracer is built for the simulator's single-threaded hot path: one span
// is active at a time, Begin/Finish reuse a single scratch Span, and the
// JSONL and Chrome trace-event encoders append into reused buffers, so
// steady-state recording performs zero allocations per miss (pinned by
// TestSpanRecordAllocs). A nil *Tracer in the simulator config costs one nil
// check per miss and leaves results bit-identical.
package span

import "io"

// Stage identifies one segment kind of a miss lifecycle.
type Stage uint8

// Lifecycle stages, in the order a maximal transaction traverses them.
const (
	// StageIssue is the wait for a free MSHR before the miss could issue.
	StageIssue Stage = iota
	// StageLookup is the L1+L2 lookup that detected the miss.
	StageLookup
	// StageRequest is the requester-to-home network traversal.
	StageRequest
	// StageDirectory is the home directory occupancy (wait + access).
	StageDirectory
	// StageMemory is the memory bank occupancy (wait + access).
	StageMemory
	// StageForward is the home-to-owner forward, the owner's L2 lookup and,
	// for stale directories, the empty-handed nack back to the home.
	StageForward
	// StageInval is the invalidation fan-out window of a write miss to a
	// shared block: from the first invalidation sent to the last ack back.
	StageInval
	// StageReply is the data reply's network traversal to the requester.
	StageReply
	// NumStages is the number of stage kinds.
	NumStages = int(StageReply) + 1
)

var stageNames = [NumStages]string{
	"issue", "lookup", "request", "directory", "memory", "forward", "inval", "reply",
}

// String returns the stage's schema name ("issue", "lookup", ...).
func (s Stage) String() string { return stageNames[s] }

// Seg is one stage segment: [Start, End] in simulated ns, with Queue the
// portion spent waiting (for an MSHR, a busy directory or bank, or — derived
// from the hop records — busy mesh links).
type Seg struct {
	Stage Stage
	Start int64
	Queue int64
	End   int64
}

// Hop is one mesh-link traversal: the flit train arrived at the directional
// link at Start, waited Queue ns for it to drain, and left at End.
type Hop struct {
	Link  int32
	Start int64
	Queue int64
	End   int64
}

// Span is the lifecycle of one L2 miss. It is owned by the Tracer between
// Begin and Finish; callers append segments but must not retain it.
type Span struct {
	// ID is the 1-based global span sequence number.
	ID uint64
	// Node is the requesting processor; Block the missing block number.
	Node  int
	Block uint64
	// Write distinguishes write misses (GetX) from read misses (GetS).
	Write bool
	// State is the home directory state when the request arrived
	// ('U', 'S' or 'E'), recorded at Finish.
	State byte
	// Local reports home == requester; Dirty that a dirty owner copy was
	// involved. Together they select the paper's latency class.
	Local, Dirty bool
	// Start is the reference's processing time, End the data arrival.
	Start, End int64
	// Segs are the stage segments, in recording order.
	Segs []Seg
	// Hops are the individual link traversals, in recording order.
	Hops []Hop

	hopQueue int64 // running sum of Hops[i].Queue
}

// SegQ appends a stage segment with an explicit queueing share.
func (s *Span) SegQ(st Stage, start, queue, end int64) {
	s.Segs = append(s.Segs, Seg{Stage: st, Start: start, Queue: queue, End: end})
}

// Hop appends one link traversal.
func (s *Span) Hop(link int32, start, queue, end int64) {
	s.Hops = append(s.Hops, Hop{Link: link, Start: start, Queue: queue, End: end})
	s.hopQueue += queue
}

// HopQueueNs returns the total link queueing recorded so far; instrumented
// code deltas it around a network exchange to attribute queueing per stage.
func (s *Span) HopQueueNs() int64 { return s.hopQueue }

// Tracer turns L2 misses into spans and fans each finished span out to the
// optional JSONL sink, the optional Chrome trace-event sink, and the running
// per-class latency Breakdown. It is not safe for concurrent use: the
// simulators drive it from their single event loop, and exactly one span may
// be active between Begin and Finish.
type Tracer struct {
	jsonl      *LineSink
	chrome     *chromeWriter
	ownsChrome bool
	cur        Span
	active     bool
	seq        uint64
	nodes      []int64
	agg        Breakdown
	buf        []byte
	err        error
}

// NewTracer returns a tracer writing spans as JSON lines to jsonl and as
// Chrome trace events to chrome; either (or both) may be nil, in which case
// only the Breakdown and the reconciliation counts are maintained. The
// tracer owns both sinks: Close finalizes the Chrome trace array.
func NewTracer(jsonl, chrome io.Writer) *Tracer {
	t := &Tracer{}
	if jsonl != nil {
		t.jsonl = NewLineSink(jsonl)
	}
	if chrome != nil {
		t.chrome = newChromeWriter(NewChromeSink(chrome))
		t.ownsChrome = true
	}
	return t
}

// NewTracerSinks returns a tracer emitting into shared sinks — the
// configuration that interleaves simulator miss spans with engine request
// spans (internal/obs/reqspan) in one JSONL stream and one Perfetto
// timeline. Either sink may be nil. The caller owns the sinks: Close here
// does NOT write the Chrome array's closing bracket.
func NewTracerSinks(jsonl *LineSink, chrome *ChromeSink) *Tracer {
	t := &Tracer{jsonl: jsonl}
	if chrome != nil {
		t.chrome = newChromeWriter(chrome)
	}
	return t
}

// Begin starts the span of one L2 miss. The returned Span is valid until the
// matching Finish and must not be retained.
func (t *Tracer) Begin(node int, block uint64, write bool, start int64) *Span {
	if t.active {
		panic("span: Begin with a span still active")
	}
	t.active = true
	t.seq++
	s := &t.cur
	s.ID = t.seq
	s.Node, s.Block, s.Write = node, block, write
	s.State, s.Local, s.Dirty = 0, false, false
	s.Start, s.End = start, start
	s.Segs = s.Segs[:0]
	s.Hops = s.Hops[:0]
	s.hopQueue = 0
	return s
}

// Finish completes the active span: end is the data-arrival time, state the
// home directory state the request found ('U', 'S' or 'E'), and local/dirty
// the latency class. The span is aggregated and emitted to the sinks.
func (t *Tracer) Finish(s *Span, end int64, state byte, local, dirty bool) {
	if !t.active || s != &t.cur {
		panic("span: Finish without matching Begin")
	}
	t.active = false
	s.End, s.State, s.Local, s.Dirty = end, state, local, dirty
	for len(t.nodes) <= s.Node {
		t.nodes = append(t.nodes, 0)
	}
	t.nodes[s.Node]++
	t.agg.record(s)
	if t.jsonl != nil {
		t.buf = appendSpanJSON(t.buf[:0], s)
		t.jsonl.WriteLine(t.buf)
	}
	if t.chrome != nil {
		t.chrome.span(s)
	}
}

// Close finalizes an owned Chrome trace (writing the closing bracket of the
// JSON array; shared sinks from NewTracerSinks are the caller's to close)
// and returns the first sink error, if any. The JSONL sink's underlying
// writer is the caller's to flush and close.
func (t *Tracer) Close() error {
	if t.chrome != nil {
		if t.ownsChrome {
			t.chrome.sink.Close()
		}
		if t.err == nil {
			t.err = t.chrome.sink.Err()
		}
		t.chrome = nil
	}
	if t.err == nil {
		t.err = t.jsonl.Err()
	}
	return t.err
}

// Err returns the first sink write error, if any; after an error the failed
// sink is dropped and tracing continues on the remaining outputs.
func (t *Tracer) Err() error {
	if t.err == nil {
		if err := t.jsonl.Err(); err != nil {
			return err
		}
	}
	if t.err == nil && t.chrome != nil {
		return t.chrome.sink.Err()
	}
	return t.err
}

// Count returns the number of finished spans.
func (t *Tracer) Count() uint64 { return t.seq }

// NodeCounts returns the per-node finished-span counts, indexed by node id
// (length = highest node seen + 1). The counts reconcile one-to-one with the
// simulator's per-node L2 miss counters.
func (t *Tracer) NodeCounts() []int64 {
	out := make([]int64, len(t.nodes))
	copy(out, t.nodes)
	return out
}

// Breakdown returns the running per-class, per-stage latency aggregation.
func (t *Tracer) Breakdown() *Breakdown { return &t.agg }
