package fault

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpSpanActive(t *testing.T) {
	one := OpSpan{StartOp: 10, EndOp: 20}
	for op, want := range map[int64]bool{9: false, 10: true, 19: true, 20: false, 1000: false} {
		if got := one.Active(op); got != want {
			t.Errorf("one-shot Active(%d) = %v, want %v", op, got, want)
		}
	}
	per := OpSpan{StartOp: 10, EndOp: 20, PeriodOps: 100}
	for op, want := range map[int64]bool{9: false, 15: true, 25: false, 110: true, 119: true, 120: false, 215: true} {
		if got := per.Active(op); got != want {
			t.Errorf("periodic Active(%d) = %v, want %v", op, got, want)
		}
	}
}

func TestLoaderPlanValidate(t *testing.T) {
	bad := []LoaderPlan{
		{Bursts: []ErrorBurst{{Class: 1, OpSpan: OpSpan{StartOp: 5, EndOp: 5}}}},
		{Bursts: []ErrorBurst{{Class: -2, OpSpan: OpSpan{StartOp: 0, EndOp: 5}}}},
		{Spikes: []SlowSpike{{Class: -1, OpSpan: OpSpan{StartOp: 0, EndOp: 5}}}}, // extra_units 0
		{Spikes: []SlowSpike{{Class: -1, OpSpan: OpSpan{StartOp: 0, EndOp: 5, PeriodOps: 3}, ExtraUnits: 1}}},
		{Brownouts: []Brownout{{Class: 8, OpSpan: OpSpan{StartOp: 0, EndOp: 5}, FailFrac: 0}}},
		{Brownouts: []Brownout{{Class: 8, OpSpan: OpSpan{StartOp: 0, EndOp: 5}, FailFrac: 1.5}}},
		{Brownouts: []Brownout{{Class: 8, OpSpan: OpSpan{StartOp: -1, EndOp: 5}, FailFrac: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d: Validate accepted an invalid plan", i)
		}
	}
	ok := LoaderPlan{
		Bursts:    []ErrorBurst{{Class: -1, OpSpan: OpSpan{StartOp: 0, EndOp: 5, PeriodOps: 10}}},
		Spikes:    []SlowSpike{{Class: 2, OpSpan: OpSpan{StartOp: 3, EndOp: 9}, ExtraUnits: 4}},
		Brownouts: []Brownout{{Class: 8, OpSpan: OpSpan{StartOp: 10, EndOp: 20}, FailFrac: 0.5}},
	}
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate rejected a valid plan: %v", err)
	}
}

// TestLoaderInjectorPure is the determinism contract: Outcome is a pure
// function of (plan, op, class), so two injectors over the same plan answer
// identically for every query, in any order.
func TestLoaderInjectorPure(t *testing.T) {
	plan := &LoaderPlan{
		Seed:      42,
		Bursts:    []ErrorBurst{{Class: 1, OpSpan: OpSpan{StartOp: 100, EndOp: 150, PeriodOps: 500}}},
		Spikes:    []SlowSpike{{Class: -1, OpSpan: OpSpan{StartOp: 200, EndOp: 260}, ExtraUnits: 7}},
		Brownouts: []Brownout{{Class: 8, OpSpan: OpSpan{StartOp: 300, EndOp: 900}, FailFrac: 0.4}},
	}
	a, b := NewLoaderInjector(plan), NewLoaderInjector(plan)
	for op := int64(0); op < 2000; op++ {
		for _, class := range []int64{1, 8} {
			fa, ea := a.Outcome(op, class)
			// Query b in a scrambled order: purity means order cannot matter.
			fb, eb := b.Outcome(op, class)
			if fa != fb || ea != eb {
				t.Fatalf("op %d class %d: injectors disagree: (%v,%d) vs (%v,%d)", op, class, fa, ea, fb, eb)
			}
		}
	}
	if a.Errors() != b.Errors() || a.SlowUnits() != b.SlowUnits() {
		t.Fatalf("counter mismatch: errors %d/%d slow %d/%d", a.Errors(), b.Errors(), a.SlowUnits(), b.SlowUnits())
	}
	if a.Errors() == 0 {
		t.Fatal("plan injected no errors over 2000 ops")
	}
	if a.SlowUnits() == 0 {
		t.Fatal("plan added no slow units over 2000 ops")
	}
}

func TestLoaderInjectorClassSelectivity(t *testing.T) {
	plan := &LoaderPlan{Brownouts: []Brownout{{Class: 8, OpSpan: OpSpan{StartOp: 0, EndOp: 100}, FailFrac: 1}}}
	in := NewLoaderInjector(plan)
	for op := int64(0); op < 100; op++ {
		if fail, _ := in.Outcome(op, 8); !fail {
			t.Fatalf("op %d: class-8 load survived a full class-8 brownout", op)
		}
		if fail, _ := in.Outcome(op, 1); fail {
			t.Fatalf("op %d: class-1 load failed a class-8 brownout", op)
		}
	}
}

func TestLoaderInjectorBrownoutFraction(t *testing.T) {
	plan := &LoaderPlan{Seed: 7, Brownouts: []Brownout{{Class: -1, OpSpan: OpSpan{StartOp: 0, EndOp: 10000}, FailFrac: 0.3}}}
	in := NewLoaderInjector(plan)
	var failed int
	for op := int64(0); op < 10000; op++ {
		if fail, _ := in.Outcome(op, 1); fail {
			failed++
		}
	}
	if failed < 2500 || failed > 3500 {
		t.Fatalf("0.3 brownout failed %d/10000 loads (want ~3000)", failed)
	}
}

// TestNilLoaderInjector locks the empty-plan representation: nil plans and
// empty plans compile to a nil injector whose every method is a no-op.
func TestNilLoaderInjector(t *testing.T) {
	for _, p := range []*LoaderPlan{nil, {}, {Name: "named-but-empty", Seed: 3}} {
		in := NewLoaderInjector(p)
		if in != nil {
			t.Fatalf("empty plan %+v compiled to a non-nil injector", p)
		}
	}
	var in *LoaderInjector
	if fail, extra := in.Outcome(5, 8); fail || extra != 0 {
		t.Fatal("nil injector injected something")
	}
	if in.Errors() != 0 || in.SlowUnits() != 0 || in.Plan() != nil {
		t.Fatal("nil injector reported non-zero state")
	}
	var ep *LoaderPlan
	if !ep.Empty() || ep.Hash() != "" {
		t.Fatal("nil plan is not empty / has a hash")
	}
}

func TestLoaderScenarios(t *testing.T) {
	for _, name := range LoaderScenarioNames() {
		p1, err := LoaderScenario(name, 11)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p1.Empty() {
			t.Fatalf("%s: scenario built an empty plan", name)
		}
		p2, _ := LoaderScenario(name, 11)
		if p1.Hash() != p2.Hash() {
			t.Fatalf("%s: same seed, different plans", name)
		}
		p3, _ := LoaderScenario(name, 12)
		if p1.Hash() == p3.Hash() {
			t.Fatalf("%s: different seeds built identical plans", name)
		}
	}
	if _, err := LoaderScenario("no-such-scenario", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestLoaderPlanRoundTrip(t *testing.T) {
	p, err := LoaderScenario("mixed-chaos", 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLoaderFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != p.Hash() {
		t.Fatalf("round trip changed the plan: %s vs %s", got.Hash(), p.Hash())
	}
	if _, err := ReadLoaderFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"brownouts":[{"class":8,"start_op":0,"end_op":0,"fail_frac":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLoaderFile(bad); err == nil {
		t.Fatal("invalid plan read succeeded")
	}
}
