// Command costsweep runs the Section 3 sweeps on one benchmark: the random
// cost mapping over a grid of (cost ratio, high-cost access fraction) cells
// (Figure 3) or the first-touch mapping over cost ratios (Table 2), and
// prints the relative cost savings of GD, BCL, DCL and ACL over LRU, as a
// table or CSV.
//
// Usage:
//
//	costsweep -bench Barnes [-map random|firsttouch] [-csv]
//	costsweep -bench Barnes -obs.listen localhost:6060 -manifest results/sweep.json
//
// Sweeps are long: phase progress (one phase per ratio) is reported on
// stderr, -obs.listen serves live /metrics and pprof while the sweep runs,
// -obs.dump prints the metrics registry afterwards, and -manifest writes the
// savings grid as a run manifest for cmd/report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/costsim"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costsweep: ")
	bench := flag.String("bench", "Raytrace", "benchmark name")
	mapping := flag.String("map", "random", "cost mapping: random (Figure 3) or firsttouch (Table 2)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	procFlag := flag.Int("proc", 0, "sample processor")
	seed := flag.Uint64("seed", 42, "random mapping seed")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address")
	obsDump := flag.Bool("obs.dump", false, "dump the metrics registry as text after the sweep")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file")
	flag.Parse()

	if *obsListen != "" {
		srv, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: http://%s\n", srv.Addr())
	}

	g, ok := workload.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	tr := g.Generate()
	view := tr.SampleView(int16(*procFlag))
	cfg := costsim.Default()

	// Phase progress on stderr: tables go to stdout, so redirections stay
	// clean while long sweeps remain visibly alive.
	prog := obs.NewProgress(os.Stderr, obs.Default, "cells")

	var man *manifest.Manifest
	if *manifestPath != "" {
		man = manifest.New("costsweep")
		man.SetConfig("bench", *bench)
		man.SetConfig("map", *mapping)
		man.SetConfig("proc", *procFlag)
		man.SetConfig("seed", *seed)
		man.SetConfig("refs", len(view))
	}
	record := func(label string, pts []costsim.SweepPoint, ptLabel func(costsim.SweepPoint) string) {
		if man == nil {
			return
		}
		for _, pt := range pts {
			for name, sav := range pt.Savings {
				man.SetMetric(obs.Name("savings_pct",
					"sweep", label, "point", ptLabel(pt), "policy", name), sav*100)
			}
		}
	}

	emit := func(t *tabulate.Table) {
		if *csv {
			if err := t.CSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		}
		t.Fprint(os.Stdout)
	}

	switch *mapping {
	case "random":
		for _, r := range costsim.PaperRatios() {
			prog.Phase(r.Label)
			pts := costsim.RandomSweep(view, cfg, []costsim.Ratio{r},
				costsim.PaperHAFs(), costsim.PaperPolicies(), *seed)
			prog.Add(int64(len(pts)))
			record(r.Label, pts, func(pt costsim.SweepPoint) string {
				return fmt.Sprintf("haf=%.2f", pt.TargetHAF)
			})
			t := tabulate.New(fmt.Sprintf("%s, %s: relative cost savings over LRU (%%)", *bench, r.Label),
				"HAF", "measured", "GD", "BCL", "DCL", "ACL")
			for _, pt := range pts {
				t.AddF(fmt.Sprintf("%.2f", pt.TargetHAF), pt.MeasuredHAF,
					pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
					pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
			}
			emit(t)
			fmt.Println()
		}
		prog.Done()
	case "firsttouch":
		prog.Phase("firsttouch")
		homes := workload.FirstTouchHomes(tr, cfg.BlockBytes)
		pts := costsim.FirstTouchSweep(view, cfg, workload.HomeFunc(homes, 0),
			int16(*procFlag), costsim.Table2Ratios(), costsim.PaperPolicies())
		prog.Add(int64(len(pts)))
		record("firsttouch", pts, func(pt costsim.SweepPoint) string { return pt.Ratio.Label })
		prog.Done()
		t := tabulate.New(fmt.Sprintf("%s: first-touch cost savings over LRU (%%)", *bench),
			"ratio", "remote frac", "GD", "BCL", "DCL", "ACL")
		for _, pt := range pts {
			t.AddF(pt.Ratio.Label, pt.MeasuredHAF,
				pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
				pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
		}
		emit(t)
	default:
		log.Fatalf("unknown mapping %q", *mapping)
	}

	if man != nil {
		if err := man.WriteFile(*manifestPath); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote manifest to %s\n", *manifestPath)
	}
	if *obsDump {
		fmt.Println()
		obs.Default.Snapshot().WriteText(os.Stdout)
	}
}
