package wire

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, f *Frame) Frame {
	t.Helper()
	b := AppendFrame(nil, f)
	var got Frame
	if err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), 0, &got); err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Version: Version, Op: OpGetOrLoad, Flags: FlagHit | FlagStale,
		ID: 0xdeadbeefcafe, NS: "sessions",
		Payload: AppendGetOrLoadReq(nil, 42, 8),
	}
	got := roundTrip(t, &f)
	if got.Version != f.Version || got.Op != f.Op || got.Flags != f.Flags ||
		got.ID != f.ID || got.NS != f.NS {
		t.Fatalf("header mismatch: got %+v want %+v", got, f)
	}
	key, cost, err := ParseGetOrLoadReq(got.Payload)
	if err != nil || key != 42 || cost != 8 {
		t.Fatalf("payload mismatch: key=%d cost=%d err=%v", key, cost, err)
	}
}

func TestFrameEmptyNSAndPayload(t *testing.T) {
	f := Frame{Version: Version, Op: OpPing, ID: 1}
	got := roundTrip(t, &f)
	if got.NS != "" || len(got.Payload) != 0 {
		t.Fatalf("got ns=%q payload=%d bytes, want empty", got.NS, len(got.Payload))
	}
}

// TestFramePipelined decodes several frames back to back from one stream,
// reusing the payload buffer, the way the server's read loop does.
func TestFramePipelined(t *testing.T) {
	var b []byte
	for i := uint64(1); i <= 5; i++ {
		b = AppendFrame(b, &Frame{
			Version: Version, Op: OpGet, ID: i, NS: "ns",
			Payload: AppendGetReq(nil, i*100),
		})
	}
	r := bufio.NewReader(bytes.NewReader(b))
	var f Frame
	for i := uint64(1); i <= 5; i++ {
		if err := ReadFrame(r, 0, &f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		key, err := ParseGetReq(f.Payload)
		if err != nil || f.ID != i || key != i*100 {
			t.Fatalf("frame %d: id=%d key=%d err=%v", i, f.ID, key, err)
		}
	}
	if err := ReadFrame(r, 0, &f); err != io.EOF {
		t.Fatalf("after last frame: err=%v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, &Frame{
		Version: Version, Op: OpSet, ID: 9, NS: "ns",
		Payload: AppendSetReq(nil, 7, 3, []byte("value")),
	})
	for cut := 1; cut < len(full); cut++ {
		var f Frame
		err := ReadFrame(bufio.NewReader(bytes.NewReader(full[:cut])), 0, &f)
		if err == nil {
			t.Fatalf("cut at %d decoded successfully", cut)
		}
		if err == io.EOF && cut >= 4 {
			t.Fatalf("cut at %d returned clean EOF mid-frame", cut)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	f := Frame{Version: Version, Op: OpSet, ID: 1, Payload: make([]byte, 1024)}
	b := AppendFrame(nil, &f)
	var got Frame
	err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), 64, &got)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame: err=%v, want length-limit error", err)
	}
}

func TestFrameBadNamespaceLength(t *testing.T) {
	b := AppendFrame(nil, &Frame{Version: Version, Op: OpPing, ID: 1, NS: "abc"})
	// Corrupt nslen to exceed the body.
	b[7] = 200
	var got Frame
	if err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), 0, &got); err == nil {
		t.Fatal("corrupt nslen decoded successfully")
	}
}

func TestPayloadCodecs(t *testing.T) {
	key, cost, val, err := ParseSetReq(AppendSetReq(nil, 11, -2, []byte("v")))
	if err != nil || key != 11 || cost != -2 || string(val) != "v" {
		t.Fatalf("set: key=%d cost=%d val=%q err=%v", key, cost, val, err)
	}
	charged, value, err := ParseGetOrLoadResp(AppendGetOrLoadResp(nil, 8, []byte("x")))
	if err != nil || charged != 8 || string(value) != "x" {
		t.Fatalf("getorload resp: charged=%d value=%q err=%v", charged, value, err)
	}
	code, msg, err := ParseError(AppendError(nil, ErrCodeShed, "busy"))
	if err != nil || code != ErrCodeShed || msg != "busy" {
		t.Fatalf("error: code=%d msg=%q err=%v", code, msg, err)
	}
	if _, err := ParseGetReq([]byte{1}); err == nil {
		t.Fatal("short get request parsed")
	}
	if _, _, err := ParseGetOrLoadReq(nil); err == nil {
		t.Fatal("empty getorload request parsed")
	}
	if _, _, _, err := ParseSetReq([]byte{1, 2}); err == nil {
		t.Fatal("short set request parsed")
	}
	if _, _, err := ParseGetOrLoadResp([]byte{1}); err == nil {
		t.Fatal("short getorload response parsed")
	}
	if _, _, err := ParseError(nil); err == nil {
		t.Fatal("empty error payload parsed")
	}
}

func TestNames(t *testing.T) {
	if OpName(OpGetOrLoad) != "getorload" || OpName(99) != "op(99)" {
		t.Fatal("OpName mismatch")
	}
	if ErrCodeName(ErrCodeDraining) != "draining" || ErrCodeName(99) != "err(99)" {
		t.Fatal("ErrCodeName mismatch")
	}
}

// TestAppendFrameNoAlloc pins the encode path at zero allocations when the
// destination buffer has capacity — the server's response writer reuses one
// buffer per connection.
func TestAppendFrameNoAlloc(t *testing.T) {
	f := Frame{Version: Version, Op: OpGetOrLoad, ID: 3, NS: "ns",
		Payload: AppendGetOrLoadResp(nil, 8, []byte("12345678"))}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendFrame(buf[:0], &f)
	})
	if allocs != 0 {
		t.Fatalf("AppendFrame allocates %v/op with capacity available", allocs)
	}
}
