// Command oracle compares the online policies against the offline optima on
// per-set slices of a benchmark trace: Belady's MIN for miss count and
// CSOPT (Jeong & Dubois SPAA 1999) for aggregate cost. It quantifies how
// much of the offline headroom each heuristic captures — the calibration
// the paper's related-work section appeals to.
//
// Usage:
//
//	oracle -bench Raytrace [-sets 8] [-events 250] [-haf 0.25] [-ratio 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/costsim"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oracle: ")
	bench := flag.String("bench", "Raytrace", "benchmark name")
	sets := flag.Int("sets", 8, "number of cache sets to sample")
	events := flag.Int("events", 2000, "events per set slice")
	haf := flag.Float64("haf", 0.25, "high-cost access fraction")
	ratio := flag.Int64("ratio", 8, "cost ratio")
	ways := flag.Int("ways", 4, "associativity")
	bypass := flag.Bool("bypass", false, "let the optimum bypass (not cache) fetched blocks")
	flag.Parse()

	g, ok := workload.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	prog := obs.NewProgress(os.Stderr, nil, "events")
	prog.Phase("generate")
	view := g.Generate().SampleView(0)
	prog.Add(int64(len(view)))
	r := costsim.Ratio{Low: 1, High: replacement.Cost(*ratio)}
	src := costsim.CalibratedRandom(view, 64, *haf, r, 7)
	costOf := func(b uint64) replacement.Cost { return src.MissCost(b) }

	names := []string{"LRU", "GD", "BCL", "DCL", "ACL"}
	totals := map[string]int64{}
	var optTotal, beladyTotal, lruMissTotal int64

	prog.Phase("evaluate")
	for set := 0; set < *sets; set++ {
		var ev []replacement.OptEvent
		distinct := map[uint64]bool{}
		// Skip the cold-start third of the trace so the slices exercise
		// steady-state replacement rather than compulsory misses.
		for _, ref := range view[len(view)/3:] {
			b := ref.Addr / 64
			if int(b%64) != set {
				continue
			}
			distinct[b] = true
			if len(distinct) > 56 {
				break
			}
			ev = append(ev, replacement.OptEvent{Block: b, Invalidate: ref.Remote})
			if len(ev) == *events {
				break
			}
		}
		if len(ev) == 0 {
			continue
		}
		optTotal += replacement.OptimalAggregateCost(ev, *ways, costOf, *bypass)
		beladyTotal += replacement.OptimalMisses(ev, *ways)
		lruMissTotal += replacement.LRUMisses(ev, *ways)
		for _, name := range names {
			f, _ := replacement.ByName(name)
			totals[name] += replacement.AggregateCostOf(f(), ev, *ways, costOf)
		}
		prog.Add(int64(len(ev)))
	}
	prog.Done()
	if optTotal == 0 {
		log.Fatal("no activity sampled; increase -events")
	}

	t := tabulate.New(
		fmt.Sprintf("%s: %d set slices x %d events, r=%d, HAF=%.2f (CSOPT = 1.00)",
			*bench, *sets, *events, *ratio, *haf),
		"Policy", "aggregate cost", "vs CSOPT")
	t.AddF("CSOPT", optTotal, 1.0)
	for _, name := range names {
		t.AddF(name, totals[name], float64(totals[name])/float64(optTotal))
	}
	t.Fprint(os.Stdout)
	fmt.Printf("miss counts: Belady MIN %d vs LRU %d (headroom %.1f%%)\n",
		beladyTotal, lruMissTotal,
		100*float64(lruMissTotal-beladyTotal)/float64(lruMissTotal))
}
