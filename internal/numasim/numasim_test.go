package numasim

import (
	"testing"

	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

func lruFactory() replacement.Policy { return replacement.NewLRU() }

// smallProgram's per-node footprint (512 body blocks + tree) well exceeds
// the 256-block L2, so replacement decisions actually matter.
func smallProgram() *workload.Program {
	w := workload.Barnes{Bodies: 2048, TreeNodes: 96, WalkNodes: 8, Iterations: 2, Procs: 8, Seed: 2}
	return w.Program()
}

func TestCalibrationMatchesTable4(t *testing.T) {
	cfg := DefaultConfig(lruFactory)
	local, remoteClean, remoteDirty := CalibrationLatencies(cfg)
	if local != 120 {
		t.Errorf("local clean = %d ns, want 120 (Table 4)", local)
	}
	if remoteClean != 380 {
		t.Errorf("remote clean = %d ns, want 380 (Table 4)", remoteClean)
	}
	// Remote dirty: the paper's 480 ns; the mesh has no triangles so the
	// minimal three-party transaction is within ~10%.
	if remoteDirty < 432 || remoteDirty > 528 {
		t.Errorf("remote dirty = %d ns, want 480 +/- 10%%", remoteDirty)
	}
	// The paper: "minimum unloaded remote-to-local latency ratio to clean
	// copies is around 3".
	ratio := float64(remoteClean) / float64(local)
	if ratio < 2.8 || ratio > 3.5 {
		t.Errorf("remote/local ratio = %.2f, want ~3", ratio)
	}
}

func TestRunBasics(t *testing.T) {
	prog := smallProgram()
	cfg := DefaultConfig(lruFactory)
	res := Run(prog, cfg)
	if res.ExecNs <= 0 {
		t.Fatal("execution time must be positive")
	}
	if res.Refs != int64(prog.TotalRefs()) {
		t.Fatalf("executed %d refs, program has %d", res.Refs, prog.TotalRefs())
	}
	if res.L2Misses == 0 || res.AggMissNs == 0 {
		t.Fatalf("no misses simulated: %+v", res)
	}
	if res.Policy != "LRU" {
		t.Fatalf("policy = %q", res.Policy)
	}
	// Average miss latency must be between the local minimum and a loaded
	// remote worst case.
	if res.AvgMissNs < 100 || res.AvgMissNs > 5000 {
		t.Fatalf("average miss latency %.0f ns implausible", res.AvgMissNs)
	}
}

func TestRunDeterministic(t *testing.T) {
	prog := smallProgram()
	cfg := DefaultConfig(lruFactory)
	a := Run(prog, cfg)
	b := Run(prog, cfg)
	if a.ExecNs != b.ExecNs || a.L2Misses != b.L2Misses || a.AggMissNs != b.AggMissNs {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestClockScaling(t *testing.T) {
	prog := smallProgram()
	cfg := DefaultConfig(lruFactory)
	at500 := Run(prog, cfg)
	cfg.ClockMHz = 1000
	at1000 := Run(prog, cfg)
	// Twice the clock must shrink execution time, but by less than 2x
	// (memory and network latencies are fixed in ns).
	if at1000.ExecNs >= at500.ExecNs {
		t.Fatalf("1GHz (%d ns) not faster than 500MHz (%d ns)", at1000.ExecNs, at500.ExecNs)
	}
	if 2*at1000.ExecNs <= at500.ExecNs {
		t.Fatalf("1GHz scaled superlinearly: %d vs %d", at1000.ExecNs, at500.ExecNs)
	}
}

// craftedEvictionProgram makes proc 0 acquire block 0 exclusively, evict it
// cleanly by conflict (five blocks mapping to L2 set 0), then proc 1 reads
// it after a barrier. Without hints the directory still names proc 0 as
// owner and the forward comes back empty.
func craftedEvictionProgram() *workload.Program {
	var p0 []trace.Ref
	for i := 0; i < 5; i++ {
		p0 = append(p0, trace.Ref{Addr: uint64(i) * 64 * 64, Proc: 0, Op: trace.Read})
	}
	p1 := []trace.Ref{{Addr: 0, Proc: 1, Op: trace.Read}}
	return &workload.Program{
		Name: "crafted", Procs: 2,
		Phases: [][][]trace.Ref{{p0, nil}, {nil, p1}},
	}
}

func TestHintsReduceForwardNacks(t *testing.T) {
	prog := craftedEvictionProgram()
	cfg := DefaultConfig(lruFactory)
	with := Run(prog, cfg)
	cfg.Protocol.Hints = false
	without := Run(prog, cfg)
	if with.Protocol.ForwardNacks != 0 {
		t.Fatalf("hinted protocol saw %d forward nacks", with.Protocol.ForwardNacks)
	}
	if without.Protocol.ForwardNacks != 1 {
		t.Fatalf("hint-free protocol saw %d forward nacks, want 1", without.Protocol.ForwardNacks)
	}
	if without.Protocol.Hints != 0 || with.Protocol.Hints == 0 {
		t.Fatalf("hint counters wrong: with=%+v without=%+v", with.Protocol, without.Protocol)
	}
	// The stale forward also shows up as latency: proc 1's read is slower
	// without hints.
	if without.AggMissNs <= with.AggMissNs {
		t.Fatalf("stale directory should cost latency: %d <= %d",
			without.AggMissNs, with.AggMissNs)
	}
}

func TestTable3Collection(t *testing.T) {
	prog := smallProgram()
	cfg := DefaultConfig(lruFactory)
	cfg.Protocol.Hints = false
	cfg.CollectTable3 = true
	res := Run(prog, cfg)
	m := res.Table3
	if m == nil || m.Pairs == 0 {
		t.Fatal("no consecutive-miss pairs recorded")
	}
	// The paper's headline: the overwhelming majority of consecutive misses
	// repeat their unloaded latency (93% in Table 3).
	if f := m.SameLatencyFraction(); f < 0.75 {
		t.Errorf("same-latency fraction %.3f, want high (paper: 0.93)", f)
	}
	// The rendered table must have 6 rows and parse without panicking.
	tab := m.Table()
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 3 rows = %d, want 6", len(tab.Rows))
	}
}

func TestCostSensitivePolicyChangesOutcome(t *testing.T) {
	prog := smallProgram()
	cfg := DefaultConfig(lruFactory)
	lru := Run(prog, cfg)
	dcl := Run(prog, cfg.withPolicy(func() replacement.Policy { return replacement.NewDCL() }))
	if dcl.Policy != "DCL" {
		t.Fatalf("policy = %q", dcl.Policy)
	}
	if dcl.ExecNs == lru.ExecNs && dcl.AggMissNs == lru.AggMissNs {
		t.Fatal("DCL run identical to LRU; policy not plugged in")
	}
}

func TestTable5SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	progs := []*workload.Program{smallProgram()}
	dclOnly := []replacement.Factory{func() replacement.Policy { return replacement.NewDCL() }}
	rows := Table5(progs, 500, dclOnly)
	if len(rows) != 1 || rows[0].Bench != "Barnes" {
		t.Fatalf("rows = %+v", rows)
	}
	if _, ok := rows[0].ReductionPct["DCL"]; !ok {
		t.Fatal("missing DCL column")
	}
	if rows[0].LRUNs <= 0 {
		t.Fatal("LRU baseline missing")
	}
}

func TestTable5PoliciesColumns(t *testing.T) {
	ps := Table5Policies()
	if len(ps) != 6 {
		t.Fatalf("want 6 policy columns, got %d", len(ps))
	}
	names := []string{"GD", "BCL", "DCL", "ACL", "DCL-a4", "ACL-a4"}
	for i, f := range ps {
		if got := f().Name(); got != names[i] {
			t.Errorf("column %d = %q, want %q", i, got, names[i])
		}
	}
}

func TestFirstTouchHomesDeterministicAndComplete(t *testing.T) {
	prog := smallProgram()
	a := firstTouchHomes(prog, 64)
	b := firstTouchHomes(prog, 64)
	if len(a) == 0 {
		t.Fatal("no homes assigned")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatal("home assignment nondeterministic")
		}
	}
	for _, ph := range prog.Phases {
		for _, refs := range ph {
			for _, r := range refs {
				if _, ok := a[r.Addr/64]; !ok {
					t.Fatalf("block %#x unhomed", r.Addr/64)
				}
			}
		}
	}
}

func TestBadClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig(lruFactory)
	cfg.ClockMHz = 0
	Run(smallProgram(), cfg)
}

func TestDefaultConfigHonorsPolicy(t *testing.T) {
	cfg := DefaultConfig(func() replacement.Policy { return replacement.NewDCL() })
	if got := cfg.Policy().Name(); got != "DCL" {
		t.Fatalf("DefaultConfig dropped the policy: got %q", got)
	}
	if DefaultConfig(nil).Policy().Name() != "LRU" {
		t.Fatal("nil policy must default to LRU")
	}
}

func TestPenaltyCostMetric(t *testing.T) {
	prog := smallProgram()
	lat := DefaultConfig(func() replacement.Policy { return replacement.NewDCL() })
	pen := lat
	pen.UsePenalty = true
	a := Run(prog, lat)
	b := Run(prog, pen)
	if a.ExecNs == b.ExecNs && a.AggMissNs == b.AggMissNs {
		t.Fatal("penalty metric produced identical behaviour; switch not wired")
	}
	// Both metrics must still beat or match plain LRU within noise.
	base := Run(prog, DefaultConfig(nil))
	for _, r := range []Result{a, b} {
		if float64(r.ExecNs) > 1.05*float64(base.ExecNs) {
			t.Errorf("%s run 5%% worse than LRU: %d vs %d", r.Policy, r.ExecNs, base.ExecNs)
		}
	}
}

func TestPerNodeStats(t *testing.T) {
	res := Run(smallProgram(), DefaultConfig(nil))
	if len(res.PerNode) != 8 {
		t.Fatalf("PerNode entries = %d, want 8", len(res.PerNode))
	}
	var sum int64
	for i, ns := range res.PerNode {
		if ns.Misses == 0 || ns.Hits == 0 {
			t.Errorf("node %d idle: %+v", i, ns)
		}
		sum += ns.Misses
	}
	if sum != res.L2Misses {
		t.Fatalf("per-node misses %d != total %d", sum, res.L2Misses)
	}
}

func TestMSHRSensitivity(t *testing.T) {
	prog := smallProgram()
	wide := DefaultConfig(nil)
	narrow := DefaultConfig(nil)
	narrow.Core.MSHRs = 1
	a := Run(prog, wide)
	b := Run(prog, narrow)
	// One MSHR serializes misses: execution must slow down measurably.
	if float64(b.ExecNs) < 1.1*float64(a.ExecNs) {
		t.Fatalf("1 MSHR (%d ns) not slower than 8 MSHRs (%d ns)", b.ExecNs, a.ExecNs)
	}
}

func TestNetworkSensitivity(t *testing.T) {
	prog := smallProgram()
	fast := DefaultConfig(nil)
	slow := DefaultConfig(nil)
	slow.Net.FlitDelay *= 8
	a := Run(prog, fast)
	b := Run(prog, slow)
	if b.ExecNs <= a.ExecNs {
		t.Fatalf("8x flit delay (%d ns) not slower than baseline (%d ns)", b.ExecNs, a.ExecNs)
	}
	if b.AvgMissNs <= a.AvgMissNs {
		t.Fatal("slower links must raise the average miss latency")
	}
}

func TestWindowSensitivity(t *testing.T) {
	prog := smallProgram()
	wide := DefaultConfig(nil)
	narrow := DefaultConfig(nil)
	narrow.Core.ActiveList = 8
	a := Run(prog, wide)
	b := Run(prog, narrow)
	// A tiny window exposes miss latency: slower execution.
	if b.ExecNs <= a.ExecNs {
		t.Fatalf("8-entry window (%d ns) not slower than 64 (%d ns)", b.ExecNs, a.ExecNs)
	}
}
