package fault

import "fmt"

// Diagnostic is the state dump a stalled watchdog reports.
type Diagnostic struct {
	// SimNs is the simulated time the run froze at; Events the progress
	// counter's final value; StuckTicks how many consecutive ticks saw
	// neither advance.
	SimNs      int64
	Events     int64
	StuckTicks int64
	// Detail is the run's own dump (reference counts, injector statistics),
	// when a Dump hook was installed.
	Detail string
}

// Error implements error.
func (d Diagnostic) Error() string {
	s := fmt.Sprintf("fault: watchdog: no progress for %d ticks at sim time %d ns (%d events)",
		d.StuckTicks, d.SimNs, d.Events)
	if d.Detail != "" {
		s += "\n" + d.Detail
	}
	return s
}

// Watchdog detects livelock: a run that stops advancing either simulated
// time or its event counter. Progress points call Event (a completed unit of
// work) and Tick (with the current simulated time); when Limit consecutive
// ticks observe neither a later time nor a larger event count, the watchdog
// calls OnStall with a Diagnostic (default: panic), failing the run instead
// of spinning forever.
//
// The watchdog is deterministic — it watches simulated, not wall-clock,
// time — so it never perturbs results and fires identically on every run.
// A nil *Watchdog is inert: every method is a no-op.
type Watchdog struct {
	// Limit is the stuck-tick threshold (default 1<<20). Legitimate ticks at
	// an unchanged simulated time (two references issued in the same cycle)
	// are common, so the limit must be far above any real burst.
	Limit int64
	// OnStall handles the stall (default: panic with the Diagnostic).
	OnStall func(Diagnostic)
	// Dump, when set, contributes the run's own state to the Diagnostic.
	Dump func() string

	events  int64
	lastT   int64
	lastEv  int64
	stuck   int64
	started bool
	fired   bool
}

// Event records one unit of completed work (a retired reference, a finished
// transaction). Advancing the event count counts as progress even when
// simulated time stands still.
func (w *Watchdog) Event() {
	if w == nil {
		return
	}
	w.events++
}

// Tick checks progress at simulated time simNs. If neither time nor the
// event count advanced for Limit consecutive ticks, the watchdog fires.
func (w *Watchdog) Tick(simNs int64) {
	if w == nil {
		return
	}
	if !w.started || simNs > w.lastT || w.events > w.lastEv {
		w.started = true
		w.lastT, w.lastEv, w.stuck = simNs, w.events, 0
		return
	}
	w.stuck++
	limit := w.Limit
	if limit <= 0 {
		limit = 1 << 20
	}
	if w.stuck >= limit && !w.fired {
		w.fired = true
		d := Diagnostic{SimNs: simNs, Events: w.events, StuckTicks: w.stuck}
		if w.Dump != nil {
			d.Detail = w.Dump()
		}
		if w.OnStall != nil {
			w.OnStall(d)
			return
		}
		panic(d)
	}
}
