package mesh

import "testing"

func TestHops(t *testing.T) {
	m := New(Default())
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 15, 6}, {5, 10, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRouteLengthMatchesHops(t *testing.T) {
	m := New(Default())
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if got := len(m.route(a, b)); got != m.Hops(a, b) {
				t.Fatalf("route(%d,%d) has %d links, hops %d", a, b, got, m.Hops(a, b))
			}
		}
	}
}

func TestUnloadedLatency(t *testing.T) {
	m := New(Default())
	if got := m.Unloaded(3, 3, DataFlits); got != 13 {
		t.Fatalf("local = %d, want NIBase 13", got)
	}
	// 1 hop, data: 102 + 1*(8+9*6) = 164.
	if got := m.Unloaded(0, 1, DataFlits); got != 164 {
		t.Fatalf("1-hop data = %d, want 164", got)
	}
	// 1 hop, ctrl: 102 + (8+12) = 122.
	if got := m.Unloaded(0, 1, CtrlFlits); got != 122 {
		t.Fatalf("1-hop ctrl = %d, want 122", got)
	}
}

func TestSendMatchesUnloadedWhenIdle(t *testing.T) {
	m := New(Default())
	for _, pair := range [][2]int{{0, 5}, {2, 14}, {7, 7}} {
		m.Reset()
		want := m.Unloaded(pair[0], pair[1], DataFlits)
		if got := m.Send(pair[0], pair[1], DataFlits, 1000) - 1000; got != want {
			t.Errorf("Send(%v) idle latency %d, want %d", pair, got, want)
		}
	}
}

func TestContentionQueues(t *testing.T) {
	m := New(Default())
	a := m.Send(0, 3, DataFlits, 0)
	b := m.Send(0, 3, DataFlits, 0) // same route, same instant: must queue
	if b <= a {
		t.Fatalf("second message arrived at %d, first at %d: no queueing", b, a)
	}
	_, _, queued := m.Stats()
	if queued == 0 {
		t.Fatal("queueing delay not recorded")
	}
	// Disjoint routes don't interact.
	m.Reset()
	a = m.Send(0, 1, CtrlFlits, 0)
	c := m.Send(14, 15, CtrlFlits, 0)
	if c != a+14-0-14+c { // trivial identity; real check below
		_ = c
	}
	if c-0 != m.Unloaded(14, 15, CtrlFlits) {
		t.Fatal("disjoint routes must not queue")
	}
}

func TestDeterministicOrderIndependentOfReset(t *testing.T) {
	run := func() int64 {
		m := New(Default())
		var last int64
		for i := 0; i < 100; i++ {
			last = m.Send(i%16, (i*7)%16, DataFlits, int64(i*10))
		}
		return last
	}
	if run() != run() {
		t.Fatal("mesh must be deterministic")
	}
}

func TestBadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Params{Dim: 0})
}

func TestRouteValidity(t *testing.T) {
	m := New(Default())
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			links := m.route(a, b)
			seen := map[int]bool{}
			for _, l := range links {
				if seen[l] {
					t.Fatalf("route %d->%d reuses link %d", a, b, l)
				}
				seen[l] = true
				if l < 0 || l >= 16*numDirs {
					t.Fatalf("route %d->%d has out-of-range link %d", a, b, l)
				}
			}
		}
	}
}

func TestSendMonotoneInTime(t *testing.T) {
	m := New(Default())
	var last int64
	for i := 0; i < 500; i++ {
		now := int64(i * 7)
		arr := m.Send(i%16, (i*5)%16, DataFlits, now)
		if arr < now {
			t.Fatalf("arrival %d before departure %d", arr, now)
		}
		_ = last
		last = arr
	}
}
