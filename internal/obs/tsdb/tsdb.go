// Package tsdb is the live half of the observability substrate: a
// fixed-memory, multi-resolution ring-buffer time-series store over an
// obs.Registry. A Store periodically samples every registered instrument,
// turning cumulative counters into per-bucket deltas (and histograms into
// per-bucket count deltas) across a set of resolutions — e.g. 1s×120 and
// 10s×360 — so windowed rates, ratios (hit-rate, cost-paid per access,
// lock-wait share), per-shard skew and windowed latency quantiles can be
// read while traffic is flowing instead of reconstructed after the run.
//
// The steady-state sampling path allocates nothing: rings are fixed at
// construction, instruments are discovered once (allocating only when a new
// series first appears), and each Sample is a pass of atomic loads into
// pre-allocated slots. Sampling takes an explicit timestamp, so tests and
// deterministic harnesses (cachebench -ts.everyops) drive a simulated clock
// while live runs attach a wall-clock ticker via Start.
//
// Queries (Value, Points) aggregate label variants of a base metric name —
// engine_hits{shard="3"} rolls up into engine_hits — and are evaluated over
// trailing windows of *completed* buckets only, so partially filled buckets
// never dilute a rate. The alert rule engine (internal/obs/alert) and the
// /debug/timeseries endpoint are both thin layers over these queries.
package tsdb

import (
	"fmt"
	"sync"
	"time"

	"costcache/internal/obs"
)

// Resolution is one ring: Slots buckets of Step each.
type Resolution struct {
	Step  time.Duration
	Slots int
}

// Resolutions returns the standard two-ring layout over a base step: a fine
// ring (step × 120) for dashboards and fast alert windows, and a coarse ring
// (10·step × 360, an hour at the default 1s step) for slow burn windows.
func Resolutions(step time.Duration) []Resolution {
	return []Resolution{{Step: step, Slots: 120}, {Step: 10 * step, Slots: 360}}
}

// Config describes a Store.
type Config struct {
	// Registry is the instrument source. Required.
	Registry *obs.Registry
	// Resolutions are the ring layouts, finest first. Empty means
	// Resolutions(time.Second).
	Resolutions []Resolution
}

// Store is a fixed-memory multi-resolution time-series store. All methods
// are safe for concurrent use.
type Store struct {
	mu  sync.Mutex
	reg *obs.Registry
	res []Resolution

	// cur[i] is resolution i's current (in-progress) absolute bucket index
	// (time / step); oldest[i] the oldest bucket still in the ring. -1
	// before the first sample.
	cur, oldest []int64

	counters map[string]*counterSeries
	hists    map[string]*histSeries
	clist    []*counterSeries
	hlist    []*histSeries

	samples  int64
	lastNano int64

	// Pre-bound visitor closures so Sample never allocates them.
	onCounter func(string, *obs.Counter)
	onGauge   func(string, *obs.Gauge)
	onHist    func(string, *obs.Histogram)

	// Scratch reused by quantile, skew and spread queries under mu.
	qscratch  []int64
	skew      map[string]float64
	spreadNum map[string]float64
	spreadDen map[string]float64
}

// counterSeries tracks one counter as per-bucket deltas, or one gauge as
// its instantaneous value written into each bucket it was sampled in.
type counterSeries struct {
	name  string
	base  string // name with the label block stripped
	label string // the {k="v"} block, "" when unlabeled
	src   *obs.Counter
	gauge *obs.Gauge // non-nil for gauge-backed series (instantaneous)
	prev  int64
	rings [][]int64 // one ring of per-bucket deltas per resolution
}

// histSeries tracks one histogram: per-bucket count deltas (for windowed
// quantiles) plus count and sum deltas.
type histSeries struct {
	name               string
	base               string
	bounds             []int64
	src                *obs.Histogram
	prev               []int64 // previous per-bucket cumulative counts
	tmp                []int64 // ReadInto target
	prevCount, prevSum int64
	// rings[r] holds len(bounds)+3 rings: one per histogram bucket, then
	// count, then sum.
	rings [][][]int64
}

// New builds a Store over cfg.Registry. It panics on a nil registry or an
// invalid resolution (programming errors).
func New(cfg Config) *Store {
	if cfg.Registry == nil {
		panic("tsdb: Config.Registry is required")
	}
	if len(cfg.Resolutions) == 0 {
		cfg.Resolutions = Resolutions(time.Second)
	}
	for _, r := range cfg.Resolutions {
		if r.Step <= 0 || r.Slots < 2 {
			panic(fmt.Sprintf("tsdb: invalid resolution %v×%d", r.Step, r.Slots))
		}
	}
	s := &Store{
		reg:       cfg.Registry,
		res:       cfg.Resolutions,
		cur:       make([]int64, len(cfg.Resolutions)),
		oldest:    make([]int64, len(cfg.Resolutions)),
		counters:  make(map[string]*counterSeries),
		hists:     make(map[string]*histSeries),
		skew:      make(map[string]float64),
		spreadNum: make(map[string]float64),
		spreadDen: make(map[string]float64),
	}
	for i := range s.cur {
		s.cur[i], s.oldest[i] = -1, -1
	}
	s.onCounter = func(name string, c *obs.Counter) {
		if _, ok := s.counters[name]; !ok {
			s.addCounter(name, c, nil)
		}
	}
	s.onGauge = func(name string, g *obs.Gauge) {
		if _, ok := s.counters[name]; !ok {
			s.addCounter(name, nil, g)
		}
	}
	s.onHist = func(name string, h *obs.Histogram) {
		if _, ok := s.hists[name]; !ok {
			s.addHist(name, h)
		}
	}
	return s
}

// addCounter registers a new counter- or gauge-backed series (mu held). The
// first sample after discovery contributes nothing: history from before
// discovery cannot be attributed to a window, so prev starts at the current
// value and deltas accrue from the next sample on.
func (s *Store) addCounter(name string, c *obs.Counter, g *obs.Gauge) {
	cs := &counterSeries{name: name, src: c, gauge: g, rings: make([][]int64, len(s.res))}
	cs.base, cs.label = splitName(name)
	for i, r := range s.res {
		cs.rings[i] = make([]int64, r.Slots)
	}
	if c != nil {
		cs.prev = c.Value()
	}
	s.counters[name] = cs
	s.clist = append(s.clist, cs)
}

// addHist registers a new histogram series (mu held).
func (s *Store) addHist(name string, h *obs.Histogram) {
	hs := &histSeries{name: name, src: h, bounds: h.Bounds()}
	hs.base, _ = splitName(name)
	n := len(hs.bounds) + 1
	hs.prev = make([]int64, n)
	hs.tmp = make([]int64, n)
	hs.prevCount, hs.prevSum = h.ReadInto(hs.prev)
	hs.rings = make([][][]int64, len(s.res))
	for i, r := range s.res {
		hs.rings[i] = make([][]int64, n+2)
		for j := range hs.rings[i] {
			hs.rings[i][j] = make([]int64, r.Slots)
		}
	}
	if n > len(s.qscratch) {
		s.qscratch = make([]int64, n)
	}
	s.hists[name] = hs
	s.hlist = append(s.hlist, hs)
}

// splitName separates `base{labels}` into base and the label block.
func splitName(n string) (base, label string) {
	for i := 0; i < len(n); i++ {
		if n[i] == '{' {
			return n[:i], n[i:]
		}
	}
	return n, ""
}

// Sample snapshots every registry instrument into the bucket ending at (or
// just after) now. Buckets are end-inclusive — bucket b covers the interval
// (b·step, (b+1)·step] — so a sample taken exactly at a bucket boundary
// closes that bucket, and the deltas it observed become queryable
// immediately (the property the deterministic op-indexed harness relies
// on). Call Sample at least once per finest-resolution step; the deltas of
// a sparser schedule are attributed wholly to the bucket sampled into.
// After series discovery has settled, Sample allocates nothing.
func (s *Store) Sample(now time.Time) {
	nano := now.UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()

	// Advance each resolution's current bucket, zeroing the slots the new
	// buckets reuse (capped at one full ring for long idle gaps).
	for ri, r := range s.res {
		// End-inclusive bucket index: ceil(nano/step) - 1, clamped so the
		// epoch sample itself lands in bucket 0.
		b := (nano+int64(r.Step)-1)/int64(r.Step) - 1
		if b < 0 {
			b = 0
		}
		switch {
		case s.cur[ri] < 0:
			s.cur[ri], s.oldest[ri] = b, b
		case b > s.cur[ri]:
			from := s.cur[ri] + 1
			if b-from >= int64(r.Slots) {
				from = b - int64(r.Slots) + 1
			}
			for bk := from; bk <= b; bk++ {
				slot := int(bk % int64(r.Slots))
				for _, cs := range s.clist {
					cs.rings[ri][slot] = 0
				}
				for _, hs := range s.hlist {
					for j := range hs.rings[ri] {
						hs.rings[ri][j][slot] = 0
					}
				}
			}
			s.cur[ri] = b
			if min := b - int64(r.Slots) + 1; s.oldest[ri] < min {
				s.oldest[ri] = min
			}
		}
	}

	// Discover instruments registered since the last sample (allocates only
	// for genuinely new series).
	s.reg.VisitCounters(s.onCounter)
	s.reg.VisitGauges(s.onGauge)
	s.reg.VisitHistograms(s.onHist)

	// Accumulate deltas into the current bucket of every resolution.
	for _, cs := range s.clist {
		if cs.gauge != nil {
			// Gauges are instantaneous: the bucket holds the last sampled
			// value, not a delta.
			v := cs.gauge.Value()
			for ri := range s.res {
				cs.rings[ri][int(s.cur[ri]%int64(s.res[ri].Slots))] = v
			}
			continue
		}
		v := cs.src.Value()
		d := v - cs.prev
		cs.prev = v
		if d == 0 {
			continue
		}
		for ri := range s.res {
			cs.rings[ri][int(s.cur[ri]%int64(s.res[ri].Slots))] += d
		}
	}
	for _, hs := range s.hlist {
		count, sum := hs.src.ReadInto(hs.tmp)
		dc, ds := count-hs.prevCount, sum-hs.prevSum
		hs.prevCount, hs.prevSum = count, sum
		nb := len(hs.bounds) + 1
		for ri := range s.res {
			slot := int(s.cur[ri] % int64(s.res[ri].Slots))
			if dc != 0 || ds != 0 {
				hs.rings[ri][nb][slot] += dc
				hs.rings[ri][nb+1][slot] += ds
			}
			for j := 0; j < nb; j++ {
				if d := hs.tmp[j] - hs.prev[j]; d != 0 {
					hs.rings[ri][j][slot] += d
				}
			}
		}
		copy(hs.prev, hs.tmp)
	}
	s.samples++
	s.lastNano = nano
}

// Start begins wall-clock sampling at the finest resolution's step on a
// background goroutine and returns a stop function (idempotent). One final
// sample is taken on stop so the last partial bucket is flushed.
func (s *Store) Start() (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(s.res[0].Step)
		defer t.Stop()
		for {
			select {
			case <-done:
				s.Sample(time.Now())
				return
			case now := <-t.C:
				s.Sample(now)
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Samples returns the number of Sample calls taken.
func (s *Store) Samples() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}

// LastTime returns the time of the most recent sample (zero before the
// first).
func (s *Store) LastTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.samples == 0 {
		return time.Time{}
	}
	return time.Unix(0, s.lastNano)
}

// NumResolutions returns how many rings the store keeps.
func (s *Store) NumResolutions() int { return len(s.res) }

// ResolutionAt describes ring ri.
func (s *Store) ResolutionAt(ri int) Resolution { return s.res[ri] }
