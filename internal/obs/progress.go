package obs

import (
	"fmt"
	"io"
	"time"
)

// Progress reports phased command progress (references processed, events per
// second) through the metrics core: each phase owns a counter named
// progress_<phase>_items in the registry, and a human-readable line is
// printed to w when a phase ends (plus rate-limited lines mid-phase for
// incremental work). cmd/tracegen and cmd/oracle use it so long runs are no
// longer silent.
type Progress struct {
	w     io.Writer // nil silences printing; counters still update
	reg   *Registry
	unit  string
	phase string
	items *Counter
	start time.Time
	last  time.Time
}

// NewProgress returns a reporter writing to w (nil for metrics-only) and
// registering counters in reg (nil for Default). unit names the counted
// items ("refs", "events").
func NewProgress(w io.Writer, reg *Registry, unit string) *Progress {
	if reg == nil {
		reg = Default
	}
	return &Progress{w: w, reg: reg, unit: unit}
}

// Phase finishes any current phase (printing its summary line) and starts a
// new one.
func (p *Progress) Phase(name string) {
	p.finish()
	p.phase = name
	p.items = p.reg.Counter("progress_" + name + "_items")
	p.start = time.Now()
	p.last = p.start
}

// Add records n processed items in the current phase and prints a
// rate-limited progress line (at most ~5/sec).
func (p *Progress) Add(n int64) {
	if p.items == nil {
		return
	}
	p.items.Add(n)
	if p.w == nil {
		return
	}
	if now := time.Now(); now.Sub(p.last) >= 200*time.Millisecond {
		p.last = now
		p.line(now)
	}
}

// Done finishes the current phase.
func (p *Progress) Done() { p.finish(); p.phase, p.items = "", nil }

func (p *Progress) finish() {
	if p.items == nil || p.w == nil {
		return
	}
	p.line(time.Now())
}

func (p *Progress) line(now time.Time) {
	n := p.items.Value()
	el := now.Sub(p.start).Seconds()
	rate := float64(n)
	if el > 0 {
		rate = float64(n) / el
	}
	fmt.Fprintf(p.w, "%s: %d %s (%.0f %s/sec)\n", p.phase, n, p.unit, rate, p.unit)
}
