package trace

import (
	"bytes"
	"testing"
)

// Fuzz targets for the codecs: decoding arbitrary bytes must never panic,
// and whatever decodes must re-encode to something that decodes to the same
// references.

func FuzzReadBinary(f *testing.F) {
	tr := mkTrace(50, 4, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("CSTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Refs) != len(got.Refs) {
			t.Fatalf("ref count changed: %d -> %d", len(got.Refs), len(again.Refs))
		}
		for i := range got.Refs {
			if got.Refs[i] != again.Refs[i] {
				t.Fatalf("ref %d changed", i)
			}
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add("# costcache trace procs=2 name=x\n0 R 0x40\n1 W 0x80\n")
	f.Add("0 R 0x0\n")
	f.Add("")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, s string) {
		got, err := ReadText(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadText(&out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
