package reqspan

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"costcache/internal/obs/span"
)

// drive pushes n requests through the tracer, finishing every sampled span
// with two marked stages, and returns the sampled count.
func drive(t *Tracer, n int) int {
	sampled := 0
	for i := 0; i < n; i++ {
		sp := t.Begin(OpGet, i%4, uint64(i))
		if sp != nil {
			sampled++
			sp.Mark(StageLockWait)
			sp.Mark(StageDecision)
			t.Finish(sp, OutcomeHit)
		}
	}
	return sampled
}

// TestStrideSamplingExact pins the deterministic stride: at rate 1 every
// request is sampled; at rate 1/k exactly floor(n/k) are. This exactness is
// what lets cachebench reconcile span counts against engine counters
// fatally rather than within a tolerance.
func TestStrideSamplingExact(t *testing.T) {
	tr := New(Config{AttrRate: 1}, nil, nil)
	if got := drive(tr, 100); got != 100 {
		t.Fatalf("rate 1: sampled %d of 100", got)
	}
	if tr.Requests() != 100 || tr.Attribution().Spans != 100 {
		t.Fatalf("requests %d spans %d, want 100/100", tr.Requests(), tr.Attribution().Spans)
	}

	tr = New(Config{AttrRate: 0.25}, nil, nil)
	if got := drive(tr, 103); got != 103/4 {
		t.Fatalf("rate 0.25: sampled %d of 103, want %d", got, 103/4)
	}
	if tr.AttrEvery() != 4 {
		t.Fatalf("AttrEvery = %d, want 4", tr.AttrEvery())
	}

	// Disabled and nil tracers sample nothing and never allocate.
	if New(Config{}, nil, nil).Begin(OpGet, 0, 1) != nil {
		t.Fatal("disabled tracer returned a span")
	}
	var nilT *Tracer
	if nilT.Begin(OpGet, 0, 1) != nil {
		t.Fatal("nil tracer returned a span")
	}
	nilT.Finish(nil, OutcomeHit) // must not panic
	if nilT.AttrEvery() != 0 || nilT.LastID() != 0 || nilT.Err() != nil {
		t.Fatal("nil tracer accessors not zero")
	}
	if a := nilT.Attribution(); a.Spans != 0 {
		t.Fatal("nil tracer attribution not empty")
	}
}

// TestSpanCostFlowsToAttribution pins the cost channel report -explain
// reconciles against engine_cost_paid: at stride 1 every AddCost charge lands
// in Attribution().CostPaid exactly, a nil span swallows the charge, and an
// uncharged span contributes zero.
func TestSpanCostFlowsToAttribution(t *testing.T) {
	tr := New(Config{AttrRate: 1}, nil, nil)
	var want int64
	for i := 0; i < 50; i++ {
		sp := tr.Begin(OpGetOrLoad, 0, uint64(i))
		if i%2 == 0 { // "misses": charge a fill cost
			c := int64(1 + i%7)
			sp.AddCost(c)
			want += c
			tr.Finish(sp, OutcomeMiss)
		} else { // "hits": no charge
			tr.Finish(sp, OutcomeHit)
		}
	}
	if got := tr.Attribution().CostPaid; got != want {
		t.Fatalf("CostPaid = %d, want %d (exact sum of AddCost charges)", got, want)
	}
	var nilSpan *Span
	nilSpan.AddCost(99) // must not panic
	if got := tr.Attribution().CostPaid; got != want {
		t.Fatalf("nil-span AddCost leaked into CostPaid: %d, want %d", got, want)
	}
}

// TestKeyCapBoundsSketch pins the -keys.sketch knob: a custom Config.KeyCap
// bounds the space-saving table at that capacity instead of the default.
func TestKeyCapBoundsSketch(t *testing.T) {
	const cap = 8
	tr := New(Config{AttrRate: 1, KeyCap: cap}, nil, nil)
	for i := 0; i < 40*cap; i++ {
		sp := tr.Begin(OpGet, 0, uint64(i)) // all-distinct keys: worst case
		tr.Finish(sp, OutcomeMiss)
	}
	s := tr.Keyspace(4 * cap)
	if s.Tracked > cap || len(s.Top) > cap {
		t.Fatalf("tracked %d keys, top %d rows — KeyCap %d not enforced",
			s.Tracked, len(s.Top), cap)
	}
	if s.SampledKeys != 40*cap {
		t.Fatalf("sketch saw %d samples, want %d", s.SampledKeys, 40*cap)
	}
}

// TestAttributionTiles pins the accounting invariant: contiguous Mark
// segments plus the unattributed tail sum to the end-to-end total exactly,
// for every span, at any rate — the identity the -attr reconciliation
// smoke asserts within 1% (slack only for in-flight spans, none here).
func TestAttributionTiles(t *testing.T) {
	tr := New(Config{AttrRate: 1}, nil, nil)
	for i := 0; i < 500; i++ {
		sp := tr.Begin(OpGetOrLoad, 0, uint64(i))
		sp.Mark(StageLockWait)
		sp.Mark(StageDecision)
		if i%3 == 0 {
			sp.Mark(StageLoad)
			sp.Mark(StageLockWait)
			sp.Mark(StageFill)
			sp.Mark(StageShadow)
			tr.Finish(sp, OutcomeMiss)
		} else {
			sp.Mark(StageShadow)
			tr.Finish(sp, OutcomeHit)
		}
	}
	a := tr.Attribution()
	if a.Spans != 500 {
		t.Fatalf("spans = %d, want 500", a.Spans)
	}
	if got := a.StageSumNs() + a.OtherNs; got != a.TotalNs {
		t.Fatalf("stage sum %d + other %d = %d, want total %d (tiling broken)",
			a.StageSumNs(), a.OtherNs, got, a.TotalNs)
	}
	if a.Latency.Count != 500 {
		t.Fatalf("latency count = %d, want 500", a.Latency.Count)
	}
	if a.Outcomes[OutcomeMiss] == 0 || a.Outcomes[OutcomeHit] == 0 {
		t.Fatalf("outcomes = %v, want both hits and misses", a.Outcomes)
	}
	// The leader path marks lock_wait twice: segment count exceeds span count.
	if lw := a.Stages[StageLockWait]; lw.Count != 500+167 {
		t.Fatalf("lock_wait segments = %d, want 667 (500 spans + 167 second acquisitions)", lw.Count)
	}
	var table strings.Builder
	if err := a.WriteTable(&table, "test"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lock_wait", "decision", "other", "total", "p99", "100.00%"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, table.String())
		}
	}
}

// TestEmitJSONLAndChrome pins the emitted-span schema on both sinks: JSONL
// lines carry the "kind":"req" discriminator with stage segments; the
// Chrome sink yields one valid JSON array whose slices sit on engine-shard
// pids (1000+shard) under cat "req".
func TestEmitJSONLAndChrome(t *testing.T) {
	var jb, cb bytes.Buffer
	jsonl, chrome := span.NewLineSink(&jb), span.NewChromeSink(&cb)
	tr := New(Config{AttrRate: 1, EmitRate: 1}, jsonl, chrome)

	sp := tr.Begin(OpGetOrLoad, 3, 42)
	sp.Mark(StageLockWait)
	sp.Mark(StageDecision)
	sp.Mark(StageLoad)
	tr.Finish(sp, OutcomeMiss)
	sp = tr.Begin(OpGet, 3, 43)
	sp.Mark(StageLockWait)
	tr.Finish(sp, OutcomeHit)
	if tr.LastID() != 2 {
		t.Fatalf("LastID = %d, want 2", tr.LastID())
	}
	if err := chrome.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(jb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d, want 2:\n%s", len(lines), jb.String())
	}
	var rec struct {
		ID      uint64 `json:"id"`
		Kind    string `json:"kind"`
		Shard   int    `json:"shard"`
		Key     uint64 `json:"key"`
		Op      string `json:"op"`
		Outcome string `json:"outcome"`
		Start   int64  `json:"start"`
		End     int64  `json:"end"`
		Stages  []struct {
			Stage      string `json:"stage"`
			Start, End int64
		} `json:"stages"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("jsonl line not valid JSON: %v\n%s", err, lines[0])
	}
	if rec.Kind != "req" || rec.Shard != 3 || rec.Key != 42 || rec.Op != "getorload" ||
		rec.Outcome != "miss" || len(rec.Stages) != 3 || rec.Stages[0].Stage != "lock_wait" {
		t.Fatalf("unexpected span record: %+v", rec)
	}
	if rec.End < rec.Start {
		t.Fatalf("span ends before it starts: %+v", rec)
	}

	var events []map[string]any
	if err := json.Unmarshal(cb.Bytes(), &events); err != nil {
		t.Fatalf("chrome output not a JSON array: %v\n%s", err, cb.String())
	}
	var reqSlices, metas int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			if ev["cat"] != "req" {
				t.Fatalf("slice with cat %v, want req: %v", ev["cat"], ev)
			}
			if pid := ev["pid"].(float64); pid != chromePidBase+3 {
				t.Fatalf("slice pid = %v, want %d", pid, chromePidBase+3)
			}
			reqSlices++
		case "M":
			metas++
		}
	}
	if reqSlices == 0 || metas == 0 {
		t.Fatalf("chrome trace has %d slices, %d metadata events", reqSlices, metas)
	}
}

// TestInterleavedSinkOrdering shares one LineSink and one ChromeSink
// between a simulator miss tracer and an engine request tracer and
// interleaves their spans — the combined-Perfetto-timeline configuration.
// Every JSONL line must stay intact (no interleaved partial writes), the
// two span kinds must be distinguishable, and the Chrome output must be one
// valid JSON array carrying both cat "miss" and cat "req" slices on
// disjoint pid ranges.
func TestInterleavedSinkOrdering(t *testing.T) {
	var jb, cb bytes.Buffer
	jsonl, chrome := span.NewLineSink(&jb), span.NewChromeSink(&cb)

	sim := span.NewTracerSinks(jsonl, chrome)
	eng := New(Config{AttrRate: 1, EmitRate: 1}, jsonl, chrome)

	for i := 0; i < 10; i++ {
		// One simulator miss span...
		ms := sim.Begin(i%4, uint64(1000+i), false, int64(i*100))
		ms.SegQ(span.StageLookup, int64(i*100), 0, int64(i*100+20))
		sim.Finish(ms, int64(i*100+80), 'U', true, false)
		// ...interleaved with one engine request span.
		rs := eng.Begin(OpGet, i%2, uint64(i))
		rs.Mark(StageLockWait)
		rs.Mark(StageDecision)
		eng.Finish(rs, OutcomeHit)
	}
	if err := sim.Close(); err != nil {
		t.Fatal(err)
	}
	if err := chrome.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}

	var miss, req int
	for _, line := range strings.Split(strings.TrimSpace(jb.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaving corrupted a JSONL line: %v\n%s", err, line)
		}
		if rec["kind"] == "req" {
			req++
		} else {
			miss++
		}
	}
	if miss != 10 || req != 10 {
		t.Fatalf("jsonl kinds: %d miss, %d req, want 10/10", miss, req)
	}

	var events []map[string]any
	if err := json.Unmarshal(cb.Bytes(), &events); err != nil {
		t.Fatalf("combined chrome trace invalid: %v", err)
	}
	cats := map[string]int{}
	for _, ev := range events {
		if ev["ph"] == "X" {
			cats[ev["cat"].(string)]++
			pid := int(ev["pid"].(float64))
			if ev["cat"] == "req" && pid < chromePidBase {
				t.Fatalf("req slice on simulator pid %d", pid)
			}
			if ev["cat"] == "miss" && pid >= chromePidBase {
				t.Fatalf("miss slice on engine pid %d", pid)
			}
		}
	}
	if cats["miss"] == 0 || cats["req"] == 0 {
		t.Fatalf("combined trace slice cats = %v, want both miss and req", cats)
	}
}

// TestEmitSubsetOfAttr: emitting is a subsampling of attribution — with
// AttrRate 1 and EmitRate 0.5, every request is measured but only every
// second span reaches the sinks.
func TestEmitSubsetOfAttr(t *testing.T) {
	var jb bytes.Buffer
	tr := New(Config{AttrRate: 1, EmitRate: 0.5}, span.NewLineSink(&jb), nil)
	drive(tr, 100)
	if a := tr.Attribution(); a.Spans != 100 {
		t.Fatalf("attributed %d spans, want 100", a.Spans)
	}
	if got := strings.Count(jb.String(), "\n"); got != 50 {
		t.Fatalf("emitted %d spans, want 50", got)
	}
	// EmitRate above AttrRate raises attribution to match rather than
	// emitting unmeasured spans.
	tr = New(Config{AttrRate: 0.1, EmitRate: 1}, nil, nil)
	if tr.AttrEvery() != 1 {
		t.Fatalf("AttrEvery = %d, want 1 (raised to EmitRate)", tr.AttrEvery())
	}
}

// TestKeyspaceSkew: a hot key dominating sampled traffic must surface with
// a top-share near its true frequency; a uniform stream must not.
func TestKeyspaceSkew(t *testing.T) {
	tr := New(Config{AttrRate: 1}, nil, nil)
	for i := 0; i < 1000; i++ {
		key := uint64(7) // 90% of traffic on one key
		if i%10 == 0 {
			key = uint64(100 + i)
		}
		sp := tr.Begin(OpGet, 0, key)
		tr.Finish(sp, OutcomeHit)
	}
	s := tr.Keyspace(1)
	if s.SampledKeys != 1000 || len(s.Top) != 1 || s.Top[0].Key != 7 {
		t.Fatalf("skew = %+v, want key 7 on top of 1000 samples", s)
	}
	if s.TopShare < 0.85 || s.TopShare > 0.95 {
		t.Fatalf("top share = %g, want ≈0.9", s.TopShare)
	}
	// More keys than tracked: the sketch stays bounded and Keyspace clamps n.
	for i := 0; i < 10*defaultKeyCap; i++ {
		sp := tr.Begin(OpGet, 0, uint64(100000+i))
		tr.Finish(sp, OutcomeMiss)
	}
	s = tr.Keyspace(2 * defaultKeyCap)
	if s.Tracked > defaultKeyCap || len(s.Top) > defaultKeyCap {
		t.Fatalf("sketch overflowed its cap: tracked %d", s.Tracked)
	}
}
