// Package cli holds the small pieces the commands share: graceful
// SIGINT/SIGTERM handling (first signal requests a stop at the next safe
// boundary so partial artifacts are flushed with "interrupted": true and the
// process exits 130; a second signal kills immediately), up-front flag
// validation with exit 2 and the list of valid values, and the fault-plan
// flag set (-fault.plan / -fault.scenario / -fault.seed) plus the manifest
// plumbing for fault counters.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"costcache/internal/fault"
	"costcache/internal/manifest"
)

// Exit codes: ExitUsage for invalid flags (the list of valid values is
// printed), ExitInterrupted for a run stopped by SIGINT/SIGTERM (128 + 2,
// the shell convention).
const (
	ExitUsage       = 2
	ExitInterrupted = 130
)

// Interrupt installs SIGINT/SIGTERM handling and returns a polling function
// that reports whether a stop was requested. The first signal cancels the
// context — long loops poll stopped() at safe boundaries, flush partial
// artifacts and exit with ExitInterrupted — and also restores default signal
// disposition, so a second ^C terminates the process immediately.
func Interrupt() (stopped func() bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop() // next signal uses the default handler: die now
	}()
	return func() bool { return ctx.Err() != nil }
}

// Drain is Interrupt for serving processes: it installs SIGINT/SIGTERM
// handling and returns a channel that closes when the first signal arrives,
// so a server main can select on it and begin a graceful drain (stop
// accepting, finish in-flight work, flush artifacts). As with Interrupt, the
// first signal restores default disposition — a second signal skips the drain
// and terminates the process immediately. A clean drain exits 0; a drain cut
// short (timeout, in-flight work abandoned) flushes its partial manifest with
// "interrupted": true and exits ExitInterrupted.
func Drain() <-chan struct{} {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	ch := make(chan struct{})
	go func() {
		<-ctx.Done()
		stop() // next signal uses the default handler: die now
		close(ch)
	}()
	return ch
}

// BadFlag reports an invalid flag value with its valid alternatives and
// exits with ExitUsage.
func BadFlag(prog, flagName, got string, valid []string) {
	fmt.Fprintf(os.Stderr, "%s: unknown %s %q (valid: %s)\n",
		prog, flagName, got, strings.Join(valid, ", "))
	os.Exit(ExitUsage)
}

// FaultFlags are the parsed fault-injection flags every simulator harness
// shares.
type FaultFlags struct {
	Plan     *string // -fault.plan: JSON plan file
	Scenario *string // -fault.scenario: named scenario
	Seed     *uint64 // -fault.seed: scenario generator seed
}

// Resolve loads the plan file or builds the named scenario for a dim x dim
// mesh. It returns nil when no fault flag was given, and exits with
// ExitUsage on an unknown scenario or a malformed plan.
func (f FaultFlags) Resolve(prog string, dim int) *fault.Plan {
	if *f.Plan != "" && *f.Scenario != "" {
		fmt.Fprintf(os.Stderr, "%s: -fault.plan and -fault.scenario are mutually exclusive\n", prog)
		os.Exit(ExitUsage)
	}
	switch {
	case *f.Plan != "":
		p, err := fault.ReadFile(*f.Plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
			os.Exit(ExitUsage)
		}
		return p
	case *f.Scenario != "":
		p, err := fault.Scenario(*f.Scenario, *f.Seed, dim)
		if err != nil {
			BadFlag(prog, "-fault.scenario", *f.Scenario, fault.ScenarioNames())
		}
		return p
	}
	return nil
}

// RecordFaults stamps a run manifest with the plan identity (name, seed,
// canonical hash) and the injection counters, the fields regression tooling
// diffs fault-for-fault.
func RecordFaults(m *manifest.Manifest, plan *fault.Plan, st fault.Stats) {
	if m == nil || plan == nil {
		return
	}
	m.SetConfig("fault_plan", plan.Name)
	m.SetConfig("fault_plan_hash", plan.Hash())
	m.SetConfig("fault_seed", plan.Seed)
	m.SetMetric("fault_nacks", float64(st.Nacks))
	m.SetMetric("fault_retries", float64(st.Retries))
	m.SetMetric("fault_backoff_ns", float64(st.BackoffNs))
	m.SetMetric("fault_slowed_hops", float64(st.SlowedHops))
	m.SetMetric("fault_slow_ns", float64(st.SlowNs))
	m.SetMetric("fault_dir_hot_ns", float64(st.DirHotNs))
	m.SetMetric("fault_bank_hot_ns", float64(st.BankHotNs))
	m.SetMetric("fault_degraded_misses", float64(st.DegradedMisses))
	m.SetMetric("fault_node_degraded_ns", float64(st.NodeDegNs))
	m.SetMetric("fault_events", float64(st.Events()))
}
