// Package obs is the decision-level observability substrate of the
// repository: a zero-allocation-on-hot-path metrics core (atomic counters,
// gauges and fixed-bucket histograms in labeled registries with
// snapshot/delta support), a replacement decision tracer that turns the
// policies' Observer events into a ring buffer and an optional JSONL stream,
// interval reporting over registry snapshots, and a plain-text /metrics +
// pprof HTTP exposition for long runs.
//
// The instruments are safe for concurrent use. Un-observed code paths pay
// only a nil check: every hook in the simulators and policies is gated on a
// nil Observer or nil Registry.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move in both directions.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v exceeds the current value (a high-water
// mark, e.g. the deepest queue backlog seen).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name composes a metric identifier from a base name and label key/value
// pairs: Name("miss_latency_ns", "node", "3") = `miss_latency_ns{node="3"}`.
// Labels are rendered in the order given; callers should use a consistent
// order so identical series get identical names.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: Name needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is a named collection of instruments. The get-or-create lookups
// take a mutex and are meant for setup; hot paths hold the returned pointer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the commands expose over -obs.listen.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use. Later calls ignore bounds (the first
// registration wins), so concurrent get-or-create is safe.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramExemplars is Histogram with exemplar retention: the histogram is
// created via NewHistogramExemplars on first use. As with Histogram, the
// first registration wins — a name already registered without exemplars
// keeps its exemplar-free instance.
func (r *Registry) HistogramExemplars(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogramExemplars(bounds)
		r.hists[name] = h
	}
	return h
}

// VisitCounters calls f for every registered counter, in no particular
// order, without allocating — the iteration the live-telemetry sampler uses
// to discover series. f runs under the registry mutex and must not call
// back into get-or-create methods of the same registry.
func (r *Registry) VisitCounters(f func(name string, c *Counter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		f(n, c)
	}
}

// VisitGauges is VisitCounters for gauges.
func (r *Registry) VisitGauges(f func(name string, g *Gauge)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, g := range r.gauges {
		f(n, g)
	}
}

// VisitHistograms is VisitCounters for histograms.
func (r *Registry) VisitHistograms(f func(name string, h *Histogram)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, h := range r.hists {
		f(n, h)
	}
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Delta returns the change from prev to s: counters and histograms subtract
// (instruments absent from prev count from zero), gauges keep their current
// value since they are not cumulative.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for n, v := range s.Counters {
		d.Counters[n] = v - prev.Counters[n]
	}
	for n, v := range s.Gauges {
		d.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		d.Histograms[n] = h.Sub(prev.Histograms[n])
	}
	return d
}

// WriteText renders the snapshot in the expvar-style plain-text exposition
// format served at /metrics: one sorted "name value" line per series, with
// histograms expanded into cumulative le-labeled buckets plus _count/_sum.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+8*len(s.Histograms))
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, h := range s.Histograms {
		base, labels := splitName(n)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			lines = append(lines, fmt.Sprintf("%s %d%s",
				histName(base, labels, fmt.Sprint(b)), cum, exemplarSuffix(h, i)))
		}
		cum += h.Counts[len(h.Bounds)]
		lines = append(lines, fmt.Sprintf("%s %d%s",
			histName(base, labels, "+Inf"), cum, exemplarSuffix(h, len(h.Bounds))))
		lines = append(lines, fmt.Sprintf("%s_count%s %d", base, labels, h.Count))
		lines = append(lines, fmt.Sprintf("%s_sum%s %d", base, labels, h.Sum))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteText snapshots the registry and renders it as text.
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// splitName separates `base{labels}` into "base" and "{labels}" ("" if none).
func splitName(n string) (base, labels string) {
	if i := strings.IndexByte(n, '{'); i >= 0 {
		return n[:i], n[i:]
	}
	return n, ""
}

// exemplarSuffix renders a bucket's exemplar as an OpenMetrics-style
// trailing comment (`# {span_id="7"}`), linking the bucket to the most
// recent sampled span observed into it; "" when the histogram carries no
// exemplars or the bucket never saw a sampled observation.
func exemplarSuffix(h HistogramSnapshot, i int) string {
	if i >= len(h.Exemplars) || h.Exemplars[i] == 0 {
		return ""
	}
	return fmt.Sprintf(" # {span_id=\"%d\"}", h.Exemplars[i])
}

// histName renders a bucket series name, merging the le label into any
// existing label set.
func histName(base, labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", base, le)
	}
	return fmt.Sprintf("%s_bucket{%s,le=%q}", base, labels[1:len(labels)-1], le)
}
