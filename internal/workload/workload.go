// Package workload generates synthetic multiprocessor reference traces
// modeled on the four SPLASH-2 benchmarks the paper evaluates (Table 1):
// Barnes, LU, Ocean and Raytrace. The real traces were gathered from
// execution-driven simulation of SPARC binaries; these generators are the
// documented substitution (see DESIGN.md): deterministic kernels that
// reproduce the trace-level properties the replacement study depends on —
// footprint, sharing and invalidation traffic, locality structure, and the
// remote-access fraction under first-touch placement.
//
// All generators are deterministic functions of their configuration,
// including the seed, so experiments are exactly reproducible.
package workload

import (
	"math/rand"

	"costcache/internal/trace"
)

// Generator produces a multiprocessor trace.
type Generator interface {
	// Name returns the benchmark name ("Barnes", "LU", ...).
	Name() string
	// Generate builds the trace. It is deterministic.
	Generate() *trace.Trace
}

// BlockBytes is the line size used throughout the paper (64-byte blocks).
const BlockBytes = 64

// builder assembles per-processor reference streams phase by phase and
// interleaves them into a single global order. Within a phase, processors'
// references are merged in randomized chunks (modelling asynchronous
// progress); phases are separated by barriers, so no reference of phase k+1
// precedes one of phase k — exactly the structure of the barrier-synchronized
// SPLASH-2 kernels.
type builder struct {
	procs  int
	rng    *rand.Rand
	phases [][][]trace.Ref // phase -> proc -> refs
	cur    [][]trace.Ref
}

func newBuilder(procs int, seed int64) *builder {
	b := &builder{procs: procs, rng: rand.New(rand.NewSource(seed))}
	b.cur = make([][]trace.Ref, procs)
	return b
}

// ref appends a reference to proc's stream in the current phase.
func (b *builder) ref(proc int, addr uint64, op trace.Op) {
	b.cur[proc] = append(b.cur[proc], trace.Ref{Addr: addr, Proc: int16(proc), Op: op})
}

func (b *builder) read(proc int, addr uint64)  { b.ref(proc, addr, trace.Read) }
func (b *builder) write(proc int, addr uint64) { b.ref(proc, addr, trace.Write) }

// barrier closes the current phase.
func (b *builder) barrier() {
	b.phases = append(b.phases, b.cur)
	b.cur = make([][]trace.Ref, b.procs)
}

// build interleaves all phases into the final trace.
func (b *builder) build(name string) *trace.Trace {
	b.barrier()
	t := &trace.Trace{NumProcs: b.procs, Name: name}
	total := 0
	for _, ph := range b.phases {
		for _, s := range ph {
			total += len(s)
		}
	}
	t.Refs = make([]trace.Ref, 0, total)
	for _, ph := range b.phases {
		pos := make([]int, b.procs)
		remaining := 0
		for _, s := range ph {
			remaining += len(s)
		}
		live := make([]int, 0, b.procs)
		for p, s := range ph {
			if len(s) > 0 {
				live = append(live, p)
			}
		}
		for remaining > 0 {
			// Pick a live processor and emit a chunk of its refs.
			pi := b.rng.Intn(len(live))
			p := live[pi]
			chunk := 16 + b.rng.Intn(96)
			s := ph[p]
			n := len(s) - pos[p]
			if chunk > n {
				chunk = n
			}
			t.Refs = append(t.Refs, s[pos[p]:pos[p]+chunk]...)
			pos[p] += chunk
			remaining -= chunk
			if pos[p] == len(s) {
				live[pi] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
	return t
}

// zipfPicker draws block indices with a Zipf-like popularity skew, used for
// the irregular shared structures (Barnes tree nodes, Raytrace scene).
type zipfPicker struct {
	z *rand.Zipf
}

func newZipf(rng *rand.Rand, s float64, n uint64) zipfPicker {
	return zipfPicker{z: rand.NewZipf(rng, s, 1, n-1)}
}

func (p zipfPicker) pick() uint64 { return p.z.Uint64() }

// Memory regions keep the synthetic data structures disjoint. Each region is
// 256 MB, far larger than any structure placed in it.
const (
	regionBodies = 0x1000_0000 << iota
	regionTree
	regionMatrix
	regionGridA
	regionGridB
	regionScene
	regionRays
	regionQueue
	regionPrivate
)
