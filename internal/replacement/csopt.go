package replacement

// This file implements CSOPT: the offline OPTIMAL aggregate miss cost for a
// single cache set under two (or any) static per-block costs — the oracle
// of the paper's companion work (Jeong & Dubois, "Optimal Replacements in
// Caches with Two Miss Costs", SPAA 1999). That work proved that with
// non-uniform costs the victim cannot always be chosen greedily at
// replacement time even with full knowledge of the future; the optimal
// schedule may *reserve* a block and sacrifice others. This oracle searches
// all eviction schedules by dynamic programming, so it captures
// reservations by construction. It is exponential in principle and meant
// for calibration on small traces (tests bound blocks to 64 so cache
// contents fit a bitmask).

// OptimalAggregateCost returns the minimum achievable aggregate miss cost
// for the single-set event stream on a fully associative set of the given
// ways, where costOf gives each block's static miss cost. When allowBypass
// is true the optimum may additionally choose not to cache a fetched block
// at all (evict-on-fill), which can only lower the cost.
//
// At most 64 distinct blocks may appear in events.
func OptimalAggregateCost(events []OptEvent, ways int, costOf func(block uint64) Cost, allowBypass bool) int64 {
	if ways <= 0 {
		panic("replacement: ways must be positive")
	}
	// Dictionary: block address -> bit id.
	ids := make(map[uint64]uint, len(events))
	costs := make([]int64, 0, 64)
	for _, e := range events {
		if _, ok := ids[e.Block]; !ok {
			if len(ids) == 64 {
				panic("replacement: OptimalAggregateCost supports at most 64 distinct blocks")
			}
			ids[e.Block] = uint(len(ids))
			costs = append(costs, int64(costOf(e.Block)))
		}
	}

	type key struct {
		i    int
		mask uint64
	}
	memo := make(map[key]int64)

	var solve func(i int, mask uint64) int64
	solve = func(i int, mask uint64) int64 {
		for i < len(events) {
			e := events[i]
			id := ids[e.Block]
			bit := uint64(1) << id
			if e.Invalidate {
				mask &^= bit
				i++
				continue
			}
			if mask&bit != 0 {
				i++ // hit
				continue
			}
			break
		}
		if i >= len(events) {
			return 0
		}
		k := key{i, mask}
		if v, ok := memo[k]; ok {
			return v
		}
		e := events[i]
		id := ids[e.Block]
		bit := uint64(1) << id
		miss := costs[id]

		best := int64(-1)
		consider := func(next uint64) {
			c := solve(i+1, next)
			if best < 0 || c < best {
				best = c
			}
		}
		if popcount(mask) < ways {
			consider(mask | bit)
		} else {
			for m := mask; m != 0; {
				v := m & (-m)
				m &^= v
				consider(mask&^v | bit)
			}
		}
		if allowBypass {
			consider(mask) // fetch but do not cache
		}
		total := miss + best
		memo[k] = total
		return total
	}
	return solve(0, 0)
}

// AggregateCostOf replays the event stream through a policy on a
// single-set cache and returns its aggregate cost — the online counterpart
// of OptimalAggregateCost, used to measure how close the heuristics get.
func AggregateCostOf(p Policy, events []OptEvent, ways int, costOf func(block uint64) Cost) int64 {
	p.Reset(1, ways)
	tags := make([]uint64, ways)
	valid := make([]bool, ways)
	lookup := func(tag uint64) int {
		for w := 0; w < ways; w++ {
			if valid[w] && tags[w] == tag {
				return w
			}
		}
		return -1
	}
	var agg int64
	for _, e := range events {
		way := lookup(e.Block)
		if e.Invalidate {
			p.Invalidate(0, way, e.Block)
			if way >= 0 {
				valid[way] = false
			}
			continue
		}
		p.Access(0, e.Block, way >= 0)
		if way >= 0 {
			p.Touch(0, way)
			continue
		}
		agg += int64(costOf(e.Block))
		w := -1
		for i := 0; i < ways; i++ {
			if !valid[i] {
				w = i
				break
			}
		}
		if w < 0 {
			w = p.Victim(0)
		}
		tags[w], valid[w] = e.Block, true
		p.Fill(0, w, e.Block, costOf(e.Block))
	}
	return agg
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
