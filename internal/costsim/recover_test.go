package costsim

import (
	"strings"
	"testing"

	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// boomPolicy panics on its first eviction — a stand-in for a buggy policy
// configuration that must be contained to its own sweep cell.
type boomPolicy struct{ replacement.Policy }

func (boomPolicy) Victim(set int) int { panic("boom: injected test failure") }

func boomFactory() replacement.Policy { return boomPolicy{replacement.NewLRU()} }

func recoverView(t *testing.T) []trace.SampleRef {
	t.Helper()
	w := workload.Synthetic{
		Blocks: 512, RefsPerProc: 20000, WriteFrac: 0.2, SharedFrac: 0.8,
		ZipfS: 1.3, Procs: 2, Seed: 5,
	}
	return w.Generate().SampleView(0)
}

func TestRandomSweepRecoversCellPanic(t *testing.T) {
	view := recoverView(t)
	pts := RandomSweep(view, Default(), PaperRatios()[:1], []float64{0.2, 0.5},
		[]replacement.Factory{boomFactory}, 42)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Err == "" {
			t.Fatalf("cell haf=%.2f: panic not captured", pt.TargetHAF)
		}
		if !strings.Contains(pt.Err, "boom: injected test failure") {
			t.Fatalf("Err = %q", pt.Err)
		}
		if !strings.Contains(pt.Stack, "Victim") {
			t.Fatal("Stack does not point at the panicking method")
		}
		if pt.Savings != nil || pt.Costs != nil {
			t.Fatal("error cell kept partial results")
		}
		if pt.TargetHAF == 0 {
			t.Fatal("error cell lost its configuration identity")
		}
	}
}

func TestRandomSweepPanicDoesNotPoisonNeighbors(t *testing.T) {
	view := recoverView(t)
	pts := RandomSweep(view, Default(), PaperRatios()[:1], []float64{0.2},
		[]replacement.Factory{
			func() replacement.Policy { return replacement.NewDCL() },
		}, 42)
	if len(pts) != 1 || pts[0].Err != "" {
		t.Fatalf("healthy sweep reported an error: %+v", pts)
	}
	if _, ok := pts[0].Savings["DCL"]; !ok {
		t.Fatal("healthy sweep lost its savings")
	}
}

func TestFirstTouchSweepRecoversCellPanic(t *testing.T) {
	view := recoverView(t)
	home := func(block uint64) int16 { return int16(block % 2) }
	pts := FirstTouchSweep(view, Default(), home, 0, Table2Ratios()[:2],
		[]replacement.Factory{boomFactory})
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Err == "" || !strings.Contains(pt.Err, "boom") {
			t.Fatalf("cell %s: Err = %q", pt.Ratio.Label, pt.Err)
		}
		if pt.Ratio.Label == "" {
			t.Fatal("error cell lost its ratio label")
		}
	}
}

func TestGeometrySweepsRecoverCellPanic(t *testing.T) {
	view := recoverView(t)
	r := Ratio{Low: 1, High: 8, Label: "r=8"}
	assoc := AssocSweep(view, Default(), []int{2, 4}, r, 0.2,
		[]replacement.Factory{boomFactory}, 42)
	for _, pt := range assoc {
		if pt.Err == "" || !strings.Contains(pt.Err, "boom") {
			t.Fatalf("assoc %s: Err = %q", pt.Label, pt.Err)
		}
	}
	sizes := SizeSweep(view, Default(), []int{4 << 10, 16 << 10}, r, 0.2,
		[]replacement.Factory{boomFactory}, 42)
	for _, pt := range sizes {
		if pt.Err == "" || !strings.Contains(pt.Err, "boom") {
			t.Fatalf("size %s: Err = %q", pt.Label, pt.Err)
		}
		if pt.Label == "" {
			t.Fatal("error cell lost its size label")
		}
	}
}
