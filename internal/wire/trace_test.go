package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

func TestTraceCtxRoundTrip(t *testing.T) {
	body := AppendGetOrLoadReq(nil, 42, 8)
	p := AppendTraceCtx(nil, TraceCtx{SpanID: 7, Op: 123, Emit: true})
	p = append(p, body...)
	tc, rest, err := ParseTraceCtx(p)
	if err != nil {
		t.Fatalf("ParseTraceCtx: %v", err)
	}
	if tc.SpanID != 7 || tc.Op != 123 || !tc.Emit {
		t.Fatalf("trace ctx mismatch: %+v", tc)
	}
	if !bytes.Equal(rest, body) {
		t.Fatalf("rest %x, want op body %x", rest, body)
	}
	if _, _, err := ParseTraceCtx(p[:TraceCtxLen-1]); err == nil {
		t.Fatal("short trace ctx parsed")
	}
}

func TestPingRespRoundTrip(t *testing.T) {
	feat, now, ok, err := ParsePingResp(AppendPingResp(nil, FeatTrace, 987654321))
	if err != nil || !ok || feat != FeatTrace || now != 987654321 {
		t.Fatalf("ping resp: feat=%d now=%d ok=%v err=%v", feat, now, ok, err)
	}
	// A pre-extension server answers PING with an empty payload: no features,
	// no error.
	if _, _, ok, err := ParsePingResp(nil); ok || err != nil {
		t.Fatalf("empty ping resp: ok=%v err=%v, want negotiated-off", ok, err)
	}
	if _, _, _, err := ParsePingResp([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed ping resp parsed")
	}
}

// legacyReadFrame is a frozen copy of ReadFrame as it stood before the
// trace-context extension — the decoder every pre-extension peer runs. The
// compat tests below decode new frames with it and old frames with the
// current decoder, pinning the bit-compatibility contract the negotiation
// story depends on.
func legacyReadFrame(r io.Reader, max int, f *Frame) error {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [4 + headerLen]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return err
	}
	length := int(binary.BigEndian.Uint32(hdr[:4]))
	if length < headerLen {
		return fmt.Errorf("legacy: frame length %d below header size", length)
	}
	if length > max {
		return fmt.Errorf("legacy: frame length %d exceeds limit %d", length, max)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return failEOF(err)
	}
	f.Version = hdr[4]
	f.Op = hdr[5]
	f.Flags = hdr[6]
	nslen := int(hdr[7])
	f.ID = binary.BigEndian.Uint64(hdr[8:])
	rest := length - headerLen
	if nslen > rest {
		return fmt.Errorf("legacy: namespace length %d exceeds frame body %d", nslen, rest)
	}
	if cap(f.Payload) < rest {
		f.Payload = make([]byte, rest)
	}
	f.Payload = f.Payload[:rest]
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return failEOF(err)
	}
	f.NS = string(f.Payload[:nslen])
	f.Payload = f.Payload[nslen:]
	return nil
}

// randomFrame builds a seeded pseudo-random request frame; traced controls
// whether the payload carries a trace-context prefix (and the flags byte
// FlagTraced).
func randomFrame(rng *rand.Rand, traced bool) (*Frame, TraceCtx, []byte) {
	var payload []byte
	tc := TraceCtx{SpanID: rng.Uint64(), Op: rng.Uint64(), Emit: rng.Intn(2) == 0}
	if traced {
		payload = AppendTraceCtx(payload, tc)
	}
	var body []byte
	op := []uint8{OpGet, OpSet, OpGetOrLoad}[rng.Intn(3)]
	switch op {
	case OpGet:
		body = AppendGetReq(nil, rng.Uint64())
	case OpSet:
		val := make([]byte, rng.Intn(32))
		rng.Read(val)
		body = AppendSetReq(nil, rng.Uint64(), int64(rng.Intn(16)+1), val)
	case OpGetOrLoad:
		body = AppendGetOrLoadReq(nil, rng.Uint64(), int64(rng.Intn(16)+1))
	}
	payload = append(payload, body...)
	f := &Frame{Version: Version, Op: op, ID: rng.Uint64(),
		NS: "ns", Payload: payload}
	if traced {
		f.Flags = FlagTraced
	}
	return f, tc, body
}

// TestLegacyDecodesTracedFrames: a pre-extension decoder must decode a
// traced frame's header and payload bytes exactly (the extension lives
// inside the payload), and its strict op-body parsers must then refuse the
// payload — the fail-safe that turns a mis-negotiated traced frame into
// ErrCodeBadRequest instead of a mis-read key.
func TestLegacyDecodesTracedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		f, _, _ := randomFrame(rng, true)
		b := AppendFrame(nil, f)
		var got Frame
		if err := legacyReadFrame(bufio.NewReader(bytes.NewReader(b)), 0, &got); err != nil {
			t.Fatalf("frame %d: legacy decode: %v", i, err)
		}
		if got.Op != f.Op || got.ID != f.ID || got.NS != f.NS || got.Flags != f.Flags {
			t.Fatalf("frame %d: legacy header mismatch: got %+v want %+v", i, got, f)
		}
		if !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("frame %d: legacy payload mismatch", i)
		}
		// The strict parsers a legacy server would apply must all refuse the
		// extended payload rather than silently mis-parse it. (A legacy SET
		// parse cannot fail on length — its value is variable-length — but a
		// traced SET is only ever sent after FeatTrace negotiation, so a
		// legacy server never sees one.)
		switch got.Op {
		case OpGet:
			if _, err := ParseGetReq(got.Payload); err == nil {
				t.Fatalf("frame %d: legacy get parse accepted traced payload", i)
			}
		case OpGetOrLoad:
			if _, _, err := ParseGetOrLoadReq(got.Payload); err == nil {
				t.Fatalf("frame %d: legacy getorload parse accepted traced payload", i)
			}
		}
	}
}

// TestNewDecodesLegacyFrames: frames produced by a pre-extension encoder —
// which are exactly today's untraced frames — decode identically under the
// current and the legacy decoder, byte for byte across seeded fuzz input.
func TestNewDecodesLegacyFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		f, _, body := randomFrame(rng, false)
		b := AppendFrame(nil, f)

		var cur, old Frame
		if err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), 0, &cur); err != nil {
			t.Fatalf("frame %d: current decode: %v", i, err)
		}
		if err := legacyReadFrame(bufio.NewReader(bytes.NewReader(b)), 0, &old); err != nil {
			t.Fatalf("frame %d: legacy decode: %v", i, err)
		}
		if cur.Op != old.Op || cur.ID != old.ID || cur.NS != old.NS ||
			cur.Flags != old.Flags || !bytes.Equal(cur.Payload, old.Payload) {
			t.Fatalf("frame %d: decoders disagree: %+v vs %+v", i, cur, old)
		}
		if cur.Flags&FlagTraced != 0 {
			t.Fatalf("frame %d: untraced frame decoded with FlagTraced", i)
		}
		if !bytes.Equal(cur.Payload, body) {
			t.Fatalf("frame %d: payload not the bare op body", i)
		}
	}
}

// TestTracedRoundTripThroughCurrentDecoder: the full new-to-new path — the
// current decoder surfaces FlagTraced, ParseTraceCtx strips the prefix, and
// the op body parses exactly as sent.
func TestTracedRoundTripThroughCurrentDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		f, tc, body := randomFrame(rng, true)
		b := AppendFrame(nil, f)
		var got Frame
		if err := ReadFrame(bufio.NewReader(bytes.NewReader(b)), 0, &got); err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if got.Flags&FlagTraced == 0 {
			t.Fatalf("frame %d: FlagTraced lost", i)
		}
		gtc, rest, err := ParseTraceCtx(got.Payload)
		if err != nil {
			t.Fatalf("frame %d: ParseTraceCtx: %v", i, err)
		}
		if gtc != tc {
			t.Fatalf("frame %d: trace ctx %+v, want %+v", i, gtc, tc)
		}
		if !bytes.Equal(rest, body) {
			t.Fatalf("frame %d: op body mismatch", i)
		}
	}
}

func TestManifestOpName(t *testing.T) {
	if OpName(OpManifest) != "manifest" {
		t.Fatalf("OpName(OpManifest) = %q", OpName(OpManifest))
	}
}
