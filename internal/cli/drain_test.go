package cli

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/manifest"
	"costcache/internal/replacement"
	"costcache/internal/server"
)

// TestDrainChild is the subprocess half of the drain tests: when
// CLI_DRAIN_CHILD is set it becomes a miniature cacheserved main — start a
// server, print the address, wait on Drain(), drain the server and flush a
// manifest — and exits with the real exit code. Without the env var it is an
// ordinary (skipped) test.
func TestDrainChild(t *testing.T) {
	mode := os.Getenv("CLI_DRAIN_CHILD")
	if mode == "" {
		t.Skip("subprocess helper; driven by TestDrainSubprocess")
	}
	os.Exit(drainChildMain(mode))
}

func drainChildMain(mode string) int {
	eng := engine.New(engine.Config{Shards: 1, Sets: 64, Ways: 4})
	backend := func(key uint64, cost replacement.Cost) ([]byte, error) {
		if mode == "forced" {
			select {} // wedge: the drain must time out
		}
		time.Sleep(200 * time.Millisecond)
		return []byte("v"), nil
	}
	srv, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		Namespaces: []*server.Namespace{{Name: "a", Engine: eng, Backend: backend}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("ADDR %s\n", srv.Addr())

	<-Drain()
	timeout := 5 * time.Second
	if mode == "forced" {
		timeout = 150 * time.Millisecond
	}
	clean := srv.Drain(timeout)

	m := manifest.New("cacheserved")
	if !clean {
		m.MarkInterrupted()
	}
	if err := m.WriteFile(os.Getenv("CLI_DRAIN_MANIFEST")); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if clean {
		return 0
	}
	return ExitInterrupted
}

// spawnDrainChild starts the subprocess, reads its listen address, puts one
// GetOrLoad in flight and sends SIGTERM while it is pending. It returns the
// running command, the manifest path and the in-flight request handle.
func spawnDrainChild(t *testing.T, mode string) (*exec.Cmd, string, *client.Pending) {
	t.Helper()
	mpath := t.TempDir() + "/manifest.json"
	cmd := exec.Command(os.Args[0], "-test.run=TestDrainChild$")
	cmd.Env = append(os.Environ(), "CLI_DRAIN_CHILD="+mode, "CLI_DRAIN_MANIFEST="+mpath)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	var addr string
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			addr = s
			break
		}
	}
	if addr == "" {
		t.Fatalf("no ADDR line from child: %v", sc.Err())
	}
	go func() { // keep draining stdout so the child never blocks on a full pipe
		for sc.Scan() {
		}
	}()

	cl, err := client.Dial(client.Config{Addr: addr, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	p, err := cl.StartGetOrLoad("a", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the request reach the backend
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	return cmd, mpath, p
}

// TestDrainSubprocessClean pins the clean-drain contract end to end: SIGTERM
// with a finishable request in flight completes that request, exits 0, and
// the flushed manifest is not marked interrupted.
func TestDrainSubprocessClean(t *testing.T) {
	cmd, mpath, p := spawnDrainChild(t, "clean")

	res, err := p.Wait()
	if err != nil {
		t.Fatalf("in-flight request failed across drain: %v", err)
	}
	if string(res.Value) != "v" {
		t.Fatalf("in-flight request value = %q", res.Value)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("child exit: %v, want 0", err)
	}
	m, err := manifest.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Interrupted {
		t.Fatal("clean drain flushed an interrupted manifest")
	}
}

// TestDrainSubprocessForced pins the forced path: a wedged backend makes the
// drain time out, the child exits ExitInterrupted (130) and the partial
// manifest carries "interrupted": true.
func TestDrainSubprocessForced(t *testing.T) {
	cmd, mpath, _ := spawnDrainChild(t, "forced")

	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != ExitInterrupted {
		t.Fatalf("child exit = %v, want code %d", err, ExitInterrupted)
	}
	m, err := manifest.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Interrupted {
		t.Fatal("forced drain manifest not marked interrupted")
	}
}
