// Command costsweep runs the Section 3 sweeps on one benchmark: the random
// cost mapping over a grid of (cost ratio, high-cost access fraction) cells
// (Figure 3) or the first-touch mapping over cost ratios (Table 2), and
// prints the relative cost savings of GD, BCL, DCL and ACL over LRU, as a
// table or CSV.
//
// Usage:
//
//	costsweep -bench Barnes [-map random|firsttouch] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/costsim"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("costsweep: ")
	bench := flag.String("bench", "Raytrace", "benchmark name")
	mapping := flag.String("map", "random", "cost mapping: random (Figure 3) or firsttouch (Table 2)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	procFlag := flag.Int("proc", 0, "sample processor")
	seed := flag.Uint64("seed", 42, "random mapping seed")
	flag.Parse()

	g, ok := workload.ByName(*bench)
	if !ok {
		log.Fatalf("unknown benchmark %q", *bench)
	}
	tr := g.Generate()
	view := tr.SampleView(int16(*procFlag))
	cfg := costsim.Default()

	emit := func(t *tabulate.Table) {
		if *csv {
			if err := t.CSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		}
		t.Fprint(os.Stdout)
	}

	switch *mapping {
	case "random":
		for _, r := range costsim.PaperRatios() {
			pts := costsim.RandomSweep(view, cfg, []costsim.Ratio{r},
				costsim.PaperHAFs(), costsim.PaperPolicies(), *seed)
			t := tabulate.New(fmt.Sprintf("%s, %s: relative cost savings over LRU (%%)", *bench, r.Label),
				"HAF", "measured", "GD", "BCL", "DCL", "ACL")
			for _, pt := range pts {
				t.AddF(fmt.Sprintf("%.2f", pt.TargetHAF), pt.MeasuredHAF,
					pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
					pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
			}
			emit(t)
			fmt.Println()
		}
	case "firsttouch":
		homes := workload.FirstTouchHomes(tr, cfg.BlockBytes)
		pts := costsim.FirstTouchSweep(view, cfg, workload.HomeFunc(homes, 0),
			int16(*procFlag), costsim.Table2Ratios(), costsim.PaperPolicies())
		t := tabulate.New(fmt.Sprintf("%s: first-touch cost savings over LRU (%%)", *bench),
			"ratio", "remote frac", "GD", "BCL", "DCL", "ACL")
		for _, pt := range pts {
			t.AddF(pt.Ratio.Label, pt.MeasuredHAF,
				pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
				pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
		}
		emit(t)
	default:
		log.Fatalf("unknown mapping %q", *mapping)
	}
}
