package cache

import (
	"math/rand"
	"testing"

	"costcache/internal/cost"
	"costcache/internal/replacement"
)

func paperL2(p replacement.Policy, src cost.Source) *Cache {
	return New(Config{
		Name: "L2", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64,
		Policy: p, Cost: src,
	})
}

func TestGeometry(t *testing.T) {
	c := paperL2(nil, nil)
	if c.Sets() != 64 || c.Ways() != 4 {
		t.Fatalf("16KB/4way/64B: sets=%d ways=%d, want 64/4", c.Sets(), c.Ways())
	}
	if c.BlockAddr(0x1000) != 0x40 {
		t.Fatalf("BlockAddr(0x1000) = %#x", c.BlockAddr(0x1000))
	}
	dm := New(Config{Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64})
	if dm.Sets() != 64 {
		t.Fatalf("4KB direct-mapped: sets=%d, want 64", dm.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{SizeBytes: 1024, Ways: 4, BlockBytes: 48}, // non-power-of-two block
		{SizeBytes: 1000, Ways: 4, BlockBytes: 64}, // size not a multiple
		{SizeBytes: 1024, Ways: 0, BlockBytes: 64}, // no ways
		{SizeBytes: -64, Ways: 1, BlockBytes: 64},  // negative
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestHitMissAndCostAccounting(t *testing.T) {
	src := cost.Func(func(b uint64) replacement.Cost { return replacement.Cost(b%2*7 + 1) }) // 1 or 8
	c := paperL2(replacement.NewLRU(), src)
	c.Access(0, false)  // block 0, cost 1
	c.Access(64, false) // block 1, cost 8
	c.Access(0, false)  // hit
	c.Access(63, true)  // hit (same block as 0)
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AggCost != 9 {
		t.Fatalf("AggCost = %d, want 9", st.AggCost)
	}
	if st.MissRate() != 0.5 {
		t.Fatalf("MissRate = %v", st.MissRate())
	}
}

func TestMissRateEmpty(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty MissRate must be 0")
	}
}

func TestEvictionCallback(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64})
	var evicted []uint64
	var dirtyFlags []bool
	c.OnEvict = func(b uint64, d bool) { evicted = append(evicted, b); dirtyFlags = append(dirtyFlags, d) }
	c.Access(0, true)    // block 0, dirty
	c.Access(64, false)  // block 1
	c.Access(128, false) // evicts block 0 (LRU, dirty)
	if len(evicted) != 1 || evicted[0] != 0 || !dirtyFlags[0] {
		t.Fatalf("evicted=%v dirty=%v", evicted, dirtyFlags)
	}
}

func TestInvalidate(t *testing.T) {
	c := paperL2(nil, nil)
	c.Access(0, true)
	if cached, dirty := c.Invalidate(0); !cached || !dirty {
		t.Fatalf("Invalidate(0) = %v,%v, want cached dirty", cached, dirty)
	}
	if c.Contains(0) {
		t.Fatal("block must be gone")
	}
	if cached, _ := c.Invalidate(0); cached {
		t.Fatal("second invalidation must be a no-op")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
}

func TestInvalidatePurgesETD(t *testing.T) {
	// DCL's ETD must see invalidations for blocks that are not cached.
	p := replacement.NewDCL()
	src := cost.Func(func(b uint64) replacement.Cost {
		if b == 3 { // the source sees block addresses
			return 8
		}
		return 1
	})
	c := New(Config{Name: "t", SizeBytes: 4 * 64, Ways: 4, BlockBytes: 64, Policy: p, Cost: src})
	// One set. Make block 3 (cost 8) LRU, then sacrifice block 2 into ETD.
	for _, b := range []uint64{3, 2, 1, 0} {
		c.Access(b*64, false)
	}
	c.Access(4*64, false) // sacrifices block 2 -> ETD
	c.Invalidate(2 * 64)  // block 2 not cached; must still purge ETD
	c.Access(2*64, false) // plain miss: no depreciation
	if got := p.Acost(0); got != 8 {
		t.Fatalf("Acost = %d, want 8 (ETD entry should have been purged)", got)
	}
}

func TestFillWithCost(t *testing.T) {
	c := paperL2(nil, cost.Uniform(1))
	c.FillWithCost(0, false, 120, 380)
	if st := c.Stats(); st.AggCost != 120 {
		t.Fatalf("AggCost = %d, want 120", st.AggCost)
	}
	if !c.Contains(0) {
		t.Fatal("block must be resident after FillWithCost")
	}
}

func TestHierarchyLevels(t *testing.T) {
	l1 := New(Config{Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64})
	l2 := paperL2(replacement.NewLRU(), cost.Uniform(1))
	h := NewHierarchy(l1, l2)
	if got := h.Access(0, false); got != Memory {
		t.Fatalf("cold access level = %v, want Memory", got)
	}
	if got := h.Access(0, false); got != L1Hit {
		t.Fatalf("second access = %v, want L1Hit", got)
	}
	// Evict from L1 by conflict (L1 is direct-mapped with 64 sets): block 64
	// conflicts with block 0 in L1 but not in the 4-way L2.
	if got := h.Access(64*64, false); got != Memory {
		t.Fatalf("conflicting block = %v, want Memory", got)
	}
	if got := h.Access(0, false); got != L2Hit {
		t.Fatalf("after L1 conflict = %v, want L2Hit", got)
	}
}

func TestHierarchyInclusion(t *testing.T) {
	l1 := New(Config{Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64})
	l2 := New(Config{Name: "L2", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64,
		Policy: replacement.NewDCL(),
		Cost:   cost.Random{Low: 1, High: 8, Fraction: 0.3, Seed: 5}})
	h := NewHierarchy(l1, l2)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(1<<16)) &^ 7
		switch rng.Intn(10) {
		case 0:
			h.Invalidate(addr)
		default:
			h.Access(addr, rng.Intn(4) == 0)
		}
		if i%2500 == 0 && !h.CheckInclusion() {
			t.Fatalf("inclusion violated at step %d", i)
		}
	}
	if !h.CheckInclusion() {
		t.Fatal("inclusion violated at end")
	}
	if h.L2.Stats().Misses == 0 || h.L1.Stats().Misses == 0 {
		t.Fatal("workload produced no misses")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	l1 := New(Config{Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64})
	l2 := paperL2(nil, nil)
	h := NewHierarchy(l1, l2)
	h.Access(0, false)
	h.Invalidate(0)
	if h.L1.Contains(0) || h.L2.Contains(0) {
		t.Fatal("invalidation must remove the block from both levels")
	}
}

func TestHierarchyBlockSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l1 := New(Config{Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 32})
	l2 := paperL2(nil, nil)
	NewHierarchy(l1, l2)
}

// The L2's aggregate cost with a cost-sensitive policy must never exceed a
// modest factor of LRU's on arbitrary workloads (smoke-level reliability).
func TestHierarchyPolicyComparison(t *testing.T) {
	run := func(p replacement.Policy) int64 {
		src := cost.Random{Low: 1, High: 16, Fraction: 0.2, Seed: 77}
		l1 := New(Config{Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64})
		l2 := New(Config{Name: "L2", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64, Policy: p, Cost: src})
		h := NewHierarchy(l1, l2)
		rng := rand.New(rand.NewSource(123))
		// Zipf-ish reuse over a 128KB footprint.
		zipf := rand.NewZipf(rng, 1.2, 1, 2047)
		for i := 0; i < 200000; i++ {
			h.Access(zipf.Uint64()*64, rng.Intn(5) == 0)
		}
		return h.L2.Stats().AggCost
	}
	lru := run(replacement.NewLRU())
	for _, p := range []replacement.Policy{replacement.NewBCL(), replacement.NewDCL(), replacement.NewACL()} {
		got := run(p)
		if float64(got) > 1.05*float64(lru) {
			t.Errorf("%s cost %d vs LRU %d: more than 5%% worse", p.Name(), got, lru)
		}
	}
}

// Model-based property test: the cache under LRU must agree, access by
// access, with a brutally simple reference model (per-set slice ordered by
// recency).
func TestCacheAgreesWithReferenceModel(t *testing.T) {
	const sets, ways = 8, 4
	c := New(Config{Name: "m", SizeBytes: sets * ways * 64, Ways: ways, BlockBytes: 64})
	model := make([][]uint64, sets) // model[s][0] = MRU block
	find := func(s int, b uint64) int {
		for i, x := range model[s] {
			if x == b {
				return i
			}
		}
		return -1
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100000; i++ {
		b := uint64(rng.Intn(256))
		s := int(b % sets)
		if rng.Intn(25) == 0 {
			c.Invalidate(b * 64)
			if j := find(s, b); j >= 0 {
				model[s] = append(model[s][:j], model[s][j+1:]...)
			}
			continue
		}
		gotHit := c.Access(b*64, false)
		j := find(s, b)
		wantHit := j >= 0
		if gotHit != wantHit {
			t.Fatalf("step %d block %d: hit=%v, model says %v", i, b, gotHit, wantHit)
		}
		if j >= 0 {
			model[s] = append(model[s][:j], model[s][j+1:]...)
		} else if len(model[s]) == ways {
			model[s] = model[s][:ways-1]
		}
		model[s] = append([]uint64{b}, model[s]...)
	}
	if c.Stats().Misses == 0 {
		t.Fatal("no misses exercised")
	}
}

func TestCostPaidTracksPredictedCost(t *testing.T) {
	c := paperL2(nil, cost.Uniform(3))
	for b := uint64(0); b < 100; b++ {
		c.Access(b*64, false)
	}
	st := c.Stats()
	if st.CostPaid != 300 {
		t.Fatalf("CostPaid = %d, want 300 (100 misses x predicted 3)", st.CostPaid)
	}
	if st.CostPaid != st.AggCost {
		t.Fatalf("trace-driven run: CostPaid %d must equal AggCost %d", st.CostPaid, st.AggCost)
	}
	// Hits must not charge anything.
	before := c.Stats()
	c.Access(99*64, false)
	if after := c.Stats(); after.CostPaid != before.CostPaid || after.AggCost != before.AggCost {
		t.Fatal("hit changed CostPaid or AggCost")
	}
}

func TestCostPaidDivergesUnderFillWithCost(t *testing.T) {
	c := paperL2(nil, nil)
	// Charge the measured cost (7) while predicting a different one (2): the
	// gap between AggCost and CostPaid is the prediction error.
	c.FillWithCost(0, false, 7, 2)
	st := c.Stats()
	if st.AggCost != 7 || st.CostPaid != 2 {
		t.Fatalf("AggCost=%d CostPaid=%d, want 7/2", st.AggCost, st.CostPaid)
	}
}

// TestStatsIsValueCopy pins the documented snapshot semantics of Stats.
func TestStatsIsValueCopy(t *testing.T) {
	c := paperL2(nil, cost.Uniform(1))
	snap := c.Stats()
	c.Access(0, false)
	if snap.Accesses != 0 {
		t.Fatal("Stats() returned a live view, want a value copy")
	}
	if c.Stats().Accesses != 1 {
		t.Fatal("fresh Stats() call missing the new access")
	}
}
