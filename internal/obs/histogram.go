package obs

import "sync/atomic"

// Histogram is a fixed-bucket distribution with atomic, allocation-free
// observation. Bucket i counts values v <= Bounds[i] (with earlier buckets
// taking precedence); the final implicit bucket counts everything above the
// last bound. Bounds are fixed at creation so Observe never allocates or
// locks.
type Histogram struct {
	bounds    []int64
	counts    []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count     atomic.Int64
	sum       atomic.Int64
	exemplars []atomic.Uint64 // nil unless built by NewHistogramExemplars
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
// An empty bounds slice yields a single overflow bucket (count/sum only).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(bounds)+1)}
}

// NewHistogramExemplars builds a histogram that additionally retains, per
// bucket, the ID of the most recent sampled span observed into it — the link
// from "p99 = 1.8 ms" back to a concrete trace. Exemplar slots cost one
// atomic store per exemplar-carrying observation and nothing otherwise.
func NewHistogramExemplars(bounds []int64) *Histogram {
	h := NewHistogram(bounds)
	h.exemplars = make([]atomic.Uint64, len(h.bounds)+1)
	return h
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// multiplying by factor (rounded up so bounds never repeat): the usual shape
// for latency histograms.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		next := int64(float64(v) * factor)
		if next <= v {
			next = v + 1
		}
		v = next
	}
	return out
}

// LinearBuckets returns n bounds start, start+step, ...
func LinearBuckets(start, step int64, n int) []int64 {
	if step <= 0 || n <= 0 {
		panic("obs: LinearBuckets needs step > 0, n > 0")
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*step
	}
	return out
}

// Observe records one value. It never allocates; bucket search is a linear
// scan, which beats binary search at the typical 8-24 bucket sizes.
func (h *Histogram) Observe(v int64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when spanID is non-zero and the
// histogram was built with NewHistogramExemplars, stamps the value's bucket
// with spanID as its most recent exemplar (last writer wins under
// concurrency — any recent sampled span is an equally good example).
func (h *Histogram) ObserveExemplar(v int64, spanID uint64) {
	i := h.bucket(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if h.exemplars != nil && spanID != 0 {
		h.exemplars[i].Store(spanID)
	}
}

func (h *Histogram) bucket(v int64) int {
	for j, b := range h.bounds {
		if v <= b {
			return j
		}
	}
	return len(h.bounds)
}

// ReadInto copies the per-bucket counts into dst — which must have room for
// len(Bounds())+1 values — and returns the total count and sum, without
// allocating. It is the sampling-path alternative to Snapshot for callers
// (the live-telemetry store) that own a reusable buffer. Like Snapshot, the
// reads are individually atomic but not mutually consistent under
// concurrent Observe traffic.
func (h *Histogram) ReadInto(dst []int64) (count, sum int64) {
	for i := range h.counts {
		dst[i] = h.counts[i].Load()
	}
	return h.count.Load(), h.sum.Load()
}

// Bounds returns the histogram's bucket bounds. The slice is the
// histogram's own immutable backing array; callers must not modify it.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot copies the histogram state. Under concurrent Observe traffic the
// per-bucket counts and the totals are each atomically read but not mutually
// consistent; for the repository's single-writer simulators they are exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, shared
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if h.exemplars != nil {
		s.Exemplars = make([]uint64, len(h.exemplars))
		for i := range h.exemplars {
			s.Exemplars[i] = h.exemplars[i].Load()
		}
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1, last is the overflow bucket
	Count  int64
	Sum    int64
	// Exemplars holds, per bucket, the most recent sampled span ID observed
	// into it (0 = none); nil unless the histogram retains exemplars.
	Exemplars []uint64 `json:",omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1): the
// bound of the bucket containing that rank, or the last bound for the
// overflow bucket. It returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if rank < cum {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Sub returns the bucket-wise difference s - prev (a window delta).
// Exemplars are instantaneous, not cumulative, so the delta keeps the
// current snapshot's. A zero-value prev subtracts nothing.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Bounds: s.Bounds, Counts: make([]int64, len(s.Counts)),
		Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum, Exemplars: s.Exemplars}
	for i := range s.Counts {
		v := s.Counts[i]
		if i < len(prev.Counts) {
			v -= prev.Counts[i]
		}
		d.Counts[i] = v
	}
	return d
}
