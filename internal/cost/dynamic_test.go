package cost

import "testing"

func TestNextOpPrediction(t *testing.T) {
	p := NewNextOp(10, 1)
	if p.MissCost(5) != 10 {
		t.Fatal("unseen block must predict a (critical) load")
	}
	p.OnAccess(5, true) // store
	if p.MissCost(5) != 1 {
		t.Fatal("after a store, predict a cheap store miss")
	}
	p.OnAccess(5, false) // load
	if p.MissCost(5) != 10 {
		t.Fatal("after a load, predict a costly load miss")
	}
}

func TestMigratingThreshold(t *testing.T) {
	home := func(block uint64) int16 { return int16(block % 2) } // odd blocks remote for proc 0
	m := NewMigrating(home, 0, 1, 8, 3)
	if m.MissCost(2) != 1 {
		t.Fatal("local block must cost Low")
	}
	if m.MissCost(3) != 8 {
		t.Fatal("remote block must start High")
	}
	m.OnAccess(3, false)
	m.OnAccess(3, false)
	if m.MissCost(3) != 8 {
		t.Fatal("below threshold: still remote")
	}
	m.OnAccess(3, true)
	if m.MissCost(3) != 1 {
		t.Fatal("at threshold the block must have migrated")
	}
	if m.Migrated() != 1 {
		t.Fatalf("Migrated = %d, want 1", m.Migrated())
	}
	// Local accesses never migrate anything.
	for i := 0; i < 10; i++ {
		m.OnAccess(2, false)
	}
	if m.Migrated() != 1 {
		t.Fatal("local block must not count as a migration")
	}
}
