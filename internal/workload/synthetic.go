package workload

import (
	"math/rand"

	"costcache/internal/trace"
)

// Synthetic is a tunable generic generator used by tests, examples and
// microbenchmarks: each processor references a shared Zipf-skewed region
// plus a private region, with a configurable write fraction.
type Synthetic struct {
	// Blocks is the shared footprint in blocks.
	Blocks int
	// RefsPerProc is the number of references each processor issues.
	RefsPerProc int
	// WriteFrac is the probability a reference is a write.
	WriteFrac float64
	// SharedFrac is the probability a reference targets the shared region
	// (the rest go to a private per-processor region).
	SharedFrac float64
	// ZipfS is the Zipf skew of shared accesses (values <= 1 fall back to
	// uniform).
	ZipfS float64
	// Procs is the processor count.
	Procs int
	// Seed controls all random choices.
	Seed int64
}

// Name implements Generator.
func (Synthetic) Name() string { return "Synthetic" }

// Generate implements Generator.
func (w Synthetic) Generate() *trace.Trace { return w.emit().build(w.Name()) }

func (w Synthetic) emit() *builder {
	b := newBuilder(w.Procs, w.Seed)
	for p := 0; p < w.Procs; p++ {
		rng := rand.New(rand.NewSource(w.Seed*7919 + int64(p)))
		var zipf zipfPicker
		if w.ZipfS > 1 {
			zipf = newZipf(rng, w.ZipfS, uint64(w.Blocks))
		}
		private := regionPrivate + uint64(p)<<24
		for i := 0; i < w.RefsPerProc; i++ {
			var addr uint64
			if rng.Float64() < w.SharedFrac {
				var n uint64
				if w.ZipfS > 1 {
					n = zipf.pick()
				} else {
					n = uint64(rng.Intn(w.Blocks))
				}
				addr = regionScene + n*BlockBytes
			} else {
				addr = private + uint64(rng.Intn(w.Blocks/4+1))*BlockBytes
			}
			op := trace.Read
			if rng.Float64() < w.WriteFrac {
				op = trace.Write
			}
			b.ref(p, addr, op)
		}
	}
	return b
}

// ByName returns the default configuration of a named benchmark generator.
// Recognized names: the Table 1 benchmarks (Barnes, LU, Ocean, Raytrace)
// plus the footnote extras FFT and Radix (case-sensitive).
func ByName(name string) (Generator, bool) {
	switch name {
	case "Barnes":
		return DefaultBarnes(), true
	case "LU":
		return DefaultLU(), true
	case "Ocean":
		return DefaultOcean(), true
	case "Raytrace":
		return DefaultRaytrace(), true
	case "FFT":
		return DefaultFFT(), true
	case "Radix":
		return DefaultRadix(), true
	}
	return nil, false
}

// Names lists every benchmark ByName recognizes, in Table 1 order plus the
// footnote extras — the valid values commands print on a bad -bench flag.
func Names() []string {
	return []string{"Barnes", "LU", "Ocean", "Raytrace", "FFT", "Radix"}
}

// Defaults returns the four paper benchmarks in Table 1 order.
func Defaults() []Generator {
	return []Generator{DefaultBarnes(), DefaultLU(), DefaultOcean(), DefaultRaytrace()}
}

// Quick scales a benchmark generator down for smoke runs: the access-pattern
// shapes hold while the trace shrinks by roughly an order of magnitude.
// Generators without a quick recipe pass through unchanged. The commands'
// -quick flags all route through here so "quick Barnes" means the same
// deterministic workload everywhere (CI baselines depend on that).
func Quick(g Generator) Generator {
	switch w := g.(type) {
	case Barnes:
		w.Bodies, w.Iterations = 2048, 2
		return w
	case LU:
		w.N, w.B = 256, 16 // keep N/B at twice the processor count
		return w
	case Ocean:
		w.Iterations = 3
		return w
	case Raytrace:
		w.RaysPerProc = 1500
		return w
	}
	return g
}
