// Package trace defines memory-reference traces: the input consumed by the
// trace-driven cost simulator (Section 3 of the paper) and the intermediate
// form produced by the synthetic workload generators.
//
// A trace is a sequence of references, each tagged with the issuing processor
// and the operation (read or write). Following the paper's methodology
// (Section 3.1), the per-processor view used for simulation contains all
// shared-data references of one sample processor plus all writes by other
// processors, so that cache invalidations are accounted for.
package trace

import "fmt"

// Op is the kind of memory operation performed by a reference.
type Op uint8

const (
	// Read is a load.
	Read Op = iota
	// Write is a store.
	Write
)

// String returns "R" for Read and "W" for Write.
func (o Op) String() string {
	switch o {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Ref is a single memory reference in a multiprocessor trace.
type Ref struct {
	// Addr is the byte address referenced.
	Addr uint64
	// Proc is the issuing processor, in [0, NumProcs).
	Proc int16
	// Op is Read or Write.
	Op Op
}

// Trace is an ordered multiprocessor reference stream.
type Trace struct {
	// Refs is the interleaved reference stream, in global program order.
	Refs []Ref
	// NumProcs is the number of processors that contributed references.
	NumProcs int
	// Name labels the trace (e.g. the generating workload).
	Name string
}

// Append adds a reference to the trace.
func (t *Trace) Append(r Ref) { t.Refs = append(t.Refs, r) }

// Len returns the number of references in the trace.
func (t *Trace) Len() int { return len(t.Refs) }

// SampleView returns the per-processor trace used by the cost simulator: all
// references issued by proc plus all writes issued by other processors (which
// model coherence invalidations at the sample processor's caches). The Remote
// flag of each returned reference distinguishes the two.
func (t *Trace) SampleView(proc int16) []SampleRef {
	out := make([]SampleRef, 0, len(t.Refs))
	for _, r := range t.Refs {
		switch {
		case r.Proc == proc:
			out = append(out, SampleRef{Addr: r.Addr, Op: r.Op})
		case r.Op == Write:
			out = append(out, SampleRef{Addr: r.Addr, Op: Write, Remote: true})
		}
	}
	return out
}

// SampleRef is one entry of a per-processor trace view. A remote entry is a
// write by another processor and acts purely as an invalidation; a local
// entry is a reference by the sample processor.
type SampleRef struct {
	// Addr is the byte address referenced.
	Addr uint64
	// Op is Read or Write.
	Op Op
	// Remote reports whether the reference was issued by another processor.
	Remote bool
}

// Stats summarizes a trace.
type Stats struct {
	Refs         int
	Reads        int
	Writes       int
	UniqueBlocks int
	// FootprintBytes is UniqueBlocks * blockBytes.
	FootprintBytes int64
	// PerProc counts references per processor.
	PerProc []int
}

// Summarize computes Stats over the trace using the given block size.
func (t *Trace) Summarize(blockBytes int) Stats {
	if blockBytes <= 0 {
		panic("trace: blockBytes must be positive")
	}
	s := Stats{PerProc: make([]int, t.NumProcs)}
	blocks := make(map[uint64]struct{})
	for _, r := range t.Refs {
		s.Refs++
		if r.Op == Write {
			s.Writes++
		} else {
			s.Reads++
		}
		if int(r.Proc) < len(s.PerProc) {
			s.PerProc[r.Proc]++
		}
		blocks[r.Addr/uint64(blockBytes)] = struct{}{}
	}
	s.UniqueBlocks = len(blocks)
	s.FootprintBytes = int64(s.UniqueBlocks) * int64(blockBytes)
	return s
}

// RemoteFraction returns the fraction of proc's references whose block is not
// homed at proc according to home. It corresponds to the "remote access
// fraction" column of Table 1 in the paper.
func (t *Trace) RemoteFraction(proc int16, blockBytes int, home func(block uint64) int16) float64 {
	var local, remote int
	for _, r := range t.Refs {
		if r.Proc != proc {
			continue
		}
		if home(r.Addr/uint64(blockBytes)) == proc {
			local++
		} else {
			remote++
		}
	}
	if local+remote == 0 {
		return 0
	}
	return float64(remote) / float64(local+remote)
}
