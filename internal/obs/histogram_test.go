package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestQuantileEmpty pins the empty-histogram contract: every quantile is 0.
func TestQuantileEmpty(t *testing.T) {
	s := NewHistogram(LinearBuckets(10, 10, 4)).Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %d, want 0", q, got)
		}
	}
	if s.Mean() != 0 {
		t.Errorf("empty histogram Mean() = %g, want 0", s.Mean())
	}
}

// TestQuantileSingleObservation: with one sample every quantile reports the
// bound of its bucket.
func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 4)) // bounds 10,20,30,40
	h.Observe(25)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 30 {
			t.Errorf("Quantile(%g) = %d, want 30 (the sample's bucket bound)", q, got)
		}
	}
}

// TestQuantileAllOneBucket: when every observation lands in one bucket, all
// quantiles collapse to that bucket's bound — including observations beyond
// the last bound, which report the last bound (the documented upper-bound
// semantics of the overflow bucket).
func TestQuantileAllOneBucket(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 4))
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.999} {
		if got := s.Quantile(q); got != 20 {
			t.Errorf("Quantile(%g) = %d, want 20", q, got)
		}
	}

	over := NewHistogram(LinearBuckets(10, 10, 4))
	for i := 0; i < 100; i++ {
		over.Observe(1000) // all overflow
	}
	if got := over.Snapshot().Quantile(0.99); got != 40 {
		t.Errorf("overflow Quantile(0.99) = %d, want last bound 40", got)
	}
}

// TestQuantileNoBounds: a bounds-less histogram tracks count/sum only and
// reports 0 for every quantile.
func TestQuantileNoBounds(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(7)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 7 {
		t.Fatalf("count/sum = %d/%d, want 1/7", s.Count, s.Sum)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %d, want 0 for a bounds-less histogram", got)
	}
}

// TestExemplarReplacement: the bucket exemplar is the most recent non-zero
// span ID observed into it; zero IDs and plain Observe leave it untouched.
func TestExemplarReplacement(t *testing.T) {
	h := NewHistogramExemplars(LinearBuckets(10, 10, 4))
	h.ObserveExemplar(15, 101)
	h.ObserveExemplar(15, 102)
	h.ObserveExemplar(15, 0) // unsampled observation: bucket counted, exemplar kept
	h.Observe(15)
	h.ObserveExemplar(1000, 900) // overflow bucket
	s := h.Snapshot()
	if s.Exemplars[1] != 102 {
		t.Errorf("bucket 1 exemplar = %d, want 102 (most recent sampled)", s.Exemplars[1])
	}
	if s.Exemplars[len(s.Bounds)] != 900 {
		t.Errorf("overflow exemplar = %d, want 900", s.Exemplars[len(s.Bounds)])
	}
	if s.Counts[1] != 4 {
		t.Errorf("bucket 1 count = %d, want 4", s.Counts[1])
	}
	// A plain histogram never materializes exemplars.
	if plain := NewHistogram(LinearBuckets(10, 10, 4)); plain.Snapshot().Exemplars != nil {
		t.Error("plain histogram snapshot carries exemplars")
	}
}

// TestExemplarConcurrentObserves hammers one bucket from many goroutines
// under -race and checks the surviving exemplar is one of the IDs written —
// last-writer-wins, never a torn or invented value.
func TestExemplarConcurrentObserves(t *testing.T) {
	h := NewHistogramExemplars(LinearBuckets(10, 10, 4))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				h.ObserveExemplar(15, uint64(w*per+i))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Counts[1] != workers*per {
		t.Fatalf("bucket count = %d, want %d", s.Counts[1], workers*per)
	}
	ex := s.Exemplars[1]
	if ex == 0 || ex > workers*per {
		t.Fatalf("exemplar %d is not one of the written IDs [1,%d]", ex, workers*per)
	}
}

// TestWriteTextExemplars pins the OpenMetrics-style exemplar rendering on
// bucket lines.
func TestWriteTextExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_ns", LinearBuckets(10, 10, 2))
	h.Observe(5) // no exemplar support on registry histograms by default
	var plain strings.Builder
	if err := r.WriteText(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "span_id") {
		t.Errorf("plain histogram rendered an exemplar:\n%s", plain.String())
	}

	s := Snapshot{Histograms: map[string]HistogramSnapshot{}}
	he := NewHistogramExemplars(LinearBuckets(10, 10, 2))
	he.ObserveExemplar(5, 42)
	s.Histograms["lat_ns"] = he.Snapshot()
	var b strings.Builder
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `lat_ns_bucket{le="10"} 1 # {span_id="42"}`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}
