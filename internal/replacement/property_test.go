package replacement

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genTrace produces a reference stream with reuse (small working set) and a
// sprinkling of invalidations.
type traceOp struct {
	block      uint64
	invalidate bool
}

func genOps(n int, blocks uint64, invalFrac float64, seed int64) []traceOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]traceOp, n)
	for i := range ops {
		ops[i] = traceOp{
			block:      uint64(rng.Int63n(int64(blocks))),
			invalidate: rng.Float64() < invalFrac,
		}
	}
	return ops
}

func runPolicy(t *testing.T, p Policy, sets, ways int, cost func(uint64) Cost, ops []traceOp) (evictions []uint64, hits, misses, agg int64) {
	c := newTestCache(t, sets, ways, p, cost)
	for _, op := range ops {
		if op.invalidate {
			c.invalidate(op.block)
		} else {
			c.access(op.block)
		}
	}
	return c.evictions, c.hits, c.misses, c.aggCost
}

// Under uniform costs, every cost-sensitive algorithm in the paper must
// degenerate to exact LRU: the strict cost comparisons never fire (BCL, DCL,
// ACL) and GreedyDual's credits order blocks by recency. This is the
// strongest sanity property the paper implies ("our algorithms rely on the
// locality estimate of cached blocks predicted by LRU").
func TestUniformCostsDegenerateToLRU(t *testing.T) {
	factories := []Factory{
		func() Policy { return NewGD() },
		func() Policy { return NewBCL() },
		func() Policy { return NewDCL() },
		func() Policy { return NewACL() },
		func() Policy { return NewDCLWith(Options{TagBits: 4}) },
		func() Policy { return NewACLWith(Options{TagBits: 4}) },
	}
	for seed := int64(0); seed < 5; seed++ {
		ops := genOps(20000, 300, 0.02, seed)
		refEv, refH, refM, _ := runPolicy(t, NewLRU(), 8, 4, unitCost, ops)
		for _, f := range factories {
			p := f()
			ev, h, m, _ := runPolicy(t, p, 8, 4, unitCost, ops)
			if h != refH || m != refM {
				t.Fatalf("seed %d: %s hits/misses = %d/%d, LRU = %d/%d",
					seed, p.Name(), h, m, refH, refM)
			}
			if !reflect.DeepEqual(ev, refEv) {
				t.Fatalf("seed %d: %s eviction sequence diverges from LRU", seed, p.Name())
			}
		}
	}
}

// All policies must satisfy basic structural invariants on arbitrary
// workloads with non-uniform costs and invalidations.
func TestPolicyInvariantsQuick(t *testing.T) {
	factories := map[string]Factory{
		"LRU":    func() Policy { return NewLRU() },
		"GD":     func() Policy { return NewGD() },
		"BCL":    func() Policy { return NewBCL() },
		"DCL":    func() Policy { return NewDCL() },
		"ACL":    func() Policy { return NewACL() },
		"DCL-a2": func() Policy { return NewDCLWith(Options{TagBits: 2}) },
		"Random": func() Policy { return NewRandom(99) },
	}
	cost := func(b uint64) Cost { return Cost(b%5) * 3 } // includes zero costs
	for name, f := range factories {
		f := f
		check := func(seed int64, waysRaw, setsRaw uint8) bool {
			ways := int(waysRaw%7) + 2 // 2..8, as in the paper's sweeps
			sets := 1 << (setsRaw % 4) // 1..8
			ops := genOps(5000, 200, 0.05, seed)
			p := f()
			c := newTestCache(t, sets, ways, p, cost)
			for _, op := range ops {
				if op.invalidate {
					c.invalidate(op.block)
				} else {
					c.access(op.block)
				}
			}
			// Structural invariants for the stack-based policies.
			if sb, ok := stackOf(p); ok {
				for s := range sb.sets {
					m := &sb.sets[s]
					seen := map[int]bool{}
					valid := 0
					for _, w := range m.stack {
						if seen[w] {
							return false
						}
						seen[w] = true
					}
					for _, v := range m.valid {
						if v {
							valid++
						}
					}
					if valid != m.live {
						return false
					}
					// Valid ways form a prefix of the stack.
					for i := 0; i < m.live; i++ {
						if !m.valid[m.stack[i]] {
							return false
						}
					}
					// Policy metadata agrees with the cache's tag store.
					for w := 0; w < ways; w++ {
						if m.valid[w] != c.valid[s][w] {
							return false
						}
						if m.valid[w] && m.tag[w] != c.tags[s][w] {
							return false
						}
					}
				}
			}
			if d, ok := p.(*DCL); ok {
				for s := range d.etds {
					if d.etds[s].liveEntries() > ways-1 {
						return false
					}
					if d.Counter(s) > 3 {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// stackOf extracts the embedded stackBase from the stack-based policies.
func stackOf(p Policy) (*stackBase, bool) {
	switch v := p.(type) {
	case *LRU:
		return &v.stackBase, true
	case *GD:
		return &v.stackBase, true
	case *BCL:
		return &v.stackBase, true
	case *DCL:
		return &v.stackBase, true
	case *Random:
		return &v.stackBase, true
	}
	return nil, false
}

// With full (non-aliased) ETD tags, the tags in the ETD and the tags in the
// cache directory must be mutually exclusive (Section 2.4).
func TestETDCacheMutualExclusion(t *testing.T) {
	cost := func(b uint64) Cost { return Cost(b % 7) }
	p := NewDCL()
	c := newTestCache(t, 4, 4, p, cost)
	ops := genOps(30000, 150, 0.03, 11)
	step := 0
	checkExclusion := func() {
		for s := range p.etds {
			e := &p.etds[s]
			for i, v := range e.valid {
				if !v {
					continue
				}
				for w := 0; w < c.ways; w++ {
					if c.valid[s][w] && c.tags[s][w] == e.tags[i] {
						t.Fatalf("step %d: tag %#x in both cache and ETD of set %d", step, e.tags[i], s)
					}
				}
			}
		}
	}
	for _, op := range ops {
		if op.invalidate {
			c.invalidate(op.block)
		} else {
			c.access(op.block)
		}
		step++
		if step%997 == 0 {
			checkExclusion()
		}
	}
	checkExclusion()
}

// The cost-sensitive algorithms should actually beat LRU on a workload built
// to reward reservations: a high-cost block with moderate reuse distance
// competing against streaming low-cost blocks.
func TestCostSensitiveBeatsLRUOnFavorableWorkload(t *testing.T) {
	cost := func(b uint64) Cost {
		if b < 4 {
			return 16
		}
		return 1
	}
	// 1 set, 4 ways. Loop: touch high-cost block 0..3 , then stream 6
	// low-cost blocks twice (so LRU evicts the high-cost blocks, while a
	// reservation keeps them).
	var ops []traceOp
	for i := 0; i < 500; i++ {
		for b := uint64(0); b < 4; b++ {
			ops = append(ops, traceOp{block: b})
		}
		for r := 0; r < 2; r++ {
			for b := uint64(10); b < 13; b++ {
				ops = append(ops, traceOp{block: b})
			}
		}
	}
	_, _, _, lruCost := runPolicy(t, NewLRU(), 1, 4, cost, ops)
	for _, f := range []Factory{
		func() Policy { return NewBCL() },
		func() Policy { return NewDCL() },
	} {
		p := f()
		_, _, _, got := runPolicy(t, p, 1, 4, cost, ops)
		if got >= lruCost {
			t.Errorf("%s aggregate cost %d, LRU %d: expected savings", p.Name(), got, lruCost)
		}
	}
}

// ACL must never be dramatically worse than LRU — the paper's reliability
// claim ("its cost is never worse than LRU's" in Table 2, within noise).
func TestACLReliability(t *testing.T) {
	cost := func(b uint64) Cost {
		if b%3 == 0 {
			return 8
		}
		return 1
	}
	for seed := int64(0); seed < 4; seed++ {
		ops := genOps(40000, 400, 0.02, seed)
		_, _, _, lruCost := runPolicy(t, NewLRU(), 8, 4, cost, ops)
		_, _, _, aclCost := runPolicy(t, NewACL(), 8, 4, cost, ops)
		if float64(aclCost) > float64(lruCost)*1.02 {
			t.Errorf("seed %d: ACL cost %d vs LRU %d (> 2%% worse)", seed, aclCost, lruCost)
		}
	}
}
