package replacement

// GD is GreedyDual (Young 1994; Cao & Irani 1997) adapted to set-associative
// processor caches as described in Section 2.1 of the paper. Each cached
// block carries a credit H, initialized to its miss cost. GD evicts the block
// with the least credit — regardless of recency — and subtracts the victim's
// credit from every block remaining in the set. On a hit, a block's credit is
// restored to its full miss cost. Locality therefore only protects high-cost
// MRU blocks by refreshing their credit; GD is cost-centric and is expected
// to win only when cost differentials are wide.
type GD struct {
	stackBase
	credit [][]Cost // per set, per way: current (depreciated) cost H
}

// NewGD returns a fresh GreedyDual policy.
func NewGD() *GD { return &GD{} }

// Name implements Policy.
func (*GD) Name() string { return "GD" }

// Reset implements Policy.
func (p *GD) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.credit = make([][]Cost, sets)
	for i := range p.credit {
		p.credit[i] = make([]Cost, ways)
	}
}

// Access implements Policy.
func (p *GD) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy: restore the block's full miss cost.
func (p *GD) Touch(set, way int) {
	m := p.set(set)
	m.touch(way)
	p.credit[set][way] = m.cost[way]
}

// Victim implements Policy: the valid way with the least credit; ties are
// broken toward the least recently used so GD degenerates to exact LRU under
// uniform costs. The victim's credit is subtracted from all remaining blocks.
func (p *GD) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	cr := p.credit[set]
	// Scan from LRU toward MRU so the first strict minimum found is the
	// least recently used among equals.
	best := -1
	var bestCr Cost
	for pos := m.live - 1; pos >= 0; pos-- {
		w := m.stack[pos]
		if best < 0 || cr[w] < bestCr {
			best = w
			bestCr = cr[w]
		}
	}
	for pos := 0; pos < m.live; pos++ {
		w := m.stack[pos]
		if w != best {
			cr[w] -= bestCr
		}
	}
	return best
}

// Fill implements Policy: the new block's credit is its miss cost.
func (p *GD) Fill(set, way int, tag uint64, cost Cost) {
	p.set(set).fill(way, tag, cost)
	p.credit[set][way] = cost
}

// Invalidate implements Policy.
func (p *GD) Invalidate(set, way int, tag uint64) {
	if way >= 0 {
		p.set(set).invalidate(way)
		p.credit[set][way] = 0
	}
}
