package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/resilience"
)

func resEngine(t *testing.T, cfg Config, rc resilience.Config) (*Engine, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Registry = reg
	cfg.Resilience = resilience.New(rc, reg)
	return New(cfg), reg
}

// TestWaiterDeadlineExpires parks a waiter behind a gated leader with a short
// deadline: the waiter must detach with ErrLoadTimeout while the leader's
// load keeps running and fills the cache for later requests. Run under -race
// in CI.
func TestWaiterDeadlineExpires(t *testing.T) {
	e, _ := resEngine(t,
		Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory},
		resilience.Config{Deadline: 20 * time.Millisecond})
	gate := make(chan struct{})
	load := func(uint64) (any, replacement.Cost, error) {
		<-gate
		return "slow", 3, nil
	}

	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		close(started)
		_, err := e.GetOrLoad(9, load)
		leaderDone <- err
	}()
	<-started
	// Wait until the flight is registered so the second call coalesces.
	for {
		if st := e.ShardStats()[0]; st.InFlight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	if _, _, err := e.GetOrLoadStale(9, load); !errors.Is(err, ErrLoadTimeout) {
		t.Fatalf("waiter error = %v, want ErrLoadTimeout", err)
	}
	if st := e.Stats(); st.LoadTimeouts < 1 || st.Coalesced != 1 {
		t.Fatalf("stats after waiter timeout: %+v", st)
	}

	close(gate)
	if err := <-leaderDone; err != nil && !errors.Is(err, ErrLoadTimeout) {
		t.Fatalf("leader error: %v", err)
	}
	// The load survived the waiter's departure: the key is (eventually) cached.
	deadline := time.After(2 * time.Second)
	for {
		if v, ok := e.Get(9); ok {
			if v != "slow" {
				t.Fatalf("cached value = %v", v)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("load result never filled the cache")
		case <-time.After(time.Millisecond):
		}
	}
}

// TestLeaderDeadlineServesStale evicts a key (ghosting its value), then makes
// its reload hang past the deadline: the leader must get the ghost back with
// stale=true and a zero charge.
func TestLeaderDeadlineServesStale(t *testing.T) {
	e, _ := resEngine(t,
		Config{Shards: 1, Sets: 1, Ways: 1, Policy: lruFactory},
		resilience.Config{Deadline: 10 * time.Millisecond, ServeStale: true})
	if _, err := e.GetOrLoad(1, constLoader("old", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GetOrLoad(2, constLoader("other", 2)); err != nil {
		t.Fatal(err) // single way: evicts key 1 into the ghost ring
	}
	gate := make(chan struct{})
	defer close(gate)
	hang := func(uint64) (any, replacement.Cost, error) {
		<-gate
		return "new", 2, nil
	}
	v, stale, err := e.GetOrLoadStale(1, hang)
	if err != nil || !stale || v != "old" {
		t.Fatalf("stale serve = (%v, %v, %v), want (old, true, nil)", v, stale, err)
	}
	st := e.Stats()
	if st.StaleServed != 1 || st.LoadTimeouts != 1 {
		t.Fatalf("stats = %+v, want 1 stale_served / 1 load_timeouts", st)
	}
	if st.CostPaid != 4 {
		t.Fatalf("cost paid %d, want 4 (stale serve must charge nothing)", st.CostPaid)
	}
}

// TestBreakerShedsAndServesStale melts a cost class until its breaker opens,
// then checks that shed requests either serve stale (when the key was evicted
// with a ghost) or fail fast with ErrShed, and that the breaker counters and
// debug snapshot reflect the trip.
func TestBreakerShedsAndServesStale(t *testing.T) {
	classify := func(key uint64) replacement.Cost { return 8 }
	e, reg := resEngine(t,
		Config{Shards: 1, Sets: 1, Ways: 1, Policy: lruFactory},
		resilience.Config{
			BreakerRate: 0.5, BreakerWindow: 8, BreakerMin: 4,
			BreakerCooldown: 100, ServeStale: true, Classify: classify,
		})

	// Seed key 1, then evict it so its value ghosts.
	if _, err := e.GetOrLoad(1, constLoader("cached", 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.GetOrLoad(2, constLoader("evictor", 8)); err != nil {
		t.Fatal(err)
	}

	// Failing loads on distinct keys until the class-8 breaker trips (the
	// two seeding successes count toward the rate window, so the exact trip
	// point is the breaker's business — the contract is that it trips).
	boom := errors.New("backend down")
	failing := func(uint64) (any, replacement.Cost, error) { return nil, 0, boom }
	var sheds int64
	for k := uint64(10); ; k++ {
		_, _, err := e.GetOrLoadStale(k, failing)
		if errors.Is(err, ErrShed) {
			sheds++
			break
		}
		if !errors.Is(err, boom) {
			t.Fatalf("key %d: err = %v, want backend error", k, err)
		}
		if k > 40 {
			t.Fatal("breaker never tripped")
		}
	}

	// Open breaker, no ghost: fail fast.
	if _, _, err := e.GetOrLoadStale(20, failing); !errors.Is(err, ErrShed) {
		t.Fatalf("shed err = %v, want ErrShed", err)
	}
	sheds++
	// Open breaker, ghosted key: stale hit, loader never runs.
	var calls atomic.Int64
	counting := func(uint64) (any, replacement.Cost, error) {
		calls.Add(1)
		return nil, 0, boom
	}
	v, stale, err := e.GetOrLoadStale(1, counting)
	if err != nil || !stale || v != "cached" || calls.Load() != 0 {
		t.Fatalf("ghost serve = (%v, %v, %v), calls %d", v, stale, err, calls.Load())
	}

	sheds++ // the ghost serve above was itself a shed
	st := e.Stats()
	if st.Shed != sheds || st.StaleServed != 1 {
		t.Fatalf("stats = %+v, want %d shed / 1 stale_served", st, sheds)
	}
	if c := reg.Counter(obs.Name("engine_breaker_opened", "class", "cost=8")); c.Value() != 1 {
		t.Fatalf("breaker opened counter = %d, want 1", c.Value())
	}
	d := e.ResilienceDebugSnapshot()
	if d == nil || !d.ServeStale || d.Shed != sheds || len(d.Breakers) != 1 || d.Breakers[0].State != "open" {
		t.Fatalf("resilience debug = %+v", d)
	}
}

// TestRetryBudgetScalesWithCost drives one expensive and one cheap key
// through a permanently failing loader: the class at RefCost earns the full
// retry budget, the cheap class none.
func TestRetryBudgetScalesWithCost(t *testing.T) {
	classify := func(key uint64) replacement.Cost {
		if key == 100 {
			return 8
		}
		return 1
	}
	e, _ := resEngine(t,
		Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory},
		resilience.Config{MaxRetries: 3, RefCost: 8, Classify: classify})

	boom := errors.New("backend down")
	var calls atomic.Int64
	failing := func(uint64) (any, replacement.Cost, error) {
		calls.Add(1)
		return nil, 0, boom
	}

	if _, err := e.GetOrLoad(100, failing); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("expensive key attempts = %d, want 4 (1 + 3 retries)", n)
	}
	calls.Store(0)
	if _, err := e.GetOrLoad(5, failing); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("cheap key attempts = %d, want 1 (no retry budget)", n)
	}
	if st := e.Stats(); st.LoadRetries != 3 {
		t.Fatalf("load_retries = %d, want 3", st.LoadRetries)
	}
}

// TestResilientPathMatchesLegacyCounters replays the same deterministic mix
// through a legacy engine and one with resilience enabled but never
// triggered (no deadline, healthy loader): every Stats field must agree, so
// the degraded-mode plumbing is proven invisible until something fails.
func TestResilientPathMatchesLegacyCounters(t *testing.T) {
	run := func(rc *resilience.Config) Stats {
		cfg := Config{Shards: 2, Sets: 16, Ways: 2, Policy: lruFactory, Shadow: true}
		if rc != nil {
			cfg.Resilience = resilience.New(*rc, nil)
		}
		e := New(cfg)
		for i := 0; i < 4000; i++ {
			k := uint64(i*2654435761) % 96
			if _, err := e.GetOrLoad(k, constLoader(k, replacement.Cost(1+k%8))); err != nil {
				t.Fatal(err)
			}
		}
		return e.Stats()
	}
	legacy := run(nil)
	resilient := run(&resilience.Config{
		MaxRetries: 3, RefCost: 8, BreakerRate: 0.5, ServeStale: true,
		Classify: func(key uint64) replacement.Cost { return replacement.Cost(1 + key%8) },
	})
	if legacy != resilient {
		t.Fatalf("stats diverged:\nlegacy    %+v\nresilient %+v", legacy, resilient)
	}
	if legacy.LoadTimeouts+legacy.LoadRetries+legacy.Shed+legacy.StaleServed != 0 {
		t.Fatalf("healthy run touched resilience counters: %+v", legacy)
	}
}

// TestResilientHammer floods a resilient engine (short deadline, flaky
// loader, breakers, serve-stale all on) from many goroutines — the -race
// sweep for the new flight/ghost paths. The counter identity must survive
// every degraded outcome.
func TestResilientHammer(t *testing.T) {
	boom := errors.New("flaky")
	e, _ := resEngine(t,
		Config{Shards: 4, Sets: 32, Ways: 2, Policy: lruFactory},
		resilience.Config{
			Deadline: 2 * time.Millisecond, MaxRetries: 2, RefCost: 8,
			BreakerRate: 0.6, BreakerWindow: 32, BreakerMin: 8, BreakerCooldown: 64,
			ServeStale: true,
			Classify:   func(key uint64) replacement.Cost { return replacement.Cost(1 + key%8) },
		})
	var wg sync.WaitGroup
	const goroutines, opsEach = 16, 500
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := uint64((g*17 + i) % 256)
				load := func(k uint64) (any, replacement.Cost, error) {
					if (k+uint64(i))%3 == 0 {
						return nil, 0, boom
					}
					if k%7 == 0 {
						time.Sleep(4 * time.Millisecond) // past the deadline
					}
					return k, replacement.Cost(1 + k%8), nil
				}
				v, stale, err := e.GetOrLoadStale(key, load)
				if err == nil && !stale && v != key {
					t.Errorf("key %d: fresh value %v", key, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if total := st.Hits + st.Misses + st.Coalesced; total != goroutines*opsEach {
		t.Fatalf("hits+misses+coalesced = %d, want %d (stats %+v)", total, goroutines*opsEach, st)
	}
}

// TestDebugEngineResilienceSchema locks the /debug/engine resilience block's
// key set, the same way TestDebugEngineSchema locks the core document.
func TestDebugEngineResilienceSchema(t *testing.T) {
	e, _ := resEngine(t,
		Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory},
		resilience.Config{BreakerRate: 0.5, ServeStale: true,
			Classify: func(uint64) replacement.Cost { return 4 }})
	if _, err := e.GetOrLoad(1, constLoader("v", 4)); err != nil {
		t.Fatal(err)
	}
	d := e.ResilienceDebugSnapshot()
	if d == nil || len(d.Breakers) != 1 || d.Breakers[0].Class != "cost=4" {
		t.Fatalf("resilience snapshot = %+v", d)
	}
	legacy := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	if legacy.ResilienceDebugSnapshot() != nil {
		t.Fatal("legacy engine reports a resilience block")
	}
}
