// Package federate is the cluster half of the observability substrate: a
// scraper that polls every serving node's observability endpoint, mirrors
// the per-node metric series into one node-labeled federated registry and
// time-series store, derives cluster-level signals (global hit rate, cost
// per access, per-node skew, ring imbalance) and evaluates fleet-level
// alert rules (alert.FleetRules) over the merged store.
//
// Mirroring preserves base metric names — engine_hits{shard="0"} scraped
// from node 1 becomes engine_hits{node="1",shard="0"} — so every standard
// signal (tsdb.StandardSignals) evaluates cluster-globally on the federated
// store without modification: label variants of a base name aggregate in
// queries, and the node label only matters to the queries that group by it.
// On top of the mirrors, per-node rollups are derived at scrape time:
//
//	fed_lookups{node}       engine_hits + engine_misses
//	fed_hits{node}          engine_hits
//	fed_misses{node}        engine_misses
//	fed_coalesced{node}     engine_coalesced
//	fed_cost_paid{node}     engine_cost_paid
//	fed_shed{node}          engine_shed + server_shed
//	fed_breaker_opens{node} engine_breaker_opened
//	fed_scrapes{node}       successful scrapes of the node
//	fed_scrape_errors{node} failed scrapes of the node
//
// One label block per node is what lets Skew and SpreadRatio queries treat
// nodes as groups — the per-shard mirrors would otherwise split every node
// into shard-grained groups.
//
// Determinism: ScrapeOnce takes an explicit timestamp (like tsdb.Sample)
// and orders one scrape as fetch → create missing mirror counters (at
// zero) → Sample → apply fetched values → Eval. Creating before sampling
// pins every series' discovery baseline at zero, and applying after
// sampling lands each fetch's values wholly in the next sampled bucket —
// so a fixed workload scraped under a simulated clock produces
// byte-identical alert JSONL on every rerun, the property the CI cluster
// smoke pins.
package federate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"costcache/internal/obs"
	"costcache/internal/obs/alert"
	"costcache/internal/obs/tsdb"
)

// Config describes a Federator.
type Config struct {
	// Nodes are the per-node observability addresses ("host:port" or full
	// "http://host:port" base URLs) — the listeners serving /metrics,
	// /debug/engine and /debug/alerts. At least one. Node i is labeled
	// node="i" in the federated store, matching the ring's node indexing
	// when the list is in ring order.
	Nodes []string
	// Step is the federated store's finest resolution step (0 = 1s).
	Step time.Duration
	// Rules are the fleet alert rules (nil = alert.FleetRules(2×Step... see
	// DefaultRuleWindow)). Pass an explicit empty slice for no rules.
	Rules []Rule
	// Timeout bounds each per-node HTTP fetch (0 = 2s).
	Timeout time.Duration
	// Client overrides the HTTP client (nil = one built from Timeout).
	Client *http.Client
}

// Rule aliases alert.Rule so callers configuring a Federator do not need to
// import the alert package for the common case.
type Rule = alert.Rule

// DefaultRuleWindow returns the fleet rules' evaluation window for a scrape
// step: two steps, the shortest fully coverable window that still tolerates
// one missed scrape.
func DefaultRuleWindow(step time.Duration) time.Duration { return 2 * step }

// nodeState is one node's scrape bookkeeping.
type nodeState struct {
	addr string // base URL
	name string // node label value (the ring index)

	scrapes    *obs.Counter
	scrapeErrs *obs.Counter

	mu      sync.Mutex
	up      bool
	lastErr string
	engine  json.RawMessage // last /debug/engine document
	alerts  json.RawMessage // last /debug/alerts document
	series  json.RawMessage // last /debug/timeseries document
	totals  nodeTotals
}

// nodeTotals are the node's summed engine counters as of the last scrape.
type nodeTotals struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	CostPaid  int64 `json:"cost_paid"`
	Shed      int64 `json:"shed"`
}

// Federator owns the federated registry, store and fleet alert engine, and
// scrapes a fixed node set into them.
type Federator struct {
	nodes  []*nodeState
	reg    *obs.Registry
	store  *tsdb.Store
	alerts *alert.Engine
	client *http.Client

	mu       sync.Mutex
	mirrors  map[string]*obs.Counter // federated name → mirror counter
	pending  []apply                 // values fetched this scrape, applied post-Sample
	lastTime time.Time
}

// apply is one deferred counter assignment.
type apply struct {
	c *obs.Counter
	v int64
}

// New validates cfg and builds a Federator (no scraping yet).
func New(cfg Config) (*Federator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("federate: at least one node required")
	}
	if cfg.Step <= 0 {
		cfg.Step = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Rules == nil {
		cfg.Rules = alert.FleetRules(DefaultRuleWindow(cfg.Step))
	}
	f := &Federator{
		reg:     obs.NewRegistry(),
		client:  cfg.Client,
		mirrors: make(map[string]*obs.Counter),
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: cfg.Timeout}
	}
	f.store = tsdb.New(tsdb.Config{Registry: f.reg, Resolutions: tsdb.Resolutions(cfg.Step)})
	f.alerts = alert.New(f.store, cfg.Rules)
	for i, addr := range cfg.Nodes {
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		name := strconv.Itoa(i)
		f.nodes = append(f.nodes, &nodeState{
			addr:       strings.TrimRight(addr, "/"),
			name:       name,
			scrapes:    f.reg.Counter(obs.Name("fed_scrapes", "node", name)),
			scrapeErrs: f.reg.Counter(obs.Name("fed_scrape_errors", "node", name)),
		})
	}
	return f, nil
}

// Registry returns the federated registry (mirrors + fed_* rollups).
func (f *Federator) Registry() *obs.Registry { return f.reg }

// Store returns the federated time-series store.
func (f *Federator) Store() *tsdb.Store { return f.store }

// Alerts returns the fleet alert engine.
func (f *Federator) Alerts() *alert.Engine { return f.alerts }

// LastTime returns the timestamp of the last ScrapeOnce.
func (f *Federator) LastTime() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastTime
}

// ScrapeOnce performs one federation round at the given timestamp: fetch
// every node, mirror new series (at zero), sample the store, apply the
// fetched values, evaluate the fleet rules. Per-node fetch failures are
// recorded (fed_scrape_errors{node}) without failing the round — a down
// node's mirrors simply stop moving. The returned error is reserved for
// future whole-round failures; it is currently always nil.
func (f *Federator) ScrapeOnce(now time.Time) error {
	for _, n := range f.nodes {
		f.scrapeNode(n)
	}
	f.mu.Lock()
	pending := f.pending
	f.pending = nil
	f.lastTime = now
	f.mu.Unlock()
	f.store.Sample(now)
	for _, a := range pending {
		a.c.Add(a.v - a.c.Value())
	}
	f.alerts.Eval(now)
	return nil
}

// Start drives ScrapeOnce on a wall-clock ticker until stop is closed.
// Deterministic harnesses skip Start and call ScrapeOnce themselves.
func (f *Federator) Start(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			f.ScrapeOnce(now)
		case <-stop:
			return
		}
	}
}

// scrapeNode fetches one node's /metrics (the series source) plus its
// /debug/engine, /debug/alerts and /debug/timeseries documents, queueing
// mirror updates for the post-Sample apply phase.
func (f *Federator) scrapeNode(n *nodeState) {
	text, err := f.fetch(n.addr + "/metrics")
	if err != nil {
		n.scrapeErrs.Inc()
		n.mu.Lock()
		n.up, n.lastErr = false, err.Error()
		n.mu.Unlock()
		return
	}
	parsed, totals := parseMetrics(string(text))
	f.mu.Lock()
	for _, kv := range parsed {
		name := federatedName(kv.name, n.name)
		c, ok := f.mirrors[name]
		if !ok {
			c = f.reg.Counter(name)
			f.mirrors[name] = c
		}
		f.pending = append(f.pending, apply{c, kv.value})
	}
	for _, r := range [...]struct {
		base string
		v    int64
	}{
		{"fed_lookups", totals.hits + totals.misses},
		{"fed_hits", totals.hits},
		{"fed_misses", totals.misses},
		{"fed_coalesced", totals.coalesced},
		{"fed_cost_paid", totals.costPaid},
		{"fed_shed", totals.engineShed + totals.serverShed},
		{"fed_breaker_opens", totals.breakerOpens},
	} {
		name := obs.Name(r.base, "node", n.name)
		c, ok := f.mirrors[name]
		if !ok {
			c = f.reg.Counter(name)
			f.mirrors[name] = c
		}
		f.pending = append(f.pending, apply{c, r.v})
	}
	f.mu.Unlock()
	n.scrapes.Inc()

	// The debug documents are payload passthroughs, not series sources:
	// fetch failures leave the previous document in place.
	engine, _ := f.fetch(n.addr + "/debug/engine")
	alerts, _ := f.fetch(n.addr + "/debug/alerts")
	series, _ := f.fetch(n.addr + "/debug/timeseries?n=1")
	n.mu.Lock()
	n.up, n.lastErr = true, ""
	if engine != nil {
		n.engine = engine
	}
	if alerts != nil {
		n.alerts = alerts
	}
	if series != nil {
		n.series = series
	}
	n.totals = nodeTotals{
		Hits:      totals.hits,
		Misses:    totals.misses,
		Coalesced: totals.coalesced,
		CostPaid:  totals.costPaid,
		Shed:      totals.engineShed + totals.serverShed,
	}
	n.mu.Unlock()
}

func (f *Federator) fetch(url string) ([]byte, error) {
	resp, err := f.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("federate: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// metricKV is one parsed exposition line.
type metricKV struct {
	name  string
	value int64
}

// scrapeTotals accumulates the engine/server counter sums the fed_* rollups
// derive from.
type scrapeTotals struct {
	hits, misses, coalesced int64
	costPaid                int64
	engineShed, serverShed  int64
	breakerOpens            int64
}

// parseMetrics parses the plain-text exposition format obs.WriteText emits:
// one "name value" line per instrument, histogram bucket lines optionally
// suffixed with a "# {...}" exemplar. Histogram bucket series are skipped
// (windowed quantiles do not survive cumulative re-bucketing across a
// scrape boundary); counter and gauge lines mirror as-is.
func parseMetrics(text string) ([]metricKV, scrapeTotals) {
	var out []metricKV
	var t scrapeTotals
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimRight(line[:i], " ")
		}
		sp := strings.IndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		name, vs := line[:sp], line[sp+1:]
		v, err := strconv.ParseInt(vs, 10, 64)
		if err != nil {
			continue
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if strings.HasSuffix(base, "_bucket") {
			continue
		}
		out = append(out, metricKV{name, v})
		switch base {
		case "engine_hits":
			t.hits += v
		case "engine_misses":
			t.misses += v
		case "engine_coalesced":
			t.coalesced += v
		case "engine_cost_paid":
			t.costPaid += v
		case "engine_shed":
			t.engineShed += v
		case "server_shed":
			t.serverShed += v
		case "engine_breaker_opened":
			t.breakerOpens += v
		}
	}
	return out, t
}

// federatedName injects the node label into a scraped metric name:
// engine_hits{shard="0"} from node 1 → engine_hits{node="1",shard="0"},
// server_shed → server_shed{node="1"}.
func federatedName(name, node string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + `{node="` + node + `",` + name[i+1:]
	}
	return name + `{node="` + node + `"}`
}
