package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// resolutionPayload is one ring's worth of rendered signals.
type resolutionPayload struct {
	StepMS    int64                `json:"step_ms"`
	Slots     int                  `json:"slots"`
	Buckets   int                  `json:"buckets"`     // completed buckets rendered
	EndUnixMS int64                `json:"end_unix_ms"` // end time of the last rendered bucket
	Signals   map[string][]float64 `json:"signals"`     // signal name → per-bucket values, oldest first
	Windowed  map[string]float64   `json:"windowed"`    // signal name → value over the full rendered window
}

type timeseriesPayload struct {
	Samples     int64               `json:"samples"`
	LastUnixMS  int64               `json:"last_unix_ms"`
	Resolutions []resolutionPayload `json:"resolutions"`
}

// Handler serves the store's standard signals as JSON at /debug/timeseries.
// Query parameters: n caps the number of trailing buckets rendered per
// resolution (default 60).
func Handler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 60
		if v := r.URL.Query().Get("n"); v != "" {
			if p, err := strconv.Atoi(v); err == nil && p > 0 {
				n = p
			}
		}
		sigs := StandardSignals()
		out := timeseriesPayload{Samples: s.Samples()}
		if t := s.LastTime(); !t.IsZero() {
			out.LastUnixMS = t.UnixNano() / int64(time.Millisecond)
		}
		for ri := 0; ri < s.NumResolutions(); ri++ {
			res := s.ResolutionAt(ri)
			rp := resolutionPayload{
				StepMS:   int64(res.Step / time.Millisecond),
				Slots:    res.Slots,
				Signals:  make(map[string][]float64, len(sigs)),
				Windowed: make(map[string]float64, len(sigs)),
			}
			for _, sig := range sigs {
				points, end := s.SeriesPoints(sig.Query, ri, n)
				if points == nil {
					continue
				}
				rp.Signals[sig.Name] = points
				if len(points) > rp.Buckets {
					rp.Buckets = len(points)
				}
				if !end.IsZero() {
					rp.EndUnixMS = end.UnixNano() / int64(time.Millisecond)
				}
				if v, _, ok := s.Value(sig.Query, ri, time.Duration(n)*res.Step); ok {
					rp.Windowed[sig.Name] = v
				}
			}
			out.Resolutions = append(out.Resolutions, rp)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
