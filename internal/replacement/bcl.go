package replacement

import "fmt"

// BCL is the Basic Cost-sensitive LRU algorithm (Section 2.3, Figure 1).
//
// The blockframe in the LRU position carries one extra depreciating cost
// field, Acost, loaded with the block's miss cost whenever a new block enters
// the LRU position. To pick a victim, BCL scans the LRU stack from the
// second-LRU position toward the MRU and victimizes the first block whose
// cost is below Acost, thereby reserving the LRU blockframe; Acost is
// depreciated by twice the victim's cost on every such reservation ("using
// twice the cost ... accelerates the depreciation of the high cost", a hedge
// against the bet that the reserved block will be referenced again). When no
// block undercuts Acost, the LRU block itself is evicted.
type BCL struct {
	stackBase
	acost []Cost // per set: depreciated cost of the block in the LRU position
	lruW  []int  // per set: way of the tracked LRU occupant (-1 none)
	lruT  []uint64

	factor Cost // depreciation multiplier (the paper uses 2)

	invoked   int64
	succeeded int64
	reserved  []bool // per set: has the current LRU occupant been reserved?

	obs Observer
}

// SetObserver implements Observable.
func (p *BCL) SetObserver(o Observer) { p.obs = o }

// NewBCL returns a fresh BCL policy with the paper's 2x depreciation.
func NewBCL() *BCL { return &BCL{factor: 2} }

// NewBCLWithFactor returns BCL with a custom depreciation multiplier, for
// the ablation the paper motivates ("using twice the cost instead of once
// the cost is safer"). factor must be positive.
func NewBCLWithFactor(factor int) *BCL {
	if factor <= 0 {
		panic("replacement: BCL depreciation factor must be positive")
	}
	return &BCL{factor: Cost(factor)}
}

// Name implements Policy. Non-default depreciation factors render as
// "BCL-f<N>" so ablation runs stay distinguishable in traces and manifests.
func (p *BCL) Name() string {
	if p.factor != 2 {
		return fmt.Sprintf("BCL-f%d", p.factor)
	}
	return "BCL"
}

// Reset implements Policy.
func (p *BCL) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.acost = make([]Cost, sets)
	p.lruW = make([]int, sets)
	p.lruT = make([]uint64, sets)
	p.reserved = make([]bool, sets)
	for i := range p.lruW {
		p.lruW[i] = -1
	}
	p.invoked, p.succeeded = 0, 0
}

// refreshLRU reloads Acost if the occupant of the LRU position changed
// ("upon_entering_LRU_position: Acost <- c[s]", Figure 1).
func (p *BCL) refreshLRU(set int) {
	m := p.set(set)
	w, tag, ok := m.lruIdent()
	if !ok {
		p.lruW[set] = -1
		p.reserved[set] = false
		return
	}
	if w != p.lruW[set] || tag != p.lruT[set] {
		p.lruW[set], p.lruT[set] = w, tag
		p.acost[set] = m.cost[w]
		p.reserved[set] = false
	}
}

// Access implements Policy.
func (p *BCL) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy.
func (p *BCL) Touch(set, way int) {
	m := p.set(set)
	if p.reserved[set] && way == p.lruW[set] {
		p.succeeded++ // the reserved block was re-referenced
		if p.obs != nil {
			p.obs.Observe(Event{Kind: EvReserveSuccess, Set: set, Way: way,
				StackPos: -1, Tag: p.lruT[set], Cost: m.cost[way]})
		}
	}
	m.touch(way)
	p.refreshLRU(set)
}

// Victim implements Policy, following Figure 1 of the paper: scan stack
// positions s-1 .. 1 (second-LRU toward MRU; 0-indexed: live-2 .. 0) for the
// first block with cost below Acost; reserve the LRU blockframe by
// victimizing it and depreciate Acost by twice its cost. Otherwise evict the
// LRU block.
func (p *BCL) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	lru := m.lruWay()
	for pos := m.live - 2; pos >= 0; pos-- {
		w := m.stack[pos]
		if m.cost[w] < p.acost[set] {
			p.acost[set] -= p.factor * m.cost[w]
			if !p.reserved[set] {
				p.reserved[set] = true
				p.invoked++
				if p.obs != nil {
					p.obs.Observe(Event{Kind: EvReserveOpen, Set: set, Way: lru,
						StackPos: m.live - 1, Tag: p.lruT[set], Cost: m.cost[lru]})
				}
			}
			if p.obs != nil {
				p.obs.Observe(Event{Kind: EvEvict, Set: set, Way: w, StackPos: pos,
					Tag: m.tag[w], Cost: m.cost[w], LRUCost: m.cost[lru]})
			}
			return w
		}
	}
	if p.obs != nil {
		if p.reserved[set] {
			// The reserved block is evicted without having been re-referenced.
			p.obs.Observe(Event{Kind: EvReserveAbandon, Set: set, Way: lru,
				StackPos: m.live - 1, Tag: p.lruT[set], Cost: m.cost[lru]})
		}
		p.obs.Observe(Event{Kind: EvEvict, Set: set, Way: lru, StackPos: m.live - 1,
			Tag: m.tag[lru], Cost: m.cost[lru], LRUCost: m.cost[lru]})
	}
	return lru
}

// Fill implements Policy.
func (p *BCL) Fill(set, way int, tag uint64, cost Cost) {
	p.set(set).fill(way, tag, cost)
	p.refreshLRU(set)
}

// Invalidate implements Policy.
func (p *BCL) Invalidate(set, way int, tag uint64) {
	if way < 0 {
		return
	}
	if p.obs != nil && p.reserved[set] && way == p.lruW[set] {
		p.obs.Observe(Event{Kind: EvReserveCancel, Set: set, Way: way,
			StackPos: -1, Tag: tag, Cost: p.set(set).cost[way]})
	}
	p.set(set).invalidate(way)
	p.refreshLRU(set)
}

// Reservations implements ReservationStats.
func (p *BCL) Reservations() (invoked, succeeded int64) { return p.invoked, p.succeeded }

// Acost exposes the current depreciated cost of the reserved LRU block of a
// set, for tests and visualization.
func (p *BCL) Acost(set int) Cost { return p.acost[set] }
