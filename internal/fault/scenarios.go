package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Scenario periods: faults recur every cycleNs with a scenario-specific duty
// so plans stress any run length — a quick smoke (a couple of simulated
// milliseconds) sees dozens of fault windows, a full run thousands.
const cycleNs = 100_000

// scenarios maps each named degradation scenario to its generator.
var scenarios = map[string]func(r *rand.Rand, dim int, p *Plan){
	// link-brownout: three nodes' outgoing links run 3-6x slower in
	// recurring windows — every remote message those nodes send is hit.
	"link-brownout": func(r *rand.Rand, dim int, p *Plan) {
		for _, node := range pickNodes(r, dim*dim, 3) {
			start := int64(r.Intn(cycleNs / 2))
			p.Links = append(p.Links, LinkFault{
				Node:     node,
				Dir:      "any",
				Window:   Window{StartNs: start, EndNs: start + cycleNs/2, PeriodNs: cycleNs},
				Slowdown: 3 + float64(r.Intn(4)),
			})
		}
	},
	// link-outage: two nodes' outgoing links go dark for a quarter of every
	// cycle; their traffic NACKs and retries with capped exponential
	// backoff.
	"link-outage": func(r *rand.Rand, dim int, p *Plan) {
		for _, node := range pickNodes(r, dim*dim, 2) {
			start := int64(r.Intn(cycleNs / 2))
			p.Links = append(p.Links, LinkFault{
				Node:   node,
				Dir:    "any",
				Window: Window{StartNs: start, EndNs: start + cycleNs/4, PeriodNs: cycleNs},
				Outage: true,
			})
		}
	},
	// hot-dir: a quarter of the home directories run hot (every lookup pays
	// extra occupancy) for half of every cycle.
	"hot-dir": func(r *rand.Rand, dim int, p *Plan) {
		nodes := dim * dim
		for _, node := range pickNodes(r, nodes, (nodes+3)/4) {
			start := int64(r.Intn(cycleNs / 2))
			p.Dirs = append(p.Dirs, HotFault{
				Node:    node,
				Window:  Window{StartNs: start, EndNs: start + cycleNs/2, PeriodNs: cycleNs},
				ExtraNs: 100 + int64(r.Intn(200)),
			})
		}
	},
	// hot-bank: a quarter of the nodes' memory banks stall on every access
	// for a third of every cycle.
	"hot-bank": func(r *rand.Rand, dim int, p *Plan) {
		nodes := dim * dim
		for _, node := range pickNodes(r, nodes, (nodes+3)/4) {
			start := int64(r.Intn(cycleNs / 2))
			p.Banks = append(p.Banks, HotFault{
				Node:    node,
				Bank:    -1,
				Window:  Window{StartNs: start, EndNs: start + cycleNs/3, PeriodNs: cycleNs},
				ExtraNs: 120 + int64(r.Intn(120)),
			})
		}
	},
	// slow-node: three whole nodes degrade — every L2 miss they issue pays
	// a few hundred extra nanoseconds — for half of every cycle.
	"slow-node": func(r *rand.Rand, dim int, p *Plan) {
		for _, node := range pickNodes(r, dim*dim, 3) {
			start := int64(r.Intn(cycleNs / 2))
			p.Nodes = append(p.Nodes, NodeFault{
				Node:    node,
				Window:  Window{StartNs: start, EndNs: start + cycleNs/2, PeriodNs: cycleNs},
				ExtraNs: 300 + int64(r.Intn(500)),
			})
		}
	},
}

// pickNodes draws k distinct node ids from the lower half of the mesh. The
// paper's workloads run 8 processors on the 16-node mesh and first-touch
// homes land on the active processors, so low node ids are where faults
// actually meet traffic; an unbiased draw regularly afflicts idle corners.
func pickNodes(r *rand.Rand, nodes, k int) []int {
	if nodes > 2 {
		nodes /= 2
	}
	if k > nodes {
		k = nodes
	}
	return r.Perm(nodes)[:k]
}

// ScenarioNames lists the named scenarios, sorted, with "mixed" last.
func ScenarioNames() []string {
	names := make([]string, 0, len(scenarios)+1)
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return append(names, "mixed")
}

// Scenario builds a deterministic plan for a named degradation scenario on a
// dim x dim mesh. The same (name, seed, dim) always yields the same plan;
// different seeds vary the afflicted links, nodes and window phases. "mixed"
// layers every scenario into one plan.
func Scenario(name string, seed uint64, dim int) (*Plan, error) {
	p := &Plan{Name: name, Seed: seed, Retry: DefaultRetry()}
	r := rand.New(rand.NewSource(int64(seed)*2654435761 + int64(dim)))
	if name == "mixed" {
		for _, n := range ScenarioNames() {
			if gen, ok := scenarios[n]; ok {
				gen(r, dim, p)
			}
		}
	} else {
		gen, ok := scenarios[name]
		if !ok {
			return nil, fmt.Errorf("fault: unknown scenario %q (valid: %s)",
				name, strings.Join(ScenarioNames(), ", "))
		}
		gen(r, dim, p)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
