package loadgen

import (
	"sync/atomic"
	"testing"

	"costcache/internal/engine"
	"costcache/internal/obs"
	"costcache/internal/replacement"
)

func dclFactory() replacement.Policy { return replacement.NewDCL() }

// TestClosedLoopDeterministicAcrossShardCounts is the engine's core
// reproducibility guarantee: a same-seed single-worker closed-loop run
// produces identical hit/miss/cost counters at every shard count, because
// key→set placement and per-set policy state never depend on sharding.
func TestClosedLoopDeterministicAcrossShardCounts(t *testing.T) {
	cfg := Config{
		Mode: Closed, Workers: 1, Ops: 20000,
		Keys: 4096, ZipfS: 1.2, Seed: 7,
	}
	var ref engine.Stats
	for i, shards := range []int{1, 4, 16} {
		e := engine.New(engine.Config{
			Shards: shards, Sets: 256, Ways: 4, Policy: dclFactory, Shadow: true,
		})
		res, err := Run(e, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		st.LockWaitNs = 0 // timing, legitimately varies
		if i == 0 {
			ref = st
			if ref.Hits == 0 || ref.Misses == 0 || ref.CostPaid == 0 || ref.ShadowCost == 0 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			continue
		}
		if st != ref {
			t.Fatalf("shards=%d diverged:\n got %+v\nwant %+v", shards, st, ref)
		}
	}
}

// TestClosedLoopDeterministicReplay checks the workload-replay stream the
// same way on the smallest benchmark trace.
func TestClosedLoopDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation in -short")
	}
	cfg := Config{Mode: Closed, Workers: 1, Ops: 10000, Workload: "LU", Seed: 3}
	var ref engine.Stats
	for i, shards := range []int{1, 8} {
		e := engine.New(engine.Config{
			Shards: shards, Sets: 128, Ways: 4, Policy: dclFactory, Shadow: true,
		})
		res, err := Run(e, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		st.LockWaitNs = 0
		if i == 0 {
			ref = st
			continue
		}
		if st != ref {
			t.Fatalf("shards=%d diverged:\n got %+v\nwant %+v", shards, st, ref)
		}
	}
}

func TestOpenLoopSmoke(t *testing.T) {
	e := engine.New(engine.Config{Shards: 4, Sets: 64, Ways: 4, Policy: dclFactory, Shadow: true})
	res, err := Run(e, Config{
		Mode: Open, Workers: 4, Ops: 2000, Rate: 50000,
		Keys: 1024, ZipfS: 1.3, Seed: 9,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("completed %d ops, want 2000", res.Ops)
	}
	if res.Latency.Count != res.Ops {
		t.Fatalf("latency histogram holds %d samples, want %d", res.Latency.Count, res.Ops)
	}
	if res.Throughput <= 0 || res.P99Ns < res.P50Ns {
		t.Fatalf("bad derived figures: %+v", res)
	}
	st := res.Stats
	if st.Hits+st.Misses+st.Coalesced != res.Ops {
		t.Fatalf("counter total %d != ops %d", st.Hits+st.Misses+st.Coalesced, res.Ops)
	}
}

func TestRunValidation(t *testing.T) {
	e := engine.New(engine.Config{Shards: 1, Sets: 8, Ways: 2})
	if _, err := Run(e, Config{Mode: "sideways"}, nil); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := Run(e, Config{Mode: Open}, nil); err == nil {
		t.Fatal("open loop without rate accepted")
	}
	if _, err := Run(e, Config{Workload: "NoSuchBench"}, nil); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStoppedInterruptsRun(t *testing.T) {
	e := engine.New(engine.Config{Shards: 1, Sets: 64, Ways: 4})
	var n atomic.Int64
	stopped := func() bool { return n.Add(1) > 3 }
	res, err := Run(e, Config{Mode: Closed, Workers: 2, Ops: 1000000, Keys: 1024}, stopped)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("run not marked interrupted")
	}
	if res.Ops >= 1000000 {
		t.Fatal("run did not stop early")
	}
}

// TestRegistryAndOnDoneHooks covers the live-telemetry wiring: with a
// Registry the latency histogram registers as request_latency_ns, and
// OnDone reports each completed op with a monotone total — the hook
// cachebench uses to advance the simulated telemetry clock every N ops.
func TestRegistryAndOnDoneHooks(t *testing.T) {
	reg := obs.NewRegistry()
	var calls []int64
	cfg := Config{
		Mode: Closed, Workers: 1, Ops: 500,
		Keys: 256, Seed: 3,
		Registry: reg,
		OnDone:   func(n int64) { calls = append(calls, n) },
	}
	e := engine.New(engine.Config{Shards: 2, Sets: 64, Ways: 4, Policy: dclFactory})
	res, err := Run(e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 {
		t.Fatalf("ops = %d, want 500", res.Ops)
	}
	if int64(len(calls)) != res.Ops {
		t.Fatalf("OnDone called %d times, want %d", len(calls), res.Ops)
	}
	for i, n := range calls {
		if n != int64(i+1) {
			t.Fatalf("OnDone[%d] = %d, want %d (single worker is in-order)", i, n, i+1)
		}
	}
	h := reg.Histogram("request_latency_ns", nil)
	if h.Count() != res.Ops {
		t.Fatalf("registry histogram count = %d, want %d", h.Count(), res.Ops)
	}
}
