// Command numasim runs the execution-driven CC-NUMA simulation of Section 4
// on one benchmark and prints execution time and memory behaviour under a
// chosen L2 replacement policy, with the LRU baseline for comparison.
//
// Usage:
//
//	numasim -bench Barnes -policy DCL [-mhz 500|1000] [-nohints] [-table3] [-quick]
//	numasim -bench Barnes -policy DCL -span.trace trace.json -span.jsonl spans.jsonl
//	numasim -bench Barnes -policy DCL -manifest results/manifest.json
//	numasim -bench Barnes -policy DCL -fault.scenario link-outage -fault.seed 7
//	numasim -bench Barnes -policy DCL -fault.plan plan.json
//
// -span.trace / -span.jsonl attach the miss-lifecycle tracer to the policy
// run: every L2 miss becomes a span recording MSHR wait, lookup, network,
// directory, memory, forward, invalidation and reply stages in simulated
// time. trace.json is Chrome trace-event JSON (load it at ui.perfetto.dev or
// chrome://tracing), spans.jsonl one JSON object per miss. Either flag also
// prints the per-class latency breakdown and reconciles the span counts
// against the per-node miss counters (the run fails on mismatch). -manifest
// writes a self-describing run manifest for cmd/report.
//
// -fault.plan / -fault.scenario inject a deterministic fault plan (see
// docs/FAULTS.md) into BOTH the policy run and the LRU baseline, so the
// comparison stays fault-for-fault fair; the manifest records the plan hash
// and the NACK/retry/backoff counters. SIGINT/SIGTERM stop the run at the
// next reference boundary, flush a partial manifest marked
// "interrupted": true, and exit 130.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"costcache/internal/cli"
	"costcache/internal/fault"
	"costcache/internal/manifest"
	"costcache/internal/numasim"
	"costcache/internal/obs"
	"costcache/internal/obs/span"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("numasim: ")
	bench := flag.String("bench", "Barnes", "benchmark name")
	policy := flag.String("policy", "DCL", "L2 policy: any registry name (LRU, GD, BCL, DCL, ACL, DCL-a4, ACL-a4, ...)")
	mhz := flag.Int("mhz", 500, "processor clock in MHz (500 or 1000)")
	nohints := flag.Bool("nohints", false, "disable replacement hints")
	table3 := flag.Bool("table3", false, "print the consecutive-miss latency matrix")
	penalty := flag.Bool("penalty", false, "predict miss PENALTY instead of latency as the cost")
	quick := flag.Bool("quick", false, "scale the workload down for a fast smoke run")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address")
	obsDump := flag.Bool("obs.dump", false, "dump the metrics registry as text after the run")
	spanTrace := flag.String("span.trace", "", "write the policy run's miss spans as Chrome trace-event JSON to this file")
	spanJSONL := flag.String("span.jsonl", "", "write the policy run's miss spans as JSONL to this file")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file")
	ff := cli.FaultFlags{
		Plan:     flag.String("fault.plan", "", "inject the fault plan in this JSON file (docs/FAULTS.md)"),
		Scenario: flag.String("fault.scenario", "", "inject a named fault scenario (link-brownout, link-outage, hot-bank, hot-dir, slow-node, mixed)"),
		Seed:     flag.Uint64("fault.seed", 1, "fault scenario generator seed"),
	}
	flag.Parse()
	stopped := cli.Interrupt()

	if *obsListen != "" {
		srv, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s\n", srv.Addr())
	}

	g, ok := workload.ByName(*bench)
	if !ok {
		cli.BadFlag("numasim", "-bench", *bench, workload.Names())
	}
	if *quick {
		g = workload.Quick(g)
	}
	prog, _ := workload.ProgramOf(g)
	f, ok := replacement.ByName(*policy)
	if !ok {
		cli.BadFlag("numasim", "-policy", *policy, replacement.Names())
	}
	plan := ff.Resolve("numasim", numasim.DefaultConfig(nil).Net.Dim)

	mk := func(fac replacement.Factory) numasim.Config {
		cfg := numasim.DefaultConfig(fac)
		cfg.ClockMHz = *mhz
		cfg.Protocol.Hints = !*nohints
		cfg.CollectTable3 = *table3
		cfg.UsePenalty = *penalty
		cfg.Faults = plan
		cfg.Stop = stopped
		return cfg
	}

	// The miss-lifecycle tracer attaches to the policy run only.
	var tracer *span.Tracer
	var sinks []*spanSink
	if *spanTrace != "" || *spanJSONL != "" {
		jsonl := openSink(&sinks, *spanJSONL)
		chrome := openSink(&sinks, *spanTrace)
		tracer = span.NewTracer(jsonl, chrome)
	}

	cfg := mk(f)
	cfg.Metrics = obs.Default // instrument the policy run, not the LRU baseline
	cfg.Spans = tracer
	res := numasim.Run(prog, cfg)
	base := res
	if *policy != "LRU" {
		base = numasim.Run(prog, mk(func() replacement.Policy { return replacement.NewLRU() }))
	}

	title := fmt.Sprintf("%s on %d MHz, policy %s (hints=%v)", g.Name(), *mhz, *policy, !*nohints)
	if plan != nil {
		title += fmt.Sprintf(", faults=%s", plan.Name)
	}
	t := tabulate.New(title, "Metric", "LRU", *policy)
	t.AddF("execution time (us)", float64(base.ExecNs)/1000, float64(res.ExecNs)/1000)
	t.AddF("L2 misses", base.L2Misses, res.L2Misses)
	t.AddF("aggregate miss latency (us)", float64(base.AggMissNs)/1000, float64(res.AggMissNs)/1000)
	t.AddF("avg miss latency (ns)", base.AvgMissNs, res.AvgMissNs)
	t.AddF("invalidation msgs", base.Protocol.Invalidations, res.Protocol.Invalidations)
	t.AddF("forward nacks", base.Protocol.ForwardNacks, res.Protocol.ForwardNacks)
	if res.Faults != nil && base.Faults != nil {
		t.AddF("fault NACKs", base.Faults.Nacks, res.Faults.Nacks)
		t.AddF("fault backoff (us)", float64(base.Faults.BackoffNs)/1000, float64(res.Faults.BackoffNs)/1000)
		t.AddF("fault slowed hops", base.Faults.SlowedHops, res.Faults.SlowedHops)
		t.AddF("fault degraded misses", base.Faults.DegradedMisses, res.Faults.DegradedMisses)
	}
	t.Fprint(os.Stdout)
	if base.ExecNs > 0 {
		fmt.Printf("execution time reduction over LRU: %.2f%%\n",
			100*float64(base.ExecNs-res.ExecNs)/float64(base.ExecNs))
	}
	if res.Interrupted {
		fmt.Println("run interrupted: partial results up to the stop boundary")
	}

	if tracer != nil {
		if err := tracer.Close(); err != nil {
			log.Fatal(err)
		}
		for _, s := range sinks {
			s.close()
		}
		reconcileSpans(tracer, res)
		fmt.Println()
		tracer.Breakdown().Table(fmt.Sprintf("miss-latency breakdown of %s under %s (mean ns per miss)",
			g.Name(), *policy)).Fprint(os.Stdout)
		if *spanJSONL != "" {
			fmt.Printf("wrote %d spans to %s\n", tracer.Count(), *spanJSONL)
		}
		if *spanTrace != "" {
			fmt.Printf("wrote chrome trace to %s (load at ui.perfetto.dev)\n", *spanTrace)
		}
	}

	if *table3 && res.Table3 != nil {
		fmt.Println()
		res.Table3.Table().Fprint(os.Stdout)
		fmt.Printf("same-latency fraction: %.1f%%\n", res.Table3.SameLatencyFraction()*100)
	}

	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, g.Name(), *policy, *mhz, *quick, !*nohints, plan, res, base, tracer); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote manifest to %s\n", *manifestPath)
	}

	if *obsDump {
		fmt.Println()
		obs.Default.Snapshot().WriteText(os.Stdout)
	}
	if res.Interrupted || stopped() {
		os.Exit(cli.ExitInterrupted)
	}
}

// spanSink is one buffered span output file.
type spanSink struct {
	f  *os.File
	bw *bufio.Writer
}

func (s *spanSink) close() {
	if err := s.bw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := s.f.Close(); err != nil {
		log.Fatal(err)
	}
}

// openSink creates path (nil writer when path is empty) and tracks it for the
// post-run flush. It returns io.Writer, not *bufio.Writer: a typed-nil
// *bufio.Writer would pass the tracer's interface nil checks and crash on the
// first write when only one of the two sink flags is set.
func openSink(sinks *[]*spanSink, path string) io.Writer {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	s := &spanSink{f: f, bw: bufio.NewWriterSize(f, 1<<20)}
	*sinks = append(*sinks, s)
	return s.bw
}

// reconcileSpans cross-checks the tracer against the simulator: exactly one
// span per L2 miss, per node. A mismatch means the instrumentation drifted
// from the miss path and the artifacts cannot be trusted, so it is fatal.
func reconcileSpans(tr *span.Tracer, res numasim.Result) {
	counts := tr.NodeCounts()
	var total int64
	for i, ns := range res.PerNode {
		var got int64
		if i < len(counts) {
			got = counts[i]
		}
		if got != ns.Misses {
			log.Fatalf("span reconciliation: node %d has %d spans but %d L2 misses", i, got, ns.Misses)
		}
		total += got
	}
	if total != res.L2Misses || int64(tr.Count()) != res.L2Misses {
		log.Fatalf("span reconciliation: %d spans vs %d L2 misses", tr.Count(), res.L2Misses)
	}
	fmt.Printf("span reconciliation: %d spans == %d L2 misses across %d nodes\n",
		tr.Count(), res.L2Misses, len(res.PerNode))
}

// writeManifest captures the run configuration and headline metrics (policy
// run and LRU baseline) plus the latency breakdown when spans were traced
// and the fault-plan identity and counters when faults were injected.
func writeManifest(path, bench, policy string, mhz int, quick, hints bool,
	plan *fault.Plan, res, base numasim.Result, tr *span.Tracer) error {
	m := manifest.New("numasim")
	m.SetConfig("bench", bench)
	m.SetConfig("policy", policy)
	m.SetConfig("mhz", mhz)
	m.SetConfig("quick", quick)
	m.SetConfig("hints", hints)
	if res.Interrupted {
		m.MarkInterrupted()
	}
	if res.Faults != nil {
		cli.RecordFaults(m, plan, *res.Faults)
	}
	for label, r := range map[string]numasim.Result{"policy": res, "baseline-lru": base} {
		m.SetMetric(obs.Name("exec_ns", "run", label), float64(r.ExecNs))
		m.SetMetric(obs.Name("l2_misses", "run", label), float64(r.L2Misses))
		m.SetMetric(obs.Name("agg_miss_ns", "run", label), float64(r.AggMissNs))
		m.SetMetric(obs.Name("avg_miss_ns", "run", label), r.AvgMissNs)
	}
	if base.ExecNs > 0 {
		// Guard the division: an interrupt between the two runs can leave
		// the baseline empty, and Inf does not survive JSON encoding.
		m.SetMetric("exec_reduction_pct", 100*float64(base.ExecNs-res.ExecNs)/float64(base.ExecNs))
	}
	if tr != nil {
		m.SetMetric("spans", float64(tr.Count()))
		m.SetBreakdown(tr.Breakdown())
	}
	return m.WriteFile(path)
}
