package explain

import (
	"fmt"
	"io"

	"costcache/internal/tabulate"
)

// kindClassRows caps the kind×class refinement table — the ranking puts the
// biggest shifts first, so the tail is noise.
const kindClassRows = 12

// WriteText renders the report as ranked human-readable tables: the
// headline deltas, the decision-kind shifts ("why"), the per-class /
// per-shard / per-window contributions ("where"), notes and the invariant
// checklist.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "baseline:  %s (%s)\n", r.Baseline.Path, orDash(r.Baseline.Policy))
	fmt.Fprintf(w, "candidate: %s (%s)\n", r.Candidate.Path, orDash(r.Candidate.Policy))
	fmt.Fprintf(w, "hit rate  %7.4f%% -> %7.4f%%  (%+.4f pp)\n",
		100*r.Baseline.HitRate, 100*r.Candidate.HitRate, 100*r.DeltaHitRate)
	fmt.Fprintf(w, "cost paid %8d -> %8d  (%+d)\n\n",
		r.Baseline.CostPaid, r.Candidate.CostPaid, r.DeltaCost)

	if len(r.Kinds) > 0 {
		t := tabulate.New("decision-kind shifts (ranked by |delta|)",
			"policy", "kind", "baseline", "candidate", "delta")
		for _, k := range r.Kinds {
			t.AddF(k.Policy, k.Kind, k.Baseline, k.Candidate, fmt.Sprintf("%+d", k.Delta))
		}
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	if len(r.KindClasses) > 0 {
		t := tabulate.New(fmt.Sprintf("decision shifts by cost class (top %d)", kindClassRows),
			"policy", "kind", "class", "baseline", "candidate", "delta")
		for i, k := range r.KindClasses {
			if i == kindClassRows {
				break
			}
			t.AddF(k.Policy, k.Kind, k.Class, k.Baseline, k.Candidate, fmt.Sprintf("%+d", k.Delta))
		}
		t.Fprint(w)
		fmt.Fprintln(w)
	}
	r.writeContribTable(w, "cost-class contributions", r.Classes)
	r.writeContribTable(w, "shard contributions", r.Shards)
	r.writeContribTable(w, "time-window contributions", r.Windows)

	for _, n := range r.Notes {
		fmt.Fprintln(w, "note:", n)
	}
	for _, c := range r.Checks {
		status := "ok"
		if !c.OK {
			status = "FAILED"
		}
		fmt.Fprintf(w, "check: %s: %s", c.Name, status)
		if c.Detail != "" {
			fmt.Fprintf(w, " (%s)", c.Detail)
		}
		fmt.Fprintln(w)
	}
}

// writeContribTable renders one dimension's contribution rows; each row
// shows the group's traffic and cost on both sides, its exact share of the
// cost delta and its contribution to the hit-rate delta in percentage
// points.
func (r *Report) writeContribTable(w io.Writer, title string, rows []Contribution) {
	if len(rows) == 0 {
		return
	}
	t := tabulate.New(title+" (sum exactly to the manifest delta)",
		"group", "lookups b->c", "hits b->c", "cost b->c", "Δcost", "Δhit-rate pp")
	for _, c := range rows {
		t.Add(c.Group,
			fmt.Sprintf("%d -> %d", c.LookupsBase, c.LookupsCand),
			fmt.Sprintf("%d -> %d", c.HitsBase, c.HitsCand),
			fmt.Sprintf("%d -> %d", c.CostBase, c.CostCand),
			fmt.Sprintf("%+d", c.DeltaCost),
			fmt.Sprintf("%+.4f", 100*c.HitRateContrib))
	}
	t.Fprint(w)
	fmt.Fprintln(w)
}
