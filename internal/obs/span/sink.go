package span

import (
	"io"
	"sync"
)

// LineSink serializes whole-line writes from concurrent tracers onto one
// io.Writer, so the simulator's miss-lifecycle tracer and the engine's
// request tracer (internal/obs/reqspan) can interleave records in a single
// JSONL file without tearing lines. The first write error drops the sink
// (further writes are no-ops) and is reported by Err.
type LineSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewLineSink wraps w. A nil w yields a sink that drops everything.
func NewLineSink(w io.Writer) *LineSink {
	return &LineSink{w: w}
}

// WriteLine writes one complete line (b must include the trailing newline)
// atomically with respect to other writers.
func (s *LineSink) WriteLine(b []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil || s.err != nil {
		return
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		s.w = nil
	}
}

// Err returns the first write error, if any.
func (s *LineSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ChromeSink frames individually rendered Chrome trace events into one JSON
// array. Each producer builds a complete `{...}` event object in its own
// buffer and hands it to Event; the sink owns only the `[ , ]` framing, so
// any number of tracers — the simulator's per-miss tracer and the engine's
// per-request tracer — can emit into one Perfetto-loadable file.
type ChromeSink struct {
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	wrote  bool
	closed bool
	err    error
}

// NewChromeSink wraps w. A nil w yields a sink that drops everything.
func NewChromeSink(w io.Writer) *ChromeSink {
	return &ChromeSink{w: w}
}

// Event appends one complete trace-event object (without separators) to the
// array.
func (c *ChromeSink) Event(b []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w == nil || c.closed || c.err != nil {
		return
	}
	out := c.buf[:0]
	if c.wrote {
		out = append(out, ',', '\n')
	} else {
		out = append(out, '[', '\n')
		c.wrote = true
	}
	out = append(out, b...)
	c.buf = out[:0]
	if _, err := c.w.Write(out); err != nil {
		c.err = err
		c.w = nil
	}
}

// Close writes the closing bracket of the JSON array (an empty array when no
// event was emitted) and returns the first write error. It is idempotent.
func (c *ChromeSink) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.closed = true
	if c.w == nil {
		return c.err
	}
	out := c.buf[:0]
	if !c.wrote {
		out = append(out, '[')
	}
	out = append(out, '\n', ']', '\n')
	c.buf = out[:0]
	if _, err := c.w.Write(out); err != nil && c.err == nil {
		c.err = err
	}
	return c.err
}

// Err returns the first write error, if any.
func (c *ChromeSink) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
