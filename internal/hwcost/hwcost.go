// Package hwcost models the per-set hardware storage overhead of the
// cost-sensitive replacement algorithms over plain LRU (Section 5 of the
// paper). Two kinds of cost fields exist: fixed cost fields holding the
// (predicted) cost of a block's next miss, and computed cost fields holding
// costs while they are depreciated (Acost, GreedyDual credits). DCL and ACL
// additionally carry the Extended Tag Directory; ACL a two-bit counter and a
// reserved bit.
package hwcost

import "fmt"

// Config describes one design point.
type Config struct {
	// Ways is the set associativity s.
	Ways int
	// TagBits is the width of a cache tag.
	TagBits int
	// BlockBytes is the line size (data bits enter the baseline).
	BlockBytes int
	// FixedCostBits is the width of a fixed cost field. Zero means the cost
	// function is static and looked up in a table, so no fixed fields are
	// stored (Section 5's "simple table lookup" case).
	FixedCostBits int
	// ComputedCostBits is the width of a computed (depreciated) cost field.
	ComputedCostBits int
	// ETDTagBits is the width of an ETD tag entry; defaults to TagBits
	// (full tags) when zero. Section 4.3 uses 4-bit aliased tags.
	ETDTagBits int
}

// Paper8Bit returns the first design point evaluated in Section 5: a 4-way
// cache with 25-bit tags, 8-bit cost fields and 64-byte blocks.
func Paper8Bit() Config {
	return Config{Ways: 4, TagBits: 25, BlockBytes: 64, FixedCostBits: 8, ComputedCostBits: 8}
}

// PaperTableLookup is the same point with a static cost function looked up
// in a table (no fixed cost fields stored per block).
func PaperTableLookup() Config {
	c := Paper8Bit()
	c.FixedCostBits = 0
	return c
}

// PaperQuantized is Section 5's quantized design: costs in units of
// G = 60 ns with K = 8 (3-bit computed fields), 2-bit fixed fields (four
// distinct latencies), and 4-bit ETD tags plus a valid bit.
func PaperQuantized() Config {
	return Config{Ways: 4, TagBits: 25, BlockBytes: 64, FixedCostBits: 2, ComputedCostBits: 3, ETDTagBits: 4}
}

func (c Config) etdTagBits() int {
	if c.ETDTagBits > 0 {
		return c.ETDTagBits
	}
	return c.TagBits
}

// BaselineBitsPerSet returns the storage of an LRU set: data plus tags. The
// paper's percentages are relative to this quantity.
func (c Config) BaselineBitsPerSet() int {
	return c.Ways * (8*c.BlockBytes + c.TagBits)
}

// OverheadBitsPerSet returns the extra bits per set each algorithm needs
// over LRU.
//
//	BCL: s fixed cost fields + 1 computed (Acost).
//	GD : s fixed + s computed (credit per block).
//	DCL: s fixed + 1 computed + (s-1) ETD entries of (tag + valid + fixed).
//	ACL: DCL + 2-bit counter + 1 reserved bit.
func OverheadBitsPerSet(alg string, c Config) (int, error) {
	s := c.Ways
	etdEntry := c.etdTagBits() + 1 + c.FixedCostBits
	switch alg {
	case "LRU":
		return 0, nil
	case "BCL":
		return s*c.FixedCostBits + c.ComputedCostBits, nil
	case "GD":
		return s*c.FixedCostBits + s*c.ComputedCostBits, nil
	case "DCL":
		return s*c.FixedCostBits + c.ComputedCostBits + (s-1)*etdEntry, nil
	case "ACL":
		d, _ := OverheadBitsPerSet("DCL", c)
		return d + 2 + 1, nil
	}
	return 0, fmt.Errorf("hwcost: unknown algorithm %q", alg)
}

// OverheadPercent returns the overhead as a percentage of the LRU baseline.
func OverheadPercent(alg string, c Config) (float64, error) {
	bits, err := OverheadBitsPerSet(alg, c)
	if err != nil {
		return 0, err
	}
	return 100 * float64(bits) / float64(c.BaselineBitsPerSet()), nil
}

// Algorithms lists the algorithms in the paper's reporting order.
func Algorithms() []string { return []string{"BCL", "GD", "DCL", "ACL"} }
