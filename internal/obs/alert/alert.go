// Package alert evaluates SLO rules over the live time-series store
// (internal/obs/tsdb) and drives each rule through a
// pending → firing → resolved state machine, streaming every transition as
// a JSONL event.
//
// Two rule shapes are supported. A static rule compares one windowed query
// against a threshold. A burn-rate rule (Objective > 0) is the
// multi-window form used for SLO alerting: the rule's query measures the
// bad-event ratio (e.g. miss ratio against a hit-rate objective) and the
// rule breaches only when that ratio exceeds BurnFactor × (1 − Objective)
// in BOTH a short and a long window — the short window makes the alert
// react quickly, the long window keeps a transient spike from paging.
//
// Every rule evaluates over fully covered windows only: during warm-up,
// when the rings do not yet span the window, the rule reports no data and
// cannot fire. That makes alert behaviour deterministic under the
// op-indexed simulated clock (cachebench -ts.everyops), which CI exploits
// to pin exact firing counts.
package alert

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"costcache/internal/obs/tsdb"
)

// Op is a static rule's comparison direction.
type Op int

const (
	// Above breaches when value > threshold.
	Above Op = iota
	// Below breaches when value < threshold.
	Below
)

func (o Op) String() string {
	if o == Below {
		return "below"
	}
	return "above"
}

// State is a rule's position in the alert lifecycle.
type State int

const (
	// Inactive: the rule is not breaching.
	Inactive State = iota
	// Pending: breaching, but not yet for the rule's For duration.
	Pending
	// Firing: breaching continuously for at least For.
	Firing
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Firing:
		return "firing"
	}
	return "inactive"
}

// Rule is one alert condition over the store.
type Rule struct {
	// Name identifies the rule in events, summaries and manifests.
	Name string
	// Query is the signal the rule watches. For burn-rate rules it must
	// measure the bad-event ratio in [0, 1].
	Query tsdb.Query
	// For is how long the condition must hold before Pending becomes
	// Firing. Zero fires on the first breaching evaluation.
	For time.Duration

	// Static-threshold fields (used when Objective == 0).
	Op        Op
	Threshold float64
	Window    time.Duration

	// Burn-rate fields. Objective > 0 selects burn-rate mode: the rule
	// breaches when Query > BurnFactor × (1 − Objective) over both Short
	// and Long fully covered windows.
	Objective  float64
	BurnFactor float64
	Short      time.Duration
	Long       time.Duration
}

// threshold returns the effective breach threshold.
func (r Rule) threshold() float64 {
	if r.Objective > 0 {
		return r.BurnFactor * (1 - r.Objective)
	}
	return r.Threshold
}

// Event is one state transition.
type Event struct {
	Time      time.Time `json:"-"`
	TMS       int64     `json:"t_ms"`
	Rule      string    `json:"rule"`
	From      string    `json:"from"`
	To        string    `json:"to"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
}

// Summary is one rule's current standing, for end-of-run manifests and the
// /debug/alerts endpoint.
type Summary struct {
	Rule      string  `json:"rule"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	HasValue  bool    `json:"has_value"`
	Threshold float64 `json:"threshold"`
	// Fired counts transitions into Firing.
	Fired int64 `json:"fired"`
	// FiringNS is the total time spent Firing, including any ongoing spell
	// up to the evaluation time passed to Summaries.
	FiringNS int64 `json:"firing_ns"`
}

type ruleState struct {
	state        State
	pendingSince int64
	firingSince  int64
	fired        int64
	firingNS     int64
	lastValue    float64
	lastOK       bool
}

// Engine evaluates a fixed rule set against a store. All methods are safe
// for concurrent use; Eval is driven by the same clock as the store's
// Sample (simulated or wall).
type Engine struct {
	store *tsdb.Store
	rules []Rule

	mu     sync.Mutex
	states []ruleState
	sink   io.Writer
	buf    []byte
	err    error
	events []Event // ring of recent transitions for /debug/alerts
	evHead int
	evLen  int
}

// historyCap bounds the transition ring served by /debug/alerts.
const historyCap = 256

// New builds an engine over store with the given rules. It panics on an
// unnamed rule or a burn-rate rule with a non-positive window (programming
// errors).
func New(store *tsdb.Store, rules []Rule) *Engine {
	for _, r := range rules {
		if r.Name == "" {
			panic("alert: rule without a name")
		}
		if r.Objective > 0 && (r.Short <= 0 || r.Long <= 0 || r.BurnFactor <= 0) {
			panic(fmt.Sprintf("alert: burn-rate rule %q needs Short, Long and BurnFactor", r.Name))
		}
		if r.Objective == 0 && r.Window <= 0 {
			panic(fmt.Sprintf("alert: static rule %q needs a Window", r.Name))
		}
	}
	return &Engine{
		store:  store,
		rules:  rules,
		states: make([]ruleState, len(rules)),
		events: make([]Event, historyCap),
	}
}

// SetSink streams every subsequent transition to w as one JSON line each.
// Pass nil to stop streaming. The caller owns buffering and closing of w.
func (e *Engine) SetSink(w io.Writer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sink = w
}

// Err returns the first sink write error, if any; once a write fails the
// sink is dropped and evaluation continues in-memory.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// value evaluates q over window d at the finest resolution whose ring spans
// d, requiring full coverage.
func (e *Engine) value(q tsdb.Query, d time.Duration) (float64, bool) {
	for ri := 0; ri < e.store.NumResolutions(); ri++ {
		res := e.store.ResolutionAt(ri)
		if time.Duration(res.Slots)*res.Step < d {
			continue
		}
		v, covered, ok := e.store.Value(q, ri, d)
		if ok && covered >= d {
			return v, true
		}
		// A finer ring that spans d but is not yet full will not be
		// rescued by a coarser one (same data, coarser buckets): no data.
		return 0, false
	}
	return 0, false
}

// breach evaluates one rule: its current value (short-window value for burn
// rules), whether the condition holds, and whether enough data existed to
// decide.
func (e *Engine) breach(r Rule) (value float64, breaching, ok bool) {
	thr := r.threshold()
	if r.Objective > 0 {
		short, okS := e.value(r.Query, r.Short)
		long, okL := e.value(r.Query, r.Long)
		if !okS || !okL {
			return short, false, okS
		}
		return short, short > thr && long > thr, true
	}
	v, ok := e.value(r.Query, r.Window)
	if !ok {
		return 0, false, false
	}
	if r.Op == Below {
		return v, v < thr, true
	}
	return v, v > thr, true
}

// Eval evaluates every rule at now, advancing state machines and emitting
// transition events. Call it after each store Sample (or on the wall-clock
// cadence of the live sampler).
func (e *Engine) Eval(now time.Time) {
	nano := now.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		v, breaching, ok := e.breach(*r)
		st.lastValue, st.lastOK = v, ok
		switch {
		case breaching && st.state == Inactive:
			st.state = Pending
			st.pendingSince = nano
			e.emit(now, r, st, Inactive, Pending)
			fallthrough
		case breaching && st.state == Pending:
			if nano-st.pendingSince >= int64(r.For) {
				st.state = Firing
				st.firingSince = nano
				st.fired++
				e.emit(now, r, st, Pending, Firing)
			}
		case !breaching && st.state != Inactive:
			from := st.state
			if st.state == Firing {
				st.firingNS += nano - st.firingSince
			}
			st.state = Inactive
			e.emit(now, r, st, from, Inactive)
		}
	}
}

// emit records one transition in the ring and streams it to the sink (mu
// held).
func (e *Engine) emit(now time.Time, r *Rule, st *ruleState, from, to State) {
	ev := Event{
		Time:      now,
		TMS:       now.UnixNano() / int64(time.Millisecond),
		Rule:      r.Name,
		From:      from.String(),
		To:        to.String(),
		Value:     st.lastValue,
		Threshold: r.threshold(),
	}
	e.events[(e.evHead+e.evLen)%historyCap] = ev
	if e.evLen < historyCap {
		e.evLen++
	} else {
		e.evHead = (e.evHead + 1) % historyCap
	}
	if e.sink != nil {
		e.buf = appendEvent(e.buf[:0], ev)
		if _, err := e.sink.Write(e.buf); err != nil {
			e.err = fmt.Errorf("alert: sink: %w", err)
			e.sink = nil
		}
	}
}

// appendEvent renders one transition as a single JSON line with a fixed
// field order, so alert streams are byte-for-byte deterministic under the
// simulated clock (CI greps them).
func appendEvent(b []byte, ev Event) []byte {
	b = append(b, `{"kind":"alert","t_ms":`...)
	b = strconv.AppendInt(b, ev.TMS, 10)
	b = append(b, `,"rule":"`...)
	b = append(b, ev.Rule...)
	b = append(b, `","from":"`...)
	b = append(b, ev.From...)
	b = append(b, `","to":"`...)
	b = append(b, ev.To...)
	b = append(b, `","value":`...)
	b = strconv.AppendFloat(b, ev.Value, 'g', -1, 64)
	b = append(b, `,"threshold":`...)
	b = strconv.AppendFloat(b, ev.Threshold, 'g', -1, 64)
	b = append(b, "}\n"...)
	return b
}

// Events returns the retained transitions, oldest first.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, e.evLen)
	for i := 0; i < e.evLen; i++ {
		out[i] = e.events[(e.evHead+i)%historyCap]
	}
	return out
}

// Summaries reports every rule's standing as of now (now extends any
// ongoing firing spell's duration).
func (e *Engine) Summaries(now time.Time) []Summary {
	nano := now.UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Summary, len(e.rules))
	for i := range e.rules {
		st := e.states[i]
		firing := st.firingNS
		if st.state == Firing {
			firing += nano - st.firingSince
		}
		out[i] = Summary{
			Rule:      e.rules[i].Name,
			State:     st.state.String(),
			Value:     st.lastValue,
			HasValue:  st.lastOK,
			Threshold: e.rules[i].threshold(),
			Fired:     st.fired,
			FiringNS:  firing,
		}
	}
	return out
}

// Defaults parameterizes DefaultRules.
type Defaults struct {
	// HitRateObjective is the SLO hit-rate target in (0, 1).
	HitRateObjective float64
	// BurnFactor scales the burn-rate threshold (2 = budget burning at
	// twice the sustainable rate).
	BurnFactor float64
	// Short and Long are the burn-rate windows (also reused as the static
	// rules' window and For, respectively).
	Short, Long time.Duration
	// P99 is the request-latency p99 threshold.
	P99 time.Duration
}

// DefaultRules returns the standard rule set over the standard signals:
//
//	hit-rate-burn    multi-window burn rate on the miss ratio
//	latency-p99      windowed request-latency p99 above d.P99
//	lock-wait-share  engine lock wait above half a core
//	shard-skew       hottest shard at ≥2× its uniform share
//	shed-rate        >5% of requests shed by open circuit breakers
//	breaker-open     any cost-class circuit breaker tripped this window
//	server-shed-rate >5% of inbound server frames shed by admission control
func DefaultRules(d Defaults) []Rule {
	return []Rule{
		{
			Name:       "hit-rate-burn",
			Query:      tsdb.Query{Kind: tsdb.Ratio, Num: []string{"engine_misses"}, Den: []string{"engine_hits", "engine_misses"}},
			Objective:  d.HitRateObjective,
			BurnFactor: d.BurnFactor,
			Short:      d.Short,
			Long:       d.Long,
		},
		{
			Name:      "latency-p99",
			Query:     tsdb.Query{Kind: tsdb.Quantile, Num: []string{"request_latency_ns"}, Q: 0.99},
			Op:        Above,
			Threshold: float64(d.P99.Nanoseconds()),
			Window:    d.Short,
			For:       d.Short,
		},
		{
			Name:      "lock-wait-share",
			Query:     tsdb.Query{Kind: tsdb.Rate, Num: []string{"engine_lock_wait_ns"}, Scale: 1e-9},
			Op:        Above,
			Threshold: 0.5,
			Window:    d.Short,
			For:       d.Short,
		},
		{
			Name:      "shard-skew",
			Query:     tsdb.Query{Kind: tsdb.Skew, Num: []string{"engine_hits", "engine_misses", "engine_coalesced"}},
			Op:        Above,
			Threshold: 2.0,
			Window:    d.Short,
			For:       d.Long,
		},
		// Degraded-mode serving: both queries read all-zero (absent) series
		// on engines without a resilience config, so healthy runs never fire.
		{
			Name:      "shed-rate",
			Query:     tsdb.Query{Kind: tsdb.Ratio, Num: []string{"engine_shed"}, Den: []string{"engine_hits", "engine_misses", "engine_coalesced"}},
			Op:        Above,
			Threshold: 0.05,
			Window:    d.Short,
		},
		{
			Name:      "breaker-open",
			Query:     tsdb.Query{Kind: tsdb.Rate, Num: []string{"engine_breaker_opened"}},
			Op:        Above,
			Threshold: 0,
			Window:    d.Short,
		},
		// Serving tier (internal/server): the server's own admission control
		// shedding more than 5% of inbound frames. The denominator is absent
		// (zero) on in-process engines, so the ratio reads no-data and the
		// rule stays silent outside cacheserved deployments.
		{
			Name:      "server-shed-rate",
			Query:     tsdb.Query{Kind: tsdb.Ratio, Num: []string{"server_shed"}, Den: []string{"server_frames_in"}},
			Op:        Above,
			Threshold: 0.05,
			Window:    d.Short,
		},
	}
}

// FleetRules returns the fleet-level rule set a federated store
// (internal/obs/federate) evaluates over its per-node fed_* rollups:
//
//	node-outlier-hit-rate  one node's miss ratio diverging from the rest —
//	                       max − min of per-node miss ratios above 0.15
//	ring-hot-node          one node drawing ≥2× its uniform share of lookups
//
// Both are static single-window rules with For = 0, so under a simulated
// clock a persistent condition fires exactly once — the determinism the CI
// cluster smoke pins byte-for-byte.
func FleetRules(window time.Duration) []Rule {
	return []Rule{
		{
			Name:      "node-outlier-hit-rate",
			Query:     tsdb.Query{Kind: tsdb.SpreadRatio, Num: []string{"fed_misses"}, Den: []string{"fed_lookups"}},
			Op:        Above,
			Threshold: 0.15,
			Window:    window,
		},
		{
			Name:      "ring-hot-node",
			Query:     tsdb.Query{Kind: tsdb.Skew, Num: []string{"fed_lookups"}},
			Op:        Above,
			Threshold: 2.0,
			Window:    window,
		},
	}
}
