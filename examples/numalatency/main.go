// Numalatency: the paper's Section 4 scenario end to end. A 16-node CC-NUMA
// machine runs the Ocean-like kernel; each node's L2 predicts the next miss
// latency of a block from the last measured one and the replacement policy
// uses it as the miss cost. Latency-sensitive replacement shortens execution
// time relative to LRU, more so at 1 GHz where memory is relatively slower.
package main

import (
	"fmt"

	"costcache"
)

func main() {
	for _, mhz := range []int{500, 1000} {
		base := costcache.SimulateNUMA("Ocean",
			func() costcache.Policy { return costcache.NewLRU() }, mhz)
		fmt.Printf("%d MHz  %-4s exec=%8.1fus  L2 misses=%6d  avg miss=%5.0fns\n",
			mhz, "LRU", float64(base.ExecNs)/1000, base.L2Misses, base.AvgMissNs)
		for _, f := range []costcache.PolicyFactory{
			func() costcache.Policy { return costcache.NewBCL() },
			func() costcache.Policy { return costcache.NewDCL(0) },
			func() costcache.Policy { return costcache.NewACL(0) },
		} {
			r := costcache.SimulateNUMA("Ocean", f, mhz)
			fmt.Printf("%d MHz  %-4s exec=%8.1fus  L2 misses=%6d  avg miss=%5.0fns  reduction=%5.2f%%\n",
				mhz, r.Policy, float64(r.ExecNs)/1000, r.L2Misses, r.AvgMissNs,
				100*float64(base.ExecNs-r.ExecNs)/float64(base.ExecNs))
		}
	}
}
