package coherence

import (
	"testing"

	"costcache/internal/obs/span"
)

// stagesOf runs one transaction with a span attached and returns the span.
func stagesOf(t *testing.T, m *Machine, run func() Result) (*span.Span, Result) {
	t.Helper()
	tr := span.NewTracer(nil, nil)
	sp := tr.Begin(0, 1, false, 0)
	m.SetSpan(sp)
	res := run()
	m.SetSpan(nil)
	// Leave the span un-finished so the test can inspect it; Finish would
	// reset nothing but the test has no sinks to feed anyway.
	return sp, res
}

func segs(sp *span.Span, st span.Stage) []span.Seg {
	var out []span.Seg
	for _, s := range sp.Segs {
		if s.Stage == st {
			out = append(out, s)
		}
	}
	return out
}

func TestSpanRemoteCleanReadStages(t *testing.T) {
	m := machine(1, true)
	sp, res := stagesOf(t, m, func() Result { return m.Read(0, 1, 0) })
	if res.Local || res.Dirty {
		t.Fatalf("remote clean read classified local=%v dirty=%v", res.Local, res.Dirty)
	}
	for _, st := range []span.Stage{span.StageRequest, span.StageDirectory, span.StageMemory, span.StageReply} {
		if len(segs(sp, st)) != 1 {
			t.Errorf("stage %s recorded %d times, want 1", st, len(segs(sp, st)))
		}
	}
	for _, st := range []span.Stage{span.StageForward, span.StageInval} {
		if len(segs(sp, st)) != 0 {
			t.Errorf("clean read recorded stage %s", st)
		}
	}
	// The stages tile the transaction: request ends where the directory
	// starts, and the reply ends at the result time.
	req := segs(sp, span.StageRequest)[0]
	dir := segs(sp, span.StageDirectory)[0]
	rep := segs(sp, span.StageReply)[0]
	if req.End != dir.Start {
		t.Errorf("request ends at %d, directory starts at %d", req.End, dir.Start)
	}
	if rep.End != res.Done {
		t.Errorf("reply ends at %d, transaction done at %d", rep.End, res.Done)
	}
	// Requester-to-home is one hop; home-to-requester another.
	if len(sp.Hops) != 2 {
		t.Errorf("recorded %d hops, want 2 (1 each way)", len(sp.Hops))
	}
}

func TestSpanLocalReadClassAndHops(t *testing.T) {
	m := machine(0, true)
	sp, res := stagesOf(t, m, func() Result { return m.Read(0, 1, 0) })
	if !res.Local || res.Dirty {
		t.Fatalf("local clean read classified local=%v dirty=%v", res.Local, res.Dirty)
	}
	if len(sp.Hops) != 0 {
		t.Errorf("node-local messages crossed %d links", len(sp.Hops))
	}
}

func TestSpanDirtyReadForward(t *testing.T) {
	m := machine(1, true)
	m.Write(2, 1, 0) // node 2 dirties the block (home 1); untraced
	sp, res := stagesOf(t, m, func() Result { return m.Read(0, 1, 10000) })
	if res.Local || !res.Dirty {
		t.Fatalf("dirty remote read classified local=%v dirty=%v", res.Local, res.Dirty)
	}
	fwd := segs(sp, span.StageForward)
	if len(fwd) != 1 {
		t.Fatalf("forward stage recorded %d times, want 1", len(fwd))
	}
	// No memory stage on the critical path: the owner supplies the data, and
	// the sharing writeback is off-path (excluded from the span).
	if len(segs(sp, span.StageMemory)) != 0 {
		t.Error("cache-to-cache transfer recorded a critical-path memory stage")
	}
	rep := segs(sp, span.StageReply)
	if len(rep) != 1 || rep[0].End != res.Done {
		t.Fatalf("reply segs %v, want one ending at %d", rep, res.Done)
	}
}

func TestSpanWriteInvalFanout(t *testing.T) {
	m := machine(0, true)
	m.Read(1, 7, 0)
	m.Read(2, 7, 1000)
	if m.StateOf(7) != Shared {
		t.Fatalf("setup: state %v, want Shared", m.StateOf(7))
	}
	sp, res := stagesOf(t, m, func() Result { return m.Write(3, 7, 2000) })
	inval := segs(sp, span.StageInval)
	if len(inval) != 1 {
		t.Fatalf("inval stage recorded %d times, want 1 merged window", len(inval))
	}
	rep := segs(sp, span.StageReply)
	if len(rep) != 1 || rep[0].Start < inval[0].End {
		// The reply leaves after memory AND all acks; with remote sharers the
		// ack window is the binding constraint here.
		t.Fatalf("reply %v must start at the inval window end %d", rep, inval[0].End)
	}
	if res.Dirty {
		t.Error("invalidating a Shared block is not a dirty transfer")
	}
	if res.Done != rep[0].End {
		t.Errorf("reply ends at %d, transaction done at %d", rep[0].End, res.Done)
	}
}

func TestSpanStaleForwardNack(t *testing.T) {
	m := machine(1, false) // no hints: directory goes stale on silent eviction
	m.HasBlock = func(int, uint64) bool { return false }
	m.Write(2, 1, 0) // node 2 nominally owns the block but "evicted" it
	sp, _ := stagesOf(t, m, func() Result { return m.Read(0, 1, 10000) })
	// Stale owner: forward + nack, then memory supplies the data.
	if len(segs(sp, span.StageForward)) != 1 {
		t.Fatal("stale forward not recorded")
	}
	if len(segs(sp, span.StageMemory)) != 1 {
		t.Fatal("memory fallback not recorded")
	}
}

// TestSpanQueueAttribution drives two back-to-back transactions over the
// same route and checks the second span carries link-queueing delay.
func TestSpanQueueAttribution(t *testing.T) {
	m := machine(3, true)
	tr := span.NewTracer(nil, nil)

	// Two reads from the same node at the same instant: the second's request
	// queues behind the first's flit train on the shared links.
	sp1 := tr.Begin(0, 1, false, 0)
	m.SetSpan(sp1)
	r1 := m.Read(0, 1, 0)
	tr.Finish(sp1, r1.Done, 'U', r1.Local, r1.Dirty)
	sp2 := tr.Begin(0, 2, false, 0)
	m.SetSpan(sp2)
	r2 := m.Read(0, 2, 0)
	m.SetSpan(nil)
	if sp2.HopQueueNs() == 0 {
		t.Fatal("second transaction saw no link queueing")
	}
	req := segs(sp2, span.StageRequest)
	if len(req) != 1 || req[0].Queue == 0 {
		t.Fatalf("request stage %v did not absorb the queueing delay", req)
	}
	// Contention must also lengthen the loaded latency beyond the unloaded.
	if loaded := r2.Done - 0; loaded <= r2.Unloaded {
		t.Errorf("loaded latency %d not above unloaded %d despite queueing", loaded, r2.Unloaded)
	}
}
