// Command cachefed federates a fleet of costcache observability endpoints
// (cacheserved -obs.listen, or any process serving /metrics) into one
// cluster-level surface: it scrapes every node, mirrors the per-node series
// into a node-labeled federated registry and time-series store, derives
// cluster signals (global hit rate, cost per access, per-node skew, ring
// imbalance) and evaluates the fleet alert rules (node-outlier hit rate,
// ring hot node) over the merged store. See internal/obs/federate and
// docs/OBSERVABILITY.md ("Cluster observability").
//
//	cachefed -nodes localhost:6061,localhost:6062,localhost:6063
//	cachefed -nodes ... -listen localhost:7000     # cachetop -cluster target
//	cachefed -nodes ... -scrapes 8 -alerts.jsonl fed_alerts.jsonl
//
// Live mode (the default) serves the federated surface on -listen —
// /metrics, /debug/timeseries, /debug/alerts and /debug/federate (per-node
// rows + cluster rollups) — and scrapes every -interval until SIGINT/SIGTERM.
//
// -scrapes N > 0 switches to the deterministic harness mode CI pins: N
// scrapes under a simulated clock starting at the Unix epoch, one -interval
// step apart, then a post-run summary (cluster signals, per-node rows, alert
// standings) on stdout and exit. The same fleet scraped this way streams
// byte-identical alert JSONL on every rerun. -status writes the full
// /debug/federate document to a file at exit in either mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"costcache/internal/cli"
	"costcache/internal/obs/federate"
)

func main() {
	nodes := flag.String("nodes", "", "comma-separated per-node observability addresses (required)")
	listen := flag.String("listen", "127.0.0.1:0", "serve the federated observability surface on this address (live mode)")
	interval := flag.Duration("interval", time.Second, "scrape period (and the federated store's finest bucket width)")
	timeout := flag.Duration("timeout", 2*time.Second, "per-node HTTP fetch deadline")
	scrapes := flag.Int("scrapes", 0, "deterministic mode: run this many scrapes under a simulated clock, print a summary and exit (0 = live)")
	alertsJSONL := flag.String("alerts.jsonl", "", "write fleet alert state transitions as JSONL to this file")
	status := flag.String("status", "", "write the final /debug/federate document (JSON) to this file at exit")
	flag.Parse()

	if *nodes == "" {
		cli.BadFlag("cachefed", "-nodes", "", []string{"a comma-separated list of node observability addresses"})
	}
	if *interval <= 0 {
		cli.BadFlag("cachefed", "-interval", fmt.Sprint(*interval), []string{"a scrape period > 0"})
	}
	if *timeout <= 0 {
		cli.BadFlag("cachefed", "-timeout", fmt.Sprint(*timeout), []string{"a fetch deadline > 0"})
	}
	if *scrapes < 0 {
		cli.BadFlag("cachefed", "-scrapes", fmt.Sprint(*scrapes), []string{"a scrape count >= 0 (0 = live)"})
	}

	fed, err := federate.New(federate.Config{
		Nodes:   strings.Split(*nodes, ","),
		Step:    *interval,
		Timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachefed:", err)
		os.Exit(1)
	}

	var alertFile *os.File
	var alertBW *bufio.Writer
	if *alertsJSONL != "" {
		alertFile, err = os.Create(*alertsJSONL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cachefed:", err)
			os.Exit(1)
		}
		alertBW = bufio.NewWriter(alertFile)
		fed.Alerts().SetSink(alertBW)
	}
	finish := func() {
		if alertFile != nil {
			err := alertBW.Flush()
			if err == nil {
				err = alertFile.Close()
			}
			if err == nil {
				err = fed.Alerts().Err()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "cachefed: alert sink:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote fleet alert events to %s\n", *alertsJSONL)
		}
		if *status != "" {
			data, err := json.MarshalIndent(fed.Status(0), "", "  ")
			if err == nil {
				err = os.WriteFile(*status, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "cachefed:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote cluster status to %s\n", *status)
		}
	}

	if *scrapes > 0 {
		// Deterministic harness mode: a simulated clock starting at the Unix
		// epoch, one step per scrape — the same fleet state scraped this way
		// produces byte-identical alert JSONL on every rerun (CI pins this).
		base := time.Unix(0, 0)
		for i := 1; i <= *scrapes; i++ {
			fed.ScrapeOnce(base.Add(time.Duration(i) * *interval))
		}
		summarize(fed, *scrapes)
		finish()
		return
	}

	srv, err := federate.Serve(*listen, fed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachefed:", err)
		os.Exit(1)
	}
	defer srv.Close()
	// CI and wrapper scripts parse this line for the bound port.
	fmt.Printf("cachefed: listening on %s\n", srv.Addr())

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		fed.Start(*interval, stop)
	}()
	<-cli.Drain()
	close(stop)
	<-done
	fmt.Fprintln(os.Stderr, "cachefed: stopped")
	summarize(fed, int(fed.Store().Samples()))
	finish()
}

// summarize prints the post-run cluster standing: the derived signals, one
// row per node and each fleet rule's state.
func summarize(fed *federate.Federator, scrapes int) {
	st := fed.Status(0)
	fmt.Printf("cachefed: %d nodes, %d scrapes\n", len(st.Nodes), scrapes)
	fmt.Printf("cluster hit_rate=%.4f cost_per_access=%.4f node_skew=%.4f miss_spread=%.4f\n",
		st.Cluster.HitRate, st.Cluster.CostPerAccess, st.Cluster.NodeSkew, st.Cluster.MissSpread)
	for _, n := range st.Nodes {
		up := "up"
		if !n.Up {
			up = "DOWN " + n.Err
		}
		fmt.Printf("node %-2s %-24s %s hits=%d misses=%d coalesced=%d cost=%d share=%.3f hit_rate=%.4f\n",
			n.Node, n.Addr, up, n.Totals.Hits, n.Totals.Misses, n.Totals.Coalesced,
			n.Totals.CostPaid, n.Share, n.HitRate)
	}
	for _, r := range st.Rules {
		fmt.Printf("alert %-22s state=%-8s fired=%d firing_ms=%d\n",
			r.Rule, r.State, r.Fired, r.FiringNS/int64(time.Millisecond))
	}
}
