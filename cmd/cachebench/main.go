// Command cachebench load-tests the concurrent sharded engine: it replays a
// zipfian key stream or a synthetic SPLASH-2-like workload against
// internal/engine with G goroutines, closed- or open-loop, and reports
// throughput, latency percentiles and the live cost savings of the chosen
// policy over the per-shard LRU shadow.
//
//	cachebench -policy DCL -shards 16                      # open-loop zipfian
//	cachebench -mode closed -workers 1 -seed 7             # deterministic run
//	cachebench -workload Barnes -mode closed -workers 8    # trace replay
//
// -manifest writes a self-describing run manifest (engine counters, latency
// percentiles, per-shard series) that cmd/report can validate with -check
// and diff against other runs. SIGINT/SIGTERM stop the run at the next
// request boundary, flush a partial manifest marked "interrupted": true and
// exit 130.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"costcache/internal/cli"
	"costcache/internal/engine"
	"costcache/internal/loadgen"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

func main() {
	policy := flag.String("policy", "DCL", "replacement policy (see -help of cmd/cachesim)")
	shards := flag.Int("shards", 8, "power-of-two shard count")
	sets := flag.Int("sets", 4096, "total sets across all shards (power of two)")
	ways := flag.Int("ways", 4, "set associativity")
	workers := flag.Int("workers", 8, "request goroutines")
	mode := flag.String("mode", "open", "load discipline: open (fixed arrival rate) or closed")
	rate := flag.Float64("rate", 20000, "open-loop arrival rate, requests/second")
	ops := flag.Int("ops", 100000, "total requests")
	keys := flag.Int("keys", 32768, "zipfian key-space size")
	zipf := flag.Float64("zipf", 1.1, "zipf skew (<=1 means uniform)")
	bench := flag.String("workload", "", "replay this synthetic benchmark instead of the zipfian stream")
	seed := flag.Int64("seed", 42, "seed for key streams and the cost mapping")
	costLow := flag.Int64("costlow", 1, "low miss cost")
	costHigh := flag.Int64("costhigh", 8, "high miss cost")
	haf := flag.Float64("haf", 0.2, "high-cost key fraction")
	loadDelay := flag.Duration("loaddelay", 200*time.Microsecond, "simulated backend latency per unit of miss cost")
	noShadow := flag.Bool("noshadow", false, "disable the per-shard LRU shadow (and the savings report)")
	quiet := flag.Bool("quiet", false, "suppress the per-second progress line on stderr")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file")
	flag.Parse()

	factory, ok := replacement.ByName(*policy)
	if !ok {
		cli.BadFlag("cachebench", "-policy", *policy, replacement.Names())
	}
	if *mode != string(loadgen.Open) && *mode != string(loadgen.Closed) {
		cli.BadFlag("cachebench", "-mode", *mode, loadgen.Modes())
	}
	if *bench != "" {
		if _, ok := workload.ByName(*bench); !ok {
			cli.BadFlag("cachebench", "-workload", *bench, workload.Names())
		}
	}

	reg := obs.NewRegistry()
	eng := engine.New(engine.Config{
		Shards:   *shards,
		Sets:     *sets,
		Ways:     *ways,
		Policy:   factory,
		Registry: reg,
		Shadow:   !*noShadow,
	})
	cfg := loadgen.Config{
		Mode:      loadgen.Mode(*mode),
		Workers:   *workers,
		Ops:       *ops,
		Rate:      *rate,
		Keys:      *keys,
		ZipfS:     *zipf,
		Workload:  *bench,
		Seed:      *seed,
		CostLow:   replacement.Cost(*costLow),
		CostHigh:  replacement.Cost(*costHigh),
		HighFrac:  *haf,
		LoadDelay: *loadDelay,
	}
	stopped := cli.Interrupt()

	stopProgress := make(chan struct{})
	if !*quiet {
		go progress(eng, stopProgress)
	}
	res, err := loadgen.Run(eng, cfg, stopped)
	close(stopProgress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachebench:", err)
		os.Exit(2)
	}

	printSummary(*policy, *shards, *workers, *mode, res)

	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, *policy, *mode, *bench, cfg, eng, reg, res); err != nil {
			fmt.Fprintln(os.Stderr, "cachebench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote manifest to %s\n", *manifestPath)
	}
	if res.Interrupted {
		os.Exit(cli.ExitInterrupted)
	}
}

// progress prints a once-a-second live line to stderr: total operations,
// hit rate and shadow savings so far.
func progress(eng *engine.Engine, stop <-chan struct{}) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	start := time.Now()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			st := eng.Stats()
			fmt.Fprintf(os.Stderr, "cachebench: t=%3.0fs ops=%d hit=%.1f%% coalesced=%d savings=%.1f%%\n",
				time.Since(start).Seconds(), st.Hits+st.Misses+st.Coalesced,
				100*st.HitRate(), st.Coalesced, 100*st.Savings())
		}
	}
}

func printSummary(policy string, shards, workers int, mode string, res loadgen.Result) {
	st := res.Stats
	t := tabulate.New(fmt.Sprintf("cachebench · %s · %d shards · %d workers · %s-loop",
		policy, shards, workers, mode),
		"metric", "value")
	t.AddF("ops", res.Ops)
	t.AddF("wall_s", float64(res.WallNs)/1e9)
	t.AddF("throughput_ops_s", res.Throughput)
	t.AddF("hits", st.Hits)
	t.AddF("misses", st.Misses)
	t.AddF("hit_rate_pct", 100*st.HitRate())
	t.AddF("coalesced", st.Coalesced)
	t.AddF("evictions", st.Evictions)
	t.AddF("cost_paid", st.CostPaid)
	t.AddF("lock_wait_ms", float64(st.LockWaitNs)/1e6)
	t.AddF("p50_us", float64(res.P50Ns)/1e3)
	t.AddF("p95_us", float64(res.P95Ns)/1e3)
	t.AddF("p99_us", float64(res.P99Ns)/1e3)
	if st.ShadowCost > 0 {
		t.AddF("shadow_cost_lru", st.ShadowCost)
		t.AddF("savings_vs_lru_pct", 100*st.Savings())
	}
	t.Fprint(os.Stdout)
	if res.Interrupted {
		fmt.Println("run interrupted; figures cover the completed portion only")
	}
}

func writeManifest(path, policy, mode, bench string, cfg loadgen.Config,
	eng *engine.Engine, reg *obs.Registry, res loadgen.Result) error {
	m := manifest.New("cachebench")
	m.SetConfig("policy", policy)
	m.SetConfig("mode", mode)
	m.SetConfig("shards", eng.Shards())
	m.SetConfig("capacity", eng.Capacity())
	m.SetConfig("workers", cfg.Workers)
	m.SetConfig("rate", cfg.Rate)
	m.SetConfig("keys", cfg.Keys)
	m.SetConfig("zipf", cfg.ZipfS)
	m.SetConfig("seed", cfg.Seed)
	m.SetConfig("loaddelay", cfg.LoadDelay)
	if bench != "" {
		m.SetConfig("workload", bench)
	}
	if res.Interrupted {
		m.MarkInterrupted()
	}
	st := res.Stats
	m.SetMetric("ops", float64(res.Ops))
	m.SetMetric("wall_ns", float64(res.WallNs))
	m.SetMetric("throughput_ops_s", res.Throughput)
	m.SetMetric("engine_hits", float64(st.Hits))
	m.SetMetric("engine_misses", float64(st.Misses))
	m.SetMetric("engine_coalesced", float64(st.Coalesced))
	m.SetMetric("engine_evictions", float64(st.Evictions))
	m.SetMetric("engine_cost_paid", float64(st.CostPaid))
	m.SetMetric("engine_lock_wait_ns", float64(st.LockWaitNs))
	m.SetMetric("hit_rate_pct", 100*st.HitRate())
	m.SetMetric("latency_p50_ns", float64(res.P50Ns))
	m.SetMetric("latency_p95_ns", float64(res.P95Ns))
	m.SetMetric("latency_p99_ns", float64(res.P99Ns))
	if st.ShadowCost > 0 {
		m.SetMetric("engine_shadow_cost", float64(st.ShadowCost))
		m.SetMetric("savings_vs_lru_pct", 100*st.Savings())
	}
	m.AddSnapshot(reg.Snapshot()) // per-shard engine_* series
	return m.WriteFile(path)
}
