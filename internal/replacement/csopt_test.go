package replacement

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func twoCosts(high map[uint64]bool, r Cost) func(uint64) Cost {
	return func(b uint64) Cost {
		if high[b] {
			return r
		}
		return 1
	}
}

// A hand-worked case where reservation beats every greedy schedule: two
// ways, a high-cost block H referenced at distance beyond LRU reach while
// cheap blocks stream. The optimum keeps H and pays the cheap misses.
func TestCSOPTReservationBeatsLRU(t *testing.T) {
	H := uint64(100)
	ev := refs(H, 1, 2, 3, H) // 2 ways
	costOf := twoCosts(map[uint64]bool{H: true}, 10)
	opt := OptimalAggregateCost(ev, 2, costOf, false)
	// Optimal: miss H(10), miss 1(1), miss 2(1) evicting 1, miss 3(1)
	// evicting 2, hit H: total 13.
	if opt != 13 {
		t.Fatalf("CSOPT = %d, want 13", opt)
	}
	lru := AggregateCostOf(NewLRU(), ev, 2, costOf)
	// LRU evicts H when 2 arrives; the final H access re-misses: 10+1+1+1+10.
	if lru != 23 {
		t.Fatalf("LRU = %d, want 23", lru)
	}
	// BCL and DCL reserve H and match the optimum here.
	if got := AggregateCostOf(NewBCL(), ev, 2, costOf); got != opt {
		t.Fatalf("BCL = %d, want %d", got, opt)
	}
	if got := AggregateCostOf(NewDCL(), ev, 2, costOf); got != opt {
		t.Fatalf("DCL = %d, want %d", got, opt)
	}
}

func TestCSOPTUniformCostsEqualsBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		ev := make([]OptEvent, 300)
		for i := range ev {
			ev[i] = OptEvent{Block: uint64(rng.Intn(10)), Invalidate: rng.Intn(25) == 0}
		}
		ways := 2 + trial%3
		opt := OptimalAggregateCost(ev, ways, func(uint64) Cost { return 1 }, false)
		belady := OptimalMisses(ev, ways)
		if opt != belady {
			t.Fatalf("uniform CSOPT %d != Belady %d (ways %d)", opt, belady, ways)
		}
	}
}

// CSOPT lower-bounds every online policy on arbitrary two-cost traces.
func TestCSOPTLowerBoundsOnlinePoliciesQuick(t *testing.T) {
	factories := []Factory{
		func() Policy { return NewLRU() },
		func() Policy { return NewGD() },
		func() Policy { return NewBCL() },
		func() Policy { return NewDCL() },
		func() Policy { return NewACL() },
	}
	f := func(seed int64, waysRaw, blocksRaw uint8, r8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ways := int(waysRaw%3) + 2 // 2..4
		blocks := int(blocksRaw%8) + ways + 2
		r := Cost(r8%31) + 2
		high := map[uint64]bool{}
		for b := 0; b < blocks; b++ {
			if rng.Intn(3) == 0 {
				high[uint64(b)] = true
			}
		}
		costOf := twoCosts(high, r)
		ev := make([]OptEvent, 150)
		for i := range ev {
			ev[i] = OptEvent{Block: uint64(rng.Intn(blocks)), Invalidate: rng.Intn(30) == 0}
		}
		opt := OptimalAggregateCost(ev, ways, costOf, false)
		for _, fac := range factories {
			if AggregateCostOf(fac(), ev, ways, costOf) < opt {
				return false
			}
		}
		// Bypass can only improve the optimum.
		return OptimalAggregateCost(ev, ways, costOf, true) <= opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSOPTBypassHelps(t *testing.T) {
	// One way; a high-cost resident H is interleaved with a one-shot cheap
	// block. Without bypass the cheap fetch must evict H; with bypass it
	// streams past.
	H, C := uint64(1), uint64(2)
	ev := refs(H, C, H, C, H)
	costOf := twoCosts(map[uint64]bool{H: true}, 10)
	noBypass := OptimalAggregateCost(ev, 1, costOf, false)
	bypass := OptimalAggregateCost(ev, 1, costOf, true)
	if !(bypass < noBypass) {
		t.Fatalf("bypass %d should beat no-bypass %d", bypass, noBypass)
	}
	// With bypass: pay H once and each C: 10+1+1 = 12.
	if bypass != 12 {
		t.Fatalf("bypass = %d, want 12", bypass)
	}
}

func TestCSOPTInvalidation(t *testing.T) {
	H := uint64(1)
	ev := []OptEvent{
		{Block: H},
		{Block: H, Invalidate: true},
		{Block: H},
	}
	costOf := twoCosts(map[uint64]bool{H: true}, 10)
	if got := OptimalAggregateCost(ev, 2, costOf, false); got != 20 {
		t.Fatalf("cost = %d, want 20 (invalidation forces a re-miss)", got)
	}
}

func TestCSOPTPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OptimalAggregateCost(nil, 0, func(uint64) Cost { return 1 }, false)
}
