// The chaos section runs the execution-driven simulator under the named
// fault-injection scenarios (docs/FAULTS.md) and compares how the
// cost-sensitive policies hold up against LRU when the machine degrades:
// per-scenario execution times, the relative reduction over LRU, and the
// fault counters (NACKs, retry backoff, slowed hops, degraded misses). The
// plans are deterministic in (scenario, seed), so the table is reproducible
// and its metrics are manifest-diffable run to run.
package main

import (
	"fmt"
	"os"

	"costcache/internal/fault"
	"costcache/internal/numasim"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

// chaosPolicies are the cost-sensitive policies raced against LRU under each
// fault scenario.
var chaosPolicies = []string{"BCL", "DCL", "ACL"}

// chaosScenarios picks the scenario set: a three-scenario core for -quick
// smoke runs, every named scenario (mixed included) otherwise.
func chaosScenarios(quick bool) []string {
	if quick {
		return []string{"link-outage", "hot-bank", "slow-node"}
	}
	return fault.ScenarioNames()
}

// chaosSection prints the chaos table for the first benchmark: one row per
// fault scenario with LRU and cost-sensitive execution times (us) and the
// DCL reduction over LRU. Per-scenario execution times and fault counters go
// into the manifest. stopped is polled between runs so SIGINT abandons the
// section at a safe boundary; the return value reports whether it did.
func chaosSection(gens []workload.Generator, quick bool, seed uint64, stopped func() bool) bool {
	g := gens[0]
	prog, _ := workload.ProgramOf(g)
	dim := numasim.DefaultConfig(nil).Net.Dim

	fmt.Printf("== Chaos: execution time (us) under fault injection, %s, seed %d ==\n", g.Name(), seed)
	t := tabulate.New("", append([]string{"Scenario", "LRU"}, append(append([]string{}, chaosPolicies...), "DCL reduction %", "NACKs", "degraded misses")...)...)

	run := func(plan *fault.Plan, policy string) numasim.Result {
		f, _ := replacement.ByName(policy)
		cfg := numasim.DefaultConfig(f)
		cfg.Faults = plan
		cfg.Stop = stopped
		return numasim.Run(prog, cfg)
	}

	for _, name := range chaosScenarios(quick) {
		if stopped() {
			return true
		}
		plan, err := fault.Scenario(name, seed, dim)
		if err != nil {
			// Scenario names are hardwired above; a failure here is a bug.
			panic(err)
		}
		base := run(plan, "LRU")
		if base.Interrupted {
			return true
		}
		record(obs.Name("chaos_exec_ns", "scenario", name, "policy", "LRU"), float64(base.ExecNs))
		row := []any{name, float64(base.ExecNs) / 1000}
		var dcl numasim.Result
		for _, p := range chaosPolicies {
			if stopped() {
				return true
			}
			res := run(plan, p)
			if res.Interrupted {
				return true
			}
			if p == "DCL" {
				dcl = res
			}
			record(obs.Name("chaos_exec_ns", "scenario", name, "policy", p), float64(res.ExecNs))
			row = append(row, float64(res.ExecNs)/1000)
		}
		row = append(row, 100*float64(base.ExecNs-dcl.ExecNs)/float64(base.ExecNs))
		if st := dcl.Faults; st != nil {
			row = append(row, st.Nacks, st.DegradedMisses)
			record(obs.Name("chaos_fault_nacks", "scenario", name), float64(st.Nacks))
			record(obs.Name("chaos_fault_retries", "scenario", name), float64(st.Retries))
			record(obs.Name("chaos_fault_backoff_ns", "scenario", name), float64(st.BackoffNs))
			record(obs.Name("chaos_fault_slowed_hops", "scenario", name), float64(st.SlowedHops))
			record(obs.Name("chaos_fault_degraded_misses", "scenario", name), float64(st.DegradedMisses))
			record(obs.Name("chaos_fault_events", "scenario", name), float64(st.Events()))
		}
		if man != nil {
			man.SetConfig(obs.Name("chaos_plan_hash", "scenario", name), plan.Hash())
		}
		t.AddF(row...)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
	return false
}
