// Package tabulate renders the experiment drivers' results as aligned text
// tables or CSV, in the spirit of the paper's tables and figure data.
package tabulate

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row. Short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddF appends a row of formatted values: strings pass through, float64
// render with two decimals, integers plainly.
func (t *Table) AddF(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Pct formats a fraction as a percentage with two decimals ("12.34").
func Pct(f float64) string { return fmt.Sprintf("%.2f", f*100) }
