package workload

import "costcache/internal/trace"

// Ocean models the SPLASH-2 Ocean simulation: iterative 9-point stencil
// relaxation over 2D grids partitioned into contiguous row bands, with a
// small multigrid hierarchy (each coarser level halves the grid). Remote
// accesses happen only on band-boundary rows, giving the low remote
// fraction of Table 1 (7.4%) and very regular, set-uniform locality; miss
// rates are inversely proportional to cache size, as the paper notes.
type Ocean struct {
	// N is the fine-grid dimension (the paper uses 258 for the trace study
	// and 130 for the RSIM study).
	N int
	// Levels is the number of multigrid levels (fine grid plus coarser).
	Levels int
	// Relax is the number of consecutive relaxation sweeps per level per
	// iteration (real multigrid smooths 2-4 times per level).
	Relax int
	// Iterations is the number of multigrid V-cycles.
	Iterations int
	// Procs is the processor count (the paper uses 16).
	Procs int
	// Seed controls interleaving.
	Seed int64
}

// DefaultOcean returns the configuration used by the experiment drivers.
// The 130-point grid (the paper's Section 4 size) on 16 processors yields
// 8-row bands whose boundary traffic reproduces Table 1's 7.4% remote
// fraction; the 258-point trace-study grid halves it (wider bands).
func DefaultOcean() Ocean {
	return Ocean{N: 130, Levels: 3, Relax: 2, Iterations: 5, Procs: 16, Seed: 3}
}

// Name implements Generator.
func (Ocean) Name() string { return "Ocean" }

// addr returns the address of grid point (i,j) at the given level in one of
// the two alternating grids.
func (w Ocean) addr(grid, level, i, j, n int) uint64 {
	base := uint64(regionGridA)
	if grid == 1 {
		base = regionGridB
	}
	// Levels are laid out back to back; level l has dimension n.
	var off uint64
	d := w.N
	for l := 0; l < level; l++ {
		off += uint64(d * d * 8)
		d = d/2 + 1
	}
	return base + off + uint64(i*n+j)*8
}

// Generate implements Generator.
func (w Ocean) Generate() *trace.Trace { return w.emit().build(w.Name()) }

func (w Ocean) emit() *builder {
	b := newBuilder(w.Procs, w.Seed)

	// Initialization: each processor writes its row band at every level of
	// both grids (first touch -> bands homed locally).
	for level, n := 0, w.N; level < w.Levels; level, n = level+1, n/2+1 {
		for p := 0; p < w.Procs; p++ {
			lo, hi := w.band(p, n)
			for g := 0; g < 2; g++ {
				for i := lo; i < hi; i++ {
					for j := 0; j < n; j += 8 {
						b.write(p, w.addr(g, level, i, j, n))
					}
				}
			}
		}
	}
	b.barrier()

	relax := w.Relax
	if relax <= 0 {
		relax = 1
	}
	src := 0
	for it := 0; it < w.Iterations; it++ {
		for level, n := 0, w.N; level < w.Levels; level, n = level+1, n/2+1 {
			// One update sweep (reads src, writes dst) followed by Relax-1
			// read-only evaluation sweeps (residual/error norms), as in the
			// real solver. The read-only sweeps re-reference the neighbour
			// bands' boundary rows without invalidating them.
			for sweep := 0; sweep < relax; sweep++ {
				update := sweep == 0
				for p := 0; p < w.Procs; p++ {
					lo, hi := w.band(p, n)
					for i := lo; i < hi; i++ {
						for j := 1; j < n-1; j++ {
							// 9-point stencil on the source grid.
							for di := -1; di <= 1; di++ {
								ii := i + di
								if ii < 0 || ii >= n {
									continue
								}
								b.read(p, w.addr(src, level, ii, j-1, n))
								b.read(p, w.addr(src, level, ii, j, n))
								b.read(p, w.addr(src, level, ii, j+1, n))
							}
							if update {
								b.write(p, w.addr(1-src, level, i, j, n))
							} else {
								b.read(p, w.addr(1-src, level, i, j, n))
							}
						}
					}
				}
				b.barrier()
			}
		}
		src = 1 - src
	}
	return b
}

// band returns processor p's row range [lo,hi) on an n-row grid.
func (w Ocean) band(p, n int) (lo, hi int) {
	rows := n / w.Procs
	lo = p * rows
	hi = lo + rows
	if p == w.Procs-1 {
		hi = n
	}
	return lo, hi
}
