// Package stitch joins client-side request spans with the server-side spans
// their trace contexts propagated to, producing one merged Chrome/Perfetto
// timeline in which every server span sits strictly inside the client's net
// round trip.
//
// The two halves come from different clocks: the client tracer's epoch and
// each server tracer's epoch are unrelated, so server timestamps must be
// shifted by a per-node offset before they can share a timeline. Rather than
// trusting the PING-midpoint estimates (those are hints with ±RTT/2 error),
// stitch recovers each node's offset from the spans themselves: every
// client/server pair constrains the offset to the interval
//
//	[clientNetWriteStart − serverStart, clientNetReadEnd − serverEnd]
//
// because the request cannot reach the server before the client started
// writing it, and the response cannot be read before the server finished.
// Intersecting the intervals across all of a node's pairs yields the feasible
// offset range; stitch uses its midpoint. An empty intersection means the
// spans are mutually inconsistent (mislabeled nodes, reordered files, or a
// clock that stepped mid-run) and stitching fails loudly rather than emit a
// timeline with spans leaking outside their brackets.
//
// Stitching is strict by construction: a server span whose client_id matches
// no client span is an orphan, a round-tripped client span with no server
// half is an orphan (the server emits every span the client asked it to),
// and negative durations or stage segments outside their span are rejected
// on both halves. report -merge wires this into CI.
package stitch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"costcache/internal/obs/span"
)

// Seg is one stage segment of a span, in the emitting tracer's clock.
type Seg struct {
	Stage string `json:"stage"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Span is one request span parsed from a span JSONL stream. ClientID is zero
// on client-side spans; on server-side spans it carries the propagated client
// span id (the join key) and Node names the serving node.
type Span struct {
	ID       uint64
	Node     string
	ClientID uint64
	Shard    int
	Key      uint64
	Op       string
	Outcome  string
	Cost     int64
	Start    int64
	End      int64
	Stages   []Seg
}

// jsonSpan mirrors the reqspan JSONL schema for decoding.
type jsonSpan struct {
	ID       uint64 `json:"id"`
	Node     string `json:"node"`
	ClientID uint64 `json:"client_id"`
	Shard    int    `json:"shard"`
	Key      uint64 `json:"key"`
	Op       string `json:"op"`
	Outcome  string `json:"outcome"`
	Cost     int64  `json:"cost"`
	Start    int64  `json:"start"`
	End      int64  `json:"end"`
	Stages   []Seg  `json:"stages"`
}

// ParseJSONL decodes every "kind":"req" line of a span JSONL stream. Lines
// of other kinds (simulator miss spans) are skipped — only request spans
// participate in stitching.
func ParseJSONL(data []byte) ([]Span, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var out []Span
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var kind struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("stitch: line %d: %v", line, err)
		}
		if kind.Kind != "req" {
			continue
		}
		var js jsonSpan
		if err := json.Unmarshal(raw, &js); err != nil {
			return nil, fmt.Errorf("stitch: line %d: %v", line, err)
		}
		out = append(out, Span{
			ID: js.ID, Node: js.Node, ClientID: js.ClientID,
			Shard: js.Shard, Key: js.Key, Op: js.Op, Outcome: js.Outcome,
			Cost: js.Cost, Start: js.Start, End: js.End, Stages: js.Stages,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stitch: %v", err)
	}
	return out, nil
}

// pair is one matched client/server span couple plus the client's net
// round-trip bracket.
type pair struct {
	client, server *Span
	wStart, rEnd   int64 // net_write start, net_read end (client clock)
}

// NodeFit is one node's recovered clock offset: shifting the node's span
// timestamps by OffsetNs moves them onto the client tracer's clock. SlackNs
// is the width of the feasible interval the offset was cut from — the
// tightest round trip bounds how precisely the offset is known.
type NodeFit struct {
	Node     string `json:"node"`
	Pairs    int    `json:"pairs"`
	OffsetNs int64  `json:"offset_ns"`
	SlackNs  int64  `json:"slack_ns"`
}

// Result is a successful stitch: every server span matched, every offset
// feasible, every shifted server span strictly inside its client bracket.
type Result struct {
	// Clients and Servers count the request spans on each side; Pairs the
	// matched couples (== Servers on success). Local counts client spans
	// with no net round trip (in-process requests passed through unstitched).
	Clients int
	Servers int
	Pairs   int
	Local   int
	// Nodes holds one offset fit per serving node, name-sorted.
	Nodes []NodeFit

	clients []Span
	byNode  map[string][]pair
	offsets map[string]int64
}

// Stitch matches server spans to client spans by propagated id, recovers one
// clock offset per node, and verifies every shifted server span lies inside
// its client's net round-trip bracket. Any orphan (either direction),
// negative duration, malformed stage nesting, or infeasible offset interval
// is an error.
func Stitch(spans []Span) (*Result, error) {
	r := &Result{byNode: map[string][]pair{}, offsets: map[string]int64{}}
	clientByID := map[uint64]*Span{}
	var servers []*Span
	for i := range spans {
		sp := &spans[i]
		if err := checkShape(sp); err != nil {
			return nil, err
		}
		if sp.ClientID != 0 {
			servers = append(servers, sp)
			continue
		}
		if clientByID[sp.ID] != nil {
			return nil, fmt.Errorf("stitch: duplicate client span id %d", sp.ID)
		}
		clientByID[sp.ID] = sp
		r.clients = append(r.clients, *sp)
	}
	r.Clients, r.Servers = len(r.clients), len(servers)

	matched := map[uint64]bool{}
	for _, sv := range servers {
		cl := clientByID[sv.ClientID]
		if cl == nil {
			return nil, fmt.Errorf("stitch: orphan server span %d on node %q: no client span %d",
				sv.ID, sv.Node, sv.ClientID)
		}
		if matched[sv.ClientID] {
			return nil, fmt.Errorf("stitch: client span %d matched by multiple server spans", sv.ClientID)
		}
		matched[sv.ClientID] = true
		w, rd, ok := bracket(cl)
		if !ok {
			return nil, fmt.Errorf("stitch: client span %d has a server half but no net_write/net_read bracket", cl.ID)
		}
		r.byNode[sv.Node] = append(r.byNode[sv.Node], pair{client: cl, server: sv, wStart: w, rEnd: rd})
		r.Pairs++
	}

	// With servers present, every round-tripped client span must have its
	// half — the server emits a span for exactly the requests the client
	// sampled. Errored round trips are exempt: the request may never have
	// reached a server.
	for i := range r.clients {
		cl := &r.clients[i]
		if _, _, ok := bracket(cl); !ok {
			r.Local++
			continue
		}
		if r.Servers > 0 && !matched[cl.ID] && cl.Outcome != "error" {
			return nil, fmt.Errorf("stitch: orphan client span %d (%s): no server span propagated it back",
				cl.ID, cl.Outcome)
		}
	}

	for node, ps := range r.byNode {
		fit, err := fitOffset(node, ps)
		if err != nil {
			return nil, err
		}
		r.Nodes = append(r.Nodes, fit)
		r.offsets[node] = fit.OffsetNs
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i].Node < r.Nodes[j].Node })

	// The midpoint satisfies every pair by construction; verify anyway so a
	// future refactor cannot silently ship leaking timelines.
	for node, ps := range r.byNode {
		off := r.offsets[node]
		for _, p := range ps {
			if p.server.Start+off < p.wStart || p.server.End+off > p.rEnd {
				return nil, fmt.Errorf("stitch: node %q offset %dns leaves server span %d outside client %d's bracket",
					node, off, p.server.ID, p.client.ID)
			}
		}
	}
	return r, nil
}

// checkShape rejects negative durations and stage segments outside their
// span on either half.
func checkShape(sp *Span) error {
	side := "client"
	if sp.ClientID != 0 {
		side = "server"
	}
	if sp.End < sp.Start {
		return fmt.Errorf("stitch: %s span %d has negative duration [%d,%d]", side, sp.ID, sp.Start, sp.End)
	}
	for _, sg := range sp.Stages {
		if sg.End < sg.Start {
			return fmt.Errorf("stitch: %s span %d stage %s has negative duration", side, sp.ID, sg.Stage)
		}
		if sg.Start < sp.Start || sg.End > sp.End {
			return fmt.Errorf("stitch: %s span %d stage %s [%d,%d] outside span [%d,%d]",
				side, sp.ID, sg.Stage, sg.Start, sg.End, sp.Start, sp.End)
		}
	}
	return nil
}

// bracket returns the client span's net round trip: the start of its first
// net_write segment and the end of its last net_read segment.
func bracket(sp *Span) (wStart, rEnd int64, ok bool) {
	haveW, haveR := false, false
	for _, sg := range sp.Stages {
		if sg.Stage == "net_write" && !haveW {
			wStart, haveW = sg.Start, true
		}
		if sg.Stage == "net_read" {
			rEnd, haveR = sg.End, true
		}
	}
	return wStart, rEnd, haveW && haveR
}

// fitOffset intersects every pair's feasible interval and returns the
// midpoint offset for the node.
func fitOffset(node string, ps []pair) (NodeFit, error) {
	lo, hi := int64(-1)<<62, int64(1)<<62
	for _, p := range ps {
		if l := p.wStart - p.server.Start; l > lo {
			lo = l
		}
		if h := p.rEnd - p.server.End; h < hi {
			hi = h
		}
	}
	if lo > hi {
		return NodeFit{}, fmt.Errorf("stitch: node %q: no clock offset places every server span inside its client bracket (feasible interval [%d,%d] is empty)",
			node, lo, hi)
	}
	return NodeFit{Node: node, Pairs: len(ps), OffsetNs: lo + (hi-lo)/2, SlackNs: hi - lo}, nil
}

// Chrome track layout: the client process takes pid clientPid with one track
// per ring node; server processes take serverPidBase+i in node-name order,
// one track per server shard. serverPidBase matches reqspan's chromePidBase
// so stitched traces read like the single-process ones.
const (
	clientPid     = 1
	serverPidBase = 1000
)

// ChromeTrace renders the stitched timeline as a Chrome trace-event JSON
// array: client spans verbatim on the client process, server spans shifted
// onto the client clock on per-node processes, each span a complete slice
// named by its outcome with stage segments as nested child slices (the same
// shape reqspan emits, so manifest.ValidateChromeTrace and report -check
// accept the output).
func (r *Result) ChromeTrace() []byte {
	var b []byte
	b = append(b, '[')
	first := true
	event := func(ev []byte) {
		if !first {
			b = append(b, ',', '\n')
		}
		first = false
		b = append(b, ev...)
	}

	meta := func(pid, tid int, kind, name string) {
		ev := append([]byte(`{"name":"`), kind...)
		ev = append(ev, `","ph":"M","pid":`...)
		ev = strconv.AppendInt(ev, int64(pid), 10)
		ev = append(ev, `,"tid":`...)
		ev = strconv.AppendInt(ev, int64(tid), 10)
		ev = append(ev, `,"args":{"name":"`...)
		ev = append(ev, name...)
		ev = append(ev, `"}}`...)
		event(ev)
	}
	slice := func(pid, tid int, name string, start, end int64, args []byte) {
		ev := append([]byte(`{"name":"`), name...)
		ev = append(ev, `","cat":"req","ph":"X","pid":`...)
		ev = strconv.AppendInt(ev, int64(pid), 10)
		ev = append(ev, `,"tid":`...)
		ev = strconv.AppendInt(ev, int64(tid), 10)
		ev = append(ev, `,"ts":`...)
		ev = span.AppendChromeTs(ev, start)
		ev = append(ev, `,"dur":`...)
		ev = span.AppendChromeTs(ev, end-start)
		ev = append(ev, args...)
		ev = append(ev, '}')
		event(ev)
	}
	emitSpan := func(pid, tid int, sp *Span, off int64) {
		args := append([]byte(`,"args":{"id":`), strconv.FormatUint(sp.ID, 10)...)
		if sp.ClientID != 0 {
			args = append(args, `,"client_id":`...)
			args = strconv.AppendUint(args, sp.ClientID, 10)
		}
		args = append(args, `,"key":`...)
		args = strconv.AppendUint(args, sp.Key, 10)
		args = append(args, `,"op":"`...)
		args = append(args, sp.Op...)
		args = append(args, `"}`...)
		slice(pid, tid, sp.Outcome, sp.Start+off, sp.End+off, args)
		for _, sg := range sp.Stages {
			if sg.End <= sg.Start {
				continue // zero-length stages would confuse slice nesting
			}
			slice(pid, tid, sg.Stage, sg.Start+off, sg.End+off, nil)
		}
	}

	meta(clientPid, 0, "process_name", "client")
	clientTids := map[int]bool{}
	for i := range r.clients {
		cl := &r.clients[i]
		if !clientTids[cl.Shard] {
			clientTids[cl.Shard] = true
			meta(clientPid, cl.Shard, "thread_name", "node "+strconv.Itoa(cl.Shard))
		}
		emitSpan(clientPid, cl.Shard, cl, 0)
	}
	for i, fit := range r.Nodes {
		pid := serverPidBase + i
		name := fit.Node
		if name == "" {
			name = "server"
		}
		meta(pid, 0, "process_name", name)
		serverTids := map[int]bool{}
		for _, p := range r.byNode[fit.Node] {
			if !serverTids[p.server.Shard] {
				serverTids[p.server.Shard] = true
				meta(pid, p.server.Shard, "thread_name", "shard "+strconv.Itoa(p.server.Shard))
			}
			emitSpan(pid, p.server.Shard, p.server, fit.OffsetNs)
		}
	}
	b = append(b, ']', '\n')
	return b
}
