package replacement

// Random evicts a pseudo-random valid way. It serves as a locality-blind,
// cost-blind reference point in ablation experiments. The generator is a
// deterministic xorshift so runs are reproducible.
type Random struct {
	stackBase
	state uint64
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(seed uint64) *Random {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Random{state: seed}
}

// Name implements Policy.
func (*Random) Name() string { return "Random" }

// Reset implements Policy.
func (p *Random) Reset(sets, ways int) { p.reset(sets, ways) }

// Access implements Policy.
func (p *Random) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy.
func (p *Random) Touch(set, way int) { p.set(set).touch(way) }

// Victim implements Policy: a uniformly chosen valid way.
func (p *Random) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	// xorshift64*
	p.state ^= p.state >> 12
	p.state ^= p.state << 25
	p.state ^= p.state >> 27
	r := p.state * 0x2545f4914f6cdd1d
	return m.stack[int(r%uint64(m.live))]
}

// Fill implements Policy.
func (p *Random) Fill(set, way int, tag uint64, cost Cost) { p.set(set).fill(way, tag, cost) }

// Invalidate implements Policy.
func (p *Random) Invalidate(set, way int, tag uint64) {
	if way >= 0 {
		p.set(set).invalidate(way)
	}
}
