package workload

import (
	"costcache/internal/trace"
)

// Barnes models the SPLASH-2 Barnes-Hut N-body simulation: per-processor
// body arrays with an irregular, data-dependent walk over a shared octree.
// Bodies are first-touched (and thus homed) by their owner; tree cells are
// written by effectively random processors during tree construction, so
// their homes scatter across the machine. Force computation reads tree
// cells with a Zipf popularity skew (the root and top cells are hottest),
// interleaved with local body accumulation — yielding the high remote
// fraction (44.8% in Table 1) and irregular reuse the paper highlights.
type Barnes struct {
	// Bodies is the number of bodies; each occupies two 64-byte blocks.
	Bodies int
	// TreeNodes is the number of octree cells; each occupies one block.
	TreeNodes int
	// WalkNodes is how many cells a body's force walk visits.
	WalkNodes int
	// Iterations is the number of time steps.
	Iterations int
	// Procs is the processor count (the paper uses 8).
	Procs int
	// Seed controls node selection and interleaving.
	Seed int64
}

// DefaultBarnes returns the configuration used by the experiment drivers
// (8K bodies, scaled from the paper's 64K trace study / 4K RSIM study). The
// tree-node count models only the hot upper tree that force walks actually
// revisit; 320 cells reproduces the reuse-distance mass that gives the
// paper's Table 2 savings on Barnes.
func DefaultBarnes() Barnes {
	return Barnes{Bodies: 8192, TreeNodes: 320, WalkNodes: 16, Iterations: 4, Procs: 8, Seed: 2}
}

// Name implements Generator.
func (Barnes) Name() string { return "Barnes" }

func (w Barnes) bodyAddr(b, blk int) uint64 {
	return regionBodies + uint64(b)*2*BlockBytes + uint64(blk)*BlockBytes
}

func (w Barnes) nodeAddr(n uint64) uint64 { return regionTree + n*BlockBytes }

// Generate implements Generator.
func (w Barnes) Generate() *trace.Trace { return w.emit().build(w.Name()) }

func (w Barnes) emit() *builder {
	b := newBuilder(w.Procs, w.Seed)
	perProc := w.Bodies / w.Procs

	// Initialization: owners write their bodies (first touch -> local home).
	for p := 0; p < w.Procs; p++ {
		for i := p * perProc; i < (p+1)*perProc; i++ {
			b.write(p, w.bodyAddr(i, 0))
			b.write(p, w.bodyAddr(i, 1))
		}
	}
	b.barrier()

	for it := 0; it < w.Iterations; it++ {
		// Tree construction: each cell is written by a pseudo-random
		// processor that changes every iteration, scattering homes on the
		// first iteration and generating invalidation traffic afterwards.
		for n := 0; n < w.TreeNodes; n++ {
			p := int(hashU64(uint64(n)*2654435761+uint64(it)) % uint64(w.Procs))
			b.read(p, w.nodeAddr(uint64(n)))
			b.write(p, w.nodeAddr(uint64(n)))
		}
		b.barrier()

		// Force computation: each owner walks the tree for its bodies.
		// Cell selection is a deterministic hash of (body, step, iteration)
		// mapped through a quadratic skew so low-numbered (top-of-tree)
		// cells are visited far more often.
		for p := 0; p < w.Procs; p++ {
			for i := p * perProc; i < (p+1)*perProc; i++ {
				b.read(p, w.bodyAddr(i, 0))
				b.read(p, w.bodyAddr(i, 1))
				for s := 0; s < w.WalkNodes; s++ {
					h := hashU64(uint64(i)<<20 ^ uint64(s)<<4 ^ uint64(it))
					// Square the uniform draw: density ~ 1/(2*sqrt(u)),
					// concentrating visits near node 0.
					u := float64(h>>11) / float64(1<<53)
					n := uint64(u * u * float64(w.TreeNodes))
					b.read(p, w.nodeAddr(n))
					b.read(p, w.nodeAddr(n)+32) // second word of the cell
					b.read(p, w.bodyAddr(i, 0)) // accumulate force
					b.write(p, w.bodyAddr(i, 1))
				}
			}
		}
		b.barrier()
	}
	return b
}

// hashU64 is the SplitMix64 finalizer used for data-dependent choices.
func hashU64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
