// Command costsweep runs the Section 3 sweeps on one benchmark: the random
// cost mapping over a grid of (cost ratio, high-cost access fraction) cells
// (Figure 3) or the first-touch mapping over cost ratios (Table 2), and
// prints the relative cost savings of GD, BCL, DCL and ACL over LRU, as a
// table or CSV.
//
// Usage:
//
//	costsweep -bench Barnes [-map random|firsttouch] [-csv]
//	costsweep -bench Barnes -obs.listen localhost:6060 -manifest results/sweep.json
//
// Sweeps are long: phase progress (one phase per ratio) is reported on
// stderr, -obs.listen serves live /metrics and pprof while the sweep runs,
// -obs.dump prints the metrics registry afterwards, and -manifest writes the
// savings grid as a run manifest for cmd/report.
//
// SIGINT/SIGTERM stop the sweep at the next ratio boundary: completed cells
// are printed, a partial manifest is flushed with "interrupted": true, and
// the process exits 130. A cell that panics (a bad configuration) is reported
// as a per-row error instead of killing the sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/cli"
	"costcache/internal/costsim"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/tabulate"
	"costcache/internal/workload"
)

var validMaps = []string{"random", "firsttouch"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("costsweep: ")
	bench := flag.String("bench", "Raytrace", "benchmark name")
	mapping := flag.String("map", "random", "cost mapping: random (Figure 3) or firsttouch (Table 2)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	procFlag := flag.Int("proc", 0, "sample processor")
	seed := flag.Uint64("seed", 42, "random mapping seed")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address")
	obsDump := flag.Bool("obs.dump", false, "dump the metrics registry as text after the sweep")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file")
	flag.Parse()
	stopped := cli.Interrupt()

	if _, ok := workload.ByName(*bench); !ok {
		cli.BadFlag("costsweep", "-bench", *bench, workload.Names())
	}
	if *mapping != "random" && *mapping != "firsttouch" {
		cli.BadFlag("costsweep", "-map", *mapping, validMaps)
	}

	if *obsListen != "" {
		srv, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: http://%s\n", srv.Addr())
	}

	g, _ := workload.ByName(*bench)
	tr := g.Generate()
	view := tr.SampleView(int16(*procFlag))
	cfg := costsim.Default()

	// Phase progress on stderr: tables go to stdout, so redirections stay
	// clean while long sweeps remain visibly alive.
	prog := obs.NewProgress(os.Stderr, obs.Default, "cells")

	var man *manifest.Manifest
	if *manifestPath != "" {
		man = manifest.New("costsweep")
		man.SetConfig("bench", *bench)
		man.SetConfig("map", *mapping)
		man.SetConfig("proc", *procFlag)
		man.SetConfig("seed", *seed)
		man.SetConfig("refs", len(view))
	}
	// record stamps each cell's savings into the manifest; a cell that
	// panicked is recorded as a per-row error (config name + stack) and
	// reported on stderr instead of aborting the sweep.
	record := func(label string, pts []costsim.SweepPoint, ptLabel func(costsim.SweepPoint) string) {
		for _, pt := range pts {
			if pt.Err != "" {
				log.Printf("cell %s/%s failed: %s\n%s", label, ptLabel(pt), pt.Err, pt.Stack)
				if man != nil {
					man.SetConfig(obs.Name("sweep_error", "sweep", label, "point", ptLabel(pt)), pt.Err)
				}
				continue
			}
			if man == nil {
				continue
			}
			for name, sav := range pt.Savings {
				man.SetMetric(obs.Name("savings_pct",
					"sweep", label, "point", ptLabel(pt), "policy", name), sav*100)
			}
		}
	}

	emit := func(t *tabulate.Table) {
		if *csv {
			if err := t.CSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		}
		t.Fprint(os.Stdout)
	}

	interrupted := false
	switch *mapping {
	case "random":
		for _, r := range costsim.PaperRatios() {
			if stopped() {
				interrupted = true
				break
			}
			prog.Phase(r.Label)
			pts := costsim.RandomSweep(view, cfg, []costsim.Ratio{r},
				costsim.PaperHAFs(), costsim.PaperPolicies(), *seed)
			prog.Add(int64(len(pts)))
			record(r.Label, pts, func(pt costsim.SweepPoint) string {
				return fmt.Sprintf("haf=%.2f", pt.TargetHAF)
			})
			t := tabulate.New(fmt.Sprintf("%s, %s: relative cost savings over LRU (%%)", *bench, r.Label),
				"HAF", "measured", "GD", "BCL", "DCL", "ACL")
			for _, pt := range pts {
				if pt.Err != "" {
					t.Add(fmt.Sprintf("%.2f", pt.TargetHAF), "ERROR", pt.Err, "", "", "")
					continue
				}
				t.AddF(fmt.Sprintf("%.2f", pt.TargetHAF), pt.MeasuredHAF,
					pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
					pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
			}
			emit(t)
			fmt.Println()
		}
		prog.Done()
	case "firsttouch":
		if stopped() {
			interrupted = true
			break
		}
		prog.Phase("firsttouch")
		homes := workload.FirstTouchHomes(tr, cfg.BlockBytes)
		pts := costsim.FirstTouchSweep(view, cfg, workload.HomeFunc(homes, 0),
			int16(*procFlag), costsim.Table2Ratios(), costsim.PaperPolicies())
		prog.Add(int64(len(pts)))
		record("firsttouch", pts, func(pt costsim.SweepPoint) string { return pt.Ratio.Label })
		prog.Done()
		t := tabulate.New(fmt.Sprintf("%s: first-touch cost savings over LRU (%%)", *bench),
			"ratio", "remote frac", "GD", "BCL", "DCL", "ACL")
		for _, pt := range pts {
			if pt.Err != "" {
				t.Add(pt.Ratio.Label, "ERROR", pt.Err, "", "", "")
				continue
			}
			t.AddF(pt.Ratio.Label, pt.MeasuredHAF,
				pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
				pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
		}
		emit(t)
	}

	if interrupted {
		fmt.Fprintln(os.Stderr, "costsweep: interrupted — flushing partial results")
	}
	if man != nil {
		if interrupted {
			man.MarkInterrupted()
		}
		if err := man.WriteFile(*manifestPath); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote manifest to %s\n", *manifestPath)
	}
	if *obsDump {
		fmt.Println()
		obs.Default.Snapshot().WriteText(os.Stdout)
	}
	if interrupted || stopped() {
		os.Exit(cli.ExitInterrupted)
	}
}
