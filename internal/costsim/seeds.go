package costsim

import (
	"costcache/internal/replacement"
	"costcache/internal/trace"
)

// SeedStats summarizes a sweep cell across several random cost-mapping
// seeds, exposing the spread behind the single-seed numbers the tables
// print.
type SeedStats struct {
	// Seeds is how many mappings were evaluated.
	Seeds int
	// Mean, Min and Max are per-policy relative savings over LRU.
	Mean, Min, Max map[string]float64
}

// RandomSweepSeeds evaluates one (ratio, HAF) cell under several seeds of
// the calibrated random mapping and aggregates the savings. It answers the
// robustness question the paper's single-mapping Figure 3 leaves open: how
// much do the savings depend on WHICH blocks drew the high cost?
func RandomSweepSeeds(view []trace.SampleRef, cfg Config, r Ratio, haf float64,
	policies []replacement.Factory, seeds []uint64) SeedStats {
	cfg = cfg.orDefault()
	counts, _ := MissCounts(view, cfg)
	st := SeedStats{
		Seeds: len(seeds),
		Mean:  map[string]float64{},
		Min:   map[string]float64{},
		Max:   map[string]float64{},
	}
	for i, seed := range seeds {
		src := CalibratedRandom(view, cfg.BlockBytes, haf, r, seed)
		lru := CostOf(counts, src)
		for _, f := range policies {
			p := f()
			res := Run(view, cfg, p, src)
			s := RelativeSavings(lru, res.L2.AggCost)
			name := res.Policy
			st.Mean[name] += s
			if i == 0 || s < st.Min[name] {
				st.Min[name] = s
			}
			if i == 0 || s > st.Max[name] {
				st.Max[name] = s
			}
		}
	}
	for name := range st.Mean {
		st.Mean[name] /= float64(len(seeds))
	}
	return st
}
