package loadgen

import (
	"sync/atomic"

	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
	"costcache/internal/wire"
)

// RemoteTarget drives a ring of cacheserved nodes instead of an in-process
// engine: each request becomes a GETORLOAD frame declaring the key's
// predicted miss cost, so the server charges the identical cost stream the
// in-process loader would have — a single-worker closed-loop remote run is
// counter-for-counter identical to the same config run in-process.
//
// When a tracer is configured, every request is offered as a span whose
// stages tile the round trip: net_write (request encode + socket write) and
// net_read (response wait — which includes the server's entire service
// time). The span's outcome and charged cost come from the response flags,
// so stride-1 sampled remote runs reconcile outcome counts and cost sums
// against the server's counter deltas exactly like in-process runs do.
type RemoteTarget struct {
	ring   *client.Ring
	ns     string
	tracer *reqspan.Tracer

	// Client-observed outcome totals, the reconciliation side the cluster
	// manifest's summed per-node engine counters must match bit-for-bit.
	// unaccounted counts requests the servers' engines never completed for
	// us (transport errors, timeouts, sheds) — reconciliation is only exact
	// when it is zero, so the checker downgrades to advisory otherwise.
	ops         atomic.Uint64
	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	costPaid    atomic.Int64
	unaccounted atomic.Int64
}

// NewRemoteTarget builds a remote target over ring, issuing every request
// against namespace ns. tracer may be nil.
func NewRemoteTarget(ring *client.Ring, ns string, tracer *reqspan.Tracer) *RemoteTarget {
	return &RemoteTarget{ring: ring, ns: ns, tracer: tracer}
}

// GetOrLoad implements Target. The load closure is ignored: the server's
// backend produces values.
func (t *RemoteTarget) GetOrLoad(key uint64, c replacement.Cost, _ engine.Loader) (bool, error) {
	// The span's shard slot carries the ring node, so hot-shard analytics
	// become hot-node analytics on remote runs.
	sp := t.tracer.Begin(reqspan.OpGetOrLoad, t.ring.Pick(key), key)
	// Propagate the span identity (and its sampling decision) on the wire,
	// so the serving node emits its half of this request under the same id.
	id, emit := sp.TraceCtx()
	tc := wire.TraceCtx{SpanID: id, Op: t.ops.Add(1), Emit: emit}
	p, node, err := t.ring.StartGetOrLoadTraced(t.ns, key, int64(c), tc)
	sp.Mark(reqspan.StageNetWrite)
	if err != nil {
		t.unaccounted.Add(1)
		t.tracer.Finish(sp, reqspan.OutcomeError)
		return false, err
	}
	res, err := p.Wait()
	sp.Mark(reqspan.StageNetRead)
	t.ring.Report(node, err)
	if err != nil {
		t.unaccounted.Add(1)
		t.tracer.Finish(sp, reqspan.OutcomeError)
		return false, err
	}
	sp.AddCost(res.Charged)
	t.costPaid.Add(res.Charged)
	switch {
	case res.Hit:
		t.hits.Add(1)
		t.tracer.Finish(sp, reqspan.OutcomeHit)
	case res.Coalesced:
		t.coalesced.Add(1)
		t.tracer.Finish(sp, reqspan.OutcomeCoalesced)
	default:
		t.misses.Add(1)
		t.tracer.Finish(sp, reqspan.OutcomeMiss)
	}
	return res.Stale, nil
}

// Observed is the client's own account of a remote run: what this process
// saw come back over the wire, counted per response.
type Observed struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	CostPaid    int64 `json:"cost_paid"`
	Unaccounted int64 `json:"unaccounted"`
}

// Observed returns the client-observed totals accumulated so far.
func (t *RemoteTarget) Observed() Observed {
	return Observed{
		Hits:        t.hits.Load(),
		Misses:      t.misses.Load(),
		Coalesced:   t.coalesced.Load(),
		CostPaid:    t.costPaid.Load(),
		Unaccounted: t.unaccounted.Load(),
	}
}

// Ring exposes the ring the target routes through (for manifests, offsets
// and the /debug/engine ring block).
func (t *RemoteTarget) Ring() *client.Ring { return t.ring }

// Stats implements Target: the ring-wide sum of every node's engine
// counters for the namespace, mapped into the engine.Stats shape the
// manifest schema shares.
func (t *RemoteTarget) Stats() (engine.Stats, error) {
	st, err := t.ring.Stats(t.ns)
	if err != nil {
		return engine.Stats{}, err
	}
	return statsFromWire(st), nil
}

// statsFromWire maps the wire counter set onto engine.Stats.
func statsFromWire(st wire.Stats) engine.Stats {
	return engine.Stats{
		Hits:         st.Hits,
		Misses:       st.Misses,
		Coalesced:    st.Coalesced,
		Evictions:    st.Evictions,
		CostPaid:     st.CostPaid,
		LockWaitNs:   st.LockWaitNs,
		ShadowCost:   st.ShadowCost,
		LoadTimeouts: st.LoadTimeouts,
		LoadRetries:  st.LoadRetries,
		Shed:         st.Shed,
		StaleServed:  st.StaleServed,
	}
}
