package costcache_test

import (
	"testing"

	"costcache"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tr := costcache.Workload("Raytrace").Generate()
	view := tr.SampleView(0)
	src := costcache.RandomCosts(1, 8, 0.2, 42)
	lru := costcache.SimulateTrace(view, costcache.NewLRU(), src)
	dcl := costcache.SimulateTrace(view, costcache.NewDCL(0), src)
	if lru.L2.AggCost <= 0 || dcl.L2.AggCost <= 0 {
		t.Fatal("no cost accumulated")
	}
	s := costcache.RelativeSavings(lru.L2.AggCost, dcl.L2.AggCost)
	if s <= 0 {
		t.Fatalf("DCL savings %.4f, want positive on Raytrace at HAF 0.2", s)
	}
}

func TestFacadePolicies(t *testing.T) {
	names := map[string]costcache.Policy{
		"LRU":    costcache.NewLRU(),
		"GD":     costcache.NewGD(),
		"BCL":    costcache.NewBCL(),
		"DCL":    costcache.NewDCL(0),
		"ACL":    costcache.NewACL(0),
		"DCL-a4": costcache.NewDCL(4),
		"ACL-a4": costcache.NewACL(4),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestFacadeCacheAndCosts(t *testing.T) {
	l1 := costcache.NewCache(costcache.CacheConfig{
		Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64,
	})
	l2 := costcache.NewCache(costcache.CacheConfig{
		Name: "L2", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64,
		Policy: costcache.NewDCL(0),
		Cost: costcache.CostFunc(func(block uint64) costcache.Cost {
			return costcache.Cost(block%2*7 + 1)
		}),
	})
	h := costcache.NewHierarchy(l1, l2)
	for i := 0; i < 1000; i++ {
		h.Access(uint64(i*64%4096), i%5 == 0)
	}
	if h.L2.Stats().Misses == 0 {
		t.Fatal("no activity")
	}

	u := costcache.UniformCosts(3)
	if u.MissCost(9) != 3 {
		t.Fatal("UniformCosts broken")
	}
	ft := costcache.FirstTouchCosts(func(uint64) int16 { return 2 }, 2, 1, 9)
	if ft.MissCost(5) != 1 {
		t.Fatal("FirstTouchCosts broken")
	}
	p := costcache.LastLatencyPredictor(120)
	p.Observe(7, 480)
	if p.MissCost(7) != 480 || p.MissCost(8) != 120 {
		t.Fatal("predictor broken")
	}
}

func TestFacadeFirstTouchHome(t *testing.T) {
	tr := costcache.Workload("LU").Generate()
	home := costcache.FirstTouchHome(tr, 64)
	if home(tr.Refs[0].Addr/64) != tr.Refs[0].Proc {
		t.Fatal("first toucher must be the home")
	}
}

func TestFacadeUnknownWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	costcache.Workload("SPECjbb")
}

func TestFacadeExtraPolicies(t *testing.T) {
	names := map[string]costcache.Policy{
		"PLRU":    costcache.NewPLRU(),
		"CS-PLRU": costcache.NewCSPLRU(0),
		"LFU":     costcache.NewLFU(),
		"SLRU":    costcache.NewSLRU(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
	f, ok := costcache.PolicyByName("DCL-a4")
	if !ok || f().Name() != "DCL-a4" {
		t.Fatal("PolicyByName broken")
	}
	if _, ok := costcache.PolicyByName("nope"); ok {
		t.Fatal("PolicyByName must reject unknown names")
	}
}

func TestFacadeOracles(t *testing.T) {
	ev := []costcache.OptEvent{{Block: 1}, {Block: 2}, {Block: 1}}
	if got := costcache.OptimalMisses(ev, 1); got != 3 {
		t.Fatalf("OptimalMisses = %d, want 3", got)
	}
	costOf := func(b uint64) costcache.Cost { return costcache.Cost(b) }
	if got := costcache.OptimalAggregateCost(ev, 2, costOf, false); got != 3 {
		t.Fatalf("OptimalAggregateCost = %d, want 3", got)
	}
}

func TestFacadeSimulateNUMA(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	lru := costcache.SimulateNUMA("LU",
		func() costcache.Policy { return costcache.NewLRU() }, 500)
	dcl := costcache.SimulateNUMA("LU",
		func() costcache.Policy { return costcache.NewDCL(0) }, 500)
	if lru.ExecNs <= 0 || dcl.ExecNs <= 0 {
		t.Fatal("no execution time")
	}
	if lru.Policy != "LRU" || dcl.Policy != "DCL" {
		t.Fatalf("policies %q/%q", lru.Policy, dcl.Policy)
	}
	if dcl.ExecNs == lru.ExecNs {
		t.Fatal("policies indistinguishable")
	}
}
