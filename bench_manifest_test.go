// Engine benchmark baseline: TestWriteBenchManifest re-runs the GetOrLoad
// hot-path benchmarks (BenchmarkEngineParallel / BenchmarkEngineContention's
// configurations, without sub-benchmark output) through testing.Benchmark
// and writes the figures as a run manifest, so `make bench` produces
// results/BENCH_engine.json in the same stable schema cmd/report already
// validates and diffs. The test is a no-op unless BENCH_MANIFEST names the
// output file, so a plain `go test ./...` never spends benchmark time;
// -benchtime scales the measurement window as usual.
package costcache_test

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"costcache/internal/engine"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/replacement"
)

// benchEngineParallel measures GetOrLoad under RunParallel on the standard
// bench geometry (4096 sets × 4 ways, DCL, 90/10 hot/cold keys) and returns
// the result plus the engine's own counters for derived metrics.
func benchEngineParallel(shards int) (testing.BenchmarkResult, engine.Stats) {
	var st engine.Stats
	r := testing.Benchmark(func(b *testing.B) {
		e := engine.New(engine.Config{
			Shards: shards, Sets: 4096, Ways: 4,
			Policy: func() replacement.Policy { return replacement.NewDCL() },
		})
		var seed atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			keys := benchKeys{state: seed.Add(0x9e3779b97f4a7c15)}
			for pb.Next() {
				if _, err := e.GetOrLoad(keys.next(), benchLoader); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		st = e.Stats()
	})
	return r, st
}

// benchEngineContention hammers one always-cached key: the serialized
// single-shard floor.
func benchEngineContention(shards int) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		e := engine.New(engine.Config{
			Shards: shards, Sets: 4096, Ways: 4,
			Policy: func() replacement.Policy { return replacement.NewDCL() },
		})
		if _, err := e.GetOrLoad(1, benchLoader); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := e.GetOrLoad(1, benchLoader); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// TestWriteBenchManifest writes the engine benchmark baseline manifest to
// $BENCH_MANIFEST (skipped when unset). scripts/ci.sh runs it with a short
// -benchtime into a scratch directory and diffs against the archived
// results/BENCH_engine.json with a generous tolerance; `make bench`
// regenerates the archive itself.
func TestWriteBenchManifest(t *testing.T) {
	path := os.Getenv("BENCH_MANIFEST")
	if path == "" {
		t.Skip("set BENCH_MANIFEST=<path> to write the engine benchmark manifest")
	}
	m := manifest.New("bench")
	m.SetConfig("sets", 4096)
	m.SetConfig("ways", 4)
	m.SetConfig("policy", "DCL")
	m.SetConfig("gomaxprocs", runtime.GOMAXPROCS(0))
	m.SetConfig("cpus", runtime.NumCPU())
	for _, shards := range []int{1, 4, 16} {
		label := fmt.Sprint(shards)
		r, st := benchEngineParallel(shards)
		m.SetMetric(obs.Name("bench_parallel_ns_op", "shards", label), float64(r.NsPerOp()))
		m.SetMetric(obs.Name("bench_parallel_allocs_op", "shards", label), float64(r.AllocsPerOp()))
		if ops := st.Hits + st.Misses + st.Coalesced; ops > 0 {
			m.SetMetric(obs.Name("bench_parallel_hit_pct", "shards", label), 100*st.HitRate())
			m.SetMetric(obs.Name("bench_parallel_lockwait_ns_op", "shards", label),
				float64(st.LockWaitNs)/float64(ops))
		}
	}
	for _, shards := range []int{1, 16} {
		label := fmt.Sprint(shards)
		r := benchEngineContention(shards)
		m.SetMetric(obs.Name("bench_contention_ns_op", "shards", label), float64(r.NsPerOp()))
		m.SetMetric(obs.Name("bench_contention_allocs_op", "shards", label), float64(r.AllocsPerOp()))
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote engine benchmark manifest to %s", path)
}
