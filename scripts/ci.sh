#!/bin/sh
# CI gate: formatting, vet, build, tests, the full suite under the race
# detector, and an observability smoke run whose artifacts (run manifest,
# span JSONL, Chrome trace) are validated structurally and diffed against
# the archived baseline. Run from the repository root.
set -eu

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Observability smoke: a quick deterministic numasim run producing every
# artifact kind. cmd/report -check fails the gate on malformed output; the
# manifest diff against the archived baseline warns on metric drift (the
# simulator is deterministic, so drift means behaviour changed) but only
# fails on malformed manifests (exit 2).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT

go run ./cmd/numasim -quick -bench Barnes -policy DCL \
    -span.trace "$smoke/trace.json" -span.jsonl "$smoke/spans.jsonl" \
    -manifest "$smoke/manifest.json" > "$smoke/stdout.txt"

go run ./cmd/report -check \
    "$smoke/manifest.json" "$smoke/spans.jsonl" "$smoke/trace.json"

baseline=results/MANIFEST_numasim_quick.json
if [ -f "$baseline" ]; then
    go run ./cmd/report -tol 0.5 "$baseline" "$smoke/manifest.json"
else
    echo "ci: $baseline missing; skipping manifest diff" >&2
fi

# Fault-injection smoke: a deterministic scenario run must produce a valid
# manifest carrying the plan identity and nonzero fault counters.
go run ./cmd/numasim -quick -bench Barnes -policy DCL \
    -fault.scenario link-outage -fault.seed 7 \
    -manifest "$smoke/faulted.json" > "$smoke/faulted.txt"
go run ./cmd/report -check "$smoke/faulted.json"
grep -q '"fault_plan_hash": "[0-9a-f]' "$smoke/faulted.json" || {
    echo "ci: faulted manifest missing fault_plan_hash" >&2; exit 1; }
grep -Eq '"fault_nacks": [1-9]' "$smoke/faulted.json" || {
    echo "ci: link-outage run recorded zero NACKs" >&2; exit 1; }

# Engine load smoke: a short zipfian open-loop cachebench run against the
# sharded engine must produce a valid manifest with nonzero hit and coalesce
# counters (coalescing is forced by a slow loader plus 8 workers on a cold,
# highly skewed key stream).
go run ./cmd/cachebench -policy DCL -shards 16 -workers 8 -mode open \
    -rate 20000 -ops 20000 -keys 4096 -zipf 1.3 -loaddelay 2ms -seed 42 \
    -quiet -manifest "$smoke/engine.json" > "$smoke/engine.txt"
go run ./cmd/report -check "$smoke/engine.json"
grep -Eq '"engine_hits": [1-9]' "$smoke/engine.json" || {
    echo "ci: cachebench run recorded zero hits" >&2; exit 1; }
grep -Eq '"engine_coalesced": [1-9]' "$smoke/engine.json" || {
    echo "ci: cachebench run recorded zero coalesced loads" >&2; exit 1; }

# Interrupt smoke: SIGINT a run mid-flight; it must exit 130 and still
# flush a well-formed partial manifest marked interrupted. Built as a
# binary so the signal reaches the simulator, not `go run`. Raytrace is the
# longest full run (~2s), so the signal lands well inside it.
go build -o "$smoke/numasim" ./cmd/numasim
"$smoke/numasim" -bench Raytrace -policy DCL \
    -manifest "$smoke/interrupted.json" > "$smoke/interrupted.txt" 2>&1 &
pid=$!
sleep 0.5
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "ci: interrupted run exited $rc, want 130" >&2; exit 1
fi
go run ./cmd/report -check "$smoke/interrupted.json"
grep -q '"interrupted": true' "$smoke/interrupted.json" || {
    echo "ci: partial manifest not marked interrupted" >&2; exit 1; }

# Degraded-mode flag validation: unknown enum values must exit 2.
rc=0
"$smoke/numasim" -bench NoSuchBench >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "ci: bad -bench exited $rc, want 2" >&2; exit 1
fi

# Serving-path attribution smoke: a fully sampled -attr run self-checks
# that span counts reconcile exactly with the engine counters and that the
# stage sums tile the sampled latency histogram within 1% (cachebench exits
# nonzero otherwise); we additionally pin the reconciliation line and that
# the emitted spans merge with the simulator's into one valid timeline.
go build -o "$smoke/cachebench" ./cmd/cachebench
"$smoke/cachebench" -policy DCL -shards 8 -workers 4 -mode closed \
    -ops 20000 -loaddelay 50us -seed 42 -quiet \
    -attr -attr.sample 1 -obs.sample 0.02 \
    -span.trace "$smoke/req-trace.json" -span.jsonl "$smoke/req-spans.jsonl" \
    -manifest "$smoke/attr.json" > "$smoke/attr.txt" 2> "$smoke/attr-table.txt"
grep -q 'stage sums cover' "$smoke/attr.txt" || {
    echo "ci: -attr run printed no reconciliation line" >&2; exit 1; }
grep -q 'serving-path attribution' "$smoke/attr-table.txt" || {
    echo "ci: -attr run printed no attribution table" >&2; exit 1; }
grep -Eq '"attr_spans": 20000' "$smoke/attr.json" || {
    echo "ci: attr manifest missing full span count" >&2; exit 1; }
go run ./cmd/report -check \
    "$smoke/attr.json" "$smoke/req-spans.jsonl" "$smoke/req-trace.json"
go run ./cmd/report -merge "$smoke/combined-trace.json" \
    "$smoke/req-trace.json" "$smoke/trace.json"
cat "$smoke/req-spans.jsonl" "$smoke/spans.jsonl" > "$smoke/combined.jsonl"
go run ./cmd/report -check "$smoke/combined-trace.json" "$smoke/combined.jsonl"

# Zero-sample guard: with a tracer attached but nothing sampled, the
# serving path must be allocation-identical to an untraced engine.
go test -run TestEngineUnsampledAllocs -count=1 ./internal/engine/

# Sampling-rate flag validation: rates outside (0,1] must exit 2.
for bad in "-attr.sample 1.5" "-attr.sample 0" "-obs.sample -0.1"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachebench" $bad -ops 10 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachebench $bad exited $rc, want 2" >&2; exit 1
    fi
done

# Explain smoke: record the quick workload twice — identical except for one
# degraded policy parameter (BCL's depreciation factor raised from the
# paper's 2 to 50, which makes reservations open and abandon unreferenced
# and regresses cost paid) — then assert report -explain (a) fails the pair
# under -strict, (b) ranks the injected reservation mechanism first, and
# (c) passes every sum-to-manifest-delta join check.
for side in base cand; do
    pol=BCL; [ "$side" = cand ] && pol=BCL-f50
    "$smoke/cachebench" -policy "$pol" -mode closed -workers 1 -ops 30000 \
        -keys 4096 -sets 512 -ways 4 -shards 4 -seed 7 -loaddelay 0 -quiet \
        -attr -attr.sample 1 -obs.sample 1 \
        -span.jsonl "$smoke/${side}_spans.jsonl" \
        -decisions "$smoke/${side}_dec.jsonl" \
        -manifest "$smoke/${side}.json" > "$smoke/${side}.txt" 2>/dev/null
done
rc=0
go run ./cmd/report -explain -strict "$smoke/base.json" "$smoke/cand.json" \
    > "$smoke/explain.txt" || rc=$?
if [ "$rc" -ne 1 ]; then
    cat "$smoke/explain.txt" >&2
    echo "ci: explain of degraded run exited $rc, want 1 (-strict regression)" >&2
    exit 1
fi
top=$(sed -n '/decision-kind shifts/,/^$/p' "$smoke/explain.txt" | sed -n 4p)
case "$top" in
*reserve_*) ;;
*) echo "ci: explain top cause is not a reservation kind: $top" >&2; exit 1 ;;
esac
if grep 'check:' "$smoke/explain.txt" | grep -qv ': ok$'; then
    grep 'check:' "$smoke/explain.txt" >&2
    echo "ci: explain join checks not all ok" >&2; exit 1
fi
# The same run joined against itself must be an all-zero report, exit 0.
go run ./cmd/report -explain -strict "$smoke/base.json" "$smoke/base.json" \
    > /dev/null

# Flag validation for the new analytics knobs: non-positive hot-shard
# factors and negative sketch capacities must exit 2.
for bad in "-hot.factor 0" "-keys.sketch -1"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachebench" $bad -ops 10 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachebench $bad exited $rc, want 2" >&2; exit 1
    fi
done

# Engine benchmark baseline: regenerate the hot-path manifest with a short
# measurement window and diff against the archive. The tolerance is
# deliberately generous (shared CI hardware); only schema breakage or
# malformed output fails the gate.
BENCH_MANIFEST="$smoke/bench.json" \
    go test -run TestWriteBenchManifest -count=1 -benchtime 0.05s .
go run ./cmd/report -check "$smoke/bench.json"
if [ -f results/BENCH_engine.json ]; then
    go run ./cmd/report -tol 75 results/BENCH_engine.json "$smoke/bench.json"
else
    echo "ci: results/BENCH_engine.json missing; skipping bench diff" >&2
fi

# Instrumentation-overhead baseline: regenerate the obs bench manifest
# (simulator observation cost plus the telemetry store's sampling hot path)
# and diff at the same generous tolerance. The allocation figure is exact:
# steady-state sampling must not allocate.
go run ./cmd/paper -quick -bench-json "$smoke/bench_obs.json" > /dev/null
go run ./cmd/report -check "$smoke/bench_obs.json"
grep -q '"tsdb_sample_allocs_op": 0' "$smoke/bench_obs.json" || {
    echo "ci: telemetry sampling allocates in steady state" >&2; exit 1; }
grep -q '"fed_scrape_ns_node":' "$smoke/bench_obs.json" || {
    echo "ci: obs bench manifest missing the federation scrape figure" >&2; exit 1; }
if [ -f results/BENCH_obs.json ]; then
    go run ./cmd/report -tol 75 results/BENCH_obs.json "$smoke/bench_obs.json"
else
    echo "ci: results/BENCH_obs.json missing; skipping obs bench diff" >&2
fi

# Telemetry zero-alloc gate: the tsdb test pins steady-state Sample at zero
# allocations over a cachebench-shaped registry.
go test -run TestSampleSteadyStateAllocs -count=1 ./internal/obs/tsdb/

# Deterministic alerting smoke: a same-seed pair on the simulated telemetry
# clock (-ts.everyops). The degraded run — BCL-f50 on a uniform key stream,
# whose hit rate collapses below the 0.8 objective — must walk the hit-rate
# burn rule through pending to firing exactly once; the healthy run (BCL on
# a zipfian stream) must keep every rule quiet. Firing counts land in the
# manifests and the event JSONL is byte-identical across reruns.
for side in healthy degraded; do
    pol=BCL; zipf=1.2
    if [ "$side" = degraded ]; then pol=BCL-f50; zipf=1.0; fi
    "$smoke/cachebench" -policy "$pol" -zipf "$zipf" -mode closed -workers 1 \
        -ops 40000 -keys 4096 -sets 512 -ways 4 -shards 4 -seed 7 \
        -loaddelay 0 -quiet -alerts -ts.everyops 500 \
        -alert.fast 2s -alert.slow 10s -slo.hitrate 0.8 \
        -alerts.jsonl "$smoke/${side}_alerts.jsonl" \
        -manifest "$smoke/${side}_alerts.json" > "$smoke/${side}_alerts.txt"
done
go run ./cmd/report -check "$smoke/healthy_alerts.json" "$smoke/degraded_alerts.json"
grep -Fq '"alert_fired{rule=\"hit-rate-burn\"}": 1' "$smoke/degraded_alerts.json" || {
    echo "ci: degraded run did not fire the hit-rate burn alert exactly once" >&2
    exit 1; }
grep -Fq '"from":"pending","to":"firing"' "$smoke/degraded_alerts.jsonl" || {
    echo "ci: degraded alert stream missing the pending→firing transition" >&2
    exit 1; }
if grep -F '"alert_fired' "$smoke/healthy_alerts.json" | grep -Evq ': 0,?$'; then
    grep -F '"alert_fired' "$smoke/healthy_alerts.json" >&2
    echo "ci: healthy run fired an alert" >&2; exit 1
fi
"$smoke/cachebench" -policy BCL-f50 -zipf 1.0 -mode closed -workers 1 \
    -ops 40000 -keys 4096 -sets 512 -ways 4 -shards 4 -seed 7 \
    -loaddelay 0 -quiet -alerts -ts.everyops 500 \
    -alert.fast 2s -alert.slow 10s -slo.hitrate 0.8 \
    -alerts.jsonl "$smoke/degraded_alerts2.jsonl" > /dev/null
cmp -s "$smoke/degraded_alerts.jsonl" "$smoke/degraded_alerts2.jsonl" || {
    echo "ci: alert event stream differs across same-seed reruns" >&2; exit 1; }

# Backend chaos smoke: a same-seed healthy/brownout cachebench pair on the
# simulated telemetry clock. The brownout run must trip the class-8 circuit
# breaker, serve stale at least once, fire the shed-rate alert exactly once
# and still exit 0 with a well-formed manifest; its alert stream is
# byte-identical across reruns. The healthy twin — identical flags minus the
# fault scenario — must keep every counter and rule at zero (degraded-mode
# serving is invisible until the backend actually fails). No -load.deadline
# here: deadlines are wall-clock and would break byte-identity.
for side in steady brownout; do
    fault=""; [ "$side" = brownout ] && fault="-fault.scenario backend-brownout"
    # shellcheck disable=SC2086 # intentional word splitting of $fault
    "$smoke/cachebench" -policy DCL -mode closed -workers 1 -ops 40000 \
        -keys 16384 -zipf 1.0 -haf 0.5 -sets 512 -ways 4 -shards 4 -seed 7 \
        -loaddelay 0 -quiet -load.retries 3 -load.backoff 0 \
        -breaker.rate 0.5 -breaker.window 64 -breaker.min 16 \
        -breaker.cooldown 2000 -stale.serve $fault \
        -alerts -ts.everyops 500 -alert.fast 4s -alert.slow 30s \
        -slo.hitrate 0.3 -alerts.jsonl "$smoke/${side}_chaos.jsonl" \
        -manifest "$smoke/${side}_chaos.json" > "$smoke/${side}_chaos.txt"
done
go run ./cmd/report -check "$smoke/steady_chaos.json" "$smoke/brownout_chaos.json"
grep -Eq '"engine_breaker_opened": [1-9]' "$smoke/brownout_chaos.json" || {
    echo "ci: brownout run never tripped a breaker" >&2; exit 1; }
grep -Eq '"engine_stale_served": [1-9]' "$smoke/brownout_chaos.json" || {
    echo "ci: brownout run never served stale" >&2; exit 1; }
grep -Fq '"alert_fired{rule=\"shed-rate\"}": 1' "$smoke/brownout_chaos.json" || {
    echo "ci: brownout run did not fire the shed-rate alert exactly once" >&2
    exit 1; }
grep -q '"fault_plan_hash": "[0-9a-f]' "$smoke/brownout_chaos.json" || {
    echo "ci: brownout manifest missing fault_plan_hash" >&2; exit 1; }
if grep -F '"alert_fired' "$smoke/steady_chaos.json" | grep -Evq ': 0,?$'; then
    grep -F '"alert_fired' "$smoke/steady_chaos.json" >&2
    echo "ci: healthy chaos twin fired an alert" >&2; exit 1
fi
for zero in engine_shed engine_stale_served engine_load_retries engine_breaker_opened; do
    grep -Fq "\"$zero\": 0" "$smoke/steady_chaos.json" || {
        echo "ci: healthy chaos twin has nonzero $zero" >&2; exit 1; }
done
"$smoke/cachebench" -policy DCL -mode closed -workers 1 -ops 40000 \
    -keys 16384 -zipf 1.0 -haf 0.5 -sets 512 -ways 4 -shards 4 -seed 7 \
    -loaddelay 0 -quiet -load.retries 3 -load.backoff 0 \
    -breaker.rate 0.5 -breaker.window 64 -breaker.min 16 \
    -breaker.cooldown 2000 -stale.serve -fault.scenario backend-brownout \
    -alerts -ts.everyops 500 -alert.fast 4s -alert.slow 30s \
    -slo.hitrate 0.3 -alerts.jsonl "$smoke/brownout_chaos2.jsonl" > /dev/null
cmp -s "$smoke/brownout_chaos.jsonl" "$smoke/brownout_chaos2.jsonl" || {
    echo "ci: chaos alert stream differs across same-seed reruns" >&2; exit 1; }

# Resilience and fault flag validation: out-of-range or conflicting values
# must exit 2.
for bad in "-load.deadline -1s" "-load.retries -1" "-load.backoff -1ms" \
    "-breaker.rate 1.5" "-breaker.rate -0.1" "-breaker.window 0" \
    "-breaker.min 0" "-breaker.cooldown 0" \
    "-fault.scenario no-such-scenario" "-fault.plan /nonexistent.json" \
    "-fault.plan x -fault.scenario backend-brownout"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachebench" $bad -ops 10 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachebench $bad exited $rc, want 2" >&2; exit 1
    fi
done

# SIGINT under chaos: an interrupted resilient run must still flush a partial
# manifest carrying the resilience counters.
"$smoke/cachebench" -policy DCL -mode closed -workers 2 -ops 5000000 \
    -keys 16384 -zipf 1.0 -haf 0.5 -sets 512 -ways 4 -shards 4 -seed 7 \
    -loaddelay 50us -quiet -load.retries 3 -load.backoff 0 \
    -breaker.rate 0.5 -breaker.window 64 -breaker.min 16 \
    -breaker.cooldown 2000 -stale.serve -fault.scenario backend-brownout \
    -manifest "$smoke/chaos_interrupted.json" > /dev/null 2>&1 &
pid=$!
sleep 0.7
kill -INT "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "ci: interrupted chaos run exited $rc, want 130" >&2; exit 1
fi
go run ./cmd/report -check "$smoke/chaos_interrupted.json"
grep -q '"interrupted": true' "$smoke/chaos_interrupted.json" || {
    echo "ci: partial chaos manifest not marked interrupted" >&2; exit 1; }
grep -q '"engine_shed":' "$smoke/chaos_interrupted.json" || {
    echo "ci: partial chaos manifest missing resilience counters" >&2; exit 1; }

# cachetop smoke: render one dashboard frame against a live cachebench and
# check the signal panels, shard heat rows and alert list all appear.
go build -o "$smoke/cachetop" ./cmd/cachetop
"$smoke/cachebench" -policy DCL -mode open -rate 5000 -ops 1000000 \
    -keys 4096 -zipf 1.2 -seed 7 -quiet -alerts \
    -obs.listen 127.0.0.1:0 > "$smoke/live.txt" 2>&1 &
livepid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's|^observability: http://\([^ ]*\) .*|\1|p' "$smoke/live.txt")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    kill "$livepid" 2>/dev/null || true
    echo "ci: live cachebench never printed its observability address" >&2
    exit 1
fi
sleep 2 # let the wall-clock sampler fill a few buckets
rc=0
"$smoke/cachetop" -addr "$addr" -frames 1 > "$smoke/cachetop.txt" || rc=$?
kill -INT "$livepid" 2>/dev/null || true
wait "$livepid" 2>/dev/null || true
if [ "$rc" -ne 0 ]; then
    cat "$smoke/cachetop.txt" >&2
    echo "ci: cachetop render failed ($rc)" >&2; exit 1
fi
for want in "hit rate" "ops/s" "p99 latency" "shard  0" "hit-rate-burn"; do
    grep -Fq "$want" "$smoke/cachetop.txt" || {
        cat "$smoke/cachetop.txt" >&2
        echo "ci: cachetop frame missing \"$want\"" >&2; exit 1; }
done

# Flag validation for the telemetry and alerting knobs: out-of-range values
# must exit 2.
for bad in "-ts.step 0" "-ts.everyops -1" "-slo.hitrate 1.5" \
    "-slo.p99 0" "-alert.burn 0" "-alert.fast 0s"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachebench" $bad -ops 10 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachebench $bad exited $rc, want 2" >&2; exit 1
    fi
done
for bad in "" "-addr x -interval 0s" "-addr x -frames -1" "-cluster"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachetop" $bad >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachetop $bad exited $rc, want 2" >&2; exit 1
    fi
done

# Serving-tier smoke (docs/SERVING_TIER.md): cacheserved on an ephemeral
# port with two namespaces, driven by cachebench -remote over real sockets.
# The single-worker closed-loop remote run must reproduce the in-process
# run's engine counters bit for bit; a pipelined open-loop run must coalesce
# and reconcile exactly; SIGTERM must drain cleanly (exit 0, uninterrupted
# manifest).
go build -o "$smoke/cacheserved" ./cmd/cacheserved
"$smoke/cacheserved" -listen 127.0.0.1:0 \
    -ns "bench" -ns "slow:policy=BCL,sets=1024,loaddelay=1ms" \
    -manifest "$smoke/served.json" > "$smoke/served.txt" 2>&1 &
srvpid=$!
srvaddr=""
for _ in $(seq 1 50); do
    srvaddr=$(sed -n 's/^cacheserved: listening on //p' "$smoke/served.txt")
    [ -n "$srvaddr" ] && break
    sleep 0.1
done
if [ -z "$srvaddr" ]; then
    kill "$srvpid" 2>/dev/null || true
    echo "ci: cacheserved never printed its listen address" >&2; exit 1
fi

"$smoke/cachebench" -mode closed -workers 1 -ops 20000 -keys 4096 -zipf 1.1 \
    -seed 7 -quiet -manifest "$smoke/inproc.json" > /dev/null
"$smoke/cachebench" -mode closed -workers 1 -ops 20000 -keys 4096 -zipf 1.1 \
    -seed 7 -quiet -remote "$srvaddr" -remote.ns bench \
    -manifest "$smoke/remote.json" > /dev/null
go run ./cmd/report -check "$smoke/inproc.json" "$smoke/remote.json"
metric() { sed -n "s/^ *\"$2\": \([0-9.e+-]*\),*\$/\1/p" "$1" | head -1; }
for m in engine_hits engine_misses engine_coalesced engine_cost_paid; do
    a=$(metric "$smoke/inproc.json" "$m")
    b=$(metric "$smoke/remote.json" "$m")
    if [ -z "$a" ] || [ "$a" != "$b" ]; then
        echo "ci: remote run diverges from in-process: $m = $b, want $a" >&2
        exit 1
    fi
done

# Pipelined remote run against the slow namespace: concurrent misses on hot
# keys must coalesce server-side, and the counter deltas must tile the op
# count exactly (hits + misses + coalesced == ops).
"$smoke/cachebench" -mode open -workers 8 -rate 20000 -ops 20000 -keys 4096 \
    -zipf 1.3 -seed 42 -quiet -remote "$srvaddr" -remote.ns slow \
    -remote.conns 4 -attr -attr.sample 1 \
    -manifest "$smoke/remote_pipe.json" > "$smoke/remote_pipe.txt" 2>&1
go run ./cmd/report -check "$smoke/remote_pipe.json"
hits=$(metric "$smoke/remote_pipe.json" engine_hits)
misses=$(metric "$smoke/remote_pipe.json" engine_misses)
coal=$(metric "$smoke/remote_pipe.json" engine_coalesced)
if [ "$hits" -le 0 ] || [ "$coal" -le 0 ]; then
    echo "ci: pipelined remote run: hits=$hits coalesced=$coal, want both nonzero" >&2
    exit 1
fi
if [ $((hits + misses + coal)) -ne 20000 ]; then
    echo "ci: pipelined remote counters don't reconcile: $hits+$misses+$coal != 20000" >&2
    exit 1
fi
grep -q 'net_read' "$smoke/remote_pipe.txt" || {
    echo "ci: remote -attr table missing the net_read stage" >&2; exit 1; }

# SIGTERM drain: exit 0 and an uninterrupted manifest.
kill -TERM "$srvpid"
rc=0
wait "$srvpid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "ci: cacheserved drain exited $rc, want 0" >&2; exit 1
fi
go run ./cmd/report -check "$smoke/served.json"
if grep -q '"interrupted": true' "$smoke/served.json"; then
    echo "ci: clean drain produced an interrupted manifest" >&2; exit 1
fi
grep -Eq '"server_frames_in": [1-9]' "$smoke/served.json" || {
    echo "ci: cacheserved manifest recorded no inbound frames" >&2; exit 1; }

# Consistent-hash scale-out: the same load over a 3-node ring must spread
# traffic onto every node (each per-node manifest records inbound frames).
nodes=""
addrs=""
for i in 1 2 3; do
    "$smoke/cacheserved" -listen 127.0.0.1:0 -ns bench \
        -manifest "$smoke/node$i.json" > "$smoke/node$i.txt" 2>&1 &
    nodes="$nodes $!"
    a=""
    for _ in $(seq 1 50); do
        a=$(sed -n 's/^cacheserved: listening on //p' "$smoke/node$i.txt")
        [ -n "$a" ] && break
        sleep 0.1
    done
    if [ -z "$a" ]; then
        echo "ci: ring node $i never printed its listen address" >&2; exit 1
    fi
    addrs="$addrs,$a"
done
addrs=${addrs#,}
"$smoke/cachebench" -mode closed -workers 4 -ops 20000 -keys 4096 -zipf 1.1 \
    -seed 7 -quiet -remote "$addrs" > /dev/null
for pid in $nodes; do
    kill -TERM "$pid"
    wait "$pid" || { echo "ci: ring node drain failed" >&2; exit 1; }
done
for i in 1 2 3; do
    go run ./cmd/report -check "$smoke/node$i.json"
    grep -Eq '"server_frames_in": [1-9]' "$smoke/node$i.json" || {
        echo "ci: ring node $i served no traffic" >&2; exit 1; }
done

# Cluster observability smoke (docs/OBSERVABILITY.md, "Cluster
# observability"): a 3-node ring with one deliberately degraded node (a
# 16-entry cache whose hit rate collapses), driven by a trace-sampled
# cachebench -remote run. Gates:
#   (a) the run ends with a bit-for-bit cluster manifest reconciliation
#       (cachebench exits nonzero on mismatch; we additionally pin the line),
#   (b) cachefed's deterministic scrape fires node-outlier-hit-rate exactly
#       once, keeps ring-hot-node quiet, and streams byte-identical alert
#       JSONL across reruns,
#   (c) cachetop -cluster renders a fleet frame from a live cachefed,
#   (d) report -merge stitches the client and per-node span JSONL into one
#       validated timeline (exit nonzero on any orphan span, infeasible
#       clock offset or containment breach).
go build -o "$smoke/cachefed" ./cmd/cachefed
clpids=""
claddrs=""
clobs=""
for i in 1 2 3; do
    spec="bench"
    [ "$i" = 3 ] && spec="bench:sets=16,ways=1"
    "$smoke/cacheserved" -listen 127.0.0.1:0 -ns "$spec" -node "n$i" \
        -span.jsonl "$smoke/cl_node${i}_spans.jsonl" -obs.listen 127.0.0.1:0 \
        -manifest "$smoke/cl_node$i.json" > "$smoke/cl_node$i.txt" 2>&1 &
    clpids="$clpids $!"
    a=""
    o=""
    for _ in $(seq 1 50); do
        a=$(sed -n 's/^cacheserved: listening on //p' "$smoke/cl_node$i.txt")
        o=$(sed -n 's|^observability: http://\([^ ]*\) .*|\1|p' "$smoke/cl_node$i.txt")
        [ -n "$a" ] && [ -n "$o" ] && break
        sleep 0.1
    done
    if [ -z "$a" ] || [ -z "$o" ]; then
        echo "ci: cluster node $i never printed its addresses" >&2; exit 1
    fi
    claddrs="$claddrs,$a"
    clobs="$clobs,$o"
done
claddrs=${claddrs#,}
clobs=${clobs#,}
"$smoke/cachebench" -mode closed -workers 4 -ops 20000 -keys 4096 -zipf 1.1 \
    -seed 7 -quiet -remote "$claddrs" -obs.sample 0.05 \
    -span.jsonl "$smoke/cl_client_spans.jsonl" \
    -manifest "$smoke/cl_client.json" > "$smoke/cl_client.txt"
grep -q '== client-observed, bit for bit' "$smoke/cl_client.txt" || {
    cat "$smoke/cl_client.txt" >&2
    echo "ci: remote run printed no cluster reconciliation line" >&2; exit 1; }
go run ./cmd/report -check "$smoke/cl_client.json"
grep -q '"trace_negotiated": "true"' "$smoke/cl_client.json" || {
    echo "ci: client manifest missing trace negotiation with the ring" >&2
    exit 1; }

# Deterministic federation of the (now idle) fleet: the first scrape
# baselines the node-labeled mirrors at zero, the second lands every node's
# totals in one bucket, so the degraded node's miss ratio diverges inside
# the rule window and node-outlier-hit-rate walks to firing exactly once.
"$smoke/cachefed" -nodes "$clobs" -interval 1s -scrapes 4 \
    -alerts.jsonl "$smoke/fed1.jsonl" -status "$smoke/fed_status.json" \
    > "$smoke/fed1.txt"
grep -q 'node-outlier-hit-rate.*fired=1' "$smoke/fed1.txt" || {
    cat "$smoke/fed1.txt" >&2
    echo "ci: degraded node did not fire node-outlier-hit-rate exactly once" >&2
    exit 1; }
outlier_fires=$(grep -c '"rule":"node-outlier-hit-rate","from":"pending","to":"firing"' \
    "$smoke/fed1.jsonl")
if [ "$outlier_fires" -ne 1 ]; then
    cat "$smoke/fed1.jsonl" >&2
    echo "ci: fleet alert stream has != 1 node-outlier firing transition" >&2
    exit 1
fi
grep -q '"node_skew":' "$smoke/fed_status.json" || {
    echo "ci: cluster status missing the node_skew signal" >&2; exit 1; }
"$smoke/cachefed" -nodes "$clobs" -interval 1s -scrapes 4 \
    -alerts.jsonl "$smoke/fed2.jsonl" > /dev/null
cmp -s "$smoke/fed1.jsonl" "$smoke/fed2.jsonl" || {
    echo "ci: fleet alert stream differs across reruns" >&2; exit 1; }

# Fleet dashboard: one cachetop -cluster frame against a live cachefed.
"$smoke/cachefed" -nodes "$clobs" -interval 1s -listen 127.0.0.1:0 \
    > "$smoke/fedlive.txt" 2>&1 &
fedpid=$!
fedaddr=""
for _ in $(seq 1 50); do
    fedaddr=$(sed -n 's/^cachefed: listening on //p' "$smoke/fedlive.txt")
    [ -n "$fedaddr" ] && break
    sleep 0.1
done
if [ -z "$fedaddr" ]; then
    kill "$fedpid" 2>/dev/null || true
    echo "ci: live cachefed never printed its listen address" >&2; exit 1
fi
sleep 2.5 # let the live scraper cover a couple of intervals
rc=0
"$smoke/cachetop" -cluster -addr "$fedaddr" -frames 1 \
    > "$smoke/cachetop_cluster.txt" || rc=$?
kill -INT "$fedpid" 2>/dev/null || true
wait "$fedpid" 2>/dev/null || true
if [ "$rc" -ne 0 ]; then
    cat "$smoke/cachetop_cluster.txt" >&2
    echo "ci: cachetop -cluster render failed ($rc)" >&2; exit 1
fi
for want in "cluster" "node" "fleet alerts" "node-outlier-hit-rate"; do
    grep -Fq "$want" "$smoke/cachetop_cluster.txt" || {
        cat "$smoke/cachetop_cluster.txt" >&2
        echo "ci: cachetop -cluster frame missing \"$want\"" >&2; exit 1; }
done

# Drain the ring (flushes each node's span JSONL), then stitch: the client
# and server halves of every sampled request must pair up, each node's clock
# offset must be feasible, and every server span must land strictly inside
# its client's net round trip — report -merge exits nonzero otherwise.
for pid in $clpids; do
    kill -TERM "$pid"
    wait "$pid" || { echo "ci: cluster node drain failed" >&2; exit 1; }
done
for i in 1 2 3; do
    go run ./cmd/report -check "$smoke/cl_node$i.json"
done
go run ./cmd/report -merge "$smoke/cl_trace.json" \
    "$smoke/cl_client_spans.jsonl" "$smoke/cl_node1_spans.jsonl" \
    "$smoke/cl_node2_spans.jsonl" "$smoke/cl_node3_spans.jsonl" \
    > "$smoke/cl_merge.txt" || {
    cat "$smoke/cl_merge.txt" >&2
    echo "ci: cross-node trace stitch failed" >&2; exit 1; }
grep -Eq 'stitched [1-9][0-9]* client \+ [1-9][0-9]* server spans' \
    "$smoke/cl_merge.txt" || {
    cat "$smoke/cl_merge.txt" >&2
    echo "ci: stitch paired no spans" >&2; exit 1; }
go run ./cmd/report -check "$smoke/cl_trace.json"

# Serving-tier flag validation: malformed namespace specs, bad limits and
# misused -remote flags must exit 2.
for bad in "-ns :x=1" "-ns a:policy=NoSuchPolicy" "-ns a:nokey=1" \
    "-ns a:shards=0" "-ns a:ttl=-1s" "-ns a -ns a" \
    "-maxconns -1" "-maxinflight -1" "-queue.deadline -1ms" \
    "-drain.timeout 0"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cacheserved" $bad >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cacheserved $bad exited $rc, want 2" >&2; exit 1
    fi
done
# Federation flag validation: a missing node list and out-of-range scrape
# parameters must exit 2.
for bad in "" "-nodes x -interval 0s" "-nodes x -timeout 0s" \
    "-nodes x -scrapes -1"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachefed" $bad >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachefed $bad exited $rc, want 2" >&2; exit 1
    fi
done
for bad in "-remote x -policy DCL" "-remote x -shards 4" \
    "-remote x -loaddelay 1ms" "-remote x -stale.serve" \
    "-remote x -remote.ns=" "-remote x -remote.conns 0" \
    "-remote x -remote.timeout 0"; do
    rc=0
    # shellcheck disable=SC2086 # intentional word splitting of flag+value
    "$smoke/cachebench" $bad -ops 10 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "ci: cachebench $bad exited $rc, want 2" >&2; exit 1
    fi
done

# Serving-tier benchmark baseline: regenerate with a short window and diff
# against the archive at the same generous tolerance as the engine bench.
BENCH_MANIFEST="$smoke/bench_server.json" \
    go test -run TestWriteServerBenchManifest -count=1 -benchtime 0.05s ./internal/server
go run ./cmd/report -check "$smoke/bench_server.json"
if [ -f results/BENCH_server.json ]; then
    go run ./cmd/report -tol 75 results/BENCH_server.json "$smoke/bench_server.json"
else
    echo "ci: results/BENCH_server.json missing; skipping server bench diff" >&2
fi

echo "ci: ok"
