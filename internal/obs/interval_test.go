package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestIntervalReporterUnwatchedAndMissingCounters(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("watched").Add(5)
	reg.Counter("ignored").Add(50)
	// "ghost" is watched but never registered: deltas must read as zero, not
	// panic, even though no instrument exists at Tick time.
	r := NewIntervalReporter(reg, "t", "w", "watched", "ghost")
	reg.Counter("watched").Add(2)
	reg.Counter("ignored").Add(100)
	r.Tick("w1")
	rows := r.Table().Rows
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0][1] != "2" {
		t.Errorf("watched delta = %q, want 2 (ignored counter leaked in?)", rows[0][1])
	}
	if rows[0][2] != "0" {
		t.Errorf("unregistered counter delta = %q, want 0", rows[0][2])
	}
	// The ghost appearing mid-run starts counting from zero in its window.
	reg.Counter("ghost").Add(9)
	r.Tick("w2")
	if got := r.Table().Rows[1][2]; got != "9" {
		t.Errorf("late-registered counter delta = %q, want 9", got)
	}
}

func TestSnapshotDeltaCounterReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	c.Add(10)
	prev := reg.Snapshot()

	// A "reset" between ticks (a fresh registry reusing the name is the
	// realistic path; counters themselves are monotonic): the delta goes
	// negative rather than wrapping or panicking — visible, not masked.
	reg2 := NewRegistry()
	reg2.Counter("n").Add(3)
	d := reg2.Snapshot().Delta(prev)
	if d.Counters["n"] != -7 {
		t.Errorf("post-reset delta = %d, want -7 (3 - 10)", d.Counters["n"])
	}

	// Forward progress keeps ordinary semantics.
	c.Add(5)
	if d := reg.Snapshot().Delta(prev); d.Counters["n"] != 5 {
		t.Errorf("delta = %d, want 5", d.Counters["n"])
	}
}

func TestSnapshotDeltaGaugeAndHistogram(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	h := reg.Histogram("lat", []int64{10, 100})
	g.Set(4)
	h.Observe(5)
	prev := reg.Snapshot()
	g.Set(2) // gauges report current value, not delta
	h.Observe(50)
	d := reg.Snapshot().Delta(prev)
	if d.Gauges["depth"] != 2 {
		t.Errorf("gauge delta = %d, want current value 2", d.Gauges["depth"])
	}
	hd := d.Histograms["lat"]
	if hd.Count != 1 || hd.Sum != 50 {
		t.Errorf("histogram window = %+v, want count 1 sum 50", hd)
	}
	if hd.Counts[0] != 0 || hd.Counts[1] != 1 {
		t.Errorf("bucket deltas = %v, want [0 1 0]", hd.Counts)
	}
}

// TestIntervalReporterConcurrentTick drives registry updates from background
// goroutines while Tick snapshots: run under -race this pins that interval
// reporting is safe against live instruments, and every count lands in
// exactly one window.
func TestIntervalReporterConcurrentTick(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events")
	r := NewIntervalReporter(reg, "t", "w", "events")

	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
			}
		}()
	}
	// Tick concurrently with the writers, then once more after the dust
	// settles so the last window catches the tail.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Tick(fmt.Sprintf("w%d", i))
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	r.Tick("final")

	var sum int64
	for _, row := range r.Table().Rows {
		var v int64
		if _, err := fmt.Sscan(row[1], &v); err != nil {
			t.Fatalf("unparsable cell %q: %v", row[1], err)
		}
		if v < 0 {
			t.Fatalf("negative window delta %d on a monotonic counter", v)
		}
		sum += v
	}
	if want := int64(writers * perWriter); sum != want {
		t.Fatalf("windows sum to %d, want %d (events lost or double-counted)", sum, want)
	}
}
