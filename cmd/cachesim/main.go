// Command cachesim runs one trace through the paper's two-level hierarchy
// under a chosen replacement policy and cost mapping, and reports miss and
// cost statistics — the basic trace-driven experiment of Section 3.
//
// Usage:
//
//	cachesim -bench Raytrace -policy DCL -costmap random -haf 0.2 -ratio 8
//	cachesim -trace trace.bin -policy ACL -costmap firsttouch -ratio 16
//
// The trace may come from a named synthetic benchmark (-bench) or a file in
// the binary trace format (-trace). The LRU baseline is always run too, so
// the relative cost savings is printed directly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"costcache/internal/cli"
	"costcache/internal/cost"
	"costcache/internal/costsim"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/tabulate"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cachesim: ")
	bench := flag.String("bench", "", "synthetic benchmark name")
	traceFile := flag.String("trace", "", "binary trace file (alternative to -bench)")
	policy := flag.String("policy", "DCL", "replacement policy: LRU, GD, BCL, DCL, ACL, DCL-a4, ACL-a4, PLRU, CS-PLRU, LFU, SLRU, Random")
	costmap := flag.String("costmap", "random", "cost mapping: random, firsttouch, uniform")
	haf := flag.Float64("haf", 0.2, "high-cost access fraction (random mapping)")
	ratio := flag.Int64("ratio", 8, "cost ratio r (0 = infinite: low cost 0, high cost 1)")
	procFlag := flag.Int("proc", 0, "sample processor")
	l2size := flag.Int("l2", 16<<10, "L2 size in bytes")
	l2ways := flag.Int("ways", 4, "L2 associativity")
	seed := flag.Uint64("seed", 42, "cost mapping seed")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address")
	obsTrace := flag.String("obs.trace", "", "write the policy's decision trace as JSONL to this file")
	flag.Parse()

	// Validate enumerated flags up front so a typo fails fast with the list
	// of valid values, before any trace is generated.
	if *bench != "" {
		if _, ok := workload.ByName(*bench); !ok {
			cli.BadFlag("cachesim", "-bench", *bench, workload.Names())
		}
	}
	if _, ok := replacement.ByName(*policy); !ok {
		cli.BadFlag("cachesim", "-policy", *policy, replacement.Names())
	}
	switch *costmap {
	case "random", "firsttouch", "uniform":
	default:
		cli.BadFlag("cachesim", "-costmap", *costmap, []string{"random", "firsttouch", "uniform"})
	}

	if *obsListen != "" {
		srv, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s\n", srv.Addr())
	}

	var tr *trace.Trace
	switch {
	case *bench != "":
		g, _ := workload.ByName(*bench)
		tr = g.Generate()
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tr, err = trace.ReadBinary(f)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -bench or -trace")
	}

	factory, _ := replacement.ByName(*policy)

	cfg := costsim.Default()
	cfg.L2Size, cfg.L2Ways = *l2size, *l2ways
	view := tr.SampleView(int16(*procFlag))

	r := costsim.Ratio{Low: 1, High: replacement.Cost(*ratio), Label: fmt.Sprintf("r=%d", *ratio)}
	if *ratio == 0 {
		r = costsim.Ratio{Low: 0, High: 1, Label: "r=inf"}
	}
	var src cost.Source
	switch *costmap {
	case "random":
		src = costsim.CalibratedRandom(view, cfg.BlockBytes, *haf, r, *seed)
	case "firsttouch":
		homes := workload.FirstTouchHomes(tr, cfg.BlockBytes)
		src = cost.FirstTouch{Home: workload.HomeFunc(homes, 0), Proc: int16(*procFlag), Low: r.Low, High: r.High}
	case "uniform":
		src = cost.Uniform(1)
	default:
		log.Fatalf("unknown cost mapping %q", *costmap)
	}

	base := costsim.Run(view, cfg, replacement.NewLRU(), src)
	p := factory()
	var tracer *obs.Tracer
	if *obsTrace != "" {
		f, err := os.Create(*obsTrace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		tracer = obs.NewTracer(1 << 16)
		tracer.SetSink(bw)
		if ob, ok := p.(replacement.Observable); ok {
			ob.SetObserver(tracer.Bind(p.Name()))
		} else {
			log.Printf("policy %s does not emit decision events; trace will be empty", p.Name())
		}
		defer func() {
			if err := bw.Flush(); err != nil {
				log.Fatal(err)
			}
			if err := tracer.Err(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("decision trace: %d events written to %s\n", tracer.Total(), *obsTrace)
		}()
	}
	res := costsim.Run(view, cfg, p, src)

	t := tabulate.New(fmt.Sprintf("%s on %s, %s %s mapping", *policy, tr.Name, r.Label, *costmap),
		"Metric", "LRU", *policy)
	t.AddF("L2 accesses", base.L2.Accesses, res.L2.Accesses)
	t.AddF("L2 misses", base.L2.Misses, res.L2.Misses)
	t.AddF("L2 miss rate %", base.L2.MissRate()*100, res.L2.MissRate()*100)
	t.AddF("aggregate cost", base.L2.AggCost, res.L2.AggCost)
	t.AddF("invalidations", base.Invalidations, res.Invalidations)
	t.Fprint(os.Stdout)
	fmt.Printf("relative cost savings over LRU: %.2f%%\n",
		costsim.RelativeSavings(base.L2.AggCost, res.L2.AggCost)*100)
}
