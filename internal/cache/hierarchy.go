package cache

// Level identifies where a reference was satisfied.
type Level int

// Hierarchy levels returned by Hierarchy.Access.
const (
	// Memory means the reference missed every cache level.
	Memory Level = iota
	// L1Hit means the first level satisfied the reference.
	L1Hit
	// L2Hit means the second level satisfied the reference.
	L2Hit
)

// Hierarchy is the paper's two-level structure: a small direct-mapped L1 in
// front of the L2 under study. Inclusion is enforced: a block evicted from
// or invalidated in the L2 is also removed from the L1, so the L2's
// replacement decisions fully control residency.
type Hierarchy struct {
	L1, L2 *Cache
}

// NewHierarchy wires the two levels together, enforcing inclusion via the
// L2's eviction callback. Both levels must use the same block size. Any
// OnEvict previously set on l2 is preserved and called after the L1
// back-invalidation.
func NewHierarchy(l1, l2 *Cache) *Hierarchy {
	if l1.cfg.BlockBytes != l2.cfg.BlockBytes {
		panic("cache: hierarchy levels must share a block size")
	}
	h := &Hierarchy{L1: l1, L2: l2}
	prev := l2.OnEvict
	l2.OnEvict = func(block uint64, dirty bool) {
		// Back-invalidate the L1 copy to preserve inclusion.
		h.L1.Invalidate(block << l2.blockShift)
		if prev != nil {
			prev(block, dirty)
		}
	}
	return h
}

// Access performs one reference against the hierarchy and reports the level
// that satisfied it. L2 hits refill the L1 (via the L1's write-allocate
// fill); full misses allocate in both levels. The L2 victim's
// back-invalidation can never remove the block being filled, since that
// block is by definition not the victim.
func (h *Hierarchy) Access(addr uint64, write bool) Level {
	if h.L1.Access(addr, write) {
		return L1Hit
	}
	if h.L2.Access(addr, write) {
		return L2Hit
	}
	return Memory
}

// Invalidate removes the block from both levels (external coherence).
func (h *Hierarchy) Invalidate(addr uint64) {
	h.L2.Invalidate(addr)
	h.L1.Invalidate(addr)
}

// CheckInclusion reports whether every valid L1 block is also present in the
// L2 (tests call this; it is O(L1 size)).
func (h *Hierarchy) CheckInclusion() bool {
	for _, b := range h.L1.ResidentBlocks() {
		if !h.L2.Contains(b << h.L1.blockShift) {
			return false
		}
	}
	return true
}
