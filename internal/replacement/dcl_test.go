package replacement

import (
	"reflect"
	"testing"
)

// The DCL counterpart of the BCL scenario: sacrificed blocks are remembered
// in the ETD and Acost is depreciated only when one of them is re-referenced.
func TestDCLDepreciatesOnlyOnETDHit(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewDCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b) // stack A,B,C,D; LRU = D(8), Acost 8
	}
	c.access(4) // sacrifices C -> ETD{C}
	c.access(5) // sacrifices B -> ETD{C,B}
	if got := p.Acost(0); got != 8 {
		t.Fatalf("Acost = %d, want 8 (no ETD hit yet)", got)
	}
	if got := p.etds[0].liveEntries(); got != 2 {
		t.Fatalf("ETD entries = %d, want 2", got)
	}
	// Re-reference C: cache miss, ETD hit -> Acost -= 2*1, entry consumed.
	c.access(2)
	if got := p.Acost(0); got != 6 {
		t.Fatalf("Acost after ETD hit = %d, want 6", got)
	}
	_, hits, _ := p.ETDStats()
	if hits != 1 {
		t.Fatalf("ETD hits = %d, want 1", hits)
	}
	// The refill of C sacrificed A (next block under Acost): D survives all.
	if !reflect.DeepEqual(c.evictions, []uint64{2, 1, 0}) {
		t.Fatalf("evictions = %v, want [2 1 0]", c.evictions)
	}
	if !c.access(3) {
		t.Fatal("reserved block D must still be cached")
	}
}

func TestDCLHitOnLRUBlockClearsETD(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewDCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // ETD{C}
	c.access(5) // ETD{C,B}
	if !c.access(3) {
		t.Fatal("expected hit on reserved LRU block")
	}
	if got := p.etds[0].liveEntries(); got != 0 {
		t.Fatalf("ETD entries after LRU hit = %d, want 0", got)
	}
	if _, succ := p.Reservations(); succ != 1 {
		t.Fatalf("succeeded = %d, want 1", succ)
	}
}

func TestDCLETDCapacityIsWaysMinusOne(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 100})
	p := NewDCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	// Six sacrifices in a row; the ETD holds at most 3 entries.
	for b := uint64(4); b < 10; b++ {
		c.access(b)
	}
	if got := p.etds[0].liveEntries(); got != 3 {
		t.Fatalf("ETD entries = %d, want 3", got)
	}
}

func TestDCLExternalInvalidationPurgesETD(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewDCL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // ETD{C}
	c.invalidate(2)
	if got := p.etds[0].liveEntries(); got != 0 {
		t.Fatalf("ETD entries after invalidation = %d, want 0", got)
	}
	// Re-reference C: plain miss now, no depreciation.
	c.access(2)
	if got := p.Acost(0); got != 8 {
		t.Fatalf("Acost = %d, want 8", got)
	}
}

func TestDCLNeverSacrificesHighCostForLowAtInfiniteRatio(t *testing.T) {
	// Costs in {0,1}: DCL must never evict a cost-1 block while the set
	// holds a cost-0 block.
	cost := func(b uint64) Cost { return Cost((b * 2654435761) % 3 / 2) } // ~1/3 high
	p := NewDCL()
	c := newTestCache(t, 4, 4, p, cost)
	c.onEvict = func(set int, victim uint64) {
		if cost(victim) == 0 {
			return
		}
		// Victim is high-cost: assert no low-cost block remains in the set.
		for w := 0; w < c.ways; w++ {
			if !c.valid[set][w] {
				continue
			}
			b := c.tags[set][w]*uint64(c.sets) + uint64(set)
			if b != victim && cost(b) == 0 {
				t.Fatalf("evicted high-cost %d while low-cost %d cached in set %d", victim, b, set)
			}
		}
	}
	for i := 0; i < 20000; i++ {
		c.access(uint64(i*7919+i*i*13) % 256)
	}
	if c.misses == 0 || len(c.evictions) == 0 {
		t.Fatal("scenario produced no evictions")
	}
}

func TestACLStartsDisabledAndEnablesOnProbeHit(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewACL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	// Disabled: plain LRU evicts the high-cost D, but D enters the ETD
	// because cheaper blocks were cached.
	c.access(4)
	if !reflect.DeepEqual(c.evictions, []uint64{3}) {
		t.Fatalf("evictions = %v, want [3]", c.evictions)
	}
	if got := p.Counter(0); got != 0 {
		t.Fatalf("counter = %d, want 0", got)
	}
	// Re-reference D: ETD probe hit re-enables reservations.
	c.access(3)
	if got := p.Counter(0); got != 2 {
		t.Fatalf("counter = %d, want 2", got)
	}
	if got := p.Enables(); got != 1 {
		t.Fatalf("enables = %d, want 1", got)
	}
	if got := p.etds[0].liveEntries(); got != 0 {
		t.Fatalf("ETD must be cleared on enable, has %d", got)
	}
}

func TestACLCountsSuccessesAndFailures(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewACL()
	c := newTestCache(t, 1, 4, p, costs)
	// Warm up and enable via probe: D evicted once, then re-referenced.
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // D evicted, enters ETD
	c.access(3) // probe hit -> enabled (counter 2); D refilled (MRU)

	// Rotate D to LRU: touch the other residents.
	// Cache now holds D(3), plus 3 of {0,1,4} (2 was evicted when D refilled
	// under... determine: after enable, the miss on 3 finds victim via DCL
	// scan with Acost = cost of current LRU occupant).
	// Rather than track by hand, just touch every cached block except D.
	for b := uint64(0); b < 6; b++ {
		if b != 3 {
			if c.lookup(c.setTag(b)) >= 0 {
				c.access(b)
			}
		}
	}
	// D is now LRU with Acost 8. Drive a reservation to failure by cycling
	// sacrificed blocks through the ETD until Acost exhausts.
	base := uint64(100)
	for i := 0; i < 40 && c.lookup(c.setTag(3)) >= 0; i++ {
		c.access(base + uint64(i)) // cold misses sacrifice cheap blocks
		// Re-reference the most recent eviction to score an ETD hit.
		if n := len(c.evictions); n > 0 && c.evictions[n-1] != 3 {
			c.access(c.evictions[n-1])
		}
	}
	if c.lookup(c.setTag(3)) >= 0 {
		t.Fatal("reserved block never evicted; failure path not exercised")
	}
	if got := p.Counter(0); got != 1 {
		t.Fatalf("counter after one failure = %d, want 1", got)
	}
	if p.failed != 1 {
		t.Fatalf("failed = %d, want 1", p.failed)
	}
}

func TestACLSuccessIncrementsCounter(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewACL()
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // D evicted (disabled), enters ETD
	c.access(3) // enable, counter=2
	// Make D LRU again, reserve it, then hit it.
	for _, b := range []uint64{0, 1, 4} {
		if c.lookup(c.setTag(b)) >= 0 {
			c.access(b)
		}
	}
	evBefore := len(c.evictions)
	c.access(200) // miss: reservation sacrifices a cheap block
	if len(c.evictions) != evBefore+1 || c.evictions[len(c.evictions)-1] == 3 {
		t.Fatalf("expected a cheap sacrifice, evictions=%v", c.evictions)
	}
	c.access(3) // hit on reserved LRU block: success
	if got := p.Counter(0); got != 3 {
		t.Fatalf("counter = %d, want 3 (2+1)", got)
	}
	if _, succ := p.Reservations(); succ != 1 {
		t.Fatalf("succeeded = %d, want 1", succ)
	}
}

func TestDCLAliasedETDFalseMatches(t *testing.T) {
	// With 1-bit tags, blocks whose tags share the low bit alias in the ETD.
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewDCLWith(Options{TagBits: 1})
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // sacrifices C=2 -> ETD{tag 2 & 1 = 0}
	// Access block 6 (tag 6&1=0): cache miss, aliased ETD hit.
	c.access(6)
	probes, hits, false_ := p.ETDStats()
	if probes == 0 || hits == 0 {
		t.Fatalf("expected ETD traffic, got probes=%d hits=%d", probes, hits)
	}
	if false_ == 0 {
		t.Fatal("expected a false match with 1-bit tags")
	}
	if p.Name() != "DCL-a1" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"LRU": NewLRU(), "GD": NewGD(), "BCL": NewBCL(),
		"DCL": NewDCL(), "ACL": NewACL(), "Random": NewRandom(1),
		"ACL-a4": NewACLWith(Options{TagBits: 4}),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestOptionsAblationKnobs(t *testing.T) {
	// Factor 1 depreciates half as fast as the paper's 2.
	costs := costTable(map[uint64]Cost{3: 8})
	p1 := NewDCLWith(Options{Factor: 1})
	c := newTestCache(t, 1, 4, p1, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	c.access(4) // sacrifice C -> ETD
	c.access(2) // ETD hit: Acost -= 1*1
	if got := p1.Acost(0); got != 7 {
		t.Fatalf("factor-1 Acost = %d, want 7", got)
	}

	// A larger ETD holds more than s-1 entries.
	p2 := NewDCLWith(Options{ETDEntries: 6})
	c2 := newTestCache(t, 1, 4, p2, costTable(map[uint64]Cost{3: 100}))
	for _, b := range []uint64{3, 2, 1, 0} {
		c2.access(b)
	}
	for b := uint64(4); b < 12; b++ {
		c2.access(b)
	}
	if got := p2.etds[0].liveEntries(); got != 6 {
		t.Fatalf("ETD entries = %d, want 6", got)
	}

	// A 1-bit ACL counter saturates at 1 and the probe enable clamps to it.
	p3 := NewACLWith(Options{CounterBits: 1})
	c3 := newTestCache(t, 1, 4, p3, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c3.access(b)
	}
	c3.access(4) // disabled LRU eviction of D, D -> ETD
	c3.access(3) // probe hit: counter = min(2, max=1) = 1
	if got := p3.Counter(0); got != 1 {
		t.Fatalf("1-bit counter = %d, want 1", got)
	}
}

func TestBCLFactorAblation(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewBCLWithFactor(1)
	c := newTestCache(t, 1, 4, p, costs)
	for _, b := range []uint64{3, 2, 1, 0} {
		c.access(b)
	}
	// With factor 1, eight sacrifices fit before Acost exhausts (vs four).
	for b := uint64(4); b < 11; b++ {
		c.access(b)
	}
	if got := p.Acost(0); got != 1 {
		t.Fatalf("Acost after 7 sacrifices = %d, want 1", got)
	}
	if !c.access(3) {
		t.Fatal("reserved block must still be cached under slower depreciation")
	}
}

func TestBCLFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBCLWithFactor(0)
}
