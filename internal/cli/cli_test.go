package cli

import (
	"syscall"
	"testing"
	"time"

	"costcache/internal/fault"
	"costcache/internal/manifest"
)

func TestInterruptObservesSignal(t *testing.T) {
	stopped := Interrupt()
	if stopped() {
		t.Fatal("stop requested before any signal")
	}
	// SIGTERM to ourselves: the notify context must cancel. Only one signal —
	// the handler restores default disposition after the first, and a second
	// would kill the test binary.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !stopped() {
		if time.Now().After(deadline) {
			t.Fatal("stop not observed within 5s of SIGTERM")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRecordFaults(t *testing.T) {
	plan := &fault.Plan{
		Name:  "test-plan",
		Seed:  9,
		Nodes: []fault.NodeFault{{Window: fault.Window{EndNs: 100}, ExtraNs: 10}},
	}
	st := fault.Stats{Nacks: 3, Retries: 3, BackoffNs: 450, SlowedHops: 2, DegradedMisses: 1}

	m := manifest.New("test")
	RecordFaults(m, plan, st)
	if m.Config["fault_plan"] != "test-plan" || m.Config["fault_seed"] != "9" {
		t.Fatalf("config = %+v", m.Config)
	}
	if m.Config["fault_plan_hash"] != plan.Hash() {
		t.Fatal("hash not recorded")
	}
	if m.Metrics["fault_nacks"] != 3 || m.Metrics["fault_backoff_ns"] != 450 {
		t.Fatalf("metrics = %+v", m.Metrics)
	}
	if m.Metrics["fault_events"] != float64(st.Events()) {
		t.Fatal("event total not recorded")
	}

	// Nil manifest or nil plan: quiet no-ops.
	RecordFaults(nil, plan, st)
	empty := manifest.New("test")
	RecordFaults(empty, nil, st)
	if len(empty.Metrics) != 0 {
		t.Fatal("nil plan recorded metrics")
	}
}
