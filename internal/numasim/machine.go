// Package numasim is the execution-driven CC-NUMA simulator of Section 4:
// 16 ILP processors with two-level cache hierarchies, a directory MESI
// protocol over a 4x4 mesh, first-touch memory placement, and per-node
// last-latency miss-cost prediction feeding the cost-sensitive replacement
// policy in the L2. It reproduces Table 3 (consecutive-miss latency
// correlation), the Table 4 unloaded-latency calibration, and Table 5
// (execution-time reduction over LRU).
package numasim

import (
	"fmt"

	"costcache/internal/cache"
	"costcache/internal/coherence"
	"costcache/internal/cost"
	"costcache/internal/fault"
	"costcache/internal/mesh"
	"costcache/internal/obs"
	"costcache/internal/obs/span"
	"costcache/internal/proc"
	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// Config describes the simulated machine (Table 4 by default).
type Config struct {
	// ClockMHz is the processor clock (500 or 1000 in the paper).
	ClockMHz int
	// Net, Protocol and Core are the subsystem parameter sets.
	Net      mesh.Params
	Protocol coherence.Params
	Core     proc.Params
	// Cache geometry.
	L1Size, L2Size, L2Ways, BlockBytes int
	// Policy builds the L2 replacement policy of each node.
	Policy replacement.Factory
	// PredictorDefault is the latency (ns) predicted for blocks that have
	// never missed; the paper's local clean latency is a natural default.
	PredictorDefault int64
	// BarrierNs is the flat cost of a global barrier.
	BarrierNs int64
	// CollectTable3 turns on consecutive-miss latency instrumentation.
	CollectTable3 bool
	// Metrics, when non-nil, receives live instrumentation: per-node miss
	// latency histograms (numasim_miss_latency_ns{node="i"}), reference and
	// miss counters, mesh queue metrics and directory-occupancy counters.
	// nil runs pay only nil checks.
	Metrics *obs.Registry
	// Spans, when non-nil, traces every L2 miss's lifecycle — MSHR wait,
	// lookup, network, directory, memory, forwards, invalidations, reply —
	// with simulated-cycle timestamps. Exactly one span is begun per L2 miss
	// (upgrades on store hits are not traced), so the tracer's per-node span
	// counts reconcile one-to-one with Result.PerNode misses. Tracing never
	// perturbs timing: results are bit-identical with Spans nil or set.
	Spans *span.Tracer
	// UsePenalty switches the predicted cost from the measured miss
	// latency to the miss PENALTY — the stall the miss adds beyond already
	// outstanding work (zero for buffered stores and fully overlapped
	// loads). The paper's conclusion proposes exactly this refinement
	// ("if we can measure memory access penalty instead of latency and use
	// the penalty as the target cost function").
	UsePenalty bool
	// Faults, when non-nil, is the deterministic fault plan injected into
	// the run: link slowdowns/outages in the mesh, hot directory and memory
	// banks in the coherence engine, and whole-node miss-latency degradation
	// here. Each Run compiles its own injector so two runs never share
	// counters; an empty (or nil) plan is bit-identical with no plan at all.
	// Injection also arms a no-progress watchdog that fails the run with a
	// diagnostic dump if simulated time and the reference count both stop
	// advancing (see WatchdogLimit).
	Faults *fault.Plan
	// WatchdogLimit overrides the watchdog's stuck-tick threshold (0 keeps
	// the fault package default). Tests use a tiny limit to provoke it.
	WatchdogLimit int64
	// Stop, when non-nil, is polled once per reference; when it returns
	// true the run stops at that reference boundary, drains in-flight work
	// and returns a partial Result with Interrupted set. Harnesses wire
	// SIGINT/SIGTERM here so a long run still flushes artifacts.
	Stop func() bool
}

// DefaultConfig returns the Table 4 machine at 500 MHz with the given L2
// policy (nil defaults to LRU).
func DefaultConfig(policy replacement.Factory) Config {
	if policy == nil {
		policy = func() replacement.Policy { return replacement.NewLRU() }
	}
	return Config{
		ClockMHz: 500,
		Net:      mesh.Default(),
		Protocol: coherence.DefaultParams(),
		Core:     proc.DefaultParams(),
		L1Size:   4 << 10, L2Size: 16 << 10, L2Ways: 4, BlockBytes: 64,
		Policy:           policy,
		PredictorDefault: 120,
		BarrierNs:        400,
	}
}

func (c Config) withPolicy(f replacement.Factory) Config { c.Policy = f; return c }

func (c Config) cycleNs() int64 {
	switch c.ClockMHz {
	case 500:
		return 2
	case 1000:
		return 1
	default:
		if c.ClockMHz <= 0 {
			panic("numasim: ClockMHz must be positive")
		}
		return int64(1000 / c.ClockMHz)
	}
}

// node is one processor + cache hierarchy + predictor.
type node struct {
	id   int
	h    *cache.Hierarchy
	win  *proc.Window
	pred *cost.LastLatency

	// last-miss records for Table 3, keyed by block.
	lastMiss map[uint64]missRecord

	misses, hits int64
	missNs       int64 // sum of measured (loaded) miss latencies

	missHist *obs.Histogram // per-node miss latency (nil when unobserved)
}

type missRecord struct {
	write    bool
	state    coherence.State
	unloaded int64
}

// Result summarizes one run.
type Result struct {
	// Name and Policy identify the run.
	Name, Policy string
	// ClockMHz is the simulated clock.
	ClockMHz int
	// ExecNs is the execution time: the last processor's finish time.
	ExecNs int64
	// Refs, L2Misses and AvgMissNs summarize the memory behaviour.
	Refs     int64
	L2Misses int64
	// AggMissNs is the total measured miss latency (the cost function of
	// Section 4); AvgMissNs its mean.
	AggMissNs int64
	AvgMissNs float64
	// Protocol are the coherence-engine counters.
	Protocol coherence.Stats
	// Table3 is the consecutive-miss matrix (nil unless collected).
	Table3 *LatencyMatrix
	// PerNode reports each processor's miss count and mean miss latency,
	// exposing the load imbalance execution time hides.
	PerNode []NodeStats
	// Faults counts what the fault injector did (nil when no plan was
	// configured).
	Faults *fault.Stats
	// Interrupted reports that Config.Stop ended the run early; every
	// figure above covers only the references issued before the stop.
	Interrupted bool
}

// NodeStats is one processor's memory behaviour.
type NodeStats struct {
	Misses    int64
	Hits      int64
	AvgMissNs float64
}

// Run executes the program on the configured machine.
func Run(prog *workload.Program, cfg Config) Result {
	cyc := cfg.cycleNs()
	net := mesh.New(cfg.Net)
	if prog.Procs > net.Nodes() {
		panic("numasim: program has more processors than mesh nodes")
	}

	homes := firstTouchHomes(prog, cfg.BlockBytes)
	coh := coherence.New(cfg.Protocol, net, func(block uint64) int {
		if h, ok := homes[block]; ok {
			return int(h)
		}
		return 0
	})
	var refsCtr, missCtr *obs.Counter
	if cfg.Metrics != nil {
		net.AttachMetrics(cfg.Metrics)
		coh.AttachMetrics(cfg.Metrics)
		refsCtr = cfg.Metrics.Counter("numasim_refs")
		missCtr = cfg.Metrics.Counter("numasim_l2_misses")
	}

	// Fault injection: compile the plan into a per-run injector (so counters
	// never mix across runs) and arm the no-progress watchdog. A nil plan
	// leaves every hook nil; an empty plan compiles but injects nothing, and
	// either way results are bit-identical with the un-faulted simulator.
	var inj *fault.Injector
	var wd *fault.Watchdog
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			panic("numasim: " + err.Error())
		}
		inj = fault.NewInjector(cfg.Faults, cfg.Net.Dim, cfg.Protocol.MemBanks)
		net.SetFaults(inj)
		coh.SetFaults(inj)
		if cfg.Metrics != nil {
			inj.AttachMetrics(cfg.Metrics)
		}
		wd = &fault.Watchdog{Limit: cfg.WatchdogLimit}
		inj.Watchdog = wd
	}

	nodes := make([]*node, prog.Procs)
	blockShift := uint(0)
	for 1<<blockShift < cfg.BlockBytes {
		blockShift++
	}
	// `now` tracks the current global issue time so evictions triggered
	// inside cache fills carry a timestamp for the protocol.
	var now int64
	for i := range nodes {
		i := i
		n := &node{
			id:       i,
			win:      proc.New(cfg.Core, cyc),
			pred:     cost.NewLastLatency(replacement.Cost(cfg.PredictorDefault)),
			lastMiss: make(map[uint64]missRecord),
		}
		if cfg.Metrics != nil {
			n.missHist = cfg.Metrics.Histogram(
				obs.Name("numasim_miss_latency_ns", "node", fmt.Sprint(i)),
				obs.ExpBuckets(60, 1.5, 12))
		}
		l1 := cache.New(cache.Config{
			Name: "L1", SizeBytes: cfg.L1Size, Ways: 1, BlockBytes: cfg.BlockBytes,
		})
		l2 := cache.New(cache.Config{
			Name: "L2", SizeBytes: cfg.L2Size, Ways: cfg.L2Ways, BlockBytes: cfg.BlockBytes,
			Policy: cfg.Policy(), Cost: n.pred,
		})
		// NewHierarchy installs the inclusion back-invalidation; chain the
		// protocol notification (writeback or replacement hint) after it.
		n.h = cache.NewHierarchy(l1, l2)
		inclusion := l2.OnEvict
		l2.OnEvict = func(block uint64, dirty bool) {
			inclusion(block, dirty)
			coh.Evict(i, block, dirty, now)
		}
		nodes[i] = n
	}
	coh.HasBlock = func(nd int, block uint64) bool {
		return nodes[nd].h.L2.Contains(block << blockShift)
	}
	coh.Invalidate = func(nd int, block uint64, at int64) {
		nodes[nd].h.Invalidate(block << blockShift)
	}
	coh.Downgrade = func(nd int, block uint64, at int64) {
		addr := block << blockShift
		nodes[nd].h.L2.ClearDirty(addr)
		nodes[nd].h.L1.ClearDirty(addr)
	}

	var matrix *LatencyMatrix
	if cfg.CollectTable3 {
		matrix = &LatencyMatrix{CycleNs: cyc}
	}

	l1Lat := cyc            // 1 clock (Table 4)
	l2Lat := 6 * cyc        // 6 clocks
	lookup := l1Lat + l2Lat // miss detection path

	var totalRefs int64
	barrier := int64(0)
	interrupted := false
	if wd != nil {
		wd.Dump = func() string {
			return fmt.Sprintf("numasim: bench %s: %d refs issued, fault stats %+v",
				prog.Name, totalRefs, inj.Stats())
		}
	}
	for _, phase := range prog.Phases {
		if interrupted {
			break
		}
		pos := make([]int, prog.Procs)
		remaining := 0
		for _, refs := range phase {
			remaining += len(refs)
		}
		for remaining > 0 {
			if cfg.Stop != nil && cfg.Stop() {
				// Safe boundary: no reference is mid-flight; the barrier
				// below drains what is, then the partial result is returned.
				interrupted = true
				break
			}
			// Pick the processor whose next reference issues earliest.
			p := -1
			var best int64
			for i, n := range nodes {
				if pos[i] >= len(phase[i]) {
					continue
				}
				if t := n.win.IssueReady(); p < 0 || t < best {
					p, best = i, t
				}
			}
			n := nodes[p]
			ref := phase[p][pos[p]]
			pos[p]++
			remaining--
			totalRefs++
			if refsCtr != nil {
				refsCtr.Inc()
			}

			t := best
			now = t
			wd.Event()
			wd.Tick(now)
			addr := ref.Addr
			block := addr >> blockShift
			write := ref.Op == trace.Write

			if n.h.L2.Contains(addr) {
				// Cache hit at L1 or L2.
				level := n.h.Access(addr, write)
				n.hits++
				complete := t + l1Lat
				if level == cache.L2Hit {
					complete = t + lookup
				}
				if write {
					n.h.L2.MarkDirty(addr)
					if !coh.OwnedBy(p, block) {
						// Upgrade: invalidate other copies; the store is
						// buffered but the MSHR is held until ownership
						// arrives.
						res := coh.Write(p, block, complete)
						n.win.AddMiss(res.Done)
					}
					n.win.Record(t, t+l1Lat)
				} else {
					n.win.Record(t, complete)
				}
				continue
			}

			// L2 miss: wait for an MSHR, run the transaction, then fill.
			n.misses++
			var sp *span.Span
			if cfg.Spans != nil {
				sp = cfg.Spans.Begin(p, block, write, t)
			}
			var deg int64
			if inj != nil {
				// Whole-node degradation: the miss pays the window's extra
				// latency before the coherence transaction starts. The span's
				// lookup stage absorbs it so stage timelines stay contiguous.
				deg = inj.NodeExtra(p, t)
			}
			issue := n.win.WaitMSHRSpan(t, sp) + lookup + deg
			if sp != nil {
				sp.SegQ(span.StageLookup, issue-lookup-deg, 0, issue)
				coh.SetSpan(sp)
			}
			var res coherence.Result
			if write {
				res = coh.Write(p, block, issue)
			} else {
				res = coh.Read(p, block, issue)
			}
			if sp != nil {
				// Detach before the fill below: eviction traffic the fill
				// triggers is not part of this miss's critical path.
				coh.SetSpan(nil)
				cfg.Spans.Finish(sp, res.Done, res.StateBefore.String()[0], res.Local, res.Dirty)
			}
			measured := res.Done - issue
			n.missNs += measured
			if n.missHist != nil {
				n.missHist.Observe(measured)
				missCtr.Inc()
			}
			observed := measured
			if cfg.UsePenalty {
				// Anticipated retire stall: the part of the miss latency
				// not hidden behind older in-flight work. Buffered stores
				// never stall.
				observed = 0
				if !write {
					horizon := n.win.LastRetire()
					if t > horizon {
						horizon = t
					}
					if res.Done > horizon {
						observed = res.Done - horizon
					}
				}
			}
			n.pred.Observe(block, replacement.Cost(observed))
			if matrix != nil {
				rec := missRecord{write: write, state: res.StateBefore, unloaded: res.Unloaded}
				if last, ok := n.lastMiss[block]; ok {
					matrix.record(last, rec)
				}
				n.lastMiss[block] = rec
			}
			// Install the block; the predictor now returns this miss's
			// measured latency, which the policy stores as the block's cost
			// ("loaded at the time of miss", Section 2.3).
			n.h.Access(addr, write)
			n.win.AddMiss(res.Done)
			if write {
				n.win.Record(t, t+l1Lat) // buffered store
			} else {
				n.win.Record(t, res.Done)
			}
		}
		// Barrier: everyone drains, then restarts together.
		release := int64(0)
		for _, n := range nodes {
			if d := n.win.DrainTime(); d > release {
				release = d
			}
		}
		release += cfg.BarrierNs
		barrier = release
		for _, n := range nodes {
			n.win.SyncTo(release)
		}
	}

	res := Result{
		Name: prog.Name, ClockMHz: cfg.ClockMHz, ExecNs: barrier,
		Refs: totalRefs, Protocol: coh.Stats(), Table3: matrix,
		Interrupted: interrupted,
	}
	if inj != nil {
		st := inj.Stats()
		res.Faults = &st
	}
	var pol replacement.Policy
	for _, n := range nodes {
		res.L2Misses += n.misses
		res.AggMissNs += n.missNs
		ns := NodeStats{Misses: n.misses, Hits: n.hits}
		if n.misses > 0 {
			ns.AvgMissNs = float64(n.missNs) / float64(n.misses)
		}
		res.PerNode = append(res.PerNode, ns)
		pol = n.h.L2.Policy()
	}
	if pol != nil {
		res.Policy = pol.Name()
	}
	if res.L2Misses > 0 {
		res.AvgMissNs = float64(res.AggMissNs) / float64(res.L2Misses)
	}
	return res
}

// firstTouchHomes assigns each block to the first processor referencing it,
// scanning phases in order and processors round-robin within a phase (the
// deterministic equivalent of first-touch allocation).
func firstTouchHomes(prog *workload.Program, blockBytes int) map[uint64]int16 {
	homes := make(map[uint64]int16)
	for _, phase := range prog.Phases {
		// Within a phase, interleave processors reference-by-reference so
		// no processor is unfairly favoured as a first toucher.
		maxLen := 0
		for _, refs := range phase {
			if len(refs) > maxLen {
				maxLen = len(refs)
			}
		}
		for i := 0; i < maxLen; i++ {
			for p, refs := range phase {
				if i >= len(refs) {
					continue
				}
				b := refs[i].Addr / uint64(blockBytes)
				if _, ok := homes[b]; !ok {
					homes[b] = int16(p)
				}
			}
		}
	}
	return homes
}
