package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// record plays one synthetic span through the tracer: a remote read miss with
// an MSHR wait, two request hops, and directory/memory/reply stages.
func record(tr *Tracer, node int, start int64) {
	s := tr.Begin(node, 42, false, start)
	s.SegQ(StageIssue, start, 10, start+10)
	s.SegQ(StageLookup, start+10, 0, start+24)
	s.Hop(3, start+24, 0, start+50)
	s.Hop(7, start+50, 6, start+80)
	s.SegQ(StageRequest, start+24, 6, start+80)
	s.SegQ(StageDirectory, start+80, 0, start+98)
	s.SegQ(StageMemory, start+98, 12, start+170)
	s.SegQ(StageReply, start+170, 0, start+280)
	tr.Finish(s, start+280, 'U', false, false)
}

func TestStageAndClassNames(t *testing.T) {
	want := []string{"issue", "lookup", "request", "directory", "memory", "forward", "inval", "reply"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Errorf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	cases := []struct {
		local, dirty bool
		want         Class
	}{
		{true, false, LocalClean}, {true, true, LocalDirty},
		{false, false, RemoteClean}, {false, true, RemoteDirty},
	}
	for _, c := range cases {
		if got := ClassOf(c.local, c.dirty); got != c.want {
			t.Errorf("ClassOf(%v,%v) = %v, want %v", c.local, c.dirty, got, c.want)
		}
	}
}

func TestJSONLDeterministicAndWellFormed(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		tr := NewTracer(&buf, nil)
		record(tr, 1, 100)
		record(tr, 0, 500)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs produced different JSONL:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec struct {
		ID     uint64 `json:"id"`
		Node   int    `json:"node"`
		Op     string `json:"op"`
		State  string `json:"state"`
		Class  string `json:"class"`
		Start  int64  `json:"start"`
		End    int64  `json:"end"`
		Stages []struct {
			Stage string `json:"stage"`
			Queue int64  `json:"queue"`
		} `json:"stages"`
		Hops []struct {
			Link  int32 `json:"link"`
			Queue int64 `json:"queue"`
		} `json:"hops"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if rec.ID != 1 || rec.Node != 1 || rec.Op != "r" || rec.State != "U" || rec.Class != "remote-clean" {
		t.Errorf("unexpected header fields: %+v", rec)
	}
	if rec.Start != 100 || rec.End != 380 {
		t.Errorf("span window [%d,%d], want [100,380]", rec.Start, rec.End)
	}
	if len(rec.Stages) != 6 || len(rec.Hops) != 2 {
		t.Fatalf("got %d stages, %d hops; want 6, 2", len(rec.Stages), len(rec.Hops))
	}
	if rec.Stages[0].Stage != "issue" || rec.Stages[0].Queue != 10 {
		t.Errorf("first stage %+v, want issue with queue 10", rec.Stages[0])
	}
	if rec.Hops[1].Link != 7 || rec.Hops[1].Queue != 6 {
		t.Errorf("second hop %+v, want link 7 queue 6", rec.Hops[1])
	}
}

func TestChromeTraceParsesAndLanes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(nil, &buf)
	// Three spans of node 2 whose simulated windows overlap ([0,280],
	// [100,380], [150,600]): MSHR overlap in the simulator. Begin/Finish are
	// sequential but the lane allocator must still separate the tracks.
	record(tr, 2, 0)
	record(tr, 2, 100)
	s := tr.Begin(2, 9, true, 150)
	tr.Finish(s, 600, 'E', false, true)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("chrome output not a JSON array: %v\n%s", err, buf.String())
	}
	spans, metas := 0, 0
	tids := map[float64]bool{}
	for _, e := range evs {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			if e["cat"] != "miss" {
				t.Errorf("X slice with cat %v", e["cat"])
			}
			name := e["name"].(string)
			if name == "remote-clean" || name == "remote-dirty" || name == "local-clean" || name == "local-dirty" {
				spans++
				tids[e["tid"].(float64)] = true
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if spans != 3 {
		t.Errorf("got %d span slices, want 3", spans)
	}
	if metas == 0 {
		t.Error("no metadata events (process/thread names)")
	}
	// Span 2 [100,380] and span 3 [150,600] overlap in sim time, so the lane
	// allocator must have used at least two lanes.
	if len(tids) < 2 {
		t.Errorf("overlapping spans share a lane: tids %v", tids)
	}
}

func TestBreakdownAggregation(t *testing.T) {
	tr := NewTracer(nil, nil)
	record(tr, 0, 0)
	record(tr, 1, 1000)
	s := tr.Begin(0, 7, true, 50)
	s.SegQ(StageLookup, 50, 0, 64)
	tr.Finish(s, 170, 'U', true, false)
	if tr.Count() != 3 {
		t.Fatalf("Count = %d, want 3", tr.Count())
	}
	if got := tr.NodeCounts(); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("NodeCounts = %v, want [2 1]", got)
	}
	b := tr.Breakdown()
	rc := b.Classes[RemoteClean]
	if rc.Spans != 2 || rc.TotalNs != 560 || rc.HopQueueNs != 12 {
		t.Errorf("remote-clean agg = %+v", rc)
	}
	if got := rc.MeanNs(); got != 280 {
		t.Errorf("remote-clean mean = %v, want 280", got)
	}
	// Transaction latency excludes the 10 ns issue wait.
	if got := rc.MeanTransactionNs(); got != 270 {
		t.Errorf("remote-clean transaction mean = %v, want 270", got)
	}
	if st := rc.Stages[StageMemory]; st.Count != 2 || st.Ns != 144 || st.QueueNs != 24 {
		t.Errorf("memory stage agg = %+v", st)
	}
	lc := b.Classes[LocalClean]
	if lc.Spans != 1 || lc.TotalNs != 120 {
		t.Errorf("local-clean agg = %+v", lc)
	}

	rows := b.Rows()
	var sawTotal, sawStage bool
	for _, r := range rows {
		if r.Class == "remote-clean" && r.Stage == "total" {
			sawTotal = true
			if r.Count != 2 || r.TotalNs != 560 || r.MeanNs != 280 {
				t.Errorf("total row = %+v", r)
			}
		}
		if r.Class == "remote-clean" && r.Stage == "memory" {
			sawStage = true
			if r.MeanNs != 72 { // per miss of the class
				t.Errorf("memory row mean = %v, want 72", r.MeanNs)
			}
		}
		if r.Count == 0 {
			t.Errorf("empty row emitted: %+v", r)
		}
	}
	if !sawTotal || !sawStage {
		t.Errorf("missing rows: total=%v stage=%v", sawTotal, sawStage)
	}
}

func TestBeginFinishMisuse(t *testing.T) {
	tr := NewTracer(nil, nil)
	s := tr.Begin(0, 1, false, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Begin did not panic")
			}
		}()
		tr.Begin(0, 2, false, 0)
	}()
	tr.Finish(s, 10, 'U', true, false)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Finish without Begin did not panic")
			}
		}()
		tr.Finish(s, 20, 'U', true, false)
	}()
}

// TestSpanRecordAllocs pins the acceptance criterion: the instrumented hot
// path (Begin, stage/hop appends, Finish with both sinks live) performs zero
// allocations per miss in steady state.
func TestSpanRecordAllocs(t *testing.T) {
	tr := NewTracer(discard{}, discard{})
	start := int64(0)
	// Warm up: size the scratch span, the encoder buffers and the lane table.
	for i := 0; i < 64; i++ {
		record(tr, i%4, start)
		start += 300
	}
	avg := testing.AllocsPerRun(500, func() {
		record(tr, 1, start)
		start += 300
	})
	if avg != 0 {
		t.Errorf("span recording allocates %v allocs/op, want 0", avg)
	}
}

func BenchmarkSpanRecord(b *testing.B) {
	tr := NewTracer(discard{}, discard{})
	start := int64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		record(tr, i%16, start)
		start += 300
	}
}

// discard is io.Discard without the fmt dependency tricks; a plain sink that
// keeps the write path honest.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
