// Command cacheserved serves cost-sensitive cache engines over TCP: a
// networked tier speaking the length-prefixed binary protocol in
// internal/wire (GET / SET / GETORLOAD / STATS / PING), one engine per
// namespace, with pipelined per-connection service, request coalescing,
// admission control and graceful drain (docs/SERVING_TIER.md).
//
//	cacheserved -listen 127.0.0.1:7070                      # one "bench" namespace
//	cacheserved -ns "hot:policy=DCL,shards=16" -ns "cold:policy=CL,sets=65536"
//	cacheserved -maxinflight 256 -queue.deadline 2ms        # shed under overload
//	cacheserved -obs.listen localhost:0 -manifest run.json  # live telemetry
//
// Each -ns flag declares a namespace as name[:key=value,...] with keys
// policy, shards, sets, ways (engine geometry), ttl (expire entries this
// long after their load; 0 = never) and loaddelay (simulated backend latency
// per unit of miss cost). Namespaces share one metrics registry; every
// engine series carries an ns label, so per-tenant and aggregate views come
// from the same snapshot.
//
// Clients declare each key's miss cost in the GETORLOAD request, so the
// server charges exactly the cost stream the client's cost model defines —
// a single-worker closed-loop cachebench -remote run reproduces the engine
// counters of the same in-process run bit for bit (CI pins this).
//
// Requests arriving with a propagated trace context (negotiated over PING;
// see docs/SERVING_TIER.md) are traced server-side under the client's span
// id: -node names this node in the emitted spans and -span.jsonl writes
// them, so report -merge can stitch the client's net round trip and the
// server's stage segments into one cluster timeline.
//
// -maxconns bounds accepted connections, -maxinflight bounds concurrent
// backend loads and -queue.deadline bounds how long an admitted request may
// wait for a load slot before the server sheds it (SHED error, server_shed
// counter, server-shed-rate alert). -obs.listen serves /metrics, pprof,
// /debug/engine/<ns> analytics per namespace, /debug/timeseries (with the
// serving-tier conns_per_s and server_shed_share signals) and /debug/alerts.
//
// SIGINT/SIGTERM drain gracefully: stop accepting, answer late frames with
// a DRAINING error, finish in-flight requests and flush responses, then
// write the -manifest and exit 0. A drain that exceeds -drain.timeout drops
// the remaining connections, marks the manifest "interrupted": true and
// exits 130; a second signal kills the process immediately.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"costcache/internal/cli"
	"costcache/internal/engine"
	"costcache/internal/manifest"
	"costcache/internal/obs"
	"costcache/internal/obs/alert"
	"costcache/internal/obs/reqspan"
	"costcache/internal/obs/span"
	"costcache/internal/obs/tsdb"
	"costcache/internal/replacement"
	"costcache/internal/server"
)

// nsSpec is one parsed -ns flag.
type nsSpec struct {
	name      string
	policy    string
	shards    int
	sets      int
	ways      int
	ttl       time.Duration
	loadDelay time.Duration
}

// defaultSpec matches cachebench's engine defaults, so `cacheserved` with no
// -ns flag is the exact serving-tier twin of a default in-process run.
func defaultSpec(name string) nsSpec {
	return nsSpec{name: name, policy: "DCL", shards: 8, sets: 4096, ways: 4}
}

// nsFlag collects repeated -ns flags.
type nsFlag struct {
	specs []nsSpec
}

func (f *nsFlag) String() string {
	var names []string
	for _, s := range f.specs {
		names = append(names, s.name)
	}
	return strings.Join(names, ",")
}

func (f *nsFlag) Set(v string) error {
	spec, err := parseSpec(v)
	if err != nil {
		return err
	}
	f.specs = append(f.specs, spec)
	return nil
}

// specKeys documents the valid -ns spec grammar for exit-2 messages.
var specKeys = []string{"name[:policy=P,shards=N,sets=N,ways=N,ttl=D,loaddelay=D]"}

func parseSpec(v string) (nsSpec, error) {
	name, opts, hasOpts := strings.Cut(v, ":")
	if name == "" {
		return nsSpec{}, fmt.Errorf("empty namespace name")
	}
	spec := defaultSpec(name)
	if !hasOpts {
		return spec, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nsSpec{}, fmt.Errorf("namespace option %q is not key=value", kv)
		}
		var err error
		switch key {
		case "policy":
			if _, ok := replacement.ByName(val); !ok {
				return nsSpec{}, fmt.Errorf("unknown policy %q (valid: %s)", val, strings.Join(replacement.Names(), ", "))
			}
			spec.policy = val
		case "shards":
			spec.shards, err = strconv.Atoi(val)
		case "sets":
			spec.sets, err = strconv.Atoi(val)
		case "ways":
			spec.ways, err = strconv.Atoi(val)
		case "ttl":
			spec.ttl, err = time.ParseDuration(val)
		case "loaddelay":
			spec.loadDelay, err = time.ParseDuration(val)
		default:
			return nsSpec{}, fmt.Errorf("unknown namespace option %q", key)
		}
		if err != nil {
			return nsSpec{}, fmt.Errorf("namespace option %s: %v", key, err)
		}
	}
	if spec.shards <= 0 || spec.sets <= 0 || spec.ways <= 0 {
		return nsSpec{}, fmt.Errorf("namespace %s: shards, sets and ways must be positive", name)
	}
	if spec.ttl < 0 || spec.loadDelay < 0 {
		return nsSpec{}, fmt.Errorf("namespace %s: ttl and loaddelay must be >= 0", name)
	}
	return spec, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "TCP address to serve the cache protocol on (port 0 picks a free port)")
	var nss nsFlag
	flag.Var(&nss, "ns", "namespace spec, repeatable: "+specKeys[0]+" (default: one \"bench\" namespace)")
	maxConns := flag.Int("maxconns", 0, "max accepted connections (0 = unlimited)")
	maxInflight := flag.Int("maxinflight", 0, "max concurrent backend loads across all connections (0 = default)")
	queueDeadline := flag.Duration("queue.deadline", 5*time.Millisecond, "max wait for a load slot before shedding the request (0 = shed immediately when full)")
	drainTimeout := flag.Duration("drain.timeout", 10*time.Second, "graceful-drain budget after SIGINT/SIGTERM before dropping connections")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file at shutdown")
	obsListen := flag.String("obs.listen", "", "serve /metrics, pprof, /debug/engine/<ns>, /debug/timeseries and /debug/alerts on this address")
	tsStep := flag.Duration("ts.step", time.Second, "live time-series bucket width (finest ring)")
	node := flag.String("node", "", "node name stamped on emitted server spans (default: the -listen address)")
	spanJSONL := flag.String("span.jsonl", "", "write server-side spans of trace-propagated requests as JSONL to this file")
	flag.Parse()

	if *maxConns < 0 {
		cli.BadFlag("cacheserved", "-maxconns", fmt.Sprint(*maxConns), []string{"a connection limit >= 0 (0 = unlimited)"})
	}
	if *maxInflight < 0 {
		cli.BadFlag("cacheserved", "-maxinflight", fmt.Sprint(*maxInflight), []string{"a load limit >= 0 (0 = default)"})
	}
	if *queueDeadline < 0 {
		cli.BadFlag("cacheserved", "-queue.deadline", fmt.Sprint(*queueDeadline), []string{"a wait budget >= 0"})
	}
	if *drainTimeout <= 0 {
		cli.BadFlag("cacheserved", "-drain.timeout", fmt.Sprint(*drainTimeout), []string{"a drain budget > 0"})
	}
	if len(nss.specs) == 0 {
		nss.specs = []nsSpec{defaultSpec("bench")}
	}
	seen := map[string]bool{}
	for _, spec := range nss.specs {
		if seen[spec.name] {
			cli.BadFlag("cacheserved", "-ns", spec.name, []string{"unique namespace names"})
		}
		seen[spec.name] = true
	}

	reg := obs.NewRegistry()

	// The server-side request tracer: it names this node in PING trace
	// negotiation (its clock is the offset reference) and, for requests that
	// arrive with a propagated trace context, emits the server half of the
	// span under the client's span id. Local sampling stays off — the client
	// owns the sampling decision on a serving tier.
	var spanFile *os.File
	var spanBW *bufio.Writer
	var jsonlSink *span.LineSink
	if *spanJSONL != "" {
		f, err := os.Create(*spanJSONL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cacheserved:", err)
			os.Exit(1)
		}
		spanFile = f
		spanBW = bufio.NewWriterSize(f, 1<<20)
		jsonlSink = span.NewLineSink(spanBW)
	}
	nodeName := *node
	if nodeName == "" {
		nodeName = *listen
	}
	tracer := reqspan.New(reqspan.Config{Node: nodeName}, jsonlSink, nil)

	var namespaces []*server.Namespace
	for _, spec := range nss.specs {
		factory, _ := replacement.ByName(spec.policy) // validated in parseSpec
		eng := engine.New(engine.Config{
			Shards:    spec.shards,
			Sets:      spec.sets,
			Ways:      spec.ways,
			Policy:    factory,
			Registry:  reg,
			Shadow:    true,
			Namespace: spec.name,
			Tracer:    tracer,
		})
		namespaces = append(namespaces, &server.Namespace{
			Name:    spec.name,
			Engine:  eng,
			Backend: server.EchoBackend(spec.loadDelay),
			TTL:     spec.ttl,
		})
	}

	// Flag semantics: 0 = shed immediately when no load slot is free,
	// which the server Config spells as a negative deadline (its zero
	// value means wait forever).
	qd := *queueDeadline
	if qd == 0 {
		qd = -1
	}
	srv, err := server.New(server.Config{
		Addr:          *listen,
		Namespaces:    namespaces,
		Registry:      reg,
		MaxConns:      *maxConns,
		MaxInflight:   *maxInflight,
		QueueDeadline: qd,
		Name:          nodeName,
		Tracer:        tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cacheserved:", err)
		os.Exit(1)
	}
	if err := srv.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "cacheserved:", err)
		os.Exit(1)
	}
	// CI and wrapper scripts parse this line for the bound port.
	fmt.Printf("cacheserved: listening on %s\n", srv.Addr())

	if *obsListen != "" {
		store := tsdb.New(tsdb.Config{Registry: reg, Resolutions: tsdb.Resolutions(*tsStep)})
		stopSampler := store.Start()
		defer stopSampler()
		alertEng := alert.New(store, alert.DefaultRules(alert.Defaults{
			HitRateObjective: 0.9, BurnFactor: 2,
			Short: 5 * time.Second, Long: 30 * time.Second,
			P99: 250 * time.Millisecond,
		}))
		done := make(chan struct{})
		defer close(done)
		go func() {
			t := time.NewTicker(*tsStep)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case now := <-t.C:
					alertEng.Eval(now)
				}
			}
		}()

		mux := obs.NewMux(reg)
		for i, ns := range namespaces {
			mux.Handle("/debug/engine/"+ns.Name, fmt.Sprintf("live shard analytics for namespace %q", ns.Name),
				engine.DebugHandler(ns.Engine, nil, engine.DefaultHotShareFactor))
			if i == 0 {
				// The bare path serves the first namespace so cachetop's
				// default layout works against a single-tenant server.
				mux.Handle("/debug/engine", fmt.Sprintf("live shard analytics (namespace %q)", ns.Name),
					engine.DebugHandler(ns.Engine, nil, engine.DefaultHotShareFactor))
			}
		}
		mux.Handle("/debug/timeseries", "windowed rates, ratios and latency quantiles, including the serving-tier signals",
			tsdb.Handler(store))
		mux.Handle("/debug/alerts", "alert rule states, including server-shed-rate",
			alert.Handler(alertEng, store.LastTime))
		osrv, err := obs.ServeHandler(*obsListen, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cacheserved:", err)
			os.Exit(1)
		}
		defer osrv.Close()
		fmt.Printf("observability: http://%s (metrics, pprof, debug/engine/<ns>, debug/timeseries, debug/alerts)\n", osrv.Addr())
	}

	<-cli.Drain()
	fmt.Fprintln(os.Stderr, "cacheserved: draining")
	clean := srv.Drain(*drainTimeout)

	if spanFile != nil {
		err := spanBW.Flush()
		if err == nil {
			err = spanFile.Close()
		}
		if err == nil {
			err = tracer.Err()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cacheserved: span sink:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote server spans to %s\n", *spanJSONL)
	}

	if *manifestPath != "" {
		if err := writeManifest(*manifestPath, srv, nss.specs, reg, clean, nodeName, *spanJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "cacheserved:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote manifest to %s\n", *manifestPath)
	}
	if !clean {
		fmt.Fprintln(os.Stderr, "cacheserved: drain timed out; connections dropped")
		os.Exit(cli.ExitInterrupted)
	}
}

// writeManifest records each namespace's engine counters (the fields CI
// reconciles against cachebench -remote manifests) plus the serving-tier
// counters and the full registry snapshot.
func writeManifest(path string, srv *server.Server, specs []nsSpec, reg *obs.Registry, clean bool, node, spanJSONL string) error {
	m := manifest.New("cacheserved")
	if !clean {
		m.MarkInterrupted()
	}
	m.SetConfig("node", node)
	if spanJSONL != "" {
		m.SetArtifact("request_spans", spanJSONL)
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.name)
	}
	m.SetConfig("namespaces", strings.Join(names, ","))
	for _, spec := range specs {
		ns := srv.Lookup(spec.name)
		st := ns.Engine.Stats()
		m.SetConfig(fmt.Sprintf("policy{ns=%q}", spec.name), spec.policy)
		m.SetMetric(fmt.Sprintf("engine_hits{ns=%q}", spec.name), float64(st.Hits))
		m.SetMetric(fmt.Sprintf("engine_misses{ns=%q}", spec.name), float64(st.Misses))
		m.SetMetric(fmt.Sprintf("engine_coalesced{ns=%q}", spec.name), float64(st.Coalesced))
		m.SetMetric(fmt.Sprintf("engine_evictions{ns=%q}", spec.name), float64(st.Evictions))
		m.SetMetric(fmt.Sprintf("engine_cost_paid{ns=%q}", spec.name), float64(st.CostPaid))
	}
	snap := reg.Snapshot()
	for _, name := range []string{"server_conns_accepted", "server_frames_in", "server_frames_out", "server_shed"} {
		m.SetMetric(name, float64(snap.Counters[name]))
	}
	m.AddSnapshot(snap)
	return m.WriteFile(path)
}
