package cost

import (
	"math"
	"testing"
	"testing/quick"

	"costcache/internal/replacement"
)

func TestUniform(t *testing.T) {
	u := Uniform(7)
	for b := uint64(0); b < 100; b++ {
		if u.MissCost(b) != 7 {
			t.Fatalf("Uniform(7).MissCost(%d) != 7", b)
		}
	}
}

func TestFunc(t *testing.T) {
	f := Func(func(b uint64) replacement.Cost { return replacement.Cost(b * 2) })
	if f.MissCost(21) != 42 {
		t.Fatal("Func adapter broken")
	}
}

func TestRandomExtremes(t *testing.T) {
	r := Random{Low: 1, High: 8, Fraction: 0, Seed: 1}
	if r.MissCost(5) != 1 {
		t.Fatal("Fraction 0 must always be Low")
	}
	r.Fraction = 1
	if r.MissCost(5) != 8 {
		t.Fatal("Fraction 1 must always be High")
	}
}

func TestRandomFractionConverges(t *testing.T) {
	for _, frac := range []float64{0.05, 0.1, 0.3, 0.7} {
		r := Random{Low: 1, High: 16, Fraction: frac, Seed: 42}
		high := 0
		const n = 200000
		for b := uint64(0); b < n; b++ {
			if r.IsHigh(b) {
				high++
			}
		}
		got := float64(high) / n
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("fraction %.2f: measured %.4f", frac, got)
		}
	}
}

func TestRandomDeterministicAndSeedSensitive(t *testing.T) {
	a := Random{Low: 1, High: 2, Fraction: 0.5, Seed: 1}
	b := Random{Low: 1, High: 2, Fraction: 0.5, Seed: 2}
	sameAsA, sameAsB := 0, 0
	for blk := uint64(0); blk < 1000; blk++ {
		if a.MissCost(blk) == a.MissCost(blk) {
			sameAsA++
		}
		if a.MissCost(blk) == b.MissCost(blk) {
			sameAsB++
		}
	}
	if sameAsA != 1000 {
		t.Fatal("Random must be deterministic per block")
	}
	if sameAsB > 950 {
		t.Fatalf("different seeds produced nearly identical mappings (%d/1000)", sameAsB)
	}
}

func TestRandomInfiniteRatio(t *testing.T) {
	r := Random{Low: 0, High: 1, Fraction: 0.5, Seed: 3}
	sawZero, sawOne := false, false
	for b := uint64(0); b < 1000; b++ {
		switch r.MissCost(b) {
		case 0:
			sawZero = true
		case 1:
			sawOne = true
		default:
			t.Fatalf("unexpected cost %d", r.MissCost(b))
		}
	}
	if !sawZero || !sawOne {
		t.Fatal("infinite-ratio mapping should produce both costs")
	}
}

func TestFirstTouch(t *testing.T) {
	home := func(block uint64) int16 { return int16(block % 4) }
	f := FirstTouch{Home: home, Proc: 2, Low: 1, High: 10}
	if f.MissCost(2) != 1 || f.MissCost(6) != 1 {
		t.Fatal("locally homed blocks must be Low")
	}
	if f.MissCost(3) != 10 || f.MissCost(0) != 10 {
		t.Fatal("remote blocks must be High")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Costs: map[uint64]replacement.Cost{7: 70}, Default: 3}
	if tb.MissCost(7) != 70 || tb.MissCost(8) != 3 {
		t.Fatal("Table lookup broken")
	}
}

func TestLastLatency(t *testing.T) {
	p := NewLastLatency(5)
	if p.MissCost(1) != 5 {
		t.Fatal("unseen block must get default")
	}
	p.Observe(1, 120)
	if p.MissCost(1) != 120 {
		t.Fatal("Observe must update the prediction")
	}
	p.Observe(1, 480)
	if p.MissCost(1) != 480 {
		t.Fatal("latest observation must win")
	}
	p.Forget(1)
	if p.MissCost(1) != 5 {
		t.Fatal("Forget must restore default")
	}
}

func TestCostsNeverNegativeQuick(t *testing.T) {
	f := func(block uint64, seed uint64, frac float64) bool {
		fr := math.Mod(math.Abs(frac), 1)
		r := Random{Low: 1, High: 32, Fraction: fr, Seed: seed}
		return r.MissCost(block) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
