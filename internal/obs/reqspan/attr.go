package reqspan

import (
	"fmt"
	"io"
	"strings"

	"costcache/internal/obs"
)

// StageAttr is one stage's aggregate contribution across sampled spans.
type StageAttr struct {
	// Stage is the stage's schema name.
	Stage string `json:"stage"`
	// Count is the number of segments observed for this stage (a request
	// can contribute more than one, e.g. a leader's two lock waits).
	Count int64 `json:"count"`
	// Ns is the total nanoseconds spent in this stage across sampled spans.
	Ns int64 `json:"ns"`
}

// Attribution is a point-in-time copy of the tracer's aggregates: where
// sampled requests spent their time, stage by stage. The accounting
// invariant — stages are contiguous segments tiling each span — means
// Σ Stages[i].Ns + OtherNs == TotalNs exactly, which is what cachebench
// -attr and the CI reconciliation smoke check.
type Attribution struct {
	// Spans is the number of sampled spans aggregated.
	Spans int64 `json:"spans"`
	// AttrEvery is the sampling stride (1 in AttrEvery requests sampled).
	AttrEvery uint64 `json:"attr_every"`
	// Outcomes counts sampled spans per outcome, indexed like Outcome.
	Outcomes [NumOutcomes]int64 `json:"outcomes"`
	// TotalNs is the summed end-to-end latency of sampled spans.
	TotalNs int64 `json:"total_ns"`
	// OtherNs is the unattributed remainder: time between a span's last
	// stage boundary and its Finish (a few ns of bookkeeping per span).
	OtherNs int64 `json:"other_ns"`
	// CostPaid is the summed fill-cost charge of sampled spans. At stride 1
	// it equals the engine's cost_paid counter exactly (every charge lands
	// in a span), a cross-check cachebench enforces after each run.
	CostPaid int64 `json:"cost_paid"`
	// Stages is each stage's aggregate, indexed like Stage.
	Stages [NumStages]StageAttr `json:"stages"`
	// Latency is the sampled end-to-end latency histogram with per-bucket
	// span-ID exemplars.
	Latency obs.HistogramSnapshot `json:"latency"`
}

// Attribution snapshots the tracer's aggregates. Under concurrent traffic
// the atomics are read individually, so the tiling identity holds to within
// the handful of spans in flight during the snapshot; quiesced (as in
// cachebench's end-of-run table) it is exact.
func (t *Tracer) Attribution() Attribution {
	if t == nil {
		return Attribution{}
	}
	a := Attribution{
		Spans:     t.spans.Load(),
		AttrEvery: t.attrEvery,
		TotalNs:   t.totalNs.Load(),
		OtherNs:   t.otherNs.Load(),
		CostPaid:  t.costPaid.Load(),
		Latency:   t.hist.Snapshot(),
	}
	for i := range a.Outcomes {
		a.Outcomes[i] = t.outcomes[i].Load()
	}
	for i := range a.Stages {
		a.Stages[i] = StageAttr{
			Stage: Stage(i).String(),
			Count: t.stageCount[i].Load(),
			Ns:    t.stageNs[i].Load(),
		}
	}
	return a
}

// StageSumNs returns the summed attributed nanoseconds across all stages.
func (a Attribution) StageSumNs() int64 {
	var sum int64
	for _, s := range a.Stages {
		sum += s.Ns
	}
	return sum
}

// WriteTable renders the stage-attribution table cachebench -attr prints:
// the sampled latency percentiles, then each stage's share of total sampled
// time, per-occurrence mean, and occurrence count. Shares are of TotalNs,
// so the share column plus "other" sums to 100%.
func (a Attribution) WriteTable(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "%s: %d sampled spans (1 in %d)", title, a.Spans, a.AttrEvery); err != nil {
		return err
	}
	var outs []string
	for i, n := range a.Outcomes {
		if n > 0 {
			outs = append(outs, fmt.Sprintf("%s %d", Outcome(i), n))
		}
	}
	if len(outs) > 0 {
		if _, err := fmt.Fprintf(w, " — %s", strings.Join(outs, ", ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n  latency p50 %s  p95 %s  p99 %s  mean %s\n",
		fmtNs(a.Latency.Quantile(0.50)), fmtNs(a.Latency.Quantile(0.95)),
		fmtNs(a.Latency.Quantile(0.99)), fmtNs(int64(a.Latency.Mean()))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-10s %8s %10s %10s %8s\n",
		"stage", "share", "total", "mean", "count"); err != nil {
		return err
	}
	row := func(name string, ns, count int64) error {
		share := 0.0
		if a.TotalNs > 0 {
			share = 100 * float64(ns) / float64(a.TotalNs)
		}
		mean := "-"
		if count > 0 {
			mean = fmtNs(ns / count)
		}
		_, err := fmt.Fprintf(w, "  %-10s %7.2f%% %10s %10s %8d\n",
			name, share, fmtNs(ns), mean, count)
		return err
	}
	for _, s := range a.Stages {
		if err := row(s.Stage, s.Ns, s.Count); err != nil {
			return err
		}
	}
	if err := row("other", a.OtherNs, a.Spans); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  %-10s %7.2f%% %10s %10s %8d\n",
		"total", 100.0, fmtNs(a.TotalNs), fmtNs(safeDiv(a.TotalNs, a.Spans)), a.Spans)
	return err
}

func safeDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// fmtNs renders a nanosecond quantity with a human unit (ns/µs/ms/s).
func fmtNs(ns int64) string {
	switch {
	case ns < 10_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 10_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 10_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
