package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The binary trace format:
//
//	magic "CSTR" | version u8 | numProcs uvarint | name len+bytes | refCount uvarint
//	then per ref: proc uvarint | op u8 | addr delta zig-zag varint (per-proc last addr)
//
// Delta encoding per processor keeps sequential sweeps compact.

const (
	binMagic   = "CSTR"
	binVersion = 1
)

var errBadMagic = errors.New("trace: bad magic (not a costcache binary trace)")

// WriteBinary encodes the trace in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(t.NumProcs)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Refs))); err != nil {
		return err
	}
	last := make(map[int16]uint64)
	for _, r := range t.Refs {
		if err := putUvarint(uint64(r.Proc)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		if err := putVarint(int64(r.Addr) - int64(last[r.Proc])); err != nil {
			return err
		}
		last[r.Proc] = r.Addr
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binMagic {
		return nil, errBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	numProcs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	t := &Trace{NumProcs: int(numProcs), Name: string(name)}
	// The count is untrusted input: cap the preallocation so a forged
	// header cannot force a huge allocation (found by FuzzReadBinary).
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t.Refs = make([]Ref, 0, prealloc)
	last := make(map[int16]uint64)
	for i := uint64(0); i < count; i++ {
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: ref %d: %w", i, err)
		}
		op, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: ref %d: %w", i, err)
		}
		if Op(op) != Read && Op(op) != Write {
			return nil, fmt.Errorf("trace: ref %d: bad op %d", i, op)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: ref %d: %w", i, err)
		}
		addr := uint64(int64(last[int16(proc)]) + delta)
		last[int16(proc)] = addr
		t.Refs = append(t.Refs, Ref{Addr: addr, Proc: int16(proc), Op: Op(op)})
	}
	return t, nil
}

// WriteText encodes the trace as one reference per line: "<proc> <R|W> 0x<addr>".
// A header line carries the processor count and name.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# costcache trace procs=%d name=%s\n", t.NumProcs, t.Name); err != nil {
		return err
	}
	for _, r := range t.Refs {
		if _, err := fmt.Fprintf(bw, "%d %s 0x%x\n", r.Proc, r.Op, r.Addr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes a trace written by WriteText. Lines starting with '#' other
// than the header are ignored, so traces can be annotated by hand.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.Contains(line, "costcache trace") {
				for _, f := range strings.Fields(line) {
					if v, ok := strings.CutPrefix(f, "procs="); ok {
						n, err := strconv.Atoi(v)
						if err != nil {
							return nil, fmt.Errorf("trace: line %d: bad procs: %w", lineNo, err)
						}
						t.NumProcs = n
					}
					if v, ok := strings.CutPrefix(f, "name="); ok {
						t.Name = v
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		proc, err := strconv.ParseInt(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad proc: %w", lineNo, err)
		}
		var op Op
		switch fields[1] {
		case "R", "r":
			op = Read
		case "W", "w":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr: %w", lineNo, err)
		}
		t.Refs = append(t.Refs, Ref{Addr: addr, Proc: int16(proc), Op: op})
		if int(proc) >= t.NumProcs {
			t.NumProcs = int(proc) + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
