package workload

import (
	"fmt"

	"costcache/internal/trace"
)

// LU models the SPLASH-2 blocked dense LU factorization: an N×N matrix of
// float64 split into B×B element blocks, with block columns assigned to
// processors cyclically (owner-computes). Each step k factorizes the
// diagonal block, updates the perimeter panels, then updates the trailing
// submatrix; every phase ends at a barrier.
//
// The access pattern is highly regular with strong spatial locality, and
// under first-touch placement the remote accesses are concentrated on the
// pivot column panels (Table 1 reports a 19.1% remote fraction). The paper
// singles LU out for its extreme set-to-set behaviour variation, which makes
// BCL/DCL lose money under first-touch costs and motivates ACL.
type LU struct {
	// N is the matrix dimension in elements; B the block dimension. N must
	// be a multiple of B.
	N, B int
	// Procs is the processor count (the paper uses 8).
	Procs int
	// Seed controls trace interleaving.
	Seed int64
}

// DefaultLU returns the configuration used by the experiment drivers:
// a 320x320 matrix in 32x32 blocks on 8 processors (scaled from the paper's
// 512x512 to keep full parameter sweeps fast; the trace-level properties are
// size-independent at the simulated cache sizes).
func DefaultLU() LU { return LU{N: 320, B: 32, Procs: 8, Seed: 1} }

// Name implements Generator.
func (LU) Name() string { return "LU" }

// elem returns the byte address of matrix element (i,j), row-major float64.
func (l LU) elem(i, j int) uint64 {
	return regionMatrix + uint64(i*l.N+j)*8
}

// owner maps a block column to its processor (column-cyclic distribution).
func (l LU) owner(jb int) int { return jb % l.Procs }

// Generate implements Generator.
func (l LU) Generate() *trace.Trace { return l.emit().build(l.Name()) }

func (l LU) emit() *builder {
	if l.N%l.B != 0 {
		panic(fmt.Sprintf("workload: LU N=%d not a multiple of B=%d", l.N, l.B))
	}
	nb := l.N / l.B
	b := newBuilder(l.Procs, l.Seed)

	// Initialization: each owner writes its block columns, touching every
	// 64-byte block of the column exactly once so first-touch homes are
	// precisely the column owners.
	for jb := 0; jb < nb; jb++ {
		p := l.owner(jb)
		for i := 0; i < l.N; i++ {
			for j := jb * l.B; j < (jb+1)*l.B; j += 8 {
				b.write(p, l.elem(i, j))
			}
		}
	}
	b.barrier()

	for k := 0; k < nb; k++ {
		diagOwner := l.owner(k)
		// Factorize the diagonal block: two read+write passes.
		for pass := 0; pass < 2; pass++ {
			for i := k * l.B; i < (k+1)*l.B; i++ {
				for j := k * l.B; j < (k+1)*l.B; j += 4 {
					b.read(diagOwner, l.elem(i, j))
					b.write(diagOwner, l.elem(i, j))
				}
			}
		}
		b.barrier()

		// Perimeter: column panel (ib,k) by the column owner; row panel
		// (k,jb) by each jb owner, reading the (remote) diagonal block.
		for ib := k + 1; ib < nb; ib++ {
			p := l.owner(k)
			for i := ib * l.B; i < (ib+1)*l.B; i++ {
				for j := k * l.B; j < (k+1)*l.B; j += 4 {
					b.read(p, l.elem(k*l.B+(i%l.B), j)) // diag element
					b.read(p, l.elem(i, j))
					b.write(p, l.elem(i, j))
				}
			}
		}
		for jb := k + 1; jb < nb; jb++ {
			p := l.owner(jb)
			for i := k * l.B; i < (k+1)*l.B; i++ {
				for j := jb * l.B; j < (jb+1)*l.B; j += 4 {
					b.read(p, l.elem(i, k*l.B+(j%l.B))) // diag element (remote unless p owns k)
					b.read(p, l.elem(i, j))
					b.write(p, l.elem(i, j))
				}
			}
		}
		b.barrier()

		// Interior update: block (ib,jb) -= panel(ib,k) * panel(k,jb),
		// owned by the jb column owner. Per element: one read of the
		// (usually remote) column panel, one read of the local row panel,
		// one read and one write of the local target element.
		for jb := k + 1; jb < nb; jb++ {
			p := l.owner(jb)
			for ib := k + 1; ib < nb; ib++ {
				for i := ib * l.B; i < (ib+1)*l.B; i++ {
					for j := jb * l.B; j < (jb+1)*l.B; j += 4 {
						b.read(p, l.elem(i, k*l.B+(j%l.B))) // column panel (owner k)
						b.read(p, l.elem(k*l.B+(i%l.B), j)) // row panel (local)
						b.read(p, l.elem(i, j))
						b.write(p, l.elem(i, j))
					}
				}
			}
		}
		b.barrier()
	}
	return b
}
