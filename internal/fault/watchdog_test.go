package fault

import (
	"strings"
	"testing"
)

func TestWatchdogFiresOnLivelock(t *testing.T) {
	var got *Diagnostic
	w := &Watchdog{
		Limit:   10,
		OnStall: func(d Diagnostic) { got = &d },
		Dump:    func() string { return "retry storm on link 3" },
	}
	// Simulated time frozen at 500 and no events: the 11th tick at the same
	// time is the Limit-th consecutive stuck tick.
	for i := 0; i < 11; i++ {
		w.Tick(500)
	}
	if got == nil {
		t.Fatal("watchdog never fired")
	}
	if got.SimNs != 500 || got.StuckTicks < 10 {
		t.Fatalf("diagnostic = %+v", got)
	}
	if !strings.Contains(got.Error(), "retry storm on link 3") {
		t.Fatalf("diagnostic %q is missing the Dump detail", got.Error())
	}
	// Once fired, it does not fire again for the same stall.
	fired := *got
	for i := 0; i < 5; i++ {
		w.Tick(500)
	}
	if *got != fired {
		t.Fatal("watchdog fired twice for one stall")
	}
}

func TestWatchdogProgressResets(t *testing.T) {
	w := &Watchdog{Limit: 5, OnStall: func(d Diagnostic) { t.Fatalf("fired: %+v", d) }}
	// Advancing simulated time is progress.
	for i := int64(0); i < 100; i++ {
		w.Tick(i)
	}
	// Frozen time with advancing events is also progress.
	for i := 0; i < 100; i++ {
		w.Event()
		w.Tick(100)
	}
	// Almost stall, then progress: the counter must reset.
	for i := 0; i < 4; i++ {
		w.Tick(100)
	}
	w.Event()
	for i := 0; i < 4; i++ {
		w.Tick(100)
	}
}

func TestWatchdogPanicsByDefault(t *testing.T) {
	w := &Watchdog{Limit: 3}
	defer func() {
		if _, ok := recover().(Diagnostic); !ok {
			t.Fatal("want a Diagnostic panic")
		}
	}()
	for i := 0; i < 10; i++ {
		w.Tick(7)
	}
	t.Fatal("watchdog never fired")
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	w.Event()
	w.Tick(42)
}
