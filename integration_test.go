package costcache_test

import (
	"bytes"
	"testing"

	"costcache/internal/costsim"
	"costcache/internal/numasim"
	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// Integration tests that cross module boundaries: real (scaled) workloads
// through the full simulators, checked against the paper's structural
// claims and against the offline oracles.

func scaledGens() []workload.Generator {
	b := workload.DefaultBarnes()
	b.Bodies, b.Iterations = 2048, 2
	l := workload.LU{N: 256, B: 16, Procs: 8, Seed: 1}
	o := workload.DefaultOcean()
	o.Iterations = 2
	r := workload.DefaultRaytrace()
	r.RaysPerProc = 1500
	return []workload.Generator{b, l, o, r}
}

// At HAF 0 and HAF 1 the cost mapping is uniform, so every algorithm must
// produce exactly LRU's aggregate cost on every real benchmark.
func TestIntegrationFigure3Extremes(t *testing.T) {
	for _, g := range scaledGens() {
		view := g.Generate().SampleView(0)
		pts := costsim.RandomSweep(view, costsim.Default(),
			[]costsim.Ratio{{Low: 1, High: 8, Label: "r=8"}},
			[]float64{0, 1}, costsim.PaperPolicies(), 42)
		for _, pt := range pts {
			for name, s := range pt.Savings {
				if s != 0 {
					t.Errorf("%s %s HAF=%v: savings %.4f, want exactly 0",
						g.Name(), name, pt.TargetHAF, s)
				}
			}
		}
	}
}

// ACL's reliability claim, on the real benchmarks under first-touch costs:
// never materially worse than LRU (the paper: "its cost is never worse than
// LRU's").
func TestIntegrationACLReliability(t *testing.T) {
	aclOnly := []replacement.Factory{func() replacement.Policy { return replacement.NewACL() }}
	for _, g := range scaledGens() {
		tr := g.Generate()
		view := tr.SampleView(0)
		home := workload.HomeFunc(workload.FirstTouchHomes(tr, 64), 0)
		pts := costsim.FirstTouchSweep(view, costsim.Default(), home, 0,
			costsim.Table2Ratios(), aclOnly)
		for _, pt := range pts {
			if pt.Savings["ACL"] < -0.01 {
				t.Errorf("%s %s: ACL savings %.4f below -1%%",
					g.Name(), pt.Ratio.Label, pt.Savings["ACL"])
			}
		}
	}
}

// Per-set slices of a real benchmark trace, replayed against the offline
// CSOPT oracle: no online policy may beat the optimum, and the
// cost-sensitive policies should usually land between LRU and optimal.
func TestIntegrationPoliciesBoundedByCSOPT(t *testing.T) {
	g := scaledGens()[3] // Raytrace
	tr := g.Generate()
	view := tr.SampleView(0)
	src := costsim.CalibratedRandom(view, 64, 0.25, costsim.Ratio{Low: 1, High: 8}, 7)
	costOf := func(b uint64) replacement.Cost { return src.MissCost(b) }

	const ways = 4
	for set := 0; set < 4; set++ {
		var events []replacement.OptEvent
		distinct := map[uint64]bool{}
		for _, r := range view {
			b := r.Addr / 64
			if int(b%64) != set {
				continue
			}
			distinct[b] = true
			if len(distinct) > 56 { // keep the oracle's bitmask small
				break
			}
			events = append(events, replacement.OptEvent{Block: b, Invalidate: r.Remote})
			if len(events) == 250 {
				break
			}
		}
		if len(events) < 50 {
			t.Fatalf("set %d: only %d events", set, len(events))
		}
		opt := replacement.OptimalAggregateCost(events, ways, costOf, false)
		lru := replacement.AggregateCostOf(replacement.NewLRU(), events, ways, costOf)
		if lru < opt {
			t.Fatalf("set %d: LRU %d beat CSOPT %d", set, lru, opt)
		}
		for _, f := range []replacement.Factory{
			func() replacement.Policy { return replacement.NewGD() },
			func() replacement.Policy { return replacement.NewBCL() },
			func() replacement.Policy { return replacement.NewDCL() },
			func() replacement.Policy { return replacement.NewACL() },
		} {
			p := f()
			got := replacement.AggregateCostOf(p, events, ways, costOf)
			if got < opt {
				t.Errorf("set %d: %s cost %d beat the offline optimum %d",
					set, p.Name(), got, opt)
			}
		}
	}
}

// The miss-count oracle bounds the trace-driven simulator per set too.
func TestIntegrationBeladyBoundsLRUPerSet(t *testing.T) {
	view := scaledGens()[0].Generate().SampleView(0)
	for set := 0; set < 8; set++ {
		var events []replacement.OptEvent
		for _, r := range view {
			b := r.Addr / 64
			if int(b%64) != set {
				continue
			}
			events = append(events, replacement.OptEvent{Block: b, Invalidate: r.Remote})
		}
		opt := replacement.OptimalMisses(events, 4)
		lru := replacement.LRUMisses(events, 4)
		if opt > lru {
			t.Fatalf("set %d: OPT %d > LRU %d", set, opt, lru)
		}
	}
}

// The whole Section 4 pipeline is deterministic end to end.
func TestIntegrationNUMADeterminism(t *testing.T) {
	g := workload.Barnes{Bodies: 1024, TreeNodes: 96, WalkNodes: 8, Iterations: 1, Procs: 8, Seed: 2}
	prog, _ := workload.ProgramOf(g)
	run := func() numasim.Result {
		return numasim.Run(prog, numasim.DefaultConfig(
			func() replacement.Policy { return replacement.NewACL() }))
	}
	a, b := run(), run()
	if a.ExecNs != b.ExecNs || a.AggMissNs != b.AggMissNs || a.Protocol != b.Protocol {
		t.Fatal("execution-driven pipeline is nondeterministic")
	}
}

// Trace round trip through the binary codec feeds the simulator unchanged.
func TestIntegrationCodecPreservesSimulation(t *testing.T) {
	g := workload.Synthetic{Blocks: 256, RefsPerProc: 20000, WriteFrac: 0.3,
		SharedFrac: 0.8, ZipfS: 1.2, Procs: 4, Seed: 3}
	tr := g.Generate()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	src := costsim.CalibratedRandom(tr.SampleView(0), 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 1)
	a := costsim.Run(tr.SampleView(0), costsim.Default(), replacement.NewDCL(), src)
	b := costsim.Run(tr2.SampleView(0), costsim.Default(), replacement.NewDCL(), src)
	if a.L2 != b.L2 {
		t.Fatal("codec round trip changed simulation results")
	}
}
