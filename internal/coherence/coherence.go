// Package coherence implements the directory-based MESI protocol of the
// paper's CC-NUMA target (Table 4), with and without replacement hints.
//
// Transactions execute atomically at issue: the directory state is updated
// immediately and the latency of the full message exchange is composed from
// the mesh model's (contended) message times, memory-bank occupancy and
// directory occupancy. This "atomic-at-issue" simplification eliminates
// transient protocol states while preserving what the replacement study
// needs — the latency distribution, its dependence on the block's global
// state, invalidation traffic, and the effect of replacement hints on
// directory precision (stale owners force forward-nack-memory fallbacks,
// changing latencies between consecutive misses, which is exactly what
// Table 3 measures).
package coherence

import (
	"costcache/internal/fault"
	"costcache/internal/mesh"
	"costcache/internal/obs"
	"costcache/internal/obs/span"
)

// State is the block state recorded at the home directory, using the
// paper's Table 3 terminology.
type State uint8

// Directory states.
const (
	// Uncached: no cache holds the block.
	Uncached State = iota
	// Shared: one or more caches hold read-only copies.
	Shared
	// Exclusive: one cache owns the block (clean or dirty).
	Exclusive
)

// String returns U, S or E.
func (s State) String() string { return [...]string{"U", "S", "E"}[s] }

// Params are the node-local timing constants in nanoseconds (Table 4).
type Params struct {
	// MemAccess is the DRAM access time (60 ns).
	MemAccess int64
	// MemBanks is the interleaving factor (4).
	MemBanks int
	// DirAccess is the directory lookup/update occupancy.
	DirAccess int64
	// OwnerLookup is the time a forwarded request spends in the owner's L2.
	OwnerLookup int64
	// InvalAck is the sharer-side processing of an invalidation.
	InvalAck int64
	// Hints enables replacement hints: clean evictions notify the home so
	// the directory stays precise.
	Hints bool
}

// DefaultParams returns the calibrated Table 4 constants with hints on.
func DefaultParams() Params {
	return Params{MemAccess: 60, MemBanks: 4, DirAccess: 20, OwnerLookup: 12, InvalAck: 6, Hints: true}
}

type entry struct {
	state      State
	owner      int
	ownerDirty bool
	sharers    uint64
}

// Machine is the directory protocol engine over a mesh.
type Machine struct {
	p    Params
	net  *mesh.Mesh
	home func(block uint64) int
	dir  map[uint64]*entry

	bankFree [][]int64 // per node, per bank
	dirFree  []int64   // per node

	// HasBlock reports whether node still caches block; without hints the
	// directory can be stale and must ask (modelling the forward that gets
	// nacked). If nil, the directory is assumed precise.
	HasBlock func(node int, block uint64) bool
	// Invalidate removes block from node's caches at the given time.
	Invalidate func(node int, block uint64, at int64)
	// Downgrade marks node's copy of block clean (it lost exclusivity).
	Downgrade func(node int, block uint64, at int64)

	stats Stats
	met   *Metrics
	sp    *span.Span
	flt   *fault.Injector
}

// SetFaults attaches a fault injector: hot-directory windows add occupancy
// to every directory reservation and hot-bank windows to every memory-bank
// reservation. Pass nil to detach; the un-faulted path pays one nil check,
// and an empty plan injects nothing.
func (m *Machine) SetFaults(in *fault.Injector) { m.flt = in }

// SetSpan attaches the active miss-lifecycle span: until cleared with nil,
// Read/Write record their stage segments (request, directory, memory,
// forward, invalidation fan-out, reply) into sp, and the underlying mesh
// records every link hop. The simulator sets the span around exactly one
// transaction at a time; the un-traced path pays nil checks only.
func (m *Machine) SetSpan(sp *span.Span) {
	m.sp = sp
	m.net.SetSpan(sp)
}

// seg records a stage segment on the active span, attributing the link
// queueing accumulated since hopQ0 to it.
func (m *Machine) seg(st span.Stage, start, hopQ0, end int64) {
	if m.sp != nil {
		m.sp.SegQ(st, start, m.sp.HopQueueNs()-hopQ0, end)
	}
}

// hopQ returns the active span's running link-queueing total (0 untraced).
func (m *Machine) hopQ() int64 {
	if m.sp == nil {
		return 0
	}
	return m.sp.HopQueueNs()
}

// Metrics are the protocol's observability instruments (nil when detached).
type Metrics struct {
	// DirWait is the distribution of per-request directory wait (ns);
	// DirWaitNs/MemWaitNs mirror the Stats totals; Invalidations counts
	// invalidation messages.
	DirWait       *obs.Histogram
	DirWaitNs     *obs.Counter
	MemWaitNs     *obs.Counter
	Invalidations *obs.Counter
}

// AttachMetrics registers the protocol instruments in reg under
// coherence_dir_wait_ns (histogram), coherence_dir_wait_total_ns,
// coherence_mem_wait_total_ns and coherence_invalidations. Pass nil to
// detach.
func (m *Machine) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		m.met = nil
		return
	}
	m.met = &Metrics{
		DirWait:       reg.Histogram("coherence_dir_wait_ns", obs.ExpBuckets(5, 2, 8)),
		DirWaitNs:     reg.Counter("coherence_dir_wait_total_ns"),
		MemWaitNs:     reg.Counter("coherence_mem_wait_total_ns"),
		Invalidations: reg.Counter("coherence_invalidations"),
	}
}

// Stats counts protocol events.
type Stats struct {
	Reads, Writes          int64
	Invalidations          int64 // invalidation messages sent
	Forwards, ForwardNacks int64
	Writebacks, Hints      int64
	// DirAccesses counts directory engine reservations; DirWaitNs is the
	// total time requests waited for a busy directory — together the
	// directory-occupancy picture (mean wait = DirWaitNs/DirAccesses).
	DirAccesses, DirWaitNs int64
	// MemWaitNs is the total time requests waited for busy memory banks.
	MemWaitNs int64
}

// New builds a protocol engine for the given mesh and home mapping.
func New(p Params, net *mesh.Mesh, home func(block uint64) int) *Machine {
	n := net.Nodes()
	m := &Machine{p: p, net: net, home: home, dir: make(map[uint64]*entry)}
	m.bankFree = make([][]int64, n)
	for i := range m.bankFree {
		m.bankFree[i] = make([]int64, p.MemBanks)
	}
	m.dirFree = make([]int64, n)
	return m
}

// Stats returns a snapshot of the protocol counters.
func (m *Machine) Stats() Stats { return m.stats }

// StateOf returns the directory state of block (Uncached if never seen).
func (m *Machine) StateOf(block uint64) State {
	if e, ok := m.dir[block]; ok {
		return e.state
	}
	return Uncached
}

// Home returns the home node of block.
func (m *Machine) Home(block uint64) int { return m.home(block) }

// OwnedBy reports whether the directory records node as the exclusive owner
// of block — the condition under which a store can proceed without an
// upgrade transaction.
func (m *Machine) OwnedBy(node int, block uint64) bool {
	e, ok := m.dir[block]
	return ok && e.state == Exclusive && e.owner == node
}

func (m *Machine) entryOf(block uint64) *entry {
	e, ok := m.dir[block]
	if !ok {
		e = &entry{state: Uncached}
		m.dir[block] = e
	}
	return e
}

// dirAccess reserves the home directory engine.
func (m *Machine) dirAccess(node int, t int64) int64 {
	m.stats.DirAccesses++
	arrive := t
	var wait int64
	if m.dirFree[node] > t {
		wait = m.dirFree[node] - t
		m.stats.DirWaitNs += wait
		t = m.dirFree[node]
	}
	if m.met != nil {
		m.met.DirWait.Observe(wait)
		m.met.DirWaitNs.Add(wait)
	}
	occupy := m.p.DirAccess
	if m.flt != nil {
		occupy += m.flt.DirExtra(node, t)
	}
	m.dirFree[node] = t + occupy
	if m.sp != nil {
		m.sp.SegQ(span.StageDirectory, arrive, wait, t+occupy)
	}
	return t + occupy
}

// memAccess reserves the interleaved memory bank for block at node.
func (m *Machine) memAccess(node int, block uint64, t int64) int64 {
	b := int(block) % m.p.MemBanks
	if b < 0 {
		b = -b
	}
	arrive := t
	var wait int64
	if m.bankFree[node][b] > t {
		wait = m.bankFree[node][b] - t
		m.stats.MemWaitNs += wait
		if m.met != nil {
			m.met.MemWaitNs.Add(wait)
		}
		t = m.bankFree[node][b]
	}
	occupy := m.p.MemAccess
	if m.flt != nil {
		occupy += m.flt.BankExtra(node, b, t)
	}
	m.bankFree[node][b] = t + occupy
	if m.sp != nil {
		m.sp.SegQ(span.StageMemory, arrive, wait, t+occupy)
	}
	return t + occupy
}

func (m *Machine) hasBlock(node int, block uint64) bool {
	if m.HasBlock == nil {
		return true
	}
	return m.HasBlock(node, block)
}

// Result describes one completed miss transaction.
type Result struct {
	// Done is the (contention-aware) time the data is available at the
	// requester.
	Done int64
	// Unloaded is the contention-free latency of the same transaction
	// shape, the quantity Table 3 correlates across consecutive misses.
	Unloaded int64
	// StateBefore is the home directory state when the request arrived.
	StateBefore State
	// Local reports that the home was the requesting node; Dirty that a
	// dirty owner copy was involved (a cache-to-cache transfer or owner
	// writeback). Together they select the paper's latency class (local
	// clean 120 ns, remote clean 380 ns, remote dirty ~480 ns).
	Local, Dirty bool
}

// Read performs a read miss (GetS) by node r for block b issued at time now.
func (m *Machine) Read(r int, b uint64, now int64) Result {
	m.stats.Reads++
	h := m.home(b)
	e := m.entryOf(b)
	before := e.state
	dirty := false

	q0 := m.hopQ()
	t := m.net.Send(r, h, mesh.CtrlFlits, now)
	m.seg(span.StageRequest, now, q0, t)
	u := m.net.Unloaded(r, h, mesh.CtrlFlits)
	t = m.dirAccess(h, t)
	u += m.p.DirAccess

	switch e.state {
	case Uncached:
		// MESI grants an exclusive clean copy to the first reader.
		t = m.memAccess(h, b, t)
		u += m.p.MemAccess
		e.state, e.owner, e.ownerDirty, e.sharers = Exclusive, r, false, 1<<uint(r)
		t0, q0 := t, m.hopQ()
		t = m.net.Send(h, r, mesh.DataFlits, t)
		m.seg(span.StageReply, t0, q0, t)
		u += m.net.Unloaded(h, r, mesh.DataFlits)

	case Shared:
		t = m.memAccess(h, b, t)
		u += m.p.MemAccess
		e.sharers |= 1 << uint(r)
		t0, q0 := t, m.hopQ()
		t = m.net.Send(h, r, mesh.DataFlits, t)
		m.seg(span.StageReply, t0, q0, t)
		u += m.net.Unloaded(h, r, mesh.DataFlits)

	case Exclusive:
		o := e.owner
		if o == r || !m.hasBlock(o, b) {
			// Stale directory info (silent clean eviction without hints):
			// the forward comes back empty and memory supplies the data.
			if o != r {
				m.stats.Forwards++
				m.stats.ForwardNacks++
				t0, q0 := t, m.hopQ()
				t = m.net.Send(h, o, mesh.CtrlFlits, t)
				u += m.net.Unloaded(h, o, mesh.CtrlFlits)
				t += m.p.OwnerLookup
				u += m.p.OwnerLookup
				t = m.net.Send(o, h, mesh.CtrlFlits, t)
				m.seg(span.StageForward, t0, q0, t)
				u += m.net.Unloaded(o, h, mesh.CtrlFlits)
			}
			t = m.memAccess(h, b, t)
			u += m.p.MemAccess
			e.state, e.owner, e.ownerDirty, e.sharers = Exclusive, r, false, 1<<uint(r)
			t0, q0 := t, m.hopQ()
			t = m.net.Send(h, r, mesh.DataFlits, t)
			m.seg(span.StageReply, t0, q0, t)
			u += m.net.Unloaded(h, r, mesh.DataFlits)
			break
		}
		// Cache-to-cache transfer: forward to the owner, which downgrades
		// to Shared, sends the data to the requester and (if dirty) a
		// writeback to the home.
		m.stats.Forwards++
		dirty = e.ownerDirty
		t0, fq0 := t, m.hopQ()
		t = m.net.Send(h, o, mesh.CtrlFlits, t)
		u += m.net.Unloaded(h, o, mesh.CtrlFlits)
		t += m.p.OwnerLookup
		u += m.p.OwnerLookup
		m.seg(span.StageForward, t0, fq0, t)
		if e.ownerDirty {
			m.stats.Writebacks++
			// Sharing writeback, off the critical path: its link occupancy
			// still contends, but its hops are not this miss's to pay.
			m.net.SetSpan(nil)
			m.net.Send(o, h, mesh.DataFlits, t)
			m.net.SetSpan(m.sp)
		}
		if m.Downgrade != nil {
			m.Downgrade(o, b, t)
		}
		e.state, e.ownerDirty = Shared, false
		e.sharers = (1 << uint(o)) | (1 << uint(r))
		t0, q0 = t, m.hopQ()
		t = m.net.Send(o, r, mesh.DataFlits, t)
		m.seg(span.StageReply, t0, q0, t)
		u += m.net.Unloaded(o, r, mesh.DataFlits)
	}
	return Result{Done: t, Unloaded: u, StateBefore: before, Local: h == r, Dirty: dirty}
}

// Write performs a write miss or upgrade (GetX) by node r for block b.
func (m *Machine) Write(r int, b uint64, now int64) Result {
	m.stats.Writes++
	h := m.home(b)
	e := m.entryOf(b)
	before := e.state
	dirty := false

	q0 := m.hopQ()
	t := m.net.Send(r, h, mesh.CtrlFlits, now)
	m.seg(span.StageRequest, now, q0, t)
	u := m.net.Unloaded(r, h, mesh.CtrlFlits)
	t = m.dirAccess(h, t)
	u += m.p.DirAccess

	switch e.state {
	case Uncached:
		t = m.memAccess(h, b, t)
		u += m.p.MemAccess
		t0, q0 := t, m.hopQ()
		t = m.net.Send(h, r, mesh.DataFlits, t)
		m.seg(span.StageReply, t0, q0, t)
		u += m.net.Unloaded(h, r, mesh.DataFlits)

	case Shared:
		// Invalidate every other sharer in parallel; the data reply leaves
		// after memory and after all acks return.
		memT := m.memAccess(h, b, t)
		memU := m.p.MemAccess
		ackT, ackU := t, int64(0)
		iq0, invals := m.hopQ(), false
		for s := 0; s < m.net.Nodes(); s++ {
			if s == r || e.sharers&(1<<uint(s)) == 0 {
				continue
			}
			invals = true
			m.stats.Invalidations++
			if m.met != nil {
				m.met.Invalidations.Inc()
			}
			it := m.net.Send(h, s, mesh.CtrlFlits, t)
			iu := m.net.Unloaded(h, s, mesh.CtrlFlits)
			if m.Invalidate != nil {
				m.Invalidate(s, b, it)
			}
			at := m.net.Send(s, h, mesh.CtrlFlits, it+m.p.InvalAck)
			au := iu + m.p.InvalAck + m.net.Unloaded(s, h, mesh.CtrlFlits)
			if at > ackT {
				ackT = at
			}
			if au > ackU {
				ackU = au
			}
		}
		if invals {
			// One merged segment over the fan-out window: first
			// invalidation out to last ack in.
			m.seg(span.StageInval, t, iq0, ackT)
		}
		if memT > ackT {
			ackT = memT
		}
		if memU > ackU {
			ackU = memU
		}
		t = ackT
		u += ackU
		t0, q0 := t, m.hopQ()
		t = m.net.Send(h, r, mesh.DataFlits, t)
		m.seg(span.StageReply, t0, q0, t)
		u += m.net.Unloaded(h, r, mesh.DataFlits)

	case Exclusive:
		o := e.owner
		if o == r || !m.hasBlock(o, b) {
			if o != r {
				m.stats.Forwards++
				m.stats.ForwardNacks++
				t0, q0 := t, m.hopQ()
				t = m.net.Send(h, o, mesh.CtrlFlits, t)
				u += m.net.Unloaded(h, o, mesh.CtrlFlits)
				t += m.p.OwnerLookup
				u += m.p.OwnerLookup
				t = m.net.Send(o, h, mesh.CtrlFlits, t)
				m.seg(span.StageForward, t0, q0, t)
				u += m.net.Unloaded(o, h, mesh.CtrlFlits)
			}
			t = m.memAccess(h, b, t)
			u += m.p.MemAccess
			t0, q0 := t, m.hopQ()
			t = m.net.Send(h, r, mesh.DataFlits, t)
			m.seg(span.StageReply, t0, q0, t)
			u += m.net.Unloaded(h, r, mesh.DataFlits)
			break
		}
		// Ownership transfer: the owner invalidates its copy and sends the
		// (possibly dirty) data straight to the requester.
		m.stats.Forwards++
		dirty = e.ownerDirty
		t0, fq0 := t, m.hopQ()
		t = m.net.Send(h, o, mesh.CtrlFlits, t)
		u += m.net.Unloaded(h, o, mesh.CtrlFlits)
		t += m.p.OwnerLookup
		u += m.p.OwnerLookup
		m.seg(span.StageForward, t0, fq0, t)
		if m.Invalidate != nil {
			m.Invalidate(o, b, t)
		}
		t0, q0 = t, m.hopQ()
		t = m.net.Send(o, r, mesh.DataFlits, t)
		m.seg(span.StageReply, t0, q0, t)
		u += m.net.Unloaded(o, r, mesh.DataFlits)
	}
	e.state, e.owner, e.ownerDirty, e.sharers = Exclusive, r, true, 1<<uint(r)
	return Result{Done: t, Unloaded: u, StateBefore: before, Local: h == r, Dirty: dirty}
}

// Evict informs the protocol that node r dropped block b from its caches.
// Dirty evictions always write data back; clean evictions notify the home
// only when replacement hints are enabled (otherwise the directory goes
// stale, the condition Table 3 studies).
func (m *Machine) Evict(r int, b uint64, dirty bool, now int64) {
	e, ok := m.dir[b]
	if !ok {
		return
	}
	if dirty && e.state == Exclusive && e.owner == r {
		m.stats.Writebacks++
		t := m.net.Send(r, m.home(b), mesh.DataFlits, now)
		t = m.dirAccess(m.home(b), t)
		m.memAccess(m.home(b), b, t)
		e.state, e.sharers, e.ownerDirty = Uncached, 0, false
		return
	}
	if !m.p.Hints {
		return
	}
	m.stats.Hints++
	t := m.net.Send(r, m.home(b), mesh.CtrlFlits, now)
	m.dirAccess(m.home(b), t)
	switch e.state {
	case Exclusive:
		if e.owner == r {
			e.state, e.sharers, e.ownerDirty = Uncached, 0, false
		}
	case Shared:
		e.sharers &^= 1 << uint(r)
		if e.sharers == 0 {
			e.state = Uncached
		}
	}
}
