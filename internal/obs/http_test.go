package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeAndGracefulClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/metrics", srv.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits 3") {
		t.Fatalf("/metrics response missing counter:\n%s", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	// The port is released: new connections must fail.
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting connections after Close")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
