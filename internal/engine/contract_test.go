package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"costcache/internal/replacement"
)

// guardedPolicy enforces the Policy interface's single-goroutine contract at
// runtime: every hook asserts that no other goroutine is inside the policy.
// Plugged into an engine, it proves the shard mutex really is the stated
// synchronization boundary.
type guardedPolicy struct {
	inner      replacement.Policy
	inside     atomic.Int32
	violations *atomic.Int64
}

func (g *guardedPolicy) enter() {
	if !g.inside.CompareAndSwap(0, 1) {
		g.violations.Add(1)
	}
}
func (g *guardedPolicy) leave() { g.inside.Store(0) }

func (g *guardedPolicy) Name() string { return "guarded-" + g.inner.Name() }
func (g *guardedPolicy) Reset(sets, ways int) {
	g.enter()
	defer g.leave()
	g.inner.Reset(sets, ways)
}
func (g *guardedPolicy) Access(set int, tag uint64, hit bool) {
	g.enter()
	defer g.leave()
	g.inner.Access(set, tag, hit)
}
func (g *guardedPolicy) Touch(set, way int) {
	g.enter()
	defer g.leave()
	g.inner.Touch(set, way)
}
func (g *guardedPolicy) Victim(set int) int {
	g.enter()
	defer g.leave()
	return g.inner.Victim(set)
}
func (g *guardedPolicy) Fill(set, way int, tag uint64, cost replacement.Cost) {
	g.enter()
	defer g.leave()
	g.inner.Fill(set, way, tag, cost)
}
func (g *guardedPolicy) Invalidate(set, way int, tag uint64) {
	g.enter()
	defer g.leave()
	g.inner.Invalidate(set, way, tag)
}

// TestShardsSerializePolicy hammers an engine whose policies detect
// concurrent entry: with one policy per shard behind the shard mutex, no
// hook may ever observe another goroutine inside the same policy instance —
// the engine, not the policy, owns synchronization (see the contract note on
// replacement.Policy).
func TestShardsSerializePolicy(t *testing.T) {
	var violations atomic.Int64
	e := New(Config{
		Shards: 4, Sets: 64, Ways: 4,
		Policy: func() replacement.Policy {
			return &guardedPolicy{inner: replacement.NewDCL(), violations: &violations}
		},
	})
	const goroutines, opsEach = 32, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := uint64((g*opsEach + i*13) % 1024)
				switch i % 8 {
				case 6:
					e.Set(key, key, replacement.Cost(key%8))
				case 7:
					e.Invalidate(key)
				default:
					_, _ = e.GetOrLoad(key, constLoader(key, 1))
				}
			}
		}()
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("policy hooks entered concurrently %d times; shard mutex failed to serialize", n)
	}
}
