package engine

import (
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
)

// Traced entry points: the serving tier's remote-bound variants of
// Get/Set/GetOrLoadInfo. Each is its local twin with one substitution —
// the span is leased through reqspan.Tracer.BeginRemote with the trace
// context a client propagated on the wire, so the server's span carries
// the client's span id (the report -stitch join key) and honors the
// client's sampling decision instead of the server's stride. The bodies
// are shared (doGet/doSet/doGetOrLoad), so the decision path, counter
// stream, and stage segmentation stay byte-identical with local calls.

// GetTraced is Get with a propagated trace context.
func (e *Engine) GetTraced(key uint64, rm reqspan.Remote) (any, bool) {
	s, set := e.place(key)
	sp := e.tracer.BeginRemote(reqspan.OpGet, s.id, key, rm)
	return e.doGet(s, set, key, sp)
}

// SetTraced is Set with a propagated trace context.
func (e *Engine) SetTraced(key uint64, value any, cost replacement.Cost, rm reqspan.Remote) {
	s, set := e.place(key)
	sp := e.tracer.BeginRemote(reqspan.OpSet, s.id, key, rm)
	e.doSet(s, set, key, value, cost, sp)
}

// GetOrLoadInfoTraced is GetOrLoadInfo with a propagated trace context.
func (e *Engine) GetOrLoadInfoTraced(key uint64, load Loader, rm reqspan.Remote) (any, LoadInfo, error) {
	s, set := e.place(key)
	sp := e.tracer.BeginRemote(reqspan.OpGetOrLoad, s.id, key, rm)
	return e.doGetOrLoad(s, set, key, load, sp)
}
