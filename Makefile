GO ?= go

.PHONY: all build test race vet fmt bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate: vet + build + full test suite under the race
# detector (the obs instruments are the main concurrent surface).
race:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

ci:
	./scripts/ci.sh

clean:
	$(GO) clean ./...
