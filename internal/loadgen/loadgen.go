// Package loadgen drives an engine.Engine with realistic concurrent request
// streams and measures what the paper's simulators cannot: latency under
// load. It supports two disciplines — closed-loop (each worker issues its
// next request as soon as the previous one completes; measures capacity) and
// open-loop (requests arrive on a fixed global schedule regardless of
// completion; measures latency at an offered rate, including queueing delay,
// the way a production SLO would) — over zipfian key streams or replays of
// the synthetic SPLASH-2-like workload traces.
//
// Every request is a GetOrLoad against the engine; the simulated backend
// sleeps in proportion to the key's miss cost, so cost-sensitive policies
// that keep expensive keys resident show up directly in the latency
// percentiles, not just in the aggregate-cost counters.
//
// Closed-loop runs with a single worker are fully deterministic: the same
// seed produces identical hit/miss/cost counters at any shard count (the
// engine's placement is shard-count-invariant), which is what makes engine
// runs diffable via run manifests like simulator runs.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"costcache/internal/cost"
	"costcache/internal/engine"
	"costcache/internal/fault"
	"costcache/internal/obs"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
	"costcache/internal/workload"
)

// Mode is the load discipline.
type Mode string

const (
	// Closed issues each worker's next request when the previous completes.
	Closed Mode = "closed"
	// Open issues requests on a fixed arrival schedule (Rate per second),
	// measuring latency from the scheduled arrival, so a backlogged engine
	// accrues queueing delay instead of silently shedding load.
	//
	// This discipline is deliberately coordinated-omission-free: arrival i
	// of the global schedule has origin start + i/Rate, computed from the
	// schedule alone — never from when the previous request finished. A
	// worker that falls behind does not sleep (time.Until(origin) is
	// negative) and its requests' latencies are measured from the slot they
	// should have started at, so backend stalls charge every queued arrival
	// with its full waiting time. The tempting "origin = time.Now()" fix
	// would silently re-synchronize the schedule to the backend's pace and
	// under-report tail latency by exactly the stall time — the classic
	// coordinated-omission bug. TestOpenLoopCoordinatedOmission pins this
	// contract over the remote transport.
	Open Mode = "open"
)

// Modes lists the valid -mode flag values.
func Modes() []string { return []string{string(Closed), string(Open)} }

// Config parameterizes one load run.
type Config struct {
	// Mode is the load discipline ("" means Closed).
	Mode Mode
	// Workers is the number of request goroutines (0 means 1).
	Workers int
	// Ops is the total number of requests across workers (0 means 100000).
	Ops int
	// Rate is the open-loop arrival rate in requests/second; Closed ignores
	// it.
	Rate float64
	// Keys is the zipfian key-space size (0 means 65536).
	Keys int
	// ZipfS is the zipf skew; values <= 1 fall back to a uniform stream.
	ZipfS float64
	// Workload, when non-empty, replays the named synthetic benchmark's
	// block-address stream (quick-scaled) instead of the zipfian stream;
	// Keys and ZipfS are then ignored.
	Workload string
	// Seed drives every random choice (key streams and cost mapping).
	Seed int64
	// CostLow/CostHigh/HighFrac configure the paper's random cost mapping:
	// a key is high-cost with probability HighFrac (defaults 1, 8, 0.2).
	CostLow, CostHigh replacement.Cost
	// HighFrac is the high-cost key fraction.
	HighFrac float64
	// LoadDelay is the simulated backend latency per unit of miss cost: a
	// miss on a cost-c key sleeps c×LoadDelay in its loader. 0 disables
	// sleeping (counters stay meaningful, latency collapses).
	LoadDelay time.Duration
	// Registry, when non-nil, is where the run's latency histogram is
	// registered as request_latency_ns — the live-telemetry store
	// (internal/obs/tsdb) then sees per-request latency alongside the
	// engine's counters, feeding the windowed latency quantile signals.
	Registry *obs.Registry
	// OnDone, when non-nil, is called after each completed request with the
	// total completed so far. Single-worker closed-loop runs call it from
	// one goroutine in a deterministic order, which is what lets cachebench
	// advance a simulated telemetry clock every N ops (-ts.everyops) and
	// pin exact alert firing counts in CI; multi-worker runs call it
	// concurrently and it must be cheap.
	OnDone func(done int64)
	// Faults, when non-nil, injects deterministic backend failures into the
	// simulated loader: each load attempt consumes one index of the
	// injector's op stream (misses and retries both count), and the
	// injector's pure (plan, op, class) decision makes it fail with
	// fault.ErrInjectedLoad or sleep extra cost units. nil means a healthy
	// backend, bit-identical to runs before fault plans existed.
	Faults *fault.LoaderInjector
	// Tracer, when non-nil, is the request tracer attached to the engine
	// (engine.Config.Tracer). The load generator does not drive it — the
	// engine does — but uses it to link its arrival-latency histogram to
	// traces: each bucket's exemplar is the most recently finished sampled
	// span, so a "p99" bucket points at a concrete request to open in
	// Perfetto.
	Tracer *reqspan.Tracer
	// Target, when non-nil, receives the requests instead of the in-process
	// engine passed to Run (which may then be nil): the remote serving tier
	// (NewRemoteTarget), or anything else implementing the two calls. The
	// key streams, cost mapping and arrival schedule are identical either
	// way — that is what makes a remote run counter-diffable against an
	// in-process run of the same config.
	Target Target
}

// Target abstracts where requests land: the in-process engine (the default)
// or a remote cache tier driven over sockets.
type Target interface {
	// GetOrLoad performs one request. c is the key's predicted miss cost
	// from the run's cost source; in-process targets ignore it (their load
	// closure recomputes it), remote targets declare it on the wire so the
	// server charges the identical cost stream.
	GetOrLoad(key uint64, c replacement.Cost, load engine.Loader) (stale bool, err error)
	// Stats returns the engine counter view used for the run's delta — for
	// a remote target, fetched from the server(s).
	Stats() (engine.Stats, error)
}

// engineTarget is the default in-process target.
type engineTarget struct{ e *engine.Engine }

func (t engineTarget) GetOrLoad(key uint64, _ replacement.Cost, load engine.Loader) (bool, error) {
	_, stale, err := t.e.GetOrLoadStale(key, load)
	return stale, err
}

func (t engineTarget) Stats() (engine.Stats, error) { return t.e.Stats(), nil }

func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = Closed
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Ops == 0 {
		c.Ops = 100000
	}
	if c.Keys == 0 {
		c.Keys = 65536
	}
	if c.CostLow == 0 && c.CostHigh == 0 {
		c.CostLow, c.CostHigh, c.HighFrac = 1, 8, 0.2
	}
	return c
}

// CostSource is the run's key→miss-cost mapping, derived purely from the
// config. Exposed so callers (cachebench's resilience classifier) can price
// a key's class exactly the way the loader will charge it.
func (c Config) CostSource() cost.Random {
	c = c.withDefaults()
	return cost.Random{Low: c.CostLow, High: c.CostHigh, Fraction: c.HighFrac, Seed: uint64(c.Seed)}
}

// Result summarizes one load run.
type Result struct {
	// Ops is the number of requests completed; WallNs the run duration.
	Ops    int64
	WallNs int64
	// Throughput is completed requests per second.
	Throughput float64
	// Stats is the engine counter delta over the run.
	Stats engine.Stats
	// Latency is the request latency distribution in nanoseconds
	// (closed-loop: service time; open-loop: scheduled-arrival to
	// completion, queueing included), with P50/P95/P99 upper bounds
	// extracted from its buckets.
	Latency             obs.HistogramSnapshot
	P50Ns, P95Ns, P99Ns int64
	// Errors counts requests that completed with an error (injected backend
	// faults that exhausted their retry budget, shed loads, deadline
	// expiries); StaleServes counts requests answered from a retained ghost.
	// Both stay 0 on healthy runs without resilience.
	Errors      int64
	StaleServes int64
	// Interrupted reports a run stopped early via the stopped callback.
	Interrupted bool
}

// latencyBuckets spans 250ns to ~25s in ×1.6 steps: sub-microsecond cache
// hits up to badly backlogged open-loop tails.
func latencyBuckets() []int64 { return obs.ExpBuckets(250, 1.6, 40) }

// Run drives e with cfg. stopped, when non-nil, is polled at request
// boundaries; a true return stops the run early and marks the result
// Interrupted (the cli package's SIGINT handler plugs in here).
func Run(e *engine.Engine, cfg Config, stopped func() bool) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Mode != Closed && cfg.Mode != Open {
		return Result{}, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	if cfg.Mode == Open && cfg.Rate <= 0 {
		return Result{}, fmt.Errorf("loadgen: open-loop mode needs Rate > 0")
	}
	if cfg.Workers < 0 || cfg.Ops < 0 {
		return Result{}, fmt.Errorf("loadgen: negative Workers or Ops")
	}
	streams, err := keyStreams(cfg)
	if err != nil {
		return Result{}, err
	}
	target := cfg.Target
	if target == nil {
		if e == nil {
			return Result{}, fmt.Errorf("loadgen: nil engine and no Target")
		}
		target = engineTarget{e}
	}

	src := cfg.CostSource()
	// loadOp numbers backend load attempts (misses and retries, not hits or
	// coalesced waits) — the index the fault injector's plan is a pure
	// function of, which is what makes injected chaos replayable.
	var loadOp atomic.Int64
	load := func(key uint64) (any, replacement.Cost, error) {
		c := src.MissCost(key)
		extra := int64(0)
		if cfg.Faults != nil {
			op := loadOp.Add(1) - 1
			fail, slow := cfg.Faults.Outcome(op, int64(c))
			if fail {
				return nil, 0, fault.ErrInjectedLoad
			}
			extra = slow
		}
		if cfg.LoadDelay > 0 && int64(c)+extra > 0 {
			time.Sleep(time.Duration(int64(c)+extra) * cfg.LoadDelay)
		}
		return key, c, nil
	}

	var hist *obs.Histogram
	switch {
	case cfg.Registry != nil && cfg.Tracer != nil:
		hist = cfg.Registry.HistogramExemplars("request_latency_ns", latencyBuckets())
	case cfg.Registry != nil:
		hist = cfg.Registry.Histogram("request_latency_ns", latencyBuckets())
	case cfg.Tracer != nil:
		hist = obs.NewHistogramExemplars(latencyBuckets())
	default:
		hist = obs.NewHistogram(latencyBuckets())
	}
	var done, interrupted, errored, staleServes atomic.Int64
	before, err := target.Stats()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: pre-run stats: %w", err)
	}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			next := streams[w]
			for i := 0; ; i++ {
				key, ok := next()
				if !ok {
					return
				}
				if stopped != nil && i%64 == 0 && stopped() {
					interrupted.Store(1)
					return
				}
				var origin time.Time
				if cfg.Mode == Open {
					// Arrival w+i*Workers of the global schedule.
					origin = start.Add(time.Duration(
						float64(w+i*cfg.Workers) / cfg.Rate * float64(time.Second)))
					if d := time.Until(origin); d > 0 {
						time.Sleep(d)
					}
				} else {
					origin = time.Now()
				}
				if stale, err := target.GetOrLoad(key, src.MissCost(key), load); err != nil {
					// Errors — injected faults, shed loads, expired deadlines
					// — still count as completed (errored) requests.
					errored.Add(1)
				} else if stale {
					staleServes.Add(1)
				}
				// LastID is the span that most recently finished, which for
				// this worker is usually its own request when it was sampled
				// — an approximate but cheap bucket→trace link.
				hist.ObserveExemplar(time.Since(origin).Nanoseconds(), cfg.Tracer.LastID())
				if n := done.Add(1); cfg.OnDone != nil {
					cfg.OnDone(n)
				}
			}
		}()
	}
	wg.Wait()

	wall := time.Since(start)
	after, err := target.Stats()
	if err != nil {
		return Result{}, fmt.Errorf("loadgen: post-run stats: %w", err)
	}
	snap := hist.Snapshot()
	res := Result{
		Ops:         done.Load(),
		WallNs:      wall.Nanoseconds(),
		Stats:       after.Sub(before),
		Latency:     snap,
		P50Ns:       snap.Quantile(0.50),
		P95Ns:       snap.Quantile(0.95),
		P99Ns:       snap.Quantile(0.99),
		Errors:      errored.Load(),
		StaleServes: staleServes.Load(),
		Interrupted: interrupted.Load() != 0,
	}
	if wall > 0 {
		res.Throughput = float64(res.Ops) / wall.Seconds()
	}
	return res, nil
}

// keyStreams builds one key generator per worker. Each returns (key, true)
// until its share of the run is exhausted. Streams depend only on cfg, never
// on timing, so a single-worker closed-loop run is deterministic.
func keyStreams(cfg Config) ([]func() (uint64, bool), error) {
	share := func(w int) int { // worker w's share of cfg.Ops
		n := cfg.Ops / cfg.Workers
		if w < cfg.Ops%cfg.Workers {
			n++
		}
		return n
	}
	if cfg.Workload != "" {
		g, ok := workload.ByName(cfg.Workload)
		if !ok {
			return nil, fmt.Errorf("loadgen: unknown workload %q (valid: %v)", cfg.Workload, workload.Names())
		}
		refs := workload.Quick(g).Generate().Refs
		if cfg.Ops < len(refs) {
			refs = refs[:cfg.Ops]
		}
		streams := make([]func() (uint64, bool), cfg.Workers)
		for w := range streams {
			w := w
			i := w // round-robin split keeps per-worker shares deterministic
			streams[w] = func() (uint64, bool) {
				if i >= len(refs) {
					return 0, false
				}
				key := refs[i].Addr / workload.BlockBytes
				i += cfg.Workers
				return key, true
			}
		}
		return streams, nil
	}
	streams := make([]func() (uint64, bool), cfg.Workers)
	for w := range streams {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(w)))
		var zipf *rand.Zipf
		if cfg.ZipfS > 1 {
			zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
		}
		n := share(w)
		i := 0
		streams[w] = func() (uint64, bool) {
			if i >= n {
				return 0, false
			}
			i++
			if zipf != nil {
				return zipf.Uint64(), true
			}
			return uint64(rng.Intn(cfg.Keys)), true
		}
	}
	return streams, nil
}
