// Command paper regenerates every table and figure of "Cost-Sensitive Cache
// Replacement Algorithms" (Jeong & Dubois, HPCA 2003) from the synthetic
// workloads and simulators in this repository.
//
// Usage:
//
//	paper [-quick] [-only table1,figure3,table2,table3,table4,table5,assoc,sizes,hwcost]
//	paper -obs.trace results/decisions.jsonl [-obs.window 50000] [-bench Barnes]
//	paper -bench-json results/BENCH_obs.json
//
// With no -only flag every experiment runs, in paper order. -quick scales
// the workloads down for a fast smoke run (shapes hold, magnitudes shift).
//
// -obs.trace switches to the observability run: the cost-sensitive policies
// replay one benchmark with the decision tracer attached, every eviction /
// reservation / automaton event is written as JSONL, the per-policy event
// counts are reconciled against the cache counters, and per-window interval
// statistics (misses, cost paid, cost saved vs. an LRU shadow) are printed
// and written to results/obs_intervals.txt. -obs.listen serves /metrics and
// pprof during any run. -bench-json times the observed vs. bare simulator
// and writes the overhead record future PRs track.
//
// The chaos experiment (-only chaos) races LRU against the cost-sensitive
// policies under the deterministic fault-injection scenarios of
// docs/FAULTS.md; -fault.seed varies which links/nodes each scenario
// afflicts. The resilience experiment (-only resilience) replays a backend
// brownout against the serving engine, naive vs degraded-mode
// (retries/breakers/serve-stale — docs/ENGINE.md). SIGINT/SIGTERM stop the run at the next experiment boundary,
// flush a partial manifest marked "interrupted": true, and exit 130.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"costcache/internal/cli"
	"costcache/internal/costsim"
	"costcache/internal/hwcost"
	"costcache/internal/manifest"
	"costcache/internal/numasim"
	"costcache/internal/obs"
	"costcache/internal/tabulate"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// sectionNames lists the experiments -only accepts, in paper order.
var sectionNames = []string{"table1", "figure3", "table2", "table4", "table3", "table5", "assoc", "sizes", "hwcost", "chaos", "resilience"}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	quick := flag.Bool("quick", false, "scale workloads down for a fast smoke run")
	only := flag.String("only", "", "comma-separated experiments to run (default: all)")
	bench := flag.String("bench", "", "benchmark for -obs.trace/-bench-json (default: first workload)")
	obsListen := flag.String("obs.listen", "", "serve /metrics and pprof on this address (e.g. localhost:6060)")
	obsTrace := flag.String("obs.trace", "", "write the replacement decision trace as JSONL to this file and run the observability section")
	obsWindow := flag.Int("obs.window", 50000, "interval-report window in trace references (-obs.trace)")
	benchJSON := flag.String("bench-json", "", "time observed vs. bare simulation and write the JSON record to this file")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) capturing the configuration and the metrics registry to this file")
	faultSeed := flag.Uint64("fault.seed", 1, "fault scenario seed for the chaos experiment")
	flag.Parse()
	stopped := cli.Interrupt()

	if *bench != "" {
		if _, ok := workload.ByName(*bench); !ok {
			cli.BadFlag("paper", "-bench", *bench, workload.Names())
		}
	}
	want := map[string]bool{}
	if *only != "" {
		known := map[string]bool{}
		for _, k := range sectionNames {
			known[k] = true
		}
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				cli.BadFlag("paper", "-only", k, sectionNames)
			}
			want[k] = true
		}
	}

	if *obsListen != "" {
		srv, err := obs.Serve(*obsListen, obs.Default)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("observability: serving /metrics and /debug/pprof on http://%s\n\n", srv.Addr())
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, pickBench(*bench, *quick)); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *obsTrace != "" {
		if err := obsSection(*obsTrace, pickBench(*bench, *quick), *obsWindow, *manifestPath); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *manifestPath != "" {
		man = manifest.New("paper")
		man.SetConfig("quick", *quick)
		man.SetConfig("only", *only)
	}

	gens := benchmarks(*quick)

	// Experiments run in paper order; stopped() is polled between them so a
	// signal abandons the remaining sections, flushes the partial manifest
	// and exits 130 (the chaos section also polls internally — it is the
	// longest).
	interrupted := false
	sections := []struct {
		name string
		fn   func()
	}{
		{"table1", func() { table1(gens) }},
		{"figure3", func() { figure3(gens, *quick) }},
		{"table2", func() { table2(gens) }},
		{"table4", table4},
		{"table3", func() { table3(gens) }},
		{"table5", func() { table5(gens, *quick) }},
		{"assoc", func() { assocSection(gens) }},
		{"sizes", func() { sizeSection(gens) }},
		{"hwcost", hwcostSection},
		{"chaos", func() { interrupted = chaosSection(gens, *quick, *faultSeed, stopped) }},
		{"resilience", func() { interrupted = resilienceSection(*quick, *faultSeed, stopped) }},
	}
	for _, s := range sections {
		if len(want) != 0 && !want[s.name] {
			continue
		}
		if stopped() {
			interrupted = true
			break
		}
		s.fn()
		if interrupted {
			break
		}
	}

	if interrupted {
		fmt.Fprintln(os.Stderr, "paper: interrupted — flushing partial results")
	}
	if man != nil {
		if interrupted {
			man.MarkInterrupted()
		}
		man.AddSnapshot(obs.Default.Snapshot())
		if err := man.WriteFile(*manifestPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote manifest to %s\n", *manifestPath)
	}
	if interrupted || stopped() {
		os.Exit(cli.ExitInterrupted)
	}
}

// man is the optional run manifest (-manifest); the per-policy experiment
// sections record their headline numbers into it through record.
var man *manifest.Manifest

func record(name string, v float64) {
	if man != nil {
		man.SetMetric(name, v)
	}
}

// assocSection reports savings across associativities 2..8 (the paper's
// methodology sweeps s from 2 to 8, Section 3.1).
func assocSection(gens []workload.Generator) {
	fmt.Println("== Associativity sweep: DCL savings over LRU, r=8, HAF=0.2 (%) ==")
	t := tabulate.New("", "Benchmark", "2-way", "4-way", "8-way")
	for _, d := range load(gens) {
		pts := costsim.AssocSweep(d.view, costsim.Default(), []int{2, 4, 8},
			costsim.Ratio{Low: 1, High: 8, Label: "r=8"}, 0.2,
			costsim.PaperPolicies(), 42)
		row := []any{d.gen.Name()}
		for _, pt := range pts {
			row = append(row, pt.Savings["DCL"]*100)
		}
		t.AddF(row...)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

// sizeSection reports LRU miss behaviour and DCL savings across L2 sizes
// (the paper examines 2KB..512KB before settling on 16KB).
func sizeSection(gens []workload.Generator) {
	fmt.Println("== Cache size sweep: LRU miss rate / DCL savings, r=8, HAF=0.2 ==")
	t := tabulate.New("", "Benchmark", "Size", "LRU miss %", "DCL savings %")
	for _, d := range load(gens) {
		pts := costsim.SizeSweep(d.view, costsim.Default(),
			[]int{4 << 10, 16 << 10, 64 << 10, 256 << 10},
			costsim.Ratio{Low: 1, High: 8, Label: "r=8"}, 0.2,
			costsim.PaperPolicies()[2:3], 42) // DCL only
		for _, pt := range pts {
			t.AddF(d.gen.Name(), pt.Label, pt.MissRate*100, pt.Savings["DCL"]*100)
		}
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

// benchmarks returns the four Table 1 workloads, optionally scaled down.
func benchmarks(quick bool) []workload.Generator {
	gens := workload.Defaults()
	if quick {
		for i, g := range gens {
			gens[i] = workload.Quick(g)
		}
	}
	return gens
}

// views generates each benchmark's trace, sample view and first-touch homes
// once so every experiment shares them.
type benchData struct {
	gen   workload.Generator
	tr    *trace.Trace
	view  []trace.SampleRef
	homes map[uint64]int16
}

func load(gens []workload.Generator) []benchData {
	out := make([]benchData, len(gens))
	for i, g := range gens {
		tr := g.Generate()
		out[i] = benchData{
			gen:   g,
			tr:    tr,
			view:  tr.SampleView(0),
			homes: workload.FirstTouchHomes(tr, workload.BlockBytes),
		}
	}
	return out
}

func table1(gens []workload.Generator) {
	fmt.Println("== Table 1: benchmark characteristics (synthetic analogues) ==")
	t := tabulate.New("", "Benchmark", "Procs", "Refs (all)", "Refs (sample)",
		"Footprint MB", "Remote access %")
	for _, d := range load(gens) {
		st := d.tr.Summarize(workload.BlockBytes)
		rf := d.tr.RemoteFraction(0, workload.BlockBytes, workload.HomeFunc(d.homes, 0))
		t.AddF(d.gen.Name(), d.tr.NumProcs, st.Refs, st.PerProc[0],
			float64(st.FootprintBytes)/(1<<20), rf*100)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func figure3(gens []workload.Generator, quick bool) {
	fmt.Println("== Figure 3: relative cost savings over LRU, random cost mapping (%) ==")
	hafs := costsim.PaperHAFs()
	ratios := costsim.PaperRatios()
	if quick {
		hafs = []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8}
		ratios = []costsim.Ratio{{Low: 1, High: 8, Label: "r=8"}, {Low: 0, High: 1, Label: "r=inf"}}
	}
	for _, d := range load(gens) {
		for _, r := range ratios {
			pts := costsim.RandomSweep(d.view, costsim.Default(),
				[]costsim.Ratio{r}, hafs, costsim.PaperPolicies(), 42)
			t := tabulate.New(fmt.Sprintf("%s, %s", d.gen.Name(), r.Label),
				"HAF", "measured", "GD", "BCL", "DCL", "ACL")
			for _, pt := range pts {
				t.AddF(fmt.Sprintf("%.2f", pt.TargetHAF), pt.MeasuredHAF,
					pt.Savings["GD"]*100, pt.Savings["BCL"]*100,
					pt.Savings["DCL"]*100, pt.Savings["ACL"]*100)
			}
			t.Fprint(os.Stdout)
			fmt.Println()
		}
	}
}

func table2(gens []workload.Generator) {
	fmt.Println("== Table 2: relative cost savings, first-touch cost mapping (%) ==")
	t := tabulate.New("", "Benchmark", "Policy", "r=2", "r=4", "r=8", "r=16", "r=32")
	for _, d := range load(gens) {
		home := workload.HomeFunc(d.homes, 0)
		pts := costsim.FirstTouchSweep(d.view, costsim.Default(), home, 0,
			costsim.Table2Ratios(), costsim.PaperPolicies())
		for _, name := range []string{"GD", "BCL", "DCL", "ACL"} {
			row := []any{d.gen.Name(), name}
			for _, pt := range pts {
				row = append(row, pt.Savings[name]*100)
				record(obs.Name("table2_savings_pct",
					"bench", d.gen.Name(), "policy", name, "ratio", pt.Ratio.Label),
					pt.Savings[name]*100)
			}
			t.AddF(row...)
		}
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}

func table3(gens []workload.Generator) {
	fmt.Println("== Table 3: consecutive-miss latency correlation (MESI, no replacement hints) ==")
	progs := numasim.ProgramsFor(gens)
	m := numasim.Table3(progs, 500)
	m.Table().Fprint(os.Stdout)
	fmt.Printf("same-latency fraction: %.1f%% (paper: ~93%%)\n\n", m.SameLatencyFraction()*100)
}

func table4() {
	fmt.Println("== Table 4: baseline system configuration (calibration) ==")
	cfg := numasim.DefaultConfig(nil)
	local, rClean, rDirty := numasim.CalibrationLatencies(cfg)
	t := tabulate.New("", "Quantity", "Paper", "This simulator")
	t.AddF("L1", "4KB direct-mapped, 1 clock", "same")
	t.AddF("L2", "16KB 4-way, 6 clocks, 8 MSHRs", "same")
	t.AddF("Memory", "4-way interleaved, 60ns", "same")
	t.AddF("Network", "4x4 mesh, 64-bit links, 6ns flit", "same")
	t.AddF("Local clean (ns)", 120, local)
	t.AddF("Remote clean (ns)", 380, rClean)
	t.AddF("Remote dirty (ns)", 480, rDirty)
	t.Fprint(os.Stdout)
	fmt.Println()
}

func table5(gens []workload.Generator, quick bool) {
	fmt.Println("== Table 5: reduction of execution time over LRU (%) ==")
	progs := numasim.ProgramsFor(gens)
	clocks := []int{500, 1000}
	if quick {
		clocks = []int{500}
	}
	names := []string{"GD", "BCL", "DCL", "ACL", "DCL-a4", "ACL-a4"}
	for _, mhz := range clocks {
		rows := numasim.Table5(progs, mhz, numasim.Table5Policies())
		t := tabulate.New(fmt.Sprintf("%d MHz processor", mhz),
			"Benchmark", "GD", "BCL", "DCL", "ACL", "DCL aliasing", "ACL aliasing")
		for _, r := range rows {
			row := []any{r.Bench}
			for _, n := range names {
				row = append(row, r.ReductionPct[n])
				record(obs.Name("table5_reduction_pct",
					"mhz", fmt.Sprint(mhz), "bench", r.Bench, "policy", n),
					r.ReductionPct[n])
			}
			t.AddF(row...)
		}
		t.Fprint(os.Stdout)
		fmt.Println()
	}
}

func hwcostSection() {
	fmt.Println("== Section 5: hardware overhead over LRU ==")
	configs := []struct {
		name string
		cfg  hwcost.Config
		pct  bool
	}{
		{"8-bit cost fields (% of set)", hwcost.Paper8Bit(), true},
		{"static table lookup (% of set)", hwcost.PaperTableLookup(), true},
		{"quantized G=60ns K=8 (bits/set)", hwcost.PaperQuantized(), false},
	}
	t := tabulate.New("", "Design point", "BCL", "GD", "DCL", "ACL")
	for _, c := range configs {
		row := []any{c.name}
		for _, alg := range hwcost.Algorithms() {
			if c.pct {
				p, _ := hwcost.OverheadPercent(alg, c.cfg)
				row = append(row, p)
			} else {
				b, _ := hwcost.OverheadBitsPerSet(alg, c.cfg)
				row = append(row, b)
			}
		}
		t.AddF(row...)
	}
	t.Fprint(os.Stdout)
	fmt.Println()
}
