// Package server is the networked cache service tier: a stdlib-only TCP
// server speaking the length-prefixed binary protocol in internal/wire over
// one or more per-namespace engine.Engine instances.
//
// Concurrency model: one accept loop, one reader goroutine and one writer
// goroutine per connection, and one dispatch goroutine per GETORLOAD —
// bounded by a server-wide in-flight semaphore. Dispatching each GETORLOAD
// on its own goroutine is what lets pipelined requests for the same key
// coalesce in the engine's singleflight table instead of head-of-line
// blocking behind each other's loads; responses carry the request ID, so
// they may complete out of order and the client matches them back up.
// Cheap ops (PING/GET/SET/STATS) are answered on the reader goroutine.
//
// The writer coalesces flushes: it drains its response channel into one
// buffered write and flushes only when the channel goes momentarily empty,
// so a pipelined burst costs one syscall, not one per response.
//
// Admission control (all optional): MaxConns caps accepted connections
// (excess connections are closed on accept), MaxInflight bounds concurrent
// loads, and QueueDeadline bounds how long a request may wait for an
// in-flight slot before it is answered with a SHED error — the same
// fail-fast contract internal/resilience applies to a tripped breaker,
// moved to the front door.
//
// Graceful drain: Drain stops the listener, pokes every blocked read,
// answers any late frames with a DRAINING error, finishes in-flight
// requests, flushes their responses and reports whether it beat the
// timeout. See docs/SERVING_TIER.md.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"costcache/internal/engine"
	"costcache/internal/obs"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
	"costcache/internal/wire"
)

// Backend produces the value for a key missing from a namespace's engine.
// cost is the client-declared miss cost from the request frame — the server
// charges exactly what the client predicted, which is what keeps a remote
// run's cost_paid stream bit-identical to the same workload run in-process.
type Backend func(key uint64, cost replacement.Cost) ([]byte, error)

// EchoBackend is the default backend: it sleeps cost×delay (the same
// synthetic backend model loadgen uses in-process) and returns the key's
// 8-byte big-endian encoding.
func EchoBackend(delay time.Duration) Backend {
	return func(key uint64, cost replacement.Cost) ([]byte, error) {
		if delay > 0 && cost > 0 {
			time.Sleep(time.Duration(cost) * delay)
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], key)
		return b[:], nil
	}
}

// Namespace is one tenant: an engine, its backend and an optional TTL.
type Namespace struct {
	// Name is the tenant identifier carried in every frame header.
	Name string
	// Engine serves the namespace. Required.
	Engine *engine.Engine
	// Backend loads missing keys. nil means EchoBackend(0).
	Backend Backend
	// TTL, when positive, expires entries: a key loaded more than TTL ago
	// is invalidated (counting as a fresh miss) before the next lookup
	// touches the engine. Expiry happens before the engine sees the op, so
	// every wire request still maps to exactly one engine op and the
	// hits+misses+coalesced reconciliation stays exact.
	TTL time.Duration

	// expiry holds the load time per cached key (TTL > 0 only). Lazily
	// swept: lookups prune their own key, and a full sweep runs whenever
	// the map grows past 2× the engine's capacity.
	mu      sync.Mutex
	expiry  map[uint64]time.Time
	expired *obs.Counter
}

// expireIfStale invalidates key if its TTL has lapsed (no-op without TTL).
func (ns *Namespace) expireIfStale(now time.Time) func(key uint64) {
	if ns.TTL <= 0 {
		return nil
	}
	return func(key uint64) {
		ns.mu.Lock()
		t, ok := ns.expiry[key]
		if ok && now.Sub(t) >= ns.TTL {
			delete(ns.expiry, key)
			ns.mu.Unlock()
			if ns.Engine.Invalidate(key) {
				ns.expired.Inc()
			}
			return
		}
		ns.mu.Unlock()
	}
}

// recordLoad stamps key's load time and bounds the expiry map: past 2× the
// engine's capacity, lapsed entries are swept (their cache slots were long
// since evicted or will expire on next touch).
func (ns *Namespace) recordLoad(key uint64, now time.Time) {
	if ns.TTL <= 0 {
		return
	}
	ns.mu.Lock()
	ns.expiry[key] = now
	if len(ns.expiry) > 2*ns.Engine.Capacity() {
		for k, t := range ns.expiry {
			if now.Sub(t) >= ns.TTL {
				delete(ns.expiry, k)
			}
		}
	}
	ns.mu.Unlock()
}

// Config describes a server.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Namespaces are the tenants. At least one; names must be unique,
	// non-empty and at most 255 bytes (the frame header's nslen is one byte).
	Namespaces []*Namespace
	// Registry, when non-nil, receives the server_* counter family. Use the
	// same registry the engines were built with so /debug/timeseries and
	// cachetop see the serving tier next to the engines.
	Registry *obs.Registry
	// MaxConns caps concurrently accepted connections (0 = unlimited);
	// excess connections are closed immediately after accept.
	MaxConns int
	// MaxInflight bounds concurrent GETORLOAD dispatches server-wide
	// (0 = 1024).
	MaxInflight int
	// QueueDeadline bounds how long a request waits for an in-flight slot
	// before it is shed (0 = wait forever; negative = shed immediately
	// when no slot is free).
	QueueDeadline time.Duration
	// MaxFrame caps accepted frame length (0 = wire.MaxFrame).
	MaxFrame int
	// Name is the node name stamped into OpManifest responses (and, via the
	// engines' tracers, into emitted server spans). Defaults to the bound
	// listen address after Start.
	Name string
	// Tracer, when non-nil, supplies the server-side clock advertised in
	// PING feature negotiation — pass the same tracer the namespace engines
	// emit spans through, so the clock clients estimate offsets against is
	// the clock the server's span timestamps are on.
	Tracer *reqspan.Tracer
}

// Server is a running cache service tier. Create with New, start with
// Start, stop with Drain (graceful) or Close (forced).
type Server struct {
	cfg      Config
	name     string
	ln       net.Listener
	nss      map[string]*Namespace
	inflight chan struct{}
	draining atomic.Bool
	drainCh  chan struct{} // closed when drain begins

	mu    sync.Mutex
	conns map[*srvConn]struct{}
	wg    sync.WaitGroup // accept loop + one per connection

	connsAccepted *obs.Counter
	connsRejected *obs.Counter
	connsActive   *obs.Gauge
	framesIn      *obs.Counter
	framesOut     *obs.Counter
	shed          *obs.Counter
	drainNs       *obs.Gauge
}

// New validates cfg and builds a server (not yet listening).
func New(cfg Config) (*Server, error) {
	if len(cfg.Namespaces) == 0 {
		return nil, errors.New("server: at least one namespace required")
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 1024
	}
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("server: MaxInflight %d must be positive", cfg.MaxInflight)
	}
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = wire.MaxFrame
	}
	s := &Server{
		cfg:      cfg,
		name:     cfg.Name,
		nss:      make(map[string]*Namespace, len(cfg.Namespaces)),
		inflight: make(chan struct{}, cfg.MaxInflight),
		drainCh:  make(chan struct{}),
		conns:    make(map[*srvConn]struct{}),
	}
	counter := func(name string) *obs.Counter {
		if cfg.Registry == nil {
			return &obs.Counter{}
		}
		return cfg.Registry.Counter(name)
	}
	gauge := func(name string) *obs.Gauge {
		if cfg.Registry == nil {
			return &obs.Gauge{}
		}
		return cfg.Registry.Gauge(name)
	}
	s.connsAccepted = counter("server_conns_accepted")
	s.connsRejected = counter("server_conns_rejected")
	s.connsActive = gauge("server_conns_active")
	s.framesIn = counter("server_frames_in")
	s.framesOut = counter("server_frames_out")
	s.shed = counter("server_shed")
	s.drainNs = gauge("server_drain_ns")
	for _, ns := range cfg.Namespaces {
		if ns.Name == "" || len(ns.Name) > 255 {
			return nil, fmt.Errorf("server: bad namespace name %q", ns.Name)
		}
		if ns.Engine == nil {
			return nil, fmt.Errorf("server: namespace %q has no engine", ns.Name)
		}
		if _, dup := s.nss[ns.Name]; dup {
			return nil, fmt.Errorf("server: duplicate namespace %q", ns.Name)
		}
		if ns.Backend == nil {
			ns.Backend = EchoBackend(0)
		}
		if ns.TTL > 0 {
			ns.expiry = make(map[uint64]time.Time)
		}
		ns.expired = counter(obs.Name("server_expired", "ns", ns.Name))
		s.nss[ns.Name] = ns
	}
	return s, nil
}

// Start begins listening on cfg.Addr and serving connections. It returns
// once the listener is bound, so Addr is valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	if s.name == "" {
		s.name = ln.Addr().String()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Name returns the node name (valid after Start).
func (s *Server) Name() string { return s.name }

// Manifest snapshots the node's identity, every namespace's engine counters
// (name-sorted) and the server-wide serving-tier totals — the OpManifest
// response body, also usable in-process by tests and benchmarks.
func (s *Server) Manifest() wire.NodeManifest {
	names := make([]string, 0, len(s.nss))
	for name := range s.nss {
		names = append(names, name)
	}
	sort.Strings(names)
	m := wire.NodeManifest{
		Node:          s.name,
		Namespaces:    make([]wire.ManifestNS, 0, len(names)),
		ConnsAccepted: s.connsAccepted.Value(),
		FramesIn:      s.framesIn.Value(),
		FramesOut:     s.framesOut.Value(),
		ServerShed:    s.shed.Value(),
	}
	for _, name := range names {
		ns := s.nss[name]
		es := ns.Engine.Stats()
		m.Namespaces = append(m.Namespaces, wire.ManifestNS{
			Namespace: name,
			Hits:      es.Hits,
			Misses:    es.Misses,
			Coalesced: es.Coalesced,
			Evictions: es.Evictions,
			CostPaid:  es.CostPaid,
			Expired:   ns.expired.Value(),
		})
	}
	return m
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Lookup returns the named namespace, or nil.
func (s *Server) Lookup(name string) *Namespace { return s.nss[name] }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or Close
		}
		if s.draining.Load() {
			nc.Close()
			continue
		}
		if s.cfg.MaxConns > 0 && int(s.connsActive.Value()) >= s.cfg.MaxConns {
			s.connsRejected.Inc()
			nc.Close()
			continue
		}
		s.connsAccepted.Inc()
		s.connsActive.Add(1)
		c := &srvConn{srv: s, nc: nc, out: make(chan outFrame, 64)}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.run()
	}
}

// Drain performs a graceful shutdown: stop accepting, wake blocked reads,
// finish in-flight requests and flush their responses. It reports whether
// everything completed within timeout; when it did not, remaining
// connections are closed forcibly. The drain duration lands in the
// server_drain_ns gauge either way.
func (s *Server) Drain(timeout time.Duration) bool {
	start := time.Now()
	if !s.draining.CompareAndSwap(false, true) {
		return true
	}
	close(s.drainCh)
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now()) // poke blocked reads
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	clean := true
	if timeout > 0 {
		t := time.NewTimer(timeout)
		select {
		case <-done:
			t.Stop()
		case <-t.C:
			// Forced: drop the sockets and return without waiting for done —
			// a dispatch wedged inside an unresponsive backend can't be
			// cancelled, and waiting for it would make a forced drain block
			// exactly as long as the graceful one. Its goroutine is abandoned
			// to the exiting process.
			clean = false
			s.closeAll()
		}
	} else {
		<-done
	}
	s.drainNs.Set(time.Since(start).Nanoseconds())
	return clean
}

// Close shuts the server down immediately: no drain, connections dropped.
func (s *Server) Close() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.closeAll()
	s.wg.Wait()
}

func (s *Server) closeAll() {
	s.mu.Lock()
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
}

// outFrame is one queued response: header fields plus an owned payload.
type outFrame struct {
	op      uint8
	flags   uint8
	id      uint64
	payload []byte
}

// srvConn is one accepted connection: a reader (run), a writer (writeLoop)
// and any number of in-flight dispatch goroutines tracked by wg.
type srvConn struct {
	srv *Server
	nc  net.Conn
	out chan outFrame
	wg  sync.WaitGroup // in-flight dispatches for this connection
}

func (c *srvConn) run() {
	defer c.srv.wg.Done()
	go c.writeLoop()
	c.readLoop()
	// Reader is done (EOF, error or drain). Let in-flight dispatches finish
	// and queue their responses, then close the channel so the writer
	// flushes and exits.
	c.wg.Wait()
	close(c.out)
	c.srv.mu.Lock()
	delete(c.srv.conns, c)
	c.srv.mu.Unlock()
	c.srv.connsActive.Add(-1)
}

func (c *srvConn) readLoop() {
	r := bufio.NewReaderSize(c.nc, 16<<10)
	var f wire.Frame
	for {
		err := wire.ReadFrame(r, c.srv.cfg.MaxFrame, &f)
		if err != nil {
			if c.srv.draining.Load() {
				// A drain poke surfaces as a deadline error mid-block; any
				// bytes already received for a partial frame are abandoned,
				// which is fine — the client never saw a response for it.
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.nc.SetReadDeadline(time.Time{})
				continue // stray deadline without drain: keep reading
			}
			return // EOF or a framing error: drop the connection
		}
		c.srv.framesIn.Inc()
		if f.Version != wire.Version {
			c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeBadRequest,
				fmt.Sprintf("unsupported protocol version %d", f.Version)))
			return
		}
		if c.srv.draining.Load() {
			c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeDraining, "server draining"))
			continue
		}
		c.dispatch(&f)
	}
}

// dispatch routes one request frame. GETORLOAD goes to its own goroutine
// behind the in-flight semaphore; everything else is answered inline.
func (c *srvConn) dispatch(f *wire.Frame) {
	switch f.Op {
	case wire.OpPing:
		// The response payload is the feature-negotiation handshake: the
		// trace capability bit plus the server tracer's clock, read as close
		// to the reply as possible so clients can estimate the per-connection
		// clock offset from the ping round trip's midpoint.
		c.reply(f.Op, f.ID, 0, wire.AppendPingResp(nil, wire.FeatTrace, c.srv.cfg.Tracer.Now()))
		return
	case wire.OpManifest:
		c.handleManifest(f)
		return
	case wire.OpGet, wire.OpSet, wire.OpStats, wire.OpGetOrLoad:
	default:
		c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeBadRequest,
			fmt.Sprintf("unknown opcode %d", f.Op)))
		return
	}
	ns := c.srv.nss[f.NS]
	if ns == nil {
		c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeNamespace,
			fmt.Sprintf("unknown namespace %q", f.NS)))
		return
	}
	// A traced request carries a trace-context prefix ahead of the op body;
	// strip it and bind the propagated span identity to the engine call.
	body := f.Payload
	var rm reqspan.Remote
	if f.Flags&wire.FlagTraced != 0 {
		tc, rest, err := wire.ParseTraceCtx(f.Payload)
		if err != nil {
			c.replyBadPayload(f, err)
			return
		}
		rm = reqspan.Remote{ID: tc.SpanID, Emit: tc.Emit}
		body = rest
	}
	switch f.Op {
	case wire.OpGet:
		c.handleGet(ns, f, body, rm)
	case wire.OpSet:
		c.handleSet(ns, f, body, rm)
	case wire.OpStats:
		c.handleStats(ns, f)
	case wire.OpGetOrLoad:
		key, cost, err := wire.ParseGetOrLoadReq(body)
		if err != nil {
			c.replyBadPayload(f, err)
			return
		}
		if !c.acquireSlot() {
			c.srv.shed.Inc()
			c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeShed,
				"server at max inflight"))
			return
		}
		c.wg.Add(1)
		go func(op uint8, id uint64) {
			defer c.wg.Done()
			defer func() { <-c.srv.inflight }()
			c.handleGetOrLoad(ns, op, id, key, cost, rm)
		}(f.Op, f.ID)
	}
}

// acquireSlot takes an in-flight slot, waiting at most QueueDeadline.
func (c *srvConn) acquireSlot() bool {
	select {
	case c.srv.inflight <- struct{}{}:
		return true
	default:
	}
	qd := c.srv.cfg.QueueDeadline
	if qd < 0 {
		return false
	}
	if qd > 0 {
		t := time.NewTimer(qd)
		select {
		case c.srv.inflight <- struct{}{}:
			t.Stop()
			return true
		case <-t.C:
			return false
		}
	}
	select {
	case c.srv.inflight <- struct{}{}:
		return true
	case <-c.srv.drainCh:
		return false
	}
}

func (c *srvConn) handleGet(ns *Namespace, f *wire.Frame, body []byte, rm reqspan.Remote) {
	key, err := wire.ParseGetReq(body)
	if err != nil {
		c.replyBadPayload(f, err)
		return
	}
	if exp := ns.expireIfStale(time.Now()); exp != nil {
		exp(key)
	}
	var v any
	var ok bool
	if rm.ID != 0 {
		v, ok = ns.Engine.GetTraced(key, rm)
	} else {
		v, ok = ns.Engine.Get(key)
	}
	if !ok {
		c.reply(f.Op, f.ID, 0, nil)
		return
	}
	c.reply(f.Op, f.ID, wire.FlagHit, valueBytes(v))
}

func (c *srvConn) handleSet(ns *Namespace, f *wire.Frame, body []byte, rm reqspan.Remote) {
	key, cost, val, err := wire.ParseSetReq(body)
	if err != nil {
		c.replyBadPayload(f, err)
		return
	}
	// Copy: val aliases the connection's reusable frame payload buffer.
	owned := append([]byte(nil), val...)
	if rm.ID != 0 {
		ns.Engine.SetTraced(key, owned, replacement.Cost(cost), rm)
	} else {
		ns.Engine.Set(key, owned, replacement.Cost(cost))
	}
	ns.recordLoad(key, time.Now())
	c.reply(f.Op, f.ID, 0, nil)
}

func (c *srvConn) handleManifest(f *wire.Frame) {
	b, err := json.Marshal(c.srv.Manifest())
	if err != nil {
		c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeBackend, err.Error()))
		return
	}
	c.reply(f.Op, f.ID, 0, b)
}

func (c *srvConn) handleStats(ns *Namespace, f *wire.Frame) {
	es := ns.Engine.Stats()
	st := wire.Stats{
		Namespace:     ns.Name,
		Hits:          es.Hits,
		Misses:        es.Misses,
		Coalesced:     es.Coalesced,
		Evictions:     es.Evictions,
		CostPaid:      es.CostPaid,
		LockWaitNs:    es.LockWaitNs,
		ShadowCost:    es.ShadowCost,
		LoadTimeouts:  es.LoadTimeouts,
		LoadRetries:   es.LoadRetries,
		Shed:          es.Shed,
		StaleServed:   es.StaleServed,
		Expired:       ns.expired.Value(),
		ConnsAccepted: c.srv.connsAccepted.Value(),
		ConnsActive:   c.srv.connsActive.Value(),
		FramesIn:      c.srv.framesIn.Value(),
		FramesOut:     c.srv.framesOut.Value(),
		ServerShed:    c.srv.shed.Value(),
	}
	b, err := json.Marshal(st)
	if err != nil {
		c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeBackend, err.Error()))
		return
	}
	c.reply(f.Op, f.ID, 0, b)
}

func (c *srvConn) handleGetOrLoad(ns *Namespace, op uint8, id uint64, key uint64, cost int64, rm reqspan.Remote) {
	now := time.Now()
	if exp := ns.expireIfStale(now); exp != nil {
		exp(key)
	}
	load := func(k uint64) (any, replacement.Cost, error) {
		b, err := ns.Backend(k, replacement.Cost(cost))
		if err != nil {
			return nil, 0, err
		}
		return b, replacement.Cost(cost), nil
	}
	var v any
	var info engine.LoadInfo
	var err error
	if rm.ID != 0 {
		v, info, err = ns.Engine.GetOrLoadInfoTraced(key, load, rm)
	} else {
		v, info, err = ns.Engine.GetOrLoadInfo(key, load)
	}
	if err != nil {
		code := wire.ErrCodeBackend
		switch {
		case errors.Is(err, engine.ErrLoadTimeout):
			code = wire.ErrCodeTimeout
		case errors.Is(err, engine.ErrShed):
			code = wire.ErrCodeShed
		}
		c.reply(op, id, wire.FlagError, wire.AppendError(nil, uint8(code), err.Error()))
		return
	}
	var flags uint8
	if info.Hit {
		flags |= wire.FlagHit
	}
	if info.Coalesced {
		flags |= wire.FlagCoalesced
	}
	if info.Stale {
		flags |= wire.FlagStale
	}
	if !info.Hit && !info.Coalesced && !info.Stale {
		ns.recordLoad(key, now)
	}
	c.reply(op, id, flags, wire.AppendGetOrLoadResp(nil, info.Charged, valueBytes(v)))
}

func (c *srvConn) replyBadPayload(f *wire.Frame, err error) {
	c.reply(f.Op, f.ID, wire.FlagError, wire.AppendError(nil, wire.ErrCodeBadRequest, err.Error()))
}

// reply queues one response frame. Safe from the reader and from dispatch
// goroutines: run closes the channel only after both have finished.
func (c *srvConn) reply(op uint8, id uint64, flags uint8, payload []byte) {
	c.out <- outFrame{op: op, flags: flags, id: id, payload: payload}
}

// writeLoop encodes queued responses into one buffered writer and flushes
// only when the queue goes momentarily empty, so a pipelined burst of
// responses costs one syscall. After a write error it keeps draining the
// channel (dropping frames) so dispatchers never block on a dead peer.
func (c *srvConn) writeLoop() {
	defer c.nc.Close()
	w := bufio.NewWriterSize(c.nc, 16<<10)
	buf := make([]byte, 0, 4096)
	broken := false
	for of := range c.out {
		if broken {
			continue
		}
		f := wire.Frame{Version: wire.Version, Op: of.op, Flags: of.flags, ID: of.id, Payload: of.payload}
		buf = wire.AppendFrame(buf[:0], &f)
		if _, err := w.Write(buf); err != nil {
			broken = true
			continue
		}
		c.srv.framesOut.Inc()
		if len(c.out) == 0 {
			if err := w.Flush(); err != nil {
				broken = true
			}
		}
	}
	w.Flush()
}

// valueBytes renders a cached value for the wire. Values that arrived over
// the wire are []byte already; anything else (an in-process caller mixing
// transports) falls back to fmt.
func valueBytes(v any) []byte {
	switch b := v.(type) {
	case []byte:
		return b
	case nil:
		return nil
	default:
		return []byte(fmt.Sprint(v))
	}
}
