// Package cache implements the set-associative cache model the replacement
// policies plug into, and the two-level hierarchy used throughout the
// paper's evaluation (a small direct-mapped L1 in front of the L2 to which
// the cost-sensitive replacement algorithm is applied).
package cache

import (
	"fmt"
	"math/bits"

	"costcache/internal/cost"
	"costcache/internal/replacement"
)

// Config describes one cache level.
type Config struct {
	// Name labels the cache in stats output ("L1", "L2").
	Name string
	// SizeBytes is the total capacity. Must be a multiple of Ways*BlockBytes.
	SizeBytes int
	// Ways is the set associativity; 1 means direct-mapped.
	Ways int
	// BlockBytes is the line size; must be a power of two.
	BlockBytes int
	// Policy chooses victims. nil defaults to LRU.
	Policy replacement.Policy
	// Cost predicts next-miss costs loaded into blocks at fill time and
	// charged to AggCost on each miss. nil charges zero.
	Cost cost.Source
}

// Stats counts cache events.
type Stats struct {
	Accesses      int64
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64 // external invalidations that hit a cached block
	// AggCost is the aggregate miss cost: the sum of the cost source's value
	// for every miss, the quantity the paper's algorithms minimize.
	AggCost int64
	// CostPaid is the total PREDICTED next-miss cost loaded into blocks at
	// fill time. It equals AggCost whenever the charged and predicted costs
	// coincide (all trace-driven runs); in timing runs that charge a
	// measured latency via FillWithCost the two diverge, and the gap is the
	// predictor's aggregate error.
	CostPaid int64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single write-back, write-allocate cache level.
type Cache struct {
	cfg        Config
	sets       int
	blockShift uint
	policy     replacement.Policy
	tags       [][]uint64
	valid      [][]bool
	dirty      [][]bool
	stats      Stats

	// OnEvict, when set, is invoked with the block address of every block
	// evicted by replacement (not by invalidation); hierarchies use it to
	// preserve inclusion, coherence layers to send replacement hints.
	OnEvict func(block uint64, dirty bool)
}

// New builds a cache. It panics on an inconsistent geometry, since that is a
// programming error, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.BlockBytes <= 0 || bits.OnesCount(uint(cfg.BlockBytes)) != 1 {
		panic(fmt.Sprintf("cache %s: BlockBytes %d must be a power of two", cfg.Name, cfg.BlockBytes))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: Ways must be positive", cfg.Name))
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.Ways*cfg.BlockBytes) != 0 {
		panic(fmt.Sprintf("cache %s: SizeBytes %d not a multiple of Ways*BlockBytes", cfg.Name, cfg.SizeBytes))
	}
	if cfg.Policy == nil {
		cfg.Policy = replacement.NewLRU()
	}
	c := &Cache{
		cfg:        cfg,
		sets:       cfg.SizeBytes / (cfg.Ways * cfg.BlockBytes),
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		policy:     cfg.Policy,
	}
	c.tags = make([][]uint64, c.sets)
	c.valid = make([][]bool, c.sets)
	c.dirty = make([][]bool, c.sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.dirty[i] = make([]bool, cfg.Ways)
	}
	c.policy.Reset(c.sets, cfg.Ways)
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Stats returns a snapshot of the counters: a value copy taken at call
// time, not a live view. Counters that tick after the call are not
// reflected in the returned struct; call Stats again for fresh numbers.
func (c *Cache) Stats() Stats { return c.stats }

// Policy returns the replacement policy driving this cache.
func (c *Cache) Policy() replacement.Policy { return c.policy }

// BlockAddr converts a byte address to a block address.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockShift }

func (c *Cache) setTag(block uint64) (int, uint64) {
	return int(block % uint64(c.sets)), block / uint64(c.sets)
}

func (c *Cache) lookup(set int, tag uint64) int {
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return w
		}
	}
	return -1
}

// Contains reports whether the block holding addr is cached.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.setTag(c.BlockAddr(addr))
	return c.lookup(set, tag) >= 0
}

// MarkDirty sets the dirty bit of the cached block holding addr, returning
// whether the block was present. Timing simulators use it for writes that
// hit a level above this cache.
func (c *Cache) MarkDirty(addr uint64) bool {
	set, tag := c.setTag(c.BlockAddr(addr))
	if way := c.lookup(set, tag); way >= 0 {
		c.dirty[set][way] = true
		return true
	}
	return false
}

// ClearDirty clears the dirty bit of the cached block holding addr (e.g. a
// coherence downgrade after a sharing writeback).
func (c *Cache) ClearDirty(addr uint64) bool {
	set, tag := c.setTag(c.BlockAddr(addr))
	if way := c.lookup(set, tag); way >= 0 {
		c.dirty[set][way] = false
		return true
	}
	return false
}

// Access performs one reference. It returns true on a hit. On a miss the
// block is allocated (write-allocate) after evicting a victim if needed, the
// miss cost is charged, and the predicted cost is loaded into the block.
func (c *Cache) Access(addr uint64, write bool) bool {
	block := c.BlockAddr(addr)
	set, tag := c.setTag(block)
	way := c.lookup(set, tag)
	c.stats.Accesses++
	c.policy.Access(set, tag, way >= 0)
	if way >= 0 {
		c.stats.Hits++
		c.policy.Touch(set, way)
		if write {
			c.dirty[set][way] = true
		}
		return true
	}
	c.stats.Misses++
	var mc replacement.Cost
	if c.cfg.Cost != nil {
		mc = c.cfg.Cost.MissCost(block)
		c.stats.AggCost += int64(mc)
	}
	c.fill(set, tag, mc, write)
	return false
}

// FillWithCost installs the block for addr charging and loading the given
// cost, bypassing the configured cost source. Timing simulators use it when
// the actual measured cost differs from the prediction.
func (c *Cache) FillWithCost(addr uint64, write bool, charge, predicted replacement.Cost) {
	block := c.BlockAddr(addr)
	set, tag := c.setTag(block)
	c.stats.AggCost += int64(charge)
	c.fill(set, tag, predicted, write)
}

func (c *Cache) fill(set int, tag uint64, predicted replacement.Cost, write bool) {
	c.stats.CostPaid += int64(predicted)
	w := -1
	for i := 0; i < c.cfg.Ways; i++ {
		if !c.valid[set][i] {
			w = i
			break
		}
	}
	if w < 0 {
		w = c.policy.Victim(set)
		if w < 0 || w >= c.cfg.Ways || !c.valid[set][w] {
			panic(fmt.Sprintf("cache %s: policy %s returned bad victim %d", c.cfg.Name, c.policy.Name(), w))
		}
		c.stats.Evictions++
		if c.OnEvict != nil {
			c.OnEvict(c.tags[set][w]*uint64(c.sets)+uint64(set), c.dirty[set][w])
		}
	}
	c.tags[set][w] = tag
	c.valid[set][w] = true
	c.dirty[set][w] = write
	c.policy.Fill(set, w, tag, predicted)
}

// Invalidate removes the block holding addr if present (external coherence
// action). The policy hook fires regardless, so victim-directory state (the
// ETD) is purged even for uncached blocks. It returns true if a cached block
// was invalidated, along with whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (wasCached, wasDirty bool) {
	block := c.BlockAddr(addr)
	set, tag := c.setTag(block)
	way := c.lookup(set, tag)
	c.policy.Invalidate(set, way, tag)
	if way < 0 {
		return false, false
	}
	c.stats.Invalidations++
	c.valid[set][way] = false
	wasDirty = c.dirty[set][way]
	c.dirty[set][way] = false
	return true, wasDirty
}

// ResidentBlocks returns the block addresses currently cached, for invariant
// checks in tests.
func (c *Cache) ResidentBlocks() []uint64 {
	var out []uint64
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.cfg.Ways; w++ {
			if c.valid[s][w] {
				out = append(out, c.tags[s][w]*uint64(c.sets)+uint64(s))
			}
		}
	}
	return out
}
