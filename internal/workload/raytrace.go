package workload

import (
	"math/rand"

	"costcache/internal/trace"
)

// Raytrace models the SPLASH-2 ray tracer: read-mostly shared scene data
// accessed irregularly (BSP-tree style, with hot top-level nodes), private
// per-ray state with strong locality, and a shared work queue that bounces
// between processors. The scene is first-touched in contiguous slices, so
// popular scene blocks are spread over all homes; per Table 1 the remote
// fraction is moderate (29.6%) and access is data-dependent and irregular.
type Raytrace struct {
	// SceneBlocks is the number of 64-byte blocks of shared scene data.
	SceneBlocks int
	// RaysPerProc is how many rays each processor traces.
	RaysPerProc int
	// SceneReads is how many scene blocks one ray visits.
	SceneReads int
	// PrivateRefs is how many references a ray makes to its private state.
	PrivateRefs int
	// QueueEvery is how often (in rays) a processor touches the shared work
	// queue.
	QueueEvery int
	// Procs is the processor count (the paper uses 8).
	Procs int
	// Seed controls scene-block selection and interleaving.
	Seed int64
}

// DefaultRaytrace returns the configuration used by the experiment drivers.
func DefaultRaytrace() Raytrace {
	return Raytrace{
		SceneBlocks: 16384, RaysPerProc: 6000, SceneReads: 12,
		PrivateRefs: 30, QueueEvery: 24, Procs: 8, Seed: 4,
	}
}

// Name implements Generator.
func (Raytrace) Name() string { return "Raytrace" }

// Generate implements Generator.
func (w Raytrace) Generate() *trace.Trace { return w.emit().build(w.Name()) }

func (w Raytrace) emit() *builder {
	b := newBuilder(w.Procs, w.Seed)
	slice := w.SceneBlocks / w.Procs

	// Initialization: each processor writes a contiguous slice of the scene
	// (first touch -> scene homes striped across processors).
	for p := 0; p < w.Procs; p++ {
		for s := p * slice; s < (p+1)*slice; s++ {
			b.write(p, regionScene+uint64(s)*BlockBytes)
		}
	}
	b.barrier()

	// Tracing: private state streams through a small per-proc ray buffer
	// (4 blocks, heavily reused), scene reads follow a Zipf popularity over
	// a hashed permutation of the scene so hot blocks spread across homes.
	for p := 0; p < w.Procs; p++ {
		rng := rand.New(rand.NewSource(w.Seed*1000 + int64(p)))
		zipf := newZipf(rng, 1.3, uint64(w.SceneBlocks))
		rayBase := regionRays + uint64(p)<<24
		for r := 0; r < w.RaysPerProc; r++ {
			if w.QueueEvery > 0 && r%w.QueueEvery == 0 {
				// Grab work: read-modify-write a queue block.
				q := regionQueue + uint64(r/w.QueueEvery%8)*BlockBytes
				b.read(p, q)
				b.write(p, q)
			}
			for k := 0; k < w.PrivateRefs; k++ {
				addr := rayBase + uint64((r%64)*4+(k%4))*BlockBytes
				if k%3 == 0 {
					b.write(p, addr)
				} else {
					b.read(p, addr)
				}
			}
			for k := 0; k < w.SceneReads; k++ {
				n := hashU64(zipf.pick()*0x9e3779b9+1) % uint64(w.SceneBlocks)
				b.read(p, regionScene+n*BlockBytes)
			}
		}
	}
	return b
}
