package costsim

import (
	"math"
	"testing"

	"costcache/internal/cost"
	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

func testView(t *testing.T) []trace.SampleRef {
	t.Helper()
	w := workload.Synthetic{
		Blocks: 1024, RefsPerProc: 60000, WriteFrac: 0.25, SharedFrac: 0.8,
		ZipfS: 1.3, Procs: 4, Seed: 5,
	}
	return w.Generate().SampleView(0)
}

func TestRunLRUMatchesMissCounts(t *testing.T) {
	view := testView(t)
	cfg := Default()
	src := cost.Random{Low: 1, High: 8, Fraction: 0.2, Seed: 9}
	res := Run(view, cfg, replacement.NewLRU(), src)
	counts, stats := MissCounts(view, cfg)
	if got := CostOf(counts, src); got != res.L2.AggCost {
		t.Fatalf("analytic LRU cost %d != simulated %d", got, res.L2.AggCost)
	}
	if stats.Misses != res.L2.Misses {
		t.Fatalf("miss counts differ: %d vs %d", stats.Misses, res.L2.Misses)
	}
}

func TestRunAppliesInvalidations(t *testing.T) {
	view := []trace.SampleRef{
		{Addr: 0, Op: trace.Read},
		{Addr: 0, Op: trace.Write, Remote: true}, // invalidate
		{Addr: 0, Op: trace.Read},                // must miss again
	}
	res := Run(view, Default(), replacement.NewLRU(), cost.Uniform(1))
	if res.L2.Misses != 2 || res.Invalidations != 1 {
		t.Fatalf("misses=%d invals=%d, want 2/1", res.L2.Misses, res.Invalidations)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.orDefault()
	if cfg.L2Size != 16<<10 || cfg.L2Ways != 4 || cfg.L1Size != 4<<10 || cfg.BlockBytes != 64 {
		t.Fatalf("defaults = %+v", cfg)
	}
	custom := Config{L1Size: 1 << 10, L2Size: 8 << 10, L2Ways: 2}.orDefault()
	if custom.BlockBytes != 64 || custom.L2Size != 8<<10 {
		t.Fatalf("custom = %+v", custom)
	}
}

func TestRelativeSavings(t *testing.T) {
	if RelativeSavings(0, 5) != 0 {
		t.Fatal("zero LRU cost must give zero savings")
	}
	if got := RelativeSavings(100, 80); got != 0.2 {
		t.Fatalf("savings = %v, want 0.2", got)
	}
	if got := RelativeSavings(100, 120); got != -0.2 {
		t.Fatalf("negative savings = %v, want -0.2", got)
	}
}

func TestMeasuredHAFExtremes(t *testing.T) {
	view := testView(t)
	if got := MeasuredHAF(view, 64, func(uint64) bool { return false }); got != 0 {
		t.Fatalf("all-low HAF = %v", got)
	}
	if got := MeasuredHAF(view, 64, func(uint64) bool { return true }); got != 1 {
		t.Fatalf("all-high HAF = %v", got)
	}
	if got := MeasuredHAF(nil, 64, func(uint64) bool { return true }); got != 0 {
		t.Fatalf("empty view HAF = %v", got)
	}
}

func TestRandomSweepShape(t *testing.T) {
	view := testView(t)
	pts := RandomSweep(view, Default(), []Ratio{{1, 8, "r=8"}},
		[]float64{0, 0.2, 1}, PaperPolicies(), 42)
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	// HAF 0: every block low cost, all policies behave as LRU: zero savings.
	for name, s := range pts[0].Savings {
		if s != 0 {
			t.Errorf("HAF=0: %s savings %.4f, want 0", name, s)
		}
	}
	// HAF 1: every block high cost — uniform again: zero savings.
	for name, s := range pts[2].Savings {
		if s != 0 {
			t.Errorf("HAF=1: %s savings %.4f, want 0", name, s)
		}
	}
	// Interior point: DCL must save, and the measured HAF must be near the
	// target (accesses spread over blocks).
	if pts[1].Savings["DCL"] <= 0 {
		t.Errorf("HAF=0.2: DCL savings %.4f, want > 0", pts[1].Savings["DCL"])
	}
	if math.Abs(pts[1].MeasuredHAF-0.2) > 0.1 {
		t.Errorf("measured HAF %.3f far from target 0.2", pts[1].MeasuredHAF)
	}
	if len(pts[1].Order) != 4 {
		t.Errorf("policy order = %v", pts[1].Order)
	}
}

func TestRandomSweepInfiniteRatioUpperBounds(t *testing.T) {
	// At a fixed HAF, the infinite ratio gives the maximum savings for DCL
	// (the paper: "the graphs show the theoretical upper-bound").
	view := testView(t)
	dcl := []replacement.Factory{func() replacement.Policy { return replacement.NewDCL() }}
	pts := RandomSweep(view, Default(),
		[]Ratio{{1, 4, "r=4"}, {1, 32, "r=32"}, {0, 1, "r=inf"}},
		[]float64{0.2}, dcl, 42)
	s4, s32, sInf := pts[0].Savings["DCL"], pts[1].Savings["DCL"], pts[2].Savings["DCL"]
	if !(s4 <= s32+0.02 && s32 <= sInf+0.02) {
		t.Errorf("savings not increasing with r: r4=%.4f r32=%.4f inf=%.4f", s4, s32, sInf)
	}
}

func TestFirstTouchSweep(t *testing.T) {
	w := workload.Synthetic{
		Blocks: 1024, RefsPerProc: 40000, WriteFrac: 0.25, SharedFrac: 0.7,
		ZipfS: 1.25, Procs: 4, Seed: 6,
	}
	tr := w.Generate()
	view := tr.SampleView(0)
	homes := workload.FirstTouchHomes(tr, 64)
	home := workload.HomeFunc(homes, 0)
	pts := FirstTouchSweep(view, Default(), home, 0, Table2Ratios(), PaperPolicies())
	if len(pts) != 5 {
		t.Fatalf("want 5 ratios, got %d", len(pts))
	}
	for _, pt := range pts {
		if pt.MeasuredHAF <= 0 || pt.MeasuredHAF >= 1 {
			t.Errorf("%s: remote fraction %.3f implausible", pt.Ratio.Label, pt.MeasuredHAF)
		}
		if pt.LRUCost <= 0 {
			t.Errorf("%s: LRU cost %d", pt.Ratio.Label, pt.LRUCost)
		}
		// ACL reliability: never materially worse than LRU.
		if pt.Savings["ACL"] < -0.02 {
			t.Errorf("%s: ACL savings %.4f below -2%%", pt.Ratio.Label, pt.Savings["ACL"])
		}
	}
}

func TestPaperParameterSets(t *testing.T) {
	if len(PaperRatios()) != 6 || PaperRatios()[5].Low != 0 {
		t.Fatal("PaperRatios must end with the infinite ratio")
	}
	if len(Table2Ratios()) != 5 {
		t.Fatal("Table2Ratios must have five finite ratios")
	}
	hafs := PaperHAFs()
	if len(hafs) != 13 || hafs[0] != 0 || hafs[1] != 0.01 || hafs[2] != 0.05 {
		t.Fatalf("PaperHAFs = %v", hafs)
	}
	if math.Abs(hafs[len(hafs)-1]-1.0) > 1e-9 {
		t.Fatalf("last HAF = %v, want 1.0", hafs[len(hafs)-1])
	}
	if len(PaperPolicies()) != 4 {
		t.Fatal("PaperPolicies must return GD, BCL, DCL, ACL")
	}
}

func TestCalibratedRandomHitsTarget(t *testing.T) {
	view := testView(t) // Zipf-skewed: plain per-block randomness would miss
	r := Ratio{1, 8, "r=8"}
	for _, haf := range []float64{0.05, 0.1, 0.3, 0.5, 0.9} {
		src := CalibratedRandom(view, 64, haf, r, 7)
		got := MeasuredHAF(view, 64, IsHighFunc(src, r))
		if math.Abs(got-haf) > 0.03 {
			t.Errorf("target %.2f: measured %.4f", haf, got)
		}
	}
	// Determinism.
	a := CalibratedRandom(view, 64, 0.3, r, 7)
	b := CalibratedRandom(view, 64, 0.3, r, 7)
	for blk := uint64(0); blk < 4096; blk++ {
		if a.MissCost(blk) != b.MissCost(blk) {
			t.Fatal("CalibratedRandom not deterministic")
		}
	}
}

func TestAssocSweep(t *testing.T) {
	view := testView(t)
	pts := AssocSweep(view, Default(), []int{2, 4, 8},
		Ratio{1, 8, "r=8"}, 0.2, PaperPolicies(), 42)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.LRUCost <= 0 {
			t.Errorf("%s: LRU cost %d", pt.Label, pt.LRUCost)
		}
		if len(pt.Savings) != 4 {
			t.Errorf("%s: savings %v", pt.Label, pt.Savings)
		}
	}
	if pts[0].Label != "2-way" || pts[2].Label != "8-way" {
		t.Fatalf("labels: %v %v", pts[0].Label, pts[2].Label)
	}
	// Reservations need victims: with more ways there is more room, so DCL
	// should not collapse to zero at 8-way.
	if pts[2].Savings["DCL"] <= 0 {
		t.Errorf("8-way DCL savings %.4f, want > 0", pts[2].Savings["DCL"])
	}
}

func TestSizeSweep(t *testing.T) {
	view := testView(t)
	pts := SizeSweep(view, Default(), []int{8 << 10, 16 << 10, 64 << 10},
		Ratio{1, 8, "r=8"}, 0.2, PaperPolicies(), 42)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Bigger caches miss less: LRU cost must decrease monotonically.
	if !(pts[0].LRUCost > pts[1].LRUCost && pts[1].LRUCost > pts[2].LRUCost) {
		t.Fatalf("LRU cost not decreasing with size: %d %d %d",
			pts[0].LRUCost, pts[1].LRUCost, pts[2].LRUCost)
	}
	if !(pts[0].MissRate > pts[2].MissRate) {
		t.Fatalf("miss rate not decreasing: %v vs %v", pts[0].MissRate, pts[2].MissRate)
	}
	if pts[0].Label != "8KB" {
		t.Fatalf("label %q", pts[0].Label)
	}
}

func TestRunFeedsObservers(t *testing.T) {
	// A Migrating source must see accesses and flip remote blocks to local,
	// lowering the charged cost of later misses.
	w := workload.Synthetic{
		Blocks: 512, RefsPerProc: 30000, WriteFrac: 0.2, SharedFrac: 0.9,
		ZipfS: 1.3, Procs: 4, Seed: 8,
	}
	tr := w.Generate()
	view := tr.SampleView(0)
	homes := workload.FirstTouchHomes(tr, 64)
	home := workload.HomeFunc(homes, 0)

	static := cost.FirstTouch{Home: home, Proc: 0, Low: 1, High: 8}
	mig := cost.NewMigrating(home, 0, 1, 8, 4)
	sRes := Run(view, Default(), replacement.NewLRU(), static)
	mRes := Run(view, Default(), replacement.NewLRU(), mig)
	if mig.Migrated() == 0 {
		t.Fatal("no blocks migrated: observer not wired")
	}
	if mRes.L2.AggCost >= sRes.L2.AggCost {
		t.Fatalf("migration should lower aggregate cost: %d >= %d",
			mRes.L2.AggCost, sRes.L2.AggCost)
	}
}

func TestRandomSweepSeeds(t *testing.T) {
	view := testView(t)
	st := RandomSweepSeeds(view, Default(), Ratio{1, 8, "r=8"}, 0.2,
		PaperPolicies(), []uint64{1, 2, 3, 4})
	if st.Seeds != 4 {
		t.Fatalf("seeds = %d", st.Seeds)
	}
	for _, name := range []string{"GD", "BCL", "DCL", "ACL"} {
		mean, lo, hi := st.Mean[name], st.Min[name], st.Max[name]
		if !(lo <= mean && mean <= hi) {
			t.Errorf("%s: mean %.4f outside [%.4f, %.4f]", name, mean, lo, hi)
		}
	}
	// DCL's mean savings at the sweet spot must be positive and robust.
	if st.Mean["DCL"] <= 0 || st.Min["DCL"] < -0.05 {
		t.Errorf("DCL mean %.4f min %.4f: not robust", st.Mean["DCL"], st.Min["DCL"])
	}
}

func TestRandomSweepParallelDeterminism(t *testing.T) {
	view := testView(t)
	run := func() []SweepPoint {
		return RandomSweep(view, Default(),
			[]Ratio{{1, 4, "r=4"}, {1, 8, "r=8"}},
			[]float64{0.1, 0.2, 0.3, 0.5}, PaperPolicies(), 42)
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("cells: %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Ratio.Label != b[i].Ratio.Label || a[i].TargetHAF != b[i].TargetHAF {
			t.Fatalf("cell %d order differs", i)
		}
		if a[i].LRUCost != b[i].LRUCost {
			t.Fatalf("cell %d LRU cost differs", i)
		}
		for k, v := range a[i].Savings {
			if b[i].Savings[k] != v {
				t.Fatalf("cell %d policy %s differs across runs", i, k)
			}
		}
	}
}
