package client_test

import (
	"encoding/binary"
	"testing"
	"time"

	"costcache/internal/client"
	"costcache/internal/engine"
	"costcache/internal/obs"
	"costcache/internal/resilience"
	"costcache/internal/server"
)

// startNode boots one single-namespace server for ring tests.
func startNode(t *testing.T) (*server.Server, *engine.Engine) {
	t.Helper()
	// Roomy geometry: the sticky-routing test re-reads its keys in insertion
	// order, which is LRU's worst case — any set holding more keys than ways
	// thrashes and every re-read in it misses. Vnode placement depends on
	// the OS-assigned ports, so a node's share (and thus its keys-per-set
	// load) varies per run; enough sets keeps overfull sets improbable.
	eng := engine.New(engine.Config{Shards: 2, Sets: 1024, Ways: 4})
	s, err := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		Namespaces: []*server.Namespace{{Name: "a", Engine: eng}},
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatalf("server.Start: %v", err)
	}
	t.Cleanup(s.Close)
	return s, eng
}

func TestRingSpreadsTraffic(t *testing.T) {
	var addrs []string
	var engines []*engine.Engine
	for i := 0; i < 3; i++ {
		s, e := startNode(t)
		addrs = append(addrs, s.Addr().String())
		engines = append(engines, e)
	}
	r, err := client.NewRing(client.RingConfig{
		Addrs:  addrs,
		Client: client.Config{Timeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	defer r.Close()

	const ops = 600
	for k := uint64(0); k < ops; k++ {
		res, err := r.GetOrLoad("a", k, 3)
		if err != nil {
			t.Fatalf("getorload %d: %v", k, err)
		}
		if binary.BigEndian.Uint64(res.Value) != k {
			t.Fatalf("key %d: wrong value", k)
		}
	}
	var total int64
	for i, e := range engines {
		st := e.Stats()
		n := st.Hits + st.Misses + st.Coalesced
		if n == 0 {
			t.Errorf("node %d received no traffic", i)
		}
		total += n
	}
	if total != ops {
		t.Fatalf("nodes served %d ops, want %d", total, ops)
	}

	// Routing is sticky: re-reading the same keys mostly hits (a few may
	// have been evicted from full sets — the cache is set-associative).
	hits := 0
	for k := uint64(0); k < ops; k++ {
		res, err := r.GetOrLoad("a", k, 3)
		if err != nil {
			t.Fatalf("re-read %d: %v", k, err)
		}
		if res.Hit {
			hits++
		}
	}
	if hits < ops*8/10 {
		t.Fatalf("only %d/%d re-reads hit; routing is not sticky", hits, ops)
	}
}

// TestRingConsistency asserts the consistent-hashing contract: a ring over
// a subset of the same addresses agrees with the full ring on every key the
// subset still owns, so removing a node only remaps that node's arcs.
func TestRingConsistency(t *testing.T) {
	var addrs []string
	for i := 0; i < 3; i++ {
		s, _ := startNode(t)
		addrs = append(addrs, s.Addr().String())
	}
	full, err := client.NewRing(client.RingConfig{Addrs: addrs, Client: client.Config{Timeout: time.Second}})
	if err != nil {
		t.Fatalf("full ring: %v", err)
	}
	defer full.Close()
	sub, err := client.NewRing(client.RingConfig{Addrs: addrs[:2], Client: client.Config{Timeout: time.Second}})
	if err != nil {
		t.Fatalf("sub ring: %v", err)
	}
	defer sub.Close()

	moved := 0
	for k := uint64(0); k < 4000; k++ {
		f := full.Pick(k)
		s := sub.Pick(k)
		if f == 2 {
			continue // node 2's keys must move somewhere; anywhere is fine
		}
		if f != s {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys owned by surviving nodes changed owner when node 2 left", moved)
	}
}

// TestRingBreakerFailover kills one node, lets its breaker trip on
// transport errors, and asserts its keys fail over to the successor while
// the other nodes keep serving untouched.
func TestRingBreakerFailover(t *testing.T) {
	var addrs []string
	var servers []*server.Server
	for i := 0; i < 3; i++ {
		s, _ := startNode(t)
		addrs = append(addrs, s.Addr().String())
		servers = append(servers, s)
	}
	reg := obs.NewRegistry()
	res := resilience.New(resilience.Config{
		BreakerRate: 0.5, BreakerWindow: 8, BreakerMin: 4, BreakerCooldown: 1 << 30,
	}, reg)
	r, err := client.NewRing(client.RingConfig{
		Addrs:      addrs,
		Client:     client.Config{Timeout: time.Second},
		Resilience: res,
	})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	defer r.Close()

	// Find keys owned by each node.
	keysOf := func(node, n int) []uint64 {
		var ks []uint64
		for k := uint64(0); len(ks) < n; k++ {
			if r.Pick(k) == node {
				ks = append(ks, k)
			}
		}
		return ks
	}
	victimKeys := keysOf(1, 16)

	servers[1].Close()

	// Drive the dead node until its breaker trips (transport errors), then
	// until failover answers. Every request either errors (pre-trip) or is
	// served by the successor (post-trip).
	deadline := time.Now().Add(10 * time.Second)
	served := 0
	for time.Now().Before(deadline) && served < len(victimKeys) {
		served = 0
		for _, k := range victimKeys {
			if _, err := r.GetOrLoad("a", k, 1); err == nil {
				served++
			}
		}
	}
	if served < len(victimKeys) {
		t.Fatalf("only %d/%d keys of the dead node served via failover", served, len(victimKeys))
	}
	if res.Opened() == 0 {
		t.Fatal("dead node's breaker never opened")
	}

	// Healthy nodes are unaffected.
	for _, k := range keysOf(0, 8) {
		if _, err := r.GetOrLoad("a", k, 1); err != nil {
			t.Fatalf("healthy node 0 key %d: %v", k, err)
		}
	}
}

// TestPoolRedial breaks a pooled connection and asserts the next request
// redials the slot instead of failing forever.
func TestPoolRedial(t *testing.T) {
	s, _ := startNode(t)
	c, err := client.Dial(client.Config{Addr: s.Addr().String(), Conns: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	// Tear the socket down under the client.
	c.Close()
	// Closed pool slots redial lazily on the next pick.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after close: %v (pool should redial)", err)
	}
}
