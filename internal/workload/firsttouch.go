package workload

import "costcache/internal/trace"

// FirstTouchHomes assigns each block referenced in the trace to the memory
// of the first processor that touches it — the placement policy the paper
// uses both for the first-touch cost mapping (Section 3.3) and the CC-NUMA
// evaluation (Section 4.2).
func FirstTouchHomes(t *trace.Trace, blockBytes int) map[uint64]int16 {
	homes := make(map[uint64]int16)
	for _, r := range t.Refs {
		b := r.Addr / uint64(blockBytes)
		if _, ok := homes[b]; !ok {
			homes[b] = r.Proc
		}
	}
	return homes
}

// HomeFunc wraps a home map in a lookup function; blocks never touched fall
// back to def (home 0 is a safe default: it only affects blocks absent from
// the trace).
func HomeFunc(homes map[uint64]int16, def int16) func(block uint64) int16 {
	return func(block uint64) int16 {
		if h, ok := homes[block]; ok {
			return h
		}
		return def
	}
}
