package tsdb

import (
	"time"
)

// QueryKind selects how a Query combines windowed series.
type QueryKind int

const (
	// Rate is sum(Num deltas over the window) / window seconds × Scale.
	Rate QueryKind = iota
	// Ratio is sum(Num deltas) / sum(Den deltas) × Scale over the window
	// (undefined — ok=false — when the denominator is zero).
	Ratio
	// Skew groups the Num base names' series by their label block (the
	// engine's per-shard labels), computes each group's share of the window
	// total, and returns max share / uniform share: 1.0 is perfectly
	// balanced, ≥2 matches the hot-shard detector's notion of hot.
	Skew
	// Quantile is the windowed q-quantile upper bound of the histogram
	// named Num[0], in the histogram's native unit × Scale.
	Quantile
	// SpreadRatio groups both Num and Den base names' series by label block
	// (the federation's per-node labels), computes each group's Num/Den
	// ratio over the window, and returns max ratio − min ratio: 0 means
	// every group behaves identically, and a large spread singles out an
	// outlier group. Undefined (ok=false) with fewer than two groups whose
	// denominator is nonzero.
	SpreadRatio
)

// Query is a derived windowed signal over the store. Num and Den name
// metrics by base name: every label variant (engine_hits{shard="3"}, ...)
// is aggregated in.
type Query struct {
	Kind QueryKind
	Num  []string
	Den  []string // Ratio only
	Q    float64  // Quantile only, in [0, 1]
	// Scale multiplies the result (0 means 1) — e.g. 1e-9 turns a
	// nanoseconds-per-second rate into a share of one core.
	Scale float64
}

// window resolves the trailing window of completed buckets for resolution
// ri: buckets [from, to] inclusive, where a bucket is complete once its end
// time is at or before the last sample time. ok=false when no completed
// bucket is available.
func (s *Store) window(ri int, d time.Duration) (from, to int64, ok bool) {
	if s.samples == 0 || s.cur[ri] < 0 {
		return 0, 0, false
	}
	step := int64(s.res[ri].Step)
	want := int64(d) / step
	if want < 1 {
		want = 1
	}
	// Last bucket whose end (to+1)·step is covered by the last sample.
	to = s.lastNano/step - 1
	if to > s.cur[ri] {
		to = s.cur[ri]
	}
	from = to - want + 1
	if from < s.oldest[ri] {
		from = s.oldest[ri]
	}
	if to < from {
		return 0, 0, false
	}
	return from, to, true
}

// sumBase adds up the window deltas of every series whose base name is
// base (mu held).
func (s *Store) sumBase(ri int, from, to int64, base string) int64 {
	var sum int64
	slots := int64(s.res[ri].Slots)
	for _, cs := range s.clist {
		if cs.base != base {
			continue
		}
		for b := from; b <= to; b++ {
			sum += cs.rings[ri][int(b%slots)]
		}
	}
	return sum
}

// Value evaluates q over the trailing window d of resolution ri, using
// completed buckets only. covered is how much of d the available buckets
// span — callers needing a fully populated window (burn-rate rules) check
// covered >= d. ok is false when the window holds no data or the value is
// undefined (zero denominator, empty histogram window).
func (s *Store) Value(q Query, ri int, d time.Duration) (v float64, covered time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.valueLocked(q, ri, d)
}

func (s *Store) valueLocked(q Query, ri int, d time.Duration) (float64, time.Duration, bool) {
	from, to, ok := s.window(ri, d)
	if !ok {
		return 0, 0, false
	}
	step := s.res[ri].Step
	covered := time.Duration(to-from+1) * step
	scale := q.Scale
	if scale == 0 {
		scale = 1
	}
	switch q.Kind {
	case Rate:
		var sum int64
		for _, base := range q.Num {
			sum += s.sumBase(ri, from, to, base)
		}
		return float64(sum) / covered.Seconds() * scale, covered, true
	case Ratio:
		var num, den int64
		for _, base := range q.Num {
			num += s.sumBase(ri, from, to, base)
		}
		for _, base := range q.Den {
			den += s.sumBase(ri, from, to, base)
		}
		if den == 0 {
			return 0, covered, false
		}
		return float64(num) / float64(den) * scale, covered, true
	case Skew:
		v, ok := s.skewLocked(ri, from, to, q.Num)
		return v * scale, covered, ok
	case Quantile:
		v, ok := s.quantileLocked(ri, from, to, q.Num[0], q.Q)
		return float64(v) * scale, covered, ok
	case SpreadRatio:
		v, ok := s.spreadLocked(ri, from, to, q.Num, q.Den)
		return v * scale, covered, ok
	}
	return 0, covered, false
}

// spreadLocked computes max − min of per-label-group Num/Den ratios over
// [from, to]. Groups whose denominator is zero over the window are skipped
// (an idle node is unknown, not an outlier). The scratch maps persist across
// calls so the steady state does not allocate.
func (s *Store) spreadLocked(ri int, from, to int64, num, den []string) (float64, bool) {
	clear(s.spreadNum)
	clear(s.spreadDen)
	slots := int64(s.res[ri].Slots)
	accum := func(bases []string, into map[string]float64) {
		for _, cs := range s.clist {
			match := false
			for _, b := range bases {
				if cs.base == b {
					match = true
					break
				}
			}
			if !match {
				continue
			}
			var sum int64
			for b := from; b <= to; b++ {
				sum += cs.rings[ri][int(b%slots)]
			}
			into[cs.label] += float64(sum)
		}
	}
	accum(num, s.spreadNum)
	accum(den, s.spreadDen)
	groups := 0
	var min, max float64
	for label, d := range s.spreadDen {
		if d <= 0 {
			continue
		}
		r := s.spreadNum[label] / d
		if groups == 0 || r < min {
			min = r
		}
		if groups == 0 || r > max {
			max = r
		}
		groups++
	}
	if groups < 2 {
		return 0, false
	}
	return max - min, true
}

// skewLocked computes max label-group share / uniform share for the given
// base names over [from, to]. The scratch map persists across calls so the
// steady state does not allocate.
func (s *Store) skewLocked(ri int, from, to int64, bases []string) (float64, bool) {
	clear(s.skew)
	slots := int64(s.res[ri].Slots)
	var total float64
	for _, cs := range s.clist {
		match := false
		for _, b := range bases {
			if cs.base == b {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		var sum int64
		for b := from; b <= to; b++ {
			sum += cs.rings[ri][int(b%slots)]
		}
		s.skew[cs.label] += float64(sum)
		total += float64(sum)
	}
	groups := len(s.skew)
	if groups == 0 || total <= 0 {
		return 0, false
	}
	var max float64
	for _, v := range s.skew {
		if v > max {
			max = v
		}
	}
	return (max / total) * float64(groups), true
}

// quantileLocked computes the windowed q-quantile upper bound of the
// histogram base name over [from, to], summing label variants. Matches
// obs.HistogramSnapshot.Quantile semantics on the window's bucket deltas.
func (s *Store) quantileLocked(ri int, from, to int64, base string, q float64) (int64, bool) {
	slots := int64(s.res[ri].Slots)
	var bounds []int64
	for i := range s.qscratch {
		s.qscratch[i] = 0
	}
	var count int64
	for _, hs := range s.hlist {
		if hs.base != base {
			continue
		}
		bounds = hs.bounds
		nb := len(hs.bounds) + 1
		for j := 0; j < nb; j++ {
			ring := hs.rings[ri][j]
			for b := from; b <= to; b++ {
				s.qscratch[j] += ring[int(b%slots)]
			}
		}
		for b := from; b <= to; b++ {
			count += hs.rings[ri][nb][int(b%slots)]
		}
	}
	if bounds == nil || count == 0 || len(bounds) == 0 {
		return 0, false
	}
	rank := int64(q * float64(count))
	if rank >= count {
		rank = count - 1
	}
	var cum int64
	for i := 0; i <= len(bounds); i++ {
		cum += s.qscratch[i]
		if rank < cum {
			if i < len(bounds) {
				return bounds[i], true
			}
			return bounds[len(bounds)-1], true
		}
	}
	return bounds[len(bounds)-1], true
}

// SeriesPoints renders q per completed bucket over the trailing n buckets
// of resolution ri, oldest first, along with the end time of the last
// bucket. Buckets where the value is undefined render as 0. The render path
// may allocate; it is not part of the sampling fast path.
func (s *Store) SeriesPoints(q Query, ri, n int) (points []float64, end time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	step := s.res[ri].Step
	from, to, ok := s.window(ri, time.Duration(n)*step)
	if !ok {
		return nil, time.Time{}
	}
	points = make([]float64, 0, to-from+1)
	for b := from; b <= to; b++ {
		// Evaluate the query over the single bucket b by shrinking the
		// window to it.
		v, _, _ := s.bucketValue(q, ri, b)
		points = append(points, v)
	}
	return points, time.Unix(0, (to+1)*int64(step))
}

// bucketValue evaluates q over exactly bucket b (mu held).
func (s *Store) bucketValue(q Query, ri int, b int64) (float64, time.Duration, bool) {
	step := s.res[ri].Step
	scale := q.Scale
	if scale == 0 {
		scale = 1
	}
	switch q.Kind {
	case Rate:
		var sum int64
		for _, base := range q.Num {
			sum += s.sumBase(ri, b, b, base)
		}
		return float64(sum) / step.Seconds() * scale, step, true
	case Ratio:
		var num, den int64
		for _, base := range q.Num {
			num += s.sumBase(ri, b, b, base)
		}
		for _, base := range q.Den {
			den += s.sumBase(ri, b, b, base)
		}
		if den == 0 {
			return 0, step, false
		}
		return float64(num) / float64(den) * scale, step, true
	case Skew:
		v, ok := s.skewLocked(ri, b, b, q.Num)
		return v * scale, step, ok
	case Quantile:
		v, ok := s.quantileLocked(ri, b, b, q.Num[0], q.Q)
		return float64(v) * scale, step, ok
	case SpreadRatio:
		v, ok := s.spreadLocked(ri, b, b, q.Num, q.Den)
		return v * scale, step, ok
	}
	return 0, step, false
}

// Signal is a named standard query.
type Signal struct {
	Name  string
	Query Query
}

// engineOps are the engine counters that together count every request.
var engineOps = []string{"engine_hits", "engine_misses", "engine_coalesced"}

// StandardSignals returns the derived signals every live-telemetry consumer
// shares — the /debug/timeseries payload, the default alert rules and the
// cachetop panels all draw from this set, keyed by these names.
func StandardSignals() []Signal {
	return []Signal{
		{"ops_per_s", Query{Kind: Rate, Num: engineOps}},
		{"hit_rate", Query{Kind: Ratio, Num: []string{"engine_hits"}, Den: []string{"engine_hits", "engine_misses"}}},
		{"miss_ratio", Query{Kind: Ratio, Num: []string{"engine_misses"}, Den: []string{"engine_hits", "engine_misses"}}},
		{"cost_per_access", Query{Kind: Ratio, Num: []string{"engine_cost_paid"}, Den: []string{"engine_hits", "engine_misses"}}},
		{"cost_per_s", Query{Kind: Rate, Num: []string{"engine_cost_paid"}}},
		{"evictions_per_s", Query{Kind: Rate, Num: []string{"engine_evictions"}}},
		{"coalesced_per_s", Query{Kind: Rate, Num: []string{"engine_coalesced"}}},
		// Nanoseconds of lock wait per second, scaled to a share of one core.
		{"lock_wait_share", Query{Kind: Rate, Num: []string{"engine_lock_wait_ns"}, Scale: 1e-9}},
		{"shard_skew", Query{Kind: Skew, Num: engineOps}},
		{"latency_p50_ns", Query{Kind: Quantile, Num: []string{"request_latency_ns"}, Q: 0.50}},
		{"latency_p95_ns", Query{Kind: Quantile, Num: []string{"request_latency_ns"}, Q: 0.95}},
		{"latency_p99_ns", Query{Kind: Quantile, Num: []string{"request_latency_ns"}, Q: 0.99}},
		// Degraded-mode serving (internal/resilience): all-zero series on
		// engines without a resilience config, so healthy dashboards and
		// alert evaluations stay quiet.
		{"shed_share", Query{Kind: Ratio, Num: []string{"engine_shed"}, Den: engineOps}},
		{"stale_per_s", Query{Kind: Rate, Num: []string{"engine_stale_served"}}},
		{"breaker_opens_per_s", Query{Kind: Rate, Num: []string{"engine_breaker_opened"}}},
		// Serving tier (internal/server): all-zero series on in-process
		// engines, so embedded deployments see quiet signals, not gaps.
		{"conns_per_s", Query{Kind: Rate, Num: []string{"server_conns_accepted"}}},
		{"server_shed_share", Query{Kind: Ratio, Num: []string{"server_shed"}, Den: []string{"server_frames_in"}}},
	}
}
