// Package fault is the deterministic fault-injection subsystem: a seed-driven
// fault Plan (JSON-loadable or generated from a named scenario) describes
// transient and persistent degradations of the simulated machine — per-link
// slowdowns and outages (with NACK-and-retry plus capped exponential backoff
// in the mesh), hot directory and memory-bank windows in the coherence
// engine, and whole-node latency degradation windows in the simulator — and
// an Injector compiles the plan into cheap point queries the timing models
// consult. A no-progress Watchdog fails a run with a diagnostic dump when
// simulated time and the event count both stop advancing.
//
// Everything is a pure function of the plan and the queried time, so two runs
// with the same seed and plan are bit-identical, and an empty plan is
// bit-identical with an un-faulted run. See docs/FAULTS.md for the JSON
// schema and injection points.
package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Window is a simulated-time activity interval in nanoseconds. A zero
// PeriodNs means one-shot: active during [StartNs, EndNs). A positive
// PeriodNs repeats the interval: active whenever
// (t-StartNs) mod PeriodNs < EndNs-StartNs (and t >= StartNs), which makes
// plans independent of the run's total length.
type Window struct {
	StartNs  int64 `json:"start_ns"`
	EndNs    int64 `json:"end_ns"`
	PeriodNs int64 `json:"period_ns,omitempty"`
}

// Active reports whether the window covers simulated time t.
func (w Window) Active(t int64) bool {
	if t < w.StartNs {
		return false
	}
	if w.PeriodNs <= 0 {
		return t < w.EndNs
	}
	return (t-w.StartNs)%w.PeriodNs < w.EndNs-w.StartNs
}

// End returns the end of the active interval covering t (the time the fault
// clears). Callers must only use it when Active(t) is true.
func (w Window) End(t int64) int64 {
	if w.PeriodNs <= 0 {
		return w.EndNs
	}
	k := (t - w.StartNs) / w.PeriodNs
	return w.StartNs + k*w.PeriodNs + (w.EndNs - w.StartNs)
}

func (w Window) validate(kind string) error {
	if w.EndNs <= w.StartNs {
		return fmt.Errorf("fault: %s window [%d,%d) is empty", kind, w.StartNs, w.EndNs)
	}
	if w.StartNs < 0 {
		return fmt.Errorf("fault: %s window starts before t=0", kind)
	}
	if w.PeriodNs > 0 && w.PeriodNs < w.EndNs-w.StartNs {
		return fmt.Errorf("fault: %s window period %d shorter than its duration", kind, w.PeriodNs)
	}
	return nil
}

// LinkFault degrades mesh links. Node selects the link's source node (-1 for
// every node); Dir is east, west, north, south or any. During the window an
// Outage link NACKs messages, which retry with capped exponential backoff;
// otherwise Slowdown (> 1) multiplies the link's occupancy time.
type LinkFault struct {
	Node int    `json:"node"`
	Dir  string `json:"dir"`
	Window
	Slowdown float64 `json:"slowdown,omitempty"`
	Outage   bool    `json:"outage,omitempty"`
}

// HotFault makes a node-local resource (home directory engine or a memory
// bank) slower: ExtraNs is added to every access occupancy during the
// window. Node -1 selects every node; for banks, Bank -1 selects every bank.
type HotFault struct {
	Node int `json:"node"`
	Bank int `json:"bank,omitempty"`
	Window
	ExtraNs int64 `json:"extra_ns"`
}

// NodeFault degrades a whole node: every L2 miss the node issues during the
// window pays ExtraNs before the coherence transaction starts (a slow local
// pipeline, thermal throttling, a sick NIC). Node -1 selects every node.
type NodeFault struct {
	Node int `json:"node"`
	Window
	ExtraNs int64 `json:"extra_ns"`
}

// Retry tunes the NACK-and-retry backoff of outage links: the first retry
// waits BaseNs, each further retry doubles the wait up to CapNs.
type Retry struct {
	BaseNs int64 `json:"base_ns"`
	CapNs  int64 `json:"cap_ns"`
}

// DefaultRetry is used when a plan leaves Retry zero: first retry after
// 50 ns, doubling to a 3200 ns cap.
func DefaultRetry() Retry { return Retry{BaseNs: 50, CapNs: 3200} }

// Plan is a complete fault schedule. The zero value is the empty plan, which
// injects nothing and is guaranteed bit-identical with an un-faulted run.
type Plan struct {
	// Name labels the plan in tables and manifests (scenario name or file).
	Name string `json:"name,omitempty"`
	// Seed records the generator seed for scenario-built plans.
	Seed  uint64      `json:"seed,omitempty"`
	Links []LinkFault `json:"links,omitempty"`
	Dirs  []HotFault  `json:"dirs,omitempty"`
	Banks []HotFault  `json:"banks,omitempty"`
	Nodes []NodeFault `json:"nodes,omitempty"`
	Retry Retry       `json:"retry,omitempty"`
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || len(p.Links)+len(p.Dirs)+len(p.Banks)+len(p.Nodes) == 0
}

// retry returns the effective backoff parameters.
func (p *Plan) retry() Retry {
	r := p.Retry
	if r.BaseNs <= 0 {
		r.BaseNs = DefaultRetry().BaseNs
	}
	if r.CapNs < r.BaseNs {
		r.CapNs = DefaultRetry().CapNs
		if r.CapNs < r.BaseNs {
			r.CapNs = r.BaseNs
		}
	}
	return r
}

// Validate checks the plan's structural invariants. A valid plan can always
// make progress: outage windows are finite (or periodic with idle gaps) and
// backoff is strictly positive, so every NACKed message eventually transits.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, l := range p.Links {
		if err := l.validate(fmt.Sprintf("links[%d]", i)); err != nil {
			return err
		}
		switch l.Dir {
		case "east", "west", "north", "south", "any":
		default:
			return fmt.Errorf("fault: links[%d] dir %q (want east|west|north|south|any)", i, l.Dir)
		}
		if !l.Outage && l.Slowdown <= 1 {
			return fmt.Errorf("fault: links[%d] needs outage or slowdown > 1", i)
		}
		if l.Outage && l.PeriodNs <= 0 && l.EndNs-l.StartNs > 1<<40 {
			return fmt.Errorf("fault: links[%d] outage longer than 2^40 ns would stall the run", i)
		}
		if l.Outage && l.PeriodNs > 0 && l.PeriodNs == l.EndNs-l.StartNs {
			return fmt.Errorf("fault: links[%d] periodic outage with no idle gap never clears", i)
		}
		if l.Node < -1 {
			return fmt.Errorf("fault: links[%d] node %d", i, l.Node)
		}
	}
	for i, d := range p.Dirs {
		if err := d.validate(fmt.Sprintf("dirs[%d]", i)); err != nil {
			return err
		}
		if d.ExtraNs <= 0 {
			return fmt.Errorf("fault: dirs[%d] needs extra_ns > 0", i)
		}
		if d.Node < -1 {
			return fmt.Errorf("fault: dirs[%d] node %d", i, d.Node)
		}
	}
	for i, b := range p.Banks {
		if err := b.validate(fmt.Sprintf("banks[%d]", i)); err != nil {
			return err
		}
		if b.ExtraNs <= 0 {
			return fmt.Errorf("fault: banks[%d] needs extra_ns > 0", i)
		}
		if b.Node < -1 || b.Bank < -1 {
			return fmt.Errorf("fault: banks[%d] node %d bank %d", i, b.Node, b.Bank)
		}
	}
	for i, n := range p.Nodes {
		if err := n.validate(fmt.Sprintf("nodes[%d]", i)); err != nil {
			return err
		}
		if n.ExtraNs <= 0 {
			return fmt.Errorf("fault: nodes[%d] needs extra_ns > 0", i)
		}
		if n.Node < -1 {
			return fmt.Errorf("fault: nodes[%d] node %d", i, n.Node)
		}
	}
	if p.Retry.BaseNs < 0 || p.Retry.CapNs < 0 {
		return fmt.Errorf("fault: negative retry backoff")
	}
	return nil
}

// Hash returns the hex SHA-256 of the plan's canonical JSON encoding, the
// identity manifests record so two runs can be compared fault-for-fault. The
// empty plan hashes to "".
func (p *Plan) Hash() string {
	if p.Empty() {
		return ""
	}
	data, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("fault: hash encoding: %v", err)) // plan types are always encodable
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ParseJSON decodes and validates a plan document.
func ParseJSON(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: %v", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile loads and validates a plan from a JSON file.
func ReadFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if p.Name == "" {
		p.Name = path
	}
	return p, nil
}

// WriteFile marshals the plan (indented, trailing newline) to path.
func (p *Plan) WriteFile(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
