package replacement

// ByName returns a factory for a policy named as in the paper's tables:
// LRU, GD, BCL, DCL, ACL, the aliased variants DCL-a4 / ACL-a4 (any
// positive bit count after "-a"), the BCL depreciation ablation BCL-f1 /
// BCL-f4 (any positive factor after "-f"; the paper's BCL is BCL-f2), and
// Random. ok is false for unknown names.
func ByName(name string) (Factory, bool) {
	switch name {
	case "LRU":
		return func() Policy { return NewLRU() }, true
	case "GD":
		return func() Policy { return NewGD() }, true
	case "BCL":
		return func() Policy { return NewBCL() }, true
	case "DCL":
		return func() Policy { return NewDCL() }, true
	case "ACL":
		return func() Policy { return NewACL() }, true
	case "Random":
		return func() Policy { return NewRandom(1) }, true
	case "PLRU":
		return func() Policy { return NewPLRU() }, true
	case "CS-PLRU":
		return func() Policy { return NewCSPLRU(0) }, true
	case "LFU":
		return func() Policy { return NewLFU() }, true
	case "SLRU":
		return func() Policy { return NewSLRU() }, true
	}
	if bits, base, ok := parseAliased(name); ok {
		switch base {
		case "DCL":
			return func() Policy { return NewDCLWith(Options{TagBits: bits}) }, true
		case "ACL":
			return func() Policy { return NewACLWith(Options{TagBits: bits}) }, true
		}
	}
	if factor, ok := parseSuffixInt(name, "BCL-f"); ok {
		return func() Policy { return NewBCLWithFactor(factor) }, true
	}
	return nil, false
}

// parseAliased decodes "DCL-a4" style names.
func parseAliased(name string) (bits int, base string, ok bool) {
	for _, b := range []string{"DCL", "ACL"} {
		if n, ok := parseSuffixInt(name, b+"-a"); ok && n < 64 {
			return n, b, true
		}
	}
	return 0, "", false
}

// parseSuffixInt decodes a positive decimal suffix after prefix ("BCL-f2"
// with prefix "BCL-f" yields 2).
func parseSuffixInt(name, prefix string) (int, bool) {
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return 0, false
	}
	n := 0
	for _, c := range name[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, n > 0
}

// Names lists the registry's canonical policy names.
func Names() []string {
	return []string{"LRU", "GD", "BCL", "BCL-f1", "DCL", "ACL", "DCL-a4", "ACL-a4", "Random", "PLRU", "CS-PLRU", "LFU", "SLRU"}
}
