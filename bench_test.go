// Benchmarks that regenerate each table and figure of the paper (scaled so
// a -bench=. run finishes in minutes) plus the ablation studies DESIGN.md
// calls out. Absolute wall-clock numbers measure the SIMULATOR; the
// replacement-quality metrics the paper reports are printed via b.ReportMetric
// (savings_pct, reduction_pct, same_lat_pct) so `go test -bench` output
// documents the reproduced results alongside the timing.
package costcache_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"costcache/internal/costsim"
	"costcache/internal/engine"
	"costcache/internal/hwcost"
	"costcache/internal/numasim"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/trace"
	"costcache/internal/workload"
)

// benchGens returns scaled-down benchmark generators for the bench harness.
// LU stays at its default geometry: it is already the smallest workload and
// its behaviour is sensitive to the block-column layout.
func benchGens() []workload.Generator {
	b := workload.DefaultBarnes()
	b.Bodies, b.Iterations = 2048, 2
	o := workload.DefaultOcean()
	o.Iterations = 2
	r := workload.DefaultRaytrace()
	r.RaysPerProc = 1500
	return []workload.Generator{b, workload.DefaultLU(), o, r}
}

var (
	benchOnce  sync.Once
	benchViews map[string][]trace.SampleRef
	benchProgs map[string]*workload.Program
	benchHomes map[string]func(uint64) int16
)

func benchData() {
	benchOnce.Do(func() {
		benchViews = map[string][]trace.SampleRef{}
		benchProgs = map[string]*workload.Program{}
		benchHomes = map[string]func(uint64) int16{}
		for _, g := range benchGens() {
			tr := g.Generate()
			benchViews[g.Name()] = tr.SampleView(0)
			benchHomes[g.Name()] = workload.HomeFunc(workload.FirstTouchHomes(tr, 64), 0)
			p, _ := workload.ProgramOf(g)
			benchProgs[g.Name()] = p
		}
	})
}

// BenchmarkTable1 regenerates the benchmark-characteristics table: trace
// generation plus summary statistics.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, g := range benchGens() {
			tr := g.Generate()
			st := tr.Summarize(workload.BlockBytes)
			homes := workload.FirstTouchHomes(tr, workload.BlockBytes)
			rf := tr.RemoteFraction(0, workload.BlockBytes, workload.HomeFunc(homes, 0))
			if st.Refs == 0 || rf < 0 {
				b.Fatal("bad trace")
			}
		}
	}
}

// BenchmarkFigure3 runs one representative Figure 3 cell grid (r=8, five
// HAF points, all four policies) per benchmark and reports DCL's peak
// savings.
func BenchmarkFigure3(b *testing.B) {
	benchData()
	for name, view := range benchViews {
		view := view
		b.Run(name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				pts := costsim.RandomSweep(view, costsim.Default(),
					[]costsim.Ratio{{Low: 1, High: 8, Label: "r=8"}},
					[]float64{0.05, 0.1, 0.2, 0.3, 0.5},
					costsim.PaperPolicies(), 42)
				peak = 0
				for _, pt := range pts {
					if s := pt.Savings["DCL"]; s > peak {
						peak = s
					}
				}
			}
			b.ReportMetric(peak*100, "peak_savings_pct")
		})
	}
}

// BenchmarkTable2 runs the first-touch sweep per benchmark and reports
// DCL's savings at r=8.
func BenchmarkTable2(b *testing.B) {
	benchData()
	for name, view := range benchViews {
		view, home := view, benchHomes[name]
		b.Run(name, func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				pts := costsim.FirstTouchSweep(view, costsim.Default(), home, 0,
					[]costsim.Ratio{{Low: 1, High: 8, Label: "r=8"}}, costsim.PaperPolicies())
				s = pts[0].Savings["DCL"]
			}
			b.ReportMetric(s*100, "savings_pct")
		})
	}
}

// BenchmarkTable3 regenerates the consecutive-miss latency matrix on the
// hint-free protocol and reports the same-latency fraction (paper: ~93%).
func BenchmarkTable3(b *testing.B) {
	benchData()
	prog := benchProgs["Barnes"]
	var f float64
	for i := 0; i < b.N; i++ {
		cfg := numasim.DefaultConfig(nil)
		cfg.Protocol.Hints = false
		cfg.CollectTable3 = true
		res := numasim.Run(prog, cfg)
		f = res.Table3.SameLatencyFraction()
	}
	b.ReportMetric(f*100, "same_lat_pct")
}

// BenchmarkTable4 measures the calibration path (trivially cheap; included
// so every table has a bench target).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, rc, rd := numasim.CalibrationLatencies(numasim.DefaultConfig(nil))
		if l != 120 || rc != 380 || rd < 400 {
			b.Fatal("calibration drifted")
		}
	}
}

// BenchmarkTable5 runs the execution-driven simulation per benchmark (LRU
// vs DCL at 500 MHz) and reports the execution-time reduction.
func BenchmarkTable5(b *testing.B) {
	benchData()
	for name, prog := range benchProgs {
		prog := prog
		b.Run(name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				base := numasim.Run(prog, numasim.DefaultConfig(nil))
				dcl := numasim.Run(prog, numasim.DefaultConfig(
					func() replacement.Policy { return replacement.NewDCL() }))
				red = 100 * float64(base.ExecNs-dcl.ExecNs) / float64(base.ExecNs)
			}
			b.ReportMetric(red, "reduction_pct")
		})
	}
}

// BenchmarkHWCost evaluates the Section 5 overhead model.
func BenchmarkHWCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, alg := range hwcost.Algorithms() {
			if _, err := hwcost.OverheadPercent(alg, hwcost.Paper8Bit()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPolicyAccess measures per-reference overhead of each policy on
// the trace-driven simulator — the software analogue of the paper's claim
// that the algorithms barely affect cache cycle time.
func BenchmarkPolicyAccess(b *testing.B) {
	benchData()
	view := benchViews["Raytrace"]
	factories := map[string]replacement.Factory{
		"LRU": func() replacement.Policy { return replacement.NewLRU() },
		"GD":  func() replacement.Policy { return replacement.NewGD() },
		"BCL": func() replacement.Policy { return replacement.NewBCL() },
		"DCL": func() replacement.Policy { return replacement.NewDCL() },
		"ACL": func() replacement.Policy { return replacement.NewACL() },
	}
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	for name, f := range factories {
		f := f
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				costsim.Run(view, costsim.Default(), f(), src)
			}
			b.SetBytes(int64(len(view)))
		})
	}
}

// BenchmarkAblationDepreciation compares the paper's 2x cost depreciation
// against 1x and 4x (Section 2.3 argues 2x "is safer").
func BenchmarkAblationDepreciation(b *testing.B) {
	benchData()
	view := benchViews["Raytrace"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	lru := costsim.Run(view, costsim.Default(), replacement.NewLRU(), src)
	for _, factor := range []int{1, 2, 4} {
		factor := factor
		b.Run(map[int]string{1: "1x", 2: "2x", 4: "4x"}[factor], func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				res := costsim.Run(view, costsim.Default(),
					replacement.NewDCLWith(replacement.Options{Factor: factor}), src)
				s = costsim.RelativeSavings(lru.L2.AggCost, res.L2.AggCost)
			}
			b.ReportMetric(s*100, "savings_pct")
		})
	}
}

// BenchmarkAblationETDTagBits sweeps the ETD tag width (Section 4.3 uses 4
// bits; full tags are the reference).
func BenchmarkAblationETDTagBits(b *testing.B) {
	benchData()
	view := benchViews["Barnes"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	lru := costsim.Run(view, costsim.Default(), replacement.NewLRU(), src)
	for _, bits := range []int{0, 2, 4, 8} {
		bits := bits
		name := "full"
		if bits > 0 {
			name = map[int]string{2: "2bit", 4: "4bit", 8: "8bit"}[bits]
		}
		b.Run(name, func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				res := costsim.Run(view, costsim.Default(),
					replacement.NewDCLWith(replacement.Options{TagBits: bits}), src)
				s = costsim.RelativeSavings(lru.L2.AggCost, res.L2.AggCost)
			}
			b.ReportMetric(s*100, "savings_pct")
		})
	}
}

// BenchmarkAblationETDSize confirms the paper's argument that more than s-1
// ETD entries cannot help under LRU-order residency (Section 2.4).
func BenchmarkAblationETDSize(b *testing.B) {
	benchData()
	view := benchViews["Barnes"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	lru := costsim.Run(view, costsim.Default(), replacement.NewLRU(), src)
	for _, entries := range []int{1, 3, 6, 12} {
		entries := entries
		b.Run(map[int]string{1: "1", 3: "3(paper)", 6: "6", 12: "12"}[entries], func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				res := costsim.Run(view, costsim.Default(),
					replacement.NewDCLWith(replacement.Options{ETDEntries: entries}), src)
				s = costsim.RelativeSavings(lru.L2.AggCost, res.L2.AggCost)
			}
			b.ReportMetric(s*100, "savings_pct")
		})
	}
}

// BenchmarkAblationACLCounter sweeps the ACL enable-counter width on a
// workload where ACL's reservations actually cycle on and off (Raytrace
// random mapping; on LU's failure streaks every width pins savings at 0).
func BenchmarkAblationACLCounter(b *testing.B) {
	benchData()
	view := benchViews["Raytrace"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	lru := costsim.Run(view, costsim.Default(), replacement.NewLRU(), src)
	for _, bits := range []int{1, 2, 3} {
		bits := bits
		b.Run(map[int]string{1: "1bit", 2: "2bit(paper)", 3: "3bit"}[bits], func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				res := costsim.Run(view, costsim.Default(),
					replacement.NewACLWith(replacement.Options{CounterBits: bits}), src)
				s = costsim.RelativeSavings(lru.L2.AggCost, res.L2.AggCost)
			}
			b.ReportMetric(s*100, "savings_pct")
		})
	}
}

// BenchmarkOPTOracle measures the offline Belady evaluator, the miss-count
// lower bound used for calibration.
func BenchmarkOPTOracle(b *testing.B) {
	ev := make([]replacement.OptEvent, 100000)
	for i := range ev {
		ev[i] = replacement.OptEvent{Block: uint64(i*2654435761) % 512}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if replacement.OptimalMisses(ev, 4) > replacement.LRUMisses(ev, 4) {
			b.Fatal("OPT exceeded LRU")
		}
	}
}

// BenchmarkAblationCSPLRU compares plain pseudo-LRU against its
// cost-sensitive extension (the paper's closing suggestion to port
// reservation + depreciation onto other base policies).
func BenchmarkAblationCSPLRU(b *testing.B) {
	benchData()
	view := benchViews["Raytrace"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	plru := costsim.Run(view, costsim.Default(), replacement.NewPLRU(), src)
	variants := map[string]replacement.Factory{
		"PLRU":    func() replacement.Policy { return replacement.NewPLRU() },
		"CS-PLRU": func() replacement.Policy { return replacement.NewCSPLRU(0) },
	}
	for name, f := range variants {
		f := f
		b.Run(name, func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				res := costsim.Run(view, costsim.Default(), f(), src)
				s = costsim.RelativeSavings(plru.L2.AggCost, res.L2.AggCost)
			}
			b.ReportMetric(s*100, "savings_vs_plru_pct")
		})
	}
}

// BenchmarkAblationPenaltyVsLatency compares the two cost metrics of the
// paper's conclusion on the execution-driven simulator.
func BenchmarkAblationPenaltyVsLatency(b *testing.B) {
	benchData()
	prog := benchProgs["Raytrace"]
	base := numasim.Run(prog, numasim.DefaultConfig(nil))
	for _, penalty := range []bool{false, true} {
		penalty := penalty
		name := "latency"
		if penalty {
			name = "penalty"
		}
		b.Run(name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				cfg := numasim.DefaultConfig(func() replacement.Policy { return replacement.NewDCL() })
				cfg.UsePenalty = penalty
				r := numasim.Run(prog, cfg)
				red = 100 * float64(base.ExecNs-r.ExecNs) / float64(base.ExecNs)
			}
			b.ReportMetric(red, "reduction_pct")
		})
	}
}

// BenchmarkBaselines compares every registry policy on one trace at the
// same cost mapping, reporting savings over LRU (negative = worse). The
// cost-blind baselines (LFU, SLRU, PLRU, Random) bracket the
// cost-sensitive family.
func BenchmarkBaselines(b *testing.B) {
	benchData()
	view := benchViews["Raytrace"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	lru := costsim.Run(view, costsim.Default(), replacement.NewLRU(), src)
	for _, name := range replacement.Names() {
		if name == "LRU" {
			continue
		}
		f, _ := replacement.ByName(name)
		name := name
		b.Run(name, func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				res := costsim.Run(view, costsim.Default(), f(), src)
				s = costsim.RelativeSavings(lru.L2.AggCost, res.L2.AggCost)
			}
			b.ReportMetric(s*100, "savings_pct")
		})
	}
}

// benchLoader is a no-delay engine loader with an address-hashed two-level
// cost, the serving analogue of the paper's random cost mapping.
func benchLoader(key uint64) (any, replacement.Cost, error) {
	c := replacement.Cost(1)
	if key%5 == 0 {
		c = 8
	}
	return key, c, nil
}

// benchKeys is a tiny per-goroutine xorshift key stream with a 90/10
// hot/cold skew, allocation- and lock-free so the benchmark measures the
// engine, not the generator.
type benchKeys struct{ state uint64 }

func (k *benchKeys) next() uint64 {
	k.state ^= k.state << 13
	k.state ^= k.state >> 7
	k.state ^= k.state << 17
	if k.state%10 < 9 {
		return k.state % 2048 // hot set, mostly cached
	}
	return k.state % 65536 // cold tail, misses and evicts
}

// BenchmarkEngineParallel measures GetOrLoad throughput under b.RunParallel
// across shard counts: the scaling the sharded design buys on a fixed total
// geometry (4096 sets × 4 ways, DCL). Hit rate is reported so runs are
// comparable.
func BenchmarkEngineParallel(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := engine.New(engine.Config{
				Shards: shards, Sets: 4096, Ways: 4,
				Policy: func() replacement.Policy { return replacement.NewDCL() },
			})
			var seed atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				keys := benchKeys{state: seed.Add(0x9e3779b97f4a7c15)}
				for pb.Next() {
					if _, err := e.GetOrLoad(keys.next(), benchLoader); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := e.Stats()
			if st.Hits+st.Misses > 0 {
				b.ReportMetric(100*st.HitRate(), "hit_pct")
				b.ReportMetric(float64(st.LockWaitNs)/float64(st.Hits+st.Misses+st.Coalesced), "lockwait_ns/op")
			}
		})
	}
}

// BenchmarkEngineContention is the worst case for the shard mutex: every
// goroutine hammers one hot (always-cached) key, so all traffic serializes
// on a single shard regardless of the shard count. The gap between this and
// BenchmarkEngineParallel bounds what sharding can and cannot buy.
func BenchmarkEngineContention(b *testing.B) {
	for _, shards := range []int{1, 16} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := engine.New(engine.Config{
				Shards: shards, Sets: 4096, Ways: 4,
				Policy: func() replacement.Policy { return replacement.NewDCL() },
			})
			if _, err := e.GetOrLoad(1, benchLoader); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := e.GetOrLoad(1, benchLoader); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := e.Stats()
			if ops := st.Hits + st.Misses + st.Coalesced; ops > 0 {
				b.ReportMetric(float64(st.LockWaitNs)/float64(ops), "lockwait_ns/op")
			}
		})
	}
}

// BenchmarkObservedVsBare measures what the observability layer costs the
// trace-driven simulator: "bare" is costsim.Run, "nil-observer" is the same
// policy with the Observer hook present but detached (the production default;
// the acceptance bar is parity with bare), "shadow" adds the LRU shadow
// hierarchy of RunObserved, and "traced" additionally binds a ring-buffer
// tracer and a live metrics registry.
func BenchmarkObservedVsBare(b *testing.B) {
	benchData()
	view := benchViews["Raytrace"]
	src := costsim.CalibratedRandom(view, 64, 0.2, costsim.Ratio{Low: 1, High: 8}, 42)
	cfg := costsim.Default()
	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			costsim.Run(view, cfg, replacement.NewDCL(), src)
		}
		b.SetBytes(int64(len(view)))
	})
	b.Run("nil-observer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := replacement.NewDCL()
			p.SetObserver(nil)
			costsim.Run(view, cfg, p, src)
		}
		b.SetBytes(int64(len(view)))
	})
	b.Run("shadow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			costsim.RunObserved(view, cfg, replacement.NewDCL(), src, nil, 0, nil)
		}
		b.SetBytes(int64(len(view)))
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		tracer := obs.NewTracer(1 << 16)
		reg := obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			costsim.RunObserved(view, cfg, replacement.NewDCL(), src, tracer.Bind("DCL"), 0, reg)
		}
		b.SetBytes(int64(len(view)))
	})
}
