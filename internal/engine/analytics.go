package engine

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"costcache/internal/obs/reqspan"
	"costcache/internal/resilience"
)

// ShardStats is one shard's cumulative counters plus its instantaneous
// coalescing state — the raw material for hot-shard detection and the
// lock-wait / coalesce-depth heatmaps served at /debug/engine.
type ShardStats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Hits/Misses/Coalesced/Evictions/CostPaid/LockWaitNs mirror Stats,
	// unaggregated.
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Coalesced  int64 `json:"coalesced"`
	Evictions  int64 `json:"evictions"`
	CostPaid   int64 `json:"cost_paid"`
	LockWaitNs int64 `json:"lock_wait_ns"`
	// InFlight is the number of loads currently in flight on the shard;
	// MaxInFlight the deepest the flight table has ever been (the
	// coalesce-depth high-water mark).
	InFlight    int `json:"in_flight"`
	MaxInFlight int `json:"max_in_flight"`
}

// Ops returns the shard's total request count (hits + misses + coalesced).
func (s ShardStats) Ops() int64 { return s.Hits + s.Misses + s.Coalesced }

// ShardStats snapshots every shard. The counters are atomic; the flight
// depths take each shard lock briefly.
func (e *Engine) ShardStats() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, s := range e.shards {
		st := ShardStats{
			Shard:      i,
			Hits:       s.hits.Value(),
			Misses:     s.misses.Value(),
			Coalesced:  s.coalesced.Value(),
			Evictions:  s.evictions.Value(),
			CostPaid:   s.costPaid.Value(),
			LockWaitNs: s.lockWait.Value(),
		}
		s.lock()
		st.InFlight = len(s.flights)
		st.MaxInFlight = s.flightsMax
		s.mu.Unlock()
		out[i] = st
	}
	return out
}

// DefaultHotShareFactor flags a shard as hot when its share of window
// traffic exceeds this multiple of the uniform share (1/shards). 2× is well
// past the splitmix64 placement's natural imbalance at any realistic op
// count, so flags indicate genuinely skewed keyspaces, not hash noise.
// cachebench -hot.factor overrides it per run.
const DefaultHotShareFactor = 2.0

// ShardWindow is one shard's activity over an analytics window.
type ShardWindow struct {
	Shard int `json:"shard"`
	// Ops is the window's request count and Share its fraction of the
	// whole engine's window traffic.
	Ops   int64   `json:"ops"`
	Share float64 `json:"share"`
	// LockWaitNs and Coalesced are window deltas; InFlight and MaxInFlight
	// are instantaneous/cumulative (the heatmap columns).
	LockWaitNs  int64 `json:"lock_wait_ns"`
	Coalesced   int64 `json:"coalesced"`
	InFlight    int   `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
	// Hot marks a share above hotShareFactor× the uniform share.
	Hot bool `json:"hot"`
}

// Analytics is a windowed decomposition of engine activity by shard: who is
// hot, where lock wait concentrates, and how deep miss coalescing stacks.
type Analytics struct {
	// WindowNs is the wall-clock span the deltas cover (0 = since start).
	WindowNs int64 `json:"window_ns"`
	// Ops is the engine-wide window request count.
	Ops int64 `json:"ops"`
	// UniformShare is 1/shards, the no-skew baseline for Share columns.
	UniformShare float64 `json:"uniform_share"`
	// HotShareFactor is the detector threshold in effect: a shard is hot
	// when its Share exceeds HotShareFactor × UniformShare.
	HotShareFactor float64 `json:"hot_share_factor"`
	// Shards is the per-shard window breakdown, shard-ordered.
	Shards []ShardWindow `json:"shards"`
	// Hot lists the indices of hot shards, hottest first.
	Hot []int `json:"hot"`
}

// Analyze decomposes the window between two ShardStats snapshots (prev may
// be nil: the window then spans from engine start). windowNs is the
// wall-clock duration between the snapshots; hotFactor is the hot-shard
// detector threshold (0 means DefaultHotShareFactor).
func Analyze(cur, prev []ShardStats, windowNs int64, hotFactor float64) Analytics {
	if hotFactor <= 0 {
		hotFactor = DefaultHotShareFactor
	}
	a := Analytics{WindowNs: windowNs, UniformShare: 1 / float64(len(cur)), HotShareFactor: hotFactor}
	a.Shards = make([]ShardWindow, len(cur))
	for i, c := range cur {
		w := ShardWindow{
			Shard:       i,
			Ops:         c.Ops(),
			LockWaitNs:  c.LockWaitNs,
			Coalesced:   c.Coalesced,
			InFlight:    c.InFlight,
			MaxInFlight: c.MaxInFlight,
		}
		if i < len(prev) {
			w.Ops -= prev[i].Ops()
			w.LockWaitNs -= prev[i].LockWaitNs
			w.Coalesced -= prev[i].Coalesced
		}
		a.Ops += w.Ops
		a.Shards[i] = w
	}
	for i := range a.Shards {
		if a.Ops > 0 {
			a.Shards[i].Share = float64(a.Shards[i].Ops) / float64(a.Ops)
		}
		a.Shards[i].Hot = a.Shards[i].Ops > 0 &&
			a.Shards[i].Share > hotFactor*a.UniformShare
		if a.Shards[i].Hot {
			a.Hot = append(a.Hot, i)
		}
	}
	sort.Slice(a.Hot, func(x, y int) bool {
		return a.Shards[a.Hot[x]].Share > a.Shards[a.Hot[y]].Share
	})
	return a
}

// debugState is the rolling window kept by the /debug/engine handler: each
// request reports activity since the previous request (or since start).
type debugState struct {
	mu   sync.Mutex
	prev []ShardStats
	at   time.Time
}

// debugPayload is the /debug/engine response document (see
// docs/OBSERVABILITY.md for the schema).
type debugPayload struct {
	// Stats is the engine-wide cumulative counter sum.
	Stats Stats `json:"stats"`
	// Window is the rolling per-shard analytics since the last scrape.
	Window Analytics `json:"window"`
	// Cumulative is the per-shard counter snapshot the window was cut from.
	Cumulative []ShardStats `json:"cumulative"`
	// Attribution and Keyspace appear when a request tracer is attached:
	// stage attribution with exemplar-carrying latency buckets, and the
	// sampled keyspace-skew estimate.
	Attribution *reqspan.Attribution  `json:"attribution,omitempty"`
	Keyspace    *reqspan.KeyspaceSkew `json:"keyspace,omitempty"`
	// Resilience appears when Config.Resilience is set: the degraded-mode
	// counters and every cost-class breaker's live state.
	Resilience *ResilienceDebug `json:"resilience,omitempty"`
	// Ring appears on remote runs routing through a client.Ring: the ring
	// topology and per-node failover/shed rows (client.RingDebug — typed as
	// any here because the engine must not depend on the client package).
	Ring any `json:"ring,omitempty"`
}

// ResilienceDebug is the /debug/engine "resilience" block: the engine's
// degraded-mode configuration, its counters, and one row per cost-class
// circuit breaker.
type ResilienceDebug struct {
	DeadlineNs   int64                      `json:"deadline_ns"`
	ServeStale   bool                       `json:"serve_stale"`
	LoadTimeouts int64                      `json:"load_timeouts"`
	LoadRetries  int64                      `json:"load_retries"`
	Shed         int64                      `json:"shed"`
	StaleServed  int64                      `json:"stale_served"`
	Breakers     []resilience.BreakerStatus `json:"breakers"`
}

// ResilienceDebugSnapshot reports the degraded-mode state, or nil when the
// engine was built without Config.Resilience.
func (e *Engine) ResilienceDebugSnapshot() *ResilienceDebug {
	if e.res == nil {
		return nil
	}
	return &ResilienceDebug{
		DeadlineNs:   e.res.Deadline().Nanoseconds(),
		ServeStale:   e.res.ServeStale(),
		LoadTimeouts: e.loadTimeouts.Value(),
		LoadRetries:  e.loadRetries.Value(),
		Shed:         e.shed.Value(),
		StaleServed:  e.staleServed.Value(),
		Breakers:     e.res.Snapshot(),
	}
}

// DebugHandler serves the engine's live analytics as JSON — mounted at
// /debug/engine by cachebench's -obs.listen server. Consecutive scrapes
// see rolling windows: each response covers activity since the previous
// one. tr may be nil (attribution and keyspace are then omitted); hotFactor
// is the hot-shard threshold (0 means DefaultHotShareFactor).
func DebugHandler(e *Engine, tr *reqspan.Tracer, hotFactor float64) http.Handler {
	return DebugHandlerRing(e, tr, hotFactor, nil)
}

// DebugHandlerRing is DebugHandler plus a "ring" block: ring, when non-nil,
// is snapshotted per request (a remote run passes client.(*Ring).Debug). e
// may be nil — a remote run has no in-process engine, so the payload carries
// only the tracer and ring blocks.
func DebugHandlerRing(e *Engine, tr *reqspan.Tracer, hotFactor float64, ring func() any) http.Handler {
	st := &debugState{at: time.Now()}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var p debugPayload
		if e != nil {
			cur := e.ShardStats()
			now := time.Now()
			st.mu.Lock()
			prev, at := st.prev, st.at
			st.prev, st.at = cur, now
			st.mu.Unlock()

			p.Stats = e.Stats()
			p.Window = Analyze(cur, prev, now.Sub(at).Nanoseconds(), hotFactor)
			p.Cumulative = cur
			p.Resilience = e.ResilienceDebugSnapshot()
		}
		if tr != nil {
			a := tr.Attribution()
			k := tr.Keyspace(16)
			p.Attribution, p.Keyspace = &a, &k
		}
		if ring != nil {
			p.Ring = ring()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p)
	})
}
