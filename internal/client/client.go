// Package client is the connection-pooled client side of the cache tier
// protocol (internal/wire): pipelined connections, a bounded health-checked
// pool per node, per-request deadlines, and a consistent-hash ring
// (client.Ring) routing keys across N nodes with a per-node circuit breaker
// from internal/resilience.
package client

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"costcache/internal/wire"
)

// Config describes a client for one node.
type Config struct {
	// Addr is the node's TCP address.
	Addr string
	// Conns is the pool size (0 = 1). Requests round-robin across the pool;
	// each connection pipelines, so one connection already supports many
	// concurrent requests — more connections spread the per-conn write lock.
	Conns int
	// Timeout bounds each request round trip (0 = wait forever). A timed-out
	// request abandons its slot; the response, if it ever arrives, is
	// discarded by ID.
	Timeout time.Duration
	// MaxFrame caps accepted response frames (0 = wire.MaxFrame).
	MaxFrame int
}

// Error is a server-reported protocol error (a FlagError response).
type Error struct {
	Code uint8
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("server: %s: %s", wire.ErrCodeName(e.Code), e.Msg)
}

// ErrTimeout is returned when Config.Timeout expires before the response.
var ErrTimeout = &Error{Code: wire.ErrCodeTimeout, Msg: "client deadline exceeded"}

// Result is one GetOrLoad outcome relayed from the server.
type Result struct {
	// Value is the response value (an owned copy).
	Value []byte
	// Charged is the miss cost this request charged at install on the
	// server (0 for hits, coalesced waits, stale serves).
	Charged int64
	// Hit / Coalesced / Stale mirror engine.LoadInfo over the wire.
	Hit       bool
	Coalesced bool
	Stale     bool
}

// Client talks to one node through a bounded pool of pipelined connections.
type Client struct {
	cfg   Config
	rr    atomic.Uint64
	mu    sync.Mutex // guards slot (re)dialing
	slots []*conn
}

// Dial builds a client and eagerly connects every pool slot, so a dead node
// fails fast at startup rather than on the first request.
func Dial(cfg Config) (*Client, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.MaxFrame
	}
	c := &Client{cfg: cfg, slots: make([]*conn, cfg.Conns)}
	for i := range c.slots {
		cc, err := dialConn(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.slots[i] = cc
	}
	return c, nil
}

// Addr returns the node address this client dials.
func (c *Client) Addr() string { return c.cfg.Addr }

// pick returns a live connection, redialing its slot if the previous one
// broke — the pool's health check is the connection itself.
func (c *Client) pick() (*conn, error) {
	i := int(c.rr.Add(1)) % len(c.slots)
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.slots[i]
	if cc == nil || cc.broken() {
		if cc != nil {
			cc.close()
		}
		fresh, err := dialConn(c.cfg)
		if err != nil {
			return nil, err
		}
		c.slots[i] = fresh
		cc = fresh
	}
	return cc, nil
}

// Ping round-trips an OpPing frame (the health probe).
func (c *Client) Ping() error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	_, _, err = cc.roundTrip(wire.OpPing, "", nil, c.cfg.Timeout)
	return err
}

// Get looks key up in ns without loading.
func (c *Client) Get(ns string, key uint64) (value []byte, ok bool, err error) {
	cc, err := c.pick()
	if err != nil {
		return nil, false, err
	}
	flags, payload, err := cc.roundTrip(wire.OpGet, ns, wire.AppendGetReq(nil, key), c.cfg.Timeout)
	if err != nil {
		return nil, false, err
	}
	if flags&wire.FlagHit == 0 {
		return nil, false, nil
	}
	return payload, true, nil
}

// Set installs key in ns with a value and predicted next-miss cost.
func (c *Client) Set(ns string, key uint64, cost int64, value []byte) error {
	cc, err := c.pick()
	if err != nil {
		return err
	}
	_, _, err = cc.roundTrip(wire.OpSet, ns, wire.AppendSetReq(nil, key, cost, value), c.cfg.Timeout)
	return err
}

// GetOrLoad returns ns's cached value for key or has the server load it,
// declaring cost as the miss cost the server charges on a fill.
func (c *Client) GetOrLoad(ns string, key uint64, cost int64) (Result, error) {
	p, err := c.StartGetOrLoad(ns, key, cost)
	if err != nil {
		return Result{}, err
	}
	return p.Wait()
}

// Pending is one sent GetOrLoad awaiting its response. The two-phase
// Start/Wait API exists so a load harness can attribute the request-write
// and response-wait portions of the round trip to separate span stages
// (net_write / net_read); plain callers use GetOrLoad.
type Pending struct {
	p       *pendingReq
	timeout time.Duration
}

// StartGetOrLoad encodes and writes the request, returning a handle whose
// Wait collects the response.
func (c *Client) StartGetOrLoad(ns string, key uint64, cost int64) (*Pending, error) {
	cc, err := c.pick()
	if err != nil {
		return nil, err
	}
	p, err := cc.send(wire.OpGetOrLoad, ns, wire.AppendGetOrLoadReq(nil, key, cost))
	if err != nil {
		return nil, err
	}
	return &Pending{p: p, timeout: c.cfg.Timeout}, nil
}

// Wait blocks for the response, bounded by the client's Timeout.
func (p *Pending) Wait() (Result, error) {
	flags, payload, err := p.p.wait(p.timeout)
	if err != nil {
		return Result{}, err
	}
	charged, value, err := wire.ParseGetOrLoadResp(payload)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Value:     value,
		Charged:   charged,
		Hit:       flags&wire.FlagHit != 0,
		Coalesced: flags&wire.FlagCoalesced != 0,
		Stale:     flags&wire.FlagStale != 0,
	}, nil
}

// Stats fetches ns's engine and serving-tier counters.
func (c *Client) Stats(ns string) (wire.Stats, error) {
	cc, err := c.pick()
	if err != nil {
		return wire.Stats{}, err
	}
	return cc.stats(ns, c.cfg.Timeout)
}

// Close tears the pool down; in-flight requests fail.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cc := range c.slots {
		if cc != nil {
			cc.close()
			c.slots[i] = nil
		}
	}
}
