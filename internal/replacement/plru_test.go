package replacement

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPLRUVictimNeverMostRecent(t *testing.T) {
	c := newTestCache(t, 1, 4, NewPLRU(), unitCost)
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	for i := 0; i < 1000; i++ {
		mru := uint64(i % 4)
		c.access(mru) // hit: becomes most recently used
		before := len(c.evictions)
		c.access(uint64(100 + i)) // miss: evicts someone
		if len(c.evictions) != before+1 {
			t.Fatal("expected an eviction")
		}
		if c.evictions[len(c.evictions)-1] == mru {
			t.Fatalf("step %d: PLRU evicted the most recently touched block", i)
		}
		// Restore a full set of the small blocks for the next round.
		c.access(mru)
		for b := uint64(0); b < 4; b++ {
			c.access(b)
		}
	}
}

func TestPLRUProtectsRecentHalf(t *testing.T) {
	p := NewPLRU()
	c := newTestCache(t, 1, 4, p, unitCost)
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	c.access(0)
	c.access(1)
	// Ways holding 0 and 1 were just touched: the victim must be 2 or 3.
	c.access(50)
	got := c.evictions[len(c.evictions)-1]
	if got != 2 && got != 3 {
		t.Fatalf("victim = %d, want 2 or 3", got)
	}
}

func TestPLRURequiresPowerOfTwoWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPLRU().Reset(4, 3)
}

func TestCSPLRUUniformCostsEqualsPLRU(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := genOps(15000, 200, 0.02, seed)
		refEv, refH, refM, _ := runPolicy(t, NewPLRU(), 8, 4, unitCost, ops)
		ev, h, m, _ := runPolicy(t, NewCSPLRU(0), 8, 4, unitCost, ops)
		if h != refH || m != refM || !reflect.DeepEqual(ev, refEv) {
			t.Fatalf("seed %d: CS-PLRU diverged from PLRU under uniform costs", seed)
		}
	}
}

func TestCSPLRUReservesHighCostCandidate(t *testing.T) {
	costs := costTable(map[uint64]Cost{3: 8})
	p := NewCSPLRU(2)
	c := newTestCache(t, 1, 4, p, costs)
	// Fill all ways, then steer the tree at block 3: touching 2 points its
	// subtree at way 3, touching 0 points the root at the right half.
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	c.access(2)
	c.access(0)
	// Tree victim is now block 3 (cost 8): a miss must sacrifice a cheaper
	// block instead.
	c.access(60)
	if got := c.evictions[len(c.evictions)-1]; got == 3 {
		t.Fatal("CS-PLRU evicted the high-cost candidate immediately")
	}
	inv, _ := p.Reservations()
	if inv == 0 {
		t.Fatal("no reservation recorded")
	}
	// Depreciation eventually releases the candidate.
	for b := uint64(61); b < 80 && c.lookup(c.setTag(3)) >= 0; b++ {
		c.access(b)
	}
	if c.lookup(c.setTag(3)) >= 0 {
		t.Fatal("candidate never released: depreciation broken")
	}
}

func TestCSPLRUBeatsPLRUOnFavorableWorkload(t *testing.T) {
	cost := func(b uint64) Cost {
		if b < 4 {
			return 16
		}
		return 1
	}
	var ops []traceOp
	for i := 0; i < 500; i++ {
		for b := uint64(0); b < 4; b++ {
			ops = append(ops, traceOp{block: b})
		}
		for r := 0; r < 2; r++ {
			for b := uint64(10); b < 13; b++ {
				ops = append(ops, traceOp{block: b})
			}
		}
	}
	_, _, _, plain := runPolicy(t, NewPLRU(), 1, 4, cost, ops)
	_, _, _, cs := runPolicy(t, NewCSPLRU(0), 1, 4, cost, ops)
	if cs >= plain {
		t.Fatalf("CS-PLRU cost %d, PLRU %d: expected savings", cs, plain)
	}
}

func TestPLRUInvalidateAndRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, f := range []Factory{
		func() Policy { return NewPLRU() },
		func() Policy { return NewCSPLRU(0) },
	} {
		cost := func(b uint64) Cost { return Cost(b % 5) }
		c := newTestCache(t, 4, 8, f(), cost)
		for i := 0; i < 30000; i++ {
			b := uint64(rng.Intn(300))
			if rng.Intn(20) == 0 {
				c.invalidate(b)
			} else {
				c.access(b)
			}
		}
		if c.misses == 0 {
			t.Fatal("no activity")
		}
	}
}

func TestPLRUNames(t *testing.T) {
	if NewPLRU().Name() != "PLRU" || NewCSPLRU(0).Name() != "CS-PLRU" {
		t.Fatal("names")
	}
}
