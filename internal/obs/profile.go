package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// ProfilerConfig parameterizes continuous profiling.
type ProfilerConfig struct {
	// Dir receives the snapshot files; it is created if missing.
	Dir string
	// Interval is the snapshot period (default 30s): each cycle captures
	// the CPU profile covering the whole interval, then point-in-time heap,
	// mutex and block profiles.
	Interval time.Duration
	// MutexFraction and BlockRate set the runtime sampling rates while the
	// profiler runs (defaults 5 and 10µs); both are restored to off on
	// Close. Set to -1 to leave a rate untouched.
	MutexFraction int
	BlockRate     int
}

// Profiler captures periodic pprof snapshots for the lifetime of a run —
// the "what was the process doing during that regressed window" complement
// to the span/attribution layer. Snapshot files are named
// <kind>-<seq>.pprof so a run manifest's profile entry (dir + count) keys
// every snapshot unambiguously.
type Profiler struct {
	cfg   ProfilerConfig
	stop  chan struct{}
	done  chan struct{}
	mu    sync.Mutex
	files []string
	seq   int
	err   error
}

// StartProfiler begins continuous profiling into cfg.Dir. The first CPU
// window starts immediately; Close ends the last window early and captures
// a final point-in-time set, so short runs still produce one full snapshot.
func StartProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = 5
	}
	if cfg.BlockRate == 0 {
		cfg.BlockRate = 10_000 // one sample per 10µs of cumulative blocking
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	p := &Profiler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
	}
	go p.run()
	return p, nil
}

func (p *Profiler) run() {
	defer close(p.done)
	for {
		cpu, err := p.startCPU()
		if err != nil {
			p.fail(err)
			return
		}
		select {
		case <-time.After(p.cfg.Interval):
			p.stopCPU(cpu)
			p.pointInTime()
		case <-p.stop:
			p.stopCPU(cpu)
			p.pointInTime()
			return
		}
	}
}

// startCPU opens the next CPU profile window.
func (p *Profiler) startCPU() (*os.File, error) {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	f, err := os.Create(p.path("cpu", seq))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		// Another CPU profile is active (e.g. a /debug/pprof/profile scrape):
		// skip CPU this cycle rather than kill the profiler.
		return nil, nil
	}
	p.record(f.Name())
	return f, nil
}

func (p *Profiler) stopCPU(f *os.File) {
	if f == nil {
		return
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.fail(err)
	}
}

// pointInTime writes the heap, mutex and block profiles for the cycle.
func (p *Profiler) pointInTime() {
	p.mu.Lock()
	seq := p.seq
	p.mu.Unlock()
	for _, kind := range []string{"heap", "mutex", "block"} {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		f, err := os.Create(p.path(kind, seq))
		if err != nil {
			p.fail(err)
			return
		}
		err = prof.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			p.fail(err)
			return
		}
		p.record(f.Name())
	}
}

func (p *Profiler) path(kind string, seq int) string {
	return filepath.Join(p.cfg.Dir, fmt.Sprintf("%s-%04d.pprof", kind, seq))
}

func (p *Profiler) record(name string) {
	p.mu.Lock()
	p.files = append(p.files, filepath.Base(name))
	p.mu.Unlock()
}

func (p *Profiler) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Snapshots returns the snapshot file names written so far (base names,
// relative to the configured dir) — recorded into the run manifest so a
// report reader can key each profile to its run.
func (p *Profiler) Snapshots() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.files))
	copy(out, p.files)
	return out
}

// Close ends the current CPU window, captures the final point-in-time
// profiles, restores the runtime sampling rates and returns the first
// capture error, if any.
func (p *Profiler) Close() error {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
	if p.cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(0)
	}
	if p.cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(0)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
