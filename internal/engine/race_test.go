package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"costcache/internal/replacement"
)

// TestHammerMixedOps drives Get/Set/GetOrLoad from 32 goroutines (run under
// -race in CI). Every operation resolves to exactly one of hit, miss or
// coalesced-wait, so the counters must add up to the operation total.
func TestHammerMixedOps(t *testing.T) {
	e := New(Config{Shards: 4, Sets: 64, Ways: 4, Policy: lruFactory, Shadow: true})
	const goroutines, opsEach = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := uint64((g*31 + i) % 512)
				switch i % 4 {
				case 0:
					e.Get(key)
				case 1:
					e.Set(key, key, replacement.Cost(1+key%8))
				default:
					if _, err := e.GetOrLoad(key, constLoader(key, 2)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if total := st.Hits + st.Misses + st.Coalesced; total != goroutines*opsEach {
		t.Fatalf("hits+misses+coalesced = %d, want %d (stats %+v)", total, goroutines*opsEach, st)
	}
}

// TestCoalescingRunsLoaderOnce parks 32 goroutines on one key behind a gated
// loader: the loader must run exactly once, every caller must observe its
// value, and the cost must be charged once.
func TestCoalescingRunsLoaderOnce(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	const waiters = 32
	gate := make(chan struct{})
	var calls atomic.Int64
	load := func(uint64) (any, replacement.Cost, error) {
		calls.Add(1)
		<-gate
		return "loaded", 7, nil
	}
	results := make(chan any, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			v, err := e.GetOrLoad(42, load)
			if err != nil {
				t.Error(err)
			}
			results <- v
		}()
	}
	// Wait until every non-leader goroutine is enqueued on the flight, then
	// release the loader.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Coalesced != waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d coalesced waiters after 5s", e.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for i := 0; i < waiters; i++ {
		if v := <-results; v != "loaded" {
			t.Fatalf("waiter got %v", v)
		}
	}
	st := e.Stats()
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times", calls.Load())
	}
	if st.Misses != 1 || st.Coalesced != waiters-1 || st.CostPaid != 7 {
		t.Fatalf("stats = %+v, want 1 miss, %d coalesced, cost 7", st, waiters-1)
	}
}

// TestLoaderPanicPropagates gates 32 goroutines on one key whose loader
// panics: the panic must reach the leader (original value) and every
// coalesced waiter (wrapped in *LoaderPanic) — and only them; the shard must
// stay usable afterwards.
func TestLoaderPanicPropagates(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	const waiters = 32
	gate := make(chan struct{})
	load := func(uint64) (any, replacement.Cost, error) {
		<-gate
		panic("origin exploded")
	}
	var leaders, wrapped atomic.Int64
	panics := make(chan any, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			defer func() { panics <- recover() }()
			_, _ = e.GetOrLoad(99, load)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Coalesced != waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d coalesced waiters after 5s", e.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for i := 0; i < waiters; i++ {
		switch r := <-panics; v := r.(type) {
		case string:
			if v != "origin exploded" {
				t.Fatalf("leader panic = %q", v)
			}
			leaders.Add(1)
		case *LoaderPanic:
			if v.Value != "origin exploded" {
				t.Fatalf("waiter panic wraps %v", v.Value)
			}
			wrapped.Add(1)
		default:
			t.Fatalf("goroutine did not panic (recovered %v)", r)
		}
	}
	if leaders.Load() != 1 || wrapped.Load() != waiters-1 {
		t.Fatalf("%d leader / %d wrapped panics, want 1 / %d", leaders.Load(), wrapped.Load(), waiters-1)
	}
	// The shard must not be deadlocked or poisoned: no install happened, the
	// flight is gone, and a clean load succeeds.
	if _, ok := e.Get(99); ok {
		t.Fatal("panicked load left an install behind")
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.GetOrLoad(99, constLoader("fine", 1))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard deadlocked after loader panic")
	}
}

// TestCoalescedErrorShared gates 32 goroutines on a failing loader: all must
// see the same error, nothing installs, nothing is charged.
func TestCoalescedErrorShared(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	const waiters = 16
	gate := make(chan struct{})
	boom := errors.New("load failed")
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := e.GetOrLoad(5, func(uint64) (any, replacement.Cost, error) {
				<-gate
				return nil, 0, boom
			})
			errs <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Coalesced != waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d coalesced waiters after 5s", e.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	if st := e.Stats(); st.CostPaid != 0 || st.Evictions != 0 {
		t.Fatalf("failed load charged cost: %+v", st)
	}
}

// TestConcurrentSetDuringLoad exercises the install race: a Set lands while
// the loader for the same key is in flight. The loader's value must win (so
// leader, waiters and cache agree) and the cost must not be double-charged
// beyond the Set's own install.
func TestConcurrentSetDuringLoad(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	started := make(chan struct{})
	gate := make(chan struct{})
	go func() {
		_, _ = e.GetOrLoad(11, func(uint64) (any, replacement.Cost, error) {
			close(started)
			<-gate
			return "from-loader", 3, nil
		})
	}()
	<-started
	e.Set(11, "from-set", 4)
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := e.Get(11); ok && v == "from-loader" {
			break
		}
		if time.Now().After(deadline) {
			v, _ := e.Get(11)
			t.Fatalf("cached value = %v, want from-loader", v)
		}
		time.Sleep(time.Millisecond)
	}
}
