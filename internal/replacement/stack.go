package replacement

// setMeta is the per-set replacement metadata shared by the stack-based
// policies: an LRU stack of ways plus per-way tag, validity and fixed miss
// cost. The stack is a permutation of way indices with stack[0] the MRU; all
// invalid ways form a suffix, so valid blocks occupy a prefix ordered by
// recency.
type setMeta struct {
	stack []int
	tag   []uint64
	cost  []Cost
	valid []bool
	live  int // number of valid ways (length of the valid prefix)
}

func newSetMeta(ways int) setMeta {
	m := setMeta{
		stack: make([]int, ways),
		tag:   make([]uint64, ways),
		cost:  make([]Cost, ways),
		valid: make([]bool, ways),
	}
	for w := range m.stack {
		m.stack[w] = w
	}
	return m
}

// posOf returns the stack position of way.
func (m *setMeta) posOf(way int) int {
	for p, w := range m.stack {
		if w == way {
			return p
		}
	}
	panic("replacement: way not in stack")
}

// toFront moves way to the MRU position.
func (m *setMeta) toFront(way int) {
	p := m.posOf(way)
	copy(m.stack[1:p+1], m.stack[:p])
	m.stack[0] = way
}

// toBack moves way to the LRU-most position.
func (m *setMeta) toBack(way int) {
	p := m.posOf(way)
	copy(m.stack[p:], m.stack[p+1:])
	m.stack[len(m.stack)-1] = way
}

// touch promotes a valid way to MRU.
func (m *setMeta) touch(way int) { m.toFront(way) }

// fill installs tag/cost at way and promotes it to MRU.
func (m *setMeta) fill(way int, tag uint64, cost Cost) {
	if !m.valid[way] {
		m.valid[way] = true
		m.live++
	}
	m.tag[way] = tag
	m.cost[way] = cost
	m.toFront(way)
}

// invalidate clears way and demotes it past all valid ways.
func (m *setMeta) invalidate(way int) {
	if m.valid[way] {
		m.valid[way] = false
		m.live--
	}
	m.toBack(way)
}

// lruWay returns the least recently used valid way, or -1 if the set is
// empty.
func (m *setMeta) lruWay() int {
	if m.live == 0 {
		return -1
	}
	return m.stack[m.live-1]
}

// lruIdent returns an identity token (way, tag) for the current occupant of
// the LRU position, used to detect when a new block "enters the LRU
// position" (the trigger for reloading Acost in BCL/DCL/ACL).
func (m *setMeta) lruIdent() (way int, tag uint64, ok bool) {
	w := m.lruWay()
	if w < 0 {
		return -1, 0, false
	}
	return w, m.tag[w], true
}

// full reports whether every way is valid.
func (m *setMeta) full() bool { return m.live == len(m.stack) }

// stackBase provides the common Reset/Touch/Fill/Invalidate plumbing for
// stack-based policies. Embedders override hooks via the onChange callback,
// which fires after any mutation so cost-sensitive policies can detect LRU
// occupancy changes.
type stackBase struct {
	ways int
	sets []setMeta
}

func (b *stackBase) reset(sets, ways int) {
	if sets <= 0 || ways <= 0 {
		panic("replacement: sets and ways must be positive")
	}
	b.ways = ways
	b.sets = make([]setMeta, sets)
	for i := range b.sets {
		b.sets[i] = newSetMeta(ways)
	}
}

func (b *stackBase) set(i int) *setMeta { return &b.sets[i] }
