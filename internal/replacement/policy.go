// Package replacement implements the cache replacement algorithms studied in
// "Cost-Sensitive Cache Replacement Algorithms" (Jeong & Dubois, HPCA 2003):
// the LRU baseline, GreedyDual (GD) adapted to set-associative processor
// caches, and the paper's three LRU extensions — BCL (basic cost-sensitive
// LRU), DCL (dynamic cost-sensitive LRU with an Extended Tag Directory), and
// ACL (adaptive cost-sensitive LRU with a per-set enable automaton).
//
// A Policy owns all replacement metadata for a cache (the LRU stack, per-way
// miss costs, reservation state, the ETD). The cache proper stores only tags
// and data state and drives the policy through a small set of hooks:
//
//	Access    — every reference, before any state change (ETD probe)
//	Touch     — a cache hit
//	Victim    — choose a way to evict (may invoke a blockframe reservation)
//	Fill      — a new block installed, with its predicted next-miss cost
//	Invalidate— a block removed by external coherence action
//
// Costs are opaque non-negative integers: latency in nanoseconds or cycles,
// energy, bandwidth, or the abstract 1/r values of the paper's static-cost
// study. A policy never interprets a cost, it only compares and depreciates.
package replacement

// Cost is the miss cost of a block: any non-negative quantity the replacement
// policy should try to avoid paying again (latency, energy, bandwidth, ...).
type Cost int64

// Policy is a replacement algorithm bound to one cache. Implementations own
// per-set replacement metadata and are not safe for concurrent use.
//
// Concurrency contract: a Policy is single-goroutine. Every implementation
// in this package mutates per-set state (LRU stacks, reservation flags, the
// ETD, ACL automata) without internal locking, and no hook may run while
// another hook is executing on the same instance — not even on a different
// set. Callers that serve concurrent traffic must serialize externally and
// use one instance per lock domain; the engine package's shards are the
// canonical synchronization boundary (one Policy per shard, every hook
// invoked under that shard's mutex — see internal/engine). Simulators that
// run caches on several goroutines likewise give each cache its own
// instance via a Factory.
//
// The cache must call the hooks as follows, for a reference to a block with
// the given tag mapping to the given set:
//
//  1. Access(set, tag, hit) — always, first.
//  2. On a hit at way w: Touch(set, w).
//  3. On a miss with no invalid way free: w := Victim(set), then evict w and
//     Fill(set, w, tag, cost).
//  4. On a miss with an invalid way w free: Fill(set, w, tag, cost).
//
// External invalidations call Invalidate(set, way, tag) with way < 0 when the
// block is not cached (so policies with victim directories can still react).
type Policy interface {
	// Name identifies the algorithm ("LRU", "GD", "BCL", "DCL", "ACL", ...).
	Name() string

	// Reset sizes the policy for a cache with the given geometry and clears
	// all state. It must be called before any other hook.
	Reset(sets, ways int)

	// Access records a reference to tag in set before the cache acts on it.
	// hit reports whether the cache found the block.
	Access(set int, tag uint64, hit bool)

	// Touch records a cache hit on way (promotes it to MRU).
	Touch(set, way int)

	// Victim selects the way to evict from a full set. Implementations may
	// update reservation state (this is the single point where a blockframe
	// reservation is invoked or abandoned), so the cache must call it exactly
	// once per eviction and must evict the way returned.
	Victim(set int) int

	// Fill installs a new block at way with the predicted cost of its next
	// miss. The block becomes most recently used.
	Fill(set, way int, tag uint64, cost Cost)

	// Invalidate removes the block with tag from the policy's state. way is
	// the cache way holding it, or -1 if it is not cached (the hook still
	// fires so victim-directory state such as the ETD can be purged).
	Invalidate(set, way int, tag uint64)
}

// Factory creates a fresh, unbound Policy. Experiment drivers use factories
// so each simulated cache gets its own policy instance.
type Factory func() Policy

// ReservationStats is implemented by policies that track blockframe
// reservations (BCL, DCL, ACL); simulators use it for diagnostics.
type ReservationStats interface {
	// Reservations returns how many reservations were invoked and how many
	// ended with the reserved block re-referenced (successes).
	Reservations() (invoked, succeeded int64)
}
