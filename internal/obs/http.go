package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability HTTP handler for a registry:
//
//	/metrics        plain-text exposition of every instrument
//	/debug/pprof/*  the standard Go profiling endpoints
//
// A dedicated mux is used so commands never expose pprof by accident through
// http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "costcache observability: /metrics, /debug/pprof/")
	})
	return mux
}

// Serve starts the observability server on addr (e.g. "localhost:6060") in a
// background goroutine and returns the bound listener so callers can report
// the actual address (addr may use port 0). The server lives until the
// process exits; experiment commands are short-lived, so there is no
// shutdown plumbing.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(r)}
	go srv.Serve(ln)
	return ln, nil
}
