package replacement

import (
	"reflect"
	"testing"
)

func TestGDEvictsLeastCredit(t *testing.T) {
	costs := costTable(map[uint64]Cost{2: 8}) // block C=2 is expensive
	c := newTestCache(t, 1, 4, NewGD(), costs)
	// Fill A(0),B(1),C(2),D(3): credits 1,1,8,1.
	for b := uint64(0); b < 4; b++ {
		c.access(b)
	}
	// Miss on 4: min credit is 1, shared by A,B,D; LRU among them is A.
	c.access(4)
	if !reflect.DeepEqual(c.evictions, []uint64{0}) {
		t.Fatalf("evictions = %v, want [0]", c.evictions)
	}
	// After subtraction B,D have credit 0, C has 7, E(4) has 1.
	// Next miss evicts B (LRU of the zero-credit blocks).
	c.access(5)
	if !reflect.DeepEqual(c.evictions, []uint64{0, 1}) {
		t.Fatalf("evictions = %v, want [0 1]", c.evictions)
	}
	// The high-cost block C survives both replacements.
	if !c.access(2) {
		t.Fatal("high-cost block should still be cached")
	}
}

func TestGDHitRestoresCredit(t *testing.T) {
	costs := costTable(map[uint64]Cost{0: 4})
	p := NewGD()
	c := newTestCache(t, 1, 2, p, costs)
	c.access(0) // credit 4
	c.access(1) // credit 1
	c.access(2) // evicts 1 (credit 1 < 4); credit of 0 drops to 3
	if !reflect.DeepEqual(c.evictions, []uint64{1}) {
		t.Fatalf("evictions = %v", c.evictions)
	}
	if got := p.credit[0][0]; got != 3 {
		t.Fatalf("credit of block 0 = %d, want 3", got)
	}
	c.access(0) // hit restores full cost
	if got := p.credit[0][0]; got != 4 {
		t.Fatalf("credit after hit = %d, want 4", got)
	}
}

func TestGDHighCostEventuallyEvicted(t *testing.T) {
	// Without re-references, even an expensive block must eventually leave:
	// each replacement depreciates it by the victim's credit.
	costs := costTable(map[uint64]Cost{100: 3})
	c := newTestCache(t, 1, 2, NewGD(), costs)
	c.access(100) // credit 3
	c.access(1)   // credit 1
	c.access(2)   // evict 1; 100 drops to 2
	c.access(3)   // evict 2 (credit 1 < 2); 100 drops to 1
	c.access(4)   // tie at credit 1; LRU is 100 -> evicted
	if c.access(100) {
		t.Fatal("block 100 should have been evicted")
	}
}

func TestGDInvalidate(t *testing.T) {
	costs := costTable(map[uint64]Cost{0: 9})
	c := newTestCache(t, 1, 2, NewGD(), costs)
	c.access(0)
	c.access(1)
	c.invalidate(0)
	c.access(2) // uses freed way, no eviction
	if len(c.evictions) != 0 {
		t.Fatalf("unexpected evictions %v", c.evictions)
	}
}
