package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability HTTP handler for a registry:
//
//	/metrics        plain-text exposition of every instrument
//	/debug/pprof/*  the standard Go profiling endpoints
//
// A dedicated mux is used so commands never expose pprof by accident through
// http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "costcache observability: /metrics, /debug/pprof/")
	})
	return mux
}

// Server is a running observability endpoint. Close it when the command is
// done so in-flight scrapes finish and the port frees deterministically.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// Addr returns the bound address (useful when addr used port 0).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down gracefully, letting in-flight requests (bounded
// by a short timeout, pprof profiles excepted) complete before forcing the
// remaining connections closed. It is safe to call more than once.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Timed out draining (a long pprof profile, say): hard-close.
		s.srv.Close()
	}
	<-s.done
	if err == http.ErrServerClosed || err == context.DeadlineExceeded {
		return nil
	}
	return err
}

// Serve starts the observability server on addr (e.g. "localhost:6060") in a
// background goroutine and returns a handle exposing the bound address (addr
// may use port 0) and a graceful Close for the commands' defer paths.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler is Serve for an arbitrary handler — commands that add
// endpoints beyond the registry exposition (cachebench mounts the engine's
// /debug/engine analytics next to /metrics) compose their mux and serve it
// with the same lifecycle.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln)
	}()
	return s, nil
}
