package replacement

// This file implements Belady's offline optimal replacement (OPT / MIN,
// Mattson et al. 1970) for a single cache set, used as the miss-count oracle
// the paper's related-work section contrasts LRU against. It is an evaluator
// rather than a Policy: it needs the whole future of the reference stream.
//
// The paper's companion work (Jeong & Dubois, SPAA 1999) shows that with two
// miss costs the optimal schedule may need to keep a victimized block
// "reserved" past its next reference, so cost-optimal offline replacement is
// not a simple greedy; OPT here is the classical miss-count optimum, which
// still lower-bounds the reachable miss count and is useful for calibrating
// how much room the locality estimate leaves.

// OptEvent is one event of a single-set reference stream: a reference to a
// block, or an external invalidation of a block.
type OptEvent struct {
	// Block is the block address (full address / block size).
	Block uint64
	// Invalidate marks a coherence invalidation instead of a reference.
	Invalidate bool
}

// OptimalMisses returns the minimum possible number of misses for the event
// stream on a fully associative set with the given number of ways, using
// Belady's farthest-next-use rule. Invalidations remove the block (if
// present) without counting a miss.
func OptimalMisses(events []OptEvent, ways int) int64 {
	if ways <= 0 {
		panic("replacement: ways must be positive")
	}
	const never = int(^uint(0) >> 1) // max int

	// next[i] = index of the next EFFECTIVE use of the same block after
	// event i, or `never`. An invalidation cuts the chain: a block that is
	// invalidated before its next reference is worthless to retain (the
	// reference will miss regardless), so its effective next use is never.
	// Plain farthest-next-REFERENCE Belady is not optimal in the
	// invalidation model; the CSOPT oracle's exhaustive search exposed the
	// difference.
	next := make([]int, len(events))
	lastRef := make(map[uint64]int)
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if e.Invalidate {
			next[i] = never
			delete(lastRef, e.Block)
			continue
		}
		if j, ok := lastRef[e.Block]; ok {
			next[i] = j
		} else {
			next[i] = never
		}
		lastRef[e.Block] = i
	}

	type resident struct {
		block   uint64
		nextUse int
	}
	cached := make([]resident, 0, ways)
	find := func(b uint64) int {
		for i := range cached {
			if cached[i].block == b {
				return i
			}
		}
		return -1
	}

	var misses int64
	for i, e := range events {
		idx := find(e.Block)
		if e.Invalidate {
			if idx >= 0 {
				cached[idx] = cached[len(cached)-1]
				cached = cached[:len(cached)-1]
			}
			continue
		}
		if idx >= 0 {
			cached[idx].nextUse = next[i]
			continue
		}
		misses++
		if len(cached) < ways {
			cached = append(cached, resident{e.Block, next[i]})
			continue
		}
		// Evict the resident whose next use is farthest in the future.
		victim := 0
		for j := 1; j < len(cached); j++ {
			if cached[j].nextUse > cached[victim].nextUse {
				victim = j
			}
		}
		cached[victim] = resident{e.Block, next[i]}
	}
	return misses
}

// LRUMisses returns the miss count of pure LRU on the same single-set event
// stream, for direct comparison with OptimalMisses.
func LRUMisses(events []OptEvent, ways int) int64 {
	if ways <= 0 {
		panic("replacement: ways must be positive")
	}
	order := make([]uint64, 0, ways) // order[0] = MRU
	find := func(b uint64) int {
		for i, x := range order {
			if x == b {
				return i
			}
		}
		return -1
	}
	var misses int64
	for _, e := range events {
		idx := find(e.Block)
		if e.Invalidate {
			if idx >= 0 {
				order = append(order[:idx], order[idx+1:]...)
			}
			continue
		}
		if idx >= 0 {
			b := order[idx]
			order = append(order[:idx], order[idx+1:]...)
			order = append([]uint64{b}, order...)
			continue
		}
		misses++
		if len(order) == ways {
			order = order[:ways-1]
		}
		order = append([]uint64{e.Block}, order...)
	}
	return misses
}
