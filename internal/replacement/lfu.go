package replacement

// LFU is in-cache least-frequently-used: each block counts its hits and the
// victim is the least-counted block, ties broken toward the LRU position.
// It represents the frequency end of the LRU-LFU spectrum discussed in the
// paper's related work ([9], Lee et al.); like LRU it is cost-blind, so it
// serves as another baseline for the cost-sensitive comparisons.
type LFU struct {
	stackBase
	count [][]uint32
}

// NewLFU returns a fresh LFU policy.
func NewLFU() *LFU { return &LFU{} }

// Name implements Policy.
func (*LFU) Name() string { return "LFU" }

// Reset implements Policy.
func (p *LFU) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.count = make([][]uint32, sets)
	for i := range p.count {
		p.count[i] = make([]uint32, ways)
	}
}

// Access implements Policy.
func (p *LFU) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy.
func (p *LFU) Touch(set, way int) {
	p.set(set).touch(way)
	if p.count[set][way] < ^uint32(0) {
		p.count[set][way]++
	}
}

// Victim implements Policy: the least-counted valid way, LRU-most among
// equals.
func (p *LFU) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	best := -1
	var bestCount uint32
	for pos := m.live - 1; pos >= 0; pos-- {
		w := m.stack[pos]
		if best < 0 || p.count[set][w] < bestCount {
			best, bestCount = w, p.count[set][w]
		}
	}
	return best
}

// Fill implements Policy: new blocks start with a count of one.
func (p *LFU) Fill(set, way int, tag uint64, cost Cost) {
	p.set(set).fill(way, tag, cost)
	p.count[set][way] = 1
}

// Invalidate implements Policy.
func (p *LFU) Invalidate(set, way int, tag uint64) {
	if way >= 0 {
		p.set(set).invalidate(way)
		p.count[set][way] = 0
	}
}

// SLRU is segmented LRU (a common LRU refinement in second-level caches,
// cf. the paper's related work [18]): each set is split into a protected
// segment, fed only by hits, and a probationary segment holding new blocks.
// Victims come from the probationary segment while it is non-empty, so
// single-use streaming blocks cannot push out proven re-used ones.
type SLRU struct {
	stackBase
	protected [][]bool
	// capacity of the protected segment per set.
	protCap int
}

// NewSLRU returns segmented LRU with a protected segment of half the ways.
func NewSLRU() *SLRU { return &SLRU{} }

// Name implements Policy.
func (*SLRU) Name() string { return "SLRU" }

// Reset implements Policy.
func (p *SLRU) Reset(sets, ways int) {
	p.reset(sets, ways)
	p.protCap = ways / 2
	if p.protCap < 1 {
		p.protCap = 1
	}
	p.protected = make([][]bool, sets)
	for i := range p.protected {
		p.protected[i] = make([]bool, ways)
	}
}

// Access implements Policy.
func (p *SLRU) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy: a hit promotes the block into the protected
// segment, demoting the protected segment's LRU-most member if it is full.
func (p *SLRU) Touch(set, way int) {
	m := p.set(set)
	m.touch(way)
	if p.protected[set][way] {
		return
	}
	// Count protected members; demote the stalest if at capacity.
	n := 0
	stalest := -1
	for pos := 0; pos < m.live; pos++ {
		w := m.stack[pos]
		if p.protected[set][w] {
			n++
			stalest = w // last seen in stack order = most LRU-ward
		}
	}
	if n >= p.protCap && stalest >= 0 {
		p.protected[set][stalest] = false
	}
	p.protected[set][way] = true
}

// Victim implements Policy: the LRU-most probationary block, or the
// LRU-most block overall if everything is protected.
func (p *SLRU) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	for pos := m.live - 1; pos >= 0; pos-- {
		w := m.stack[pos]
		if !p.protected[set][w] {
			return w
		}
	}
	return m.lruWay()
}

// Fill implements Policy: new blocks enter the probationary segment.
func (p *SLRU) Fill(set, way int, tag uint64, cost Cost) {
	p.set(set).fill(way, tag, cost)
	p.protected[set][way] = false
}

// Invalidate implements Policy.
func (p *SLRU) Invalidate(set, way int, tag uint64) {
	if way >= 0 {
		p.set(set).invalidate(way)
		p.protected[set][way] = false
	}
}
