package engine

import (
	"errors"
	"time"

	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
)

// ErrLoadTimeout is returned by GetOrLoad/GetOrLoadStale when the
// resilience deadline expires before the key's in-flight load completes.
// The load itself keeps running in the background and still fills the
// cache, so a later request for the key usually hits.
var ErrLoadTimeout = errors.New("engine: load deadline exceeded")

// ErrShed is returned when the key's cost-class circuit breaker is open and
// no stale value is available: the load was refused outright to let the
// backend recover.
var ErrShed = errors.New("engine: load shed by open circuit breaker")

// LoadInfo reports how one GetOrLoad call was answered, so a caller serving
// the engine over a wire (internal/server) can relay the outcome — and the
// cost this exact call charged — without re-deriving it from counter deltas.
// Exactly one of Hit/Coalesced is set for a non-leader outcome; a leader
// load has neither.
type LoadInfo struct {
	// Hit reports the value was already cached.
	Hit bool
	// Coalesced reports this call waited on another goroutine's in-flight
	// load for the key (it charged nothing).
	Coalesced bool
	// Stale reports the value came from an evicted-but-retained ghost.
	Stale bool
	// Charged is the miss cost this call's load charged at install — 0 on
	// hits, coalesced waits, stale serves, and loads whose install lost a
	// race with a concurrent Set. Summing Charged over calls reproduces the
	// engine_cost_paid stream exactly (minus Set-path installs).
	Charged int64
}

// GetOrLoadStale is GetOrLoad plus the degraded-mode contract: stale
// reports that the value came from an evicted-but-retained ghost (served
// when the breaker is open or the deadline expires, charging zero cost).
// Without Config.Resilience, stale is always false and the behavior — down
// to the counter stream — is identical to GetOrLoad before resilience
// existed.
func (e *Engine) GetOrLoadStale(key uint64, load Loader) (value any, stale bool, err error) {
	v, info, err := e.GetOrLoadInfo(key, load)
	return v, info.Stale, err
}

// GetOrLoadInfo is GetOrLoadStale plus the full per-call outcome (see
// LoadInfo). The counter stream is identical to GetOrLoad/GetOrLoadStale.
func (e *Engine) GetOrLoadInfo(key uint64, load Loader) (value any, info LoadInfo, err error) {
	s, set := e.place(key)
	sp := e.tracer.Begin(reqspan.OpGetOrLoad, s.id, key)
	return e.doGetOrLoad(s, set, key, load, sp)
}

// doGetOrLoad is GetOrLoadInfo's body after placement and span lease —
// shared by GetOrLoadInfo and GetOrLoadInfoTraced so the local and
// remote-bound paths stay byte-identical.
func (e *Engine) doGetOrLoad(s *shard, set int, key uint64, load Loader, sp *reqspan.Span) (value any, info LoadInfo, err error) {
	s.lock()
	sp.Mark(reqspan.StageLockWait)
	if w := s.find(set, key); w >= 0 {
		s.hits.Inc()
		s.policy.Access(set, key, true)
		s.policy.Touch(set, w)
		sp.Mark(reqspan.StageDecision)
		s.touchShadow(set, key)
		sp.Mark(reqspan.StageShadow)
		v := s.vals[set][w]
		s.mu.Unlock()
		e.tracer.Finish(sp, reqspan.OutcomeHit)
		return v, LoadInfo{Hit: true}, nil
	}
	if f, ok := s.flights[key]; ok {
		s.coalesced.Inc()
		sp.Mark(reqspan.StageDecision)
		s.mu.Unlock()
		return e.waitFlight(s, key, f, sp)
	}
	if e.res == nil {
		return e.loadInline(s, set, key, load, sp)
	}
	return e.loadResilient(s, set, key, load, sp)
}

// waitFlight is the coalesced-waiter path: block on the leader's flight,
// bounded by the resilience deadline when one is configured. A waiter whose
// deadline expires detaches with ErrLoadTimeout (or a stale ghost) while
// the load runs on — it still fills the cache for everyone after.
func (e *Engine) waitFlight(s *shard, key uint64, f *flight, sp *reqspan.Span) (any, LoadInfo, error) {
	if e.res != nil && e.res.Deadline() > 0 {
		t := time.NewTimer(e.res.Deadline())
		select {
		case <-f.done:
			t.Stop()
		case <-t.C:
			e.loadTimeouts.Inc()
			sp.Mark(reqspan.StageCoalesce)
			if e.res.ServeStale() {
				if v, ok := s.ghostValue(key); ok {
					e.staleServed.Inc()
					e.tracer.Finish(sp, reqspan.OutcomeCoalesced)
					return v, LoadInfo{Coalesced: true, Stale: true}, nil
				}
			}
			e.tracer.Finish(sp, reqspan.OutcomeCoalesced)
			return nil, LoadInfo{Coalesced: true}, ErrLoadTimeout
		}
	} else {
		<-f.done
	}
	sp.Mark(reqspan.StageCoalesce)
	if f.panicked {
		e.tracer.Finish(sp, reqspan.OutcomeError)
		panic(&LoaderPanic{Value: f.pan})
	}
	e.tracer.Finish(sp, reqspan.OutcomeCoalesced)
	return f.val, LoadInfo{Coalesced: true}, f.err
}

// loadInline is the legacy leader path (no Resilience configured): run the
// loader on the calling goroutine, install, publish. Kept verbatim so
// un-configured engines stay bit-identical with pre-resilience behavior.
// Entered holding the shard lock; the miss is not yet counted.
func (e *Engine) loadInline(s *shard, set int, key uint64, load Loader, sp *reqspan.Span) (any, LoadInfo, error) {
	s.misses.Inc()
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	if len(s.flights) > s.flightsMax {
		s.flightsMax = len(s.flights)
	}
	sp.Mark(reqspan.StageDecision)
	s.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				f.panicked, f.pan = true, r
			}
		}()
		f.val, f.cost, f.err = load(key)
	}()
	sp.Mark(reqspan.StageLoad)

	s.lock()
	sp.Mark(reqspan.StageLockWait) // the leader's second acquisition, to install
	delete(s.flights, key)
	if !f.panicked && f.err == nil {
		if w := s.find(set, key); w >= 0 {
			// A concurrent Set installed the key while the loader ran; the
			// loader's value wins so leader and waiters agree with the cache.
			s.vals[set][w] = f.val
			sp.Mark(reqspan.StageFill)
		} else {
			s.install(set, key, f.val, f.cost, sp)
			f.charged = int64(f.cost)
		}
	}
	s.mu.Unlock()
	close(f.done)
	if f.panicked {
		e.tracer.Finish(sp, reqspan.OutcomeError)
		panic(f.pan)
	}
	if f.err != nil {
		e.tracer.Finish(sp, reqspan.OutcomeError)
		return f.val, LoadInfo{}, f.err
	}
	e.tracer.Finish(sp, reqspan.OutcomeMiss)
	return f.val, LoadInfo{Charged: f.charged}, f.err
}

// loadResilient is the degraded-mode leader path: consult the class's
// breaker, run the load (with its cost-scaled retry budget) on a background
// goroutine, and wait bounded by the deadline. Entered holding the shard
// lock; the miss is not yet counted.
func (e *Engine) loadResilient(s *shard, set int, key uint64, load Loader, sp *reqspan.Span) (any, LoadInfo, error) {
	// Predict the key's cost class before its loader has run: the
	// configured classifier, else the cost the key last charged (its ghost).
	class := e.res.Class(key)
	if class == 0 && !e.res.HasClassifier() && s.ghosts != nil {
		if g, ok := s.ghosts[key]; ok {
			class = g.cost
		}
	}

	if !e.res.Allow(class) {
		// Shed: the class's breaker is open. Still a miss (the request
		// found nothing cached); answer stale if a ghost is retained,
		// charging nothing, else fail fast so the backend can recover.
		s.misses.Inc()
		e.shed.Inc()
		sp.Mark(reqspan.StageDecision)
		var v any
		var ok bool
		if e.res.ServeStale() && s.ghosts != nil {
			if g, gok := s.ghosts[key]; gok {
				v, ok = g.val, true
			}
		}
		s.mu.Unlock()
		if ok {
			e.staleServed.Inc()
			e.tracer.Finish(sp, reqspan.OutcomeMiss)
			return v, LoadInfo{Stale: true}, nil
		}
		e.tracer.Finish(sp, reqspan.OutcomeError)
		return nil, LoadInfo{}, ErrShed
	}

	s.misses.Inc()
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	if len(s.flights) > s.flightsMax {
		s.flightsMax = len(s.flights)
	}
	sp.Mark(reqspan.StageDecision)
	s.mu.Unlock()

	go e.runLoad(s, set, key, class, f, load)

	if dl := e.res.Deadline(); dl > 0 {
		t := time.NewTimer(dl)
		select {
		case <-f.done:
			t.Stop()
		case <-t.C:
			// The leader detaches; runLoad owns the flight and will still
			// install and wake the remaining waiters.
			e.loadTimeouts.Inc()
			sp.Mark(reqspan.StageLoad)
			if e.res.ServeStale() {
				if v, ok := s.ghostValue(key); ok {
					e.staleServed.Inc()
					e.tracer.Finish(sp, reqspan.OutcomeMiss)
					return v, LoadInfo{Stale: true}, nil
				}
			}
			e.tracer.Finish(sp, reqspan.OutcomeMiss)
			return nil, LoadInfo{}, ErrLoadTimeout
		}
	} else {
		<-f.done
	}
	sp.Mark(reqspan.StageLoad)
	if f.panicked {
		e.tracer.Finish(sp, reqspan.OutcomeError)
		panic(f.pan)
	}
	if f.err != nil {
		e.tracer.Finish(sp, reqspan.OutcomeError)
		return f.val, LoadInfo{}, f.err
	}
	sp.AddCost(f.charged)
	e.tracer.Finish(sp, reqspan.OutcomeMiss)
	return f.val, LoadInfo{Charged: f.charged}, nil
}

// runLoad executes one flight's load attempts on a goroutine of its own —
// the decoupling that lets leaders and waiters time out without killing the
// load. It retries per the class's budget (stopping early if the class's
// breaker trips mid-flight), reports every outcome to the breaker, installs
// on success and closes the flight.
func (e *Engine) runLoad(s *shard, set int, key uint64, class replacement.Cost, f *flight, load Loader) {
	attempts := 1 + e.res.Budget(class)
	for a := 0; a < attempts; a++ {
		if a > 0 {
			e.loadRetries.Inc()
			if d := e.res.Backoff(key, a); d > 0 {
				time.Sleep(d)
			}
		}
		f.val, f.cost, f.err = nil, 0, nil
		func() {
			defer func() {
				if r := recover(); r != nil {
					f.panicked, f.pan = true, r
				}
			}()
			f.val, f.cost, f.err = load(key)
		}()
		if f.panicked {
			break // a panic is not a backend outcome; re-raised in the leader
		}
		e.res.Report(class, f.err == nil)
		if f.err == nil || e.res.Tripped(class) {
			break
		}
	}
	s.lock()
	delete(s.flights, key)
	if !f.panicked && f.err == nil {
		if w := s.find(set, key); w >= 0 {
			// A concurrent Set installed the key while the loader ran; the
			// loader's value wins so flights agree with the cache.
			s.vals[set][w] = f.val
			if s.costv != nil {
				s.costv[set][w] = f.cost
			}
		} else {
			s.install(set, key, f.val, f.cost, nil)
			f.charged = int64(f.cost)
		}
	}
	s.mu.Unlock()
	close(f.done)
}
