package replacement

import "testing"

// testCache is a minimal set-associative cache used to drive policies per the
// Policy contract in unit and property tests. Addresses are block addresses
// (no offset bits). It mirrors the behaviour of internal/cache without the
// hierarchy machinery, so policy tests stay self-contained.
type testCache struct {
	t          *testing.T
	sets, ways int
	p          Policy
	tags       [][]uint64
	valid      [][]bool
	cost       func(block uint64) Cost

	hits, misses int64
	aggCost      int64
	evictions    []uint64 // block addresses, in order

	// onEvict, when set, observes each eviction before the fill; the cache
	// arrays still hold the pre-fill state.
	onEvict func(set int, victimBlock uint64)
}

func newTestCache(t *testing.T, sets, ways int, p Policy, cost func(uint64) Cost) *testCache {
	c := &testCache{t: t, sets: sets, ways: ways, p: p, cost: cost}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
	}
	p.Reset(sets, ways)
	return c
}

func (c *testCache) setTag(block uint64) (int, uint64) {
	return int(block % uint64(c.sets)), block / uint64(c.sets)
}

func (c *testCache) lookup(set int, tag uint64) int {
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return w
		}
	}
	return -1
}

// access runs one reference; it returns true on a hit.
func (c *testCache) access(block uint64) bool {
	set, tag := c.setTag(block)
	way := c.lookup(set, tag)
	c.p.Access(set, tag, way >= 0)
	if way >= 0 {
		c.hits++
		c.p.Touch(set, way)
		return true
	}
	c.misses++
	c.aggCost += int64(c.cost(block))
	w := -1
	for i := 0; i < c.ways; i++ {
		if !c.valid[set][i] {
			w = i
			break
		}
	}
	if w < 0 {
		w = c.p.Victim(set)
		if w < 0 || w >= c.ways || !c.valid[set][w] {
			c.t.Fatalf("Victim(%d) returned invalid way %d", set, w)
		}
		victim := c.tags[set][w]*uint64(c.sets) + uint64(set)
		c.evictions = append(c.evictions, victim)
		if c.onEvict != nil {
			c.onEvict(set, victim)
		}
	}
	c.tags[set][w] = tag
	c.valid[set][w] = true
	c.p.Fill(set, w, tag, c.cost(block))
	return false
}

// invalidate removes the block, notifying the policy either way.
func (c *testCache) invalidate(block uint64) {
	set, tag := c.setTag(block)
	way := c.lookup(set, tag)
	c.p.Invalidate(set, way, tag)
	if way >= 0 {
		c.valid[set][way] = false
	}
}

func unitCost(uint64) Cost { return 1 }

// costTable builds a cost function from a map with a default of 1.
func costTable(m map[uint64]Cost) func(uint64) Cost {
	return func(b uint64) Cost {
		if c, ok := m[b]; ok {
			return c
		}
		return 1
	}
}
