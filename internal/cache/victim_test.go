package cache

import (
	"testing"

	"costcache/internal/cost"
	"costcache/internal/replacement"
)

func TestVictimBufferCapturesAndSwapsBack(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64,
		Cost: cost.Uniform(10)})
	v := NewVictimBuffer(c, 2, nil, cost.Uniform(10), 1)
	v.Access(0, false)   // miss, cost 10
	v.Access(64, false)  // miss, cost 10
	v.Access(128, false) // miss, evicts block 0 into the buffer
	if hits, inserts := v.Stats(); hits != 0 || inserts != 1 {
		t.Fatalf("stats = %d/%d", hits, inserts)
	}
	// Re-reference block 0: buffer hit, charged 1 instead of 10.
	if !v.Access(0, false) {
		t.Fatal("buffer hit must report a hit")
	}
	if hits, _ := v.Stats(); hits != 1 {
		t.Fatal("buffer hit not counted")
	}
	if got := c.Stats().AggCost; got != 31 { // three full misses at 10 plus the 1-cost swap-in
		t.Fatalf("AggCost = %d, want 31", got)
	}
	if !c.Contains(0) {
		t.Fatal("block must be back in the cache")
	}
}

func TestVictimBufferFilter(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64})
	keepOdd := func(block uint64) bool { return block%2 == 1 }
	v := NewVictimBuffer(c, 4, keepOdd, nil, 0)
	v.Access(0, false)
	v.Access(64, false)  // block 1
	v.Access(128, false) // evicts block 0 (even: not kept)
	v.Access(192, false) // evicts block 1 (odd: kept)
	if _, inserts := v.Stats(); inserts != 1 {
		t.Fatalf("inserts = %d, want 1 (filter)", inserts)
	}
	if v.lookup(0) >= 0 || v.lookup(1) < 0 {
		t.Fatal("filter captured the wrong block")
	}
}

func TestVictimBufferLRUReplacement(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 * 64, Ways: 1, BlockBytes: 64})
	v := NewVictimBuffer(c, 2, nil, nil, 0)
	// Stream 4 blocks through the 1-entry cache: buffer keeps the last two
	// evicted.
	for b := uint64(0); b < 4; b++ {
		v.Access(b*64, false)
	}
	// Evicted order: 0,1,2. Buffer holds {1,2}.
	if v.lookup(0) >= 0 {
		t.Fatal("oldest victim should have been replaced in the buffer")
	}
	if v.lookup(1) < 0 || v.lookup(2) < 0 {
		t.Fatal("recent victims missing")
	}
}

func TestVictimBufferInvalidate(t *testing.T) {
	c := New(Config{Name: "t", SizeBytes: 1 * 64, Ways: 1, BlockBytes: 64})
	v := NewVictimBuffer(c, 2, nil, nil, 0)
	v.Access(0, false)
	v.Access(64, false) // evicts block 0 into buffer
	v.Invalidate(0)
	if v.lookup(0) >= 0 {
		t.Fatal("invalidation must purge the buffer")
	}
	v.Invalidate(64)
	if c.Contains(64) {
		t.Fatal("cache copy must be gone")
	}
}

func TestVictimBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewVictimBuffer(New(Config{Name: "t", SizeBytes: 64, Ways: 1, BlockBytes: 64}), 0, nil, nil, 0)
}

// The paper's utilization argument ("cost-sensitive replacement ... can
// maximize cache utilization, which is always a problem in schemes relying
// on cache partitioning"): at EQUAL TOTAL BLOCK STORAGE — seven frames as a
// unified 7-way set under DCL versus a 4-way LRU set plus a 3-entry
// high-cost-only victim buffer — the unified cost-sensitive cache wins,
// because the buffer's frames are useless to low-cost blocks.
func TestVictimBufferVsDCL(t *testing.T) {
	costOf := func(b uint64) replacement.Cost {
		if b < 4 {
			return 16
		}
		return 1
	}
	src := cost.Func(costOf)
	mkRefs := func() []uint64 {
		var refs []uint64
		for i := 0; i < 400; i++ {
			for b := uint64(0); b < 4; b++ {
				refs = append(refs, b*64)
			}
			for r := 0; r < 2; r++ {
				for b := uint64(10); b < 13; b++ {
					refs = append(refs, b*64)
				}
			}
		}
		return refs
	}
	// Partitioned: 4 general frames (LRU) + 3 high-cost-only buffer frames.
	lruC := New(Config{Name: "vb", SizeBytes: 4 * 64, Ways: 4, BlockBytes: 64, Cost: src})
	vb := NewVictimBuffer(lruC, 3, func(b uint64) bool { return costOf(b) > 1 }, src, 1)
	for _, a := range mkRefs() {
		vb.Access(a, false)
	}
	// Unified: the same 7 frames in one set under DCL.
	dclC := New(Config{Name: "dcl", SizeBytes: 7 * 64, Ways: 7, BlockBytes: 64,
		Policy: replacement.NewDCL(), Cost: src})
	for _, a := range mkRefs() {
		dclC.Access(a, false)
	}
	if dclC.Stats().AggCost >= lruC.Stats().AggCost {
		t.Fatalf("unified DCL cost %d not better than partitioned %d at equal storage",
			dclC.Stats().AggCost, lruC.Stats().AggCost)
	}
}
