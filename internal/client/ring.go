package client

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"

	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/resilience"
	"costcache/internal/wire"
)

// Ring routes keys across N nodes by consistent hashing: each node owns
// VNodes points on a 64-bit hash circle and a key belongs to the first point
// clockwise of its hash. Adding or removing a node only remaps the keys in
// its arcs (~1/N of the space), which is what makes the tier scale out
// without a global reshuffle.
//
// With a Resilience configured, each node gets a circuit breaker (its ring
// index is the breaker's class, so breaker state shows up per node in the
// registry's engine_breaker_state{class="i"} gauges). A request for a node
// whose breaker is open fails over to the next distinct node clockwise —
// bounded at one hop: two simultaneously-broken neighbors mean the request
// sheds rather than hammering the whole ring.
type Ring struct {
	clients []*Client
	res     *resilience.Resilience
	points  []ringPoint // sorted by hash

	// Per-node routing-decision counters (client_failover{node="i"} /
	// client_shed{node="i"}): failover counts requests routed away from node
	// i because its breaker was open; shed counts requests refused outright
	// because node i's successor was broken too.
	failover []*obs.Counter
	shed     []*obs.Counter
}

type ringPoint struct {
	hash uint64
	node int
}

// RingConfig describes a ring.
type RingConfig struct {
	// Addrs are the node addresses (at least one).
	Addrs []string
	// Client configures each node's pool (Addr is overridden per node).
	Client Config
	// VNodes is the number of ring points per node (0 = 64).
	VNodes int
	// Resilience, when non-nil, drives a per-node breaker: request outcomes
	// are reported per node and an open breaker fails the node's keys over
	// to its successor.
	Resilience *resilience.Resilience
	// Registry, when non-nil, receives the client_failover{node}/
	// client_shed{node} routing-decision counters — use the registry the
	// run's other client-side metrics live in so the serving tier's routing
	// behavior lands next to them.
	Registry *obs.Registry
}

// NewRing dials every node and builds the ring.
func NewRing(cfg RingConfig) (*Ring, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("client: ring needs at least one address")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	r := &Ring{res: cfg.Resilience}
	counter := func(name string, node int) *obs.Counter {
		if cfg.Registry == nil {
			return &obs.Counter{}
		}
		return cfg.Registry.Counter(obs.Name(name, "node", strconv.Itoa(node)))
	}
	for i, addr := range cfg.Addrs {
		cc := cfg.Client
		cc.Addr = addr
		cl, err := Dial(cc)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("client: ring node %d (%s): %w", i, addr, err)
		}
		r.clients = append(r.clients, cl)
		r.failover = append(r.failover, counter("client_failover", i))
		r.shed = append(r.shed, counter("client_shed", i))
		for v := 0; v < cfg.VNodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(addr, v), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// pointHash places vnode v of addr on the circle (FNV-1a over "addr#v").
func pointHash(addr string, v int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s#%d", addr, v)
	return h.Sum64()
}

// keyHash spreads keys over the circle with the same splitmix64 finalizer
// the engine uses for set placement, so sequential key spaces don't clump.
func keyHash(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return key
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return len(r.clients) }

// Node returns node i's client (for per-node stats).
func (r *Ring) Node(i int) *Client { return r.clients[i] }

// Pick returns the node owning key: the first ring point clockwise of the
// key's hash.
func (r *Ring) Pick(key uint64) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// successor returns the next distinct node clockwise of node's first point
// at or after the key's hash (node itself if it is the only node).
func (r *Ring) successor(key uint64, node int) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for n := 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if p.node != node {
			return p.node
		}
	}
	return node
}

// route picks the serving node for key, honoring breakers: an open breaker
// fails over to the successor; a successor whose breaker is also open sheds.
func (r *Ring) route(key uint64) (int, error) {
	node := r.Pick(key)
	if r.res == nil || r.res.Allow(replacement.Cost(node)) {
		return node, nil
	}
	next := r.successor(key, node)
	if next == node || !r.res.Allow(replacement.Cost(next)) {
		r.shed[node].Inc()
		return -1, &Error{Code: 0, Msg: fmt.Sprintf("node %d breaker open, no healthy successor", node)}
	}
	r.failover[node].Inc()
	return next, nil
}

// report feeds the request outcome to node's breaker. Protocol errors the
// server answered (shed, timeout, draining, bad request) still prove the
// node is up; only transport failures count against it.
func (r *Ring) report(node int, err error) {
	if r.res == nil {
		return
	}
	_, protocol := err.(*Error)
	r.res.Report(replacement.Cost(node), err == nil || protocol)
}

// GetOrLoad routes key to its ring node and performs the request there.
func (r *Ring) GetOrLoad(ns string, key uint64, cost int64) (Result, error) {
	p, node, err := r.StartGetOrLoad(ns, key, cost)
	if err != nil {
		return Result{}, err
	}
	res, err := p.Wait()
	r.Report(node, err)
	return res, err
}

// StartGetOrLoad routes key and writes the request, returning the handle
// and the serving node. The caller must feed Wait's error back through
// Report(node, err) so the node's breaker sees the outcome.
func (r *Ring) StartGetOrLoad(ns string, key uint64, cost int64) (*Pending, int, error) {
	return r.StartGetOrLoadTraced(ns, key, cost, wire.TraceCtx{})
}

// StartGetOrLoadTraced is StartGetOrLoad with a propagated trace context
// (see Client.StartGetOrLoadTraced).
func (r *Ring) StartGetOrLoadTraced(ns string, key uint64, cost int64, tc wire.TraceCtx) (*Pending, int, error) {
	node, err := r.route(key)
	if err != nil {
		return nil, -1, err
	}
	p, err := r.clients[node].StartGetOrLoadTraced(ns, key, cost, tc)
	if err != nil {
		r.report(node, err)
		return nil, node, err
	}
	return p, node, nil
}

// TraceSupported reports whether every node negotiated FeatTrace — the gate
// for a remote run to rely on cluster-wide span stitching.
func (r *Ring) TraceSupported() bool {
	for _, c := range r.clients {
		if !c.TraceSupported() {
			return false
		}
	}
	return true
}

// Offsets returns each node's estimated server-minus-client clock offset in
// ns (see Client.Offset), indexed by ring node.
func (r *Ring) Offsets() []int64 {
	offs := make([]int64, len(r.clients))
	for i, c := range r.clients {
		offs[i] = c.Offset()
	}
	return offs
}

// Manifests fetches every node's manifest, indexed by ring node.
func (r *Ring) Manifests() ([]wire.NodeManifest, error) {
	ms := make([]wire.NodeManifest, len(r.clients))
	for i, c := range r.clients {
		m, err := c.Manifest()
		if err != nil {
			return nil, fmt.Errorf("client: ring node %d (%s): %w", i, c.Addr(), err)
		}
		ms[i] = m
	}
	return ms, nil
}

// RingDebug is the "ring" block of the /debug/engine document a remote run
// serves: the routing topology plus per-node routing-decision counters.
type RingDebug struct {
	Nodes  int             `json:"nodes"`
	VNodes int             `json:"vnodes"`
	Rows   []RingDebugNode `json:"rows"`
}

// RingDebugNode is one node's ring row.
type RingDebugNode struct {
	Node     int    `json:"node"`
	Addr     string `json:"addr"`
	Points   int    `json:"points"`
	Failover int64  `json:"failover"`
	Shed     int64  `json:"shed"`
	Trace    bool   `json:"trace"`
	OffsetNs int64  `json:"offset_ns"`
}

// Debug snapshots the ring for the /debug/engine "ring" block.
func (r *Ring) Debug() *RingDebug {
	d := &RingDebug{Nodes: len(r.clients), VNodes: len(r.points) / len(r.clients)}
	points := make([]int, len(r.clients))
	for _, p := range r.points {
		points[p.node]++
	}
	for i, c := range r.clients {
		d.Rows = append(d.Rows, RingDebugNode{
			Node:     i,
			Addr:     c.Addr(),
			Points:   points[i],
			Failover: r.failover[i].Value(),
			Shed:     r.shed[i].Value(),
			Trace:    c.TraceSupported(),
			OffsetNs: c.Offset(),
		})
	}
	return d
}

// Report feeds a two-phase request's final outcome to node's breaker (a
// no-op without a Resilience config or for node < 0).
func (r *Ring) Report(node int, err error) {
	if node >= 0 {
		r.report(node, err)
	}
}

// Get routes key to its ring node and looks it up there.
func (r *Ring) Get(ns string, key uint64) ([]byte, bool, error) {
	node, err := r.route(key)
	if err != nil {
		return nil, false, err
	}
	v, ok, err := r.clients[node].Get(ns, key)
	r.report(node, err)
	return v, ok, err
}

// Set routes key to its ring node and installs it there.
func (r *Ring) Set(ns string, key uint64, cost int64, value []byte) error {
	node, err := r.route(key)
	if err != nil {
		return err
	}
	err = r.clients[node].Set(ns, key, cost, value)
	r.report(node, err)
	return err
}

// Stats sums ns's engine counters across every node (serving-tier counters
// sum too: each node reports its own).
func (r *Ring) Stats(ns string) (wire.Stats, error) {
	var sum wire.Stats
	sum.Namespace = ns
	for _, c := range r.clients {
		st, err := c.Stats(ns)
		if err != nil {
			return wire.Stats{}, err
		}
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.Coalesced += st.Coalesced
		sum.Evictions += st.Evictions
		sum.CostPaid += st.CostPaid
		sum.LockWaitNs += st.LockWaitNs
		sum.ShadowCost += st.ShadowCost
		sum.LoadTimeouts += st.LoadTimeouts
		sum.LoadRetries += st.LoadRetries
		sum.Shed += st.Shed
		sum.StaleServed += st.StaleServed
		sum.Expired += st.Expired
		sum.ConnsAccepted += st.ConnsAccepted
		sum.ConnsActive += st.ConnsActive
		sum.FramesIn += st.FramesIn
		sum.FramesOut += st.FramesOut
		sum.ServerShed += st.ServerShed
	}
	return sum, nil
}

// Close tears down every node's pool.
func (r *Ring) Close() {
	for _, c := range r.clients {
		if c != nil {
			c.Close()
		}
	}
}
