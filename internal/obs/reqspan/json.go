package reqspan

import (
	"strconv"

	"costcache/internal/obs/span"
)

// appendChromeTs renders a ns timestamp as the trace-event format's
// fractional microseconds, identical to the simulator tracer's rendering.
func appendChromeTs(b []byte, ns int64) []byte { return span.AppendChromeTs(b, ns) }

// appendReqSpanJSON renders one request span as a single JSON line with a
// fixed field order, byte-for-byte deterministic for a given span. Schema
// (all times in wall-clock ns since the tracer epoch):
//
//	{"id":7,"kind":"req","shard":3,"key":9041144,"op":"getorload",
//	 "outcome":"miss","cost":8,"start":10250,"end":91375,
//	 "stages":[{"stage":"lock_wait","start":10250,"end":10400},...]}
//
// Two optional fields slot in after "kind" on serving-tier spans: "node"
// (the tracer's Config.Node, when set) and "client_id" (the propagated
// client span id on spans created by BeginRemote) — the identity and join
// key report -stitch uses to pair server spans with client spans.
//
// "cost" is the fill charge the request paid (0 for hits and coalesced
// waiters); at stride-1 sampling the emitted costs sum to the engine's
// cost_paid counter, the identity report -explain reconciles.
//
// The "kind":"req" discriminator is what lets the manifest validator and
// downstream tooling tell engine request lines from the simulator's
// miss-lifecycle lines in a shared JSONL stream.
func (t *Tracer) appendReqSpanJSON(b []byte, s *Span) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, s.ID, 10)
	b = append(b, `,"kind":"req"`...)
	if t.node != "" {
		b = append(b, `,"node":`...)
		b = strconv.AppendQuote(b, t.node)
	}
	if s.Client != 0 {
		b = append(b, `,"client_id":`...)
		b = strconv.AppendUint(b, s.Client, 10)
	}
	b = append(b, `,"shard":`...)
	b = strconv.AppendInt(b, int64(s.Shard), 10)
	b = append(b, `,"key":`...)
	b = strconv.AppendUint(b, s.Key, 10)
	b = append(b, `,"op":"`...)
	b = append(b, s.Op.String()...)
	b = append(b, `","outcome":"`...)
	b = append(b, s.Outcome.String()...)
	b = append(b, `","cost":`...)
	b = strconv.AppendInt(b, s.Cost, 10)
	b = append(b, `,"start":`...)
	b = strconv.AppendInt(b, s.Start, 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, s.End, 10)
	b = append(b, `,"stages":[`...)
	for i, seg := range s.Segs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"stage":"`...)
		b = append(b, seg.Stage.String()...)
		b = append(b, `","start":`...)
		b = strconv.AppendInt(b, seg.Start, 10)
		b = append(b, `,"end":`...)
		b = strconv.AppendInt(b, seg.End, 10)
		b = append(b, '}')
	}
	b = append(b, ']', '}', '\n')
	return b
}

// chromePidBase offsets engine-shard "processes" past the simulator's node
// pids (0..nodes-1), so merged traces lay the two systems out side by side
// without track collisions.
const chromePidBase = 1000

// emit renders a finished span to whichever sinks are attached. One mutex
// serializes emitters: concurrent request goroutines finish spans in any
// order, and the Chrome lane allocator (first-fit on per-lane end times)
// is only correct single-threaded.
func (t *Tracer) emit(sp *Span) {
	t.emitMu.Lock()
	defer t.emitMu.Unlock()
	if t.jsonl != nil {
		t.buf = t.appendReqSpanJSON(t.buf[:0], sp)
		t.jsonl.WriteLine(t.buf)
	}
	if t.chrome != nil {
		t.chromeSpan(sp)
	}
}

// lane picks the first lane of the shard whose previous slice ended at or
// before start, extending the lane set when all lanes are busy. Because
// spans are emitted at Finish, not Begin, a later-finishing span can start
// earlier than an already-placed one; first-fit on end times still yields
// non-overlapping lanes because a lane is granted only when its previous
// occupant ended before the newcomer began.
func (t *Tracer) lane(shard int, start, end int64) int {
	ends := t.lanes[shard]
	for i, e := range ends {
		if e <= start {
			if end > e {
				ends[i] = end
			}
			return i
		}
	}
	t.lanes[shard] = append(ends, end)
	if len(ends) == 0 {
		prefix := `"name":"engine shard `
		if t.node != "" {
			prefix = `"name":"` + t.node + ` shard `
		}
		t.chromeMeta(shard, `"process_name"`, prefix, int64(shard), 0)
	}
	t.chromeMeta(shard, `"thread_name"`, `"name":"req lane `, int64(len(ends)), len(ends))
	return len(ends)
}

// chromeMeta emits a process_name/thread_name metadata event for a shard
// track.
func (t *Tracer) chromeMeta(shard int, kind, namePrefix string, nameN int64, tid int) {
	b := t.buf[:0]
	b = append(b, `{"name":`...)
	b = append(b, kind...)
	b = append(b, `,"ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(chromePidBase+shard), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{`...)
	b = append(b, namePrefix...)
	b = strconv.AppendInt(b, nameN, 10)
	b = append(b, `"}}`...)
	t.chrome.Event(b)
	t.buf = b[:0]
}

// chromeSlice starts one complete ("X") event carrying the shared slice
// fields; the caller appends args and the closing braces before flushing.
func (t *Tracer) chromeSlice(shard, tid int, name string, start, end int64) []byte {
	b := t.buf[:0]
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","cat":"req","ph":"X","pid":`...)
	b = strconv.AppendInt(b, int64(chromePidBase+shard), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = appendChromeTs(b, start)
	b = append(b, `,"dur":`...)
	b = appendChromeTs(b, end-start)
	return b
}

// chromeSpan renders one request as a slice named by its outcome with its
// stage segments as nested child slices, on a per-shard track.
func (t *Tracer) chromeSpan(sp *Span) {
	tid := t.lane(sp.Shard, sp.Start, sp.End)

	b := t.chromeSlice(sp.Shard, tid, sp.Outcome.String(), sp.Start, sp.End)
	b = append(b, `,"args":{"id":`...)
	b = strconv.AppendUint(b, sp.ID, 10)
	if sp.Client != 0 {
		b = append(b, `,"client_id":`...)
		b = strconv.AppendUint(b, sp.Client, 10)
	}
	b = append(b, `,"key":`...)
	b = strconv.AppendUint(b, sp.Key, 10)
	b = append(b, `,"op":"`...)
	b = append(b, sp.Op.String()...)
	b = append(b, `"}}`...)
	t.chrome.Event(b)
	t.buf = b[:0]

	for _, seg := range sp.Segs {
		if seg.End <= seg.Start {
			continue // zero-length stages would confuse slice nesting
		}
		b := t.chromeSlice(sp.Shard, tid, seg.Stage.String(), seg.Start, seg.End)
		b = append(b, '}')
		t.chrome.Event(b)
		t.buf = b[:0]
	}
}
