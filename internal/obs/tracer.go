package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"costcache/internal/replacement"
)

// Record is one traced decision event, stamped with the emitting policy and
// a global sequence number.
type Record struct {
	// Seq is the 1-based global sequence number across all bound policies.
	Seq uint64
	// Policy is the label the event's observer was bound with.
	Policy string
	// Shard is the engine shard the emitting policy serves, stamped by
	// BindShard (-1 for observers bound with Bind: simulators have no
	// shards). With it, Event.Set — a shard-local index — becomes a stable
	// cross-run identity for the decision site.
	Shard int
	// Event is the raw decision event. Its CostClass() is the record's
	// stable key-class tag, rendered into the JSONL line as "class".
	replacement.Event
}

// Tracer collects replacement decision events into a fixed ring buffer,
// counts them per (policy, kind), and optionally streams each event as one
// JSON line to a sink. Bind returns a replacement.Observer that stamps
// events with a policy label; a single Tracer can observe many policies.
//
// Tracing an un-observed policy costs nothing (policies gate on a nil
// observer); tracing with no sink costs a mutex and a ring-slot copy per
// event and does not allocate after the ring fills.
type Tracer struct {
	mu     sync.Mutex
	ring   []Record
	seq    uint64
	sink   io.Writer
	buf    []byte
	err    error
	counts map[string]*[replacement.NumEventKinds]int64
}

// NewTracer returns a tracer whose ring keeps the last capacity events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		ring:   make([]Record, 0, capacity),
		counts: make(map[string]*[replacement.NumEventKinds]int64),
	}
}

// SetSink streams every subsequent event to w as JSONL. Pass nil to stop
// streaming. The caller owns buffering and closing of w.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sink = w
}

// Err returns the first sink write error, if any; once a write fails the
// sink is dropped and tracing continues ring-only.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Bind returns an observer that records events under the given policy
// label. Attach it with replacement.Observable.SetObserver.
func (t *Tracer) Bind(policy string) replacement.Observer {
	return t.BindShard(policy, -1)
}

// BindShard returns an observer that records events under the given policy
// label with a shard tag — the engine binds one per shard, so every record
// carries the shard its decision happened on (rendered into the JSONL line
// when non-negative). Counts aggregate across shards under the one policy
// label, keeping trace_events series comparable with simulator runs.
func (t *Tracer) BindShard(policy string, shard int) replacement.Observer {
	t.mu.Lock()
	if _, ok := t.counts[policy]; !ok {
		t.counts[policy] = new([replacement.NumEventKinds]int64)
	}
	t.mu.Unlock()
	return boundObserver{t: t, policy: policy, shard: shard}
}

type boundObserver struct {
	t      *Tracer
	policy string
	shard  int
}

// Observe implements replacement.Observer.
func (b boundObserver) Observe(e replacement.Event) { b.t.record(b.policy, b.shard, e) }

func (t *Tracer) record(policy string, shard int, e replacement.Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	r := Record{Seq: t.seq, Policy: policy, Shard: shard, Event: e}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[int((t.seq-1)%uint64(cap(t.ring)))] = r
	}
	if c, ok := t.counts[policy]; ok {
		c[e.Kind]++
	} else {
		c := new([replacement.NumEventKinds]int64)
		c[e.Kind]++
		t.counts[policy] = c
	}
	if t.sink != nil {
		t.buf = appendJSON(t.buf[:0], r)
		if _, err := t.sink.Write(t.buf); err != nil {
			t.err = fmt.Errorf("obs: trace sink: %w", err)
			t.sink = nil
		}
	}
}

// appendJSON renders one record as a single JSON line with a fixed field
// order, so traces are byte-for-byte deterministic (the golden tests rely on
// this). Optional fields (shard, counter, false_match) appear only when set;
// "class" is the stable key-class tag (Event.CostClass) cross-run diffing
// groups by.
func appendJSON(b []byte, r Record) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, r.Seq, 10)
	b = append(b, `,"policy":"`...)
	b = append(b, r.Policy...)
	b = append(b, `","kind":"`...)
	b = append(b, r.Kind.String()...)
	b = append(b, `","class":"`...)
	b = replacement.AppendClass(b, r.Cost)
	b = append(b, `"`...)
	if r.Shard >= 0 {
		b = append(b, `,"shard":`...)
		b = strconv.AppendInt(b, int64(r.Shard), 10)
	}
	b = append(b, `,"set":`...)
	b = strconv.AppendInt(b, int64(r.Set), 10)
	b = append(b, `,"way":`...)
	b = strconv.AppendInt(b, int64(r.Way), 10)
	b = append(b, `,"pos":`...)
	b = strconv.AppendInt(b, int64(r.StackPos), 10)
	b = append(b, `,"tag":`...)
	b = strconv.AppendUint(b, r.Tag, 10)
	b = append(b, `,"cost":`...)
	b = strconv.AppendInt(b, int64(r.Cost), 10)
	if r.Kind == replacement.EvEvict {
		b = append(b, `,"lru_cost":`...)
		b = strconv.AppendInt(b, int64(r.LRUCost), 10)
	}
	if r.Counter != 0 {
		b = append(b, `,"counter":`...)
		b = strconv.AppendUint(b, uint64(r.Counter), 10)
	}
	if r.FalseMatch {
		b = append(b, `,"false_match":true`...)
	}
	b = append(b, '}', '\n')
	return b
}

// Events returns the ring contents oldest-first (at most the ring capacity;
// older events have been overwritten).
func (t *Tracer) Events() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		copy(out, t.ring)
		return out
	}
	head := int(t.seq % uint64(cap(t.ring))) // index of the oldest record
	n := copy(out, t.ring[head:])
	copy(out[n:], t.ring[:head])
	return out
}

// Total returns the number of events observed (including any that fell out
// of the ring).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Count returns how many events of kind the given policy emitted.
func (t *Tracer) Count(policy string, kind replacement.EventKind) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.counts[policy]; ok {
		return c[kind]
	}
	return 0
}

// Policies returns the labels Bind has been called with, in no particular
// order.
func (t *Tracer) Policies() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.counts))
	for p := range t.counts {
		out = append(out, p)
	}
	return out
}

// PublishCounts mirrors the per-(policy, kind) event totals into reg as
// counters named trace_events{policy="...",kind="..."}. Call it after a run
// (or periodically) to expose trace statistics on /metrics.
func (t *Tracer) PublishCounts(reg *Registry) {
	t.mu.Lock()
	type cell struct {
		name string
		v    int64
	}
	cells := make([]cell, 0, len(t.counts)*replacement.NumEventKinds)
	for policy, c := range t.counts {
		for k, v := range c {
			if v == 0 {
				continue
			}
			kind := replacement.EventKind(k)
			cells = append(cells, cell{Name("trace_events", "policy", policy, "kind", kind.String()), v})
		}
	}
	t.mu.Unlock()
	for _, c := range cells {
		ctr := reg.Counter(c.name)
		if d := c.v - ctr.Value(); d > 0 {
			ctr.Add(d)
		}
	}
}
