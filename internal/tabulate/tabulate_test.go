package tabulate

import (
	"strings"
	"testing"
)

func TestFprintAligned(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	out := tb.String()
	if !strings.Contains(out, "Demo\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: "value" column starts at the same offset on data rows.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestAddPadsShortRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Add("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row not padded: %v", tb.Rows[0])
	}
}

func TestAddF(t *testing.T) {
	tb := New("", "s", "f", "i")
	tb.AddF("x", 3.14159, 42)
	got := tb.Rows[0]
	if got[0] != "x" || got[1] != "3.14" || got[2] != "42" {
		t.Fatalf("AddF row = %v", got)
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Add(`va"l`, "x,y")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"va\"\"l\",\"x,y\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestPct(t *testing.T) {
	if Pct(0.12345) != "12.35" {
		t.Fatalf("Pct = %q", Pct(0.12345))
	}
}
