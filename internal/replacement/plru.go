package replacement

import "math/bits"

// PLRU is tree pseudo-LRU, the LRU approximation widely implemented in
// hardware (the paper notes real systems adopt "LRU or one of its
// approximations with lower implementation overhead"). Each set keeps a
// binary tree of direction bits over the ways; a hit flips the bits on its
// path away from the accessed way, and the victim is found by following the
// bits. Requires a power-of-two associativity.
//
// PLRU also serves as the base for CSPLRU below, which demonstrates the
// paper's concluding claim that "the general approach of pursuing high-cost
// block reservation and of depreciating their cost ... could also be
// applied to other replacement algorithms besides LRU".
type PLRU struct {
	ways  int
	tree  [][]bool // per set: ways-1 internal nodes, heap order
	tag   [][]uint64
	cost  [][]Cost
	valid [][]bool

	// Cost-sensitive extension state. Unlike BCL, whose Acost follows the
	// unique LRU-position occupant, PLRU's designated victim oscillates as
	// fills redirect the tree; a candidate-tracked Acost would reload on
	// every oscillation and pin high-cost blocks forever. Instead each way
	// carries its own depreciating credit: loaded at fill, restored on a
	// hit, and reduced by factor x the sacrifice's cost whenever the block
	// is protected.
	sensitive bool
	factor    Cost
	credit    [][]Cost

	invoked, succeeded int64
}

// NewPLRU returns plain tree pseudo-LRU.
func NewPLRU() *PLRU { return &PLRU{} }

// NewCSPLRU returns the cost-sensitive pseudo-LRU extension: the
// tree-designated victim is reserved while cheaper blocks exist, its cost
// depreciated by factor x the sacrificed block's cost (BCL's scheme ported
// off the exact LRU stack). factor <= 0 selects the paper's 2.
func NewCSPLRU(factor int) *PLRU {
	if factor <= 0 {
		factor = 2
	}
	return &PLRU{sensitive: true, factor: Cost(factor)}
}

// Name implements Policy.
func (p *PLRU) Name() string {
	if p.sensitive {
		return "CS-PLRU"
	}
	return "PLRU"
}

// Reset implements Policy.
func (p *PLRU) Reset(sets, ways int) {
	if sets <= 0 || ways <= 0 || bits.OnesCount(uint(ways)) != 1 {
		panic("replacement: PLRU needs positive sets and power-of-two ways")
	}
	p.ways = ways
	p.tree = make([][]bool, sets)
	p.tag = make([][]uint64, sets)
	p.cost = make([][]Cost, sets)
	p.valid = make([][]bool, sets)
	p.credit = make([][]Cost, sets)
	for i := 0; i < sets; i++ {
		p.tree[i] = make([]bool, ways-1)
		p.tag[i] = make([]uint64, ways)
		p.cost[i] = make([]Cost, ways)
		p.valid[i] = make([]bool, ways)
		p.credit[i] = make([]Cost, ways)
	}
	p.invoked, p.succeeded = 0, 0
}

// touchPath updates the tree so every node on way's path points away from
// it.
func (p *PLRU) touchPath(set, way int) {
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			p.tree[set][node] = true // point right (away)
			node = 2*node + 1
			hi = mid
		} else {
			p.tree[set][node] = false // point left (away)
			node = 2*node + 2
			lo = mid
		}
	}
}

// plruVictim follows the direction bits to the pseudo-LRU way.
func (p *PLRU) plruVictim(set int) int {
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.tree[set][node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// cheapVictim follows the direction bits but only descends into subtrees
// that contain a block cheaper than limit; it returns -1 if none exists.
func (p *PLRU) cheapVictim(set int, limit Cost) int {
	hasCheap := func(lo, hi int) bool {
		for w := lo; w < hi; w++ {
			if p.valid[set][w] && p.cost[set][w] < limit {
				return true
			}
		}
		return false
	}
	if !hasCheap(0, p.ways) {
		return -1
	}
	node := 0
	lo, hi := 0, p.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		// Prefer the pseudo-LRU direction when it contains a cheap block.
		goRight := p.tree[set][node]
		if goRight && !hasCheap(mid, hi) {
			goRight = false
		} else if !goRight && !hasCheap(lo, mid) {
			goRight = true
		}
		if goRight {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Access implements Policy.
func (p *PLRU) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy.
func (p *PLRU) Touch(set, way int) {
	if p.sensitive {
		if p.credit[set][way] < p.cost[set][way] {
			// The block had been protected (its credit was depreciated)
			// and is now re-referenced: the reservation paid off.
			p.succeeded++
		}
		p.credit[set][way] = p.cost[set][way]
	}
	p.touchPath(set, way)
}

// Victim implements Policy.
func (p *PLRU) Victim(set int) int {
	for w := 0; w < p.ways; w++ {
		if !p.valid[set][w] {
			return w
		}
	}
	v := p.plruVictim(set)
	if p.sensitive {
		if w := p.cheapVictim(set, p.credit[set][v]); w >= 0 && w != v {
			p.credit[set][v] -= p.factor * p.cost[set][w]
			p.invoked++
			return w
		}
	}
	return v
}

// Fill implements Policy.
func (p *PLRU) Fill(set, way int, tag uint64, cost Cost) {
	p.tag[set][way] = tag
	p.cost[set][way] = cost
	p.credit[set][way] = cost
	p.valid[set][way] = true
	p.touchPath(set, way)
}

// Invalidate implements Policy.
func (p *PLRU) Invalidate(set, way int, tag uint64) {
	if way < 0 {
		return
	}
	p.valid[set][way] = false
}

// Reservations implements ReservationStats.
func (p *PLRU) Reservations() (invoked, succeeded int64) { return p.invoked, p.succeeded }
