// Powercost: the paper's conclusion suggests power optimization in embedded
// systems as an application domain. Here the machine has a hybrid memory:
// half the address space is DRAM (cheap refills) and half is a power-hungry
// far memory (e.g. NVM) whose fetches cost ~10x the energy. The replacement
// policy minimizes total refill energy with zero knowledge beyond a
// per-block cost function.
package main

import (
	"fmt"
	"math/rand"

	"costcache"
)

const (
	dramEnergy = 5  // nJ per refill
	nvmEnergy  = 55 // nJ per refill
)

// energyCost: blocks in the upper half of the address space live in NVM.
func energyCost(block uint64) costcache.Cost {
	if block&(1<<16) != 0 {
		return nvmEnergy
	}
	return dramEnergy
}

func run(p costcache.Policy, refs []uint64) (energy int64, misses int64) {
	l1 := costcache.NewCache(costcache.CacheConfig{
		Name: "L1", SizeBytes: 4 << 10, Ways: 1, BlockBytes: 64,
	})
	l2 := costcache.NewCache(costcache.CacheConfig{
		Name: "L2", SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64,
		Policy: p, Cost: costcache.CostFunc(energyCost),
	})
	h := costcache.NewHierarchy(l1, l2)
	for _, a := range refs {
		h.Access(a, false)
	}
	st := l2.Stats()
	return st.AggCost, st.Misses
}

func main() {
	// A working set that alternates between a DRAM-resident streaming
	// buffer and an NVM-resident lookup structure with moderate reuse.
	rng := rand.New(rand.NewSource(11))
	zipf := rand.NewZipf(rng, 1.25, 1, 1023)
	var refs []uint64
	for i := 0; i < 150000; i++ {
		if i%3 == 0 {
			refs = append(refs, (uint64(1)<<16|zipf.Uint64())*64) // NVM lookups
		} else {
			refs = append(refs, uint64(i%2048)*64) // DRAM stream
		}
	}

	lruE, lruM := run(costcache.NewLRU(), refs)
	fmt.Printf("%-4s refill energy=%8d nJ  misses=%6d (baseline)\n", "LRU", lruE, lruM)
	for _, p := range []costcache.Policy{
		costcache.NewGD(), costcache.NewBCL(), costcache.NewDCL(0), costcache.NewACL(0),
	} {
		e, m := run(p, refs)
		fmt.Printf("%-4s refill energy=%8d nJ  misses=%6d  energy savings=%6.2f%%\n",
			p.Name(), e, m, 100*costcache.RelativeSavings(lruE, e))
	}
}
