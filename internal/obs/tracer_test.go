package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"costcache/internal/replacement"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// scriptDriver drives a policy through the documented cache call contract
// (Access, then Touch on hit / Victim+Fill on miss) over a single set, so
// tests can replay a deterministic reference script without a full cache.
type scriptDriver struct {
	p      replacement.Policy
	tags   []uint64
	valid  []bool
	evicts int64
}

func newScriptDriver(p replacement.Policy, ways int) *scriptDriver {
	p.Reset(1, ways)
	return &scriptDriver{p: p, tags: make([]uint64, ways), valid: make([]bool, ways)}
}

func (d *scriptDriver) access(tag uint64, cost replacement.Cost) {
	way := -1
	for w := range d.tags {
		if d.valid[w] && d.tags[w] == tag {
			way = w
			break
		}
	}
	d.p.Access(0, tag, way >= 0)
	if way >= 0 {
		d.p.Touch(0, way)
		return
	}
	for w := range d.tags {
		if !d.valid[w] {
			d.p.Fill(0, w, tag, cost)
			d.tags[w], d.valid[w] = tag, true
			return
		}
	}
	w := d.p.Victim(0)
	d.evicts++
	d.p.Fill(0, w, tag, cost)
	d.tags[w] = tag
}

func (d *scriptDriver) invalidate(tag uint64) {
	for w := range d.tags {
		if d.valid[w] && d.tags[w] == tag {
			d.p.Invalidate(0, w, tag)
			d.valid[w] = false
			return
		}
	}
	d.p.Invalidate(0, -1, tag)
}

// step is one scripted reference: tag, its miss cost, or an invalidation.
type step struct {
	tag  uint64
	cost replacement.Cost
	inv  bool
}

func runScript(t *testing.T, p replacement.Policy, script []step) (*Tracer, *bytes.Buffer, *scriptDriver) {
	t.Helper()
	tracer := NewTracer(1 << 10)
	var sink bytes.Buffer
	tracer.SetSink(&sink)
	ob, ok := p.(replacement.Observable)
	if !ok {
		t.Fatalf("policy %s is not Observable", p.Name())
	}
	ob.SetObserver(tracer.Bind(p.Name()))
	d := newScriptDriver(p, 2)
	for _, s := range script {
		if s.inv {
			d.invalidate(s.tag)
		} else {
			d.access(s.tag, s.cost)
		}
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	return tracer, &sink, d
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/obs` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from %s:\ngot:\n%swant:\n%s", path, got, want)
	}
}

// The scripts below run a 2-way set. Tags are small integers; costs contrast
// a high-cost block (10 or 20) against cheap ones (1) so the cost-sensitive
// paths (reservation open/success/abandon, ETD probe hits, ACL automaton
// transitions) all fire deterministically.

func bclScript() []step {
	return []step{
		{tag: 1, cost: 10},  // A: fills way 0
		{tag: 2, cost: 1},   // B: fills way 1; LRU occupant A, Acost 10
		{tag: 3, cost: 1},   // C misses: B undercuts Acost -> reserve A, evict B
		{tag: 1, cost: 10},  // A hits while reserved -> reserve_success
		{tag: 4, cost: 1},   // D misses: new LRU C (Acost 1), plain LRU evict of C
		{tag: 5, cost: 1},   // E misses: LRU A (Acost 10), D undercuts -> reserve A, evict D
		{tag: 6, cost: 20},  // F misses: E undercuts depreciated Acost -> evict E
		{tag: 7, cost: 20},  // G misses: F does not undercut -> abandon A, evict A
		{tag: 8, cost: 1},   // H misses: LRU F (Acost 20), G does not undercut -> evict F
		{tag: 9, cost: 1},   // I misses: H undercuts -> reserve G, evict H
		{tag: 7, inv: true}, // G invalidated while reserved -> reserve_cancel
	}
}

func aclScript() []step {
	return []step{
		{tag: 1, cost: 10},  // A fills; ACL starts with counter 0 (disabled)
		{tag: 2, cost: 1},   // B fills
		{tag: 3, cost: 1},   // C: disabled evict of LRU A; A recorded in the ETD
		{tag: 1, cost: 10},  // A again: ETD probe hit while disabled -> acl_enable
		{tag: 4, cost: 1},   // D: enabled, nothing undercuts Acost 1 -> evict C
		{tag: 5, cost: 1},   // E: LRU A (Acost 10), D undercuts -> reserve A, evict D
		{tag: 6, cost: 1},   // F: E undercuts -> evict E
		{tag: 7, cost: 20},  // G: F undercuts -> evict F
		{tag: 8, cost: 20},  // H: G does not undercut -> abandon A (counter 2->1), evict A
		{tag: 9, cost: 1},   // I: plain evict of LRU G
		{tag: 10, cost: 1},  // J: I undercuts -> reserve H, evict I
		{tag: 11, cost: 20}, // K: J undercuts -> evict J
		{tag: 12, cost: 1},  // L: K does not undercut -> abandon H (counter 1->0, acl_disable), evict H
		{tag: 13, cost: 1},  // M: disabled evict of LRU K; K recorded in the ETD
		{tag: 11, cost: 20}, // K again: probe hit while disabled -> acl_enable; evict L
		{tag: 14, cost: 1},  // N: nothing undercuts Acost 1 -> evict M
		{tag: 15, cost: 1},  // O: LRU K (Acost 20), N undercuts -> reserve K, evict N into ETD
		{tag: 14, cost: 1},  // N again: ETD probe hit while enabled -> etd_hit; evict O
		{tag: 11, cost: 20}, // K hits while reserved -> reserve_success (counter 2->3)
	}
}

func TestTracerGoldenBCL(t *testing.T) {
	tracer, sink, d := runScript(t, replacement.NewBCL(), bclScript())
	checkGolden(t, "bcl_trace.jsonl", sink.Bytes())
	if got := tracer.Count("BCL", replacement.EvEvict); got != d.evicts {
		t.Errorf("traced evictions %d, driver counted %d", got, d.evicts)
	}
	for _, k := range []replacement.EventKind{replacement.EvReserveOpen,
		replacement.EvReserveSuccess, replacement.EvReserveAbandon,
		replacement.EvReserveCancel} {
		if tracer.Count("BCL", k) == 0 {
			t.Errorf("script never exercised %v", k)
		}
	}
}

func TestTracerGoldenACL(t *testing.T) {
	tracer, sink, d := runScript(t, replacement.NewACL(), aclScript())
	checkGolden(t, "acl_trace.jsonl", sink.Bytes())
	if got := tracer.Count("ACL", replacement.EvEvict); got != d.evicts {
		t.Errorf("traced evictions %d, driver counted %d", got, d.evicts)
	}
	for _, k := range []replacement.EventKind{replacement.EvReserveOpen,
		replacement.EvReserveSuccess, replacement.EvReserveAbandon,
		replacement.EvETDHit, replacement.EvACLEnable, replacement.EvACLDisable} {
		if tracer.Count("ACL", k) == 0 {
			t.Errorf("script never exercised %v", k)
		}
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	o := tr.Bind("P")
	for i := 1; i <= 10; i++ {
		o.Observe(replacement.Event{Kind: replacement.EvEvict, Tag: uint64(i)})
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(ev))
	}
	for i, r := range ev {
		if want := uint64(7 + i); r.Seq != want || r.Tag != want {
			t.Errorf("ring[%d] = seq %d tag %d, want %d (oldest-first)", i, r.Seq, r.Tag, want)
		}
	}
}

// TestTracerBindShard pins the cross-run decision identity: shard-bound
// observers stamp records with their shard (rendered into the JSONL line
// between class and set), plain Bind leaves -1 (no "shard" field), and the
// stable cost-class tag rides on every line. Counts aggregate across shards
// under the one policy label.
func TestTracerBindShard(t *testing.T) {
	tr := NewTracer(8)
	var sink bytes.Buffer
	tr.SetSink(&sink)
	tr.BindShard("BCL", 3).Observe(replacement.Event{Kind: replacement.EvEvict, Set: 5, Cost: 8})
	tr.Bind("BCL").Observe(replacement.Event{Kind: replacement.EvEvict, Set: 5, Cost: 1})

	ev := tr.Events()
	if len(ev) != 2 || ev[0].Shard != 3 || ev[1].Shard != -1 {
		t.Fatalf("shards = %+v, want 3 then -1", ev)
	}
	if got := tr.Count("BCL", replacement.EvEvict); got != 2 {
		t.Fatalf("count = %d, want shard-aggregated 2", got)
	}
	want := `{"seq":1,"policy":"BCL","kind":"evict","class":"cost=8","shard":3,"set":5,"way":0,"pos":0,"tag":0,"cost":8,"lru_cost":0}` + "\n" +
		`{"seq":2,"policy":"BCL","kind":"evict","class":"cost=1","set":5,"way":0,"pos":0,"tag":0,"cost":1,"lru_cost":0}` + "\n"
	if sink.String() != want {
		t.Fatalf("jsonl:\ngot:  %swant: %s", sink.String(), want)
	}
}

func TestTracerPublishCounts(t *testing.T) {
	tr := NewTracer(8)
	o := tr.Bind("DCL")
	o.Observe(replacement.Event{Kind: replacement.EvEvict})
	o.Observe(replacement.Event{Kind: replacement.EvEvict})
	o.Observe(replacement.Event{Kind: replacement.EvETDHit})
	r := NewRegistry()
	tr.PublishCounts(r)
	tr.PublishCounts(r) // idempotent: republishing must not double-count
	if got := r.Counter(Name("trace_events", "policy", "DCL", "kind", "evict")).Value(); got != 2 {
		t.Errorf("published evict count = %d, want 2", got)
	}
	if got := r.Counter(Name("trace_events", "policy", "DCL", "kind", "etd_hit")).Value(); got != 1 {
		t.Errorf("published etd_hit count = %d, want 1", got)
	}
}

// TestNilObserverAllocs is the acceptance check for the zero-overhead
// contract: a policy with no observer attached must not allocate on the
// Access/Victim/Fill path.
func TestNilObserverAllocs(t *testing.T) {
	for _, mk := range []replacement.Factory{
		func() replacement.Policy { return replacement.NewLRU() },
		func() replacement.Policy { return replacement.NewBCL() },
		func() replacement.Policy { return replacement.NewDCL() },
		func() replacement.Policy { return replacement.NewACL() },
	} {
		p := mk()
		p.Reset(4, 4)
		tag := uint64(0)
		fill := func() {
			p.Access(0, tag, false)
			w := p.Victim(0)
			p.Fill(0, w, tag, replacement.Cost(1+tag%8))
			tag++
		}
		for i := 0; i < 16; i++ {
			fill() // populate the set past the free-way phase
		}
		if allocs := testing.AllocsPerRun(500, fill); allocs != 0 {
			t.Errorf("%s: nil-observer miss path allocates %.1f objects/op, want 0", p.Name(), allocs)
		}
	}
}

// TestTracedAllocs checks the observed path: once the ring has filled and the
// JSON scratch buffer has grown, tracing allocates nothing per event either.
func TestTracedAllocs(t *testing.T) {
	p := replacement.NewDCL()
	tr := NewTracer(64)
	p.SetObserver(tr.Bind("DCL"))
	p.Reset(4, 4)
	tag := uint64(0)
	fill := func() {
		p.Access(0, tag, false)
		w := p.Victim(0)
		p.Fill(0, w, tag, replacement.Cost(1+tag%8))
		tag++
	}
	for i := 0; i < 128; i++ {
		fill() // warm up: fill the ring so record stops appending
	}
	if allocs := testing.AllocsPerRun(500, fill); allocs != 0 {
		t.Errorf("traced miss path allocates %.1f objects/op after warmup, want 0", allocs)
	}
}
