// Package cost provides miss-cost functions for cost-sensitive replacement.
//
// A Source maps a block address to the predicted cost of the next miss to
// that block. The paper's Section 3 uses two static assignments — a random
// per-block mapping with a tunable high-cost access fraction, and a
// first-touch NUMA mapping (local = low, remote = high) — while Section 4
// uses a dynamic predictor that remembers the last measured miss latency of
// each block.
package cost

import "costcache/internal/replacement"

// Source predicts the cost of the next miss to a block. Implementations must
// return non-negative costs and be deterministic between updates.
type Source interface {
	// MissCost returns the predicted next-miss cost of block (a block
	// address, i.e. byte address / block size).
	MissCost(block uint64) replacement.Cost
}

// Uniform charges the same cost for every miss; with Uniform(1) the
// aggregate cost is the miss count and every policy behaves like LRU.
type Uniform replacement.Cost

// MissCost implements Source.
func (u Uniform) MissCost(uint64) replacement.Cost { return replacement.Cost(u) }

// Func adapts a plain function to a Source.
type Func func(block uint64) replacement.Cost

// MissCost implements Source.
func (f Func) MissCost(block uint64) replacement.Cost { return f(block) }

// Random assigns each block either Low or High cost based on a seeded hash
// of its address: a block is high-cost with probability Fraction. This is
// the paper's "random cost mapping" (Section 3.2); Fraction controls the
// high-cost access fraction (HAF) for workloads whose accesses spread evenly
// over blocks.
type Random struct {
	// Low and High are the two static miss costs. The paper uses Low = 1
	// and High = r, or Low = 0, High = 1 for an infinite cost ratio.
	Low, High replacement.Cost
	// Fraction is the probability that a block is high-cost, in [0,1].
	Fraction float64
	// Seed decorrelates the mapping between experiments.
	Seed uint64
}

// MissCost implements Source.
func (r Random) MissCost(block uint64) replacement.Cost {
	if r.Fraction <= 0 {
		return r.Low
	}
	if r.Fraction >= 1 {
		return r.High
	}
	h := hash64(block ^ r.Seed)
	// Compare the top 53 bits against the fraction for an unbiased draw.
	if float64(h>>11)/float64(1<<53) < r.Fraction {
		return r.High
	}
	return r.Low
}

// IsHigh reports whether block would be assigned the high cost; experiment
// drivers use it to measure the realized high-cost access fraction.
func (r Random) IsHigh(block uint64) bool { return r.MissCost(block) == r.High && r.High != r.Low }

// FirstTouch charges Low for blocks homed at the sample processor and High
// for remote blocks, given a first-touch home assignment (Section 3.3).
type FirstTouch struct {
	// Home maps a block to the processor whose memory holds it.
	Home func(block uint64) int16
	// Proc is the sample processor whose cache is simulated.
	Proc int16
	// Low and High are the local and remote miss costs.
	Low, High replacement.Cost
}

// MissCost implements Source.
func (f FirstTouch) MissCost(block uint64) replacement.Cost {
	if f.Home(block) == f.Proc {
		return f.Low
	}
	return f.High
}

// Table looks costs up in a map with a default, modelling the "simple table
// lookup" of Section 5 for static cost functions.
type Table struct {
	Costs   map[uint64]replacement.Cost
	Default replacement.Cost
}

// MissCost implements Source.
func (t Table) MissCost(block uint64) replacement.Cost {
	if c, ok := t.Costs[block]; ok {
		return c
	}
	return t.Default
}

// LastLatency predicts the next miss cost of a block as the last measured
// miss latency to it, the predictor of Section 4.1 ("we simply use the last
// measured miss latency to predict the future miss latency to the same block
// by the same processor"). Unseen blocks get Default.
type LastLatency struct {
	last    map[uint64]replacement.Cost
	Default replacement.Cost
}

// NewLastLatency returns a predictor with the given default for blocks that
// have not missed yet.
func NewLastLatency(def replacement.Cost) *LastLatency {
	return &LastLatency{last: make(map[uint64]replacement.Cost), Default: def}
}

// MissCost implements Source.
func (p *LastLatency) MissCost(block uint64) replacement.Cost {
	if c, ok := p.last[block]; ok {
		return c
	}
	return p.Default
}

// Observe records a measured miss latency for block.
func (p *LastLatency) Observe(block uint64, measured replacement.Cost) {
	p.last[block] = measured
}

// Forget drops the record for block (e.g. after an invalidation if the
// caller wants prediction to restart; the paper keeps records, so the
// simulator does not call this by default).
func (p *LastLatency) Forget(block uint64) { delete(p.last, block) }

// hash64 is the SplitMix64 finalizer: a fast, well-distributed 64-bit mix.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
