package cost

import "costcache/internal/replacement"

// Observer is an optional interface a Source may implement to learn from
// the access stream. The trace-driven simulator calls OnAccess for every
// local reference (hit or miss), enabling the dynamic cost functions the
// paper's conclusion sketches: criticality prediction for single ILP
// processors and time-varying memory mappings such as page migration.
type Observer interface {
	// OnAccess reports a reference to block; write distinguishes stores.
	OnAccess(block uint64, write bool)
}

// NextOp implements the paper's single-processor idea ("if we could predict
// the nature of the next access to a cached block, we could assign a high
// cost to critical load misses and low cost to store misses"): it predicts
// the next access type of a block from its last access type and charges
// LoadCost or StoreCost accordingly. Stores are cheap to miss (they are
// buffered); loads stall the pipeline.
type NextOp struct {
	// LoadCost and StoreCost are the miss costs charged when the next
	// access is predicted to be a load or a store.
	LoadCost, StoreCost replacement.Cost
	last                map[uint64]bool // block -> last access was a write
}

// NewNextOp returns a predictor charging loadCost for predicted-load misses
// and storeCost for predicted-store misses. Unseen blocks predict a load
// (the conservative choice).
func NewNextOp(loadCost, storeCost replacement.Cost) *NextOp {
	return &NextOp{LoadCost: loadCost, StoreCost: storeCost, last: make(map[uint64]bool)}
}

// MissCost implements Source.
func (n *NextOp) MissCost(block uint64) replacement.Cost {
	if n.last[block] {
		return n.StoreCost
	}
	return n.LoadCost
}

// OnAccess implements Observer.
func (n *NextOp) OnAccess(block uint64, write bool) { n.last[block] = write }

// Migrating models first-touch placement with dynamic page migration (the
// paper's "memory mapping of blocks may vary with time, adapting
// dynamically to the reference patterns"): a remote block that the sample
// processor references at least Threshold times is migrated to local
// memory, after which its misses cost Low. Cost-sensitive policies must
// track the change — exactly the situation that motivates loading the cost
// field at every miss rather than once.
type Migrating struct {
	// Home is the initial placement; Proc the sample processor.
	Home func(block uint64) int16
	Proc int16
	// Low and High are the local and remote miss costs.
	Low, High replacement.Cost
	// Threshold is the access count after which a remote block migrates.
	Threshold int

	touches  map[uint64]int
	migrated map[uint64]bool
}

// NewMigrating builds a migrating first-touch cost source.
func NewMigrating(home func(uint64) int16, proc int16, low, high replacement.Cost, threshold int) *Migrating {
	return &Migrating{
		Home: home, Proc: proc, Low: low, High: high, Threshold: threshold,
		touches: make(map[uint64]int), migrated: make(map[uint64]bool),
	}
}

// MissCost implements Source.
func (m *Migrating) MissCost(block uint64) replacement.Cost {
	if m.Home(block) == m.Proc || m.migrated[block] {
		return m.Low
	}
	return m.High
}

// OnAccess implements Observer.
func (m *Migrating) OnAccess(block uint64, write bool) {
	if m.Home(block) == m.Proc || m.migrated[block] {
		return
	}
	m.touches[block]++
	if m.touches[block] >= m.Threshold {
		m.migrated[block] = true
		delete(m.touches, block)
	}
}

// Migrated reports how many blocks have migrated so far.
func (m *Migrating) Migrated() int { return len(m.migrated) }
