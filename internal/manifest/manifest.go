// Package manifest defines the self-describing run manifest the commands
// write into results/: one JSON document per run capturing what was run
// (command, arguments, git revision, configuration), when, and what came out
// (flat metrics plus the miss-lifecycle latency breakdown). Manifests are the
// unit of regression tracking: cmd/report diffs two of them and flags metric
// drift, and scripts/ci.sh validates a fresh smoke-run manifest against the
// archived baseline.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"costcache/internal/obs"
	"costcache/internal/obs/reqspan"
	"costcache/internal/obs/span"
)

// Schema identifies the manifest document format; bump the version on
// incompatible changes.
const Schema = "costcache/run-manifest/v1"

// Manifest is one run's self-description.
type Manifest struct {
	// Schema is always the package's Schema constant.
	Schema string `json:"schema"`
	// Command is the producing binary's name; Args its full argument list.
	Command string   `json:"command"`
	Args    []string `json:"args,omitempty"`
	// CreatedUTC is the RFC 3339 creation time in UTC.
	CreatedUTC string `json:"created_utc"`
	// Interrupted marks a partial manifest: the run was stopped early
	// (SIGINT/SIGTERM) and flushed what it had. Metrics cover only the work
	// completed before the stop, so regression diffs should not treat them
	// as a full run's figures.
	Interrupted bool `json:"interrupted,omitempty"`
	// GitRev is the repository revision ("" when not in a git checkout).
	GitRev string `json:"git_rev,omitempty"`
	// Config are the run parameters as rendered strings (flag values,
	// workload names, cache geometry).
	Config map[string]string `json:"config,omitempty"`
	// Metrics are the run's scalar results, keyed by metric name (optionally
	// labeled in obs.Name style).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Artifacts maps the run's companion trace files by kind —
	// "decision_trace" (obs decision JSONL), "request_spans" (reqspan
	// JSONL), "span_jsonl"/"span_trace" (simulator spans / Chrome trace) —
	// to the paths they were written to, as given on the command line.
	// report -explain resolves relative paths against the manifest's own
	// directory first, so a results/ tree stays relocatable.
	Artifacts map[string]string `json:"artifacts,omitempty"`
	// LatencyBreakdown is the per-class, per-stage miss-latency aggregation
	// from the span tracer, when the run traced spans.
	LatencyBreakdown []span.BreakdownRow `json:"latency_breakdown,omitempty"`
}

// New returns a manifest stamped with the current time, the process argument
// list and the repository revision (best effort).
func New(command string) *Manifest {
	return &Manifest{
		Schema:     Schema,
		Command:    command,
		Args:       os.Args[1:],
		CreatedUTC: time.Now().UTC().Format(time.RFC3339),
		GitRev:     gitRev(),
		Config:     make(map[string]string),
		Metrics:    make(map[string]float64),
	}
}

// gitRev returns the short HEAD revision, or "" outside a checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// MarkInterrupted flags the manifest as a partial flush of an interrupted
// run.
func (m *Manifest) MarkInterrupted() { m.Interrupted = true }

// SetConfig records one configuration parameter.
func (m *Manifest) SetConfig(key string, value any) {
	m.Config[key] = fmt.Sprint(value)
}

// SetMetric records one scalar result.
func (m *Manifest) SetMetric(name string, value float64) {
	m.Metrics[name] = value
}

// SetArtifact records the path of a companion trace artifact by kind.
func (m *Manifest) SetArtifact(kind, path string) {
	if m.Artifacts == nil {
		m.Artifacts = make(map[string]string)
	}
	m.Artifacts[kind] = path
}

// Artifact returns the recorded path for kind ("" when absent).
func (m *Manifest) Artifact(kind string) string { return m.Artifacts[kind] }

// AddSnapshot flattens a registry snapshot into the metric map: counters and
// gauges verbatim, histograms as name_count, name_sum and name_mean.
func (m *Manifest) AddSnapshot(s obs.Snapshot) {
	for n, v := range s.Counters {
		m.Metrics[n] = float64(v)
	}
	for n, v := range s.Gauges {
		m.Metrics[n] = float64(v)
	}
	for n, h := range s.Histograms {
		base, labels := n, ""
		if i := strings.IndexByte(n, '{'); i >= 0 {
			base, labels = n[:i], n[i:]
		}
		m.Metrics[base+"_count"+labels] = float64(h.Count)
		m.Metrics[base+"_sum"+labels] = float64(h.Sum)
		m.Metrics[base+"_mean"+labels] = h.Mean()
	}
}

// SetBreakdown records the span tracer's latency aggregation.
func (m *Manifest) SetBreakdown(b *span.Breakdown) {
	m.LatencyBreakdown = b.Rows()
}

// SetAttribution flattens a request-span stage attribution into the metric
// map under attr_* names — the series `report -attr` decomposes and diffs
// between two runs. Stage series carry a stage label in obs.Name style.
func (m *Manifest) SetAttribution(a reqspan.Attribution) {
	m.SetMetric("attr_spans", float64(a.Spans))
	m.SetMetric("attr_sample_every", float64(a.AttrEvery))
	m.SetMetric("attr_total_ns", float64(a.TotalNs))
	m.SetMetric("attr_other_ns", float64(a.OtherNs))
	for i, n := range a.Outcomes {
		m.SetMetric(obs.Name("attr_outcome", "outcome", reqspan.Outcome(i).String()), float64(n))
	}
	for _, s := range a.Stages {
		m.SetMetric(obs.Name("attr_stage_ns", "stage", s.Stage), float64(s.Ns))
		m.SetMetric(obs.Name("attr_stage_count", "stage", s.Stage), float64(s.Count))
	}
	m.SetMetric("attr_latency_p50_ns", float64(a.Latency.Quantile(0.50)))
	m.SetMetric("attr_latency_p95_ns", float64(a.Latency.Quantile(0.95)))
	m.SetMetric("attr_latency_p99_ns", float64(a.Latency.Quantile(0.99)))
}

// Validate checks the structural invariants cmd/report relies on.
func (m *Manifest) Validate() error {
	if m.Schema != Schema {
		return fmt.Errorf("manifest: schema %q, want %q", m.Schema, Schema)
	}
	if m.Command == "" {
		return fmt.Errorf("manifest: missing command")
	}
	if m.CreatedUTC != "" {
		if _, err := time.Parse(time.RFC3339, m.CreatedUTC); err != nil {
			return fmt.Errorf("manifest: bad created_utc: %v", err)
		}
	}
	for kind, path := range m.Artifacts {
		if kind == "" || path == "" {
			return fmt.Errorf("manifest: artifact entry with empty kind or path")
		}
	}
	for _, r := range m.LatencyBreakdown {
		if r.Class == "" || r.Stage == "" {
			return fmt.Errorf("manifest: latency_breakdown row missing class/stage")
		}
		if r.Count < 0 || r.TotalNs < 0 {
			return fmt.Errorf("manifest: negative %s/%s aggregate", r.Class, r.Stage)
		}
	}
	return nil
}

// WriteFile marshals the manifest (indented, trailing newline) to path.
func (m *Manifest) WriteFile(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile parses and validates a manifest file.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &m, nil
}
