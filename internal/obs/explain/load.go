package explain

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"costcache/internal/manifest"
)

// Decision is one parsed line of an obs.Tracer decision stream (see
// internal/obs appendJSON for the schema).
type Decision struct {
	Seq    uint64 `json:"seq"`
	Policy string `json:"policy"`
	Kind   string `json:"kind"`
	Class  string `json:"class"`
	// Shard is -1 for simulator streams (observers bound without a shard).
	Shard int   `json:"shard"`
	Set   int   `json:"set"`
	Cost  int64 `json:"cost"`
}

// SpanRow is one parsed line of a reqspan request-span stream (see
// internal/obs/reqspan appendReqSpanJSON for the schema). Only the fields
// the join needs are kept.
type SpanRow struct {
	ID      uint64 `json:"id"`
	Kind    string `json:"kind"`
	Shard   int    `json:"shard"`
	Key     uint64 `json:"key"`
	Outcome string `json:"outcome"`
	Cost    int64  `json:"cost"`
}

// Run is one side of an explain join: a manifest plus whichever trace
// artifacts it declared and Load could read. A nil Decisions or Spans slice
// means the run carries no such stream (the distinction from an empty one).
type Run struct {
	Path      string
	Manifest  *manifest.Manifest
	Decisions []Decision
	Spans     []SpanRow
}

// HasStreams reports whether the run carries at least one joinable stream.
func (r *Run) HasStreams() bool { return r.Decisions != nil || r.Spans != nil }

// Load reads a manifest and the trace artifacts it declares. Relative
// artifact paths resolve against the manifest's own directory first — a
// results/ tree moved wholesale keeps working — falling back to the path as
// written (relative to the working directory). A declared artifact that
// exists but does not parse is an error; one that is absent in both
// locations is an error too, since the manifest asserts it was written.
func Load(manifestPath string) (*Run, error) {
	m, err := manifest.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	run := &Run{Path: manifestPath, Manifest: m}
	if p := m.Artifact("decision_trace"); p != "" {
		data, err := readArtifact(manifestPath, p)
		if err != nil {
			return nil, err
		}
		if run.Decisions, err = parseDecisions(data); err != nil {
			return nil, fmt.Errorf("%s: decision_trace %s: %v", manifestPath, p, err)
		}
	}
	if p := m.Artifact("request_spans"); p != "" {
		data, err := readArtifact(manifestPath, p)
		if err != nil {
			return nil, err
		}
		if run.Spans, err = parseSpans(data); err != nil {
			return nil, fmt.Errorf("%s: request_spans %s: %v", manifestPath, p, err)
		}
	}
	return run, nil
}

// readArtifact loads an artifact path declared by the manifest at mpath.
func readArtifact(mpath, artifact string) ([]byte, error) {
	try := []string{artifact}
	if !filepath.IsAbs(artifact) {
		try = []string{filepath.Join(filepath.Dir(mpath), artifact), artifact}
	}
	var firstErr error
	for _, p := range try {
		data, err := os.ReadFile(p)
		if err == nil {
			return data, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("%s declares artifact %s: %v", mpath, artifact, firstErr)
}

// parseDecisions parses a decision JSONL stream. Lines must arrive in
// sequence order — the tracer writes them that way, so disorder means a
// corrupt or concatenated file.
func parseDecisions(data []byte) ([]Decision, error) {
	out := []Decision{}
	var prevSeq uint64
	err := eachLine(data, func(n int, line []byte) error {
		d := Decision{Shard: -1}
		if err := json.Unmarshal(line, &d); err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		if d.Kind == "" {
			return fmt.Errorf("line %d: missing decision kind", n)
		}
		if d.Seq <= prevSeq {
			return fmt.Errorf("line %d: seq %d not increasing (prev %d)", n, d.Seq, prevSeq)
		}
		prevSeq = d.Seq
		out = append(out, d)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// parseSpans parses a request-span JSONL stream, skipping non-request lines
// (a merged stream may carry the simulator's miss-lifecycle lines too).
func parseSpans(data []byte) ([]SpanRow, error) {
	out := []SpanRow{}
	err := eachLine(data, func(n int, line []byte) error {
		var s SpanRow
		if err := json.Unmarshal(line, &s); err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		if s.Kind != "req" {
			return nil
		}
		if s.Outcome == "" {
			return fmt.Errorf("line %d: request span missing outcome", n)
		}
		out = append(out, s)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// eachLine calls fn for every non-empty line, 1-based.
func eachLine(data []byte, fn func(n int, line []byte) error) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	for sc.Scan() {
		n++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := fn(n, line); err != nil {
			return err
		}
	}
	return sc.Err()
}
