package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
)

func TestServeAndGracefulClose(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(3)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/metrics", srv.Addr())
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits 3") {
		t.Fatalf("/metrics response missing counter:\n%s", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	// The port is released: new connections must fail.
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still accepting connections after Close")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestMuxIndex checks the root index lists every mounted endpoint — the
// discoverability surface operators land on first — and that unknown paths
// still 404.
func TestMuxIndex(t *testing.T) {
	mux := NewMux(NewRegistry())
	mux.Handle("/debug/engine", "engine analytics", http.NotFoundHandler())
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/")
	if code != http.StatusOK {
		t.Fatalf("index returned %d, want 200", code)
	}
	for _, ep := range []string{"/metrics", "/debug/pprof/", "/debug/engine"} {
		if !strings.Contains(body, ep) {
			t.Errorf("index missing endpoint %s:\n%s", ep, body)
		}
	}
	if code, _ := get("/no-such-endpoint"); code != http.StatusNotFound {
		t.Errorf("unknown path returned %d, want 404", code)
	}
}

// TestMuxIndexCanonical pins the index contract pollers and CI greps rely
// on: each path listed exactly once (duplicate mounts are no-ops) in sorted
// order, regardless of mount order.
func TestMuxIndexCanonical(t *testing.T) {
	mux := NewMux(NewRegistry())
	mux.Handle("/debug/federate", "cluster rollups", http.NotFoundHandler())
	mux.Handle("/debug/engine", "engine analytics", http.NotFoundHandler())
	mux.Handle("/debug/engine", "a duplicate mount", http.NotFoundHandler())
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if strings.Count(body, "/debug/engine") != 1 {
		t.Errorf("duplicate mount listed more than once:\n%s", body)
	}
	if strings.Contains(body, "a duplicate mount") {
		t.Errorf("duplicate mount replaced the original description:\n%s", body)
	}
	// Listed paths must appear in sorted order.
	var paths []string
	for _, line := range strings.Split(body, "\n") {
		f := strings.Fields(line)
		if len(f) > 0 && strings.HasPrefix(f[0], "/") {
			paths = append(paths, f[0])
		}
	}
	if !sort.StringsAreSorted(paths) {
		t.Errorf("index paths not sorted: %v", paths)
	}
	if len(paths) < 4 {
		t.Errorf("index too short: %v", paths)
	}
}
