package costsim

import (
	"testing"

	"costcache/internal/cost"
	"costcache/internal/obs"
	"costcache/internal/replacement"
)

func observedSrc(t *testing.T) cost.Source {
	t.Helper()
	return cost.Random{Low: 1, High: 8, Fraction: 0.2, Seed: 9}
}

// TestRunObservedMatchesRun is the observation-is-passive contract: attaching
// the shadow hierarchy, a tracer, and a registry must not change a single
// counter of the policy under test.
func TestRunObservedMatchesRun(t *testing.T) {
	view := testView(t)
	cfg := Default()
	src := observedSrc(t)
	for _, mk := range []struct {
		name string
		f    replacement.Factory
	}{
		{"LRU", func() replacement.Policy { return replacement.NewLRU() }},
		{"BCL", func() replacement.Policy { return replacement.NewBCL() }},
		{"DCL", func() replacement.Policy { return replacement.NewDCL() }},
		{"ACL", func() replacement.Policy { return replacement.NewACL() }},
	} {
		bare := Run(view, cfg, mk.f(), src)
		tracer := obs.NewTracer(1 << 12)
		reg := obs.NewRegistry()
		res := RunObserved(view, cfg, mk.f(), src, tracer.Bind(mk.name), 10000, reg)
		if res.L2 != bare.L2 {
			t.Errorf("%s: observed L2 stats %+v != bare %+v", mk.name, res.L2, bare.L2)
		}
		if res.L1 != bare.L1 || res.Invalidations != bare.Invalidations {
			t.Errorf("%s: observed L1/invalidation counters differ from bare run", mk.name)
		}
		if got := tracer.Count(mk.name, replacement.EvEvict); got != res.L2.Evictions {
			t.Errorf("%s: traced evictions %d != cache.Stats.Evictions %d",
				mk.name, got, res.L2.Evictions)
		}
	}
}

// TestObservedWindowsReconcile checks that the per-window deltas sum back to
// the end-of-run aggregates, for both the policy and the LRU shadow.
func TestObservedWindowsReconcile(t *testing.T) {
	view := testView(t)
	cfg := Default()
	const windowRefs = 7000 // deliberately not a divisor of len(view)
	res := RunObserved(view, cfg, replacement.NewDCL(), observedSrc(t), nil, windowRefs, nil)
	if len(res.Windows) == 0 {
		t.Fatal("no windows recorded")
	}
	var tot Window
	for _, w := range res.Windows {
		tot.Misses += w.Misses
		tot.CostPaid += w.CostPaid
		tot.ShadowMisses += w.ShadowMisses
		tot.ShadowCost += w.ShadowCost
	}
	if tot.Misses != res.L2.Misses || tot.CostPaid != res.L2.AggCost {
		t.Errorf("window sums (%d misses, %d cost) != L2 totals (%d, %d)",
			tot.Misses, tot.CostPaid, res.L2.Misses, res.L2.AggCost)
	}
	if tot.ShadowMisses != res.Shadow.Misses || tot.ShadowCost != res.Shadow.AggCost {
		t.Errorf("shadow window sums (%d misses, %d cost) != shadow totals (%d, %d)",
			tot.ShadowMisses, tot.ShadowCost, res.Shadow.Misses, res.Shadow.AggCost)
	}
	if last := res.Windows[len(res.Windows)-1]; last.EndRef != int64(len(view)) {
		t.Errorf("last window ends at %d, want %d", last.EndRef, len(view))
	}
}

// TestObservedShadowIsLRU checks that the shadow hierarchy reproduces a plain
// LRU run exactly, so Window.Saved is a true vs-LRU attribution.
func TestObservedShadowIsLRU(t *testing.T) {
	view := testView(t)
	cfg := Default()
	res := RunObserved(view, cfg, replacement.NewBCL(), observedSrc(t), nil, 0, nil)
	lru := Run(view, cfg, replacement.NewLRU(), observedSrc(t))
	if res.Shadow != lru.L2 {
		t.Errorf("shadow L2 stats %+v != plain LRU run %+v", res.Shadow, lru.L2)
	}
}

// TestObservedRegistryCounters checks the live counters agree with the final
// stats even when windowing is off.
func TestObservedRegistryCounters(t *testing.T) {
	view := testView(t)
	cfg := Default()
	reg := obs.NewRegistry()
	res := RunObserved(view, cfg, replacement.NewACL(), observedSrc(t), nil, 0, reg)
	if res.Windows != nil {
		t.Errorf("windowRefs=0 must not record windows, got %d", len(res.Windows))
	}
	if got := reg.Counter("costsim_refs").Value(); got != int64(len(view)) {
		t.Errorf("costsim_refs = %d, want %d", got, len(view))
	}
	if got := reg.Counter(obs.Name("costsim_l2_misses", "policy", "ACL")).Value(); got != res.L2.Misses {
		t.Errorf("costsim_l2_misses = %d, want %d", got, res.L2.Misses)
	}
	if got := reg.Counter(obs.Name("costsim_cost_paid", "policy", "ACL")).Value(); got != res.L2.AggCost {
		t.Errorf("costsim_cost_paid = %d, want %d", got, res.L2.AggCost)
	}
	if got := reg.Counter(obs.Name("costsim_shadow_cost", "policy", "ACL")).Value(); got != res.Shadow.AggCost {
		t.Errorf("costsim_shadow_cost = %d, want %d", got, res.Shadow.AggCost)
	}
}

// TestWindowTable smoke-tests the interval rendering, including the totals
// row.
func TestWindowTable(t *testing.T) {
	windows := []Window{
		{EndRef: 100, Misses: 10, CostPaid: 40, ShadowMisses: 12, ShadowCost: 55},
		{EndRef: 200, Misses: 5, CostPaid: 20, ShadowMisses: 6, ShadowCost: 18},
	}
	tbl := WindowTable("w", windows)
	if tbl == nil {
		t.Fatal("nil table")
	}
	if got := windows[0].Saved(); got != 15 {
		t.Errorf("Saved = %d, want 15", got)
	}
	if got := windows[1].Saved(); got != -2 {
		t.Errorf("Saved = %d, want -2", got)
	}
}
