// Package engine turns the paper's cost-sensitive replacement policies into
// a serving component: a thread-safe, sharded in-process cache that sits on a
// request path and answers Get/Set/GetOrLoad under concurrent load.
//
// The engine partitions a set-associative key space across a power-of-two
// number of shards. A key hashes to one global set; the low set-index bits
// select the shard and the high bits the set within it, so a set — and with
// it every replacement decision — always lives entirely inside one shard.
// Each shard drives its own replacement.Policy instance behind a mutex,
// which is the synchronization boundary the Policy interface documents:
// policies stay single-goroutine, the engine serializes per shard.
//
// Because the key→set mapping never depends on the shard count, a
// deterministic (single-goroutine) request stream produces bit-identical
// hit/miss/cost counters whether the engine runs 1 shard or 64: sharding
// changes only how much of the key space shares a lock, never what any
// policy decides.
//
// Misses coalesce singleflight-style: concurrent GetOrLoad calls for one key
// run the loader once, charge its miss cost once, and share the resulting
// value (or error, or panic — a loader panic propagates to the leader and
// every coalesced waiter, never to the shard itself).
//
// Each shard keeps hit/miss/coalesce/eviction/cost counters — registered
// with shard labels in an obs.Registry when one is configured — and can run
// an LRU shadow cache of identical geometry that replays the same touches
// and installs, so the live cost savings of a cost-sensitive policy over
// plain LRU (the paper's headline metric) are measurable on a serving
// engine, not just in a simulator.
package engine

import (
	"fmt"
	"math/bits"
	"strconv"

	"costcache/internal/obs"
	"costcache/internal/obs/reqspan"
	"costcache/internal/replacement"
	"costcache/internal/resilience"
)

// Config describes an engine. Geometry is global: Sets is the total set
// count across all shards, so results are comparable (and, for deterministic
// streams, identical) across shard counts.
type Config struct {
	// Shards is the power-of-two shard count (0 means 1). Must not exceed
	// Sets: a set never spans shards.
	Shards int
	// Sets is the total number of sets across all shards, a power of two
	// (0 means 1024).
	Sets int
	// Ways is the set associativity (0 means 4).
	Ways int
	// Policy builds one replacement policy per shard. nil means LRU.
	Policy replacement.Factory
	// Registry, when non-nil, receives the per-shard counters under
	// engine_* names with a shard label (see docs/ENGINE.md).
	Registry *obs.Registry
	// Shadow enables a per-shard LRU shadow cache that replays the same
	// touches and installs, so Stats reports the aggregate cost plain LRU
	// would have paid for the same stream.
	Shadow bool
	// Tracer, when non-nil, samples requests into stage-attributed spans
	// (see internal/obs/reqspan). Unsampled requests pay one atomic add;
	// a nil Tracer pays a nil check per request.
	Tracer *reqspan.Tracer
	// Decisions, when non-nil, attaches the decision tracer to every shard
	// whose policy implements replacement.Observable: each reservation, ETD
	// detection and victim choice is recorded with the shard it happened on
	// and its stable cost-class tag, the stream report -explain joins across
	// runs. Events are recorded under the shard lock (one tracer mutex plus
	// a ring-slot copy per decision); nil keeps the zero-overhead path.
	Decisions *obs.Tracer
	// Resilience, when non-nil, switches GetOrLoad to the degraded-mode
	// load path: per-request deadlines, cost-aware retries, per-class
	// circuit breakers and serve-stale ghosts (see internal/resilience and
	// docs/ENGINE.md "Degraded-mode serving"). nil keeps the legacy inline
	// loader path, bit-identical with pre-resilience behavior.
	Resilience *resilience.Resilience
	// Namespace, when non-empty, adds an ns label to every engine_* series
	// this engine registers, so multiple tenant engines can share one
	// registry (the cacheserved layout) without colliding. Empty keeps the
	// exact historical series names, so single-engine manifests stay
	// diffable against old baselines.
	Namespace string
}

// Engine is a sharded, thread-safe cost-sensitive cache.
type Engine struct {
	shards    []*shard
	setMask   uint64
	shardMask uint64
	shardBits uint
	ways      int
	tracer    *reqspan.Tracer
	res       *resilience.Resilience

	// Degraded-mode counters (engine-wide: the resilient load path is not
	// a per-shard concern). Bare counters when no registry is configured.
	loadTimeouts *obs.Counter
	loadRetries  *obs.Counter
	shed         *obs.Counter
	staleServed  *obs.Counter
}

// Loader produces the value for a missing key along with the miss cost the
// engine charges and loads into the block (the predicted cost of missing
// this key again — latency, energy, bytes, any non-negative quantity).
type Loader func(key uint64) (value any, cost replacement.Cost, err error)

// LoaderPanic wraps a panic that escaped a Loader when it is re-raised in
// the coalesced waiters of the load. The leader goroutine re-panics with the
// original value; waiters panic with a *LoaderPanic carrying it.
type LoaderPanic struct{ Value any }

func (p *LoaderPanic) Error() string {
	return fmt.Sprintf("engine: coalesced loader panicked: %v", p.Value)
}

// New builds an engine. It panics on an invalid geometry (a programming
// error, matching cache.New).
func New(cfg Config) *Engine {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Sets == 0 {
		cfg.Sets = 1024
	}
	if cfg.Ways == 0 {
		cfg.Ways = 4
	}
	if cfg.Shards < 0 || bits.OnesCount(uint(cfg.Shards)) != 1 {
		panic(fmt.Sprintf("engine: Shards %d must be a power of two", cfg.Shards))
	}
	if cfg.Sets < 0 || bits.OnesCount(uint(cfg.Sets)) != 1 {
		panic(fmt.Sprintf("engine: Sets %d must be a power of two", cfg.Sets))
	}
	if cfg.Shards > cfg.Sets {
		panic(fmt.Sprintf("engine: Shards %d exceeds Sets %d", cfg.Shards, cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic(fmt.Sprintf("engine: Ways %d must be positive", cfg.Ways))
	}
	if cfg.Policy == nil {
		cfg.Policy = func() replacement.Policy { return replacement.NewLRU() }
	}
	e := &Engine{
		setMask:   uint64(cfg.Sets - 1),
		shardMask: uint64(cfg.Shards - 1),
		shardBits: uint(bits.TrailingZeros(uint(cfg.Shards))),
		ways:      cfg.Ways,
		tracer:    cfg.Tracer,
		res:       cfg.Resilience,
	}
	// The degraded-mode series register only when the resilient path is
	// active, so un-configured runs keep their exact pre-resilience metric
	// catalog (and manifest snapshots stay diffable against old baselines).
	counter := func(name string) *obs.Counter {
		if cfg.Registry == nil || e.res == nil {
			return &obs.Counter{}
		}
		return cfg.Registry.Counter(nsLabel(cfg.Namespace, name))
	}
	e.loadTimeouts = counter("engine_load_timeouts")
	e.loadRetries = counter("engine_load_retries")
	e.shed = counter("engine_shed")
	e.staleServed = counter("engine_stale_served")
	ghosts := e.res != nil && e.res.ServeStale()
	localSets := cfg.Sets / cfg.Shards
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		s := newShard(i, localSets, cfg.Ways, cfg.Policy(), cfg.Registry, cfg.Namespace, cfg.Shadow, ghosts)
		if cfg.Decisions != nil {
			if ob, ok := s.policy.(replacement.Observable); ok {
				ob.SetObserver(cfg.Decisions.BindShard(s.policy.Name(), i))
			}
		}
		e.shards[i] = s
	}
	return e
}

// mix64 is the splitmix64 finalizer: a full-avalanche hash spreading keys
// over sets and shards regardless of their input distribution.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// place returns the shard holding key and the set index within it. The
// global set is derived from the key hash alone; the shard takes the low
// set bits, so placement commutes with the shard count.
func (e *Engine) place(key uint64) (*shard, int) {
	gs := mix64(key) & e.setMask
	return e.shards[gs&e.shardMask], int(gs >> e.shardBits)
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Capacity returns the total number of cacheable entries (sets × ways).
func (e *Engine) Capacity() int {
	return len(e.shards) * e.shards[0].sets * e.ways
}

// Get returns the cached value for key. A hit promotes the entry; a miss
// changes no replacement state (nothing is installed, so the policy never
// sees the reference).
//
// Get, Set and GetOrLoad share a tracing protocol: place the key, Begin a
// (usually nil) span, then Mark each stage boundary as the request crosses
// it and Finish after the shard lock is released, so span aggregation and
// emission never run under a shard mutex. The marks are contiguous — each
// closes the segment since the previous boundary — which is what makes the
// per-stage attribution sums tile the end-to-end latency exactly.
func (e *Engine) Get(key uint64) (any, bool) {
	s, set := e.place(key)
	sp := e.tracer.Begin(reqspan.OpGet, s.id, key)
	return e.doGet(s, set, key, sp)
}

// doGet is Get's body after placement and span lease — shared by Get and
// GetTraced so the local and remote-bound paths stay byte-identical.
func (e *Engine) doGet(s *shard, set int, key uint64, sp *reqspan.Span) (any, bool) {
	s.lock()
	sp.Mark(reqspan.StageLockWait)
	if w := s.find(set, key); w >= 0 {
		s.hits.Inc()
		s.policy.Access(set, key, true)
		s.policy.Touch(set, w)
		sp.Mark(reqspan.StageDecision)
		s.touchShadow(set, key)
		sp.Mark(reqspan.StageShadow)
		v := s.vals[set][w]
		s.mu.Unlock()
		e.tracer.Finish(sp, reqspan.OutcomeHit)
		return v, true
	}
	s.misses.Inc()
	sp.Mark(reqspan.StageDecision)
	s.mu.Unlock()
	e.tracer.Finish(sp, reqspan.OutcomeMiss)
	return nil, false
}

// Set installs or refreshes key with the given value and predicted next-miss
// cost. Installing into a full set evicts the policy's victim.
func (e *Engine) Set(key uint64, value any, cost replacement.Cost) {
	s, set := e.place(key)
	sp := e.tracer.Begin(reqspan.OpSet, s.id, key)
	e.doSet(s, set, key, value, cost, sp)
}

// doSet is Set's body after placement and span lease — shared by Set and
// SetTraced.
func (e *Engine) doSet(s *shard, set int, key uint64, value any, cost replacement.Cost, sp *reqspan.Span) {
	s.lock()
	sp.Mark(reqspan.StageLockWait)
	if w := s.find(set, key); w >= 0 {
		s.hits.Inc()
		s.policy.Access(set, key, true)
		s.policy.Touch(set, w)
		s.vals[set][w] = value
		if s.costv != nil {
			s.costv[set][w] = cost
		}
		sp.Mark(reqspan.StageDecision)
		s.setShadowCost(set, key, cost)
		s.touchShadow(set, key)
		sp.Mark(reqspan.StageShadow)
		s.mu.Unlock()
		e.tracer.Finish(sp, reqspan.OutcomeHit)
		return
	}
	s.misses.Inc()
	sp.Mark(reqspan.StageDecision)
	s.install(set, key, value, cost, sp)
	s.mu.Unlock()
	e.tracer.Finish(sp, reqspan.OutcomeMiss)
}

// GetOrLoad returns the cached value for key, or runs load to produce it.
// Concurrent calls for the same key coalesce: one goroutine (the leader)
// runs the loader while the others wait off-lock and share its value, error
// and single cost charge. A loader panic is re-raised in the leader (with
// the original value) and in every waiter (wrapped in *LoaderPanic); the
// shard itself stays healthy.
//
// With Config.Resilience set, the load path additionally honors per-request
// deadlines (ErrLoadTimeout), cost-aware retries, per-class circuit
// breakers (ErrShed) and serve-stale ghosts; callers that want to know
// whether a returned value is stale use GetOrLoadStale.
func (e *Engine) GetOrLoad(key uint64, load Loader) (any, error) {
	v, _, err := e.GetOrLoadStale(key, load)
	return v, err
}

// Invalidate removes key if cached (e.g. an upstream change notification).
// The policy hook fires either way so victim-directory state (the ETD) is
// purged too — including any serve-stale ghost, since an upstream change is
// exactly when a retained value stops being safe to serve. It reports
// whether a cached entry was removed.
func (e *Engine) Invalidate(key uint64) bool {
	s, set := e.place(key)
	s.lock()
	defer s.mu.Unlock()
	delete(s.ghosts, key)
	w := s.find(set, key)
	s.policy.Invalidate(set, w, key)
	if w < 0 {
		return false
	}
	s.valid[set][w] = false
	s.vals[set][w] = nil
	return true
}

// Stats is a point-in-time sum of the per-shard counters.
type Stats struct {
	// Hits and Misses count lookups; Coalesced counts GetOrLoad calls that
	// waited on another goroutine's in-flight load (they are neither hits
	// nor misses, so Hits+Misses+Coalesced is the total operation count).
	// The JSON names are locked by the /debug/engine schema test.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Evictions counts policy victimizations (not invalidations).
	Evictions int64 `json:"evictions"`
	// CostPaid is the aggregate miss cost charged on fills — the quantity
	// the paper's policies minimize, counted once per coalesced load.
	CostPaid int64 `json:"cost_paid"`
	// LockWaitNs is the total time goroutines spent blocked on shard locks.
	LockWaitNs int64 `json:"lock_wait_ns"`
	// ShadowCost is the aggregate cost the per-shard LRU shadows paid for
	// the same stream (0 when the shadow is disabled).
	ShadowCost int64 `json:"shadow_cost"`
	// LoadTimeouts counts requests (leaders and coalesced waiters) whose
	// deadline expired while a load was in flight; LoadRetries counts
	// backend retry attempts; Shed counts loads refused by an open circuit
	// breaker; StaleServed counts requests answered from a ghost value.
	// All stay zero without Config.Resilience.
	LoadTimeouts int64 `json:"load_timeouts"`
	LoadRetries  int64 `json:"load_retries"`
	Shed         int64 `json:"shed"`
	StaleServed  int64 `json:"stale_served"`
}

// Stats sums the shard counters. Under concurrent traffic the fields are
// individually atomic but not mutually consistent.
func (e *Engine) Stats() Stats {
	var t Stats
	for _, s := range e.shards {
		t.Hits += s.hits.Value()
		t.Misses += s.misses.Value()
		t.Coalesced += s.coalesced.Value()
		t.Evictions += s.evictions.Value()
		t.CostPaid += s.costPaid.Value()
		t.LockWaitNs += s.lockWait.Value()
		t.ShadowCost += s.shadowCost()
	}
	t.LoadTimeouts = e.loadTimeouts.Value()
	t.LoadRetries = e.loadRetries.Value()
	t.Shed = e.shed.Value()
	t.StaleServed = e.staleServed.Value()
	return t
}

// Sub returns the counter-wise difference s - prev (a window delta).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Coalesced:    s.Coalesced - prev.Coalesced,
		Evictions:    s.Evictions - prev.Evictions,
		CostPaid:     s.CostPaid - prev.CostPaid,
		LockWaitNs:   s.LockWaitNs - prev.LockWaitNs,
		ShadowCost:   s.ShadowCost - prev.ShadowCost,
		LoadTimeouts: s.LoadTimeouts - prev.LoadTimeouts,
		LoadRetries:  s.LoadRetries - prev.LoadRetries,
		Shed:         s.Shed - prev.Shed,
		StaleServed:  s.StaleServed - prev.StaleServed,
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 for an idle engine. Coalesced
// waiters count toward neither side.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Savings returns the paper's relative-savings metric measured live against
// the LRU shadow: (ShadowCost-CostPaid)/ShadowCost, or 0 when the shadow is
// disabled or has paid nothing.
func (s Stats) Savings() float64 {
	if s.ShadowCost <= 0 {
		return 0
	}
	return float64(s.ShadowCost-s.CostPaid) / float64(s.ShadowCost)
}

// shardLabel renders the canonical label for shard i of namespace ns, shared
// by every engine_* series so identical shards yield identical series names.
// An empty ns renders no ns label, preserving the historical names.
func shardLabel(ns, base string, i int) string {
	if ns == "" {
		return obs.Name(base, "shard", strconv.Itoa(i))
	}
	return obs.Name(base, "ns", ns, "shard", strconv.Itoa(i))
}

// nsLabel renders an engine-wide series name for namespace ns (no shard
// label). An empty ns renders the bare base name.
func nsLabel(ns, base string) string {
	if ns == "" {
		return base
	}
	return obs.Name(base, "ns", ns)
}
