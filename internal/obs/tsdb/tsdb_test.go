package tsdb

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"costcache/internal/obs"
)

// clock returns a simulated-time helper starting at the Unix epoch: step(n)
// advances n finest-resolution steps and samples once at each.
func clock(s *Store, step time.Duration) (advance func(n int), now func() time.Time) {
	t := time.Unix(0, 0)
	return func(n int) {
		for i := 0; i < n; i++ {
			t = t.Add(step)
			s.Sample(t)
		}
	}, func() time.Time { return t }
}

func TestRateAndRatioOverWindow(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter(`engine_hits{shard="0"}`)
	misses := reg.Counter(`engine_misses{shard="0"}`)
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 16}}})

	s.Sample(time.Unix(0, 0)) // discovery sample: counters enter at prev=0
	advance, _ := clock(s, time.Second)
	for i := 0; i < 10; i++ {
		hits.Add(90)
		misses.Add(10)
		advance(1)
	}

	q := Query{Kind: Ratio, Num: []string{"engine_hits"}, Den: []string{"engine_hits", "engine_misses"}}
	v, covered, ok := s.Value(q, 0, 5*time.Second)
	if !ok {
		t.Fatal("hit-rate query not ok")
	}
	if covered != 5*time.Second {
		t.Fatalf("covered = %v, want 5s", covered)
	}
	if v != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", v)
	}

	rate := Query{Kind: Rate, Num: []string{"engine_hits", "engine_misses"}}
	v, _, ok = s.Value(rate, 0, 5*time.Second)
	if !ok || v != 100 {
		t.Fatalf("ops/s = %v ok=%v, want 100", v, ok)
	}
}

// TestDeterministicSimulatedClock runs the same traffic against two stores
// on the same simulated clock and requires bit-identical query results —
// the property CI's alert smoke leans on.
func TestDeterministicSimulatedClock(t *testing.T) {
	run := func() []float64 {
		reg := obs.NewRegistry()
		hits := reg.Counter("engine_hits")
		misses := reg.Counter("engine_misses")
		s := New(Config{Registry: reg})
		s.Sample(time.Unix(0, 0))
		advance, _ := clock(s, time.Second)
		for i := 0; i < 30; i++ {
			hits.Add(int64(50 + i%7))
			misses.Add(int64(5 + i%3))
			advance(1)
		}
		var out []float64
		for _, d := range []time.Duration{time.Second, 5 * time.Second, 20 * time.Second} {
			v, _, _ := s.Value(Query{Kind: Ratio, Num: []string{"engine_hits"},
				Den: []string{"engine_hits", "engine_misses"}}, 0, d)
			out = append(out, v)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMidWindowRegistration locks the satellite guarantee: a series that
// first appears between samples contributes from zero — its pre-discovery
// cumulative history never lands in any bucket, so rates cannot spike when
// a component starts reporting late.
func TestMidWindowRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 16}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)
	advance(3)

	// A counter born mid-run with a large pre-existing total.
	late := reg.Counter("late_total")
	late.Add(1_000_000)
	advance(1) // discovery sample: prev snaps to 1e6, delta 0

	q := Query{Kind: Rate, Num: []string{"late_total"}}
	if v, _, ok := s.Value(q, 0, 4*time.Second); !ok || v != 0 {
		t.Fatalf("pre-discovery history leaked into window: rate=%v ok=%v", v, ok)
	}

	late.Add(500)
	advance(1)
	v, _, ok := s.Value(q, 0, time.Second)
	if !ok || v != 500 {
		t.Fatalf("post-discovery delta: rate=%v ok=%v, want 500", v, ok)
	}
}

func TestMultiResolutionAggregation(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("engine_hits")
	s := New(Config{Registry: reg,
		Resolutions: []Resolution{{Step: time.Second, Slots: 16}, {Step: 10 * time.Second, Slots: 8}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)
	for i := 0; i < 25; i++ {
		c.Add(100)
		advance(1)
	}
	// Coarse ring: two completed 10s buckets, 1000 hits each.
	v, covered, ok := s.Value(Query{Kind: Rate, Num: []string{"engine_hits"}}, 1, 20*time.Second)
	if !ok {
		t.Fatal("coarse query not ok")
	}
	if covered != 20*time.Second {
		t.Fatalf("coarse covered = %v, want 20s", covered)
	}
	if v != 100 {
		t.Fatalf("coarse rate = %v, want 100/s", v)
	}
}

func TestSkewSignal(t *testing.T) {
	reg := obs.NewRegistry()
	shards := make([]*obs.Counter, 4)
	for i := range shards {
		shards[i] = reg.Counter(fmt.Sprintf("engine_hits{shard=%q}", fmt.Sprint(i)))
	}
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 16}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)

	// Balanced: every shard 100/s → skew 1.0.
	for i := 0; i < 3; i++ {
		for _, c := range shards {
			c.Add(100)
		}
		advance(1)
	}
	v, _, ok := s.Value(Query{Kind: Skew, Num: []string{"engine_hits"}}, 0, 3*time.Second)
	if !ok || v != 1.0 {
		t.Fatalf("balanced skew = %v ok=%v, want 1.0", v, ok)
	}

	// Hot shard 0 takes half the traffic → share 0.5 of 4 groups → skew 2.0.
	for i := 0; i < 3; i++ {
		shards[0].Add(300)
		for _, c := range shards[1:] {
			c.Add(100)
		}
		advance(1)
	}
	v, _, ok = s.Value(Query{Kind: Skew, Num: []string{"engine_hits"}}, 0, 3*time.Second)
	if !ok || v != 2.0 {
		t.Fatalf("hot skew = %v ok=%v, want 2.0", v, ok)
	}
}

func TestWindowedQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("request_latency_ns", []int64{100, 1000, 10000})
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 16}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)

	// First window: all fast.
	for i := 0; i < 100; i++ {
		h.Observe(50)
	}
	advance(1)
	// Second window: all slow — the windowed p99 must see only this bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5000)
	}
	advance(1)

	q := Query{Kind: Quantile, Num: []string{"request_latency_ns"}, Q: 0.99}
	v, _, ok := s.Value(q, 0, time.Second)
	if !ok || v != 10000 {
		t.Fatalf("windowed p99 = %v ok=%v, want 10000 (slow window only)", v, ok)
	}
	// The 2s window mixes both: p50 is still the fast bound.
	q.Q = 0.25
	v, _, ok = s.Value(q, 0, 2*time.Second)
	if !ok || v != 100 {
		t.Fatalf("mixed-window p25 = %v ok=%v, want 100", v, ok)
	}
}

func TestGaugeSeriesInstantaneous(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("queue_depth")
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 8}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)
	g.Set(7)
	advance(1)
	g.Set(3)
	advance(1)
	// A gauge bucket holds the last sampled value, not a delta/sum.
	points, _ := s.SeriesPoints(Query{Kind: Rate, Num: []string{"queue_depth"}}, 0, 2)
	if len(points) != 2 || points[0] != 7 || points[1] != 3 {
		t.Fatalf("gauge points = %v, want [7 3]", points)
	}
}

func TestRingWraparound(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("engine_hits")
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 4}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)
	for i := 0; i < 20; i++ {
		c.Add(int64(i + 1))
		advance(1)
	}
	// Only the last 4 buckets survive a 4-slot ring; asking for a huge
	// window reports what it actually covered.
	v, covered, ok := s.Value(Query{Kind: Rate, Num: []string{"engine_hits"}}, 0, time.Hour)
	if !ok {
		t.Fatal("wraparound query not ok")
	}
	if covered != 4*time.Second {
		t.Fatalf("covered = %v, want 4s", covered)
	}
	want := float64(17+18+19+20) / 4
	if v != want {
		t.Fatalf("rate = %v, want %v", v, want)
	}
}

func TestIdleGapZeroes(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("engine_hits")
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 8}}})
	s.Sample(time.Unix(0, 0))
	c.Add(100)
	s.Sample(time.Unix(1, 0))
	// 5 idle seconds, then resume: the skipped buckets must read as zero,
	// not stale wrapped data.
	c.Add(100)
	s.Sample(time.Unix(6, 0))
	points, _ := s.SeriesPoints(Query{Kind: Rate, Num: []string{"engine_hits"}}, 0, 6)
	want := []float64{100, 0, 0, 0, 0, 100}
	if len(points) != len(want) {
		t.Fatalf("points = %v, want %v", points, want)
	}
	for i := range want {
		if points[i] != want[i] {
			t.Fatalf("points = %v, want %v", points, want)
		}
	}
}

// TestSampleSteadyStateAllocs is the zero-alloc gate CI invokes by name: once
// series discovery has settled, Sample must not allocate at all.
func TestSampleSteadyStateAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	for sh := 0; sh < 8; sh++ {
		for _, m := range []string{"engine_hits", "engine_misses", "engine_coalesced",
			"engine_evictions", "engine_cost_paid", "engine_lock_wait_ns"} {
			reg.Counter(fmt.Sprintf("%s{shard=%q}", m, fmt.Sprint(sh))).Add(int64(sh))
		}
	}
	reg.Histogram("request_latency_ns", obs.ExpBuckets(100, 2, 20)).Observe(12345)
	reg.Gauge("queue_depth").Set(3)

	s := New(Config{Registry: reg})
	now := time.Unix(0, 0)
	sample := func() {
		now = now.Add(time.Second)
		s.Sample(now)
	}
	sample() // discovery
	sample() // settle
	allocs := testing.AllocsPerRun(100, sample)
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocates %.1f times per call, want 0", allocs)
	}
}

func TestHTTPHandlerShape(t *testing.T) {
	reg := obs.NewRegistry()
	hits := reg.Counter(`engine_hits{shard="0"}`)
	misses := reg.Counter(`engine_misses{shard="0"}`)
	h := reg.Histogram("request_latency_ns", []int64{100, 1000})
	s := New(Config{Registry: reg, Resolutions: Resolutions(time.Second)})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)
	for i := 0; i < 5; i++ {
		hits.Add(80)
		misses.Add(20)
		h.Observe(500)
		advance(1)
	}

	rec := httptest.NewRecorder()
	Handler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeseries?n=4", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var out timeseriesPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if out.Samples != 6 {
		t.Fatalf("samples = %d, want 6", out.Samples)
	}
	if len(out.Resolutions) != 2 {
		t.Fatalf("resolutions = %d, want 2", len(out.Resolutions))
	}
	fine := out.Resolutions[0]
	if fine.StepMS != 1000 {
		t.Fatalf("fine step = %dms", fine.StepMS)
	}
	hr, ok := fine.Windowed["hit_rate"]
	if !ok || hr != 0.8 {
		t.Fatalf("windowed hit_rate = %v ok=%v, want 0.8", hr, ok)
	}
	if pts := fine.Signals["ops_per_s"]; len(pts) != 4 {
		t.Fatalf("ops_per_s points = %v, want 4 buckets", pts)
	}
	if p99 := fine.Windowed["latency_p99_ns"]; p99 != 1000 {
		t.Fatalf("windowed p99 = %v, want 1000", p99)
	}
}

func TestStartStopWallClock(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine_hits").Add(1)
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Millisecond, Slots: 64}}})
	stop := s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if s.Samples() < 3 {
		t.Fatalf("sampler took %d samples, want >= 3", s.Samples())
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("nil registry", func() { New(Config{}) })
	mustPanic("bad step", func() {
		New(Config{Registry: obs.NewRegistry(), Resolutions: []Resolution{{Step: 0, Slots: 10}}})
	})
	mustPanic("bad slots", func() {
		New(Config{Registry: obs.NewRegistry(), Resolutions: []Resolution{{Step: time.Second, Slots: 1}}})
	})
}

// TestServingTierSignals drives the server_* counter family (published by
// internal/server) through the standard conns_per_s and server_shed_share
// signals, and checks the shed-share ratio reads no-data while the serving
// tier is absent — the property that keeps in-process dashboards quiet.
func TestServingTierSignals(t *testing.T) {
	find := func(name string) Query {
		for _, sig := range StandardSignals() {
			if sig.Name == name {
				return sig.Query
			}
		}
		t.Fatalf("standard signal %q missing", name)
		return Query{}
	}
	connsQ, shedQ := find("conns_per_s"), find("server_shed_share")

	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, Resolutions: []Resolution{{Step: time.Second, Slots: 16}}})
	s.Sample(time.Unix(0, 0))
	advance, _ := clock(s, time.Second)
	advance(4)

	// No serving tier registered yet: the ratio's denominator is absent, so
	// the signal reads no-data rather than a spurious zero.
	if _, _, ok := s.Value(shedQ, 0, 4*time.Second); ok {
		t.Fatal("server_shed_share reported data with no serving tier")
	}

	conns := reg.Counter("server_conns_accepted")
	frames := reg.Counter("server_frames_in")
	shed := reg.Counter("server_shed")
	advance(1) // discovery sample: the new counters enter at zero
	for i := 0; i < 5; i++ {
		conns.Add(3)
		frames.Add(100)
		shed.Add(10)
		advance(1)
	}

	if v, _, ok := s.Value(connsQ, 0, 5*time.Second); !ok || v != 3 {
		t.Fatalf("conns_per_s = %v ok=%v, want 3", v, ok)
	}
	if v, _, ok := s.Value(shedQ, 0, 5*time.Second); !ok || v != 0.1 {
		t.Fatalf("server_shed_share = %v ok=%v, want 0.1", v, ok)
	}
}
