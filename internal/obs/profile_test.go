package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestProfilerSnapshots runs the continuous profiler over one short cycle
// and checks every profile kind lands on disk, is recorded in Snapshots,
// and the runtime sampling rates are restored after Close.
func TestProfilerSnapshots(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiler(ProfilerConfig{Dir: dir, Interval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Generate a little work so the CPU window has samples to take.
	x := 0
	deadline := time.Now().Add(80 * time.Millisecond)
	for time.Now().Before(deadline) {
		x += len(strings.Repeat("a", 64))
	}
	_ = x
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]bool{}
	for _, name := range p.Snapshots() {
		full := filepath.Join(dir, name)
		if fi, err := os.Stat(full); err != nil || fi.Size() == 0 {
			t.Errorf("snapshot %s missing or empty (err %v)", name, err)
		}
		kinds[strings.SplitN(name, "-", 2)[0]] = true
	}
	for _, k := range []string{"cpu", "heap", "mutex", "block"} {
		if !kinds[k] {
			t.Errorf("no %s snapshot captured; files: %v", k, p.Snapshots())
		}
	}
	if f := runtime.SetMutexProfileFraction(-1); f != 0 {
		t.Errorf("mutex profile fraction left at %d after Close", f)
	}
	// Close is idempotent.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
