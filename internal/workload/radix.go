package workload

import (
	"math/rand"

	"costcache/internal/trace"
)

// Radix models the SPLASH-2 radix sort: per-processor key arrays scanned
// sequentially (local, streaming), a shared histogram updated by everyone
// (write-shared blocks that bounce between caches), and a permutation phase
// that writes keys into destination slots scattered over all processors'
// arrays (remote write bursts). Listed in the paper's footnote as yielding
// no additional insight; included as the invalidation-heavy extreme.
type Radix struct {
	// KeysPerProc is each processor's key count (4 bytes per key).
	KeysPerProc int
	// Buckets is the histogram size in entries.
	Buckets int
	// Passes is the number of radix passes.
	Passes int
	// Procs is the processor count.
	Procs int
	// Seed controls destination scattering and interleaving.
	Seed int64
}

// DefaultRadix returns the configuration used by the extra-benchmark
// drivers.
func DefaultRadix() Radix {
	return Radix{KeysPerProc: 16384, Buckets: 1024, Passes: 3, Procs: 8, Seed: 6}
}

// Name implements Generator.
func (Radix) Name() string { return "Radix" }

func (w Radix) keyAddr(p, i int) uint64 {
	return regionBodies + uint64(p)<<24 + uint64(i)*4
}

func (w Radix) bucketAddr(bkt int) uint64 { return regionQueue + uint64(bkt)*4 }

// Generate implements Generator.
func (w Radix) Generate() *trace.Trace { return w.emit().build(w.Name()) }

// Program returns the barrier-structured form of the Radix workload.
func (w Radix) Program() *Program { return w.emit().buildProgram(w.Name()) }

func (w Radix) emit() *builder {
	b := newBuilder(w.Procs, w.Seed)

	// Initialization: write own keys (first touch -> local).
	for p := 0; p < w.Procs; p++ {
		for i := 0; i < w.KeysPerProc; i += 16 { // per block
			b.write(p, w.keyAddr(p, i))
		}
	}
	// Histogram first touch is striped so bucket homes scatter.
	for p := 0; p < w.Procs; p++ {
		for bkt := p; bkt < w.Buckets; bkt += w.Procs {
			b.write(p, w.bucketAddr(bkt))
		}
	}
	b.barrier()

	for pass := 0; pass < w.Passes; pass++ {
		// Histogram phase: scan own keys, bump shared buckets.
		for p := 0; p < w.Procs; p++ {
			rng := rand.New(rand.NewSource(w.Seed + int64(pass*w.Procs+p)))
			for i := 0; i < w.KeysPerProc; i += 4 {
				b.read(p, w.keyAddr(p, i))
				bkt := rng.Intn(w.Buckets)
				b.read(p, w.bucketAddr(bkt))
				b.write(p, w.bucketAddr(bkt))
			}
		}
		b.barrier()
		// Permutation phase: read own keys, write each to a scattered
		// destination in some processor's array (remote 7/8 of the time).
		for p := 0; p < w.Procs; p++ {
			rng := rand.New(rand.NewSource(w.Seed ^ int64(pass*w.Procs+p)*7919))
			for i := 0; i < w.KeysPerProc; i += 4 {
				b.read(p, w.keyAddr(p, i))
				dst := rng.Intn(w.Procs)
				slot := rng.Intn(w.KeysPerProc) &^ 3
				b.write(p, w.keyAddr(dst, slot))
			}
		}
		b.barrier()
	}
	return b
}
