// Migration: the paper's Section 7 dynamic-mapping scenario. The OS
// migrates a remote page to local memory once the processor has touched it
// enough, so a block's miss cost CHANGES during execution. Because the
// cost-sensitive policies reload the cost field at every miss, they track
// the migration automatically: before migration they protect the block
// (remote, expensive), afterwards they treat it as cheap.
package main

import (
	"fmt"

	"costcache"
)

func main() {
	tr := costcache.Workload("Barnes").Generate()
	view := tr.SampleView(0)
	home := costcache.FirstTouchHome(tr, 64)

	for _, threshold := range []int{0, 64, 16} {
		label := fmt.Sprintf("migrate after %d touches", threshold)
		mk := func() costcache.CostSource {
			if threshold == 0 {
				// No migration: plain first-touch NUMA costs.
				return costcache.FirstTouchCosts(home, 0, 1, 8)
			}
			return costcache.MigratingCosts(home, 0, 1, 8, threshold)
		}
		if threshold == 0 {
			label = "static first-touch (no migration)"
		}
		lru := costcache.SimulateTrace(view, costcache.NewLRU(), mk())
		dcl := costcache.SimulateTrace(view, costcache.NewDCL(0), mk())
		fmt.Printf("%-36s LRU cost=%8d  DCL cost=%8d  savings=%6.2f%%\n",
			label, lru.L2.AggCost, dcl.L2.AggCost,
			100*costcache.RelativeSavings(lru.L2.AggCost, dcl.L2.AggCost))
	}
	// Lower thresholds migrate more aggressively: the aggregate cost drops
	// for everyone, and the replacement policy's edge shrinks as fewer
	// blocks stay expensive — cost-sensitivity matters most when the cost
	// asymmetry persists.
}
