package numasim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"costcache/internal/obs/span"
)

// tracedRun runs smallProgram with the miss-lifecycle tracer attached to
// both sinks and returns the tracer plus the result and raw outputs.
func tracedRun(t *testing.T) (*span.Tracer, Result, []byte, []byte) {
	t.Helper()
	var jsonl, chrome bytes.Buffer
	tr := span.NewTracer(&jsonl, &chrome)
	cfg := DefaultConfig(nil)
	cfg.Spans = tr
	res := Run(smallProgram(), cfg)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return tr, res, jsonl.Bytes(), chrome.Bytes()
}

// TestSpanTracingDoesNotPerturbResults pins the acceptance criterion: with
// tracing disabled the results are bit-identical to a traced run.
func TestSpanTracingDoesNotPerturbResults(t *testing.T) {
	bare := Run(smallProgram(), DefaultConfig(nil))
	_, traced, _, _ := tracedRun(t)
	if !reflect.DeepEqual(bare, traced) {
		t.Fatalf("tracing perturbed the simulation:\nbare   %+v\ntraced %+v", bare, traced)
	}
}

// TestSpanCountsReconcile pins the one-span-per-miss invariant, per node.
func TestSpanCountsReconcile(t *testing.T) {
	tr, res, jsonl, _ := tracedRun(t)
	if int64(tr.Count()) != res.L2Misses {
		t.Fatalf("%d spans, %d L2 misses", tr.Count(), res.L2Misses)
	}
	counts := tr.NodeCounts()
	for i, ns := range res.PerNode {
		var got int64
		if i < len(counts) {
			got = counts[i]
		}
		if got != ns.Misses {
			t.Errorf("node %d: %d spans, %d misses", i, got, ns.Misses)
		}
	}
	if n := int64(bytes.Count(jsonl, []byte{'\n'})); n != res.L2Misses {
		t.Errorf("JSONL has %d lines, want %d", n, res.L2Misses)
	}
}

// TestSpanBreakdownPhysical checks the aggregated stage breakdown against
// the machine's physics: every miss latency is at least the unloaded local
// minimum, and a remote transaction is at least as expensive as a local one
// (Table 4: 120 ns local vs 380+ ns remote, before queueing).
func TestSpanBreakdownPhysical(t *testing.T) {
	tr, _, _, _ := tracedRun(t)
	b := tr.Breakdown()

	var local, remote struct{ spans, ns int64 }
	for ci, c := range b.Classes {
		if c.Spans == 0 {
			continue
		}
		txn := c.TotalNs - c.Stages[span.StageIssue].Ns
		switch span.Class(ci) {
		case span.LocalClean, span.LocalDirty:
			local.spans += c.Spans
			local.ns += txn
		default:
			remote.spans += c.Spans
			remote.ns += txn
		}
		// Every class's mean transaction latency covers at least the lookup
		// (14 ns) plus the local round trip (~120 ns).
		if m := c.MeanTransactionNs(); m < 120 {
			t.Errorf("%s mean transaction %f ns below the local minimum", span.Class(ci), m)
		}
	}
	if local.spans == 0 || remote.spans == 0 {
		t.Fatalf("degenerate class split: %d local, %d remote spans", local.spans, remote.spans)
	}
	lm := float64(local.ns) / float64(local.spans)
	rm := float64(remote.ns) / float64(remote.spans)
	if rm < lm {
		t.Errorf("remote mean transaction latency %.1f ns below local %.1f ns", rm, lm)
	}
}

// TestSpanJSONLStagesWithinWindow samples the JSONL stream and checks every
// stage lies inside its span window and that request precedes reply.
func TestSpanJSONLStagesWithinWindow(t *testing.T) {
	_, _, jsonl, _ := tracedRun(t)
	type seg struct {
		Stage      string `json:"stage"`
		Start, End int64
		Queue      int64
	}
	type rec struct {
		Start, End int64
		Class      string
		Stages     []seg `json:"stages"`
		Hops       []seg `json:"hops"`
	}
	lines := bytes.Split(bytes.TrimSpace(jsonl), []byte{'\n'})
	for i, line := range lines {
		if i%97 != 0 { // sample; the full set is covered by cmd/report -check in CI
			continue
		}
		var r rec
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if r.End < r.Start {
			t.Fatalf("line %d: span ends before it starts: %+v", i, r)
		}
		var request, reply *seg
		for j, s := range r.Stages {
			if s.Start < r.Start || s.End > r.End {
				t.Fatalf("line %d: stage %s [%d,%d] outside span [%d,%d]",
					i, s.Stage, s.Start, s.End, r.Start, r.End)
			}
			switch s.Stage {
			case "request":
				request = &r.Stages[j]
			case "reply":
				reply = &r.Stages[j]
			}
		}
		if request != nil && reply != nil && reply.End < request.Start {
			t.Fatalf("line %d: reply before request", i)
		}
		if r.Class == "local-clean" && len(r.Hops) != 0 {
			t.Fatalf("line %d: local-clean span crossed %d links", i, len(r.Hops))
		}
	}
}

// TestSpanChromeTraceParses checks the Chrome trace is a valid JSON array of
// X/M events with exactly one class-named slice per miss and non-overlapping
// slices per (pid, tid) lane.
func TestSpanChromeTraceParses(t *testing.T) {
	_, res, _, chrome := tracedRun(t)
	var evs []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.Unmarshal(chrome, &evs); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	classes := map[string]bool{
		"local-clean": true, "local-dirty": true,
		"remote-clean": true, "remote-dirty": true,
	}
	spans := int64(0)
	type lane struct{ pid, tid int }
	laneEnd := map[lane]int64{}
	// Timestamps are fractional microseconds, exact to the ns; compare in
	// integer ns to dodge float64 rounding.
	ns := func(us float64) int64 { return int64(us*1000 + 0.5) }
	for i, e := range evs {
		switch e.Ph {
		case "M":
		case "X":
			if !classes[e.Name] {
				continue // stage child slice: nested, shares the lane
			}
			spans++
			l := lane{e.Pid, e.Tid}
			if ns(e.Ts) < laneEnd[l] {
				t.Fatalf("event %d: span slice at ts=%f overlaps lane %v busy until %d ns",
					i, e.Ts, l, laneEnd[l])
			}
			laneEnd[l] = ns(e.Ts) + ns(e.Dur)
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Ph)
		}
	}
	if spans != res.L2Misses {
		t.Fatalf("chrome trace has %d span slices, want %d", spans, res.L2Misses)
	}
}
