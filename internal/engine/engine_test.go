package engine

import (
	"errors"
	"fmt"
	"testing"

	"costcache/internal/obs"
	"costcache/internal/replacement"
)

func lruFactory() replacement.Policy { return replacement.NewLRU() }

func constLoader(v any, c replacement.Cost) Loader {
	return func(uint64) (any, replacement.Cost, error) { return v, c, nil }
}

func TestGetSetRoundTrip(t *testing.T) {
	e := New(Config{Shards: 4, Sets: 16, Ways: 2, Policy: lruFactory})
	if _, ok := e.Get(1); ok {
		t.Fatal("hit on empty engine")
	}
	e.Set(1, "one", 5)
	v, ok := e.Get(1)
	if !ok || v != "one" {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	e.Set(1, "uno", 5) // refresh
	if v, _ := e.Get(1); v != "uno" {
		t.Fatalf("refreshed value = %v", v)
	}
	st := e.Stats()
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 3 hits / 2 misses", st)
	}
	if st.CostPaid != 5 {
		t.Fatalf("cost paid %d, want 5 (refresh must not re-charge)", st.CostPaid)
	}
}

func TestGetOrLoadInstallsAndCharges(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	calls := 0
	load := func(key uint64) (any, replacement.Cost, error) {
		calls++
		return key * 10, 3, nil
	}
	for i := 0; i < 2; i++ { // second call must hit
		v, err := e.GetOrLoad(7, load)
		if err != nil || v != uint64(70) {
			t.Fatalf("GetOrLoad = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("loader ran %d times, want 1", calls)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.CostPaid != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrLoadErrorDoesNotInstall(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 8, Ways: 2, Policy: lruFactory})
	boom := errors.New("origin down")
	if _, err := e.GetOrLoad(3, func(uint64) (any, replacement.Cost, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, ok := e.Get(3); ok {
		t.Fatal("errored load was installed")
	}
	// The key must be retryable: a later successful load installs.
	if v, err := e.GetOrLoad(3, constLoader("ok", 1)); err != nil || v != "ok" {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

func TestEvictionRespectsPolicy(t *testing.T) {
	// One set, 2 ways, LRU: keys mapping to the same set must evict in LRU
	// order. With Sets=1 every key shares the set.
	e := New(Config{Shards: 1, Sets: 1, Ways: 2, Policy: lruFactory})
	e.Set(1, 1, 1)
	e.Set(2, 2, 1)
	e.Get(1)       // 2 is now LRU
	e.Set(3, 3, 1) // evicts 2
	if _, ok := e.Get(2); ok {
		t.Fatal("LRU victim 2 still cached")
	}
	for _, k := range []uint64{1, 3} {
		if _, ok := e.Get(k); !ok {
			t.Fatalf("key %d evicted unexpectedly", k)
		}
	}
	if st := e.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestInvalidate(t *testing.T) {
	e := New(Config{Shards: 2, Sets: 8, Ways: 2, Policy: lruFactory})
	e.Set(9, "x", 1)
	if !e.Invalidate(9) {
		t.Fatal("Invalidate missed a cached key")
	}
	if e.Invalidate(9) {
		t.Fatal("Invalidate hit an uncached key")
	}
	if _, ok := e.Get(9); ok {
		t.Fatal("key survived invalidation")
	}
}

func TestShadowReportsLRUCost(t *testing.T) {
	// Identical policy (LRU) and shadow: the shadow must pay exactly what
	// the engine pays, so savings are zero by construction.
	e := New(Config{Shards: 2, Sets: 4, Ways: 2, Policy: lruFactory, Shadow: true})
	for i := 0; i < 500; i++ {
		k := uint64(i % 37)
		if _, err := e.GetOrLoad(k, constLoader(k, replacement.Cost(1+k%8))); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.ShadowCost == 0 || st.CostPaid == 0 {
		t.Fatalf("stats = %+v, want nonzero costs", st)
	}
	if st.ShadowCost != st.CostPaid {
		t.Fatalf("LRU engine paid %d but LRU shadow paid %d; shadow must mirror the engine",
			st.CostPaid, st.ShadowCost)
	}
	if s := st.Savings(); s != 0 {
		t.Fatalf("savings = %v, want 0 for LRU vs LRU", s)
	}
}

func TestShadowDisabledReportsZero(t *testing.T) {
	e := New(Config{Shards: 1, Sets: 4, Ways: 2, Policy: lruFactory})
	e.Set(1, 1, 9)
	if st := e.Stats(); st.ShadowCost != 0 || st.Savings() != 0 {
		t.Fatalf("stats = %+v, want zero shadow", st)
	}
}

func TestRegistrySeries(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Shards: 2, Sets: 4, Ways: 2, Policy: lruFactory, Registry: reg})
	e.Set(1, 1, 4)
	e.Get(1)
	snap := reg.Snapshot()
	var hits, paid int64
	for i := 0; i < 2; i++ {
		hits += snap.Counters[fmt.Sprintf("engine_hits{shard=%q}", fmt.Sprint(i))]
		paid += snap.Counters[fmt.Sprintf("engine_cost_paid{shard=%q}", fmt.Sprint(i))]
	}
	if hits != 1 || paid != 4 {
		t.Fatalf("registry rollup hits=%d paid=%d; series: %v", hits, paid, snap.Counters)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for name, cfg := range map[string]Config{
		"shards-not-pow2": {Shards: 3, Sets: 8, Ways: 2},
		"sets-not-pow2":   {Shards: 2, Sets: 12, Ways: 2},
		"shards-gt-sets":  {Shards: 16, Sets: 8, Ways: 2},
		"negative-ways":   {Shards: 1, Sets: 8, Ways: -1},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		})
	}
}

func TestPlacementShardCountInvariant(t *testing.T) {
	// The same key must land in the same global set at every shard count:
	// shard index and local set recombine to one global set.
	for _, shards := range []int{1, 2, 4, 8} {
		e := New(Config{Shards: shards, Sets: 64, Ways: 2, Policy: lruFactory})
		for key := uint64(0); key < 1000; key++ {
			s, local := e.place(key)
			idx := -1
			for i, sh := range e.shards {
				if sh == s {
					idx = i
				}
			}
			global := idx + local*shards
			want := int(mix64(key) & 63)
			if global != want {
				t.Fatalf("shards=%d key=%d: global set %d, want %d", shards, key, global, want)
			}
		}
	}
}
