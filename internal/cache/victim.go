package cache

import (
	"costcache/internal/cost"
	"costcache/internal/replacement"
)

// VictimBuffer implements the special-purpose-buffer alternative the paper
// contrasts with (related work [14], Srinivasan et al.: evicted critical
// blocks are parked in a dedicated buffer): a small fully associative,
// LRU-managed buffer that captures blocks evicted from a cache, optionally
// filtered to "interesting" (e.g. high-cost) blocks. A reference that
// misses the cache but hits the buffer is swapped back at a reduced charge.
//
// The paper argues that cost-sensitive replacement beats such partitioned
// designs because it "can maximize cache utilization"; this type exists so
// that claim can be measured (see the victim-buffer comparison bench).
type VictimBuffer struct {
	c       *Cache
	keep    func(block uint64) bool
	tags    []uint64
	valid   []bool
	used    []uint64
	tick    uint64
	src     cost.Source
	swapIn  replacement.Cost // charge for a buffer hit (SRAM-to-SRAM move)
	hits    int64
	inserts int64
}

// NewVictimBuffer wraps c with an entries-slot victim buffer. keep filters
// which evicted blocks are captured (nil keeps everything). src supplies
// the predicted cost for swapped-back fills; swapInCharge is the (small)
// cost charged on a buffer hit.
func NewVictimBuffer(c *Cache, entries int, keep func(block uint64) bool,
	src cost.Source, swapInCharge replacement.Cost) *VictimBuffer {
	if entries <= 0 {
		panic("cache: victim buffer needs at least one entry")
	}
	v := &VictimBuffer{
		c: c, keep: keep, src: src, swapIn: swapInCharge,
		tags:  make([]uint64, entries),
		valid: make([]bool, entries),
		used:  make([]uint64, entries),
	}
	prev := c.OnEvict
	c.OnEvict = func(block uint64, dirty bool) {
		v.insert(block)
		if prev != nil {
			prev(block, dirty)
		}
	}
	return v
}

func (v *VictimBuffer) lookup(block uint64) int {
	for i, ok := range v.valid {
		if ok && v.tags[i] == block {
			return i
		}
	}
	return -1
}

func (v *VictimBuffer) insert(block uint64) {
	if v.keep != nil && !v.keep(block) {
		return
	}
	v.inserts++
	v.tick++
	slot := -1
	for i, ok := range v.valid {
		if !ok {
			slot = i
			break
		}
	}
	if slot < 0 {
		var oldest uint64
		for i, u := range v.used {
			if slot < 0 || u < oldest {
				slot, oldest = i, u
			}
		}
	}
	v.tags[slot] = block
	v.valid[slot] = true
	v.used[slot] = v.tick
}

// Access performs one reference: cache first, then the buffer. A buffer hit
// swaps the block back into the cache, charging swapInCharge instead of the
// full miss cost.
func (v *VictimBuffer) Access(addr uint64, write bool) bool {
	if v.c.Contains(addr) {
		return v.c.Access(addr, write)
	}
	block := v.c.BlockAddr(addr)
	if i := v.lookup(block); i >= 0 {
		v.hits++
		v.tick++
		v.used[i] = v.tick
		v.valid[i] = false // it moves back into the cache
		var predicted replacement.Cost
		if v.src != nil {
			predicted = v.src.MissCost(block)
		}
		v.c.FillWithCost(addr, write, v.swapIn, predicted)
		return true
	}
	return v.c.Access(addr, write)
}

// Invalidate removes the block from the cache and the buffer.
func (v *VictimBuffer) Invalidate(addr uint64) {
	v.c.Invalidate(addr)
	block := v.c.BlockAddr(addr)
	if i := v.lookup(block); i >= 0 {
		v.valid[i] = false
	}
}

// Stats reports buffer hits and insertions.
func (v *VictimBuffer) Stats() (hits, inserts int64) { return v.hits, v.inserts }
