// Serving: the paper's policies on a live request path. A concurrent
// sharded engine fronts a simulated origin whose objects have a 10x cost
// spread (cheap edge vs. expensive overseas fetches); GetOrLoad coalesces
// concurrent misses so the origin sees each key at most once per flight,
// and the per-shard LRU shadow prices the same stream under plain LRU, so
// the cost savings the cost-sensitive policy buys are reported live.
//
// The first half drives the engine by hand from 8 goroutines; the second
// uses the loadgen harness (costcache.RunLoad) for a closed-loop run with
// latency percentiles. See docs/ENGINE.md.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"costcache"
)

// originCost prices a key's fetch by a hash: most objects are cheap (cost
// 1), one in five is expensive (cost 10) — the paper's bimodal cost model.
func originCost(key uint64) costcache.Cost {
	h := key * 0x9e3779b97f4a7c15
	if (h>>33)%5 == 0 {
		return 10
	}
	return 1
}

// fetch simulates the origin: the returned cost is what the engine charges
// and what the replacement policy weighs when choosing victims.
func fetch(key uint64) (any, costcache.Cost, error) {
	return fmt.Sprintf("object-%d", key), originCost(key), nil
}

func main() {
	eng := costcache.NewEngine(costcache.EngineConfig{
		Shards: 8,
		Sets:   1024, // x4 ways = 4096 resident objects
		Ways:   4,
		Policy: func() costcache.Policy { return costcache.NewDCL(0) },
		Shadow: true, // price the same stream under plain LRU, live
	})

	const workers, opsPerWorker = 8, 25000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			zipf := rand.NewZipf(rng, 1.1, 1, 1<<14)
			for i := 0; i < opsPerWorker; i++ {
				if _, err := eng.GetOrLoad(zipf.Uint64(), fetch); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()

	s := eng.Stats()
	fmt.Printf("requests    %d (hits %d, misses %d, coalesced %d)\n",
		s.Hits+s.Misses+s.Coalesced, s.Hits, s.Misses, s.Coalesced)
	fmt.Printf("hit rate    %.2f%%\n", 100*s.HitRate())
	fmt.Printf("cost paid   %d   (plain LRU would pay %d)\n",
		s.CostPaid, s.ShadowCost)
	fmt.Printf("savings     %.2f%% vs. the LRU shadow\n\n", 100*s.Savings())

	// The same experiment through the load harness: a closed-loop run on a
	// fresh engine, with the backend sleeping cost x 20us per miss so the
	// cost model shows up in the latency percentiles too.
	eng2 := costcache.NewEngine(costcache.EngineConfig{
		Shards: 8, Sets: 1024, Ways: 4,
		Policy: func() costcache.Policy { return costcache.NewDCL(0) },
		Shadow: true,
	})
	res, err := costcache.RunLoad(eng2, costcache.LoadgenConfig{
		Mode:      costcache.ClosedLoop,
		Workers:   8,
		Ops:       40000,
		Keys:      1 << 14,
		ZipfS:     1.1,
		Seed:      42,
		CostLow:   1,
		CostHigh:  10,
		HighFrac:  0.2,
		LoadDelay: 20 * time.Microsecond,
	}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("loadgen     %d ops, %.0f ops/s closed-loop\n",
		res.Ops, res.Throughput)
	fmt.Printf("latency     p50 %v  p95 %v  p99 %v\n",
		time.Duration(res.P50Ns), time.Duration(res.P95Ns),
		time.Duration(res.P99Ns))
	fmt.Printf("savings     %.2f%% vs. the LRU shadow\n", 100*res.Stats.Savings())
}
