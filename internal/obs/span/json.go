package span

import (
	"strconv"
)

// appendSpanJSON renders one span as a single JSON line with a fixed field
// order, so traces are byte-for-byte deterministic. Schema (all times in
// simulated ns):
//
//	{"id":1,"node":3,"block":512,"op":"r","state":"S","class":"remote-clean",
//	 "start":100,"end":480,
//	 "stages":[{"stage":"request","start":100,"queue":0,"end":160},...],
//	 "hops":[{"link":12,"start":100,"queue":6,"end":130},...]}
func appendSpanJSON(b []byte, s *Span) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendUint(b, s.ID, 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(s.Node), 10)
	b = append(b, `,"block":`...)
	b = strconv.AppendUint(b, s.Block, 10)
	b = append(b, `,"op":"`...)
	b = append(b, opByte(s.Write))
	b = append(b, `","state":"`...)
	b = append(b, s.State)
	b = append(b, `","class":"`...)
	b = append(b, ClassOf(s.Local, s.Dirty).String()...)
	b = append(b, `","start":`...)
	b = strconv.AppendInt(b, s.Start, 10)
	b = append(b, `,"end":`...)
	b = strconv.AppendInt(b, s.End, 10)
	b = append(b, `,"stages":[`...)
	for i, seg := range s.Segs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"stage":"`...)
		b = append(b, seg.Stage.String()...)
		b = append(b, `","start":`...)
		b = strconv.AppendInt(b, seg.Start, 10)
		b = append(b, `,"queue":`...)
		b = strconv.AppendInt(b, seg.Queue, 10)
		b = append(b, `,"end":`...)
		b = strconv.AppendInt(b, seg.End, 10)
		b = append(b, '}')
	}
	b = append(b, `],"hops":[`...)
	for i, h := range s.Hops {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"link":`...)
		b = strconv.AppendInt(b, int64(h.Link), 10)
		b = append(b, `,"start":`...)
		b = strconv.AppendInt(b, h.Start, 10)
		b = append(b, `,"queue":`...)
		b = strconv.AppendInt(b, h.Queue, 10)
		b = append(b, `,"end":`...)
		b = strconv.AppendInt(b, h.End, 10)
		b = append(b, '}')
	}
	b = append(b, ']', '}', '\n')
	return b
}

func opByte(write bool) byte {
	if write {
		return 'w'
	}
	return 'r'
}

// chromeWriter streams spans as a Chrome trace-event JSON array, loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing. Each simulated node is a
// "process"; concurrent misses of a node (MSHR overlap) are laid out on
// separate lanes ("threads") so complete events never overlap within a
// track. Every span becomes one "X" slice named by its latency class, with
// its stage segments as nested child slices; stages that start together (a
// write miss's parallel memory access and invalidation window) nest by
// containment, which the trace processors accept. Per-hop link records are
// not emitted as slices (parallel fan-out hops would violate slice nesting);
// their aggregate appears in the span's args and the full detail in the
// JSONL output.
type chromeWriter struct {
	sink  *ChromeSink
	buf   []byte
	lanes map[int][]int64 // per node: lane -> last slice end (ns)
}

func newChromeWriter(sink *ChromeSink) *chromeWriter {
	return &chromeWriter{sink: sink, lanes: make(map[int][]int64)}
}

// lane picks the first lane of the node whose previous slice ended at or
// before start, extending the lane set if every lane is still busy.
func (c *chromeWriter) lane(node int, start, end int64) int {
	ends := c.lanes[node]
	for i, e := range ends {
		if e <= start {
			ends[i] = end
			return i
		}
	}
	c.lanes[node] = append(ends, end)
	if len(ends) == 0 {
		c.meta(node, `"process_name"`, `"name":"node `, int64(node), 0)
	}
	c.meta(node, `"thread_name"`, `"name":"miss lane `, int64(len(ends)), len(ends))
	return len(ends)
}

// meta emits a process_name/thread_name metadata event.
func (c *chromeWriter) meta(node int, kind, namePrefix string, nameN int64, tid int) {
	b := c.buf[:0]
	b = append(b, `{"name":`...)
	b = append(b, kind...)
	b = append(b, `,"ph":"M","pid":`...)
	b = strconv.AppendInt(b, int64(node), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{`...)
	b = append(b, namePrefix...)
	b = strconv.AppendInt(b, nameN, 10)
	b = append(b, `"}}`...)
	c.flush(b)
}

// flush hands one complete event to the sink, which frames it into the
// trace array, and reclaims the scratch buffer.
func (c *chromeWriter) flush(b []byte) {
	c.sink.Event(b)
	c.buf = b[:0]
}

// AppendChromeTs renders a ns timestamp or duration as fractional
// microseconds (the trace-event format's unit), exact to the nanosecond.
// Exported so the engine's request tracer renders timestamps identically.
func AppendChromeTs(b []byte, ns int64) []byte {
	b = strconv.AppendInt(b, ns/1000, 10)
	b = append(b, '.')
	frac := ns % 1000
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

func appendTs(b []byte, ns int64) []byte { return AppendChromeTs(b, ns) }

func (c *chromeWriter) slice(pid, tid int, name string, start, end int64) []byte {
	b := c.buf[:0]
	b = append(b, `{"name":"`...)
	b = append(b, name...)
	b = append(b, `","cat":"miss","ph":"X","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = appendTs(b, start)
	b = append(b, `,"dur":`...)
	b = appendTs(b, end-start)
	return b
}

func (c *chromeWriter) span(s *Span) {
	tid := c.lane(s.Node, s.Start, s.End)

	// The span slice, named by class, carrying the identifying args.
	b := c.slice(s.Node, tid, ClassOf(s.Local, s.Dirty).String(), s.Start, s.End)
	b = append(b, `,"args":{"id":`...)
	b = strconv.AppendUint(b, s.ID, 10)
	b = append(b, `,"block":`...)
	b = strconv.AppendUint(b, s.Block, 10)
	b = append(b, `,"op":"`...)
	b = append(b, opByte(s.Write))
	b = append(b, `","state":"`...)
	b = append(b, s.State)
	b = append(b, `","hops":`...)
	b = strconv.AppendInt(b, int64(len(s.Hops)), 10)
	b = append(b, `,"hop_queue_ns":`...)
	b = strconv.AppendInt(b, s.hopQueue, 10)
	b = append(b, `}}`...)
	c.flush(b)

	// Stage child slices.
	for _, seg := range s.Segs {
		if seg.End <= seg.Start {
			continue // zero-length stages would confuse slice nesting
		}
		b := c.slice(s.Node, tid, seg.Stage.String(), seg.Start, seg.End)
		b = append(b, `,"args":{"queue_ns":`...)
		b = strconv.AppendInt(b, seg.Queue, 10)
		b = append(b, `}}`...)
		c.flush(b)
	}
}
