package replacement

// LRU is the least-recently-used baseline policy: it ignores costs entirely
// and always evicts the block in the LRU stack position.
type LRU struct {
	stackBase
	obs Observer
}

// SetObserver implements Observable.
func (p *LRU) SetObserver(o Observer) { p.obs = o }

// NewLRU returns a fresh LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "LRU" }

// Reset implements Policy.
func (p *LRU) Reset(sets, ways int) { p.reset(sets, ways) }

// Access implements Policy. LRU has no pre-access state.
func (p *LRU) Access(set int, tag uint64, hit bool) {}

// Touch implements Policy.
func (p *LRU) Touch(set, way int) { p.set(set).touch(way) }

// Victim implements Policy: the least recently used valid way.
func (p *LRU) Victim(set int) int {
	m := p.set(set)
	if w := firstInvalid(m); w >= 0 {
		return w
	}
	w := m.lruWay()
	if p.obs != nil {
		p.obs.Observe(Event{Kind: EvEvict, Set: set, Way: w, StackPos: m.live - 1,
			Tag: m.tag[w], Cost: m.cost[w], LRUCost: m.cost[w]})
	}
	return w
}

// Fill implements Policy.
func (p *LRU) Fill(set, way int, tag uint64, cost Cost) { p.set(set).fill(way, tag, cost) }

// Invalidate implements Policy.
func (p *LRU) Invalidate(set, way int, tag uint64) {
	if way >= 0 {
		p.set(set).invalidate(way)
	}
}

// firstInvalid returns an invalid way if one exists (defensive: Victim should
// only be called on full sets, but policies tolerate early calls).
func firstInvalid(m *setMeta) int {
	for w, v := range m.valid {
		if !v {
			return w
		}
	}
	return -1
}
