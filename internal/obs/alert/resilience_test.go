package alert

import (
	"testing"
	"time"
)

func resilienceDefaults() Defaults {
	return Defaults{
		HitRateObjective: 0.9, BurnFactor: 2,
		Short: 2 * time.Second, Long: 10 * time.Second,
		P99: 250 * time.Millisecond,
	}
}

// TestShedRateRule: sustained shedding above 5% of requests fires shed-rate;
// a healthy run (no engine_shed series at all) never leaves inactive.
func TestShedRateRule(t *testing.T) {
	h := newHarness(t, DefaultRules(resilienceDefaults()))
	hits := h.reg.Counter("engine_hits")
	misses := h.reg.Counter("engine_misses")
	shed := h.reg.Counter("engine_shed")

	find := func(name string) Summary {
		for _, s := range h.engine.Summaries(h.now) {
			if s.Rule == name {
				return s
			}
		}
		t.Fatalf("rule %q missing from summaries", name)
		return Summary{}
	}

	for i := 0; i < 4; i++ {
		h.tick(func() { hits.Add(95); misses.Add(5) })
	}
	if s := find("shed-rate"); s.State != "inactive" {
		t.Fatalf("healthy shed-rate state = %+v", s)
	}

	// 20 of every 100 requests shed: ratio 0.2 > 0.05 over the short window.
	for i := 0; i < 4; i++ {
		h.tick(func() { hits.Add(60); misses.Add(40); shed.Add(20) })
	}
	if s := find("shed-rate"); s.State != "firing" {
		t.Fatalf("degraded shed-rate state = %+v, want firing", s)
	}
}

// TestBreakerOpenRule: any engine_breaker_opened increment fires
// breaker-open within its window, and the rule recovers once trips stop.
func TestBreakerOpenRule(t *testing.T) {
	h := newHarness(t, DefaultRules(resilienceDefaults()))
	hits := h.reg.Counter("engine_hits")
	opened := h.reg.Counter("engine_breaker_opened")

	find := func(name string) Summary {
		for _, s := range h.engine.Summaries(h.now) {
			if s.Rule == name {
				return s
			}
		}
		t.Fatalf("rule %q missing from summaries", name)
		return Summary{}
	}

	for i := 0; i < 4; i++ {
		h.tick(func() { hits.Add(100) })
	}
	if s := find("breaker-open"); s.State != "inactive" {
		t.Fatalf("healthy breaker-open state = %+v", s)
	}

	h.tick(func() { hits.Add(100); opened.Inc() })
	if s := find("breaker-open"); s.State != "firing" {
		t.Fatalf("breaker trip state = %+v, want firing", s)
	}

	// Quiet again: the rate decays to zero once the trip ages out.
	for i := 0; i < 5; i++ {
		h.tick(func() { hits.Add(100) })
	}
	if s := find("breaker-open"); s.State != "inactive" {
		t.Fatalf("recovered breaker-open state = %+v", s)
	}
}
