package replacement

// etd is one set's Extended Tag Directory (Section 2.4): s-1 entries, each
// holding the (possibly truncated) tag and fixed miss cost of a recently
// replaced non-LRU block. Entries are allocated LRU with invalid entries
// first. The ETD tells DCL whether a block victimized in place of a reserved
// LRU block was re-referenced — the condition under which the reservation
// actually cost something and the reserved block's cost must be depreciated.
//
// When tag aliasing is enabled (mask narrower than the tag), the full tag is
// retained only to count false matches; matching uses the masked tag, exactly
// like hardware that stores a few tag bits would behave.
type etd struct {
	tags  []uint64 // masked tags
	full  []uint64 // full tags, for false-match accounting only
	costs []Cost
	valid []bool
	used  []uint64 // allocation recency
	tick  uint64
	mask  uint64
}

func newETD(entries int, mask uint64) etd {
	return etd{
		tags:  make([]uint64, entries),
		full:  make([]uint64, entries),
		costs: make([]Cost, entries),
		valid: make([]bool, entries),
		used:  make([]uint64, entries),
		mask:  mask,
	}
}

// probe looks tag up; on a match it returns the recorded cost, whether the
// match was a false (aliased) one, and true. The entry is left intact; the
// caller decides whether to consume it.
func (e *etd) probe(tag uint64) (idx int, cost Cost, falseMatch bool, ok bool) {
	mt := tag & e.mask
	for i, v := range e.valid {
		if v && e.tags[i] == mt {
			return i, e.costs[i], e.full[i] != tag, true
		}
	}
	return -1, 0, false, false
}

// consume invalidates entry idx.
func (e *etd) consume(idx int) { e.valid[idx] = false }

// insert records a replaced block, reusing an invalid entry if possible and
// otherwise the least recently allocated one.
func (e *etd) insert(tag uint64, cost Cost) {
	e.tick++
	slot := -1
	for i, v := range e.valid {
		if !v {
			slot = i
			break
		}
	}
	if slot < 0 {
		var oldest uint64
		for i, u := range e.used {
			if slot < 0 || u < oldest {
				slot, oldest = i, u
			}
		}
	}
	e.tags[slot] = tag & e.mask
	e.full[slot] = tag
	e.costs[slot] = cost
	e.valid[slot] = true
	e.used[slot] = e.tick
}

// clear invalidates every entry.
func (e *etd) clear() {
	for i := range e.valid {
		e.valid[i] = false
	}
}

// invalidateTag drops any entry matching tag (masked), as on an external
// coherence invalidation.
func (e *etd) invalidateTag(tag uint64) {
	mt := tag & e.mask
	for i, v := range e.valid {
		if v && e.tags[i] == mt {
			e.valid[i] = false
		}
	}
}

// liveEntries returns the number of valid entries (for invariant tests).
func (e *etd) liveEntries() int {
	n := 0
	for _, v := range e.valid {
		if v {
			n++
		}
	}
	return n
}
