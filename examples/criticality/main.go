// Criticality: the paper's Section 7 sketch for single ILP processors.
// Store misses are cheap (the store buffer hides them) while load misses
// stall the pipeline, so the replacement policy should prefer evicting
// blocks whose next access will be a store. The NextOp cost source predicts
// the next access type of each block from its last access, and the
// cost-sensitive policies weigh loads 8x over stores.
package main

import (
	"fmt"

	"costcache"
)

func main() {
	// Raytrace has a natural split: shared scene data is read (critical
	// loads) while per-ray buffers are written first on each new ray.
	// (Benchmarks whose stores always follow a load to the same block —
	// read-modify-write accumulators, as in Barnes — make every MISS a load
	// miss, so next-op prediction sees uniform costs and the policies
	// rightly fall back to LRU.)
	tr := costcache.Workload("Raytrace").Generate()
	view := tr.SampleView(0)

	run := func(p costcache.Policy) costcache.SimResult {
		// Each run needs a fresh predictor: it learns from the stream.
		return costcache.SimulateTrace(view, p, costcache.NextOpCosts(8, 1))
	}
	lru := run(costcache.NewLRU())
	fmt.Printf("%-4s weighted miss penalty=%9d (baseline)\n", "LRU", lru.L2.AggCost)
	for _, p := range []costcache.Policy{
		costcache.NewGD(), costcache.NewBCL(), costcache.NewDCL(0), costcache.NewACL(0),
	} {
		res := run(p)
		fmt.Printf("%-4s weighted miss penalty=%9d  savings=%6.2f%%\n",
			res.Policy, res.L2.AggCost,
			100*costcache.RelativeSavings(lru.L2.AggCost, res.L2.AggCost))
	}
}
