// Package explain joins two runs' manifests, decision streams and request
// spans and attributes the observed hit-rate and cost-paid delta to ranked
// concrete causes: which decision kinds flipped (reservations, ETD
// detections, victim choices), which key cost classes, shards and time
// windows the movement concentrates in.
//
// The accounting discipline is the same one reqspan uses for latency: every
// dimension partitions an additive stream, so per-group deltas sum exactly
// to the total. Cost is additive outright — each group's cost delta sums
// bit-for-bit to the manifest-level Δcost_paid. The hit rate is a ratio, so
// groups carry the exact decomposition
//
//	contrib(g) = (Δhits(g) − r_base·Δlookups(g)) / lookups_cand
//
// whose sum telescopes to r_cand − r_base: a group contributes by winning or
// losing hits (Δhits) and by shifting traffic into or out of itself
// (Δlookups weighted by the baseline rate). Both identities are
// machine-checked (Report.Checks) against the manifests' engine counters,
// so a broken join fails loudly instead of producing a plausible table.
package explain

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Side is one run's headline figures, read from its manifest's engine
// counters (the ground truth the span streams must reconcile with).
type Side struct {
	Path      string  `json:"path"`
	Policy    string  `json:"policy,omitempty"`
	Lookups   int64   `json:"lookups"` // hits + misses (coalesced waiters excluded)
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	CostPaid  int64   `json:"cost_paid"`
	HitRate   float64 `json:"hit_rate"`
}

// KindDelta is one decision-kind row of the "why" table: how often the
// baseline and candidate took this decision, and the shift between them.
type KindDelta struct {
	Policy    string `json:"policy,omitempty"`
	Kind      string `json:"kind"`
	Class     string `json:"class,omitempty"`
	Baseline  int64  `json:"baseline"`
	Candidate int64  `json:"candidate"`
	Delta     int64  `json:"delta"`
}

// Contribution is one group's share of the metric delta along one dimension
// ("class", "shard" or "window"). Within a dimension the DeltaCost fields
// sum exactly to the manifest-level cost delta and the HitRateContrib
// fields to the hit-rate delta.
type Contribution struct {
	Dim            string  `json:"dim"`
	Group          string  `json:"group"`
	LookupsBase    int64   `json:"lookups_base"`
	LookupsCand    int64   `json:"lookups_cand"`
	HitsBase       int64   `json:"hits_base"`
	HitsCand       int64   `json:"hits_cand"`
	CostBase       int64   `json:"cost_base"`
	CostCand       int64   `json:"cost_cand"`
	DeltaCost      int64   `json:"delta_cost"`
	HitRateContrib float64 `json:"hit_rate_contrib"`
}

// Check is one machine-verified invariant of the join.
type Check struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	OK     bool   `json:"ok"`
}

// Report is the full attribution of a candidate run's drift from a baseline.
type Report struct {
	Baseline  Side `json:"baseline"`
	Candidate Side `json:"candidate"`
	// DeltaHitRate and DeltaCost are candidate − baseline, from the
	// manifests' engine counters.
	DeltaHitRate float64 `json:"delta_hit_rate"`
	DeltaCost    int64   `json:"delta_cost"`
	// Notes carry comparability caveats: config keys that differ, missing
	// artifact streams, degraded (partial) tables.
	Notes []string `json:"notes,omitempty"`
	// Kinds ranks decision kinds by |Δcount| — the "why" headline.
	// KindClasses refines the top shifts by cost class.
	Kinds       []KindDelta `json:"kinds,omitempty"`
	KindClasses []KindDelta `json:"kind_classes,omitempty"`
	// Classes, Shards and Windows are the "where" contribution tables; each
	// sums exactly to the manifest-level delta.
	Classes []Contribution `json:"classes,omitempty"`
	Shards  []Contribution `json:"shards,omitempty"`
	Windows []Contribution `json:"windows,omitempty"`
	// Checks are the exact-sum and reconciliation invariants.
	Checks []Check `json:"checks"`
}

// Failed reports whether any join invariant was violated — the report's
// tables are then not trustworthy and callers should treat the inputs as
// malformed.
func (r *Report) Failed() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return true
		}
	}
	return false
}

// Regressed reports whether the candidate is worse than the baseline beyond
// tol percent relative: cost paid up, or hit rate down.
func (r *Report) Regressed(tol float64) bool {
	if r.Baseline.CostPaid > 0 {
		if 100*float64(r.DeltaCost)/float64(r.Baseline.CostPaid) > tol {
			return true
		}
	} else if r.DeltaCost > 0 {
		return true
	}
	if r.Baseline.HitRate > 0 && 100*(-r.DeltaHitRate)/r.Baseline.HitRate > tol {
		return true
	}
	return false
}

// Explain joins two loaded runs and attributes the candidate's drift.
// windows is the number of equal request-order slices in the Windows table
// (minimum 1). The result degrades gracefully: runs without decision
// streams skip the kind tables, runs without span streams skip the
// contribution tables, and every omission is recorded in Notes.
func Explain(base, cand *Run, windows int) *Report {
	if windows < 1 {
		windows = 1
	}
	r := &Report{
		Baseline:  side(base),
		Candidate: side(cand),
	}
	r.DeltaHitRate = r.Candidate.HitRate - r.Baseline.HitRate
	r.DeltaCost = r.Candidate.CostPaid - r.Baseline.CostPaid
	r.noteConfigDiffs(base, cand)
	r.explainKinds(base, cand)
	r.explainSpans(base, cand, windows)
	return r
}

// side reads one run's headline counters out of its manifest.
func side(run *Run) Side {
	m := run.Manifest.Metrics
	s := Side{
		Path:      run.Path,
		Policy:    run.Manifest.Config["policy"],
		Hits:      int64(m["engine_hits"]),
		Misses:    int64(m["engine_misses"]),
		Coalesced: int64(m["engine_coalesced"]),
		CostPaid:  int64(m["engine_cost_paid"]),
	}
	s.Lookups = s.Hits + s.Misses
	if s.Lookups > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Lookups)
	}
	return s
}

// noteConfigDiffs records manifest config keys whose values differ — the
// run parameters the attribution is conditioned on. A seed or workload
// mismatch does not stop the join, but the caveat rides with the report.
func (r *Report) noteConfigDiffs(base, cand *Run) {
	keys := make(map[string]bool)
	for k := range base.Manifest.Config {
		keys[k] = true
	}
	for k := range cand.Manifest.Config {
		keys[k] = true
	}
	diff := make([]string, 0, len(keys))
	for k := range keys {
		if b, c := base.Manifest.Config[k], cand.Manifest.Config[k]; b != c {
			diff = append(diff, fmt.Sprintf("%s: %s -> %s", k, orDash(b), orDash(c)))
		}
	}
	sort.Strings(diff)
	for _, d := range diff {
		r.Notes = append(r.Notes, "config "+d)
	}
	for _, k := range []string{"seed", "workload", "keys", "zipf", "ops"} {
		if b, c := base.Manifest.Config[k], cand.Manifest.Config[k]; b != c {
			r.Notes = append(r.Notes,
				fmt.Sprintf("warning: %s differs — the runs saw different request streams, attribute with care", k))
		}
	}
}

// explainKinds builds the ranked decision-kind tables. Counts come from the
// decision streams when present, falling back to the manifests'
// trace_events counters; when a stream and the counters are both present
// they must agree (a Check).
func (r *Report) explainKinds(base, cand *Run) {
	bk, bkc := countDecisions(base.Decisions)
	ck, ckc := countDecisions(cand.Decisions)
	if base.Decisions == nil {
		bk = traceEventCounts(base)
	}
	if cand.Decisions == nil {
		ck = traceEventCounts(cand)
	}
	if base.Decisions == nil && cand.Decisions == nil && len(bk)+len(ck) == 0 {
		r.Notes = append(r.Notes, "no decision streams or trace_events counters: kind tables omitted (rerun with -decisions)")
		return
	}
	if base.Decisions != nil {
		r.checkDecisionCounts("baseline", base, bk)
	}
	if cand.Decisions != nil {
		r.checkDecisionCounts("candidate", cand, ck)
	}
	// When the sides ran under different policy labels (an ablation like
	// BCL vs BCL-f4), keeping the label in the key would split every kind
	// into two rows that each diff against zero. Collapse the policy
	// dimension so "evict: 1943 -> 1884" is one comparable row.
	if !samePolicies(bk, ck) {
		bk, ck = collapsePolicy(bk), collapsePolicy(ck)
		bkc, ckc = collapsePolicy(bkc), collapsePolicy(ckc)
		r.Notes = append(r.Notes, "policy labels differ: decision kinds compared across policies")
	}
	r.Kinds = rankDeltas(bk, ck)
	if base.Decisions != nil && cand.Decisions != nil {
		r.KindClasses = rankDeltas(bkc, ckc)
	} else if base.Decisions == nil || cand.Decisions == nil {
		r.Notes = append(r.Notes, "decision stream missing on one side: kind×class table omitted")
	}
}

// countDecisions aggregates a decision stream per (policy, kind) and per
// (policy, kind, class). nil input yields nil maps.
func countDecisions(ds []Decision) (kinds, kindClasses map[kindKey]int64) {
	if ds == nil {
		return nil, nil
	}
	kinds = make(map[kindKey]int64)
	kindClasses = make(map[kindKey]int64)
	for _, d := range ds {
		kinds[kindKey{policy: d.Policy, kind: d.Kind}]++
		kindClasses[kindKey{policy: d.Policy, kind: d.Kind, class: d.Class}]++
	}
	return kinds, kindClasses
}

// kindKey identifies one decision-kind aggregation cell.
type kindKey struct {
	policy, kind, class string
}

// samePolicies reports whether two count maps cover the same policy labels.
func samePolicies(a, b map[kindKey]int64) bool {
	pa, pb := make(map[string]bool), make(map[string]bool)
	for k := range a {
		pa[k.policy] = true
	}
	for k := range b {
		pb[k.policy] = true
	}
	if len(pa) != len(pb) {
		return false
	}
	for p := range pa {
		if !pb[p] {
			return false
		}
	}
	return true
}

// collapsePolicy re-aggregates a count map with the policy label erased.
func collapsePolicy(m map[kindKey]int64) map[kindKey]int64 {
	if m == nil {
		return nil
	}
	out := make(map[kindKey]int64, len(m))
	for k, v := range m {
		k.policy = ""
		out[k] += v
	}
	return out
}

// traceEventCounts reads the trace_events{policy,kind} counters a manifest
// carries when the run published its tracer counts.
func traceEventCounts(run *Run) map[kindKey]int64 {
	out := make(map[kindKey]int64)
	for name, v := range run.Manifest.Metrics {
		policy, kind, ok := parseTraceEvents(name)
		if !ok {
			continue
		}
		out[kindKey{policy: policy, kind: kind}] = int64(v)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// parseTraceEvents decodes a trace_events{policy="P",kind="K"} metric name.
func parseTraceEvents(name string) (policy, kind string, ok bool) {
	const pre = `trace_events{policy="`
	const mid = `",kind="`
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, `"}`) {
		return "", "", false
	}
	rest := name[len(pre) : len(name)-2]
	i := strings.Index(rest, mid)
	if i < 0 {
		return "", "", false
	}
	return rest[:i], rest[i+len(mid):], true
}

// checkDecisionCounts cross-checks a run's parsed decision stream against
// its manifest's trace_events counters, when it carries them.
func (r *Report) checkDecisionCounts(label string, run *Run, kinds map[kindKey]int64) {
	want := traceEventCounts(run)
	if want == nil {
		return
	}
	for k, n := range want {
		if got := kinds[k]; got != n {
			r.Checks = append(r.Checks, Check{
				Name: label + " decision stream matches trace_events counters",
				Detail: fmt.Sprintf("%s/%s: stream has %d events, manifest counter says %d",
					k.policy, k.kind, kinds[k], n),
				OK: false,
			})
			return
		}
	}
	for k, n := range kinds {
		if _, ok := want[k]; !ok && n > 0 {
			r.Checks = append(r.Checks, Check{
				Name:   label + " decision stream matches trace_events counters",
				Detail: fmt.Sprintf("%s/%s: %d events in stream but no manifest counter", k.policy, k.kind, n),
				OK:     false,
			})
			return
		}
	}
	r.Checks = append(r.Checks, Check{Name: label + " decision stream matches trace_events counters", OK: true})
}

// rankDeltas turns two count maps into rows ranked by |Δ| (ties broken by
// name, so the ranking is deterministic).
func rankDeltas(base, cand map[kindKey]int64) []KindDelta {
	keys := make(map[kindKey]bool)
	for k := range base {
		keys[k] = true
	}
	for k := range cand {
		keys[k] = true
	}
	rows := make([]KindDelta, 0, len(keys))
	for k := range keys {
		rows = append(rows, KindDelta{
			Policy:    k.policy,
			Kind:      k.kind,
			Class:     k.class,
			Baseline:  base[k],
			Candidate: cand[k],
			Delta:     cand[k] - base[k],
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := abs64(rows[i].Delta), abs64(rows[j].Delta)
		if di != dj {
			return di > dj
		}
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		if rows[i].Policy != rows[j].Policy {
			return rows[i].Policy < rows[j].Policy
		}
		return rows[i].Class < rows[j].Class
	})
	return rows
}

// cell is one group's additive aggregates on one side.
type cell struct {
	lookups, hits, cost int64
}

// sideAgg partitions one run's span stream along the three dimensions.
type sideAgg struct {
	lookups, hits, coalesced, cost int64
	byClass, byShard, byWindow     map[string]*cell
}

// aggregateSpans folds a span stream into per-dimension cells. Key classes
// come from the run's own fill costs: every key's first access is a miss
// whose span carries the charged cost, so the key→class map is total for
// any key that was ever looked up (hits on keys whose fill predates the
// stream fall into "unknown"). Windows slice the stream into equal
// request-order chunks of the run's own length, so "window 0" is the first
// 1/n of either run regardless of absolute op counts.
func aggregateSpans(spans []SpanRow, windows int) *sideAgg {
	a := &sideAgg{
		byClass:  make(map[string]*cell),
		byShard:  make(map[string]*cell),
		byWindow: make(map[string]*cell),
	}
	sorted := make([]SpanRow, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	keyClass := make(map[uint64]string)
	for _, s := range sorted {
		if s.Outcome == "miss" {
			if _, ok := keyClass[s.Key]; !ok {
				keyClass[s.Key] = "cost=" + strconv.FormatInt(s.Cost, 10)
			}
		}
	}
	get := func(m map[string]*cell, k string) *cell {
		c := m[k]
		if c == nil {
			c = &cell{}
			m[k] = c
		}
		return c
	}
	for i, s := range sorted {
		if s.Outcome == "coalesced" {
			a.coalesced++
			continue
		}
		hit := int64(0)
		if s.Outcome == "hit" {
			hit = 1
		}
		a.lookups++
		a.hits += hit
		a.cost += s.Cost

		class := keyClass[s.Key]
		if class == "" {
			class = "unknown"
		}
		w := i * windows / len(sorted)
		for _, c := range []*cell{
			get(a.byClass, class),
			get(a.byShard, "shard "+strconv.Itoa(s.Shard)),
			get(a.byWindow, windowLabel(w, windows)),
		} {
			c.lookups++
			c.hits += hit
			c.cost += s.Cost
		}
	}
	return a
}

// windowLabel names request-order slice w of n as a percentage range.
func windowLabel(w, n int) string {
	return fmt.Sprintf("w%d [%d-%d%%)", w, 100*w/n, 100*(w+1)/n)
}

// explainSpans builds the class/shard/window contribution tables and their
// exact-sum checks. Both sides must carry span streams; a missing side is
// noted and the tables omitted.
func (r *Report) explainSpans(base, cand *Run, windows int) {
	if base.Spans == nil || cand.Spans == nil {
		miss := make([]string, 0, 2)
		if base.Spans == nil {
			miss = append(miss, "baseline")
		}
		if cand.Spans == nil {
			miss = append(miss, "candidate")
		}
		r.Notes = append(r.Notes, strings.Join(miss, " and ")+
			" span stream missing: class/shard/window tables omitted (rerun with -span.jsonl and full sampling)")
		return
	}
	ab := aggregateSpans(base.Spans, windows)
	ac := aggregateSpans(cand.Spans, windows)
	r.checkReconcile("baseline", r.Baseline, ab)
	r.checkReconcile("candidate", r.Candidate, ac)

	r.Classes = r.contributions("class", ab.byClass, ac.byClass)
	r.Shards = r.contributions("shard", ab.byShard, ac.byShard)
	r.Windows = r.contributions("window", ab.byWindow, ac.byWindow)
}

// checkReconcile verifies one side's span stream tiles its manifest
// counters exactly — the precondition for the contribution sums meaning
// anything. A partial stream (sampled emission or attribution stride > 1)
// fails here with rerun guidance.
func (r *Report) checkReconcile(label string, s Side, a *sideAgg) {
	fail := func(format string, args ...any) {
		r.Checks = append(r.Checks, Check{
			Name: label + " spans reconcile with manifest counters",
			Detail: fmt.Sprintf(format, args...) +
				" (need every request in the stream: rerun with -span.jsonl -attr.sample 1 -obs.sample 1)",
			OK: false,
		})
	}
	switch {
	case a.lookups != s.Lookups:
		fail("%d span lookups vs %d manifest hits+misses", a.lookups, s.Lookups)
	case a.hits != s.Hits:
		fail("%d hit spans vs %d manifest hits", a.hits, s.Hits)
	case a.coalesced != s.Coalesced:
		fail("%d coalesced spans vs %d manifest coalesced", a.coalesced, s.Coalesced)
	case a.cost != s.CostPaid:
		fail("span cost sum %d vs manifest cost_paid %d", a.cost, s.CostPaid)
	default:
		r.Checks = append(r.Checks, Check{Name: label + " spans reconcile with manifest counters", OK: true})
	}
}

// contributions builds one dimension's table plus its exact-sum check. The
// hit-rate decomposition uses the package-comment identity; its sum is
// checked against the manifest-level delta within 1e-9 and the cost sum
// bit-for-bit.
func (r *Report) contributions(dim string, base, cand map[string]*cell) []Contribution {
	groups := make(map[string]bool)
	for g := range base {
		groups[g] = true
	}
	for g := range cand {
		groups[g] = true
	}
	rBase := r.Baseline.HitRate
	lCand := r.Candidate.Lookups

	rows := make([]Contribution, 0, len(groups))
	var sumCost int64
	var sumRate float64
	for g := range groups {
		b, c := base[g], cand[g]
		if b == nil {
			b = &cell{}
		}
		if c == nil {
			c = &cell{}
		}
		row := Contribution{
			Dim:         dim,
			Group:       g,
			LookupsBase: b.lookups,
			LookupsCand: c.lookups,
			HitsBase:    b.hits,
			HitsCand:    c.hits,
			CostBase:    b.cost,
			CostCand:    c.cost,
			DeltaCost:   c.cost - b.cost,
		}
		if lCand > 0 {
			row.HitRateContrib = (float64(c.hits-b.hits) - rBase*float64(c.lookups-b.lookups)) / float64(lCand)
		}
		sumCost += row.DeltaCost
		sumRate += row.HitRateContrib
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := abs64(rows[i].DeltaCost), abs64(rows[j].DeltaCost)
		if di != dj {
			return di > dj
		}
		return groupLess(rows[i].Group, rows[j].Group)
	})

	okCost := sumCost == r.DeltaCost
	okRate := abs(sumRate-r.DeltaHitRate) <= 1e-9
	check := Check{Name: dim + " contributions sum to manifest delta", OK: okCost && okRate}
	if !okCost {
		check.Detail = fmt.Sprintf("cost contributions sum to %+d, manifest delta is %+d", sumCost, r.DeltaCost)
	} else if !okRate {
		check.Detail = fmt.Sprintf("hit-rate contributions sum to %+.9f, manifest delta is %+.9f", sumRate, r.DeltaHitRate)
	}
	r.Checks = append(r.Checks, check)
	return rows
}

// groupLess orders group labels with numeric awareness, so "cost=2" sorts
// before "cost=10" and "shard 2" before "shard 10".
func groupLess(a, b string) bool {
	na, oka := trailingInt(a)
	nb, okb := trailingInt(b)
	if oka && okb && na != nb {
		return na < nb
	}
	return a < b
}

// trailingInt parses a decimal run ending the string ("cost=10" → 10).
func trailingInt(s string) (int64, bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return 0, false
	}
	n, err := strconv.ParseInt(s[i:], 10, 64)
	return n, err == nil
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
