package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if got := g.Value(); got != 7 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(12)
	if got := g.Value(); got != 12 {
		t.Fatalf("SetMax(12) = %d, want 12", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("misses"); got != "misses" {
		t.Errorf("Name no labels = %q", got)
	}
	got := Name("miss_latency_ns", "node", "3", "level", "l2")
	want := `miss_latency_ns{node="3",level="l2"}`
	if got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for _, v := range []int64{5, 10, 11, 25, 40, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	wantCounts := []int64{2, 1, 2, 1} // <=10: {5,10}; <=20: {11}; <=40: {25,40}; over: {1000}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 6 || s.Sum != 5+10+11+25+40+1000 {
		t.Errorf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m != float64(s.Sum)/6 {
		t.Errorf("mean = %v", m)
	}
	if q := s.Quantile(0.5); q != 40 {
		t.Errorf("p50 = %d, want 40", q)
	}
	if q := s.Quantile(0); q != 10 {
		t.Errorf("p0 = %d, want 10", q)
	}
}

func TestHistogramSub(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Observe(5)
	prev := h.Snapshot()
	h.Observe(50)
	d := h.Snapshot().Sub(prev)
	if d.Count != 1 || d.Sum != 50 || d.Counts[0] != 0 || d.Counts[1] != 1 {
		t.Errorf("delta = %+v", d)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(4, 2, 5)
	want := []int64{4, 8, 16, 32, 64}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	// A factor close to 1 must still produce strictly ascending bounds.
	b = ExpBuckets(1, 1.01, 10)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("ExpBuckets not ascending: %v", b)
		}
	}
	b = LinearBuckets(10, 5, 3)
	if b[0] != 10 || b[1] != 15 || b[2] != 20 {
		t.Fatalf("LinearBuckets = %v", b)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("depth")
	h := r.Histogram("lat", []int64{100})

	c.Add(3)
	g.Set(9)
	h.Observe(50)
	prev := r.Snapshot()

	c.Add(2)
	g.Set(4)
	h.Observe(500)
	d := r.Snapshot().Delta(prev)

	if d.Counters["hits"] != 2 {
		t.Errorf("counter delta = %d, want 2", d.Counters["hits"])
	}
	if d.Gauges["depth"] != 4 {
		t.Errorf("gauge delta keeps current value; got %d, want 4", d.Gauges["depth"])
	}
	hd := d.Histograms["lat"]
	if hd.Count != 1 || hd.Sum != 500 || hd.Counts[1] != 1 {
		t.Errorf("histogram delta = %+v", hd)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(7)
	h := r.Histogram(Name("lat", "node", "0"), []int64{10, 20})
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `a_gauge 7
b_total 2
lat_bucket{node="0",le="+Inf"} 3
lat_bucket{node="0",le="10"} 1
lat_bucket{node="0",le="20"} 2
lat_count{node="0"} 3
lat_sum{node="0"} 119
`
	if sb.String() != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestIntervalReporter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("misses")
	ir := NewIntervalReporter(r, "windows", "refs", "misses")
	c.Add(4)
	ir.Tick("0-100")
	c.Add(6)
	ir.Tick("100-200")

	var sb strings.Builder
	if err := ir.Table().Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"0-100", "100-200", "4", "6"} {
		if !strings.Contains(out, want) {
			t.Errorf("interval table missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentInstruments exercises every instrument from many goroutines
// so `go test -race` can vet the atomic paths.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []int64{8, 64, 512})
			for j := int64(0); j < 1000; j++ {
				c.Inc()
				g.SetMax(id*1000 + j)
				h.Observe(j)
				if j%100 == 0 {
					r.Snapshot()
				}
			}
		}(int64(i))
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 7999 {
		t.Fatalf("gauge high-water = %d, want 7999", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestDeltaMidWindowRegistration pins the snapshot/delta contract telemetry
// windows rely on: a series registered between two snapshots appears in the
// delta counting from zero, never panics, and never skews existing series.
func TestDeltaMidWindowRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("old").Add(5)
	before := r.Snapshot()

	r.Counter("old").Add(2)
	r.Counter("fresh").Add(7) // registered mid-window
	r.Gauge("g").Set(3)
	r.Histogram("h", []int64{10}).Observe(4)
	d := r.Snapshot().Delta(before)

	if got := d.Counters["old"]; got != 2 {
		t.Errorf("old delta = %d, want 2", got)
	}
	if got := d.Counters["fresh"]; got != 7 {
		t.Errorf("fresh series delta = %d, want 7 (counts from zero)", got)
	}
	if got := d.Gauges["g"]; got != 3 {
		t.Errorf("fresh gauge = %d, want 3", got)
	}
	if h := d.Histograms["h"]; h.Count != 1 || h.Sum != 4 {
		t.Errorf("fresh histogram delta = %+v, want count 1 sum 4", h)
	}
}

// TestVisitAndReadInto covers the allocation-free iteration surface the
// tsdb sampler uses: visitors see every instrument, and ReadInto matches
// Snapshot without allocating.
func TestVisitAndReadInto(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Counter("b").Add(2)
	r.Gauge("g").Set(9)
	h := r.HistogramExemplars("h", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	seen := map[string]int64{}
	r.VisitCounters(func(n string, c *Counter) { seen[n] = c.Value() })
	if seen["a"] != 1 || seen["b"] != 2 || len(seen) != 2 {
		t.Errorf("VisitCounters saw %v", seen)
	}
	gauges := 0
	r.VisitGauges(func(n string, g *Gauge) { gauges++ })
	if gauges != 1 {
		t.Errorf("VisitGauges saw %d gauges, want 1", gauges)
	}
	r.VisitHistograms(func(n string, vh *Histogram) {
		if vh != h {
			t.Errorf("VisitHistograms returned a different instance for %s", n)
		}
	})

	dst := make([]int64, len(h.Bounds())+1)
	count, sum := h.ReadInto(dst)
	snap := h.Snapshot()
	if count != snap.Count || sum != snap.Sum {
		t.Errorf("ReadInto totals (%d, %d) != snapshot (%d, %d)", count, sum, snap.Count, snap.Sum)
	}
	for i, v := range dst {
		if v != snap.Counts[i] {
			t.Errorf("ReadInto bucket %d = %d, want %d", i, v, snap.Counts[i])
		}
	}
	if allocs := testing.AllocsPerRun(100, func() { h.ReadInto(dst) }); allocs != 0 {
		t.Errorf("ReadInto allocates %.1f objects/op, want 0", allocs)
	}
}
