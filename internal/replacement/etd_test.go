package replacement

import "testing"

func TestETDInsertProbeConsume(t *testing.T) {
	e := newETD(3, ^uint64(0))
	e.insert(10, 5)
	e.insert(20, 7)
	idx, cost, falseMatch, ok := e.probe(20)
	if !ok || cost != 7 || falseMatch {
		t.Fatalf("probe(20) = (%d,%d,%v,%v)", idx, cost, falseMatch, ok)
	}
	e.consume(idx)
	if _, _, _, ok := e.probe(20); ok {
		t.Fatal("consumed entry must not match")
	}
	if _, _, _, ok := e.probe(10); !ok {
		t.Fatal("other entry must survive")
	}
}

func TestETDLRUAllocation(t *testing.T) {
	e := newETD(2, ^uint64(0))
	e.insert(1, 1)
	e.insert(2, 2)
	e.insert(3, 3) // evicts tag 1 (oldest)
	if _, _, _, ok := e.probe(1); ok {
		t.Fatal("oldest entry should have been replaced")
	}
	if _, _, _, ok := e.probe(2); !ok {
		t.Fatal("tag 2 should survive")
	}
	if _, _, _, ok := e.probe(3); !ok {
		t.Fatal("tag 3 should be present")
	}
}

func TestETDInvalidFirstAllocation(t *testing.T) {
	e := newETD(2, ^uint64(0))
	e.insert(1, 1)
	e.insert(2, 2)
	e.invalidateTag(1)
	e.insert(3, 3) // must reuse the invalidated slot, not evict tag 2
	if _, _, _, ok := e.probe(2); !ok {
		t.Fatal("tag 2 must survive when an invalid slot exists")
	}
}

func TestETDClear(t *testing.T) {
	e := newETD(3, ^uint64(0))
	e.insert(1, 1)
	e.insert(2, 2)
	e.clear()
	if n := e.liveEntries(); n != 0 {
		t.Fatalf("liveEntries = %d after clear", n)
	}
}

func TestETDAliasing(t *testing.T) {
	e := newETD(3, 0xF) // 4-bit tags, like Section 4.3
	e.insert(0x125, 9)
	// 0x5 matches the stored low nibble of 0x125: a false match.
	idx, cost, falseMatch, ok := e.probe(0x5)
	if !ok || cost != 9 || !falseMatch {
		t.Fatalf("probe(0x5) = (%d,%d,%v,%v), want aliased hit", idx, cost, falseMatch, ok)
	}
	// The true tag also matches, and is not a false match.
	_, _, falseMatch, ok = e.probe(0x125)
	if !ok || falseMatch {
		t.Fatalf("probe(0x125) false=%v ok=%v", falseMatch, ok)
	}
	// invalidateTag with an aliasing tag drops the entry too (conservative).
	e.invalidateTag(0xF5)
	if _, _, _, ok := e.probe(0x125); ok {
		t.Fatal("aliased invalidation should drop the entry")
	}
}
