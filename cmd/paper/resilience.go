// The resilience section takes the chaos experiment from the simulator to
// the serving path: the same deterministic backend brownout is replayed
// against a naive engine (every failed load surfaces to the caller) and a
// resilient one (cost-aware retries, per-class circuit breakers,
// serve-stale), and the table shows what degraded-mode serving buys —
// errors turned into stale answers, backend load shed while the expensive
// class melts, and the cost the cache still paid. Runs are single-worker
// closed-loop with a zero backend delay, so every number is reproducible
// from (seed, scenario) alone and manifest-diffable run to run.
package main

import (
	"fmt"
	"os"

	"costcache/internal/engine"
	"costcache/internal/fault"
	"costcache/internal/loadgen"
	"costcache/internal/obs"
	"costcache/internal/replacement"
	"costcache/internal/resilience"
	"costcache/internal/tabulate"
)

// resilienceSection prints the serving-chaos table: one row per serving mode
// under the backend-brownout scenario. stopped is polled between runs; the
// return value reports an interruption.
func resilienceSection(quick bool, seed uint64, stopped func() bool) bool {
	ops := 200000
	if quick {
		ops = 40000
	}
	lcfg := loadgen.Config{
		Mode: loadgen.Closed, Workers: 1, Ops: ops,
		Keys: 4096, ZipfS: 1.1, Seed: int64(seed),
	}
	rcfg := resilience.Config{
		MaxRetries: 3, RefCost: 8, Seed: seed,
		BreakerRate: 0.5, BreakerWindow: 64, BreakerMin: 16, BreakerCooldown: 400,
		ServeStale: true,
		Classify:   lcfg.CostSource().MissCost,
	}

	fmt.Printf("== Serving chaos: backend-brownout on the engine, DCL, seed %d ==\n", seed)
	t := tabulate.New("", "Mode", "Hit %", "Errors", "Retries", "Shed", "Stale", "Breaker trips", "Cost paid")

	run := func(mode string, resilient bool) bool {
		if stopped() {
			return true
		}
		plan, err := fault.LoaderScenario("backend-brownout", seed)
		if err != nil {
			panic(err) // the scenario name is hardwired; a failure is a bug
		}
		cfg := lcfg
		cfg.Faults = fault.NewLoaderInjector(plan)
		ecfg := engine.Config{
			Shards: 4, Sets: 512, Ways: 4,
			Policy: func() replacement.Policy { return replacement.NewDCL() },
		}
		var resil *resilience.Resilience
		if resilient {
			resil = resilience.New(rcfg, nil)
			ecfg.Resilience = resil
		}
		e := engine.New(ecfg)
		res, err := loadgen.Run(e, cfg, stopped)
		if err != nil {
			panic(err)
		}
		if res.Interrupted {
			return true
		}
		st := res.Stats
		var opened int64
		if resil != nil {
			opened = resil.Opened()
		}
		t.AddF(mode, 100*st.HitRate(), res.Errors, st.LoadRetries, st.Shed, st.StaleServed, opened, st.CostPaid)
		record(obs.Name("serving_chaos_errors", "mode", mode), float64(res.Errors))
		record(obs.Name("serving_chaos_stale", "mode", mode), float64(st.StaleServed))
		record(obs.Name("serving_chaos_shed", "mode", mode), float64(st.Shed))
		record(obs.Name("serving_chaos_retries", "mode", mode), float64(st.LoadRetries))
		record(obs.Name("serving_chaos_cost_paid", "mode", mode), float64(st.CostPaid))
		record(obs.Name("serving_chaos_breaker_opened", "mode", mode), float64(opened))
		if man != nil {
			man.SetConfig("serving_chaos_plan_hash", cfg.Faults.Plan().Hash())
		}
		return false
	}

	if run("naive", false) || run("resilient", true) {
		return true
	}
	t.Fprint(os.Stdout)
	fmt.Println()
	return false
}
