// Package reqspan is the serving-path counterpart of the simulator's
// miss-lifecycle tracer (internal/obs/span): every sampled engine request —
// Get, Set or GetOrLoad — becomes one Span recording, in wall-clock
// nanoseconds, each stage the request traverses: shard lock wait, the
// hit/miss decision under the lock, coalesce wait on another goroutine's
// in-flight load, loader execution, the fill (eviction + cost charge) and
// the LRU-shadow replay. Stages are contiguous — each Mark closes the
// segment since the previous boundary — so per-stage sums tile the span's
// end-to-end latency exactly (the unattributed remainder is the few ns
// between the last Mark and Finish), which is what lets cachebench -attr
// reconcile the stage-attribution table against the latency histogram.
//
// Sampling is two-tiered and decided per request by a deterministic stride
// over an atomic request counter: an attr-sampled request pays a pooled
// span, a handful of clock reads and atomic aggregate updates; an
// emit-sampled request (a subset of the attr samples) is additionally
// rendered to the shared JSONL and Chrome-trace sinks of internal/obs/span,
// so engine request spans and simulator miss spans land in one Perfetto
// timeline. An unsampled request costs one atomic add and allocates
// nothing; a nil *Tracer costs a nil check. Both fast paths are pinned by
// TestEngineUnsampledAllocs and BenchmarkEngineTraced.
package reqspan

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"costcache/internal/obs"
	"costcache/internal/obs/span"
)

// Stage identifies one segment kind of a request's path through the engine.
type Stage uint8

// Request stages, in the order a maximal (leader-miss) request traverses
// them. LockWait and Decision can repeat: a leader re-acquires the shard
// lock to install, producing a second segment of each.
const (
	// StageLockWait is time blocked acquiring the shard mutex.
	StageLockWait Stage = iota
	// StageDecision is the lookup and policy bookkeeping under the lock.
	StageDecision
	// StageCoalesce is time waiting on another goroutine's in-flight load.
	StageCoalesce
	// StageLoad is the loader execution, off-lock.
	StageLoad
	// StageFill is the install: victim choice, eviction and cost charge.
	StageFill
	// StageShadow is the LRU-shadow replay of the touch or install.
	StageShadow
	// StageNetWrite is time encoding and writing a request frame to the
	// server socket (remote transport only; in-process spans never mark it).
	StageNetWrite
	// StageNetRead is time waiting for and decoding the response frame —
	// which includes the server-side service time, so for a remote span
	// net_write+net_read tiles the whole round trip.
	StageNetRead
	// NumStages is the number of stage kinds.
	NumStages = int(StageNetRead) + 1
)

var stageNames = [NumStages]string{
	"lock_wait", "decision", "coalesce", "load", "fill", "shadow",
	"net_write", "net_read",
}

// String returns the stage's schema name ("lock_wait", "decision", ...).
func (s Stage) String() string { return stageNames[s] }

// Op is the engine entry point a span covers.
type Op uint8

// Operations.
const (
	OpGet Op = iota
	OpSet
	OpGetOrLoad
	// NumOps is the number of operation kinds.
	NumOps = int(OpGetOrLoad) + 1
)

var opNames = [NumOps]string{"get", "set", "getorload"}

// String returns the op's schema name.
func (o Op) String() string { return opNames[o] }

// Outcome classifies how a request resolved.
type Outcome uint8

// Outcomes. Error covers a leader whose loader returned an error or
// panicked: the engine counted it as a miss, so reconciliation folds Error
// into the miss side.
const (
	OutcomeHit Outcome = iota
	OutcomeMiss
	OutcomeCoalesced
	OutcomeError
	// NumOutcomes is the number of outcome kinds.
	NumOutcomes = int(OutcomeError) + 1
)

var outcomeNames = [NumOutcomes]string{"hit", "miss", "coalesced", "error"}

// String returns the outcome's schema name.
func (o Outcome) String() string { return outcomeNames[o] }

// Seg is one contiguous stage segment: [Start, End) in ns since the
// tracer's epoch.
type Seg struct {
	Stage      Stage
	Start, End int64
}

// Span is the lifecycle of one sampled engine request. It is leased from
// the tracer between Begin and Finish; the engine marks stage boundaries
// but must not retain it. All Span methods are nil-receiver safe, so
// unsampled requests thread a nil *Span through the same code path at the
// cost of a branch.
type Span struct {
	// ID is the 1-based sampled-span sequence number (the exemplar key).
	ID uint64
	// Shard is the engine shard serving the request; Key the request key.
	Shard int
	Key   uint64
	// Op is the entry point; Outcome how the request resolved (at Finish).
	Op      Op
	Outcome Outcome
	// Start is Begin time, End Finish time, in ns since the tracer epoch.
	Start, End int64
	// Cost is the miss cost this request charged (the engine's fill charge;
	// 0 for hits, coalesced waiters and failed loads). At stride-1 sampling
	// the span costs sum exactly to the engine's cost_paid counter, which is
	// what lets report -explain attribute a cost delta per key.
	Cost int64
	// Client is the propagated client-side span id on a server span created
	// by BeginRemote (0 on locally sampled spans). Emitted as "client_id" —
	// the join key report -stitch matches server spans to client spans on.
	Client uint64
	// Segs are the contiguous stage segments, in boundary order.
	Segs []Seg

	tr     *Tracer
	cursor int64 // end of the last closed segment
	emit   bool
}

// TraceCtx returns the identity a remote target propagates on the wire for
// this span: the span id and the emit-sampling decision (so client and
// server emit exactly the same span set). A nil span returns (0, false) —
// the request is unsampled and travels untraced.
func (s *Span) TraceCtx() (id uint64, emit bool) {
	if s == nil {
		return 0, false
	}
	return s.ID, s.emit
}

// AddCost records a fill's cost charge on the span (nil-safe, like Mark).
func (s *Span) AddCost(c int64) {
	if s != nil {
		s.Cost += c
	}
}

// Mark closes the segment running since the previous boundary (Begin or the
// last Mark) and labels it st. Contiguity is the package's accounting
// invariant: segment sums tile the span exactly.
func (s *Span) Mark(st Stage) {
	if s == nil {
		return
	}
	now := s.tr.now()
	s.Segs = append(s.Segs, Seg{Stage: st, Start: s.cursor, End: now})
	s.cursor = now
}

// Config parameterizes a tracer. Rates are fractions of all requests in
// (0, 1]; values above 1 clamp to 1 and values at or below 0 disable that
// tier. Sampling is a deterministic stride (every round(1/rate)-th
// request), so sampled counts reconcile exactly against the engine's
// counters: spans == floor(requests × rate).
type Config struct {
	// AttrRate is the fraction of requests measured into the attribution
	// aggregates (stage totals, latency histogram, key-skew table).
	AttrRate float64
	// EmitRate is the fraction of requests additionally emitted as full
	// spans to the sinks. Emitted spans are a subset of the attr samples;
	// an EmitRate above AttrRate raises the attr tier to match.
	EmitRate float64
	// KeyCap bounds the space-saving keyspace sketch (0 means 256): larger
	// values rank deeper into the key distribution at the price of a longer
	// scan per eviction from the sketch.
	KeyCap int
	// Node names the process in emitted spans ("" omits the field). The
	// serving tier sets it to the node name so stitched cluster timelines
	// can tell which server a propagated span executed on.
	Node string
}

// Tracer samples engine requests into spans. It is safe for concurrent use
// by any number of request goroutines. A nil *Tracer is a valid no-op:
// Begin returns nil and every method is nil-receiver safe.
type Tracer struct {
	epoch     time.Time
	node      string
	attrEvery uint64 // sample every Nth request (0 = never)
	emitNth   uint64 // emit every Nth sampled span (0 = never)

	seq  atomic.Uint64 // all requests
	ids  atomic.Uint64 // sampled spans (span IDs)
	last atomic.Uint64 // most recently finished sampled span ID

	pool sync.Pool

	stageNs    [NumStages]atomic.Int64
	stageCount [NumStages]atomic.Int64
	outcomes   [NumOutcomes]atomic.Int64
	totalNs    atomic.Int64
	otherNs    atomic.Int64
	spans      atomic.Int64
	costPaid   atomic.Int64
	hist       *obs.Histogram

	keymu      sync.Mutex
	keyCap     int
	keyCounts  map[uint64]int64
	keySamples int64

	emitMu sync.Mutex
	jsonl  *span.LineSink
	chrome *span.ChromeSink
	lanes  map[int][]int64 // per shard: lane -> last slice end (ns)
	buf    []byte
}

// latencyBuckets spans 250 ns to ~25 s in ×1.6 steps, matching the load
// harness's histogram so percentiles line up bucket-for-bucket.
func latencyBuckets() []int64 { return obs.ExpBuckets(250, 1.6, 40) }

// New builds a tracer. Either sink may be nil; the caller owns both (Close
// here never writes the Chrome array's closing bracket), which is what lets
// a command or test share them with a simulator span.Tracer.
func New(cfg Config, jsonl *span.LineSink, chrome *span.ChromeSink) *Tracer {
	every := func(rate float64) uint64 {
		if rate <= 0 {
			return 0
		}
		if rate >= 1 {
			return 1
		}
		return uint64(1/rate + 0.5)
	}
	if cfg.EmitRate > cfg.AttrRate {
		cfg.AttrRate = cfg.EmitRate
	}
	if cfg.KeyCap <= 0 {
		cfg.KeyCap = defaultKeyCap
	}
	t := &Tracer{
		epoch:     time.Now(),
		node:      cfg.Node,
		attrEvery: every(cfg.AttrRate),
		jsonl:     jsonl,
		chrome:    chrome,
		lanes:     make(map[int][]int64),
		hist:      obs.NewHistogramExemplars(latencyBuckets()),
		keyCap:    cfg.KeyCap,
		keyCounts: make(map[uint64]int64, cfg.KeyCap),
	}
	if e, a := every(cfg.EmitRate), t.attrEvery; e != 0 && a != 0 {
		t.emitNth = (e + a - 1) / a // emitted 1-in-emitNth of sampled spans
	}
	t.pool.New = func() any { return &Span{tr: t} }
	return t
}

// now returns ns since the tracer epoch (monotonic).
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Now exposes the tracer clock (ns since the tracer epoch) — what the
// serving tier answers PING negotiation with, so clients can estimate the
// clock offset between their span timestamps and this tracer's.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// Begin counts one request and, when the request is attr-sampled, leases a
// span for it. The returned span is nil for unsampled requests (and on a
// nil tracer); the engine threads it through Mark/Finish regardless — nil
// spans cost a branch per call and allocate nothing.
func (t *Tracer) Begin(op Op, shard int, key uint64) *Span {
	if t == nil || t.attrEvery == 0 {
		return nil
	}
	if t.seq.Add(1)%t.attrEvery != 0 {
		return nil
	}
	sp := t.pool.Get().(*Span)
	id := t.ids.Add(1)
	sp.ID = id
	sp.Shard, sp.Key, sp.Op = shard, key, op
	sp.Cost = 0
	sp.Client = 0
	sp.Segs = sp.Segs[:0]
	sp.emit = t.emitNth != 0 && id%t.emitNth == 0
	sp.Start = t.now()
	sp.cursor = sp.Start
	return sp
}

// Remote is the propagated trace context a server binds to an engine span:
// the client-side span id and the client's emit decision. The zero Remote
// (ID 0) means "untraced" — BeginRemote then returns nil.
type Remote struct {
	// ID is the client span id carried on the wire (0 = untraced request).
	ID uint64
	// Emit mirrors the client's emit-sampling decision, so both halves of a
	// stitched span are written or skipped together.
	Emit bool
}

// BeginRemote leases a span bound to a propagated client context. It
// bypasses the stride sampler — the *client* made the sampling decision, and
// the server must honor it so the two emitted span sets join 1:1 — but still
// counts the request into seq so Requests() stays an all-requests count.
// The span's Client field carries rm.ID and is emitted as "client_id";
// rm.Emit decides emission regardless of the tracer's own EmitRate.
func (t *Tracer) BeginRemote(op Op, shard int, key uint64, rm Remote) *Span {
	if t == nil {
		return nil
	}
	t.seq.Add(1)
	if rm.ID == 0 {
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.ID = t.ids.Add(1)
	sp.Shard, sp.Key, sp.Op = shard, key, op
	sp.Cost = 0
	sp.Client = rm.ID
	sp.Segs = sp.Segs[:0]
	sp.emit = rm.Emit
	sp.Start = t.now()
	sp.cursor = sp.Start
	return sp
}

// Finish completes a span: aggregates its segments, observes the end-to-end
// latency into the exemplar histogram, samples the key for the skew
// estimate and, for emit-sampled spans, renders it to the sinks. The span
// returns to the pool; callers must not touch it afterwards. Finishing a
// nil span is a no-op.
func (t *Tracer) Finish(sp *Span, outcome Outcome) {
	if sp == nil {
		return
	}
	sp.End = t.now()
	sp.Outcome = outcome
	var stageSum int64
	for _, seg := range sp.Segs {
		d := seg.End - seg.Start
		t.stageNs[seg.Stage].Add(d)
		t.stageCount[seg.Stage].Add(1)
		stageSum += d
	}
	total := sp.End - sp.Start
	t.totalNs.Add(total)
	t.otherNs.Add(total - stageSum)
	t.outcomes[outcome].Add(1)
	t.spans.Add(1)
	t.costPaid.Add(sp.Cost)
	t.hist.ObserveExemplar(total, sp.ID)
	t.sampleKey(sp.Key)
	if sp.emit {
		t.emit(sp)
	}
	t.last.Store(sp.ID)
	t.pool.Put(sp)
}

// LastID returns the ID of the most recently finished sampled span (0 when
// none finished yet) — the approximate linkage the load harness stamps into
// its arrival-latency exemplars.
func (t *Tracer) LastID() uint64 {
	if t == nil {
		return 0
	}
	return t.last.Load()
}

// AttrEvery returns the attribution sampling stride N (one request in N is
// sampled; 0 = tracing disabled), the number reconciliation scales by.
func (t *Tracer) AttrEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.attrEvery
}

// Requests returns the number of requests seen (sampled or not).
func (t *Tracer) Requests() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	if err := t.jsonl.Err(); err != nil {
		return err
	}
	return t.chrome.Err()
}

// defaultKeyCap bounds the space-saving key table when Config.KeyCap is 0:
// small enough to stay cheap under its mutex, large enough to rank heads of
// a zipfian keyspace.
const defaultKeyCap = 256

// sampleKey feeds the space-saving top-K sketch: present or spare-capacity
// keys increment; a full table evicts the minimum-count entry and credits
// the newcomer with its count + 1 (the classic overestimate bound).
func (t *Tracer) sampleKey(key uint64) {
	t.keymu.Lock()
	defer t.keymu.Unlock()
	t.keySamples++
	if n, ok := t.keyCounts[key]; ok {
		t.keyCounts[key] = n + 1
		return
	}
	if len(t.keyCounts) < t.keyCap {
		t.keyCounts[key] = 1
		return
	}
	minKey, minN := uint64(0), int64(1<<62)
	for k, n := range t.keyCounts {
		if n < minN {
			minKey, minN = k, n
		}
	}
	delete(t.keyCounts, minKey)
	t.keyCounts[key] = minN + 1
}

// KeyCount is one sampled key with its (over-)estimated request count.
type KeyCount struct {
	Key   uint64 `json:"key"`
	Count int64  `json:"count"`
}

// KeyspaceSkew is the sampled-key concentration estimate served by
// /debug/engine: how much of the sampled traffic the hottest keys absorb.
type KeyspaceSkew struct {
	// SampledKeys is the number of key samples taken (one per sampled span).
	SampledKeys int64 `json:"sampled_keys"`
	// Tracked is the number of distinct keys currently in the sketch.
	Tracked int `json:"tracked"`
	// Top are the hottest sampled keys, count-descending.
	Top []KeyCount `json:"top"`
	// TopShare is the fraction of key samples absorbed by Top — the skew
	// headline (≈ 0 for uniform traffic, → 1 for a single hot key).
	TopShare float64 `json:"top_share"`
}

// Keyspace returns the skew estimate over the hottest n sampled keys.
func (t *Tracer) Keyspace(n int) KeyspaceSkew {
	if t == nil {
		return KeyspaceSkew{}
	}
	t.keymu.Lock()
	all := make([]KeyCount, 0, len(t.keyCounts))
	for k, c := range t.keyCounts {
		all = append(all, KeyCount{Key: k, Count: c})
	}
	samples := t.keySamples
	t.keymu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	s := KeyspaceSkew{SampledKeys: samples, Tracked: len(all)}
	if n > len(all) {
		n = len(all)
	}
	var topSum int64
	for _, kc := range all[:n] {
		topSum += kc.Count
	}
	s.Top = all[:n:n]
	if samples > 0 {
		s.TopShare = float64(topSum) / float64(samples)
	}
	return s
}
