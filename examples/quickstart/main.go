// Quickstart: run one synthetic benchmark trace through the paper's basic
// cache hierarchy under every replacement algorithm and print the relative
// cost savings over LRU — a one-ratio slice of Figure 3.
package main

import (
	"fmt"

	"costcache"
)

func main() {
	// Generate the Raytrace-like multiprocessor trace and extract the
	// sample processor's view (its references + remote invalidations).
	tr := costcache.Workload("Raytrace").Generate()
	view := tr.SampleView(0)
	fmt.Printf("benchmark %s: %d refs in sample view\n", tr.Name, len(view))

	// Two static costs: low 1, high 8, with 20%% of accesses high-cost.
	src := costcache.RandomCosts(1, 8, 0.2, 42)

	lru := costcache.SimulateTrace(view, costcache.NewLRU(), src)
	fmt.Printf("%-4s misses=%7d aggregate cost=%9d (baseline)\n",
		"LRU", lru.L2.Misses, lru.L2.AggCost)

	policies := []costcache.Policy{
		costcache.NewGD(),
		costcache.NewBCL(),
		costcache.NewDCL(0),
		costcache.NewACL(0),
	}
	for _, p := range policies {
		res := costcache.SimulateTrace(view, p, src)
		fmt.Printf("%-4s misses=%7d aggregate cost=%9d savings=%6.2f%%\n",
			res.Policy, res.L2.Misses, res.L2.AggCost,
			100*costcache.RelativeSavings(lru.L2.AggCost, res.L2.AggCost))
	}
}
